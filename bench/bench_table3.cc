// Regenerates Table III: effect of the system parameters n_pool (tree
// pool size; time and peak task memory), τ_dfs (depth-first threshold)
// and τ_D (subtree-task threshold) when training a 20-tree forest.
//
// Expected shape: growing n_pool cuts time sharply at first and then
// flattens, while peak task memory grows only mildly; τ_dfs and τ_D
// are U-shaped around the paper's defaults (80k / 10k at full scale).

#include <cstring>

#include "bench_util.h"

using namespace treeserver;        // NOLINT
using namespace treeserver::bench;  // NOLINT

namespace {

struct Run {
  double seconds = 0.0;
  double peak_mb = 0.0;
};

Run TrainWith(const PreparedData& data, EngineConfig engine, int trees) {
  WallTimer timer;
  TreeServerCluster cluster(data.train, engine);
  ForestJobSpec spec;
  spec.num_trees = trees;
  spec.tree.max_depth = 10;
  spec.tree.impurity = data.profile.task_kind() == TaskKind::kRegression
                           ? Impurity::kVariance
                           : Impurity::kGini;
  spec.sqrt_columns = true;
  spec.seed = 3;
  cluster.TrainForest(spec);
  Run run;
  run.seconds = timer.Seconds();
  run.peak_mb = static_cast<double>(cluster.metrics().peak_task_memory_bytes) /
                (1 << 20);
  return run;
}

void SweepNpool(const BenchOptions& options,
                const std::vector<std::string>& names, int trees) {
  for (const std::string& name : names) {
    std::printf("\n== Table III(a-c): effect of n_pool on %s (%d trees) ==\n",
                name.c_str(), trees);
    const PreparedData& data = Prepare(name, options);
    TablePrinter table({"n_pool", "Time (s)", "Peak task mem (MB)"});
    for (int npool : {1, 5, 10, 20}) {
      EngineConfig engine = DefaultEngine(options);
      engine.npool = npool;
      Run run = TrainWith(data, engine, trees);
      table.AddRow({std::to_string(npool), Fmt(run.seconds, 3),
                    Fmt(run.peak_mb, 2)});
    }
    table.Print();
  }
}

void SweepTdfs(const BenchOptions& options,
               const std::vector<std::string>& names, int trees) {
  std::printf("\n== Table III(d): effect of τ_dfs (τ_D at default) ==\n");
  // The paper sweeps 20k..150k at full scale; scaled proportionally.
  std::vector<double> factors = {0.25, 0.625, 1.0, 1.25, 1.875};
  TablePrinter table([&] {
    std::vector<std::string> headers = {"τ_dfs (scaled)"};
    for (const std::string& n : names) headers.push_back(n + " (s)");
    return headers;
  }());
  uint64_t base = ScaledTauDfs(options);
  for (double f : factors) {
    std::vector<std::string> row = {std::to_string(
        static_cast<uint64_t>(static_cast<double>(base) * f))};
    for (const std::string& name : names) {
      const PreparedData& data = Prepare(name, options);
      EngineConfig engine = DefaultEngine(options);
      engine.tau_dfs = std::max<uint64_t>(
          engine.tau_d, static_cast<uint64_t>(
                            static_cast<double>(base) * f));
      Run run = TrainWith(data, engine, trees);
      row.push_back(Fmt(run.seconds, 3));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
}

void SweepTd(const BenchOptions& options,
             const std::vector<std::string>& names, int trees) {
  std::printf("\n== Table III(e): effect of τ_D (τ_dfs at default) ==\n");
  // Paper sweep: 2k..20k at full scale.
  std::vector<double> factors = {0.2, 0.5, 0.8, 1.0, 1.5, 2.0};
  TablePrinter table([&] {
    std::vector<std::string> headers = {"τ_D (scaled)"};
    for (const std::string& n : names) headers.push_back(n + " (s)");
    return headers;
  }());
  uint64_t base = ScaledTauD(options);
  for (double f : factors) {
    uint64_t tau_d =
        std::max<uint64_t>(50, static_cast<uint64_t>(
                                   static_cast<double>(base) * f));
    std::vector<std::string> row = {std::to_string(tau_d)};
    for (const std::string& name : names) {
      const PreparedData& data = Prepare(name, options);
      EngineConfig engine = DefaultEngine(options);
      engine.tau_d = tau_d;
      engine.tau_dfs = std::max(engine.tau_dfs, tau_d);
      Run run = TrainWith(data, engine, trees);
      row.push_back(Fmt(run.seconds, 3));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
}

}  // namespace

int main(int argc, char** argv) {
  BenchOptions options = BenchOptions::Parse(argc, argv);
  const char* part = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--part=", 7) == 0) part = argv[i] + 7;
  }
  std::vector<std::string> names = {"Allstate", "Higgs_boson", "KDD99"};
  if (options.quick) names.resize(2);
  int trees = options.quick ? 8 : 20;

  std::printf("== Table III: system parameters (scale=%g) ==\n",
              options.scale);
  if (part == nullptr || std::strcmp(part, "npool") == 0) {
    SweepNpool(options, names, trees);
  }
  if (part == nullptr || std::strcmp(part, "tdfs") == 0) {
    SweepTdfs(options, names, trees);
  }
  if (part == nullptr || std::strcmp(part, "td") == 0) {
    SweepTd(options, names, trees);
  }
  return 0;
}
