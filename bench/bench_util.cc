#include "bench_util.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "common/metrics_registry.h"
#include "common/trace.h"

namespace treeserver {
namespace bench {

namespace {

// atexit handlers cannot take arguments, so the flag values live here.
std::string* trace_out_path = nullptr;
bool metrics_dump_requested = false;

void DumpObservabilityAtExit() {
  if (trace_out_path != nullptr) {
    Status st = Tracer::Global().WriteChromeTrace(*trace_out_path);
    if (st.ok()) {
      std::fprintf(stderr, "[bench] wrote %zu trace events to %s\n",
                   Tracer::Global().event_count(), trace_out_path->c_str());
    } else {
      std::fprintf(stderr, "[bench] trace write failed: %s\n",
                   st.ToString().c_str());
    }
  }
  if (metrics_dump_requested) {
    std::fprintf(stderr, "%s", MetricsRegistry::Global().DumpText().c_str());
  }
}

}  // namespace

BenchOptions BenchOptions::Parse(int argc, char** argv) {
  BenchOptions options;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--scale=", 8) == 0) {
      options.scale = std::atof(arg + 8);
    } else if (std::strcmp(arg, "--quick") == 0) {
      options.quick = true;
      options.scale = std::min(options.scale, 0.0002);
      options.min_rows = 1500;
    } else if (std::strncmp(arg, "--workers=", 10) == 0) {
      options.workers = std::atoi(arg + 10);
    } else if (std::strncmp(arg, "--compers=", 10) == 0) {
      options.compers = std::atoi(arg + 10);
    } else if (std::strncmp(arg, "--trace-out=", 12) == 0) {
      options.trace_out = arg + 12;
    } else if (std::strncmp(arg, "--stats-period=", 15) == 0) {
      options.stats_period_ms = std::atoi(arg + 15);
    } else if (std::strcmp(arg, "--stats") == 0) {
      options.dump_metrics = true;
    } else if (std::strcmp(arg, "--split-method=histogram") == 0) {
      options.split_method = SplitMethod::kHistogram;
    } else if (std::strcmp(arg, "--split-method=exact") == 0) {
      options.split_method = SplitMethod::kExact;
    } else if (std::strncmp(arg, "--max-bins=", 11) == 0) {
      options.max_bins = std::atoi(arg + 11);
    } else if (std::strncmp(arg, "--node-layout=", 14) == 0) {
      NodeLayout layout;
      if (ParseNodeLayout(arg + 14, &layout) &&
          layout != NodeLayout::kQuantized) {
        options.node_layout = layout;
      } else {
        std::fprintf(stderr,
                     "[bench] ignoring --node-layout=%s (want soa|packed; "
                     "quantized is bulk-scoring only)\n", arg + 14);
      }
    }
  }
  if (!options.trace_out.empty() || options.dump_metrics) {
    static bool registered = false;
    if (!options.trace_out.empty()) {
      Tracer::Global().Enable();
      trace_out_path = new std::string(options.trace_out);
    }
    metrics_dump_requested |= options.dump_metrics;
    if (!registered) {
      registered = true;
      std::atexit(DumpObservabilityAtExit);
    }
  }
  return options;
}

const PreparedData& Prepare(const std::string& name,
                            const BenchOptions& options) {
  static std::map<std::string, PreparedData>* cache =
      new std::map<std::string, PreparedData>();
  std::string key = name + "@" + std::to_string(options.scale) + "/" +
                    std::to_string(options.min_rows);
  auto it = cache->find(key);
  if (it != cache->end()) return it->second;

  DatasetProfile profile = PaperProfile(name, options.scale,
                                        options.min_rows);
  DataTable all = GenerateTable(profile, /*seed=*/20260705);
  Rng rng(7);
  auto [train, test] = all.TrainTestSplit(0.25, &rng);
  PreparedData data{std::move(profile), std::move(train), std::move(test)};
  return cache->emplace(key, std::move(data)).first->second;
}

uint64_t ScaledTauD(const BenchOptions& options) {
  return std::max<uint64_t>(
      200, static_cast<uint64_t>(10000.0 * options.scale * 1000.0));
}

uint64_t ScaledTauDfs(const BenchOptions& options) {
  return std::max<uint64_t>(
      ScaledTauD(options) * 8,
      static_cast<uint64_t>(80000.0 * options.scale * 1000.0));
}

EngineConfig DefaultEngine(const BenchOptions& options) {
  EngineConfig cfg;
  cfg.num_workers = options.workers;
  cfg.compers_per_worker = options.compers;
  cfg.replication = 2;
  cfg.tau_d = ScaledTauD(options);
  cfg.tau_dfs = ScaledTauDfs(options);
  cfg.npool = 200;
  cfg.stats_period_ms = options.stats_period_ms;
  return cfg;
}

std::string FormatMetric(TaskKind kind, double metric) {
  char buf[32];
  if (kind == TaskKind::kClassification) {
    std::snprintf(buf, sizeof(buf), "%.2f%%", metric * 100.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3f", metric);
  }
  return buf;
}

double ModeledWall(const EngineMetrics& metrics, const EngineConfig& config,
                   double max_endpoint_bytes) {
  double total_compers = static_cast<double>(config.num_workers) *
                         config.compers_per_worker;
  double cpu_term = metrics.comper_busy_seconds / total_compers;
  double net_term = 0.0;
  if (config.bandwidth_mbps > 0) {
    net_term = max_endpoint_bytes / (config.bandwidth_mbps * 1e6 / 8.0);
  }
  return std::max(cpu_term, net_term);
}

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    std::printf("|");
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : "";
      std::printf(" %-*s |", static_cast<int>(widths[c]), cell.c_str());
    }
    std::printf("\n");
  };
  print_row(headers_);
  std::printf("|");
  for (size_t c = 0; c < widths.size(); ++c) {
    std::printf("%s|", std::string(widths[c] + 2, '-').c_str());
  }
  std::printf("\n");
  for (const auto& row : rows_) print_row(row);
  std::fflush(stdout);
}

std::string Fmt(double v, int decimals) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

}  // namespace bench
}  // namespace treeserver
