// Regenerates Table VII: the deep-forest case study — per-step
// training/test times for multi-grained scanning (slide, winNtrain,
// winNextract) and the cascade (CFktrain, CFkextract), with test
// accuracy after every cascade layer.
//
// Stand-in data: synthetic 28x28 stroke-pattern digits (MNIST is not
// bundled); the pipeline, window sizes, forest counts and tree counts
// follow the paper's modified recipe (2 forests x 20 trees per step,
// d_max=10 in MGS, 10% of the data). Expected shape: accuracy high
// after CF0 and drifting up across layers; training far cheaper than
// naive full-forest settings.

#include "bench_util.h"
#include "deepforest/deep_forest.h"

using namespace treeserver;        // NOLINT
using namespace treeserver::bench;  // NOLINT

int main(int argc, char** argv) {
  BenchOptions options = BenchOptions::Parse(argc, argv);
  // The paper uses 10% of MNIST = 6000 train / 1000 test images.
  size_t train_n = options.quick ? 250 : 800;
  size_t test_n = options.quick ? 100 : 250;
  std::printf("== Table VII: deep forest (%zu train / %zu test images) ==\n",
              train_n, test_n);

  ImageDataset train = GenerateImages(train_n, 1);
  ImageDataset test = GenerateImages(test_n, 2);

  DeepForestConfig cfg;
  cfg.mgs.window_sizes = options.quick ? std::vector<int>{5, 7}
                                       : std::vector<int>{3, 5, 7};
  cfg.mgs.stride = options.quick ? 4 : 3;
  cfg.mgs.trees_per_forest = options.quick ? 6 : 20;
  cfg.cascade.num_layers = options.quick ? 3 : 6;
  cfg.cascade.trees_per_forest = options.quick ? 6 : 20;
  cfg.extract_threads = options.workers * options.compers;

  EngineConfig engine = DefaultEngine(options);

  DeepForestTrainer trainer(cfg, engine);
  std::vector<DeepForestStep> steps;
  WallTimer total;
  trainer.Train(train, test, &steps);
  double total_s = total.Seconds();

  TablePrinter table({"Step", "Training Time (s)", "Test Time (s)",
                      "Test Accuracy"});
  for (const DeepForestStep& s : steps) {
    table.AddRow({s.name, Fmt(s.train_seconds, 3),
                  s.test_seconds > 0 ? Fmt(s.test_seconds, 3) : "-",
                  s.test_accuracy >= 0
                      ? FormatMetric(TaskKind::kClassification,
                                     s.test_accuracy)
                      : "-"});
  }
  table.Print();
  std::printf("total pipeline time: %.2f s\n", total_s);
  return 0;
}
