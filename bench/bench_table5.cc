// Regenerates Table V: vertical scalability — running time vs the
// number of computing threads per machine (compers), for TreeServer
// and the MLlib simulator, with 20-tree and 200-tree forests (the
// latter scaled down by --quick).
//
// Measured wall time on a single-core CI box cannot show parallel
// speedup (every thread shares one core), so each row also reports the
// modeled wall time derived from measured busy seconds (see
// EXPERIMENTS.md): that column reproduces the paper's shape — time
// drops with threads and flattens near saturation.

#include "baselines/planet.h"
#include "bench_util.h"

using namespace treeserver;        // NOLINT
using namespace treeserver::bench;  // NOLINT

namespace {

double g_time_scale = 1.0;

void Sweep(const BenchOptions& options, const std::string& name, int trees) {
  std::printf("\n== Table V: #threads sweep on %s (%d trees) ==\n",
              name.c_str(), trees);
  const PreparedData& data = Prepare(name, options);
  TablePrinter table({"#{threads}", "TS wall (s)", "TS busy (s)",
                      "TS modeled (s)", "MLlib wall (s)"});
  for (int threads : {1, 2, 4, 8, 10}) {
    EngineConfig engine = DefaultEngine(options);
    engine.compers_per_worker = threads;
    WallTimer timer;
    EngineMetrics metrics;
    {
      TreeServerCluster cluster(data.train, engine);
      ForestJobSpec spec;
      spec.num_trees = trees;
      spec.tree.max_depth = 10;
      spec.sqrt_columns = true;
      spec.seed = 3;
      cluster.TrainForest(spec);
      metrics = cluster.metrics();
    }
    double wall = timer.Seconds();
    double modeled = ModeledWall(metrics, engine, 0.0);

    PlanetConfig planet;
    planet.num_trees = trees;
    planet.max_depth = 10;
    planet.sqrt_columns = true;
    planet.num_threads = threads;
    planet.seed = 3;
    planet.time_scale = g_time_scale;
    WallTimer ml_timer;
    TrainPlanet(data.train, planet);
    double ml_wall = ml_timer.Seconds();

    table.AddRow({std::to_string(threads), Fmt(wall, 3),
                  Fmt(metrics.comper_busy_seconds, 3), Fmt(modeled, 4),
                  Fmt(ml_wall, 3)});
  }
  table.Print();
}

}  // namespace

int main(int argc, char** argv) {
  BenchOptions options = BenchOptions::Parse(argc, argv);
  g_time_scale = options.scale;
  std::printf("== Table V: vertical scalability (scale=%g, %d workers) ==\n",
              options.scale, options.workers);
  int small = options.quick ? 8 : 20;
  int large = options.quick ? 20 : 60;  // paper: 200 trees
  Sweep(options, "Allstate", small);
  Sweep(options, "Higgs_boson", small);
  Sweep(options, "Higgs_boson", large);
  Sweep(options, "MS_LTRC", large);
  return 0;
}
