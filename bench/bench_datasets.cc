// Regenerates Table I: the benchmark dataset profiles, as actually
// instantiated by the synthetic generators at the chosen scale.

#include "bench_util.h"

using namespace treeserver;        // NOLINT
using namespace treeserver::bench;  // NOLINT

int main(int argc, char** argv) {
  BenchOptions options = BenchOptions::Parse(argc, argv);
  std::printf("== Table I: datasets (scale=%g of the paper's rows) ==\n",
              options.scale);

  TablePrinter table({"Dataset", "#{rows} (paper)", "#{rows} (bench)",
                      "#{numerical}", "#{categorical}", "Problem"});
  std::vector<DatasetProfile> paper = PaperProfiles(1.0, 1);
  for (const DatasetProfile& full : paper) {
    const PreparedData& data = Prepare(full.name, options);
    size_t bench_rows = data.train.num_rows() + data.test.num_rows();
    table.AddRow({full.name, std::to_string(full.rows),
                  std::to_string(bench_rows),
                  std::to_string(full.num_numeric),
                  std::to_string(full.num_categorical),
                  full.num_classes == 0
                      ? "regression"
                      : "classification (" +
                            std::to_string(full.num_classes) + " classes)"});
  }
  table.Print();
  return 0;
}
