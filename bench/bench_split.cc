// Split-kernel microbenchmark: exact (per-node sorted scans) vs
// histogram (pre-binned columns + sibling subtraction) split finding,
// at 10k / 100k / 1M rows for both learning tasks.
//
// Each case trains one full tree over all-numeric candidate columns
// and reports the train wall time per method. The histogram timing
// excludes the one-off BinnedTable build (it happens once at table
// load and is shared by every tree of the pool) but the build cost is
// reported alongside so nothing hides. Emits a one-line JSON summary
// (bench=split) after the table; check in as BENCH_split.json.
//
// Flags: --quick (smaller sizes), --max-bins=N (default 255).

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/timer.h"
#include "table/binned.h"
#include "table/datasets.h"
#include "tree/trainer.h"

namespace treeserver {
namespace bench {
namespace {

struct CaseResult {
  std::string label;
  size_t rows = 0;
  double exact_ms = 0.0;
  double hist_ms = 0.0;
  double bin_build_ms = 0.0;
  double speedup = 0.0;
  bool identical = false;  // trees byte-identical across methods
};

std::string SerializeTree(const TreeModel& model) {
  BinaryWriter w;
  TreeModel copy = model;
  copy.Canonicalize();
  copy.Serialize(&w);
  return w.Release();
}

CaseResult RunCase(TaskKind kind, size_t rows, int max_bins) {
  DatasetProfile profile;
  profile.name = kind == TaskKind::kClassification ? "split-cls" : "split-reg";
  profile.rows = rows;
  profile.num_numeric = 8;
  profile.num_categorical = 0;
  profile.num_classes = kind == TaskKind::kClassification ? 3 : 0;
  profile.noise = 0.05;
  profile.concept_depth = 6;
  DataTable table = GenerateTable(profile, /*seed=*/1234 + rows);

  std::vector<int> candidates;
  for (int c = 0; c < profile.num_features(); ++c) candidates.push_back(c);

  TreeConfig exact_cfg;
  exact_cfg.max_depth = 8;
  exact_cfg.min_leaf = 4;

  CaseResult r;
  r.label = (kind == TaskKind::kClassification ? std::string("cls_")
                                               : std::string("reg_")) +
            std::to_string(rows);
  r.rows = rows;

  WallTimer t;
  TreeModel exact_tree = TrainTreeOnTable(table, candidates, exact_cfg);
  r.exact_ms = t.Millis();

  TreeConfig hist_cfg = exact_cfg;
  hist_cfg.split_method = SplitMethod::kHistogram;
  hist_cfg.max_bins = max_bins;

  t.Reset();
  std::shared_ptr<const BinnedTable> binned =
      BinnedTable::Build(table, hist_cfg.max_bins);
  r.bin_build_ms = t.Millis();

  t.Reset();
  TreeModel hist_tree =
      TrainTreeOnTable(table, candidates, hist_cfg, nullptr, binned.get());
  r.hist_ms = t.Millis();

  r.speedup = r.hist_ms > 0 ? r.exact_ms / r.hist_ms : 0.0;
  r.identical = SerializeTree(exact_tree) == SerializeTree(hist_tree);
  return r;
}

}  // namespace

int Main(int argc, char** argv) {
  BenchOptions options = BenchOptions::Parse(argc, argv);
  std::vector<size_t> sizes =
      options.quick ? std::vector<size_t>{10000, 100000}
                    : std::vector<size_t>{10000, 100000, 1000000};

  std::printf("Split-kernel bench: exact vs histogram (max_bins=%d), "
              "one tree, depth 8, 8 numeric columns\n\n",
              options.max_bins);

  TablePrinter table({"case", "rows", "exact(ms)", "hist(ms)", "binning(ms)",
                      "speedup", "same tree"});
  std::vector<CaseResult> results;
  for (TaskKind kind : {TaskKind::kClassification, TaskKind::kRegression}) {
    for (size_t rows : sizes) {
      CaseResult r = RunCase(kind, rows, options.max_bins);
      table.AddRow({r.label, std::to_string(r.rows), Fmt(r.exact_ms),
                    Fmt(r.hist_ms), Fmt(r.bin_build_ms), Fmt(r.speedup) + "x",
                    r.identical ? "yes" : "no"});
      results.push_back(std::move(r));
    }
  }
  table.Print();
  std::printf("\n(same tree = serialized trees byte-identical after "
              "Canonicalize; expected only when the columns have more bins "
              "than distinct values)\n\n");

  std::string json = "{\"bench\":\"split\",\"max_bins\":" +
                     std::to_string(options.max_bins);
  char buf[160];
  for (const CaseResult& r : results) {
    std::snprintf(buf, sizeof(buf),
                  ",\"%s_exact_ms\":%.1f,\"%s_hist_ms\":%.1f,"
                  "\"%s_speedup\":%.2f",
                  r.label.c_str(), r.exact_ms, r.label.c_str(), r.hist_ms,
                  r.label.c_str(), r.speedup);
    json += buf;
  }
  json += "}";
  std::printf("%s\n", json.c_str());
  return 0;
}

}  // namespace bench
}  // namespace treeserver

int main(int argc, char** argv) { return treeserver::bench::Main(argc, argv); }
