// Split-kernel microbenchmark: exact (per-node sorted scans) vs
// histogram (pre-binned columns + sibling subtraction) split finding,
// at 10k / 100k / 1M rows for both learning tasks.
//
// Each case trains one full tree over all-numeric candidate columns
// and reports the train wall time per method. The histogram timing
// excludes the one-off BinnedTable build (it happens once at table
// load and is shared by every tree of the pool) but the build cost is
// reported alongside so nothing hides. Emits a one-line JSON summary
// (bench=split) after the table; check in as BENCH_split.json.
//
// Flags: --quick (smaller sizes), --max-bins=N (default 255).

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/simd.h"
#include "common/timer.h"
#include "table/binned.h"
#include "table/datasets.h"
#include "tree/hist.h"
#include "tree/trainer.h"

namespace treeserver {
namespace bench {
namespace {

struct CaseResult {
  std::string label;
  size_t rows = 0;
  double exact_ms = 0.0;
  double hist_ms = 0.0;
  double bin_build_ms = 0.0;
  double speedup = 0.0;
  bool identical = false;  // trees byte-identical across methods
};

std::string SerializeTree(const TreeModel& model) {
  BinaryWriter w;
  TreeModel copy = model;
  copy.Canonicalize();
  copy.Serialize(&w);
  return w.Release();
}

CaseResult RunCase(TaskKind kind, size_t rows, int max_bins) {
  DatasetProfile profile;
  profile.name = kind == TaskKind::kClassification ? "split-cls" : "split-reg";
  profile.rows = rows;
  profile.num_numeric = 8;
  profile.num_categorical = 0;
  profile.num_classes = kind == TaskKind::kClassification ? 3 : 0;
  profile.noise = 0.05;
  profile.concept_depth = 6;
  DataTable table = GenerateTable(profile, /*seed=*/1234 + rows);

  std::vector<int> candidates;
  for (int c = 0; c < profile.num_features(); ++c) candidates.push_back(c);

  TreeConfig exact_cfg;
  exact_cfg.max_depth = 8;
  exact_cfg.min_leaf = 4;

  CaseResult r;
  r.label = (kind == TaskKind::kClassification ? std::string("cls_")
                                               : std::string("reg_")) +
            std::to_string(rows);
  r.rows = rows;

  WallTimer t;
  TreeModel exact_tree = TrainTreeOnTable(table, candidates, exact_cfg);
  r.exact_ms = t.Millis();

  TreeConfig hist_cfg = exact_cfg;
  hist_cfg.split_method = SplitMethod::kHistogram;
  hist_cfg.max_bins = max_bins;

  t.Reset();
  std::shared_ptr<const BinnedTable> binned =
      BinnedTable::Build(table, hist_cfg.max_bins);
  r.bin_build_ms = t.Millis();

  t.Reset();
  TreeModel hist_tree =
      TrainTreeOnTable(table, candidates, hist_cfg, nullptr, binned.get());
  r.hist_ms = t.Millis();

  r.speedup = r.hist_ms > 0 ? r.exact_ms / r.hist_ms : 0.0;
  r.identical = SerializeTree(exact_tree) == SerializeTree(hist_tree);
  return r;
}

// Single-thread histogram-build kernel throughput: the per-node
// histogram pass, three ways.
//
//   scalar: the pre-PR accumulation loop, verbatim — one pass per
//           column through the code_at()/category_at() accessors
//           (per-row narrow/wide branch, no fusion). This is the
//           "before" number.
//   twin:   the dispatch layer forced to SimdLevel::kScalar — the
//           raw-pointer scalar twins the parity tests compare against.
//   simd:   the dispatched fused kernels at the detected level.
//
// Rows/sec counts full-node passes (all 8 columns per row).
struct KernelResult {
  std::string label;  // "cls" | "reg"
  size_t rows = 0;
  double scalar_rps = 0.0;  // pre-PR accessor loop
  double twin_rps = 0.0;    // new scalar twin (TS_SIMD=off path)
  double simd_rps = 0.0;    // dispatched SIMD kernels
  double speedup = 0.0;     // simd vs pre-PR
  bool identical = false;   // histogram payloads bit-identical
};

// One column's accumulation loop exactly as NodeHistogram::Build
// shipped before the kernel layer existed (accessor-based, no fusion).
// Payloads are returned so the optimizer cannot discard the pass.
struct BaselineHist {
  std::vector<int64_t> cls;
  std::vector<HistRegBin> reg;
};

BaselineHist BaselineBuild(const BinnedColumn& binned, const Column& target,
                           const SplitContext& ctx, size_t n) {
  BaselineHist h;
  const int slots = binned.missing_code() + 1;
  if (ctx.kind == TaskKind::kClassification) {
    const int c = ctx.num_classes;
    h.cls.assign(static_cast<size_t>(slots) * c, 0);
    for (size_t i = 0; i < n; ++i) {
      const uint32_t row = static_cast<uint32_t>(i);
      h.cls[static_cast<size_t>(binned.code_at(row)) * c +
            target.category_at(row)]++;
    }
  } else {
    h.reg.assign(slots, HistRegBin{});
    for (size_t i = 0; i < n; ++i) {
      const uint32_t row = static_cast<uint32_t>(i);
      HistRegBin& rb = h.reg[binned.code_at(row)];
      const double y = target.numeric_at(row);
      ++rb.n;
      rb.sum += y;
      rb.sum_sq += y * y;
    }
  }
  return h;
}

bool SameHists(const NodeHists& a, const NodeHists& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].cls_size() != b[i].cls_size() ||
        a[i].reg_size() != b[i].reg_size()) {
      return false;
    }
    if (std::memcmp(a[i].cls_data(), b[i].cls_data(),
                    a[i].cls_size() * sizeof(int64_t)) != 0) {
      return false;
    }
    if (std::memcmp(a[i].reg_data(), b[i].reg_data(),
                    a[i].reg_size() * sizeof(HistRegBin)) != 0) {
      return false;
    }
  }
  return true;
}

KernelResult RunKernelCase(TaskKind kind, size_t rows, int max_bins,
                           int iters) {
  DatasetProfile profile;
  profile.name = kind == TaskKind::kClassification ? "histk-cls" : "histk-reg";
  profile.rows = rows;
  profile.num_numeric = 8;
  profile.num_categorical = 0;
  profile.num_classes = kind == TaskKind::kClassification ? 3 : 0;
  profile.noise = 0.05;
  profile.concept_depth = 6;
  DataTable table = GenerateTable(profile, /*seed=*/4321 + rows);
  std::shared_ptr<const BinnedTable> binned =
      BinnedTable::Build(table, max_bins);

  std::vector<const BinnedColumn*> cols;
  for (int c = 0; c < profile.num_features(); ++c) {
    cols.push_back(binned->column(c));
  }
  SplitContext ctx;
  ctx.kind = kind;
  ctx.num_classes = table.schema().num_classes();
  const Column& target = *table.target();
  const size_t n = table.num_rows();

  // Best-of-N pass timing: robust to interference on a shared box.
  auto run = [&](NodeHists* out) {
    // One warm-up pass, then the timed iterations.
    out->assign(cols.size(), NodeHistogram());
    NodeHistogram::BuildMany(cols.data(), cols.size(), target, ctx,
                             /*rows=*/nullptr, n, out->data());
    double best = 0.0;
    for (int i = 0; i < iters; ++i) {
      out->assign(cols.size(), NodeHistogram());
      WallTimer t;
      NodeHistogram::BuildMany(cols.data(), cols.size(), target, ctx,
                               /*rows=*/nullptr, n, out->data());
      const double s = t.Seconds();
      if (i == 0 || s < best) best = s;
    }
    return best;
  };

  auto run_baseline = [&] {
    std::vector<BaselineHist> out(cols.size());
    for (size_t c = 0; c < cols.size(); ++c) {
      out[c] = BaselineBuild(*cols[c], target, ctx, n);  // warm-up
    }
    double best = 0.0;
    for (int i = 0; i < iters; ++i) {
      WallTimer t;
      for (size_t c = 0; c < cols.size(); ++c) {
        out[c] = BaselineBuild(*cols[c], target, ctx, n);
      }
      const double s = t.Seconds();
      if (i == 0 || s < best) best = s;
    }
    return std::pair<double, std::vector<BaselineHist>>(best, std::move(out));
  };

  KernelResult r;
  r.label = kind == TaskKind::kClassification ? "cls" : "reg";
  r.rows = n;
  const SimdLevel active = ActiveSimdLevel();
  NodeHists twin_hists;
  NodeHists simd_hists;
  auto [baseline_s, baseline_hists] = run_baseline();
  SetSimdLevel(SimdLevel::kScalar);
  const double twin_s = run(&twin_hists);
  SetSimdLevel(active);
  const double simd_s = run(&simd_hists);
  const double per_pass = static_cast<double>(n);
  r.scalar_rps = baseline_s > 0 ? per_pass / baseline_s : 0.0;
  r.twin_rps = twin_s > 0 ? per_pass / twin_s : 0.0;
  r.simd_rps = simd_s > 0 ? per_pass / simd_s : 0.0;
  r.speedup = r.scalar_rps > 0 ? r.simd_rps / r.scalar_rps : 0.0;
  r.identical = SameHists(twin_hists, simd_hists);
  // The pre-PR loop must agree bit for bit as well.
  for (size_t c = 0; r.identical && c < cols.size(); ++c) {
    const BaselineHist& b = baseline_hists[c];
    r.identical =
        b.cls.size() == simd_hists[c].cls_size() &&
        b.reg.size() == simd_hists[c].reg_size() &&
        std::memcmp(b.cls.data(), simd_hists[c].cls_data(),
                    b.cls.size() * sizeof(int64_t)) == 0 &&
        std::memcmp(b.reg.data(), simd_hists[c].reg_data(),
                    b.reg.size() * sizeof(HistRegBin)) == 0;
  }
  return r;
}

}  // namespace

int Main(int argc, char** argv) {
  BenchOptions options = BenchOptions::Parse(argc, argv);
  std::vector<size_t> sizes =
      options.quick ? std::vector<size_t>{10000, 100000}
                    : std::vector<size_t>{10000, 100000, 1000000};

  std::printf("Split-kernel bench: exact vs histogram (max_bins=%d), "
              "one tree, depth 8, 8 numeric columns\n\n",
              options.max_bins);

  TablePrinter table({"case", "rows", "exact(ms)", "hist(ms)", "binning(ms)",
                      "speedup", "same tree"});
  std::vector<CaseResult> results;
  for (TaskKind kind : {TaskKind::kClassification, TaskKind::kRegression}) {
    for (size_t rows : sizes) {
      CaseResult r = RunCase(kind, rows, options.max_bins);
      table.AddRow({r.label, std::to_string(r.rows), Fmt(r.exact_ms),
                    Fmt(r.hist_ms), Fmt(r.bin_build_ms), Fmt(r.speedup) + "x",
                    r.identical ? "yes" : "no"});
      results.push_back(std::move(r));
    }
  }
  table.Print();
  std::printf("\n(same tree = serialized trees byte-identical after "
              "Canonicalize; expected only when the columns have more bins "
              "than distinct values)\n\n");

  // Single-thread kernel throughput: scalar twin vs the dispatched
  // SIMD level, on the trainer's fused per-node histogram pass.
  const size_t kernel_rows = options.quick ? 200000 : 1000000;
  const int kernel_iters = options.quick ? 5 : 10;
  std::printf("Histogram-build kernel (single thread, %zu rows x 8 columns, "
              "simd=%s, detected=%s):\n",
              kernel_rows, SimdLevelName(ActiveSimdLevel()),
              SimdLevelName(DetectedSimdLevel()));
  TablePrinter kernel_table({"task", "pre-PR rows/s", "scalar-twin rows/s",
                             "simd rows/s", "speedup", "bit-identical"});
  std::vector<KernelResult> kernels;
  for (TaskKind kind : {TaskKind::kClassification, TaskKind::kRegression}) {
    KernelResult k = RunKernelCase(kind, kernel_rows, options.max_bins,
                                   kernel_iters);
    kernel_table.AddRow({k.label, Fmt(k.scalar_rps, 0), Fmt(k.twin_rps, 0),
                         Fmt(k.simd_rps, 0), Fmt(k.speedup, 2) + "x",
                         k.identical ? "yes" : "NO"});
    kernels.push_back(std::move(k));
  }
  kernel_table.Print();
  std::printf("\n");

  std::string json = "{\"bench\":\"split\",\"max_bins\":" +
                     std::to_string(options.max_bins) + ",\"simd\":\"" +
                     SimdLevelName(ActiveSimdLevel()) + "\"";
  for (const KernelResult& k : kernels) {
    char kbuf[200];
    std::snprintf(kbuf, sizeof(kbuf),
                  ",\"hist_build_%s_scalar_rps\":%.0f,"
                  "\"hist_build_%s_twin_rps\":%.0f,"
                  "\"hist_build_%s_simd_rps\":%.0f,"
                  "\"hist_build_%s_speedup\":%.2f",
                  k.label.c_str(), k.scalar_rps, k.label.c_str(), k.twin_rps,
                  k.label.c_str(), k.simd_rps, k.label.c_str(), k.speedup);
    json += kbuf;
    if (!k.identical) {
      std::printf("FATAL: %s kernel histograms diverge between scalar and "
                  "SIMD\n", k.label.c_str());
      return 1;
    }
  }
  char buf[160];
  for (const CaseResult& r : results) {
    std::snprintf(buf, sizeof(buf),
                  ",\"%s_exact_ms\":%.1f,\"%s_hist_ms\":%.1f,"
                  "\"%s_speedup\":%.2f",
                  r.label.c_str(), r.exact_ms, r.label.c_str(), r.hist_ms,
                  r.label.c_str(), r.speedup);
    json += buf;
  }
  json += "}";
  std::printf("%s\n", json.c_str());
  return 0;
}

}  // namespace bench
}  // namespace treeserver

int main(int argc, char** argv) { return treeserver::bench::Main(argc, argv); }
