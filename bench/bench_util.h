#ifndef TREESERVER_BENCH_BENCH_UTIL_H_
#define TREESERVER_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "common/timer.h"
#include "engine/cluster.h"
#include "serve/layout.h"
#include "table/datasets.h"

namespace treeserver {
namespace bench {

/// Command-line knobs shared by the table benches.
///
///   --scale=F     row-count multiplier vs the paper's datasets
///                 (default 0.0005; the paper's clusters hold tens of
///                 millions of rows, a CI box does not)
///   --quick       even smaller/fewer configurations
///   --workers=N   simulated worker machines (default 4)
///   --compers=N   computing threads per worker (default 2)
///
/// Observability knobs:
///
///   --trace-out=F      enable the span tracer and write a Chrome
///                      trace-event JSON file (open in Perfetto) at exit
///   --stats-period=MS  run the periodic engine stats reporter
///   --stats            dump the process metrics registry at exit
///
/// Split-kernel knobs:
///
///   --split-method=exact|histogram   numeric split kernel
///   --max-bins=N                     histogram bin budget (default 255)
///
/// Serving knobs:
///
///   --node-layout=soa|packed   compiled-node layout the serve/fleet
///                              phases publish models in (bulk-scoring
///                              sections always sweep all layouts)
struct BenchOptions {
  double scale = 0.0005;
  size_t min_rows = 3000;
  bool quick = false;
  int workers = 4;
  int compers = 2;
  std::string trace_out;
  int stats_period_ms = 0;
  bool dump_metrics = false;
  SplitMethod split_method = SplitMethod::kExact;
  int max_bins = 255;
  NodeLayout node_layout = NodeLayout::kSoa;

  static BenchOptions Parse(int argc, char** argv);
};

/// A generated dataset with a held-out test split.
struct PreparedData {
  DatasetProfile profile;
  DataTable train;
  DataTable test;
};

/// Generates profile `name` at the given scale and splits 75/25.
/// Deterministic; results are cached per process.
const PreparedData& Prepare(const std::string& name,
                            const BenchOptions& options);

/// Default TreeServer engine configuration for benches. Thresholds are
/// scaled with the data so the column-task/subtree-task mix matches
/// the paper's regime (τ_D = 10000, τ_dfs = 80000 at full scale).
EngineConfig DefaultEngine(const BenchOptions& options);
uint64_t ScaledTauD(const BenchOptions& options);
uint64_t ScaledTauDfs(const BenchOptions& options);

/// "Accuracy" formatting used by the paper's tables: percent for
/// classification, RMSE for regression (Allstate).
std::string FormatMetric(TaskKind kind, double metric);

/// Modeled wall-clock on a P-way parallel cluster, derived from
/// measured quantities (see EXPERIMENTS.md): the CPU term is the
/// aggregate comper busy time divided by the total comper count, and
/// the network term is the busiest endpoint's traffic pushed through
/// the configured link speed. The max of both plus the measured
/// coordination remainder approximates the paper's wall time on real
/// hardware; on a single-core CI box the *measured* wall time cannot
/// show parallel speedup, so the scalability tables report both.
double ModeledWall(const EngineMetrics& metrics, const EngineConfig& config,
                   double max_endpoint_bytes);

/// Simple fixed-width table printer.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);
  void AddRow(std::vector<std::string> cells);
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

std::string Fmt(double v, int decimals = 2);

}  // namespace bench
}  // namespace treeserver

#endif  // TREESERVER_BENCH_BENCH_UTIL_H_
