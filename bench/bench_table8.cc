// Regenerates Table VIII: impact of model parameters on accuracy.
//   (a) d_max sweep, single tree on Higgs_boson
//   (b) d_max sweep, 20-tree forest on Higgs_boson
//   (c) |C|/|A| sweep, 20-tree forest on Allstate (RMSE)
//   (d) |C|/|A| sweep, 20-tree forest on Higgs_boson
//
// Expected shape: accuracy improves monotonically-ish with d_max (the
// exact trees are not overfitting yet at d_max=12), and the column
// ratio matters little beyond a small fraction — the paper's finding
// that 20% of columns per tree is already sufficient.

#include <cstring>

#include "bench_util.h"

using namespace treeserver;        // NOLINT
using namespace treeserver::bench;  // NOLINT

namespace {

struct Run {
  double seconds = 0.0;
  double metric = 0.0;
};

Run Train(const PreparedData& data, const BenchOptions& options, int trees,
          int max_depth, double column_ratio) {
  EngineConfig engine = DefaultEngine(options);
  WallTimer timer;
  TreeServerCluster cluster(data.train, engine);
  ForestJobSpec spec;
  spec.num_trees = trees;
  spec.tree.max_depth = max_depth;
  spec.tree.impurity = data.profile.task_kind() == TaskKind::kRegression
                           ? Impurity::kVariance
                           : Impurity::kGini;
  spec.column_ratio = column_ratio;
  spec.seed = 3;
  ForestModel model = cluster.TrainForest(spec);
  Run run;
  run.seconds = timer.Seconds();
  run.metric = EvaluateMetric(model, data.test);
  return run;
}

void SweepDepth(const BenchOptions& options, int trees) {
  std::printf("\n== Table VIII(%s): d_max sweep on Higgs_boson (%d tree%s) "
              "==\n",
              trees == 1 ? "a" : "b", trees, trees == 1 ? "" : "s");
  const PreparedData& data = Prepare("Higgs_boson", options);
  TablePrinter table({"d_max", "Time (s)", "Accuracy"});
  for (int dmax : {2, 4, 6, 8, 10, 12}) {
    Run run = Train(data, options, trees, dmax,
                    trees == 1 ? 1.0 : 0.4);
    table.AddRow({std::to_string(dmax), Fmt(run.seconds, 3),
                  FormatMetric(TaskKind::kClassification, run.metric)});
  }
  table.Print();
}

void SweepColumns(const BenchOptions& options, const std::string& name,
                  int trees) {
  std::printf("\n== Table VIII(%s): |C|/|A| sweep on %s (%d trees) ==\n",
              name == "Allstate" ? "c" : "d", name.c_str(), trees);
  const PreparedData& data = Prepare(name, options);
  TaskKind kind = data.profile.task_kind();
  TablePrinter table({"|C|/|A|", "Time (s)",
                      kind == TaskKind::kRegression ? "RMSE" : "Accuracy"});
  for (double ratio : {0.2, 0.4, 0.6, 0.8, 1.0}) {
    Run run = Train(data, options, trees, 10, ratio);
    char label[16];
    std::snprintf(label, sizeof(label), "%.0f%%", ratio * 100);
    table.AddRow({label, Fmt(run.seconds, 3), FormatMetric(kind, run.metric)});
  }
  table.Print();
}

}  // namespace

int main(int argc, char** argv) {
  BenchOptions options = BenchOptions::Parse(argc, argv);
  const char* part = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--part=", 7) == 0) part = argv[i] + 7;
  }
  int trees = options.quick ? 8 : 20;
  std::printf("== Table VIII: model parameters (scale=%g) ==\n",
              options.scale);
  if (part == nullptr || std::strcmp(part, "dmax") == 0) {
    SweepDepth(options, 1);
    SweepDepth(options, trees);
  }
  if (part == nullptr || std::strcmp(part, "cratio") == 0) {
    SweepColumns(options, "Allstate", trees);
    SweepColumns(options, "Higgs_boson", trees);
  }
  return 0;
}
