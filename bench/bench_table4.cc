// Regenerates Table IV: running time vs number of trees.
//   (a) MS_LTRC, (b) c14B: forest sizes 500..2000 in the paper, scaled
//       here; TreeServer vs MLlib-sim. Expected: both linear in tree
//       count, TreeServer several times faster, accuracy flat.
//   (c) XGBoost-sim with growing tree counts: accuracy keeps improving
//       (boosting), unlike bagging.

#include <cstring>

#include "baselines/gbdt.h"
#include "baselines/planet.h"
#include "bench_util.h"

using namespace treeserver;        // NOLINT
using namespace treeserver::bench;  // NOLINT

namespace {

double g_time_scale = 1.0;

void PartAB(const BenchOptions& options, const std::string& name) {
  std::printf("\n== Table IV: trees sweep on %s ==\n", name.c_str());
  const PreparedData& data = Prepare(name, options);
  // Paper sweeps 500..2000 trees; scaled to keep bench time sane.
  std::vector<int> tree_counts =
      options.quick ? std::vector<int>{10, 20, 40}
                    : std::vector<int>{25, 50, 75, 100};

  TablePrinter table({"#{trees}", "TreeServer (s)", "Acc",
                      "MLlib par (s)", "Acc"});
  for (int trees : tree_counts) {
    WallTimer ts_timer;
    EngineConfig engine = DefaultEngine(options);
    double ts_metric;
    {
      TreeServerCluster cluster(data.train, engine);
      ForestJobSpec spec;
      spec.num_trees = trees;
      spec.tree.max_depth = 10;
      spec.sqrt_columns = true;
      spec.seed = 3;
      ForestModel model = cluster.TrainForest(spec);
      ts_metric = EvaluateMetric(model, data.test);
    }
    double ts_seconds = ts_timer.Seconds();

    PlanetConfig planet;
    planet.num_trees = trees;
    planet.max_depth = 10;
    planet.sqrt_columns = true;
    planet.num_threads = options.workers * options.compers;
    planet.seed = 3;
    planet.time_scale = g_time_scale;
    WallTimer ml_timer;
    ForestModel ml_model = TrainPlanet(data.train, planet);
    double ml_seconds = ml_timer.Seconds();
    double ml_metric = EvaluateMetric(ml_model, data.test);

    TaskKind kind = data.profile.task_kind();
    table.AddRow({std::to_string(trees), Fmt(ts_seconds),
                  FormatMetric(kind, ts_metric), Fmt(ml_seconds),
                  FormatMetric(kind, ml_metric)});
  }
  table.Print();
}

void PartC(const BenchOptions& options) {
  std::printf("\n== Table IV(c): XGBoost-sim, accuracy vs tree count ==\n");
  std::vector<std::string> names = {"MS_LTRC", "c14B"};
  std::vector<int> rounds =
      options.quick ? std::vector<int>{2, 5, 10}
                    : std::vector<int>{5, 10, 20, 40};
  TablePrinter table({"#{rounds}", names[0] + " (s)", "Acc",
                      names[1] + " (s)", "Acc"});
  for (int r : rounds) {
    std::vector<std::string> row = {std::to_string(r)};
    for (const std::string& name : names) {
      const PreparedData& data = Prepare(name, options);
      GbdtConfig cfg;
      cfg.num_rounds = r;
      cfg.max_depth = 10;
      WallTimer timer;
      GbdtModel model = TrainGbdt(data.train, cfg);
      row.push_back(Fmt(timer.Seconds()));
      row.push_back(FormatMetric(TaskKind::kClassification,
                                 model.Evaluate(data.test)));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
}

}  // namespace

int main(int argc, char** argv) {
  BenchOptions options = BenchOptions::Parse(argc, argv);
  g_time_scale = options.scale;
  const char* part = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--part=", 7) == 0) part = argv[i] + 7;
  }
  std::printf("== Table IV: scalability to the number of trees (scale=%g) "
              "==\n",
              options.scale);
  if (part == nullptr || std::strcmp(part, "a") == 0) {
    PartAB(options, "MS_LTRC");
  }
  if (part == nullptr || std::strcmp(part, "b") == 0) {
    PartAB(options, "c14B");
  }
  if (part == nullptr || std::strcmp(part, "c") == 0) {
    PartC(options);
  }
  return 0;
}
