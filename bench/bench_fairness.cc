// Regenerates the "Fairness of Implementation" experiment (Section
// VIII): single-threaded, single-tree construction with TreeServer's
// exact serial trainer vs the MLlib simulator with all of its Spark
// overheads disabled. Expected shape: comparable times — the paper's
// point is that TreeServer's speedups come from the system design, not
// from C++ vs JVM (here: not from the simulated Spark overheads).

#include "baselines/planet.h"
#include "bench_util.h"
#include "tree/trainer.h"

using namespace treeserver;        // NOLINT
using namespace treeserver::bench;  // NOLINT

int main(int argc, char** argv) {
  BenchOptions options = BenchOptions::Parse(argc, argv);
  std::printf("== Fairness: single-thread single-tree, no simulated "
              "overheads (scale=%g) ==\n",
              options.scale);
  TablePrinter table({"Dataset", "Serial exact (s)", "Acc",
                      "Histogram 1T (s)", "Acc"});
  for (const std::string& name : {std::string("Higgs_boson"),
                                  std::string("MS_LTRC")}) {
    const PreparedData& data = Prepare(name, options);

    TreeConfig cfg;
    cfg.max_depth = 10;
    WallTimer exact_timer;
    TreeModel exact = TrainTreeOnTable(
        data.train, data.train.schema().FeatureIndices(), cfg);
    double exact_s = exact_timer.Seconds();
    ForestModel exact_forest(data.train.schema().task_kind(),
                             data.train.schema().num_classes());
    exact_forest.AddTree(std::move(exact));
    double exact_acc = EvaluateMetric(exact_forest, data.test);

    PlanetConfig planet;
    planet.max_depth = 10;
    planet.num_threads = 1;
    planet.num_partitions = 1;
    planet.job_overhead_ms = 0.0;       // no Spark scheduling cost
    planet.shuffle_bandwidth_mbps = 0;  // no shuffle cost
    WallTimer ml_timer;
    ForestModel ml = TrainPlanet(data.train, planet);
    double ml_s = ml_timer.Seconds();
    double ml_acc = EvaluateMetric(ml, data.test);

    TaskKind kind = data.profile.task_kind();
    table.AddRow({name, Fmt(exact_s, 3), FormatMetric(kind, exact_acc),
                  Fmt(ml_s, 3), FormatMetric(kind, ml_acc)});
  }
  table.Print();
  return 0;
}
