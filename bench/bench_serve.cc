// Inference-serving benchmark: compiled batched prediction vs the
// row-at-a-time ForestModel reference, thread scaling of the batched
// path, end-to-end micro-batching server throughput with latency
// percentiles from the metrics registry, and a replicated-fleet mode
// (router + N in-process replicas) sweeping sustained QPS and
// p99/p999 against replica count.
//
// Expected shape: the compiled structure-of-arrays traversal beats
// row-at-a-time prediction by well over 5x on one thread (no per-row
// PMF vector allocations, one tree's nodes stay hot across a whole row
// block), and the batched path scales near-linearly with threads since
// rows are embarrassingly parallel. Fleet QPS should grow with replica
// count until the single router thread saturates.
//
// Emits BENCH_serve.json (single-process server) and BENCH_fleet.json
// (replica-count sweep) into the working directory; CI uploads both.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/metrics_registry.h"
#include "common/serial.h"
#include "common/simd.h"
#include "common/timer.h"
#include "fleet/replica.h"
#include "fleet/router.h"
#include "forest/forest.h"
#include "net/network.h"
#include "serve/compiled_model.h"
#include "serve/layout.h"
#include "serve/registry.h"
#include "serve/server.h"
#include "table/binned.h"

using namespace treeserver;         // NOLINT
using namespace treeserver::bench;  // NOLINT

namespace {

double RowsPerSec(size_t rows, double seconds) {
  return seconds > 0 ? static_cast<double>(rows) / seconds : 0.0;
}

/// Batched compiled prediction with rows partitioned over `threads`.
double TimeCompiledThreads(const CompiledForest& compiled,
                           const DataTable& table, int threads,
                           std::vector<int32_t>* out) {
  const size_t n = table.num_rows();
  std::vector<uint32_t> rows(n);
  for (size_t i = 0; i < n; ++i) rows[i] = static_cast<uint32_t>(i);
  out->assign(n, 0);
  WallTimer timer;
  if (threads <= 1) {
    compiled.PredictLabel(table, rows.data(), n, -1, out->data());
    return timer.Seconds();
  }
  std::vector<std::thread> pool;
  const size_t chunk = (n + threads - 1) / threads;
  for (int t = 0; t < threads; ++t) {
    const size_t begin = std::min(n, t * chunk);
    const size_t end = std::min(n, begin + chunk);
    if (begin == end) break;
    pool.emplace_back([&, begin, end] {
      compiled.PredictLabel(table, rows.data() + begin, end - begin, -1,
                            out->data() + begin);
    });
  }
  for (auto& th : pool) th.join();
  return timer.Seconds();
}

void WriteJsonFile(const char* path, const std::string& json) {
  std::printf("%s", json.c_str());
  if (std::FILE* f = std::fopen(path, "w")) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
  }
}

struct FleetBenchPoint {
  int replicas = 0;
  double qps = 0.0;
  uint64_t p99_us = 0;
  uint64_t p999_us = 0;
};

/// Closed-loop batched load through a FleetRouter backed by
/// `num_replicas` in-process FleetReplicas. Every returned label is
/// checked against the compiled reference; latency percentiles come
/// from the router's own fleet.latency_us histogram.
bool RunFleetBench(int num_replicas, NodeLayout node_layout,
                   const std::string& model_bytes, const DataTable& table,
                   const std::vector<int32_t>& ref_labels, size_t requests,
                   size_t rows_per_batch, FleetBenchPoint* out) {
  MetricsRegistry metrics;
  InProcessTransport net(num_replicas, 0.0);
  std::vector<std::unique_ptr<FleetReplica>> replicas;
  for (int r = 0; r < num_replicas; ++r) {
    FleetReplicaConfig rc;
    rc.rank = r;
    rc.node_layout = node_layout;
    rc.serve.num_workers = 2;
    rc.serve.max_batch = 256;
    rc.serve.batch_deadline_us = 200;
    rc.serve.max_queue = 1 << 16;
    replicas.push_back(std::make_unique<FleetReplica>(&net, rc));
    replicas.back()->Start();
  }
  FleetRouterConfig cfg;
  cfg.metrics = &metrics;
  cfg.max_inflight = 1 << 14;
  cfg.default_deadline_ms = 60000;
  FleetRouter router(&net, cfg);
  router.Start();
  bool ok = router.Push("bench", model_bytes).ok();

  const size_t n = table.num_rows();
  std::vector<uint32_t> batch(rows_per_batch);
  std::vector<std::future<Result<FleetBatchResult>>> futures;
  futures.reserve(requests);
  std::vector<size_t> starts(requests);
  size_t mismatches = 0;
  size_t next_wait = 0;
  const size_t window = 64;  // outstanding batches in the closed loop
  auto drain_one = [&] {
    auto r = futures[next_wait].get();
    const size_t start = starts[next_wait];
    if (!r.ok() || r->labels.size() != rows_per_batch) {
      ++mismatches;
    } else {
      for (size_t j = 0; j < rows_per_batch; ++j) {
        if (r->labels[j] != ref_labels[(start + j) % n]) ++mismatches;
      }
    }
    ++next_wait;
  };
  WallTimer timer;
  for (size_t i = 0; ok && i < requests; ++i) {
    const size_t start = (i * rows_per_batch) % n;
    for (size_t j = 0; j < rows_per_batch; ++j) {
      batch[j] = static_cast<uint32_t>((start + j) % n);
    }
    starts[i] = start;
    futures.push_back(
        router.PredictRows("bench", table, batch.data(), rows_per_batch));
    while (futures.size() - next_wait > window) drain_one();
  }
  while (ok && next_wait < futures.size()) drain_one();
  const double seconds = timer.Seconds();
  Histogram::Snapshot lat = metrics.GetHistogram("fleet.latency_us")->snapshot();
  router.ShutdownReplicas();
  router.Stop();
  for (auto& r : replicas) r->Stop();
  if (!ok || mismatches != 0) {
    std::printf("FATAL: fleet bench (%d replicas): push ok=%d, %zu mismatches\n",
                num_replicas, ok ? 1 : 0, mismatches);
    return false;
  }
  out->replicas = num_replicas;
  out->qps = requests > 0 && seconds > 0 ? requests / seconds : 0.0;
  out->p99_us = lat.Percentile(0.99);
  out->p999_us = lat.Percentile(0.999);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  BenchOptions options = BenchOptions::Parse(argc, argv);
  const size_t rows = options.quick ? 20000 : 60000;
  const int trees = options.quick ? 20 : 40;

  DatasetProfile profile;
  profile.name = "serve_bench";
  profile.rows = rows;
  profile.num_numeric = 8;
  profile.num_categorical = 4;
  profile.num_classes = 5;
  profile.missing_fraction = 0.05;
  profile.concept_depth = 8;
  DataTable table = GenerateTable(profile, 7);

  ForestJobSpec spec;
  spec.num_trees = trees;
  spec.tree.max_depth = 12;
  spec.sqrt_columns = true;
  std::printf("== Serving bench: %zu rows, %d trees, %u hardware threads ==\n",
              rows, trees, std::thread::hardware_concurrency());
  WallTimer train_timer;
  ForestModel forest = TrainForestSerial(table, spec, options.compers * 2);
  std::printf("trained in %.2fs\n", train_timer.Seconds());

  // Row-at-a-time reference.
  WallTimer ref_timer;
  std::vector<int32_t> ref_labels(table.num_rows());
  for (size_t i = 0; i < table.num_rows(); ++i) {
    ref_labels[i] = forest.PredictLabel(table, i);
  }
  const double ref_s = ref_timer.Seconds();

  WallTimer compile_timer;
  CompiledForest compiled = CompiledForest::Compile(forest);
  const double compile_s = compile_timer.Seconds();

  TablePrinter table_out({"Predictor", "Threads", "Time (s)", "Rows/s",
                          "Speedup vs row-at-a-time"});
  table_out.AddRow({"ForestModel (row-at-a-time)", "1", Fmt(ref_s, 3),
                    Fmt(RowsPerSec(rows, ref_s), 0), "1.00"});
  std::vector<int32_t> got;
  double single_s = 0.0;
  for (int threads : {1, 2, 4, 8}) {
    const double s = TimeCompiledThreads(compiled, table, threads, &got);
    if (threads == 1) single_s = s;
    if (got != ref_labels) {
      std::printf("FATAL: compiled labels diverge at %d threads\n", threads);
      return 1;
    }
    table_out.AddRow({"CompiledForest (batched)", std::to_string(threads),
                      Fmt(s, 3), Fmt(RowsPerSec(rows, s), 0),
                      Fmt(ref_s / s, 2)});
  }
  table_out.Print();
  std::printf("compile time: %.3fs; single-thread compiled speedup: %.2fx; "
              "8-thread scaling vs 1-thread: %.2fx "
              "(bounded by the %u hardware threads above)\n",
              compile_s, ref_s / single_s,
              single_s / TimeCompiledThreads(compiled, table, 8, &got),
              std::thread::hardware_concurrency());

  // Single-thread batched traversal per node layout, byte-parity
  // checked against the row-at-a-time reference. Quantized needs the
  // serving table's bin index; with one bin per distinct value every
  // exact-split threshold is a bin upper, so no tree falls back.
  std::printf("\n== Node-layout sweep: single-thread bulk scoring "
              "(simd=%s) ==\n", SimdLevelName(ActiveSimdLevel()));
  std::shared_ptr<const BinnedTable> serve_bins =
      BinnedTable::Build(table, 65535);
  const int layout_iters = options.quick ? 3 : 5;
  TablePrinter layout_out(
      {"Layout", "Achieved", "Rows/s", "Speedup vs soa", "Same labels"});
  double layout_rps[3] = {0.0, 0.0, 0.0};
  for (NodeLayout want : {NodeLayout::kSoa, NodeLayout::kPacked,
                          NodeLayout::kQuantized}) {
    const NodeLayout got_layout = compiled.Repack(
        want, want == NodeLayout::kQuantized ? serve_bins : nullptr);
    double seconds = 0.0;
    bool same = true;
    for (int i = 0; i < layout_iters; ++i) {
      seconds += TimeCompiledThreads(compiled, table, 1, &got);
      same = same && got == ref_labels;
    }
    const double rps = RowsPerSec(rows * layout_iters, seconds);
    layout_rps[static_cast<int>(want)] = rps;
    layout_out.AddRow({NodeLayoutName(want), NodeLayoutName(got_layout),
                       Fmt(rps, 0),
                       Fmt(rps / layout_rps[0], 2) + "x",
                       same ? "yes" : "NO"});
    if (!same) {
      std::printf("FATAL: %s layout labels diverge\n", NodeLayoutName(want));
      return 1;
    }
  }
  layout_out.Print();
  const double traversal_speedup =
      layout_rps[0] > 0
          ? std::max(layout_rps[1], layout_rps[2]) / layout_rps[0]
          : 0.0;
  // Anchor against the row-at-a-time reference as well: ref code is
  // untouched by layout/SIMD work, so best_layout/ref is the number to
  // compare across sessions on a noisy box (the pre-PR recording of
  // this ratio is compiled_speedup, which was soa-only).
  const double best_vs_ref =
      ref_s > 0 ? std::max(layout_rps[1], layout_rps[2]) / (rows / ref_s) : 0.0;
  std::printf("best layout vs row-at-a-time reference: %.2fx "
              "(soa-only compiled_speedup above: %.2fx)\n",
              best_vs_ref, ref_s / single_s);

  // End-to-end micro-batching server: submit every row as its own
  // request and read latency percentiles back out of the registry.
  BinaryWriter model_writer;
  forest.Serialize(&model_writer);
  const std::string model_bytes = model_writer.Release();
  MetricsRegistry metrics;
  ModelRegistry registry;
  if (!registry.SetDefaultLayout(options.node_layout).ok()) return 1;
  if (!registry.Publish("bench", std::move(forest)).ok()) return 1;
  InferenceServerConfig server_cfg;
  server_cfg.num_workers = 4;
  server_cfg.max_batch = 256;
  server_cfg.batch_deadline_us = 200;
  server_cfg.max_queue = rows + 1;
  server_cfg.metrics = &metrics;
  InferenceServer server(&registry, server_cfg);
  server.Start();
  auto shared_table = std::make_shared<DataTable>(table);
  // Closed loop with a bounded window of outstanding requests, so the
  // latency percentiles measure micro-batching + execution delay rather
  // than the time to drain a 60k-deep backlog.
  const size_t window = 4096;
  std::vector<std::future<Result<Prediction>>> futures;
  futures.reserve(rows);
  size_t mismatches = 0;
  size_t next_wait = 0;
  WallTimer serve_timer;
  for (size_t i = 0; i < rows; ++i) {
    PredictRequest req;
    req.model = "bench";
    req.table = shared_table;
    req.row = static_cast<uint32_t>(i);
    futures.push_back(server.Predict(std::move(req)));
    while (futures.size() - next_wait > window) {
      auto r = futures[next_wait].get();
      if (!r.ok() || r->label != ref_labels[next_wait]) ++mismatches;
      ++next_wait;
    }
  }
  for (; next_wait < rows; ++next_wait) {
    auto r = futures[next_wait].get();
    if (!r.ok() || r->label != ref_labels[next_wait]) ++mismatches;
  }
  const double serve_s = serve_timer.Seconds();
  server.Stop();
  if (mismatches != 0) {
    std::printf("FATAL: %zu served predictions diverge\n", mismatches);
    return 1;
  }
  Histogram::Snapshot lat =
      metrics.GetHistogram("serve.latency_us.bench")->snapshot();
  Histogram::Snapshot batch =
      metrics.GetHistogram("serve.batch_rows")->snapshot();
  std::printf(
      "server: %.0f rows/s end-to-end, %llu batches (mean %.1f rows), "
      "latency p50 <= %lluus p99 <= %lluus max %lluus\n",
      RowsPerSec(rows, serve_s),
      static_cast<unsigned long long>(
          metrics.GetCounter("serve.batches")->value()),
      batch.Mean(), static_cast<unsigned long long>(lat.Percentile(0.50)),
      static_cast<unsigned long long>(lat.Percentile(0.99)),
      static_cast<unsigned long long>(lat.max));

  char serve_json[768];
  std::snprintf(serve_json, sizeof(serve_json),
                "{\"bench\":\"serve\",\"rows\":%zu,\"trees\":%d,"
                "\"simd\":\"%s\",\"layout\":\"%s\","
                "\"compiled_speedup\":%.2f,\"compile_s\":%.3f,"
                "\"st_soa_rows_per_sec\":%.0f,"
                "\"st_packed_rows_per_sec\":%.0f,"
                "\"st_quantized_rows_per_sec\":%.0f,"
                "\"traversal_speedup\":%.2f,"
                "\"best_layout_speedup_vs_ref\":%.2f,"
                "\"server_qps\":%.0f,\"p50_us\":%llu,\"p99_us\":%llu,"
                "\"max_us\":%llu}\n",
                rows, trees, SimdLevelName(ActiveSimdLevel()),
                NodeLayoutName(options.node_layout), ref_s / single_s,
                compile_s, layout_rps[0], layout_rps[1], layout_rps[2],
                traversal_speedup, best_vs_ref, RowsPerSec(rows, serve_s),
                static_cast<unsigned long long>(lat.Percentile(0.50)),
                static_cast<unsigned long long>(lat.Percentile(0.99)),
                static_cast<unsigned long long>(lat.max));
  WriteJsonFile("BENCH_serve.json", serve_json);

  // Replicated fleet: the same model pushed through a FleetRouter to
  // 1/2/4 in-process replicas, closed-loop batched load, parity
  // checked on every returned label.
  const size_t fleet_requests = options.quick ? 2000 : 8000;
  const size_t rows_per_batch = 16;
  TablePrinter fleet_out({"Replicas", "QPS (batches/s)", "Rows/s", "p99 (us)",
                          "p999 (us)"});
  std::string fleet_json = "{\"bench\":\"serve-fleet\",\"requests\":" +
                           std::to_string(fleet_requests) +
                           ",\"rows_per_batch\":" +
                           std::to_string(rows_per_batch) + ",\"points\":[";
  bool first = true;
  for (int replicas : {1, 2, 4}) {
    FleetBenchPoint point;
    if (!RunFleetBench(replicas, options.node_layout, model_bytes, table,
                       ref_labels, fleet_requests, rows_per_batch, &point)) {
      return 1;
    }
    fleet_out.AddRow({std::to_string(point.replicas), Fmt(point.qps, 0),
                      Fmt(point.qps * rows_per_batch, 0),
                      std::to_string(point.p99_us),
                      std::to_string(point.p999_us)});
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "%s{\"replicas\":%d,\"qps\":%.0f,\"p99_us\":%llu,"
                  "\"p999_us\":%llu}",
                  first ? "" : ",", point.replicas, point.qps,
                  static_cast<unsigned long long>(point.p99_us),
                  static_cast<unsigned long long>(point.p999_us));
    fleet_json += buf;
    first = false;
  }
  fleet_json += "]}\n";
  std::printf("== Fleet sweep: %zu batched requests x %zu rows ==\n",
              fleet_requests, rows_per_batch);
  fleet_out.Print();
  WriteJsonFile("BENCH_fleet.json", fleet_json);
  return 0;
}
