// Ablations of TreeServer's design choices (not a paper table; backs
// the claims DESIGN.md makes about each mechanism):
//
//   (1) hybrid BFS/DFS scheduling: τ_dfs = 0 (pure breadth-first,
//       PLANET-style ordering) vs τ_dfs = ∞ (pure depth-first) vs the
//       default hybrid;
//   (2) data-channel compression (delta+varint row ids, bit-packed
//       categorical values): traffic and wall time vs the paper's
//       uncompressed protocol;
//   (3) column replication factor k: assignment flexibility (traffic,
//       time) — k >= 2 additionally buys crash tolerance.

#include "bench_util.h"

using namespace treeserver;        // NOLINT
using namespace treeserver::bench;  // NOLINT

namespace {

struct Run {
  double seconds = 0.0;
  double busy = 0.0;
  double mbytes = 0.0;
};

Run TrainWith(const PreparedData& data, EngineConfig engine, int trees) {
  WallTimer timer;
  TreeServerCluster cluster(data.train, engine);
  ForestJobSpec spec;
  spec.num_trees = trees;
  spec.tree.max_depth = 10;
  spec.tree.impurity = data.profile.task_kind() == TaskKind::kRegression
                           ? Impurity::kVariance
                           : Impurity::kGini;
  spec.sqrt_columns = true;
  spec.seed = 3;
  cluster.TrainForest(spec);
  Run run;
  run.seconds = timer.Seconds();
  EngineMetrics m = cluster.metrics();
  run.busy = m.comper_busy_seconds;
  run.mbytes = static_cast<double>(m.bytes_sent_total) / (1 << 20);
  return run;
}

void Scheduling(const BenchOptions& options, int trees) {
  std::printf("\n== Ablation 1: task scheduling order (%d trees) ==\n",
              trees);
  TablePrinter table({"Dataset", "BFS-only (s)", "DFS-only (s)",
                      "Hybrid (s)"});
  for (const std::string& name :
       {std::string("Higgs_boson"), std::string("KDD99")}) {
    const PreparedData& data = Prepare(name, options);
    EngineConfig bfs = DefaultEngine(options);
    bfs.tau_dfs = bfs.tau_d;  // never switch to depth-first
    EngineConfig dfs = DefaultEngine(options);
    dfs.tau_dfs = UINT64_MAX;  // depth-first from the root
    EngineConfig hybrid = DefaultEngine(options);
    Run b = TrainWith(data, bfs, trees);
    Run d = TrainWith(data, dfs, trees);
    Run h = TrainWith(data, hybrid, trees);
    table.AddRow({name, Fmt(b.seconds, 3), Fmt(d.seconds, 3),
                  Fmt(h.seconds, 3)});
  }
  table.Print();
}

void Compression(const BenchOptions& options, int trees) {
  std::printf("\n== Ablation 2: data-channel compression (%d trees) ==\n",
              trees);
  TablePrinter table({"Dataset", "Raw (MB)", "Raw (s)", "Compressed (MB)",
                      "Compressed (s)"});
  for (const std::string& name :
       {std::string("loan_m1"), std::string("Covtype"),
        std::string("Poker")}) {
    const PreparedData& data = Prepare(name, options);
    EngineConfig raw = DefaultEngine(options);
    EngineConfig packed = DefaultEngine(options);
    packed.compress_transfers = true;
    Run r = TrainWith(data, raw, trees);
    Run p = TrainWith(data, packed, trees);
    table.AddRow({name, Fmt(r.mbytes, 2), Fmt(r.seconds, 3),
                  Fmt(p.mbytes, 2), Fmt(p.seconds, 3)});
  }
  table.Print();
}

void Replication(const BenchOptions& options, int trees) {
  std::printf("\n== Ablation 3: column replication factor k (%d trees) ==\n",
              trees);
  TablePrinter table({"k", "Higgs time (s)", "Higgs traffic (MB)",
                      "loan_m1 time (s)", "loan_m1 traffic (MB)"});
  for (int k : {1, 2, 4}) {
    std::vector<std::string> row = {std::to_string(k)};
    for (const std::string& name :
         {std::string("Higgs_boson"), std::string("loan_m1")}) {
      const PreparedData& data = Prepare(name, options);
      EngineConfig engine = DefaultEngine(options);
      engine.replication = k;
      Run run = TrainWith(data, engine, trees);
      row.push_back(Fmt(run.seconds, 3));
      row.push_back(Fmt(run.mbytes, 2));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
}

}  // namespace

int main(int argc, char** argv) {
  BenchOptions options = BenchOptions::Parse(argc, argv);
  int trees = options.quick ? 8 : 20;
  std::printf("== Design ablations (scale=%g) ==\n", options.scale);
  Scheduling(options, trees);
  Compression(options, trees);
  Replication(options, trees);
  return 0;
}
