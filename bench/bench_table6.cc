// Regenerates Table VI: horizontal scalability — machines 4..15, with
// per-machine CPU utilization and send throughput, for 1-tree and
// 20-tree jobs.
//
// The simulated interconnect is throttled (--quick lowers work, not
// bandwidth), and the table reports the modeled wall time
// (busy/(M*compers) vs the busiest link's transfer time — see
// EXPERIMENTS.md), modeled CPU% per machine, and the busiest machine's
// send throughput. Expected shape: time falls with machines, CPU%
// stays high, and improvement flattens once the send throughput
// saturates the link — the paper's 941 Mbps knee.

#include "bench_util.h"

using namespace treeserver;        // NOLINT
using namespace treeserver::bench;  // NOLINT

namespace {

void Sweep(const BenchOptions& options, const std::string& name, int trees,
           double bandwidth_mbps) {
  std::printf("\n== Table VI: #machines sweep on %s (%d trees, link %.0f "
              "Mbps) ==\n",
              name.c_str(), trees, bandwidth_mbps);
  const PreparedData& data = Prepare(name, options);
  TablePrinter table({"#{macs}", "Wall (s)", "Busy (s)", "Modeled (s)",
                      "CPU%/mac", "Send (Mbps)"});
  for (int machines : {4, 8, 12, 15}) {
    EngineConfig engine = DefaultEngine(options);
    engine.num_workers = machines;
    engine.bandwidth_mbps = bandwidth_mbps;
    WallTimer timer;
    EngineMetrics metrics;
    double max_endpoint_bytes = 0;
    {
      TreeServerCluster cluster(data.train, engine);
      ForestJobSpec spec;
      spec.num_trees = trees;
      spec.tree.max_depth = 10;
      spec.sqrt_columns = trees > 1;
      spec.seed = 3;
      cluster.TrainForest(spec);
      metrics = cluster.metrics();
      for (int w = 0; w < machines; ++w) {
        max_endpoint_bytes = std::max(
            max_endpoint_bytes,
            static_cast<double>(cluster.network().bytes_sent(w)));
      }
    }
    double wall = timer.Seconds();
    double modeled = ModeledWall(metrics, engine, max_endpoint_bytes);
    double cpu_pct =
        modeled > 0
            ? metrics.comper_busy_seconds / (modeled * machines) * 100.0
            : 0.0;
    double send_mbps =
        modeled > 0 ? max_endpoint_bytes * 8.0 / modeled / 1e6 : 0.0;
    table.AddRow({std::to_string(machines), Fmt(wall, 3),
                  Fmt(metrics.comper_busy_seconds, 3), Fmt(modeled, 4),
                  Fmt(cpu_pct, 0) + "%", Fmt(send_mbps, 1)});
  }
  table.Print();
}

}  // namespace

int main(int argc, char** argv) {
  BenchOptions options = BenchOptions::Parse(argc, argv);
  std::printf("== Table VI: horizontal scalability (scale=%g, %d compers) "
              "==\n",
              options.scale, options.compers);
  // The link speed is scaled with the data so the saturation knee
  // lands inside the sweep, like the paper's 1 GigE did at full scale.
  double link = std::max(0.5, 941.0 * options.scale * 100.0);
  int small = 1;
  int large = options.quick ? 8 : 20;
  Sweep(options, "Allstate", small, link);
  Sweep(options, "Higgs_boson", small, link);
  Sweep(options, "Allstate", large, link);
  Sweep(options, "Higgs_boson", large, link);
  return 0;
}
