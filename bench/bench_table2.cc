// Regenerates Table II: system comparison on all Table I datasets.
//   (a) one decision tree   — TreeServer vs MLlib(parallel) vs MLlib(1T)
//   (b) random forest, 20 trees, sqrt(|A|) columns per tree
//   (c) 100-tree bagging (TreeServer) vs 100-round boosting (XGBoost
//       stand-in). Tree counts scale down with --quick.
//
// Expected shape (not absolute numbers): TreeServer several times
// faster than the MLlib simulator everywhere (exact splits computed by
// whole-column owners vs level-synchronous histogram jobs), accuracy
// >= MLlib's in most rows (exact vs binned splits), boosting sometimes
// more accurate but far slower than bagging at equal tree counts.

#include <cstring>

#include "baselines/gbdt.h"
#include "baselines/planet.h"
#include "bench_util.h"

using namespace treeserver;        // NOLINT
using namespace treeserver::bench;  // NOLINT

namespace {

double g_time_scale = 1.0;

struct SystemRun {
  double seconds = 0.0;
  double metric = 0.0;
};

SystemRun RunTreeServer(const PreparedData& data, const BenchOptions& options,
                        int trees, bool sqrt_columns) {
  EngineConfig engine = DefaultEngine(options);
  WallTimer timer;
  TreeServerCluster cluster(data.train, engine);
  ForestJobSpec spec;
  spec.num_trees = trees;
  spec.tree.max_depth = 10;
  spec.tree.impurity = data.profile.task_kind() == TaskKind::kRegression
                           ? Impurity::kVariance
                           : Impurity::kGini;
  spec.sqrt_columns = sqrt_columns;
  spec.seed = 3;
  ForestModel model = cluster.TrainForest(spec);
  SystemRun run;
  run.seconds = timer.Seconds();
  run.metric = EvaluateMetric(model, data.test);
  return run;
}

SystemRun RunPlanet(const PreparedData& data, int trees, bool sqrt_columns,
                    int threads) {
  PlanetConfig cfg;
  cfg.num_trees = trees;
  cfg.max_depth = 10;
  cfg.sqrt_columns = sqrt_columns;
  cfg.impurity = data.profile.task_kind() == TaskKind::kRegression
                     ? Impurity::kVariance
                     : Impurity::kGini;
  cfg.num_threads = threads;
  cfg.seed = 3;
  cfg.time_scale = g_time_scale;
  WallTimer timer;
  ForestModel model = TrainPlanet(data.train, cfg);
  SystemRun run;
  run.seconds = timer.Seconds();
  run.metric = EvaluateMetric(model, data.test);
  return run;
}

SystemRun RunGbdt(const PreparedData& data, int rounds) {
  GbdtConfig cfg;
  cfg.num_rounds = rounds;
  cfg.max_depth = 10;
  cfg.num_threads = 1;
  WallTimer timer;
  GbdtModel model = TrainGbdt(data.train, cfg);
  SystemRun run;
  run.seconds = timer.Seconds();
  run.metric = model.Evaluate(data.test);
  return run;
}

std::vector<std::string> DatasetNames(const BenchOptions& options) {
  std::vector<std::string> names = {"Allstate", "Higgs_boson", "MS_LTRC",
                                    "c14B",     "Covtype",     "Poker",
                                    "KDD99",    "SUSY",        "loan_m1",
                                    "loan_y1",  "loan_y2"};
  if (options.quick) names.resize(5);
  return names;
}

void PartA(const BenchOptions& options) {
  std::printf("\n== Table II(a): one decision tree ==\n");
  TablePrinter table({"Dataset", "TreeServer (s)", "Acc", "MLlib par (s)",
                      "Acc", "MLlib 1T (s)", "Acc"});
  for (const std::string& name : DatasetNames(options)) {
    const PreparedData& data = Prepare(name, options);
    SystemRun ts = RunTreeServer(data, options, 1, false);
    SystemRun mp = RunPlanet(data, 1, false, options.workers * options.compers);
    SystemRun m1 = RunPlanet(data, 1, false, 1);
    TaskKind kind = data.profile.task_kind();
    table.AddRow({name, Fmt(ts.seconds), FormatMetric(kind, ts.metric),
                  Fmt(mp.seconds), FormatMetric(kind, mp.metric),
                  Fmt(m1.seconds), FormatMetric(kind, m1.metric)});
  }
  table.Print();
}

void PartB(const BenchOptions& options) {
  int trees = options.quick ? 8 : 20;
  std::printf("\n== Table II(b): random forest (%d trees, sqrt cols) ==\n",
              trees);
  TablePrinter table({"Dataset", "TreeServer (s)", "Acc", "MLlib par (s)",
                      "Acc", "MLlib 1T (s)", "Acc"});
  for (const std::string& name : DatasetNames(options)) {
    const PreparedData& data = Prepare(name, options);
    SystemRun ts = RunTreeServer(data, options, trees, true);
    SystemRun mp = RunPlanet(data, trees, true, options.workers * options.compers);
    SystemRun m1 = RunPlanet(data, trees, true, 1);
    TaskKind kind = data.profile.task_kind();
    table.AddRow({name, Fmt(ts.seconds), FormatMetric(kind, ts.metric),
                  Fmt(mp.seconds), FormatMetric(kind, mp.metric),
                  Fmt(m1.seconds), FormatMetric(kind, m1.metric)});
  }
  table.Print();
}

void PartC(const BenchOptions& options) {
  // The paper uses 100 trees / 100 boosting rounds; the boosting
  // baseline is O(rounds) sequential, so the bench scales the counts
  // down together — the bagging-vs-boosting time gap is the point.
  int trees = options.quick ? 10 : 30;
  int rounds = options.quick ? 10 : 30;
  std::printf(
      "\n== Table II(c): TreeServer bagging (%d trees) vs boosting "
      "(%d rounds) ==\n",
      trees, rounds);
  TablePrinter table({"Dataset", "TreeServer (s)", "Acc", "XGBoost-sim (s)",
                      "Acc"});
  for (const std::string& name : DatasetNames(options)) {
    const PreparedData& data = Prepare(name, options);
    SystemRun ts = RunTreeServer(data, options, trees, true);
    SystemRun gb = RunGbdt(data, rounds);
    TaskKind kind = data.profile.task_kind();
    table.AddRow({name, Fmt(ts.seconds), FormatMetric(kind, ts.metric),
                  Fmt(gb.seconds), FormatMetric(kind, gb.metric)});
  }
  table.Print();
}

}  // namespace

int main(int argc, char** argv) {
  BenchOptions options = BenchOptions::Parse(argc, argv);
  g_time_scale = options.scale;
  const char* part = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--part=", 7) == 0) part = argv[i] + 7;
  }
  std::printf("== Table II: system comparison (scale=%g, %d workers x %d "
              "compers) ==\n",
              options.scale, options.workers, options.compers);
  if (part == nullptr || std::strcmp(part, "a") == 0) PartA(options);
  if (part == nullptr || std::strcmp(part, "b") == 0) PartB(options);
  if (part == nullptr || std::strcmp(part, "c") == 0) PartC(options);
  return 0;
}
