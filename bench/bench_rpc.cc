// Transport benchmark: loopback-TCP framing cost vs the in-process
// simulated network, and bulk I_x (row-id block) throughput with and
// without wire compression.
//
// Expected shape: in-process RTT is a queue push (single-digit µs);
// loopback TCP adds syscalls, framing and CRC but stays well under
// 100 µs p50 on an idle box — negligible next to the multi-millisecond
// column scans it carries. Compressed I_x blocks trade CPU for bytes:
// ascending row ids delta+varint-pack to a fraction of the raw 4 B/row,
// so effective row throughput rises whenever the wire (not the CPU) is
// the bottleneck.
//
// Emits a one-line JSON summary (bench=rpc) after the tables for
// scripted consumption.
//
// `--chaos-overhead` runs the fault-injector cost guard instead: it
// measures the per-send cost a FaultInjectingTransport with an empty
// schedule adds (interleaved bare/wrapped in-process floods, median
// batch per side) and fails when that exceeds 1% of the measured
// loopback-TCP round trip — the transport the injector actually
// fronts on chaos-capable deployments, where it is always in the path.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/timer.h"
#include "engine/messages.h"
#include "net/network.h"
#include "rpc/fault_injection.h"
#include "rpc/tcp_transport.h"
#include "rpc/transport.h"

using namespace treeserver;         // NOLINT
using namespace treeserver::bench;  // NOLINT

namespace {

uint64_t PercentileUs(std::vector<uint64_t>* samples, double p) {
  if (samples->empty()) return 0;
  std::sort(samples->begin(), samples->end());
  const size_t idx = std::min(
      samples->size() - 1, static_cast<size_t>(p * (samples->size() - 1)));
  return (*samples)[idx];
}

struct RttStats {
  uint64_t p50 = 0;
  uint64_t p90 = 0;
  uint64_t p99 = 0;
  uint64_t max = 0;
};

/// Ping-pong between the master rank and worker 0: the echo thread
/// drains the worker's task queue and bounces every message back, so
/// one sample is a full request+response round trip including framing,
/// CRC and (for TCP) two loopback socket hops.
///
/// `master` and `worker` are the two rank-local transports; for the
/// in-process network they are the same object.
RttStats MeasureRtt(Transport* master, Transport* worker, int iterations,
                    size_t payload_bytes) {
  std::thread echo([worker] {
    while (true) {
      auto msg = worker->task_queue(0).Pop();
      if (!msg.has_value()) return;
      Message reply;
      reply.src = 0;
      reply.dst = kMasterRank;
      reply.type = msg->type;
      reply.payload = std::move(msg->payload);
      if (!worker->Send(ChannelKind::kTask, reply)) return;
    }
  });

  const std::string payload(payload_bytes, 'x');
  std::vector<uint64_t> samples;
  samples.reserve(iterations);
  for (int i = 0; i < iterations; ++i) {
    WallTimer timer;
    Message msg;
    msg.src = kMasterRank;
    msg.dst = 0;
    msg.type = 1;
    msg.payload = payload;
    if (!master->Send(ChannelKind::kTask, msg)) break;
    auto reply = master->master_queue().Pop();
    if (!reply.has_value()) break;
    const uint64_t us = static_cast<uint64_t>(timer.Seconds() * 1e6);
    // The first round trips pay connection and cache warmup; keep them
    // out of the percentiles.
    if (i >= iterations / 10) samples.push_back(us);
  }

  worker->task_queue(0).Close();
  echo.join();

  RttStats stats;
  stats.max = samples.empty() ? 0 : *std::max_element(samples.begin(), samples.end());
  stats.p50 = PercentileUs(&samples, 0.50);
  stats.p90 = PercentileUs(&samples, 0.90);
  stats.p99 = PercentileUs(&samples, 0.99);
  return stats;
}

struct BulkStats {
  double wire_mb = 0;        // payload actually framed, in MB
  double rows_per_sec = 0;   // row ids delivered per second
  double mb_per_sec = 0;
};

/// Streams `blocks` IxResponse row-id blocks (the dominant bulk
/// transfer of the data channel) from worker 0 to the master and
/// reports wire volume and delivered-row throughput.
BulkStats MeasureBulk(Transport* master, Transport* worker, int blocks,
                      size_t rows_per_block, bool compress) {
  IxResponse block;
  block.requester_task = 1;
  block.compress = compress;
  block.rows.resize(rows_per_block);
  // Ascending with small gaps — the shape real I_x splits have, and
  // what the delta+varint coder is built for.
  uint32_t row = 0;
  for (size_t i = 0; i < rows_per_block; ++i) {
    row += 1 + static_cast<uint32_t>(i % 3);
    block.rows[i] = row;
  }
  const std::string payload = block.Encode();

  std::atomic<uint64_t> decoded_rows{0};
  std::thread sink([master, &decoded_rows] {
    while (true) {
      auto msg = master->master_queue().Pop();
      if (!msg.has_value()) return;
      IxResponse out;
      if (IxResponse::Decode(msg->payload, &out).ok()) {
        decoded_rows.fetch_add(out.rows.size(), std::memory_order_relaxed);
      }
    }
  });

  WallTimer timer;
  for (int i = 0; i < blocks; ++i) {
    Message msg;
    msg.src = 0;
    msg.dst = kMasterRank;
    msg.type = 21;  // kIxResponse
    msg.payload = payload;
    if (!worker->Send(ChannelKind::kData, msg)) break;
  }
  // Wait for the sink to decode everything that was sent.
  const uint64_t expect = static_cast<uint64_t>(blocks) * rows_per_block;
  while (decoded_rows.load(std::memory_order_relaxed) < expect) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  const double secs = timer.Seconds();
  master->master_queue().Close();
  sink.join();

  BulkStats stats;
  stats.wire_mb = static_cast<double>(payload.size()) * blocks / 1e6;
  stats.rows_per_sec = secs > 0 ? static_cast<double>(expect) / secs : 0;
  stats.mb_per_sec = secs > 0 ? stats.wire_mb / secs : 0;
  return stats;
}

/// One chaos-guard batch: push `msgs` 64 B task messages through
/// `via` into worker 0's queue on `net` and return the wall
/// milliseconds for the sends alone. Single-threaded on purpose — a
/// concurrent drain thread adds producer/consumer scheduling variance
/// that dwarfs the one predicted branch under test; the queue is
/// drained untimed afterwards.
double ChaosGuardBatch(Transport* via, InProcessTransport* net, int msgs) {
  const std::string payload(64, 'x');
  WallTimer timer;
  for (int i = 0; i < msgs; ++i) {
    Message msg;
    msg.src = kMasterRank;
    msg.dst = 0;
    msg.type = 1;
    msg.payload = payload;
    if (!via->Send(ChannelKind::kTask, msg)) break;
  }
  const double ms = timer.Seconds() * 1e3;
  while (net->task_queue(0).TryPop().has_value()) {
  }
  return ms;
}

struct TcpPair {
  std::unique_ptr<TcpTransport> master;
  std::unique_ptr<TcpTransport> worker;

  TcpPair() {
    TcpTransportOptions o;
    o.num_workers = 1;
    o.local_rank = kMasterRank;
    master = std::make_unique<TcpTransport>(o);
    o.local_rank = 0;
    worker = std::make_unique<TcpTransport>(o);
    const std::vector<std::string> peers = {
        "127.0.0.1:" + std::to_string(worker->local_port()),
        "127.0.0.1:" + std::to_string(master->local_port())};
    if (!master->ConnectPeers(peers).ok() ||
        !worker->ConnectPeers(peers).ok() || !master->WaitForPeers(10000) ||
        !worker->WaitForPeers(10000)) {
      std::fprintf(stderr, "bench_rpc: TCP pair failed to connect\n");
      std::exit(1);
    }
  }

  ~TcpPair() {
    worker->Shutdown();
    master->Shutdown();
  }
};

/// `--chaos-overhead` entry point. Two measurements:
///
/// 1. The injector's absolute per-send cost: interleaved bare vs
///    empty-schedule-wrapped in-process floods, median batch per side.
///    Short alternating batches cancel machine drift (a 100 ms
///    monolithic run drifts several percent on a shared box) and the
///    median sheds interrupt outliers. The healthy cost is one
///    predicted branch plus a Message move and a second virtual
///    dispatch — low tens of ns.
/// 2. The cost of what the injector fronts in deployment: the bare
///    loopback-TCP round trip (chaos wraps TcpTransport in
///    treeserver_node).
///
/// The gate is (1) as a fraction of (2): the injector must stay under
/// 1% of the message's real transport cost. Gating against the
/// in-process queue push instead would demand < ~2 ns — below even an
/// extra virtual call — while letting the regressions this guard
/// exists for (a lock, an RNG roll, an allocation on the inactive
/// path) cost hundreds of ns is what actually moves this ratio.
int RunChaosOverheadGuard() {
  constexpr int kBatchMsgs = 20000;
  constexpr int kBatches = 80;
  double bare_ms = 0.0;
  double wrapped_ms = 0.0;
  {
    InProcessTransport bare_net(1, /*bandwidth_mbps=*/0.0);
    InProcessTransport wrapped_net(1, /*bandwidth_mbps=*/0.0);
    FaultInjectingTransport chaos(&wrapped_net, FaultSchedule{});

    // Warmup: allocator arenas, page faults, branch predictors.
    ChaosGuardBatch(&bare_net, &bare_net, kBatchMsgs);
    ChaosGuardBatch(&chaos, &wrapped_net, kBatchMsgs);

    std::vector<double> bare_runs, wrapped_runs;
    bare_runs.reserve(kBatches);
    wrapped_runs.reserve(kBatches);
    for (int i = 0; i < kBatches; ++i) {
      bare_runs.push_back(ChaosGuardBatch(&bare_net, &bare_net, kBatchMsgs));
      wrapped_runs.push_back(
          ChaosGuardBatch(&chaos, &wrapped_net, kBatchMsgs));
    }
    chaos.Stop();

    auto median = [](std::vector<double>* v) {
      std::sort(v->begin(), v->end());
      return (*v)[v->size() / 2];
    };
    bare_ms = median(&bare_runs);
    wrapped_ms = median(&wrapped_runs);
  }
  const double bare_ns = bare_ms * 1e6 / kBatchMsgs;
  const double wrapped_ns = wrapped_ms * 1e6 / kBatchMsgs;
  const double added_ns = std::max(0.0, wrapped_ns - bare_ns);
  std::printf("chaos-overhead: %d batches x %d msgs, per-send "
              "bare=%.0fns wrapped=%.0fns added=%.0fns\n",
              kBatches, kBatchMsgs, bare_ns, wrapped_ns, added_ns);

  RttStats tcp_rtt;
  {
    TcpPair pair;
    tcp_rtt = MeasureRtt(pair.master.get(), pair.worker.get(),
                         /*iterations=*/2000, /*payload_bytes=*/64);
  }
  std::printf("chaos-overhead: bare loopback-tcp rtt p50=%lluus\n",
              static_cast<unsigned long long>(tcp_rtt.p50));

  const double rtt_ns = static_cast<double>(tcp_rtt.p50) * 1e3;
  const double overhead_pct = rtt_ns > 0 ? added_ns / rtt_ns * 100.0 : 100.0;
  constexpr double kBudgetPct = 1.0;
  char json[256];
  std::snprintf(json, sizeof(json),
                "{\"bench\":\"rpc-chaos\",\"send_bare_ns\":%.0f,"
                "\"send_wrapped_ns\":%.0f,\"added_ns\":%.0f,"
                "\"tcp_rtt_p50_us\":%llu,\"overhead_pct\":%.3f,"
                "\"budget_pct\":%.1f}\n",
                bare_ns, wrapped_ns, added_ns,
                static_cast<unsigned long long>(tcp_rtt.p50), overhead_pct,
                kBudgetPct);
  std::printf("%s", json);
  if (std::FILE* f = std::fopen("BENCH_rpc_chaos.json", "w")) {
    std::fputs(json, f);
    std::fclose(f);
  }
  if (overhead_pct > kBudgetPct) {
    std::fprintf(stderr,
                 "FAIL: empty-schedule injector adds %.0fns per send "
                 "(%.3f%% of the TCP round trip), budget %.1f%%\n",
                 added_ns, overhead_pct, kBudgetPct);
    return 1;
  }
  std::printf("PASS: empty-schedule injector adds %.0fns per send — "
              "%.3f%% of the TCP round trip (budget %.1f%%)\n",
              added_ns, overhead_pct, kBudgetPct);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == std::string("--chaos-overhead")) {
      return RunChaosOverheadGuard();
    }
  }
  const BenchOptions options = BenchOptions::Parse(argc, argv);
  const int rtt_iters = options.quick ? 2000 : 10000;
  const size_t rtt_payload = 64;
  const int bulk_blocks = options.quick ? 10 : 40;
  const size_t bulk_rows = options.quick ? 100000 : 500000;

  std::printf("RPC transport bench: %d RTT iterations (%zu B payload), "
              "%d x %zu-row I_x blocks\n\n",
              rtt_iters, rtt_payload, bulk_blocks, bulk_rows);

  RttStats inproc_rtt;
  {
    InProcessTransport net(1, /*bandwidth_mbps=*/0.0);
    inproc_rtt = MeasureRtt(&net, &net, rtt_iters, rtt_payload);
  }
  RttStats tcp_rtt;
  {
    TcpPair pair;
    tcp_rtt = MeasureRtt(pair.master.get(), pair.worker.get(), rtt_iters,
                         rtt_payload);
  }

  TablePrinter rtt_table({"transport", "p50(us)", "p90(us)", "p99(us)",
                          "max(us)"});
  for (const auto& [name, s] :
       {std::pair<const char*, RttStats>{"in-process", inproc_rtt},
        std::pair<const char*, RttStats>{"loopback-tcp", tcp_rtt}}) {
    rtt_table.AddRow({name, std::to_string(s.p50), std::to_string(s.p90),
                      std::to_string(s.p99), std::to_string(s.max)});
  }
  rtt_table.Print();
  std::printf("\n");

  BulkStats raw;
  BulkStats packed;
  {
    TcpPair pair;
    raw = MeasureBulk(pair.master.get(), pair.worker.get(), bulk_blocks,
                      bulk_rows, /*compress=*/false);
  }
  {
    TcpPair pair;
    packed = MeasureBulk(pair.master.get(), pair.worker.get(), bulk_blocks,
                         bulk_rows, /*compress=*/true);
  }

  TablePrinter bulk_table({"I_x blocks", "wire MB", "MB/s", "Mrows/s"});
  bulk_table.AddRow({"raw", Fmt(raw.wire_mb), Fmt(raw.mb_per_sec),
                     Fmt(raw.rows_per_sec / 1e6)});
  bulk_table.AddRow({"compressed", Fmt(packed.wire_mb), Fmt(packed.mb_per_sec),
                     Fmt(packed.rows_per_sec / 1e6)});
  bulk_table.Print();
  std::printf("  compression ratio: %.2fx\n\n",
              packed.wire_mb > 0 ? raw.wire_mb / packed.wire_mb : 0.0);

  std::printf(
      "{\"bench\":\"rpc\",\"rtt_inproc_p50_us\":%llu,"
      "\"rtt_inproc_p99_us\":%llu,\"rtt_tcp_p50_us\":%llu,"
      "\"rtt_tcp_p99_us\":%llu,\"bulk_raw_mb_per_s\":%.2f,"
      "\"bulk_compressed_mb_per_s\":%.2f,\"bulk_raw_mrows_per_s\":%.2f,"
      "\"bulk_compressed_mrows_per_s\":%.2f,\"compression_ratio\":%.2f}\n",
      static_cast<unsigned long long>(inproc_rtt.p50),
      static_cast<unsigned long long>(inproc_rtt.p99),
      static_cast<unsigned long long>(tcp_rtt.p50),
      static_cast<unsigned long long>(tcp_rtt.p99), raw.mb_per_sec,
      packed.mb_per_sec, raw.rows_per_sec / 1e6, packed.rows_per_sec / 1e6,
      packed.wire_mb > 0 ? raw.wire_mb / packed.wire_mb : 0.0);
  return 0;
}
