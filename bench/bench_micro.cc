// Micro-benchmarks (google-benchmark) for the hot paths: exact split
// finders, target statistics, the plan deque, the concurrent hash map,
// and message serialization. These are throughput measurements, not
// paper-table reproductions.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "common/serial.h"
#include "concurrent/concurrent_hash_map.h"
#include "concurrent/plan_deque.h"
#include "table/datasets.h"
#include "tree/split.h"
#include "tree/trainer.h"

namespace treeserver {
namespace {

ColumnPtr MakeNumericColumn(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (double& x : v) x = rng.UniformDouble();
  return Column::Numeric("x", std::move(v));
}

ColumnPtr MakeLabelColumn(size_t n, int classes, uint64_t seed) {
  Rng rng(seed);
  std::vector<int32_t> v(n);
  for (int32_t& x : v) x = static_cast<int32_t>(rng.Uniform(classes));
  return Column::Categorical("y", std::move(v), classes);
}

void BM_NumericSplitClassification(benchmark::State& state) {
  const size_t n = state.range(0);
  ColumnPtr x = MakeNumericColumn(n, 1);
  ColumnPtr y = MakeLabelColumn(n, 2, 2);
  SplitContext ctx{TaskKind::kClassification, Impurity::kGini, 2};
  for (auto _ : state) {
    SplitOutcome o = FindBestSplit(*x, 0, *y, ctx, nullptr, n);
    benchmark::DoNotOptimize(o);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_NumericSplitClassification)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_NumericSplitRegression(benchmark::State& state) {
  const size_t n = state.range(0);
  ColumnPtr x = MakeNumericColumn(n, 3);
  ColumnPtr y = MakeNumericColumn(n, 4);
  SplitContext ctx{TaskKind::kRegression, Impurity::kVariance, 0};
  for (auto _ : state) {
    SplitOutcome o = FindBestSplit(*x, 0, *y, ctx, nullptr, n);
    benchmark::DoNotOptimize(o);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_NumericSplitRegression)->Arg(1000)->Arg(100000);

void BM_CategoricalSplit(benchmark::State& state) {
  const size_t n = state.range(0);
  Rng rng(5);
  std::vector<int32_t> xv(n);
  for (int32_t& v : xv) v = static_cast<int32_t>(rng.Uniform(12));
  ColumnPtr x = Column::Categorical("x", std::move(xv), 12);
  ColumnPtr y = MakeLabelColumn(n, 5, 6);
  SplitContext ctx{TaskKind::kClassification, Impurity::kGini, 5};
  for (auto _ : state) {
    SplitOutcome o = FindBestSplit(*x, 0, *y, ctx, nullptr, n);
    benchmark::DoNotOptimize(o);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_CategoricalSplit)->Arg(1000)->Arg(100000);

void BM_TrainTree(benchmark::State& state) {
  DatasetProfile p;
  p.rows = state.range(0);
  p.num_numeric = 8;
  p.num_categorical = 2;
  p.num_classes = 3;
  DataTable t = GenerateTable(p, 7);
  TreeConfig cfg;
  cfg.max_depth = 10;
  for (auto _ : state) {
    TreeModel m = TrainTreeOnTable(t, t.schema().FeatureIndices(), cfg);
    benchmark::DoNotOptimize(m);
  }
  state.SetItemsProcessed(state.iterations() * p.rows);
}
BENCHMARK(BM_TrainTree)->Arg(2000)->Arg(20000);

void BM_PlanDeque(benchmark::State& state) {
  PlanDeque<int> dq;
  for (auto _ : state) {
    dq.PushBack(1);
    dq.PushFront(2);
    benchmark::DoNotOptimize(dq.TryPopFront());
    benchmark::DoNotOptimize(dq.TryPopFront());
  }
}
BENCHMARK(BM_PlanDeque);

void BM_ConcurrentHashMap(benchmark::State& state) {
  ConcurrentHashMap<uint64_t, int> map(16);
  uint64_t i = 0;
  for (auto _ : state) {
    map.Insert(i, 1);
    map.Visit(i, [](int& v) { ++v; });
    map.Erase(i);
    ++i;
  }
}
BENCHMARK(BM_ConcurrentHashMap);

void BM_SerializeSplitOutcome(benchmark::State& state) {
  ColumnPtr x = MakeNumericColumn(10000, 8);
  ColumnPtr y = MakeLabelColumn(10000, 4, 9);
  SplitContext ctx{TaskKind::kClassification, Impurity::kGini, 4};
  SplitOutcome o = FindBestSplit(*x, 0, *y, ctx, nullptr, 10000);
  for (auto _ : state) {
    BinaryWriter w;
    o.Serialize(&w);
    BinaryReader r(w.buffer());
    SplitOutcome back;
    benchmark::DoNotOptimize(SplitOutcome::Deserialize(&r, &back));
  }
}
BENCHMARK(BM_SerializeSplitOutcome);

}  // namespace
}  // namespace treeserver

BENCHMARK_MAIN();
