// Micro-benchmarks (google-benchmark) for the hot paths: exact split
// finders, target statistics, the plan deque, the concurrent hash map,
// and message serialization. These are throughput measurements, not
// paper-table reproductions.
//
// `--obs-overhead` runs the observability cost guard instead: the same
// training job with the tracer + a scraped /metrics endpoint on vs
// everything off, min-of-3 each. Writes BENCH_obs.json and exits
// non-zero when the overhead exceeds 3% — the observability plane must
// stay effectively free.

#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>

#include "common/http_server.h"
#include "common/prometheus.h"
#include "common/rng.h"
#include "common/serial.h"
#include "common/timer.h"
#include "common/trace.h"
#include "concurrent/concurrent_hash_map.h"
#include "concurrent/plan_deque.h"
#include "engine/cluster.h"
#include "table/datasets.h"
#include "tree/split.h"
#include "tree/trainer.h"

namespace treeserver {
namespace {

ColumnPtr MakeNumericColumn(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (double& x : v) x = rng.UniformDouble();
  return Column::Numeric("x", std::move(v));
}

ColumnPtr MakeLabelColumn(size_t n, int classes, uint64_t seed) {
  Rng rng(seed);
  std::vector<int32_t> v(n);
  for (int32_t& x : v) x = static_cast<int32_t>(rng.Uniform(classes));
  return Column::Categorical("y", std::move(v), classes);
}

void BM_NumericSplitClassification(benchmark::State& state) {
  const size_t n = state.range(0);
  ColumnPtr x = MakeNumericColumn(n, 1);
  ColumnPtr y = MakeLabelColumn(n, 2, 2);
  SplitContext ctx{TaskKind::kClassification, Impurity::kGini, 2};
  for (auto _ : state) {
    SplitOutcome o = FindBestSplit(*x, 0, *y, ctx, nullptr, n);
    benchmark::DoNotOptimize(o);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_NumericSplitClassification)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_NumericSplitRegression(benchmark::State& state) {
  const size_t n = state.range(0);
  ColumnPtr x = MakeNumericColumn(n, 3);
  ColumnPtr y = MakeNumericColumn(n, 4);
  SplitContext ctx{TaskKind::kRegression, Impurity::kVariance, 0};
  for (auto _ : state) {
    SplitOutcome o = FindBestSplit(*x, 0, *y, ctx, nullptr, n);
    benchmark::DoNotOptimize(o);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_NumericSplitRegression)->Arg(1000)->Arg(100000);

void BM_CategoricalSplit(benchmark::State& state) {
  const size_t n = state.range(0);
  Rng rng(5);
  std::vector<int32_t> xv(n);
  for (int32_t& v : xv) v = static_cast<int32_t>(rng.Uniform(12));
  ColumnPtr x = Column::Categorical("x", std::move(xv), 12);
  ColumnPtr y = MakeLabelColumn(n, 5, 6);
  SplitContext ctx{TaskKind::kClassification, Impurity::kGini, 5};
  for (auto _ : state) {
    SplitOutcome o = FindBestSplit(*x, 0, *y, ctx, nullptr, n);
    benchmark::DoNotOptimize(o);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_CategoricalSplit)->Arg(1000)->Arg(100000);

void BM_TrainTree(benchmark::State& state) {
  DatasetProfile p;
  p.rows = state.range(0);
  p.num_numeric = 8;
  p.num_categorical = 2;
  p.num_classes = 3;
  DataTable t = GenerateTable(p, 7);
  TreeConfig cfg;
  cfg.max_depth = 10;
  for (auto _ : state) {
    TreeModel m = TrainTreeOnTable(t, t.schema().FeatureIndices(), cfg);
    benchmark::DoNotOptimize(m);
  }
  state.SetItemsProcessed(state.iterations() * p.rows);
}
BENCHMARK(BM_TrainTree)->Arg(2000)->Arg(20000);

void BM_PlanDeque(benchmark::State& state) {
  PlanDeque<int> dq;
  for (auto _ : state) {
    dq.PushBack(1);
    dq.PushFront(2);
    benchmark::DoNotOptimize(dq.TryPopFront());
    benchmark::DoNotOptimize(dq.TryPopFront());
  }
}
BENCHMARK(BM_PlanDeque);

void BM_ConcurrentHashMap(benchmark::State& state) {
  ConcurrentHashMap<uint64_t, int> map(16);
  uint64_t i = 0;
  for (auto _ : state) {
    map.Insert(i, 1);
    map.Visit(i, [](int& v) { ++v; });
    map.Erase(i);
    ++i;
  }
}
BENCHMARK(BM_ConcurrentHashMap);

void BM_SerializeSplitOutcome(benchmark::State& state) {
  ColumnPtr x = MakeNumericColumn(10000, 8);
  ColumnPtr y = MakeLabelColumn(10000, 4, 9);
  SplitContext ctx{TaskKind::kClassification, Impurity::kGini, 4};
  SplitOutcome o = FindBestSplit(*x, 0, *y, ctx, nullptr, 10000);
  for (auto _ : state) {
    BinaryWriter w;
    o.Serialize(&w);
    BinaryReader r(w.buffer());
    SplitOutcome back;
    benchmark::DoNotOptimize(SplitOutcome::Deserialize(&r, &back));
  }
}
BENCHMARK(BM_SerializeSplitOutcome);

/// One training run; with `obs` on, the tracer records and a /metrics
/// endpoint is scraped every 50ms for the duration — the realistic
/// "monitored" configuration. Returns the job wall time in ms.
double ObsGuardRun(const DataTable& table, bool obs) {
  HttpServer http;
  std::thread scraper;
  std::atomic<bool> stop_scraper{false};
  if (obs) {
    Tracer::Global().Clear();
    Tracer::Global().Enable();
    http.Handle("/metrics", [](const std::string&) {
      HttpResponse resp;
      resp.content_type = "text/plain; version=0.0.4; charset=utf-8";
      resp.body = PrometheusExport(MetricsRegistry::Global().Snapshot());
      return resp;
    });
    if (http.Start("127.0.0.1", 0).ok()) {
      scraper = std::thread([&stop_scraper, port = http.port()] {
        while (!stop_scraper.load(std::memory_order_relaxed)) {
          std::string body;
          HttpGet("127.0.0.1", port, "/metrics", &body);
          std::this_thread::sleep_for(std::chrono::milliseconds(50));
        }
      });
    }
  }

  EngineConfig cfg;
  cfg.num_workers = 4;
  cfg.compers_per_worker = 2;
  cfg.tau_d = 2000;
  cfg.tau_dfs = 8000;
  ForestJobSpec spec;
  spec.num_trees = 8;
  spec.tree.max_depth = 10;

  WallTimer timer;
  TreeServerCluster cluster(table, cfg);
  ForestModel forest = cluster.TrainForest(spec);
  const double ms = timer.Millis();
  benchmark::DoNotOptimize(forest);

  if (obs) {
    stop_scraper.store(true, std::memory_order_relaxed);
    if (scraper.joinable()) scraper.join();
    http.Stop();
    Tracer::Global().Disable();
    std::printf("  (traced %zu events, dropped %llu)\n",
                Tracer::Global().event_count(),
                static_cast<unsigned long long>(
                    Tracer::Global().dropped_spans()));
    Tracer::Global().Clear();
  }
  return ms;
}

int RunObsOverheadGuard() {
  DatasetProfile profile;
  profile.name = "obs-guard";
  profile.rows = 30000;
  profile.num_numeric = 8;
  profile.num_categorical = 2;
  profile.num_classes = 3;
  profile.noise = 0.05;
  profile.concept_depth = 6;
  DataTable table = GenerateTable(profile, /*seed=*/17);

  // One uncounted warmup pair (page cache, allocator, thread pools),
  // then interleaved off/on runs so machine drift hits both sides.
  // Min-per-side is the least-perturbed measurement on each: run-to-run
  // noise on a shared box dwarfs the true tracer cost, and the guard
  // exists to catch real regressions (per-row tracing, a hot-path
  // lock), not to resolve fractions of a percent.
  ObsGuardRun(table, /*obs=*/false);
  ObsGuardRun(table, /*obs=*/true);
  constexpr int kRuns = 4;
  double off_ms = 0.0, on_ms = 0.0;
  for (int i = 0; i < kRuns; ++i) {
    const double off = ObsGuardRun(table, /*obs=*/false);
    const double on = ObsGuardRun(table, /*obs=*/true);
    off_ms = i == 0 ? off : std::min(off_ms, off);
    on_ms = i == 0 ? on : std::min(on_ms, on);
    std::printf("obs-overhead run %d/%d: off=%.1fms on=%.1fms\n", i + 1,
                kRuns, off, on);
  }

  const double overhead_pct = (on_ms - off_ms) / off_ms * 100.0;
  constexpr double kBudgetPct = 3.0;
  char json[256];
  std::snprintf(json, sizeof(json),
                "{\"bench\":\"obs\",\"off_ms\":%.1f,\"on_ms\":%.1f,"
                "\"overhead_pct\":%.2f,\"budget_pct\":%.1f}\n",
                off_ms, on_ms, overhead_pct, kBudgetPct);
  std::printf("%s", json);
  if (std::FILE* f = std::fopen("BENCH_obs.json", "w")) {
    std::fputs(json, f);
    std::fclose(f);
  }
  if (overhead_pct > kBudgetPct) {
    std::fprintf(stderr,
                 "FAIL: observability overhead %.2f%% exceeds %.1f%% budget\n",
                 overhead_pct, kBudgetPct);
    return 1;
  }
  std::printf("PASS: observability overhead %.2f%% within %.1f%% budget\n",
              overhead_pct, kBudgetPct);
  return 0;
}

}  // namespace
}  // namespace treeserver

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == std::string("--obs-overhead")) {
      return treeserver::RunObsOverheadGuard();
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
