#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "table/csv.h"
#include "table/data_table.h"
#include "table/datasets.h"

namespace treeserver {
namespace {

DataTable SmallClassificationTable() {
  // The Fig. 1 customer table, encoded: Age (numeric), Education
  // (categorical, 5 values), HomeOwner (categorical, 2), Income
  // (numeric), Default (target, 2 classes).
  std::vector<double> age = {24, 28, 44, 32, 36, 48, 37, 42, 54, 47};
  // 0=Primary 1=Secondary 2=Bachelor 3=Master 4=PhD
  std::vector<int32_t> edu = {2, 3, 2, 1, 4, 2, 1, 2, 1, 4};
  std::vector<int32_t> owner = {0, 1, 1, 1, 0, 1, 0, 0, 0, 1};
  std::vector<double> income = {5000, 7500, 5500, 6000, 10000,
                                6500, 3000, 6000, 4000, 8000};
  std::vector<int32_t> y = {0, 0, 0, 1, 0, 0, 1, 0, 1, 0};

  std::vector<ColumnMeta> metas = {
      {"Age", DataType::kNumeric, 0},
      {"Education", DataType::kCategorical, 5},
      {"HomeOwner", DataType::kCategorical, 2},
      {"Income", DataType::kNumeric, 0},
      {"Default", DataType::kCategorical, 2},
  };
  std::vector<ColumnPtr> cols = {
      Column::Numeric("Age", age),
      Column::Categorical("Education", edu, 5),
      Column::Categorical("HomeOwner", owner, 2),
      Column::Numeric("Income", income),
      Column::Categorical("Default", y, 2),
  };
  auto table = DataTable::Make(
      Schema(std::move(metas), 4, TaskKind::kClassification),
      std::move(cols));
  EXPECT_TRUE(table.ok());
  return std::move(table).value();
}

TEST(ColumnTest, NumericBasics) {
  auto c = Column::Numeric("x", {1.0, 2.0, MissingNumeric()});
  EXPECT_EQ(c->type(), DataType::kNumeric);
  EXPECT_EQ(c->size(), 3u);
  EXPECT_EQ(c->numeric_at(1), 2.0);
  EXPECT_FALSE(c->IsMissing(0));
  EXPECT_TRUE(c->IsMissing(2));
  EXPECT_EQ(c->ByteSize(), 3 * sizeof(double));
}

TEST(ColumnTest, CategoricalBasics) {
  auto c = Column::Categorical("x", {0, 2, kMissingCategory, 1}, 3);
  EXPECT_EQ(c->type(), DataType::kCategorical);
  EXPECT_EQ(c->cardinality(), 3);
  EXPECT_TRUE(c->IsMissing(2));
  EXPECT_EQ(c->category_at(1), 2);
}

TEST(ColumnTest, GatherSelectsRows) {
  auto c = Column::Numeric("x", {10, 20, 30, 40});
  auto g = c->Gather({3, 0, 3});
  ASSERT_EQ(g->size(), 3u);
  EXPECT_EQ(g->numeric_at(0), 40);
  EXPECT_EQ(g->numeric_at(1), 10);
  EXPECT_EQ(g->numeric_at(2), 40);
  EXPECT_EQ(g->name(), "x");
}

TEST(DataTableTest, MakeValidates) {
  // Length mismatch.
  std::vector<ColumnMeta> metas = {{"a", DataType::kNumeric, 0},
                                   {"y", DataType::kCategorical, 2}};
  auto bad = DataTable::Make(
      Schema(metas, 1, TaskKind::kClassification),
      {Column::Numeric("a", {1, 2, 3}), Column::Categorical("y", {0}, 2)});
  EXPECT_FALSE(bad.ok());

  // Regression with categorical target.
  auto bad2 = DataTable::Make(
      Schema(metas, 1, TaskKind::kRegression),
      {Column::Numeric("a", {1.0}), Column::Categorical("y", {0}, 2)});
  EXPECT_FALSE(bad2.ok());
}

TEST(DataTableTest, SchemaAccessors) {
  DataTable t = SmallClassificationTable();
  EXPECT_EQ(t.num_rows(), 10u);
  EXPECT_EQ(t.num_columns(), 5);
  EXPECT_EQ(t.schema().num_features(), 4);
  EXPECT_EQ(t.schema().num_classes(), 2);
  EXPECT_EQ(t.schema().FeatureIndices(), (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(t.label_at(3), 1);
}

TEST(DataTableTest, GatherRows) {
  DataTable t = SmallClassificationTable();
  DataTable sub = t.GatherRows({0, 9});
  EXPECT_EQ(sub.num_rows(), 2u);
  EXPECT_EQ(sub.column(0)->numeric_at(1), 47);
  EXPECT_EQ(sub.label_at(0), 0);
}

TEST(DataTableTest, TrainTestSplitPartitions) {
  DataTable t = SmallClassificationTable();
  Rng rng(5);
  auto [train, test] = t.TrainTestSplit(0.3, &rng);
  EXPECT_EQ(test.num_rows(), 3u);
  EXPECT_EQ(train.num_rows(), 7u);
}

TEST(DataTableTest, WithExtraFeaturesAppendsBeforeTarget) {
  DataTable t = SmallClassificationTable();
  auto extra = Column::Numeric("score", std::vector<double>(10, 0.5));
  DataTable t2 = t.WithExtraFeatures({extra});
  EXPECT_EQ(t2.num_columns(), 6);
  EXPECT_EQ(t2.schema().num_features(), 5);
  EXPECT_EQ(t2.schema().column(4).name, "score");
  EXPECT_EQ(t2.schema().target_index(), 5);
  EXPECT_EQ(t2.label_at(3), 1);  // target preserved
}

TEST(CsvTest, ParsesTypesAndMissing) {
  std::string csv =
      "age,city,income,label\n"
      "24,ny,5000,no\n"
      "28,sf,,yes\n"
      ",ny,7000,no\n";
  auto r = ReadCsvString(csv);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const DataTable& t = *r;
  EXPECT_EQ(t.num_rows(), 3u);
  EXPECT_EQ(t.schema().task_kind(), TaskKind::kClassification);
  EXPECT_EQ(t.column(0)->type(), DataType::kNumeric);
  EXPECT_EQ(t.column(1)->type(), DataType::kCategorical);
  EXPECT_EQ(t.column(1)->cardinality(), 2);
  EXPECT_TRUE(t.column(2)->IsMissing(1));
  EXPECT_TRUE(t.column(0)->IsMissing(2));
  EXPECT_EQ(t.schema().num_classes(), 2);
}

TEST(CsvTest, NumericTargetIsRegression) {
  std::string csv = "a,y\n1,10.5\n2,11.5\n";
  auto r = ReadCsvString(csv);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->schema().task_kind(), TaskKind::kRegression);
}

TEST(CsvTest, ExplicitClassificationOnNumericLabels) {
  std::string csv = "a,y\n1,0\n2,1\n3,0\n";
  CsvOptions opts;
  opts.has_task_kind = true;
  opts.task_kind = TaskKind::kClassification;
  auto r = ReadCsvString(csv, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->schema().task_kind(), TaskKind::kClassification);
  EXPECT_EQ(r->schema().num_classes(), 2);
}

TEST(CsvTest, TargetColumnByName) {
  std::string csv = "y,a\nno,1\nyes,2\n";
  CsvOptions opts;
  opts.target_column = "y";
  auto r = ReadCsvString(csv, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->schema().target_index(), 0);
}

TEST(CsvTest, RejectsRaggedRows) {
  EXPECT_FALSE(ReadCsvString("a,b\n1\n").ok());
  EXPECT_FALSE(ReadCsvString("", CsvOptions()).ok());
}

TEST(CsvTest, RoundTripThroughWriter) {
  DataTable t = SmallClassificationTable();
  std::string csv = WriteCsvString(t);
  auto r = ReadCsvString(csv);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->num_rows(), t.num_rows());
  EXPECT_EQ(r->num_columns(), t.num_columns());
  for (size_t i = 0; i < t.num_rows(); ++i) {
    EXPECT_EQ(r->column(0)->numeric_at(i), t.column(0)->numeric_at(i));
  }
}

TEST(DatasetsTest, PaperProfilesMatchTableOne) {
  auto profiles = PaperProfiles(0.001);
  ASSERT_EQ(profiles.size(), 11u);
  EXPECT_EQ(profiles[0].name, "Allstate");
  EXPECT_EQ(profiles[0].num_classes, 0);  // regression
  EXPECT_EQ(profiles[0].num_numeric, 13);
  EXPECT_EQ(profiles[0].num_categorical, 14);
  EXPECT_EQ(profiles[1].name, "Higgs_boson");
  EXPECT_EQ(profiles[1].num_numeric, 28);
  EXPECT_EQ(profiles[5].name, "Poker");
  EXPECT_EQ(profiles[5].num_numeric, 0);
  EXPECT_EQ(profiles[5].num_categorical, 11);
}

TEST(DatasetsTest, GeneratedTableMatchesProfile) {
  DatasetProfile p = PaperProfile("Covtype", 0.001);
  DataTable t = GenerateTable(p, 42);
  EXPECT_EQ(t.num_rows(), p.rows);
  EXPECT_EQ(t.schema().num_features(), 54);
  EXPECT_EQ(t.schema().num_classes(), 7);
  // Labels are in range.
  for (size_t i = 0; i < t.num_rows(); ++i) {
    ASSERT_GE(t.label_at(i), 0);
    ASSERT_LT(t.label_at(i), 7);
  }
}

TEST(DatasetsTest, GenerationIsDeterministic) {
  DatasetProfile p = PaperProfile("SUSY", 0.0005);
  DataTable a = GenerateTable(p, 7);
  DataTable b = GenerateTable(p, 7);
  ASSERT_EQ(a.num_rows(), b.num_rows());
  for (size_t i = 0; i < a.num_rows(); ++i) {
    EXPECT_EQ(a.column(0)->numeric_at(i), b.column(0)->numeric_at(i));
    EXPECT_EQ(a.label_at(i), b.label_at(i));
  }
}

TEST(DatasetsTest, MissingInjectedForAllstate) {
  DatasetProfile p = PaperProfile("Allstate", 0.0005);
  DataTable t = GenerateTable(p, 9);
  size_t missing = 0;
  for (size_t i = 0; i < t.num_rows(); ++i) {
    if (t.column(0)->IsMissing(i)) ++missing;
  }
  double frac = static_cast<double>(missing) / t.num_rows();
  EXPECT_GT(frac, 0.01);
  EXPECT_LT(frac, 0.15);
  EXPECT_EQ(t.schema().task_kind(), TaskKind::kRegression);
}

TEST(DatasetsTest, ImagesHaveExpectedShape) {
  ImageDataset ds = GenerateImages(50, 3);
  EXPECT_EQ(ds.size(), 50u);
  EXPECT_EQ(ds.images[0].size(), 28u * 28u);
  std::set<int32_t> labels(ds.labels.begin(), ds.labels.end());
  for (int32_t l : labels) {
    EXPECT_GE(l, 0);
    EXPECT_LT(l, 10);
  }
  for (float v : ds.images[0]) {
    EXPECT_GE(v, 0.0f);
    EXPECT_LE(v, 1.0f);
  }
}

}  // namespace
}  // namespace treeserver
