#include <gtest/gtest.h>

#include <filesystem>

#include "baselines/planet.h"
#include "dfs/dfs.h"
#include "engine/cluster.h"
#include "forest/forest.h"
#include "table/csv.h"
#include "table/datasets.h"

namespace treeserver {
namespace {

// End-to-end paths across module boundaries: DFS -> engine, CSV ->
// engine, engine -> serialization -> prediction, and cross-system
// model-quality comparisons on the same data.

TEST(IntegrationTest, DfsRoundTripThenDistributedTraining) {
  DatasetProfile p;
  p.rows = 2000;
  p.num_numeric = 6;
  p.num_categorical = 2;
  p.num_classes = 3;
  DataTable original = GenerateTable(p, 401);

  auto root = std::filesystem::temp_directory_path() /
              "treeserver_integration_dfs";
  std::filesystem::remove_all(root);
  LocalDfs dfs(root.string());
  ASSERT_TRUE(dfs.Put(original, "train", DfsLayout{4, 512}).ok());
  auto loaded = dfs.ReadTable("train");
  ASSERT_TRUE(loaded.ok());

  EngineConfig cfg;
  cfg.num_workers = 3;
  cfg.compers_per_worker = 2;
  cfg.tau_d = 400;
  cfg.tau_dfs = 1200;
  ForestJobSpec spec;
  spec.num_trees = 3;
  spec.tree.max_depth = 7;
  spec.column_ratio = 0.8;

  // Training on the DFS round-tripped table equals training on the
  // original (bit-equal data), which equals the serial reference.
  TreeServerCluster cluster(*loaded, cfg);
  ForestModel from_dfs = cluster.TrainForest(spec);
  ForestModel reference = TrainForestSerial(original, spec);
  for (size_t i = 0; i < from_dfs.num_trees(); ++i) {
    EXPECT_TRUE(from_dfs.tree(i).StructurallyEqual(reference.tree(i)));
  }
  std::filesystem::remove_all(root);
}

TEST(IntegrationTest, CsvToClusterToSerializedModel) {
  // Generate, write as CSV, re-read (string-typed world), train on a
  // cluster, serialize, reload, and predict.
  DatasetProfile p;
  p.rows = 1200;
  p.num_numeric = 4;
  p.num_categorical = 2;
  p.num_classes = 2;
  DataTable original = GenerateTable(p, 403);
  std::string csv = WriteCsvString(original);
  CsvOptions opts;
  opts.has_task_kind = true;
  opts.task_kind = TaskKind::kClassification;
  auto parsed = ReadCsvString(csv, opts);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->num_rows(), original.num_rows());

  EngineConfig cfg;
  cfg.num_workers = 2;
  cfg.compers_per_worker = 2;
  TreeServerCluster cluster(*parsed, cfg);
  ForestJobSpec spec;
  spec.num_trees = 5;
  spec.tree.max_depth = 8;
  spec.column_ratio = 0.7;
  ForestModel model = cluster.TrainForest(spec);

  BinaryWriter w;
  model.Serialize(&w);
  BinaryReader r(w.buffer());
  ForestModel restored;
  ASSERT_TRUE(ForestModel::Deserialize(&r, &restored).ok());
  for (size_t i = 0; i < parsed->num_rows(); i += 101) {
    EXPECT_EQ(model.PredictLabel(*parsed, i),
              restored.PredictLabel(*parsed, i));
  }
  EXPECT_GT(EvaluateAccuracy(restored, *parsed), 0.7);
}

TEST(IntegrationTest, ExactEngineVsHistogramBaselineOnSameSplit) {
  DatasetProfile p;
  p.rows = 5000;
  p.num_numeric = 8;
  p.num_categorical = 2;
  p.num_classes = 2;
  p.concept_depth = 7;
  DataTable all = GenerateTable(p, 405);
  Rng rng(5);
  auto [train, test] = all.TrainTestSplit(0.25, &rng);

  EngineConfig cfg;
  cfg.num_workers = 3;
  cfg.compers_per_worker = 2;
  cfg.tau_d = 600;
  cfg.tau_dfs = 1800;
  ForestJobSpec spec;
  spec.num_trees = 10;
  spec.tree.max_depth = 10;
  spec.column_ratio = 0.6;
  TreeServerCluster cluster(train, cfg);
  ForestModel exact = cluster.TrainForest(spec);

  PlanetConfig planet;
  planet.num_trees = 10;
  planet.max_depth = 10;
  planet.column_ratio = 0.6;
  planet.max_bins = 8;  // coarse bins to make the approximation bite
  planet.job_overhead_ms = 0;
  planet.shuffle_bandwidth_mbps = 0;
  ForestModel approx = TrainPlanet(train, planet);

  double exact_acc = EvaluateAccuracy(exact, test);
  double approx_acc = EvaluateAccuracy(approx, test);
  EXPECT_GT(exact_acc, 0.75);
  // Exact split finding should not lose to coarse histograms.
  EXPECT_GE(exact_acc, approx_acc - 0.01);
}

TEST(IntegrationTest, DepthCutoffPredictionMonotonicCoverage) {
  // Appendix D: one deep model answers at every depth. Accuracy at
  // depth d should (weakly) improve with d on training data.
  DatasetProfile p;
  p.rows = 3000;
  p.num_numeric = 6;
  p.num_categorical = 0;
  p.num_classes = 3;
  p.concept_depth = 6;
  p.noise = 0.05;
  DataTable t = GenerateTable(p, 407);
  EngineConfig cfg;
  cfg.num_workers = 2;
  cfg.compers_per_worker = 2;
  TreeServerCluster cluster(t, cfg);
  ForestJobSpec spec;
  spec.num_trees = 1;
  spec.tree.max_depth = 12;
  ForestModel model = cluster.TrainForest(spec);

  double prev = 0.0;
  for (int depth : {0, 2, 4, 8, 12}) {
    size_t correct = 0;
    for (size_t i = 0; i < t.num_rows(); ++i) {
      if (model.PredictLabel(t, i, depth) == t.label_at(i)) ++correct;
    }
    double acc = static_cast<double>(correct) / t.num_rows();
    EXPECT_GE(acc, prev - 0.02) << "accuracy collapsed at depth " << depth;
    prev = acc;
  }
  EXPECT_GT(prev, 0.85);  // full depth fits the training data well
}

TEST(IntegrationTest, FeatureImportanceConsistentAcrossEngineAndSerial) {
  DatasetProfile p;
  p.rows = 2000;
  p.num_numeric = 5;
  p.num_categorical = 2;
  p.num_classes = 2;
  DataTable t = GenerateTable(p, 409);
  ForestJobSpec spec;
  spec.num_trees = 4;
  spec.tree.max_depth = 7;
  spec.column_ratio = 0.8;

  EngineConfig cfg;
  cfg.num_workers = 3;
  cfg.compers_per_worker = 2;
  cfg.tau_d = 300;
  cfg.tau_dfs = 900;
  TreeServerCluster cluster(t, cfg);
  ForestModel engine_model = cluster.TrainForest(spec);
  ForestModel serial_model = TrainForestSerial(t, spec);

  std::vector<double> a = FeatureImportance(engine_model, t.schema());
  std::vector<double> b = FeatureImportance(serial_model, t.schema());
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i], b[i], 1e-9) << "column " << i;
  }
}

}  // namespace
}  // namespace treeserver
