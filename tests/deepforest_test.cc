#include <gtest/gtest.h>

#include "deepforest/deep_forest.h"

namespace treeserver {
namespace {

EngineConfig SmallEngine() {
  EngineConfig cfg;
  cfg.num_workers = 2;
  cfg.compers_per_worker = 2;
  cfg.tau_d = 100000;  // tiny tables: everything is a subtree task
  cfg.tau_dfs = 200000;
  return cfg;
}

DeepForestConfig TinyConfig() {
  DeepForestConfig cfg;
  cfg.mgs.window_sizes = {5};
  cfg.mgs.stride = 4;
  cfg.mgs.trees_per_forest = 4;
  cfg.mgs.forests_per_window = 2;
  cfg.mgs.max_depth = 6;
  cfg.cascade.num_layers = 2;
  cfg.cascade.trees_per_forest = 4;
  cfg.cascade.max_depth = 10;
  cfg.extract_threads = 2;
  return cfg;
}

TEST(DeepForestTest, WindowTableShape) {
  ImageDataset images = GenerateImages(10, 3, 16, 16, 4);
  DataTable t = BuildWindowTable(images, /*window=*/4, /*stride=*/4, 2);
  // 16x16 with window 4, stride 4: 4x4 = 16 positions per image.
  EXPECT_EQ(t.num_rows(), 10u * 16u);
  EXPECT_EQ(t.schema().num_features(), 16);  // 4*4 pixels
  EXPECT_EQ(t.schema().num_classes(), 4);
  // Labels repeat per position.
  for (size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(t.label_at(i), images.labels[0]);
  }
}

TEST(DeepForestTest, WindowTablePixelValues) {
  // A deterministic 4x4 "image" whose pixels equal their index.
  ImageDataset images;
  images.width = 4;
  images.height = 4;
  images.num_classes = 2;
  std::vector<float> img(16);
  for (int i = 0; i < 16; ++i) img[i] = static_cast<float>(i) / 16.0f;
  images.images.push_back(img);
  images.labels.push_back(1);

  DataTable t = BuildWindowTable(images, /*window=*/2, /*stride=*/2, 1);
  EXPECT_EQ(t.num_rows(), 4u);  // 2x2 positions
  // First window (top-left): pixels 0,1,4,5.
  EXPECT_FLOAT_EQ(t.column(0)->numeric_at(0), 0.0f / 16);
  EXPECT_FLOAT_EQ(t.column(1)->numeric_at(0), 1.0f / 16);
  EXPECT_FLOAT_EQ(t.column(2)->numeric_at(0), 4.0f / 16);
  EXPECT_FLOAT_EQ(t.column(3)->numeric_at(0), 5.0f / 16);
  // Second window (top-right): pixels 2,3,6,7.
  EXPECT_FLOAT_EQ(t.column(0)->numeric_at(1), 2.0f / 16);
}

TEST(DeepForestTest, ExtractFeatureDimensions) {
  ImageDataset images = GenerateImages(8, 5, 16, 16, 3);
  DataTable t = BuildWindowTable(images, 4, 4, 2);  // 16 positions

  ForestJobSpec spec;
  spec.num_trees = 3;
  spec.tree.max_depth = 4;
  ForestModel forest = TrainForestSerial(t, spec);
  auto features = ExtractWindowFeatures({forest, forest}, t, 8, 2);
  ASSERT_EQ(features.size(), 8u);
  // positions(16) * forests(2) * classes(3) = 96 dims.
  EXPECT_EQ(features[0].size(), 96u);
  // PMF blocks sum to ~1.
  float sum = features[0][0] + features[0][1] + features[0][2];
  EXPECT_NEAR(sum, 1.0f, 1e-4f);
}

TEST(DeepForestTest, EndToEndTrainsAndBeatsChance) {
  ImageDataset train = GenerateImages(160, 11);
  ImageDataset test = GenerateImages(60, 12);  // same class patterns

  DeepForestTrainer trainer(TinyConfig(), SmallEngine());
  std::vector<DeepForestStep> steps;
  DeepForestModel model = trainer.Train(train, test, &steps);

  // Step log covers slide + per-window train/extract + per-layer
  // train/extract.
  ASSERT_FALSE(steps.empty());
  EXPECT_EQ(steps.front().name, "slide");
  int accuracy_steps = 0;
  double last_acc = 0.0;
  for (const DeepForestStep& s : steps) {
    if (s.test_accuracy >= 0.0) {
      ++accuracy_steps;
      last_acc = s.test_accuracy;
    }
  }
  EXPECT_EQ(accuracy_steps, 2);  // one per cascade layer
  EXPECT_GT(last_acc, 0.3);      // 10 classes; chance is 0.1

  // Batch prediction path agrees with the final-layer accuracy.
  double acc = model.EvaluateAccuracy(test, 2);
  EXPECT_NEAR(acc, last_acc, 1e-9);
  EXPECT_EQ(model.num_layers(), 2);
}

TEST(DeepForestTest, SerializationRoundTripPredictsIdentically) {
  ImageDataset train = GenerateImages(120, 31);
  ImageDataset test = GenerateImages(40, 32);
  DeepForestTrainer trainer(TinyConfig(), SmallEngine());
  DeepForestModel model = trainer.Train(train, test);

  BinaryWriter w;
  model.Serialize(&w);
  BinaryReader r(w.buffer());
  DeepForestModel restored;
  ASSERT_TRUE(DeepForestModel::Deserialize(&r, &restored).ok());
  EXPECT_EQ(restored.num_layers(), model.num_layers());
  std::vector<int32_t> a = model.Predict(test, 2);
  std::vector<int32_t> b = restored.Predict(test, 2);
  EXPECT_EQ(a, b);
}

TEST(DeepForestTest, CorruptDeserializeFails) {
  std::string junk = "definitely not a deep forest";
  BinaryReader r(junk);
  DeepForestModel m;
  EXPECT_FALSE(DeepForestModel::Deserialize(&r, &m).ok());
}

TEST(DeepForestTest, GeneratedImagesAreLearnable) {
  // Sanity check on the MNIST stand-in: a plain forest on raw pixels
  // must classify far above chance.
  ImageDataset train = GenerateImages(300, 21);
  ImageDataset test = GenerateImages(100, 22);
  DataTable train_table = BuildWindowTable(train, 28, 28, 2);  // full image
  DataTable test_table = BuildWindowTable(test, 28, 28, 2);
  ForestJobSpec spec;
  spec.num_trees = 10;
  spec.tree.max_depth = 10;
  spec.sqrt_columns = true;
  ForestModel forest = TrainForestSerial(train_table, spec, 2);
  EXPECT_GT(EvaluateAccuracy(forest, test_table), 0.5);
}

}  // namespace
}  // namespace treeserver
