#include <gtest/gtest.h>

#include "baselines/gbdt.h"

#include "common/timer.h"
#include "baselines/planet.h"
#include "forest/forest.h"
#include "table/datasets.h"

namespace treeserver {
namespace {

DataTable MakeData(int classes, size_t rows, uint64_t seed,
                   int concept_depth = 5) {
  DatasetProfile p;
  p.rows = rows;
  p.num_numeric = 6;
  p.num_categorical = 2;
  p.num_classes = classes;
  p.noise = 0.05;
  p.concept_depth = concept_depth;
  return GenerateTable(p, seed);
}

PlanetConfig FastPlanet() {
  PlanetConfig cfg;
  cfg.job_overhead_ms = 0.0;  // keep unit tests fast
  cfg.shuffle_bandwidth_mbps = 0.0;
  cfg.num_partitions = 4;
  return cfg;
}

TEST(PlanetTest, LearnsClassification) {
  DataTable all = MakeData(3, 4000, 7);
  Rng rng(1);
  auto [train, test] = all.TrainTestSplit(0.25, &rng);
  PlanetConfig cfg = FastPlanet();
  cfg.max_depth = 8;
  ForestModel model = TrainPlanet(train, cfg);
  ASSERT_EQ(model.num_trees(), 1u);
  double acc = EvaluateAccuracy(model, test);
  EXPECT_GT(acc, 0.6);
}

TEST(PlanetTest, LearnsRegression) {
  DatasetProfile p;
  p.rows = 4000;
  p.num_numeric = 5;
  p.num_categorical = 2;
  p.num_classes = 0;
  p.concept_depth = 4;
  p.noise = 0.02;
  DataTable all = GenerateTable(p, 13);
  Rng rng(2);
  auto [train, test] = all.TrainTestSplit(0.25, &rng);
  PlanetConfig cfg = FastPlanet();
  cfg.impurity = Impurity::kVariance;
  ForestModel model = TrainPlanet(train, cfg);
  double rmse = EvaluateRmse(model, test);

  RegStats stats;
  for (size_t i = 0; i < train.num_rows(); ++i) {
    stats.Add(train.target_value_at(i));
  }
  double baseline = 0.0;
  for (size_t i = 0; i < test.num_rows(); ++i) {
    double d = stats.Mean() - test.target_value_at(i);
    baseline += d * d;
  }
  baseline = std::sqrt(baseline / test.num_rows());
  EXPECT_LT(rmse, baseline);
}

TEST(PlanetTest, ExactBeatsApproxOnFineStructure) {
  // A deep concept with many distinct split points: binning to 8
  // buckets must lose accuracy relative to exact split finding.
  DataTable all = MakeData(2, 6000, 23, /*concept_depth=*/8);
  Rng rng(3);
  auto [train, test] = all.TrainTestSplit(0.25, &rng);

  TreeConfig exact_cfg;
  exact_cfg.max_depth = 10;
  TreeModel exact =
      TrainTreeOnTable(train, train.schema().FeatureIndices(), exact_cfg);
  ForestModel exact_forest(TaskKind::kClassification, 2);
  exact_forest.AddTree(exact);

  PlanetConfig approx_cfg = FastPlanet();
  approx_cfg.max_bins = 8;
  approx_cfg.max_depth = 10;
  ForestModel approx = TrainPlanet(train, approx_cfg);

  double exact_acc = EvaluateAccuracy(exact_forest, test);
  double approx_acc = EvaluateAccuracy(approx, test);
  EXPECT_GE(exact_acc, approx_acc - 0.01);
}

TEST(PlanetTest, RespectsMaxDepth) {
  DataTable t = MakeData(2, 2000, 31);
  PlanetConfig cfg = FastPlanet();
  cfg.max_depth = 3;
  ForestModel model = TrainPlanet(t, cfg);
  EXPECT_LE(model.tree(0).MaxDepth(), 3);
}

TEST(PlanetTest, ForestWithColumnSampling) {
  DataTable t = MakeData(3, 2500, 37);
  PlanetConfig cfg = FastPlanet();
  cfg.num_trees = 5;
  cfg.sqrt_columns = true;
  cfg.max_depth = 6;
  ForestModel model = TrainPlanet(t, cfg);
  EXPECT_EQ(model.num_trees(), 5u);
  EXPECT_GT(EvaluateAccuracy(model, t), 0.4);
}

TEST(PlanetTest, StatsAccounting) {
  DataTable t = MakeData(2, 1500, 41);
  PlanetConfig cfg = FastPlanet();
  cfg.max_depth = 4;
  PlanetStats stats;
  TrainPlanet(t, cfg, &stats);
  EXPECT_GT(stats.levels, 0);
  EXPECT_GT(stats.bytes_shuffled, 0u);
  // With overheads disabled, no simulated seconds accrue.
  EXPECT_EQ(stats.simulated_overhead_seconds, 0.0);
}

TEST(PlanetTest, SimulatedOverheadsSlowItDown) {
  DataTable t = MakeData(2, 800, 43);
  PlanetConfig cfg = FastPlanet();
  cfg.max_depth = 4;
  cfg.job_overhead_ms = 5.0;
  PlanetStats stats;
  WallTimer timer;
  TrainPlanet(t, cfg, &stats);
  EXPECT_GT(stats.simulated_overhead_seconds, 0.0);
  EXPECT_GE(timer.Seconds(), stats.simulated_overhead_seconds * 0.9);
}

TEST(PlanetTest, HandlesMissingViaImputation) {
  DatasetProfile p;
  p.rows = 1500;
  p.num_numeric = 5;
  p.num_categorical = 2;
  p.num_classes = 2;
  p.missing_fraction = 0.1;
  DataTable t = GenerateTable(p, 47);
  PlanetConfig cfg = FastPlanet();
  ForestModel model = TrainPlanet(t, cfg);
  EXPECT_GT(model.tree(0).num_nodes(), 1u);
}

TEST(PlanetTest, SingleVsMultiThreadSameModel) {
  DataTable t = MakeData(3, 2000, 53);
  PlanetConfig cfg1 = FastPlanet();
  cfg1.num_threads = 1;
  PlanetConfig cfg4 = cfg1;
  cfg4.num_threads = 4;
  ForestModel a = TrainPlanet(t, cfg1);
  ForestModel b = TrainPlanet(t, cfg4);
  EXPECT_TRUE(a.tree(0).StructurallyEqual(b.tree(0)));
}

TEST(GbdtTest, BinaryClassification) {
  DataTable all = MakeData(2, 4000, 61);
  Rng rng(4);
  auto [train, test] = all.TrainTestSplit(0.25, &rng);
  GbdtConfig cfg;
  cfg.num_rounds = 20;
  cfg.max_depth = 5;
  GbdtModel model = TrainGbdt(train, cfg);
  EXPECT_EQ(model.num_trees(), 20u);
  EXPECT_GT(model.Evaluate(test), 0.7);
}

TEST(GbdtTest, MulticlassSoftmax) {
  DataTable all = MakeData(4, 4000, 67);
  Rng rng(5);
  auto [train, test] = all.TrainTestSplit(0.25, &rng);
  GbdtConfig cfg;
  cfg.num_rounds = 15;
  cfg.max_depth = 5;
  GbdtModel model = TrainGbdt(train, cfg);
  EXPECT_EQ(model.num_trees(), 15u * 4u);  // K trees per round
  EXPECT_GT(model.Evaluate(test), 0.55);
}

TEST(GbdtTest, Regression) {
  DatasetProfile p;
  p.rows = 4000;
  p.num_numeric = 5;
  p.num_categorical = 2;
  p.num_classes = 0;
  p.concept_depth = 4;
  p.noise = 0.02;
  DataTable all = GenerateTable(p, 71);
  Rng rng(6);
  auto [train, test] = all.TrainTestSplit(0.25, &rng);
  GbdtConfig cfg;
  cfg.num_rounds = 30;
  cfg.max_depth = 4;
  GbdtModel model = TrainGbdt(train, cfg);
  double rmse = model.Evaluate(test);

  RegStats stats;
  for (size_t i = 0; i < train.num_rows(); ++i) {
    stats.Add(train.target_value_at(i));
  }
  double baseline = 0.0;
  for (size_t i = 0; i < test.num_rows(); ++i) {
    double d = stats.Mean() - test.target_value_at(i);
    baseline += d * d;
  }
  baseline = std::sqrt(baseline / test.num_rows());
  EXPECT_LT(rmse, baseline * 0.7);
}

TEST(GbdtTest, MoreRoundsImproveTrainFit) {
  DataTable t = MakeData(2, 2500, 79, /*concept_depth=*/7);
  GbdtConfig small;
  small.num_rounds = 3;
  small.max_depth = 4;
  GbdtConfig big = small;
  big.num_rounds = 30;
  double acc_small = TrainGbdt(t, small).Evaluate(t);
  double acc_big = TrainGbdt(t, big).Evaluate(t);
  EXPECT_GE(acc_big, acc_small);
}

TEST(GbdtTest, HandlesMissingValues) {
  DatasetProfile p;
  p.rows = 1500;
  p.num_numeric = 5;
  p.num_categorical = 2;
  p.num_classes = 2;
  p.missing_fraction = 0.1;
  DataTable t = GenerateTable(p, 83);
  GbdtConfig cfg;
  cfg.num_rounds = 10;
  cfg.max_depth = 4;
  GbdtModel model = TrainGbdt(t, cfg);
  EXPECT_GT(model.Evaluate(t), 0.6);
}

TEST(GbdtTest, ThreadedSplitSearchSameResult) {
  DataTable t = MakeData(2, 1500, 89);
  GbdtConfig cfg1;
  cfg1.num_rounds = 5;
  cfg1.max_depth = 4;
  GbdtConfig cfg4 = cfg1;
  cfg4.num_threads = 4;
  GbdtModel a = TrainGbdt(t, cfg1);
  GbdtModel b = TrainGbdt(t, cfg4);
  for (size_t i = 0; i < t.num_rows(); i += 41) {
    EXPECT_EQ(a.PredictLabel(t, i), b.PredictLabel(t, i));
  }
}

}  // namespace
}  // namespace treeserver
