#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>
#include <tuple>
#include <vector>

#include "common/rng.h"
#include "tree/split.h"
#include "tree/trainer.h"

namespace treeserver {
namespace {

SplitContext ClsCtx(int classes, Impurity imp = Impurity::kGini) {
  return SplitContext{TaskKind::kClassification, imp, classes};
}
SplitContext RegCtx() {
  return SplitContext{TaskKind::kRegression, Impurity::kVariance, 0};
}

double ChildScore(const SplitOutcome& o, const SplitContext& ctx) {
  double nl = static_cast<double>(o.n_left());
  double nr = static_cast<double>(o.n_right());
  return (nl * o.left_stats.ImpurityValue(ctx.impurity) +
          nr * o.right_stats.ImpurityValue(ctx.impurity)) /
         (nl + nr);
}

TEST(ImpurityTest, GiniAndEntropyValues) {
  ClassStats s(2);
  s.Add(0, 5);
  s.Add(1, 5);
  EXPECT_DOUBLE_EQ(s.Gini(), 0.5);
  EXPECT_DOUBLE_EQ(s.Entropy(), 1.0);

  ClassStats pure(3);
  pure.Add(2, 7);
  EXPECT_DOUBLE_EQ(pure.Gini(), 0.0);
  EXPECT_DOUBLE_EQ(pure.Entropy(), 0.0);
  EXPECT_TRUE(pure.IsPure());
  EXPECT_EQ(pure.Majority(), 2);
}

TEST(ImpurityTest, PmfSumsToOne) {
  ClassStats s(3);
  s.Add(0, 1);
  s.Add(1, 3);
  auto p = s.Pmf();
  EXPECT_FLOAT_EQ(p[0] + p[1] + p[2], 1.0f);
  EXPECT_FLOAT_EQ(p[1], 0.75f);
}

TEST(ImpurityTest, RegressionVariance) {
  RegStats s;
  for (double v : {1.0, 2.0, 3.0, 4.0}) s.Add(v);
  EXPECT_DOUBLE_EQ(s.Mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.Variance(), 1.25);
  s.Remove(4.0);
  EXPECT_DOUBLE_EQ(s.Mean(), 2.0);
  RegStats pure;
  pure.Add(3.0);
  pure.Add(3.0);
  EXPECT_TRUE(pure.IsPure());
}

TEST(SplitTest, NumericClassificationPerfectSplit) {
  auto x = Column::Numeric("x", {1, 2, 3, 10, 11, 12});
  auto y = Column::Categorical("y", {0, 0, 0, 1, 1, 1}, 2);
  SplitOutcome o = FindBestSplit(*x, 0, *y, ClsCtx(2), nullptr, 6);
  ASSERT_TRUE(o.valid);
  EXPECT_EQ(o.condition.column, 0);
  EXPECT_EQ(o.condition.type, DataType::kNumeric);
  EXPECT_DOUBLE_EQ(o.condition.threshold, 3.0);
  EXPECT_EQ(o.n_left(), 3);
  EXPECT_EQ(o.n_right(), 3);
  EXPECT_NEAR(o.gain, 0.5, 1e-12);  // parent gini 0.5, children pure
}

TEST(SplitTest, ConstantColumnIsInvalid) {
  auto x = Column::Numeric("x", {5, 5, 5, 5});
  auto y = Column::Categorical("y", {0, 1, 0, 1}, 2);
  EXPECT_FALSE(FindBestSplit(*x, 0, *y, ClsCtx(2), nullptr, 4).valid);
}

TEST(SplitTest, SingleRowIsInvalid) {
  auto x = Column::Numeric("x", {5});
  auto y = Column::Categorical("y", {0}, 2);
  EXPECT_FALSE(FindBestSplit(*x, 0, *y, ClsCtx(2), nullptr, 1).valid);
}

TEST(SplitTest, RowSubsetIsRespected) {
  auto x = Column::Numeric("x", {1, 100, 2, 200, 3, 300});
  auto y = Column::Categorical("y", {0, 1, 0, 1, 0, 1}, 2);
  std::vector<uint32_t> rows = {0, 2, 4};  // only label-0 rows
  SplitOutcome o =
      FindBestSplit(*x, 0, *y, ClsCtx(2), rows.data(), rows.size());
  // Pure subset: any split has zero gain, trainer would reject; the
  // finder may still report a candidate but with gain 0.
  if (o.valid) EXPECT_NEAR(o.gain, 0.0, 1e-12);
}

TEST(SplitTest, NumericRegressionFindsCut) {
  auto x = Column::Numeric("x", {1, 2, 3, 4, 5, 6});
  auto y = Column::Numeric("y", {10, 10, 10, 50, 50, 50});
  SplitOutcome o = FindBestSplit(*x, 0, *y, RegCtx(), nullptr, 6);
  ASSERT_TRUE(o.valid);
  EXPECT_DOUBLE_EQ(o.condition.threshold, 3.0);
  EXPECT_DOUBLE_EQ(o.left_stats.reg.Mean(), 10.0);
  EXPECT_DOUBLE_EQ(o.right_stats.reg.Mean(), 50.0);
  EXPECT_GT(o.gain, 0.0);
}

TEST(SplitTest, CategoricalClassificationOneVsRest) {
  // Category 1 is perfectly predictive of class 1.
  auto x = Column::Categorical("x", {0, 1, 2, 1, 0, 2, 1}, 3);
  auto y = Column::Categorical("y", {0, 1, 0, 1, 0, 0, 1}, 2);
  SplitOutcome o = FindBestSplit(*x, 3, *y, ClsCtx(2), nullptr, 7);
  ASSERT_TRUE(o.valid);
  EXPECT_EQ(o.condition.left_categories, (std::vector<int32_t>{1}));
  EXPECT_EQ(o.condition.seen_categories, (std::vector<int32_t>{0, 1, 2}));
  EXPECT_EQ(o.n_left(), 3);
  EXPECT_NEAR(ChildScore(o, ClsCtx(2)), 0.0, 1e-12);
}

TEST(SplitTest, CategoricalSingleSeenCategoryInvalid) {
  auto x = Column::Categorical("x", {2, 2, 2}, 5);
  auto y = Column::Categorical("y", {0, 1, 0}, 2);
  EXPECT_FALSE(FindBestSplit(*x, 0, *y, ClsCtx(2), nullptr, 3).valid);
}

TEST(SplitTest, CategoricalRegressionBreimanPrefixIsOptimal) {
  // 4 categories with means 1, 5, 9, 13; brute force over all subsets
  // must not beat the prefix cut Breiman's method returns.
  std::vector<int32_t> xv;
  std::vector<double> yv;
  Rng rng(99);
  for (int c = 0; c < 4; ++c) {
    for (int i = 0; i < 8; ++i) {
      xv.push_back(c);
      yv.push_back(1.0 + 4.0 * c + 0.2 * rng.Normal());
    }
  }
  auto x = Column::Categorical("x", xv, 4);
  auto y = Column::Numeric("y", yv);
  SplitOutcome o = FindBestSplit(*x, 0, *y, RegCtx(), nullptr, xv.size());
  ASSERT_TRUE(o.valid);
  double best_score = ChildScore(o, RegCtx());

  // Brute force all 2^4 - 2 nonempty proper subsets.
  double brute = std::numeric_limits<double>::infinity();
  for (int mask = 1; mask < 15; ++mask) {
    RegStats l, r;
    for (size_t i = 0; i < xv.size(); ++i) {
      if ((mask >> xv[i]) & 1) {
        l.Add(yv[i]);
      } else {
        r.Add(yv[i]);
      }
    }
    if (l.n == 0 || r.n == 0) continue;
    double score = (static_cast<double>(l.n) * l.Variance() +
                    static_cast<double>(r.n) * r.Variance()) /
                   static_cast<double>(xv.size());
    brute = std::min(brute, score);
  }
  EXPECT_NEAR(best_score, brute, 1e-9);
}

TEST(SplitTest, MissingRoutedToLargerChild) {
  auto x = Column::Numeric(
      "x", {1, 2, 3, 10, 11, MissingNumeric(), MissingNumeric()});
  auto y = Column::Categorical("y", {0, 0, 0, 1, 1, 0, 1}, 2);
  SplitOutcome o = FindBestSplit(*x, 0, *y, ClsCtx(2), nullptr, 7);
  ASSERT_TRUE(o.valid);
  // Non-missing split: 3 left vs 2 right -> missing goes left.
  EXPECT_TRUE(o.condition.missing_to_left);
  EXPECT_EQ(o.n_left(), 5);
  EXPECT_EQ(o.n_right(), 2);
  // Total row count preserved.
  EXPECT_EQ(o.n_left() + o.n_right(), 7);
}

TEST(SplitTest, AllMissingColumnInvalid) {
  auto x = Column::Numeric(
      "x", {MissingNumeric(), MissingNumeric(), MissingNumeric()});
  auto y = Column::Categorical("y", {0, 1, 0}, 2);
  EXPECT_FALSE(FindBestSplit(*x, 0, *y, ClsCtx(2), nullptr, 3).valid);
}

TEST(SplitTest, RoutePredictSemantics) {
  SplitCondition cond;
  cond.column = 0;
  cond.type = DataType::kNumeric;
  cond.threshold = 5.0;
  EXPECT_EQ(cond.RouteNumeric(5.0), SplitCondition::Route::kLeft);
  EXPECT_EQ(cond.RouteNumeric(5.1), SplitCondition::Route::kRight);
  EXPECT_EQ(cond.RouteNumeric(MissingNumeric()),
            SplitCondition::Route::kStop);

  SplitCondition cat;
  cat.column = 1;
  cat.type = DataType::kCategorical;
  cat.left_categories = {1, 3};
  cat.seen_categories = {0, 1, 2, 3};
  EXPECT_EQ(cat.RouteCategory(3), SplitCondition::Route::kLeft);
  EXPECT_EQ(cat.RouteCategory(0), SplitCondition::Route::kRight);
  EXPECT_EQ(cat.RouteCategory(7), SplitCondition::Route::kStop);  // unseen
  EXPECT_EQ(cat.RouteCategory(kMissingCategory),
            SplitCondition::Route::kStop);
}

TEST(SplitTest, TrainRouteSendsMissingToMajoritySide) {
  SplitCondition cond;
  cond.column = 0;
  cond.type = DataType::kNumeric;
  cond.threshold = 5.0;
  cond.missing_to_left = false;
  EXPECT_FALSE(cond.TrainRoutesLeftNumeric(MissingNumeric()));
  cond.missing_to_left = true;
  EXPECT_TRUE(cond.TrainRoutesLeftNumeric(MissingNumeric()));
  EXPECT_TRUE(cond.TrainRoutesLeftNumeric(4.0));

  SplitCondition cat;
  cat.type = DataType::kCategorical;
  cat.left_categories = {2};
  cat.missing_to_left = false;
  EXPECT_TRUE(cat.TrainRoutesLeftCategory(2));
  EXPECT_FALSE(cat.TrainRoutesLeftCategory(kMissingCategory));
}

TEST(SplitTest, OutcomeSerializationRoundTrip) {
  auto x = Column::Numeric("x", {1, 2, 3, 10, 11, 12});
  auto y = Column::Categorical("y", {0, 0, 0, 1, 1, 1}, 2);
  SplitOutcome o = FindBestSplit(*x, 2, *y, ClsCtx(2), nullptr, 6);
  ASSERT_TRUE(o.valid);

  BinaryWriter w;
  o.Serialize(&w);
  BinaryReader r(w.buffer());
  SplitOutcome back;
  ASSERT_TRUE(SplitOutcome::Deserialize(&r, &back).ok());
  EXPECT_TRUE(back.valid);
  EXPECT_TRUE(back.condition == o.condition);
  EXPECT_DOUBLE_EQ(back.gain, o.gain);
  EXPECT_EQ(back.left_stats.cls.counts, o.left_stats.cls.counts);
  EXPECT_EQ(back.n_right(), o.n_right());
}

TEST(SplitTest, InvalidOutcomeSerializes) {
  SplitOutcome o;
  BinaryWriter w;
  o.Serialize(&w);
  BinaryReader r(w.buffer());
  SplitOutcome back;
  ASSERT_TRUE(SplitOutcome::Deserialize(&r, &back).ok());
  EXPECT_FALSE(back.valid);
}

TEST(SplitTest, RandomSplitNumericBothSidesNonEmpty) {
  auto x = Column::Numeric("x", {1, 2, 3, 4, 5, 6, 7, 8});
  auto y = Column::Categorical("y", {0, 1, 0, 1, 0, 1, 0, 1}, 2);
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    SplitOutcome o = FindRandomSplit(*x, 0, *y, ClsCtx(2), nullptr, 8, &rng);
    ASSERT_TRUE(o.valid);
    EXPECT_GT(o.n_left(), 0);
    EXPECT_GT(o.n_right(), 0);
    EXPECT_GE(o.condition.threshold, 1.0);
    EXPECT_LE(o.condition.threshold, 8.0);
  }
}

TEST(SplitTest, RandomSplitCategoricalProperSubset) {
  auto x = Column::Categorical("x", {0, 1, 2, 3, 0, 1, 2, 3}, 4);
  auto y = Column::Categorical("y", {0, 1, 0, 1, 0, 1, 0, 1}, 2);
  Rng rng(6);
  for (int i = 0; i < 50; ++i) {
    SplitOutcome o = FindRandomSplit(*x, 0, *y, ClsCtx(2), nullptr, 8, &rng);
    ASSERT_TRUE(o.valid);
    EXPECT_GE(o.condition.left_categories.size(), 1u);
    EXPECT_LT(o.condition.left_categories.size(), 4u);
  }
}

TEST(SplitTest, RandomSplitConstantColumnInvalid) {
  auto x = Column::Numeric("x", {3, 3, 3});
  auto y = Column::Categorical("y", {0, 1, 0}, 2);
  Rng rng(1);
  EXPECT_FALSE(FindRandomSplit(*x, 0, *y, ClsCtx(2), nullptr, 3, &rng).valid);
}

TEST(SplitTest, ComputeTargetStatsClassification) {
  auto y = Column::Categorical("y", {0, 1, 1, 2, 1}, 3);
  TargetStats s = ComputeTargetStats(*y, ClsCtx(3), nullptr, 5);
  EXPECT_EQ(s.Count(), 5);
  EXPECT_EQ(s.cls.counts, (std::vector<int64_t>{1, 3, 1}));
  EXPECT_EQ(s.cls.Majority(), 1);
}

TEST(SplitTest, SplitBeatsTieBreaksOnColumn) {
  SplitOutcome a, b;
  a.valid = b.valid = true;
  a.gain = b.gain = 0.25;
  a.condition.column = 2;
  b.condition.column = 5;
  EXPECT_TRUE(SplitBeats(a, b));
  EXPECT_FALSE(SplitBeats(b, a));
  b.gain = 0.3;
  EXPECT_TRUE(SplitBeats(b, a));
  SplitOutcome invalid;
  EXPECT_TRUE(SplitBeats(a, invalid));
  EXPECT_FALSE(SplitBeats(invalid, a));
}

// ------------------------------------------------------------------
// Property sweep: the one-pass exact finder must match a brute-force
// enumeration of every distinct threshold, for random data, across
// impurities and dataset shapes.
// ------------------------------------------------------------------

class NumericExactnessTest
    : public ::testing::TestWithParam<std::tuple<Impurity, int, int>> {};

TEST_P(NumericExactnessTest, MatchesBruteForce) {
  auto [impurity, n, distinct] = GetParam();
  Rng rng(static_cast<uint64_t>(n) * 7919 + distinct);
  std::vector<double> xv(n);
  std::vector<int32_t> yv(n);
  for (int i = 0; i < n; ++i) {
    xv[i] = static_cast<double>(rng.Uniform(distinct));
    yv[i] = static_cast<int32_t>(rng.Uniform(3));
  }
  auto x = Column::Numeric("x", xv);
  auto y = Column::Categorical("y", yv, 3);
  SplitContext ctx = ClsCtx(3, impurity);
  SplitOutcome o = FindBestSplit(*x, 0, *y, ctx, nullptr, n);

  // Brute force over all distinct values as thresholds.
  std::vector<double> candidates(xv.begin(), xv.end());
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  double brute = std::numeric_limits<double>::infinity();
  for (size_t c = 0; c + 1 < candidates.size(); ++c) {
    ClassStats l(3), r(3);
    for (int i = 0; i < n; ++i) {
      if (xv[i] <= candidates[c]) {
        l.Add(yv[i]);
      } else {
        r.Add(yv[i]);
      }
    }
    double score = (static_cast<double>(l.n) * l.ImpurityValue(impurity) +
                    static_cast<double>(r.n) * r.ImpurityValue(impurity)) /
                   n;
    brute = std::min(brute, score);
  }

  if (candidates.size() < 2) {
    EXPECT_FALSE(o.valid);
  } else {
    ASSERT_TRUE(o.valid);
    EXPECT_NEAR(ChildScore(o, ctx), brute, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, NumericExactnessTest,
    ::testing::Combine(::testing::Values(Impurity::kGini, Impurity::kEntropy),
                       ::testing::Values(2, 10, 64, 257),
                       ::testing::Values(1, 2, 5, 40)));

class RegressionExactnessTest : public ::testing::TestWithParam<int> {};

TEST_P(RegressionExactnessTest, MatchesBruteForce) {
  int n = GetParam();
  Rng rng(static_cast<uint64_t>(n) * 104729);
  std::vector<double> xv(n), yv(n);
  for (int i = 0; i < n; ++i) {
    xv[i] = static_cast<double>(rng.Uniform(10));
    yv[i] = rng.UniformDouble(0, 100);
  }
  auto x = Column::Numeric("x", xv);
  auto y = Column::Numeric("y", yv);
  SplitOutcome o = FindBestSplit(*x, 0, *y, RegCtx(), nullptr, n);

  std::vector<double> candidates(xv.begin(), xv.end());
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  double brute = std::numeric_limits<double>::infinity();
  for (size_t c = 0; c + 1 < candidates.size(); ++c) {
    RegStats l, r;
    for (int i = 0; i < n; ++i) {
      if (xv[i] <= candidates[c]) {
        l.Add(yv[i]);
      } else {
        r.Add(yv[i]);
      }
    }
    double score = (static_cast<double>(l.n) * l.Variance() +
                    static_cast<double>(r.n) * r.Variance()) /
                   n;
    brute = std::min(brute, score);
  }
  ASSERT_TRUE(o.valid);
  EXPECT_NEAR(ChildScore(o, RegCtx()), brute, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Sweep, RegressionExactnessTest,
                         ::testing::Values(5, 32, 100, 333));

}  // namespace
}  // namespace treeserver
