#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "concurrent/blocking_queue.h"
#include "concurrent/concurrent_hash_map.h"
#include "concurrent/plan_deque.h"

namespace treeserver {
namespace {

TEST(BlockingQueueTest, FifoOrder) {
  BlockingQueue<int> q;
  q.Push(1);
  q.Push(2);
  q.Push(3);
  EXPECT_EQ(q.Pop().value(), 1);
  EXPECT_EQ(q.Pop().value(), 2);
  EXPECT_EQ(q.Pop().value(), 3);
}

TEST(BlockingQueueTest, TryPopEmptyReturnsNullopt) {
  BlockingQueue<int> q;
  EXPECT_FALSE(q.TryPop().has_value());
}

TEST(BlockingQueueTest, CloseWakesBlockedConsumer) {
  BlockingQueue<int> q;
  std::thread consumer([&] { EXPECT_FALSE(q.Pop().has_value()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.Close();
  consumer.join();
}

TEST(BlockingQueueTest, CloseDeliversPendingItems) {
  BlockingQueue<int> q;
  q.Push(42);
  q.Close();
  EXPECT_EQ(q.Pop().value(), 42);
  EXPECT_FALSE(q.Pop().has_value());
  EXPECT_FALSE(q.Push(1));  // rejected after close
}

TEST(BlockingQueueTest, ManyProducersManyConsumers) {
  BlockingQueue<int> q;
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 2500;
  std::atomic<long> sum{0};
  std::atomic<int> popped{0};

  std::vector<std::thread> consumers;
  for (int c = 0; c < 4; ++c) {
    consumers.emplace_back([&] {
      while (auto v = q.Pop()) {
        sum.fetch_add(*v);
        popped.fetch_add(1);
      }
    });
  }
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) q.Push(p * kPerProducer + i);
    });
  }
  for (auto& t : producers) t.join();
  q.Close();
  for (auto& t : consumers) t.join();

  const long n = kProducers * kPerProducer;
  EXPECT_EQ(popped.load(), n);
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

TEST(ConcurrentHashMapTest, InsertFindErase) {
  ConcurrentHashMap<int, std::string> map;
  EXPECT_TRUE(map.Insert(1, "one"));
  EXPECT_FALSE(map.Insert(1, "uno"));  // duplicate rejected
  EXPECT_TRUE(map.Contains(1));

  std::string seen;
  EXPECT_TRUE(map.Visit(1, [&](std::string& v) { seen = v; }));
  EXPECT_EQ(seen, "one");
  EXPECT_FALSE(map.Visit(2, [](std::string&) {}));

  EXPECT_TRUE(map.Erase(1));
  EXPECT_FALSE(map.Contains(1));
  EXPECT_FALSE(map.Erase(1));
}

TEST(ConcurrentHashMapTest, VisitMutatesInPlace) {
  ConcurrentHashMap<int, int> map;
  map.Insert(5, 10);
  map.Visit(5, [](int& v) { v += 1; });
  int out = 0;
  map.Visit(5, [&](int& v) { out = v; });
  EXPECT_EQ(out, 11);
}

TEST(ConcurrentHashMapTest, VisitAndMaybeErase) {
  ConcurrentHashMap<int, int> map;
  map.Insert(1, 100);
  // fn returns false: keep
  EXPECT_TRUE(map.VisitAndMaybeErase(1, [](int&) { return false; }));
  EXPECT_TRUE(map.Contains(1));
  // fn returns true: erase
  EXPECT_TRUE(map.VisitAndMaybeErase(1, [](int&) { return true; }));
  EXPECT_FALSE(map.Contains(1));
}

TEST(ConcurrentHashMapTest, ExtractMovesValueOut) {
  ConcurrentHashMap<int, std::string> map;
  map.Insert(3, "x");
  auto v = map.Extract(3);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, "x");
  EXPECT_FALSE(map.Extract(3).has_value());
}

TEST(ConcurrentHashMapTest, ConcurrentInsertsAllLand) {
  ConcurrentHashMap<int, int> map(32);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        map.Insert(t * kPerThread + i, i);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(map.size(), static_cast<size_t>(kThreads * kPerThread));
}

TEST(ConcurrentHashMapTest, KeysWhereFilters) {
  ConcurrentHashMap<int, int> map;
  for (int i = 0; i < 10; ++i) map.Insert(i, i * i);
  auto keys = map.KeysWhere([](const int& k, const int&) { return k % 2 == 0; });
  EXPECT_EQ(keys.size(), 5u);
}

TEST(PlanDequeTest, HybridBfsDfsOrdering) {
  // Simulates B_plan: "big" nodes appended (BFS), "small" pushed at the
  // head (DFS). The head must always yield the most recently pushed
  // small node before any queued big node.
  PlanDeque<int> dq;
  dq.PushBack(100);   // big node A
  dq.PushBack(200);   // big node B
  dq.PushFront(-1);   // small node, must come out first
  dq.PushFront(-2);   // smaller still, LIFO among smalls

  EXPECT_EQ(dq.TryPopFront().value(), -2);
  EXPECT_EQ(dq.TryPopFront().value(), -1);
  EXPECT_EQ(dq.TryPopFront().value(), 100);
  EXPECT_EQ(dq.TryPopFront().value(), 200);
  EXPECT_FALSE(dq.TryPopFront().has_value());
}

TEST(PlanDequeTest, SizeTracksContents) {
  PlanDeque<int> dq;
  EXPECT_TRUE(dq.empty());
  dq.PushBack(1);
  dq.PushFront(2);
  EXPECT_EQ(dq.size(), 2u);
  dq.TryPopFront();
  EXPECT_EQ(dq.size(), 1u);
}

}  // namespace
}  // namespace treeserver
