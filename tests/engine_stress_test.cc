#include <gtest/gtest.h>

#include <thread>

#include "engine/cluster.h"
#include "forest/forest.h"
#include "table/datasets.h"

namespace treeserver {
namespace {

DataTable MakeData(int classes, size_t rows, uint64_t seed) {
  DatasetProfile p;
  p.rows = rows;
  p.num_numeric = 6;
  p.num_categorical = 2;
  p.num_classes = classes;
  p.noise = 0.08;
  return GenerateTable(p, seed);
}

TEST(EngineStressTest, ManySmallJobsInterleaved) {
  DataTable t = MakeData(3, 1200, 201);
  EngineConfig cfg;
  cfg.num_workers = 3;
  cfg.compers_per_worker = 2;
  cfg.tau_d = 300;
  cfg.tau_dfs = 900;
  TreeServerCluster cluster(t, cfg);

  std::vector<uint32_t> jobs;
  std::vector<ForestJobSpec> specs;
  for (int j = 0; j < 12; ++j) {
    ForestJobSpec spec;
    spec.num_trees = 1 + j % 3;
    spec.tree.max_depth = 4 + j % 5;
    spec.tree.impurity = j % 2 == 0 ? Impurity::kGini : Impurity::kEntropy;
    spec.column_ratio = 0.5 + 0.05 * (j % 5);
    spec.seed = 100 + j;
    specs.push_back(spec);
    jobs.push_back(cluster.Submit(spec));
  }
  // Wait in reverse submission order to stress the pool.
  for (int j = 11; j >= 0; --j) {
    ForestModel m = cluster.Wait(jobs[j]);
    ASSERT_EQ(m.num_trees(), static_cast<size_t>(specs[j].num_trees));
    ForestModel ref = TrainForestSerial(t, specs[j]);
    for (size_t i = 0; i < m.num_trees(); ++i) {
      EXPECT_TRUE(m.tree(i).StructurallyEqual(ref.tree(i)))
          << "job " << j << " tree " << i;
    }
  }
}

TEST(EngineStressTest, ConcurrentSubmittersFromManyThreads) {
  DataTable t = MakeData(2, 1000, 203);
  EngineConfig cfg;
  cfg.num_workers = 2;
  cfg.compers_per_worker = 2;
  cfg.tau_d = 400;
  cfg.tau_dfs = 1200;
  TreeServerCluster cluster(t, cfg);

  std::vector<std::thread> clients;
  std::atomic<int> failures{0};
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      for (int round = 0; round < 3; ++round) {
        ForestJobSpec spec;
        spec.num_trees = 2;
        spec.tree.max_depth = 5;
        spec.seed = c * 31 + round;
        ForestModel m = cluster.TrainForest(spec);
        if (m.num_trees() != 2) failures.fetch_add(1);
      }
    });
  }
  for (auto& th : clients) th.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(EngineStressTest, TwoCrashesWithTripleReplication) {
  DataTable t = MakeData(2, 3000, 207);
  EngineConfig cfg;
  cfg.num_workers = 5;
  cfg.compers_per_worker = 2;
  cfg.replication = 3;  // survives two failures
  cfg.tau_d = 400;
  cfg.tau_dfs = 1200;
  ForestJobSpec spec;
  spec.num_trees = 8;
  spec.tree.max_depth = 8;
  spec.seed = 5;

  TreeServerCluster cluster(t, cfg);
  uint32_t job = cluster.Submit(spec);
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  cluster.CrashWorker(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  cluster.CrashWorker(4);
  ForestModel forest = cluster.Wait(job);
  ASSERT_EQ(forest.num_trees(), 8u);

  ForestModel reference = TrainForestSerial(t, spec, 2);
  for (size_t i = 0; i < forest.num_trees(); ++i) {
    EXPECT_TRUE(forest.tree(i).StructurallyEqual(reference.tree(i)));
  }
}

TEST(EngineStressTest, CrashAfterJobCompletesIsHarmless) {
  DataTable t = MakeData(2, 1000, 211);
  EngineConfig cfg;
  cfg.num_workers = 3;
  cfg.compers_per_worker = 1;
  TreeServerCluster cluster(t, cfg);
  ForestJobSpec spec;
  spec.num_trees = 2;
  cluster.TrainForest(spec);
  cluster.CrashWorker(0);
  // New work still completes on the survivors.
  ForestJobSpec again;
  again.num_trees = 2;
  again.seed = 7;
  ForestModel m = cluster.TrainForest(again);
  EXPECT_EQ(m.num_trees(), 2u);
}

TEST(EngineStressTest, SingleWorkerClusterHandlesEverything) {
  DataTable t = MakeData(4, 2000, 213);
  EngineConfig cfg;
  cfg.num_workers = 1;
  cfg.compers_per_worker = 3;
  cfg.replication = 1;
  cfg.tau_d = 300;
  cfg.tau_dfs = 900;
  TreeServerCluster cluster(t, cfg);
  ForestJobSpec spec;
  spec.num_trees = 4;
  spec.tree.max_depth = 8;
  spec.column_ratio = 0.7;
  ForestModel forest = cluster.TrainForest(spec);
  ForestModel reference = TrainForestSerial(t, spec);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(forest.tree(i).StructurallyEqual(reference.tree(i)));
  }
}

TEST(EngineStressTest, TinyTableEdgeCases) {
  // 3 rows: the root is immediately a subtree-task and mostly a leaf.
  std::vector<ColumnMeta> metas = {{"a", DataType::kNumeric, 0},
                                   {"y", DataType::kCategorical, 2}};
  auto t = DataTable::Make(
      Schema(metas, 1, TaskKind::kClassification),
      {Column::Numeric("a", {1, 2, 3}), Column::Categorical("y", {0, 1, 0}, 2)});
  ASSERT_TRUE(t.ok());
  EngineConfig cfg;
  cfg.num_workers = 2;
  cfg.compers_per_worker = 1;
  TreeServerCluster cluster(*t, cfg);
  ForestJobSpec spec;
  spec.num_trees = 1;
  ForestModel m = cluster.TrainForest(spec);
  TreeModel ref = TrainTreeOnTable(*t, {0}, spec.tree);
  EXPECT_TRUE(m.tree(0).StructurallyEqual(ref));
}

TEST(EngineStressTest, PureTargetMakesSingleLeaf) {
  std::vector<ColumnMeta> metas = {{"a", DataType::kNumeric, 0},
                                   {"y", DataType::kCategorical, 2}};
  auto t = DataTable::Make(
      Schema(metas, 1, TaskKind::kClassification),
      {Column::Numeric("a", {1, 2, 3, 4}),
       Column::Categorical("y", {1, 1, 1, 1}, 2)});
  ASSERT_TRUE(t.ok());
  EngineConfig cfg;
  cfg.num_workers = 2;
  cfg.compers_per_worker = 1;
  cfg.tau_d = 0;  // force the column-task path even for the root
  cfg.tau_dfs = 0;
  TreeServerCluster cluster(*t, cfg);
  ForestJobSpec spec;
  spec.num_trees = 1;
  ForestModel m = cluster.TrainForest(spec);
  EXPECT_EQ(m.tree(0).num_nodes(), 1u);
  EXPECT_TRUE(m.tree(0).node(0).is_leaf());
  EXPECT_EQ(m.tree(0).node(0).label, 1);
}

TEST(EngineStressTest, WideTableManyColumns) {
  DatasetProfile p;
  p.rows = 800;
  p.num_numeric = 120;
  p.num_categorical = 0;
  p.num_classes = 3;
  DataTable t = GenerateTable(p, 217);
  EngineConfig cfg;
  cfg.num_workers = 4;
  cfg.compers_per_worker = 2;
  cfg.tau_d = 200;
  cfg.tau_dfs = 600;
  TreeServerCluster cluster(t, cfg);
  ForestJobSpec spec;
  spec.num_trees = 2;
  spec.tree.max_depth = 6;
  spec.sqrt_columns = true;
  ForestModel forest = cluster.TrainForest(spec);
  ForestModel reference = TrainForestSerial(t, spec);
  for (size_t i = 0; i < 2; ++i) {
    EXPECT_TRUE(forest.tree(i).StructurallyEqual(reference.tree(i)));
  }
}

}  // namespace
}  // namespace treeserver
