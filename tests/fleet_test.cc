#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <future>
#include <thread>
#include <vector>

#include "common/serial.h"

#include "fleet/replica.h"
#include "fleet/router.h"
#include "fleet/wire.h"
#include "forest/forest.h"
#include "net/network.h"
#include "rpc/fault_injection.h"
#include "serve/compiled_model.h"
#include "table/datasets.h"

namespace treeserver {
namespace {

DataTable FleetData(size_t rows, uint64_t seed, int classes = 3) {
  DatasetProfile p;
  p.rows = rows;
  p.num_numeric = 5;
  p.num_categorical = 3;
  p.num_classes = classes;
  p.missing_fraction = 0.05;
  p.noise = 0.05;
  p.concept_depth = 5;
  return GenerateTable(p, seed);
}

ForestModel TrainFleetForest(const DataTable& t, uint64_t seed = 17,
                             int trees = 6) {
  ForestJobSpec spec;
  spec.num_trees = trees;
  spec.tree.max_depth = 6;
  spec.column_ratio = 0.7;
  spec.seed = seed;
  if (t.schema().task_kind() == TaskKind::kRegression) {
    spec.tree.impurity = Impurity::kVariance;
  }
  return TrainForestSerial(t, spec, 2);
}

std::string SerializeForest(const ForestModel& forest) {
  BinaryWriter w;
  forest.Serialize(&w);
  return w.Release();
}

std::vector<int32_t> ReferenceLabels(const ForestModel& forest,
                                     const DataTable& table) {
  CompiledForest compiled = CompiledForest::Compile(forest);
  std::vector<uint32_t> rows(table.num_rows());
  for (uint32_t i = 0; i < table.num_rows(); ++i) rows[i] = i;
  std::vector<int32_t> labels(table.num_rows());
  compiled.PredictLabel(table, rows.data(), rows.size(), -1, labels.data());
  return labels;
}

/// Router + N started replicas over one in-process transport, with
/// fast timers sized for tests.
struct FleetHarness {
  explicit FleetHarness(int num_replicas, FleetRouterConfig router_config = {},
                        Transport* transport_override = nullptr)
      : net(num_replicas, 0.0),
        transport(transport_override != nullptr ? transport_override : &net) {
    for (int r = 0; r < num_replicas; ++r) {
      FleetReplicaConfig rc;
      rc.rank = r;
      rc.serve.num_workers = 2;
      rc.serve.max_batch = 16;
      rc.serve.batch_deadline_us = 100;
      replicas.push_back(std::make_unique<FleetReplica>(transport, rc));
    }
    if (router_config.health_period_ms == 100) {
      router_config.health_period_ms = 20;
    }
    if (router_config.retry_period_ms == 250) {
      router_config.retry_period_ms = 60;
    }
    router = std::make_unique<FleetRouter>(transport, router_config);
  }

  ~FleetHarness() {
    router->Stop();
    for (auto& r : replicas) r->Stop();
  }

  void Start(int skip_replica = -1) {
    for (int r = 0; r < static_cast<int>(replicas.size()); ++r) {
      if (r != skip_replica) replicas[r]->Start();
    }
    router->Start();
  }

  InProcessTransport net;
  Transport* transport;
  std::vector<std::unique_ptr<FleetReplica>> replicas;
  std::unique_ptr<FleetRouter> router;
};

// ---------------------------------------------------------------------
// Wire codec.
// ---------------------------------------------------------------------

TEST(FleetWire, PredictBatchRoundTripsBitExact) {
  DataTable table = FleetData(64, 11);
  std::vector<uint32_t> rows = {0, 7, 13, 63};
  FleetPredictMsg msg =
      FleetPredictMsg::FromRows(42, "m", table, rows.data(), rows.size());
  const std::string wire = msg.Encode();

  FleetPredictMsg decoded;
  ASSERT_TRUE(FleetPredictMsg::Decode(wire, &decoded).ok());
  EXPECT_EQ(decoded.request_id, 42u);
  EXPECT_EQ(decoded.model, "m");
  EXPECT_EQ(decoded.num_rows, rows.size());

  Result<std::shared_ptr<const DataTable>> rebuilt = decoded.ToTable();
  ASSERT_TRUE(rebuilt.ok());
  const DataTable& out = **rebuilt;
  ASSERT_EQ(out.num_rows(), rows.size());
  ASSERT_EQ(out.num_columns(), table.num_columns());
  EXPECT_EQ(out.schema().target_index(), table.schema().target_index());
  for (int c = 0; c < table.num_columns(); ++c) {
    for (size_t i = 0; i < rows.size(); ++i) {
      if (table.column(c)->type() == DataType::kNumeric) {
        const double a = table.column(c)->numeric_at(rows[i]);
        const double b = out.column(c)->numeric_at(i);
        // Bit-exact, including NaN (missing values).
        EXPECT_EQ(std::memcmp(&a, &b, sizeof(a)), 0);
      } else {
        EXPECT_EQ(table.column(c)->category_at(rows[i]),
                  out.column(c)->category_at(i));
      }
    }
  }
}

TEST(FleetWire, CorruptionIsDetectedAtEverySeam) {
  DataTable table = FleetData(16, 3);
  std::vector<uint32_t> rows = {1, 2};
  std::string wire =
      FleetPredictMsg::FromRows(7, "m", table, rows.data(), rows.size())
          .Encode();
  // Flip one byte anywhere: the CRC seal must catch it.
  for (size_t pos : {size_t{0}, size_t{5}, wire.size() / 2, wire.size() - 1}) {
    std::string bad = wire;
    bad[pos] ^= 0x40;
    FleetPredictMsg out;
    EXPECT_FALSE(FleetPredictMsg::Decode(bad, &out).ok()) << "pos " << pos;
  }
  // Truncation too.
  FleetPredictMsg out;
  EXPECT_FALSE(FleetPredictMsg::Decode(wire.substr(0, 3), &out).ok());
  EXPECT_FALSE(
      FleetPredictMsg::Decode(wire.substr(0, wire.size() - 2), &out).ok());
}

TEST(FleetWire, AdminAndHealthRoundTrip) {
  FleetPushMsg push;
  push.op_id = 9;
  push.model = "m";
  push.model_bytes = std::string("\x01\x02\x00\x03", 4);
  FleetPushMsg push2;
  ASSERT_TRUE(FleetPushMsg::Decode(push.Encode(), &push2).ok());
  EXPECT_EQ(push2.model_bytes, push.model_bytes);

  FleetHealthPongMsg pong;
  pong.nonce = 5;
  pong.replica = 2;
  pong.queue_depth = 7;
  pong.models.push_back({"m", 3, 2});
  FleetHealthPongMsg pong2;
  ASSERT_TRUE(FleetHealthPongMsg::Decode(pong.Encode(), &pong2).ok());
  ASSERT_EQ(pong2.models.size(), 1u);
  EXPECT_EQ(pong2.models[0].name, "m");
  EXPECT_EQ(pong2.models[0].version, 3u);
}

// ---------------------------------------------------------------------
// Canary policy.
// ---------------------------------------------------------------------

TEST(FleetCanaryPolicy, KeepsRunningUntilMinRequests) {
  CanaryBudgets budgets;
  budgets.min_requests = 50;
  EXPECT_EQ(EvaluateCanaryDecision({10, 0, 100}, {100, 0, 100}, budgets),
            CanaryDecision::kKeepRunning);
  EXPECT_EQ(EvaluateCanaryDecision({100, 0, 100}, {10, 0, 100}, budgets),
            CanaryDecision::kKeepRunning);
}

TEST(FleetCanaryPolicy, PromotesWhenHealthy) {
  CanaryBudgets budgets;
  budgets.min_requests = 50;
  budgets.max_p99_ratio = 2.0;
  EXPECT_EQ(EvaluateCanaryDecision({60, 0, 120}, {600, 1, 100}, budgets),
            CanaryDecision::kPromote);
}

TEST(FleetCanaryPolicy, RollsBackOnErrorBudget) {
  CanaryBudgets budgets;
  budgets.min_requests = 50;
  budgets.max_error_excess = 0.02;
  // 10% canary errors vs 0% baseline: over budget.
  EXPECT_EQ(EvaluateCanaryDecision({60, 6, 100}, {600, 0, 100}, budgets),
            CanaryDecision::kRollback);
  // Early rollback: breach detected well before min_requests.
  EXPECT_EQ(EvaluateCanaryDecision({12, 6, 100}, {600, 0, 100}, budgets),
            CanaryDecision::kRollback);
}

TEST(FleetCanaryPolicy, RollsBackOnLatencyBudget) {
  CanaryBudgets budgets;
  budgets.min_requests = 50;
  budgets.max_p99_ratio = 2.0;
  EXPECT_EQ(EvaluateCanaryDecision({60, 0, 500}, {600, 0, 100}, budgets),
            CanaryDecision::kRollback);
}

// ---------------------------------------------------------------------
// Router + replicas, in-process.
// ---------------------------------------------------------------------

TEST(FleetRouterTest, PredictionsMatchSingleProcessReference) {
  DataTable table = FleetData(256, 21);
  ForestModel forest = TrainFleetForest(table);
  const std::vector<int32_t> reference = ReferenceLabels(forest, table);

  FleetHarness fleet(3);
  fleet.Start();
  ASSERT_TRUE(fleet.router->Push("m", SerializeForest(forest)).ok());

  std::vector<std::future<Result<FleetBatchResult>>> futures;
  for (uint32_t row = 0; row < table.num_rows(); ++row) {
    futures.push_back(fleet.router->Predict("m", table, row));
  }
  for (uint32_t row = 0; row < table.num_rows(); ++row) {
    Result<FleetBatchResult> result = futures[row].get();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ASSERT_EQ(result->labels.size(), 1u);
    EXPECT_EQ(result->labels[0], reference[row]) << "row " << row;
  }

  // Every replica took some of the load (least-loaded + stickiness
  // still spreads across ranks under concurrency).
  const FleetStatus status = fleet.router->GetStatus();
  EXPECT_EQ(status.shed, 0u);
  EXPECT_GE(status.accepted, table.num_rows());
}

TEST(FleetRouterTest, BatchedRowsMatchReference) {
  DataTable table = FleetData(128, 23);
  ForestModel forest = TrainFleetForest(table);
  const std::vector<int32_t> reference = ReferenceLabels(forest, table);

  FleetHarness fleet(2);
  fleet.Start();
  ASSERT_TRUE(fleet.router->Push("m", SerializeForest(forest)).ok());

  std::vector<uint32_t> rows;
  for (uint32_t r = 0; r < table.num_rows(); r += 2) rows.push_back(r);
  Result<FleetBatchResult> result =
      fleet.router->PredictRows("m", table, rows.data(), rows.size()).get();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->labels.size(), rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(result->labels[i], reference[rows[i]]);
  }
}

TEST(FleetRouterTest, ShedsAtAdmissionAndDeadlineWithCounts) {
  DataTable table = FleetData(32, 5);

  FleetRouterConfig config;
  config.max_inflight = 4;
  config.default_deadline_ms = 150;
  MetricsRegistry metrics;
  config.metrics = &metrics;
  // Replicas exist but are never started: nothing drains the
  // mailboxes, so accepted requests age out and late ones shed at
  // admission.
  FleetHarness fleet(2, config);
  fleet.router->Start();

  std::vector<std::future<Result<FleetBatchResult>>> futures;
  for (uint32_t row = 0; row < 8; ++row) {
    futures.push_back(fleet.router->Predict("m", table, row));
  }
  size_t unavailable = 0;
  for (auto& f : futures) {
    Result<FleetBatchResult> r = f.get();
    ASSERT_FALSE(r.ok());
    if (r.status().code() == StatusCode::kUnavailable) ++unavailable;
  }
  // All 8 resolved Unavailable: 4 at admission, 4 at the deadline —
  // and the shed counter saw every one (nothing dropped silently).
  EXPECT_EQ(unavailable, 8u);
  EXPECT_EQ(metrics.GetCounter("fleet.shed")->value(), 8u);
}

TEST(FleetRouterTest, FailoverReroutesAwayFromDeadReplica) {
  DataTable table = FleetData(128, 31);
  ForestModel forest = TrainFleetForest(table);
  const std::vector<int32_t> reference = ReferenceLabels(forest, table);

  FleetHarness fleet(3);
  fleet.Start();
  ASSERT_TRUE(fleet.router->Push("m", SerializeForest(forest)).ok());

  // Kill replica 0 mid-load: its in-flight work must re-dispatch.
  std::vector<std::future<Result<FleetBatchResult>>> futures;
  for (uint32_t row = 0; row < 64; ++row) {
    futures.push_back(fleet.router->Predict("m", table, row));
  }
  fleet.replicas[0]->Stop();
  fleet.net.SetCrashed(0);
  fleet.router->MarkReplicaDead(0);
  for (uint32_t row = 64; row < 128; ++row) {
    futures.push_back(fleet.router->Predict("m", table, row));
  }

  for (uint32_t row = 0; row < 128; ++row) {
    Result<FleetBatchResult> result = futures[row].get();
    ASSERT_TRUE(result.ok()) << "row " << row << ": "
                             << result.status().ToString();
    EXPECT_EQ(result->labels[0], reference[row]);
    // Pre-kill rows may well have been answered by replica 0 before it
    // died; only traffic sent after MarkReplicaDead must avoid it.
    if (row >= 64) {
      EXPECT_NE(result->replica, 0) << "dead replica answered row " << row;
    }
  }
  const FleetStatus status = fleet.router->GetStatus();
  EXPECT_FALSE(status.replicas[0].alive);
  EXPECT_FALSE(status.replicas[0].in_rotation);
}

TEST(FleetRouterTest, HealthRotationDropsAndHealsSilentReplica) {
  FleetRouterConfig config;
  config.health_period_ms = 10;
  config.health_miss_limit = 3;
  FleetHarness fleet(2, config);
  // Replica 1 exists but does not serve its mailbox yet.
  fleet.Start(/*skip_replica=*/1);

  // Replica 1 misses pings until it leaves rotation.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  bool out_of_rotation = false;
  while (std::chrono::steady_clock::now() < deadline) {
    const FleetStatus status = fleet.router->GetStatus();
    if (!status.replicas[1].in_rotation) {
      out_of_rotation = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_TRUE(out_of_rotation);
  {
    const FleetStatus status = fleet.router->GetStatus();
    EXPECT_TRUE(status.replicas[1].alive);  // silent, not dead
    EXPECT_TRUE(status.replicas[0].in_rotation);
  }

  // It starts serving (partition heals): first pong re-admits it.
  fleet.replicas[1]->Start();
  bool healed = false;
  const auto heal_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (std::chrono::steady_clock::now() < heal_deadline) {
    if (fleet.router->GetStatus().replicas[1].in_rotation) {
      healed = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(healed);
}

TEST(FleetRouterTest, CanaryRollbackLeavesOldVersionEverywhere) {
  DataTable table = FleetData(128, 41);
  ForestModel v1 = TrainFleetForest(table, 17);
  ForestModel v2 = TrainFleetForest(table, 99);
  const std::vector<int32_t> reference_v1 = ReferenceLabels(v1, table);

  FleetRouterConfig config;
  config.canary_fraction = 0.5;
  FleetHarness fleet(3, config);
  fleet.Start();
  ASSERT_TRUE(fleet.router->Push("m", SerializeForest(v1)).ok());

  Result<int> canary_replica =
      fleet.router->PushCanary("m", SerializeForest(v2));
  ASSERT_TRUE(canary_replica.ok()) << canary_replica.status().ToString();

  // Half the traffic sees v2 (from the canary replica only), half v1.
  bool saw_canary = false;
  bool saw_baseline = false;
  for (uint32_t row = 0; row < 64; ++row) {
    Result<FleetBatchResult> r = fleet.router->Predict("m", table, row).get();
    ASSERT_TRUE(r.ok());
    if (r->version == 2) {
      saw_canary = true;
      EXPECT_EQ(r->replica, *canary_replica);
    } else {
      EXPECT_EQ(r->version, 1u);
      EXPECT_NE(r->replica, *canary_replica)
          << "baseline traffic hit the canary replica";
      saw_baseline = true;
    }
  }
  EXPECT_TRUE(saw_canary);
  EXPECT_TRUE(saw_baseline);
  {
    const FleetStatus status = fleet.router->GetStatus();
    ASSERT_EQ(status.canaries.size(), 1u);
    EXPECT_EQ(status.canaries[0].replica, *canary_replica);
    EXPECT_GT(status.canaries[0].canary.count +
                  status.canaries[0].baseline.count,
              0u);
  }

  // Forced rollback: every replica serves v1 again, no v2 anywhere.
  ASSERT_TRUE(fleet.router->Rollback("m").ok());
  EXPECT_TRUE(fleet.router->GetStatus().canaries.empty());
  for (uint32_t row = 0; row < 64; ++row) {
    Result<FleetBatchResult> r = fleet.router->Predict("m", table, row).get();
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->version, 1u);
    EXPECT_EQ(r->labels[0], reference_v1[row]);
  }
  for (auto& replica : fleet.replicas) {
    auto current = replica->registry()->Current("m");
    ASSERT_NE(current, nullptr);
    EXPECT_EQ(current->version, 1u);
  }
}

TEST(FleetRouterTest, CanaryPromoteShipsNewVersionEverywhere) {
  DataTable table = FleetData(96, 43);
  ForestModel v1 = TrainFleetForest(table, 17);
  ForestModel v2 = TrainFleetForest(table, 99);
  const std::vector<int32_t> reference_v2 = ReferenceLabels(v2, table);

  FleetHarness fleet(2);
  fleet.Start();
  ASSERT_TRUE(fleet.router->Push("m", SerializeForest(v1)).ok());
  ASSERT_TRUE(fleet.router->PushCanary("m", SerializeForest(v2)).ok());
  ASSERT_TRUE(fleet.router->Promote("m").ok());
  EXPECT_TRUE(fleet.router->GetStatus().canaries.empty());

  for (uint32_t row = 0; row < 64; ++row) {
    Result<FleetBatchResult> r = fleet.router->Predict("m", table, row).get();
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->version, 2u);
    EXPECT_EQ(r->labels[0], reference_v2[row]);
  }
}

TEST(FleetRouterTest, RegressionValuesAreByteIdentical) {
  DatasetProfile p;
  p.rows = 96;
  p.num_numeric = 6;
  p.num_categorical = 2;
  p.num_classes = 0;  // regression
  p.noise = 0.1;
  DataTable table = GenerateTable(p, 7);
  ForestModel forest = TrainFleetForest(table);
  CompiledForest compiled = CompiledForest::Compile(forest);
  std::vector<uint32_t> rows(table.num_rows());
  for (uint32_t i = 0; i < table.num_rows(); ++i) rows[i] = i;
  std::vector<double> reference(table.num_rows());
  compiled.PredictValue(table, rows.data(), rows.size(), -1, reference.data());

  FleetHarness fleet(2);
  fleet.Start();
  ASSERT_TRUE(fleet.router->Push("m", SerializeForest(forest)).ok());
  for (uint32_t row = 0; row < table.num_rows(); ++row) {
    Result<FleetBatchResult> r = fleet.router->Predict("m", table, row).get();
    ASSERT_TRUE(r.ok());
    ASSERT_EQ(r->values.size(), 1u);
    // Byte-identical doubles, not approximately equal.
    EXPECT_EQ(std::memcmp(&r->values[0], &reference[row], sizeof(double)), 0)
        << "row " << row;
  }
}

// ---------------------------------------------------------------------
// Chaos: the fleet under the PR 7 fault injector.
// ---------------------------------------------------------------------

TEST(FleetChaosTest, MixedProfilePreservesParity) {
  DataTable table = FleetData(128, 53);
  ForestModel forest = TrainFleetForest(table);
  const std::vector<int32_t> reference = ReferenceLabels(forest, table);

  InProcessTransport inner(3, 0.0);
  FaultSchedule schedule;
  ASSERT_TRUE(FaultSchedule::Profile("mixed", 20260808, &schedule));
  schedule.crashes.clear();  // replica death is FailoverReroutes' job
  FaultInjectingTransport chaos(&inner, schedule);

  {
    FleetRouterConfig config;
    config.default_deadline_ms = 20000;
    config.retry_period_ms = 80;
    FleetHarness fleet(3, config, &chaos);
    fleet.Start();
    ASSERT_TRUE(fleet.router->Push("m", SerializeForest(forest)).ok());

    std::vector<std::future<Result<FleetBatchResult>>> futures;
    for (uint32_t row = 0; row < table.num_rows(); ++row) {
      futures.push_back(fleet.router->Predict("m", table, row));
    }
    size_t served = 0;
    for (uint32_t row = 0; row < table.num_rows(); ++row) {
      Result<FleetBatchResult> result = futures[row].get();
      // Every accepted request either returns the byte-identical
      // prediction or is counted as shed — never a wrong answer.
      if (result.ok()) {
        EXPECT_EQ(result->labels[0], reference[row]) << "row " << row;
        ++served;
      } else {
        EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
      }
    }
    const FleetStatus status = fleet.router->GetStatus();
    EXPECT_EQ(served + status.shed, table.num_rows());
    EXPECT_GT(served, table.num_rows() / 2);  // chaos, not an outage
  }
  chaos.Stop();
}

}  // namespace
}  // namespace treeserver
