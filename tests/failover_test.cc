#include <gtest/gtest.h>

#include <thread>

#include "engine/cluster.h"
#include "forest/forest.h"
#include "table/datasets.h"

namespace treeserver {
namespace {

DataTable MakeData(size_t rows, uint64_t seed) {
  DatasetProfile p;
  p.rows = rows;
  p.num_numeric = 6;
  p.num_categorical = 2;
  p.num_classes = 3;
  p.noise = 0.08;
  return GenerateTable(p, seed);
}

TEST(JobSpecSerializationTest, RoundTrip) {
  ForestJobSpec spec;
  spec.name = "rf-xyz";
  spec.num_trees = 17;
  spec.tree.max_depth = 9;
  spec.tree.min_leaf = 3;
  spec.tree.impurity = Impurity::kEntropy;
  spec.tree.extra_trees = true;
  spec.column_ratio = 0.4;
  spec.sqrt_columns = true;
  spec.seed = 123456;
  spec.depends_on = {2, 5};

  BinaryWriter w;
  spec.Serialize(&w);
  BinaryReader r(w.buffer());
  ForestJobSpec back;
  ASSERT_TRUE(ForestJobSpec::Deserialize(&r, &back).ok());
  EXPECT_EQ(back.name, "rf-xyz");
  EXPECT_EQ(back.num_trees, 17);
  EXPECT_EQ(back.tree.max_depth, 9);
  EXPECT_EQ(back.tree.min_leaf, 3u);
  EXPECT_EQ(back.tree.impurity, Impurity::kEntropy);
  EXPECT_TRUE(back.tree.extra_trees);
  EXPECT_EQ(back.column_ratio, 0.4);
  EXPECT_TRUE(back.sqrt_columns);
  EXPECT_EQ(back.seed, 123456u);
  EXPECT_EQ(back.depends_on, (std::vector<uint32_t>{2, 5}));
}

TEST(MasterFailoverTest, MidJobFailoverCompletesWithSameForest) {
  DataTable t = MakeData(3000, 301);
  EngineConfig cfg;
  cfg.num_workers = 3;
  cfg.compers_per_worker = 2;
  cfg.tau_d = 400;
  cfg.tau_dfs = 1200;
  ForestJobSpec spec;
  spec.num_trees = 10;
  spec.tree.max_depth = 8;
  spec.column_ratio = 0.8;
  spec.seed = 17;

  TreeServerCluster cluster(t, cfg);
  uint32_t job = cluster.Submit(spec);
  // Let some trees finish, then the master "dies" and the secondary
  // takes over from the checkpoint.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  cluster.FailoverMaster();
  ForestModel forest = cluster.Wait(job);
  ASSERT_EQ(forest.num_trees(), 10u);

  ForestModel reference = TrainForestSerial(t, spec, 2);
  for (size_t i = 0; i < forest.num_trees(); ++i) {
    EXPECT_TRUE(forest.tree(i).StructurallyEqual(reference.tree(i)))
        << "tree " << i << " differs after master failover";
  }
}

TEST(MasterFailoverTest, FailoverBeforeAnyJob) {
  DataTable t = MakeData(800, 303);
  EngineConfig cfg;
  cfg.num_workers = 2;
  cfg.compers_per_worker = 1;
  TreeServerCluster cluster(t, cfg);
  cluster.FailoverMaster();
  ForestJobSpec spec;
  spec.num_trees = 2;
  ForestModel m = cluster.TrainForest(spec);
  EXPECT_EQ(m.num_trees(), 2u);
}

TEST(MasterFailoverTest, CompletedJobsSurviveFailover) {
  DataTable t = MakeData(1000, 307);
  EngineConfig cfg;
  cfg.num_workers = 2;
  cfg.compers_per_worker = 2;
  TreeServerCluster cluster(t, cfg);
  ForestJobSpec spec;
  spec.num_trees = 3;
  spec.tree.max_depth = 6;
  uint32_t job = cluster.Submit(spec);
  ForestModel before = cluster.Wait(job);
  cluster.FailoverMaster();
  // The same job id still resolves, with the same trees.
  ForestModel after = cluster.Wait(job);
  ASSERT_EQ(after.num_trees(), before.num_trees());
  for (size_t i = 0; i < after.num_trees(); ++i) {
    EXPECT_TRUE(after.tree(i).StructurallyEqual(before.tree(i)));
  }
}

TEST(MasterFailoverTest, RepeatedFailovers) {
  DataTable t = MakeData(1500, 311);
  EngineConfig cfg;
  cfg.num_workers = 3;
  cfg.compers_per_worker = 1;
  cfg.tau_d = 300;
  cfg.tau_dfs = 900;
  TreeServerCluster cluster(t, cfg);
  ForestJobSpec spec;
  spec.num_trees = 6;
  spec.tree.max_depth = 7;
  uint32_t job = cluster.Submit(spec);
  for (int k = 0; k < 3; ++k) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    cluster.FailoverMaster();
  }
  ForestModel forest = cluster.Wait(job);
  ASSERT_EQ(forest.num_trees(), 6u);
  ForestModel reference = TrainForestSerial(t, spec);
  for (size_t i = 0; i < forest.num_trees(); ++i) {
    EXPECT_TRUE(forest.tree(i).StructurallyEqual(reference.tree(i)));
  }
}

TEST(MasterFailoverTest, WorkerCrashThenMasterFailover) {
  DataTable t = MakeData(2500, 313);
  EngineConfig cfg;
  cfg.num_workers = 4;
  cfg.compers_per_worker = 2;
  cfg.replication = 2;
  cfg.tau_d = 400;
  cfg.tau_dfs = 1200;
  TreeServerCluster cluster(t, cfg);
  ForestJobSpec spec;
  spec.num_trees = 6;
  spec.tree.max_depth = 7;
  spec.seed = 23;
  uint32_t job = cluster.Submit(spec);
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  cluster.CrashWorker(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  // The checkpoint carries the dead-worker information: the new
  // master must not assign anything to worker 1.
  cluster.FailoverMaster();
  ForestModel forest = cluster.Wait(job);
  ASSERT_EQ(forest.num_trees(), 6u);
  ForestModel reference = TrainForestSerial(t, spec);
  for (size_t i = 0; i < forest.num_trees(); ++i) {
    EXPECT_TRUE(forest.tree(i).StructurallyEqual(reference.tree(i)));
  }
}

}  // namespace
}  // namespace treeserver
