#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "common/metrics_registry.h"
#include "common/rng.h"
#include "engine/cluster.h"
#include "forest/forest.h"
#include "table/binned.h"
#include "table/datasets.h"
#include "tree/hist.h"
#include "tree/split.h"
#include "tree/trainer.h"

namespace treeserver {
namespace {

SplitContext ClsCtx(int classes, Impurity imp = Impurity::kGini) {
  return SplitContext{TaskKind::kClassification, imp, classes};
}
SplitContext RegCtx() {
  return SplitContext{TaskKind::kRegression, Impurity::kVariance, 0};
}

std::string SerializeCanonical(TreeModel model) {
  model.Canonicalize();
  BinaryWriter w;
  model.Serialize(&w);
  return w.buffer();
}

std::string SerializeForestBytes(const ForestModel& forest) {
  BinaryWriter w;
  forest.Serialize(&w);
  return w.buffer();
}

/// Classification table whose numeric features take at most `grid`
/// distinct values, so histogram mode with max_bins >= grid must
/// reproduce the exact tree bit for bit.
DataTable GridClsTable(size_t rows, int num_cols, int grid, int classes,
                       uint64_t seed, double missing_fraction = 0.0) {
  Rng rng(seed);
  std::vector<std::vector<double>> feats(num_cols,
                                         std::vector<double>(rows));
  std::vector<int32_t> y(rows);
  for (size_t r = 0; r < rows; ++r) {
    double s = 0.0;
    for (int c = 0; c < num_cols; ++c) {
      if (missing_fraction > 0 && rng.Bernoulli(missing_fraction)) {
        feats[c][r] = MissingNumeric();
      } else {
        feats[c][r] = static_cast<double>(rng.Uniform(grid));
        s += (c + 1) * feats[c][r];
      }
    }
    int32_t label = static_cast<int32_t>(s / grid) % classes;
    if (rng.Bernoulli(0.05)) {
      label = static_cast<int32_t>(rng.Uniform(classes));
    }
    y[r] = label;
  }
  std::vector<ColumnMeta> metas;
  std::vector<ColumnPtr> cols;
  for (int c = 0; c < num_cols; ++c) {
    std::string name = "x" + std::to_string(c);
    metas.push_back({name, DataType::kNumeric, 0});
    cols.push_back(Column::Numeric(name, std::move(feats[c])));
  }
  metas.push_back({"y", DataType::kCategorical, classes});
  cols.push_back(Column::Categorical("y", std::move(y), classes));
  auto t = DataTable::Make(Schema(metas, num_cols, TaskKind::kClassification),
                           std::move(cols));
  EXPECT_TRUE(t.ok());
  return std::move(t).value();
}

/// Regression table with grid features and integer-valued targets:
/// integer sums make the floating-point histogram arithmetic exact, so
/// parity with the exact kernel is bit-for-bit.
DataTable GridRegTable(size_t rows, int num_cols, int grid, uint64_t seed,
                       double missing_fraction = 0.0) {
  Rng rng(seed);
  std::vector<std::vector<double>> feats(num_cols,
                                         std::vector<double>(rows));
  std::vector<double> y(rows);
  for (size_t r = 0; r < rows; ++r) {
    double s = 0.0;
    for (int c = 0; c < num_cols; ++c) {
      if (missing_fraction > 0 && rng.Bernoulli(missing_fraction)) {
        feats[c][r] = MissingNumeric();
      } else {
        feats[c][r] = static_cast<double>(rng.Uniform(grid));
        s += (c + 1) * feats[c][r];
      }
    }
    y[r] = std::floor(s) + static_cast<double>(rng.Uniform(5));
  }
  std::vector<ColumnMeta> metas;
  std::vector<ColumnPtr> cols;
  for (int c = 0; c < num_cols; ++c) {
    std::string name = "x" + std::to_string(c);
    metas.push_back({name, DataType::kNumeric, 0});
    cols.push_back(Column::Numeric(name, std::move(feats[c])));
  }
  metas.push_back({"y", DataType::kNumeric, 0});
  cols.push_back(Column::Numeric("y", std::move(y)));
  auto t = DataTable::Make(Schema(metas, num_cols, TaskKind::kRegression),
                           std::move(cols));
  EXPECT_TRUE(t.ok());
  return std::move(t).value();
}

// -------------------------------------------------------------------
// Binning.
// -------------------------------------------------------------------

TEST(BinnedColumnTest, OneBinPerDistinctValueWhenTheyFit) {
  auto col = Column::Numeric("x", {5.0, 1.0, 3.0, 1.0, 5.0, 3.0, 3.0});
  auto binned = BinnedColumn::Build(*col, 255);
  ASSERT_EQ(binned->num_bins(), 3);
  EXPECT_FALSE(binned->wide());
  EXPECT_DOUBLE_EQ(binned->upper(0), 1.0);
  EXPECT_DOUBLE_EQ(binned->upper(1), 3.0);
  EXPECT_DOUBLE_EQ(binned->upper(2), 5.0);
  // Codes follow value order.
  EXPECT_EQ(binned->code_at(0), 2);
  EXPECT_EQ(binned->code_at(1), 0);
  EXPECT_EQ(binned->code_at(2), 1);
  EXPECT_EQ(binned->num_rows(), 7u);
}

TEST(BinnedColumnTest, MissingValuesGetTheMissingBin) {
  auto col = Column::Numeric("x", {1.0, MissingNumeric(), 2.0,
                                   MissingNumeric()});
  auto binned = BinnedColumn::Build(*col, 16);
  ASSERT_EQ(binned->num_bins(), 2);
  EXPECT_EQ(binned->missing_code(), 2);
  EXPECT_EQ(binned->code_at(1), binned->missing_code());
  EXPECT_EQ(binned->code_at(3), binned->missing_code());
  EXPECT_EQ(binned->CodeOf(MissingNumeric()), binned->missing_code());
}

TEST(BinnedColumnTest, QuantileCutsBoundTheBinCountAndCoverTheMax) {
  Rng rng(7);
  std::vector<double> values(5000);
  for (double& v : values) v = rng.UniformDouble(-10.0, 10.0);
  auto col = Column::Numeric("x", values);
  auto binned = BinnedColumn::Build(*col, 64);
  EXPECT_LE(binned->num_bins(), 64);
  EXPECT_GE(binned->num_bins(), 32);  // smooth data: cuts shouldn't collapse
  double max_v = *std::max_element(values.begin(), values.end());
  EXPECT_DOUBLE_EQ(binned->upper(binned->num_bins() - 1), max_v);
  // Every value's bin upper bound is >= the value, and the previous
  // bin's upper bound (if any) is < the value.
  for (size_t i = 0; i < values.size(); ++i) {
    int b = binned->code_at(i);
    EXPECT_GE(binned->upper(b), values[i]);
    if (b > 0) {
      EXPECT_LT(binned->upper(b - 1), values[i]);
    }
  }
}

TEST(BinnedColumnTest, WideCodesBeyond255Bins) {
  std::vector<double> values(1000);
  for (size_t i = 0; i < values.size(); ++i) {
    values[i] = static_cast<double>(i);  // 1000 distinct values
  }
  auto col = Column::Numeric("x", values);
  auto binned = BinnedColumn::Build(*col, 1000);
  EXPECT_EQ(binned->num_bins(), 1000);
  EXPECT_TRUE(binned->wide());
  EXPECT_EQ(binned->code_at(999), 999);
}

TEST(BinnedColumnTest, BindGatheredReusesGlobalBoundaries) {
  auto col = Column::Numeric("x", {0.0, 1.0, 2.0, 3.0, 4.0, 5.0});
  auto global = BinnedColumn::Build(*col, 255);
  auto gathered = Column::Numeric("x", {4.0, 1.0});
  auto bound = global->BindGathered(*gathered);
  EXPECT_EQ(bound->num_bins(), global->num_bins());
  EXPECT_EQ(bound->code_at(0), global->code_at(4));
  EXPECT_EQ(bound->code_at(1), global->code_at(1));
}

// -------------------------------------------------------------------
// Histogram kernel vs exact kernel.
// -------------------------------------------------------------------

TEST(NodeHistogramTest, MatchesExactKernelClassification) {
  DataTable t = GridClsTable(800, 3, 20, 3, 42, /*missing=*/0.1);
  SplitContext ctx = ClsCtx(3);
  for (int col = 0; col < 3; ++col) {
    auto binned = BinnedColumn::Build(*t.column(col), 255);
    NodeHistogram h = NodeHistogram::Build(*binned, *t.target(), ctx,
                                           nullptr, t.num_rows());
    SplitOutcome hist = h.BestSplit(*binned, col, ctx);
    SplitOutcome exact = FindBestSplit(*t.column(col), col, *t.target(), ctx,
                                       nullptr, t.num_rows());
    ASSERT_EQ(hist.valid, exact.valid) << "col " << col;
    if (!exact.valid) continue;
    EXPECT_TRUE(hist.condition == exact.condition) << "col " << col;
    EXPECT_DOUBLE_EQ(hist.gain, exact.gain) << "col " << col;
    EXPECT_EQ(hist.n_left(), exact.n_left());
    EXPECT_EQ(hist.n_right(), exact.n_right());
    EXPECT_EQ(hist.left_stats.cls.counts, exact.left_stats.cls.counts);
    EXPECT_EQ(hist.right_stats.cls.counts, exact.right_stats.cls.counts);
  }
}

TEST(NodeHistogramTest, MatchesExactKernelRegression) {
  DataTable t = GridRegTable(800, 3, 20, 43, /*missing=*/0.1);
  SplitContext ctx = RegCtx();
  for (int col = 0; col < 3; ++col) {
    auto binned = BinnedColumn::Build(*t.column(col), 255);
    NodeHistogram h = NodeHistogram::Build(*binned, *t.target(), ctx,
                                           nullptr, t.num_rows());
    SplitOutcome hist = h.BestSplit(*binned, col, ctx);
    SplitOutcome exact = FindBestSplit(*t.column(col), col, *t.target(), ctx,
                                       nullptr, t.num_rows());
    ASSERT_EQ(hist.valid, exact.valid) << "col " << col;
    if (!exact.valid) continue;
    EXPECT_TRUE(hist.condition == exact.condition) << "col " << col;
    EXPECT_DOUBLE_EQ(hist.gain, exact.gain) << "col " << col;
    EXPECT_DOUBLE_EQ(hist.left_stats.reg.sum, exact.left_stats.reg.sum);
    EXPECT_DOUBLE_EQ(hist.right_stats.reg.sum, exact.right_stats.reg.sum);
  }
}

TEST(NodeHistogramTest, MissingRowsRouteToTheLargerChild) {
  // 2 + 4 non-missing rows and 3 missing ones: the missing rows must
  // land in the right (larger) child, exactly like the exact kernel.
  auto x = Column::Numeric("x", {1, 1, 2, 2, 2, 2, MissingNumeric(),
                                 MissingNumeric(), MissingNumeric()});
  auto y = Column::Categorical("y", {0, 0, 1, 1, 1, 1, 0, 1, 0}, 2);
  SplitContext ctx = ClsCtx(2);
  auto binned = BinnedColumn::Build(*x, 16);
  NodeHistogram h = NodeHistogram::Build(*binned, *y, ctx, nullptr, 9);
  SplitOutcome hist = h.BestSplit(*binned, 0, ctx);
  ASSERT_TRUE(hist.valid);
  EXPECT_FALSE(hist.condition.missing_to_left);
  EXPECT_EQ(hist.n_left(), 2);
  EXPECT_EQ(hist.n_right(), 7);  // 4 non-missing + 3 missing

  SplitOutcome exact = FindBestSplit(*x, 0, *y, ctx, nullptr, 9);
  ASSERT_TRUE(exact.valid);
  EXPECT_TRUE(hist.condition == exact.condition);
  EXPECT_DOUBLE_EQ(hist.gain, exact.gain);
}

TEST(NodeHistogramTest, SubtractionMatchesDirectBuild) {
  DataTable t = GridClsTable(600, 1, 12, 3, 77, /*missing=*/0.05);
  SplitContext ctx = ClsCtx(3);
  auto binned = BinnedColumn::Build(*t.column(0), 255);
  std::vector<uint32_t> left_rows, right_rows;
  for (uint32_t r = 0; r < t.num_rows(); ++r) {
    (r % 3 == 0 ? left_rows : right_rows).push_back(r);
  }
  NodeHistogram parent = NodeHistogram::Build(*binned, *t.target(), ctx,
                                              nullptr, t.num_rows());
  NodeHistogram left = NodeHistogram::Build(*binned, *t.target(), ctx,
                                            left_rows.data(),
                                            left_rows.size());
  NodeHistogram right = NodeHistogram::Build(*binned, *t.target(), ctx,
                                             right_rows.data(),
                                             right_rows.size());
  NodeHistogram derived = NodeHistogram::Subtract(parent, left);
  SplitOutcome from_direct = right.BestSplit(*binned, 0, ctx);
  SplitOutcome from_derived = derived.BestSplit(*binned, 0, ctx);
  ASSERT_EQ(from_direct.valid, from_derived.valid);
  if (from_direct.valid) {
    EXPECT_TRUE(from_direct.condition == from_derived.condition);
    EXPECT_DOUBLE_EQ(from_direct.gain, from_derived.gain);
    EXPECT_EQ(from_direct.left_stats.cls.counts,
              from_derived.left_stats.cls.counts);
  }
}

// -------------------------------------------------------------------
// Whole-tree parity.
// -------------------------------------------------------------------

TEST(HistTreeParityTest, ClassificationTreeIsByteIdentical) {
  DataTable t = GridClsTable(2000, 4, 40, 3, 9, /*missing=*/0.08);
  TreeConfig exact_cfg;
  exact_cfg.max_depth = 9;
  exact_cfg.min_leaf = 2;
  TreeConfig hist_cfg = exact_cfg;
  hist_cfg.split_method = SplitMethod::kHistogram;
  hist_cfg.max_bins = 64;  // >= 40 distinct values: exact degeneration

  TreeModel exact = TrainTreeOnTable(t, {0, 1, 2, 3}, exact_cfg);
  TreeModel hist = TrainTreeOnTable(t, {0, 1, 2, 3}, hist_cfg);
  EXPECT_GT(exact.num_nodes(), 1u);
  EXPECT_EQ(SerializeCanonical(exact), SerializeCanonical(hist));
}

TEST(HistTreeParityTest, RegressionTreeIsByteIdentical) {
  DataTable t = GridRegTable(2000, 4, 40, 10, /*missing=*/0.08);
  TreeConfig exact_cfg;
  exact_cfg.max_depth = 9;
  exact_cfg.min_leaf = 2;
  exact_cfg.impurity = Impurity::kVariance;
  TreeConfig hist_cfg = exact_cfg;
  hist_cfg.split_method = SplitMethod::kHistogram;
  hist_cfg.max_bins = 64;

  TreeModel exact = TrainTreeOnTable(t, {0, 1, 2, 3}, exact_cfg);
  TreeModel hist = TrainTreeOnTable(t, {0, 1, 2, 3}, hist_cfg);
  EXPECT_GT(exact.num_nodes(), 1u);
  EXPECT_EQ(SerializeCanonical(exact), SerializeCanonical(hist));
}

TEST(HistTreeParityTest, ManyCategoryColumnsFallBackToTheExactKernel) {
  // A categorical column with > 64 categories is never binned; both
  // methods must run the identical one-vs-rest kernel on it.
  const int kCard = 80;
  Rng rng(5);
  const size_t rows = 1500;
  std::vector<int32_t> cat(rows);
  std::vector<double> num(rows);
  std::vector<int32_t> y(rows);
  for (size_t r = 0; r < rows; ++r) {
    cat[r] = static_cast<int32_t>(rng.Uniform(kCard));
    num[r] = static_cast<double>(rng.Uniform(30));
    y[r] = (cat[r] % 3 == 0 || num[r] > 20) ? 1 : 0;
    if (rng.Bernoulli(0.05)) y[r] = 1 - y[r];
  }
  std::vector<ColumnMeta> metas = {{"c", DataType::kCategorical, kCard},
                                   {"x", DataType::kNumeric, 0},
                                   {"y", DataType::kCategorical, 2}};
  std::vector<ColumnPtr> cols = {Column::Categorical("c", cat, kCard),
                                 Column::Numeric("x", num),
                                 Column::Categorical("y", y, 2)};
  auto made = DataTable::Make(Schema(metas, 2, TaskKind::kClassification),
                              std::move(cols));
  ASSERT_TRUE(made.ok());
  DataTable t = std::move(made).value();

  TreeConfig exact_cfg;
  exact_cfg.max_depth = 8;
  TreeConfig hist_cfg = exact_cfg;
  hist_cfg.split_method = SplitMethod::kHistogram;
  hist_cfg.max_bins = 64;

  TreeModel exact = TrainTreeOnTable(t, {0, 1}, exact_cfg);
  TreeModel hist = TrainTreeOnTable(t, {0, 1}, hist_cfg);
  EXPECT_GT(exact.num_nodes(), 1u);
  EXPECT_EQ(SerializeCanonical(exact), SerializeCanonical(hist));
}

TEST(HistTreeParityTest, CoarseBinsStillGrowAUsefulTree) {
  // More distinct values than bins: no parity promise, but the tree
  // must still split and fit the planted concept reasonably.
  DatasetProfile p;
  p.rows = 4000;
  p.num_numeric = 5;
  p.num_categorical = 0;
  p.num_classes = 2;
  p.noise = 0.05;
  DataTable t = GenerateTable(p, 21);
  TreeConfig cfg;
  cfg.max_depth = 8;
  cfg.split_method = SplitMethod::kHistogram;
  cfg.max_bins = 16;
  TreeModel tree = TrainTreeOnTable(t, {0, 1, 2, 3, 4}, cfg);
  EXPECT_GT(tree.num_nodes(), 8u);
  size_t correct = 0;
  for (size_t r = 0; r < t.num_rows(); ++r) {
    if (tree.PredictLabel(t, r) == t.target()->category_at(r)) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) / t.num_rows(), 0.8);
}

TEST(HistCountersTest, KernelsReportToTheMetricsRegistry) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  Counter* builds = reg.GetCounter("split.histogram_builds");
  Counter* subs = reg.GetCounter("split.sibling_subtractions");
  Counter* sorts = reg.GetCounter("split.exact_sorts");

  DataTable t = GridClsTable(1200, 3, 25, 3, 3);
  TreeConfig cfg;
  cfg.max_depth = 7;

  uint64_t sorts0 = sorts->value();
  TrainTreeOnTable(t, {0, 1, 2}, cfg);
  EXPECT_GT(sorts->value(), sorts0);

  cfg.split_method = SplitMethod::kHistogram;
  uint64_t builds0 = builds->value();
  uint64_t subs0 = subs->value();
  TrainTreeOnTable(t, {0, 1, 2}, cfg);
  EXPECT_GT(builds->value(), builds0);
  EXPECT_GT(subs->value(), subs0);  // deep tree: siblings get derived
}

// -------------------------------------------------------------------
// Cluster-mode parity (in-process engine).
// -------------------------------------------------------------------

EngineConfig SmallEngine() {
  EngineConfig cfg;
  cfg.num_workers = 3;
  cfg.compers_per_worker = 2;
  cfg.replication = 2;
  cfg.tau_d = 600;    // force column-tasks near the root
  cfg.tau_dfs = 1500;
  return cfg;
}

TEST(HistEngineParityTest, ClassificationForestMatchesSerialHistogram) {
  DatasetProfile p;
  p.rows = 3000;
  p.num_numeric = 6;
  p.num_categorical = 2;
  p.num_classes = 3;
  p.noise = 0.08;
  DataTable t = GenerateTable(p, 11);

  ForestJobSpec spec;
  spec.num_trees = 3;
  spec.tree.max_depth = 8;
  spec.tree.split_method = SplitMethod::kHistogram;
  spec.tree.max_bins = 32;  // coarse on purpose: continuous columns

  TreeServerCluster cluster(t, SmallEngine());
  ForestModel forest = cluster.TrainForest(spec);
  ForestModel reference = TrainForestSerial(t, spec, 2);
  ASSERT_EQ(forest.num_trees(), static_cast<size_t>(spec.num_trees));
  EXPECT_EQ(SerializeForestBytes(forest), SerializeForestBytes(reference))
      << "histogram-mode engine must reproduce serial histogram training";
}

TEST(HistEngineParityTest, RegressionForestMatchesSerialWithIntegerTargets) {
  // Integer-valued targets keep every histogram sum exact, so even the
  // regression path is byte-reproducible between engine and serial.
  DataTable t = GridRegTable(2500, 5, 60, 33);
  ForestJobSpec spec;
  spec.num_trees = 2;
  spec.tree.max_depth = 8;
  spec.tree.impurity = Impurity::kVariance;
  spec.tree.split_method = SplitMethod::kHistogram;
  spec.tree.max_bins = 64;

  TreeServerCluster cluster(t, SmallEngine());
  ForestModel forest = cluster.TrainForest(spec);
  ForestModel reference = TrainForestSerial(t, spec, 2);
  ASSERT_EQ(forest.num_trees(), static_cast<size_t>(spec.num_trees));
  EXPECT_EQ(SerializeForestBytes(forest), SerializeForestBytes(reference));
}

}  // namespace
}  // namespace treeserver
