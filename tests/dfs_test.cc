#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "dfs/dfs.h"
#include "table/datasets.h"

namespace treeserver {
namespace {

class DfsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = std::filesystem::temp_directory_path() /
            ("treeserver_dfs_test_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(root_);
  }
  void TearDown() override { std::filesystem::remove_all(root_); }

  DataTable MakeTable(size_t rows = 1000, int numeric = 6, int cat = 3) {
    DatasetProfile p;
    p.rows = rows;
    p.num_numeric = numeric;
    p.num_categorical = cat;
    p.num_classes = 4;
    return GenerateTable(p, 99);
  }

  std::filesystem::path root_;
};

TEST_F(DfsTest, PutAndReadBackFullTable) {
  LocalDfs dfs(root_.string());
  DataTable t = MakeTable();
  DfsLayout layout;
  layout.columns_per_group = 4;
  layout.rows_per_group = 300;
  ASSERT_TRUE(dfs.Put(t, "ds", layout).ok());

  auto back = dfs.ReadTable("ds");
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->num_rows(), t.num_rows());
  ASSERT_EQ(back->num_columns(), t.num_columns());
  for (size_t i = 0; i < t.num_rows(); i += 97) {
    EXPECT_EQ(back->column(0)->numeric_at(i), t.column(0)->numeric_at(i));
    EXPECT_EQ(back->label_at(i), t.label_at(i));
  }
}

TEST_F(DfsTest, SchemaRoundTrip) {
  LocalDfs dfs(root_.string());
  DataTable t = MakeTable(200);
  ASSERT_TRUE(dfs.Put(t, "ds", DfsLayout{3, 64}).ok());
  auto schema = dfs.ReadSchema("ds");
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema->num_columns(), t.num_columns());
  EXPECT_EQ(schema->target_index(), t.schema().target_index());
  EXPECT_EQ(schema->task_kind(), TaskKind::kClassification);
  EXPECT_EQ(schema->column(0).name, t.schema().column(0).name);
}

TEST_F(DfsTest, ReadColumnsExactValues) {
  LocalDfs dfs(root_.string());
  DataTable t = MakeTable(500);
  ASSERT_TRUE(dfs.Put(t, "ds", DfsLayout{2, 128}).ok());

  auto cols = dfs.ReadColumns("ds", {1, 7, 0});
  ASSERT_TRUE(cols.ok()) << cols.status().ToString();
  ASSERT_EQ(cols->size(), 3u);
  for (size_t i = 0; i < t.num_rows(); i += 31) {
    EXPECT_EQ((*cols)[0]->numeric_at(i), t.column(1)->numeric_at(i));
    EXPECT_EQ((*cols)[2]->numeric_at(i), t.column(0)->numeric_at(i));
    // Column 7 is categorical (6 numeric + 3 cat + target).
    EXPECT_EQ((*cols)[1]->category_at(i), t.column(7)->category_at(i));
  }
}

TEST_F(DfsTest, ReadRowStripe) {
  LocalDfs dfs(root_.string());
  DataTable t = MakeTable(1000);
  ASSERT_TRUE(dfs.Put(t, "ds", DfsLayout{5, 128}).ok());

  auto part = dfs.ReadRows("ds", 100, 400);
  ASSERT_TRUE(part.ok()) << part.status().ToString();
  ASSERT_EQ(part->num_rows(), 300u);
  for (size_t i = 0; i < 300; i += 17) {
    EXPECT_EQ(part->column(0)->numeric_at(i),
              t.column(0)->numeric_at(100 + i));
    EXPECT_EQ(part->label_at(i), t.label_at(100 + i));
  }
  EXPECT_FALSE(dfs.ReadRows("ds", 500, 2000).ok());  // out of bounds
}

TEST_F(DfsTest, GroupingReducesFileOpens) {
  DataTable t = MakeTable(800, 20, 0);
  // Fine-grained layout: one column per file.
  LocalDfs fine(root_.string() + "_fine");
  ASSERT_TRUE(fine.Put(t, "ds", DfsLayout{1, 100000}).ok());
  fine.ResetCounters();
  ASSERT_TRUE(fine.ReadColumns("ds", {0, 1, 2, 3, 4, 5, 6, 7}).ok());
  uint64_t fine_opens = fine.file_opens();

  // Grouped layout (Fig. 13): 10 columns per file.
  LocalDfs grouped(root_.string() + "_grouped");
  ASSERT_TRUE(grouped.Put(t, "ds", DfsLayout{10, 100000}).ok());
  grouped.ResetCounters();
  ASSERT_TRUE(grouped.ReadColumns("ds", {0, 1, 2, 3, 4, 5, 6, 7}).ok());
  uint64_t grouped_opens = grouped.file_opens();

  EXPECT_LT(grouped_opens, fine_opens);
  std::filesystem::remove_all(root_.string() + "_fine");
  std::filesystem::remove_all(root_.string() + "_grouped");
}

TEST_F(DfsTest, MissingDatasetIsIOError) {
  LocalDfs dfs(root_.string());
  EXPECT_EQ(dfs.ReadSchema("nope").status().code(), StatusCode::kIOError);
  EXPECT_FALSE(dfs.ReadTable("nope").ok());
}

TEST_F(DfsTest, InvalidLayoutRejected) {
  LocalDfs dfs(root_.string());
  DataTable t = MakeTable(50);
  EXPECT_EQ(dfs.Put(t, "ds", DfsLayout{0, 100}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(dfs.Put(t, "ds", DfsLayout{5, 0}).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(DfsTest, OverwriteReplacesDataset) {
  LocalDfs dfs(root_.string());
  DataTable t1 = MakeTable(100);
  DataTable t2 = MakeTable(200);
  ASSERT_TRUE(dfs.Put(t1, "ds", DfsLayout{4, 64}).ok());
  ASSERT_TRUE(dfs.Put(t2, "ds", DfsLayout{4, 64}).ok());
  auto back = dfs.ReadTable("ds");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->num_rows(), 200u);
}

TEST_F(DfsTest, PreservesMissingValues) {
  LocalDfs dfs(root_.string());
  DatasetProfile p;
  p.rows = 300;
  p.num_numeric = 4;
  p.num_categorical = 2;
  p.num_classes = 2;
  p.missing_fraction = 0.2;
  DataTable t = GenerateTable(p, 5);
  ASSERT_TRUE(dfs.Put(t, "ds", DfsLayout{3, 100}).ok());
  auto back = dfs.ReadTable("ds");
  ASSERT_TRUE(back.ok());
  for (size_t i = 0; i < t.num_rows(); ++i) {
    EXPECT_EQ(back->column(0)->IsMissing(i), t.column(0)->IsMissing(i));
    EXPECT_EQ(back->column(4)->IsMissing(i), t.column(4)->IsMissing(i));
  }
}

}  // namespace
}  // namespace treeserver
