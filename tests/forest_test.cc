#include <gtest/gtest.h>

#include <set>

#include "forest/forest.h"
#include "table/datasets.h"

namespace treeserver {
namespace {

DataTable MakeData(int classes, size_t rows = 2000, uint64_t seed = 5) {
  DatasetProfile p;
  p.rows = rows;
  p.num_numeric = 6;
  p.num_categorical = 2;
  p.num_classes = classes;
  p.noise = 0.05;
  p.concept_depth = 6;
  return GenerateTable(p, seed);
}

TEST(ForestJobSpecTest, ColumnsPerTree) {
  ForestJobSpec spec;
  spec.column_ratio = 0.5;
  EXPECT_EQ(spec.ColumnsPerTree(10), 5);
  spec.column_ratio = 0.0;
  EXPECT_EQ(spec.ColumnsPerTree(10), 1);  // at least one column
  spec.sqrt_columns = true;
  EXPECT_EQ(spec.ColumnsPerTree(100), 10);
  EXPECT_EQ(spec.ColumnsPerTree(30), 5);
}

TEST(ForestJobSpecTest, SampleColumnsDeterministicAndValid) {
  DataTable t = MakeData(3);
  ForestJobSpec spec;
  spec.seed = 9;
  spec.column_ratio = 0.5;
  auto a = spec.SampleColumns(t.schema(), 2);
  auto b = spec.SampleColumns(t.schema(), 2);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 4u);
  for (int col : a) {
    EXPECT_NE(col, t.schema().target_index());
    EXPECT_GE(col, 0);
    EXPECT_LT(col, t.num_columns());
  }
  // Different trees generally get different sets.
  auto c = spec.SampleColumns(t.schema(), 3);
  EXPECT_TRUE(std::is_sorted(c.begin(), c.end()));
}

TEST(ForestJobSpecTest, FullRatioUsesAllFeatures) {
  DataTable t = MakeData(2, 500);
  ForestJobSpec spec;
  spec.column_ratio = 1.0;
  EXPECT_EQ(spec.SampleColumns(t.schema(), 0), t.schema().FeatureIndices());
}

TEST(ForestModelTest, SerialForestBeatsSingleTreeOnNoisyData) {
  DataTable all = MakeData(4, 4000, 21);
  Rng rng(3);
  auto [train, test] = all.TrainTestSplit(0.3, &rng);

  ForestJobSpec one;
  one.num_trees = 1;
  one.tree.max_depth = 8;
  ForestModel single = TrainForestSerial(train, one);

  ForestJobSpec many = one;
  many.num_trees = 15;
  many.column_ratio = 0.6;
  many.seed = 5;
  ForestModel forest = TrainForestSerial(train, many, /*num_threads=*/4);

  double acc1 = EvaluateAccuracy(single, test);
  double accN = EvaluateAccuracy(forest, test);
  EXPECT_GT(accN, 0.5);
  EXPECT_GE(accN, acc1 - 0.05);  // bagging should not be much worse
}

TEST(ForestModelTest, PredictPmfAveragesTrees) {
  DataTable t = MakeData(2, 600);
  ForestJobSpec spec;
  spec.num_trees = 5;
  spec.tree.max_depth = 4;
  spec.column_ratio = 0.7;
  ForestModel forest = TrainForestSerial(t, spec);
  auto pmf = forest.PredictPmf(t, 0);
  ASSERT_EQ(pmf.size(), 2u);
  EXPECT_NEAR(pmf[0] + pmf[1], 1.0f, 1e-5f);
}

TEST(ForestModelTest, RegressionForest) {
  DatasetProfile p;
  p.rows = 4000;
  p.num_numeric = 5;
  p.num_categorical = 2;
  p.num_classes = 0;  // regression
  p.noise = 0.02;
  p.concept_depth = 4;  // learnable with this many rows
  DataTable all = GenerateTable(p, 77);
  Rng rng(4);
  auto [train, test] = all.TrainTestSplit(0.25, &rng);

  ForestJobSpec spec;
  spec.num_trees = 10;
  spec.tree.max_depth = 10;
  spec.tree.impurity = Impurity::kVariance;
  spec.column_ratio = 0.8;
  ForestModel forest = TrainForestSerial(train, spec, 4);
  double rmse = EvaluateRmse(forest, test);

  // Baseline: predicting the global mean.
  RegStats stats;
  for (size_t i = 0; i < train.num_rows(); ++i) {
    stats.Add(train.target_value_at(i));
  }
  double baseline = 0.0;
  for (size_t i = 0; i < test.num_rows(); ++i) {
    double d = stats.Mean() - test.target_value_at(i);
    baseline += d * d;
  }
  baseline = std::sqrt(baseline / test.num_rows());
  EXPECT_LT(rmse, baseline * 0.8);
  EXPECT_EQ(EvaluateMetric(forest, test), rmse);
}

TEST(ForestModelTest, SerializationRoundTrip) {
  DataTable t = MakeData(3, 800);
  ForestJobSpec spec;
  spec.num_trees = 4;
  spec.tree.max_depth = 5;
  ForestModel forest = TrainForestSerial(t, spec);

  BinaryWriter w;
  forest.Serialize(&w);
  BinaryReader r(w.buffer());
  ForestModel back;
  ASSERT_TRUE(ForestModel::Deserialize(&r, &back).ok());
  EXPECT_EQ(back.num_trees(), 4u);
  EXPECT_EQ(back.kind(), TaskKind::kClassification);
  for (size_t i = 0; i < 50; ++i) {
    EXPECT_EQ(forest.PredictLabel(t, i), back.PredictLabel(t, i));
  }
}

TEST(ForestModelTest, ExtraTreesForestTrains) {
  DataTable t = MakeData(3, 1500);
  ForestJobSpec spec;
  spec.num_trees = 10;
  spec.tree.max_depth = 10;
  spec.tree.extra_trees = true;
  ForestModel forest = TrainForestSerial(t, spec, 2);
  double acc = EvaluateAccuracy(forest, t);
  EXPECT_GT(acc, 0.4);  // completely-random trees still learn something
}

TEST(ForestModelTest, MultithreadedMatchesSingleThreaded) {
  DataTable t = MakeData(2, 1000);
  ForestJobSpec spec;
  spec.num_trees = 6;
  spec.tree.max_depth = 6;
  spec.column_ratio = 0.5;
  spec.seed = 13;
  ForestModel a = TrainForestSerial(t, spec, 1);
  ForestModel b = TrainForestSerial(t, spec, 4);
  ASSERT_EQ(a.num_trees(), b.num_trees());
  for (size_t i = 0; i < a.num_trees(); ++i) {
    EXPECT_TRUE(a.tree(i).StructurallyEqual(b.tree(i)));
  }
}

}  // namespace
}  // namespace treeserver
