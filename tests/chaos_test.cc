#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics_registry.h"
#include "engine/checkpoint_io.h"
#include "engine/master.h"
#include "engine/messages.h"
#include "engine/reliable.h"
#include "engine/worker.h"
#include "forest/forest.h"
#include "net/network.h"
#include "rpc/fault_injection.h"
#include "table/datasets.h"

namespace treeserver {
namespace {

using std::chrono::milliseconds;
using std::chrono::steady_clock;

Message Msg(int src, int dst, uint32_t type, std::string payload) {
  Message m;
  m.src = src;
  m.dst = dst;
  m.type = type;
  m.payload = std::move(payload);
  return m;
}

std::optional<Message> PopWithin(BlockingQueue<Message>& q, int timeout_ms) {
  const auto deadline = steady_clock::now() + milliseconds(timeout_ms);
  while (steady_clock::now() < deadline) {
    auto m = q.TryPop();
    if (m.has_value()) return m;
    std::this_thread::sleep_for(milliseconds(1));
  }
  return std::nullopt;
}

uint64_t CounterValue(const char* name) {
  return MetricsRegistry::Global().GetCounter(name)->value();
}

// ---------------------------------------------------------------------------
// FaultInjectingTransport
// ---------------------------------------------------------------------------

TEST(FaultInjectTest, EmptySchedulePassesThroughInOrder) {
  Network net(2, 0.0);
  FaultSchedule sched;  // empty
  ASSERT_TRUE(sched.Empty());
  FaultInjectingTransport chaos(&net, sched);
  const uint64_t drops_before = CounterValue("chaos.drops");
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(chaos.Send(ChannelKind::kTask,
                           Msg(kMasterRank, 0, 1, std::to_string(i))));
  }
  for (int i = 0; i < 100; ++i) {
    auto m = PopWithin(net.task_queue(0), 1000);
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(m->payload, std::to_string(i));
  }
  EXPECT_EQ(CounterValue("chaos.drops"), drops_before);
}

TEST(FaultInjectTest, CertainDropNeverDelivers) {
  Network net(2, 0.0);
  FaultSchedule sched;
  sched.channels[static_cast<int>(ChannelKind::kTask)].drop = 1.0;
  FaultInjectingTransport chaos(&net, sched);
  const uint64_t before = CounterValue("chaos.drops");
  // Drops still report success: recovery belongs to the reliable layer.
  EXPECT_TRUE(chaos.Send(ChannelKind::kTask, Msg(kMasterRank, 0, 1, "x")));
  EXPECT_TRUE(chaos.Send(ChannelKind::kTask, Msg(kMasterRank, 0, 1, "y")));
  EXPECT_EQ(CounterValue("chaos.drops"), before + 2);
  EXPECT_FALSE(PopWithin(net.task_queue(0), 50).has_value());
  // The data channel is untouched by this schedule.
  EXPECT_TRUE(chaos.Send(ChannelKind::kData, Msg(kMasterRank, 0, 21, "d")));
  EXPECT_TRUE(PopWithin(net.data_queue(0), 1000).has_value());
}

TEST(FaultInjectTest, CertainDuplicateDeliversTwice) {
  Network net(2, 0.0);
  FaultSchedule sched;
  sched.channels[static_cast<int>(ChannelKind::kTask)].duplicate = 1.0;
  FaultInjectingTransport chaos(&net, sched);
  const uint64_t before = CounterValue("chaos.dups");
  ASSERT_TRUE(chaos.Send(ChannelKind::kTask, Msg(kMasterRank, 0, 1, "twin")));
  auto first = PopWithin(net.task_queue(0), 1000);
  auto second = PopWithin(net.task_queue(0), 1000);
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(first->payload, "twin");
  EXPECT_EQ(second->payload, "twin");
  EXPECT_EQ(CounterValue("chaos.dups"), before + 1);
}

TEST(FaultInjectTest, SelfSendsAreNeverTouched) {
  Network net(2, 0.0);
  FaultSchedule sched;
  sched.channels[static_cast<int>(ChannelKind::kTask)].drop = 1.0;
  FaultInjectingTransport chaos(&net, sched);
  // The master's own crash notice (src == dst) must survive a 100%
  // drop rate: it never crosses the reliable layer.
  ASSERT_TRUE(chaos.Send(ChannelKind::kTask,
                         Msg(kMasterRank, kMasterRank, 30, "crash notice")));
  auto m = PopWithin(net.master_queue(), 1000);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->payload, "crash notice");
}

TEST(FaultInjectTest, CertainCorruptionFlipsExactlyOneBit) {
  Network net(2, 0.0);
  FaultSchedule sched;
  sched.channels[static_cast<int>(ChannelKind::kTask)].corrupt = 1.0;
  FaultInjectingTransport chaos(&net, sched);
  const std::string payload = "0123456789abcdef";
  ASSERT_TRUE(chaos.Send(ChannelKind::kTask, Msg(kMasterRank, 0, 1, payload)));
  auto m = PopWithin(net.task_queue(0), 1000);
  ASSERT_TRUE(m.has_value());
  ASSERT_EQ(m->payload.size(), payload.size());
  int flipped_bits = 0;
  for (size_t i = 0; i < payload.size(); ++i) {
    uint8_t diff = static_cast<uint8_t>(m->payload[i]) ^
                   static_cast<uint8_t>(payload[i]);
    while (diff != 0) {
      flipped_bits += diff & 1;
      diff >>= 1;
    }
  }
  EXPECT_EQ(flipped_bits, 1);
}

TEST(FaultInjectTest, PartitionWindowDropsBothDirections) {
  Network net(2, 0.0);
  FaultSchedule sched;
  sched.partitions.push_back({0, kMasterRank, 0, 60000});
  FaultInjectingTransport chaos(&net, sched);
  const uint64_t before = CounterValue("chaos.partitions");
  EXPECT_TRUE(chaos.Send(ChannelKind::kTask, Msg(kMasterRank, 0, 1, "m2w")));
  EXPECT_TRUE(chaos.Send(ChannelKind::kTask, Msg(0, kMasterRank, 10, "w2m")));
  EXPECT_EQ(CounterValue("chaos.partitions"), before + 2);
  EXPECT_FALSE(PopWithin(net.task_queue(0), 50).has_value());
  EXPECT_FALSE(PopWithin(net.master_queue(), 50).has_value());
  // Unpartitioned pairs are unaffected.
  EXPECT_TRUE(chaos.Send(ChannelKind::kTask, Msg(kMasterRank, 1, 1, "ok")));
  EXPECT_TRUE(PopWithin(net.task_queue(1), 1000).has_value());
}

TEST(FaultInjectTest, SameSeedMakesIdenticalDecisions) {
  FaultSchedule sched;
  sched.seed = 20260808;
  sched.channels[static_cast<int>(ChannelKind::kTask)].drop = 0.5;
  auto run = [&sched] {
    Network net(2, 0.0);
    FaultInjectingTransport chaos(&net, sched);
    std::vector<std::string> delivered;
    for (int i = 0; i < 200; ++i) {
      chaos.Send(ChannelKind::kTask, Msg(kMasterRank, 0, 1, std::to_string(i)));
    }
    while (auto m = net.task_queue(0).TryPop()) {
      delivered.push_back(m->payload);
    }
    return delivered;
  };
  std::vector<std::string> first = run();
  std::vector<std::string> second = run();
  EXPECT_FALSE(first.empty());
  EXPECT_LT(first.size(), 200u);  // some dropped
  EXPECT_EQ(first, second) << "fault decisions must replay from the seed";
}

TEST(FaultInjectTest, StopFlushesHeldMessages) {
  Network net(2, 0.0);
  FaultSchedule sched;
  sched.stalls.push_back({0, 0, 60000});  // worker 0 frozen for a minute
  FaultInjectingTransport chaos(&net, sched);
  ASSERT_TRUE(chaos.Send(ChannelKind::kTask, Msg(0, kMasterRank, 10, "held")));
  EXPECT_FALSE(PopWithin(net.master_queue(), 50).has_value());
  chaos.Stop();  // flushes instead of dropping
  auto m = PopWithin(net.master_queue(), 1000);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->payload, "held");
}

// ---------------------------------------------------------------------------
// ReliableLink
// ---------------------------------------------------------------------------

constexpr uint32_t kReliableType =
    static_cast<uint32_t>(MsgType::kColumnTaskPlan);
constexpr uint32_t kAckType = static_cast<uint32_t>(MsgType::kAck);

ReliableOptions FastRetry() {
  ReliableOptions o;
  o.ack_timeout_ms = 20;
  o.ack_backoff_max_ms = 100;
  o.max_retransmits = 50;
  return o;
}

TEST(ReliableLinkTest, AckClearsPending) {
  Network net(1, 0.0);
  ReliableLink master_link(&net, kMasterRank, FastRetry());
  ReliableLink worker_link(&net, 0, FastRetry());
  master_link.Start();
  worker_link.Start();

  ASSERT_TRUE(master_link.Send(ChannelKind::kTask,
                               Msg(kMasterRank, 0, kReliableType, "plan")));
  EXPECT_EQ(master_link.PendingCount(), 1u);

  auto wire = PopWithin(net.task_queue(0), 1000);
  ASSERT_TRUE(wire.has_value());
  EXPECT_EQ(wire->payload.size(), 4u + ReliableLink::kPrefixBytes);
  ASSERT_TRUE(worker_link.OnReceive(&*wire, ChannelKind::kTask));
  EXPECT_EQ(wire->payload, "plan") << "prefix must be stripped on delivery";

  // The ack travels back on the same channel; consuming it clears the
  // pending entry.
  auto ack = PopWithin(net.master_queue(), 1000);
  ASSERT_TRUE(ack.has_value());
  EXPECT_EQ(ack->type, kAckType);
  EXPECT_FALSE(master_link.OnReceive(&*ack, ChannelKind::kTask));
  EXPECT_EQ(master_link.PendingCount(), 0u);

  worker_link.Stop();
  master_link.Stop();
}

TEST(ReliableLinkTest, DuplicateIsSuppressedAndReAcked) {
  Network net(1, 0.0);
  ReliableLink master_link(&net, kMasterRank, FastRetry());
  ReliableLink worker_link(&net, 0, FastRetry());

  ASSERT_TRUE(master_link.Send(ChannelKind::kTask,
                               Msg(kMasterRank, 0, kReliableType, "plan")));
  auto wire = PopWithin(net.task_queue(0), 1000);
  ASSERT_TRUE(wire.has_value());
  Message replay = *wire;  // the network replays the same frame

  const uint64_t dups_before = CounterValue("engine.duplicate_msgs");
  EXPECT_TRUE(worker_link.OnReceive(&*wire, ChannelKind::kTask));
  EXPECT_FALSE(worker_link.OnReceive(&replay, ChannelKind::kTask));
  EXPECT_EQ(CounterValue("engine.duplicate_msgs"), dups_before + 1);

  // Both the delivery and the duplicate produce an ack (the original
  // ack may have been the one that was lost).
  ASSERT_TRUE(PopWithin(net.master_queue(), 1000).has_value());
  ASSERT_TRUE(PopWithin(net.master_queue(), 1000).has_value());
}

TEST(ReliableLinkTest, CorruptPayloadDroppedWithoutAck) {
  Network net(1, 0.0);
  ReliableLink master_link(&net, kMasterRank, FastRetry());
  ReliableLink worker_link(&net, 0, FastRetry());

  ASSERT_TRUE(master_link.Send(ChannelKind::kTask,
                               Msg(kMasterRank, 0, kReliableType, "plan")));
  auto wire = PopWithin(net.task_queue(0), 1000);
  ASSERT_TRUE(wire.has_value());
  wire->payload[ReliableLink::kPrefixBytes] ^= 0x01;  // flip a payload bit

  const uint64_t corrupt_before = CounterValue("engine.corrupt_msgs");
  EXPECT_FALSE(worker_link.OnReceive(&*wire, ChannelKind::kTask));
  EXPECT_EQ(CounterValue("engine.corrupt_msgs"), corrupt_before + 1);
  // No ack: the sender's retransmit is what recovers the message.
  EXPECT_FALSE(PopWithin(net.master_queue(), 50).has_value());
}

TEST(ReliableLinkTest, StaleGenerationIsFenced) {
  Network net(1, 0.0);
  ReliableOptions new_epoch = FastRetry();
  new_epoch.generation = 3;
  ReliableLink new_master(&net, kMasterRank, new_epoch);
  ReliableLink old_master(&net, kMasterRank, FastRetry());  // generation 0
  ReliableLink worker_link(&net, 0, FastRetry());

  // The post-failover master speaks first: the worker learns epoch 3.
  ASSERT_TRUE(new_master.Send(ChannelKind::kTask,
                              Msg(kMasterRank, 0, kReliableType, "fresh")));
  auto fresh = PopWithin(net.task_queue(0), 1000);
  ASSERT_TRUE(fresh.has_value());
  EXPECT_TRUE(worker_link.OnReceive(&*fresh, ChannelKind::kTask));

  // A zombie frame from the pre-failover master must be fenced.
  ASSERT_TRUE(old_master.Send(ChannelKind::kTask,
                              Msg(kMasterRank, 0, kReliableType, "stale")));
  auto stale = PopWithin(net.task_queue(0), 1000);
  ASSERT_TRUE(stale.has_value());
  const uint64_t fenced_before = CounterValue("engine.fenced_msgs");
  EXPECT_FALSE(worker_link.OnReceive(&*stale, ChannelKind::kTask));
  EXPECT_EQ(CounterValue("engine.fenced_msgs"), fenced_before + 1);
}

TEST(ReliableLinkTest, RetransmitBridgesDropsEndToEnd) {
  // A 60%-lossy link between two pumped links: at-least-once delivery
  // plus dedup must get exactly one copy of every message through.
  Network net(1, 0.0);
  FaultSchedule sched;
  sched.seed = 99;
  sched.channels[static_cast<int>(ChannelKind::kTask)].drop = 0.6;
  FaultInjectingTransport chaos(&net, sched);

  ReliableLink master_link(&chaos, kMasterRank, FastRetry());
  ReliableLink worker_link(&chaos, 0, FastRetry());
  master_link.Start();
  worker_link.Start();

  constexpr int kMessages = 20;
  for (int i = 0; i < kMessages; ++i) {
    ASSERT_TRUE(master_link.Send(
        ChannelKind::kTask,
        Msg(kMasterRank, 0, kReliableType, "msg-" + std::to_string(i))));
  }

  std::vector<std::string> delivered;
  const auto deadline = steady_clock::now() + std::chrono::seconds(30);
  while ((delivered.size() < kMessages || master_link.PendingCount() > 0) &&
         steady_clock::now() < deadline) {
    if (auto m = net.task_queue(0).TryPop()) {
      if (worker_link.OnReceive(&*m, ChannelKind::kTask)) {
        delivered.push_back(m->payload);
      }
      continue;
    }
    if (auto m = net.master_queue().TryPop()) {
      master_link.OnReceive(&*m, ChannelKind::kTask);
      continue;
    }
    std::this_thread::sleep_for(milliseconds(1));
  }
  ASSERT_EQ(delivered.size(), static_cast<size_t>(kMessages));
  std::sort(delivered.begin(), delivered.end());
  EXPECT_EQ(std::unique(delivered.begin(), delivered.end()), delivered.end())
      << "dedup must suppress every replayed copy";
  EXPECT_EQ(master_link.PendingCount(), 0u);
  EXPECT_GT(CounterValue("engine.retransmits"), 0u);

  worker_link.Stop();
  master_link.Stop();
  chaos.Stop();
}

TEST(ReliableLinkTest, GivesUpOnCrashedPeer) {
  Network net(1, 0.0);
  ReliableOptions opts = FastRetry();
  ReliableLink master_link(&net, kMasterRank, opts);
  master_link.Start();
  ASSERT_TRUE(master_link.Send(ChannelKind::kTask,
                               Msg(kMasterRank, 0, kReliableType, "doomed")));
  EXPECT_EQ(master_link.PendingCount(), 1u);
  master_link.DropPeer(0);  // the engine declared worker 0 crashed
  EXPECT_EQ(master_link.PendingCount(), 0u);
  master_link.Stop();
}

// ---------------------------------------------------------------------------
// In-process engine under chaos: byte-identical forest
// ---------------------------------------------------------------------------

DataTable ChaosData(uint64_t seed) {
  DatasetProfile p;
  p.rows = 2500;
  p.num_numeric = 6;
  p.num_categorical = 2;
  p.num_classes = 3;
  p.noise = 0.08;
  return GenerateTable(p, seed);
}

std::string Bytes(const ForestModel& forest) {
  BinaryWriter w;
  forest.Serialize(&w);
  return w.buffer();
}

/// Master + workers assembled over one shared in-process transport with
/// a fault injector between the engine and the wire — the in-process
/// twin of `treeserver_node --chaos-profile`.
ForestModel TrainUnderChaos(const EngineConfig& cfg, const ForestJobSpec& spec,
                            const std::string& profile, uint64_t seed) {
  auto table = std::make_shared<const DataTable>(ChaosData(417));
  Network net(cfg.num_workers, cfg.bandwidth_mbps);
  FaultSchedule sched;
  TS_CHECK(FaultSchedule::Profile(profile, seed, &sched));
  FaultInjectingTransport chaos(&net, sched);

  auto master = std::make_unique<Master>(table, &chaos, cfg);
  std::vector<std::unique_ptr<PeakGauge>> gauges;
  std::vector<std::unique_ptr<BusyClock>> clocks;
  std::vector<std::unique_ptr<Worker>> workers;
  for (int i = 0; i < cfg.num_workers; ++i) {
    gauges.push_back(std::make_unique<PeakGauge>());
    clocks.push_back(std::make_unique<BusyClock>());
    workers.push_back(std::make_unique<Worker>(
        i, table, &chaos, cfg.compers_per_worker, gauges.back().get(),
        clocks.back().get(), cfg.compress_transfers, 0,
        cfg.ReliableConfig()));
  }
  master->Start();
  for (auto& w : workers) w->Start();

  ForestModel model = master->Wait(master->Submit(spec));

  master->Stop();
  net.CloseAll();
  for (auto& w : workers) w->Join();
  chaos.Stop();
  return model;
}

TEST(ChaosEngineTest, MixedProfileTrainsByteIdenticalForest) {
  EngineConfig cfg;
  cfg.num_workers = 4;
  cfg.compers_per_worker = 2;
  cfg.tau_d = 400;  // force the distributed column-task path
  cfg.tau_dfs = 1200;
  cfg.ack_timeout_ms = 25;
  cfg.ack_backoff_max_ms = 200;
  cfg.max_retransmits = 200;

  ForestJobSpec spec;
  spec.num_trees = 4;
  spec.tree.max_depth = 8;
  spec.tree.min_leaf = 2;
  spec.column_ratio = 0.8;
  spec.seed = 99;

  ForestModel chaotic = TrainUnderChaos(cfg, spec, "mixed", 20260808);
  ASSERT_EQ(chaotic.num_trees(), spec.num_trees);

  ForestModel reference = TrainForestSerial(ChaosData(417), spec, 2);
  EXPECT_EQ(Bytes(chaotic), Bytes(reference))
      << "a chaos run must converge to the fault-free forest bytes";
}

TEST(ChaosEngineTest, DropHeavyProfileTrainsByteIdenticalForest) {
  EngineConfig cfg;
  cfg.num_workers = 2;
  cfg.compers_per_worker = 2;
  cfg.tau_d = 400;
  cfg.tau_dfs = 1200;
  cfg.ack_timeout_ms = 25;
  cfg.ack_backoff_max_ms = 200;
  cfg.max_retransmits = 200;

  ForestJobSpec spec;
  spec.num_trees = 4;
  spec.tree.max_depth = 8;
  spec.tree.min_leaf = 2;
  spec.column_ratio = 0.8;
  spec.seed = 99;

  ForestModel chaotic = TrainUnderChaos(cfg, spec, "drop-heavy", 7);
  ASSERT_EQ(chaotic.num_trees(), spec.num_trees);
  ForestModel reference = TrainForestSerial(ChaosData(417), spec, 2);
  EXPECT_EQ(Bytes(chaotic), Bytes(reference));
}

// ---------------------------------------------------------------------------
// Durable checkpoints: CRC-trailered, atomic-rename, fuzz rejection
// ---------------------------------------------------------------------------

std::string TempPath(const char* name) {
  return testing::TempDir() + "/" + name;
}

TEST(ChaosCheckpointTest, RoundTripsArbitraryBytes) {
  const std::string path = TempPath("ckpt_roundtrip.bin");
  std::string snapshot = "master state \x00\x01\xFF with binary bytes";
  snapshot.push_back('\0');
  ASSERT_TRUE(SaveCheckpoint(path, snapshot).ok());
  std::string restored;
  ASSERT_TRUE(LoadCheckpoint(path, &restored).ok());
  EXPECT_EQ(restored, snapshot);
  std::remove(path.c_str());
}

TEST(ChaosCheckpointTest, EveryTruncationIsRejected) {
  const std::string path = TempPath("ckpt_trunc_src.bin");
  const std::string mangled = TempPath("ckpt_trunc.bin");
  ASSERT_TRUE(SaveCheckpoint(path, "state to be truncated").ok());
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  ASSERT_FALSE(bytes.empty());
  for (size_t len = 0; len < bytes.size(); ++len) {
    std::ofstream out(mangled, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(len));
    out.close();
    std::string restored;
    EXPECT_FALSE(LoadCheckpoint(mangled, &restored).ok())
        << "truncation to " << len << " bytes restored silently";
  }
  std::remove(path.c_str());
  std::remove(mangled.c_str());
}

TEST(ChaosCheckpointTest, EveryBitFlipIsRejected) {
  const std::string path = TempPath("ckpt_flip_src.bin");
  const std::string mangled = TempPath("ckpt_flip.bin");
  ASSERT_TRUE(SaveCheckpoint(path, "bit flip fuzz target").ok());
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  ASSERT_FALSE(bytes.empty());
  for (size_t byte = 0; byte < bytes.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string corrupt = bytes;
      corrupt[byte] = static_cast<char>(corrupt[byte] ^ (1 << bit));
      std::ofstream out(mangled, std::ios::binary | std::ios::trunc);
      out.write(corrupt.data(), static_cast<std::streamsize>(corrupt.size()));
      out.close();
      std::string restored;
      EXPECT_FALSE(LoadCheckpoint(mangled, &restored).ok())
          << "bit " << bit << " of byte " << byte << " restored silently";
    }
  }
  std::remove(path.c_str());
  std::remove(mangled.c_str());
}

TEST(ChaosCheckpointTest, TrailingGarbageIsRejected) {
  const std::string path = TempPath("ckpt_trailing.bin");
  ASSERT_TRUE(SaveCheckpoint(path, "clean state").ok());
  std::ofstream out(path, std::ios::binary | std::ios::app);
  out << "garbage";
  out.close();
  std::string restored;
  EXPECT_FALSE(LoadCheckpoint(path, &restored).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace treeserver
