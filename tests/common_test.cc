#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/rng.h"
#include "common/serial.h"
#include "common/status.h"

namespace treeserver {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::IOError("disk gone");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIOError);
  EXPECT_EQ(s.message(), "disk gone");
  EXPECT_EQ(s.ToString(), "IOError: disk gone");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInvalidArgument),
               "InvalidArgument");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeName(StatusCode::kCorruption), "Corruption");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnavailable), "Unavailable");
}

Result<int> ParsePositive(int v) {
  if (v <= 0) return Status::InvalidArgument("not positive");
  return v;
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = ParsePositive(7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 7);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = ParsePositive(-1);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

Status UseAssignOrReturn(int in, int* out) {
  TS_ASSIGN_OR_RETURN(int v, ParsePositive(in));
  *out = v * 2;
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseAssignOrReturn(21, &out).ok());
  EXPECT_EQ(out, 42);
  EXPECT_FALSE(UseAssignOrReturn(-3, &out).ok());
}

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, UniformDoubleInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(11);
  std::vector<int> hits(5, 0);
  for (int i = 0; i < 5000; ++i) {
    int64_t v = rng.UniformInt(0, 4);
    ASSERT_GE(v, 0);
    ASSERT_LE(v, 4);
    ++hits[v];
  }
  for (int h : hits) EXPECT_GT(h, 500);  // roughly uniform
}

TEST(RngTest, SampleWithoutReplacementIsDistinct) {
  Rng rng(3);
  std::vector<int> s = rng.SampleWithoutReplacement(100, 20);
  EXPECT_EQ(s.size(), 20u);
  std::sort(s.begin(), s.end());
  EXPECT_TRUE(std::adjacent_find(s.begin(), s.end()) == s.end());
  for (int v : s) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 100);
  }
}

TEST(RngTest, SampleMoreThanAvailableClamps) {
  Rng rng(5);
  std::vector<int> s = rng.SampleWithoutReplacement(5, 50);
  EXPECT_EQ(s.size(), 5u);
}

TEST(RngTest, NormalHasRoughlyZeroMean) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Normal();
  EXPECT_NEAR(sum / n, 0.0, 0.05);
}

TEST(SerialTest, RoundTripsScalarsAndVectors) {
  BinaryWriter w;
  w.Write<int32_t>(-42);
  w.Write<double>(3.25);
  w.WriteString("hello");
  w.WriteVector<uint32_t>({1, 2, 3});
  w.WriteVector<double>({});

  BinaryReader r(w.buffer());
  int32_t i;
  ASSERT_TRUE(r.Read(&i).ok());
  EXPECT_EQ(i, -42);
  double d;
  ASSERT_TRUE(r.Read(&d).ok());
  EXPECT_EQ(d, 3.25);
  std::string s;
  ASSERT_TRUE(r.ReadString(&s).ok());
  EXPECT_EQ(s, "hello");
  std::vector<uint32_t> v;
  ASSERT_TRUE(r.ReadVector(&v).ok());
  EXPECT_EQ(v, (std::vector<uint32_t>{1, 2, 3}));
  std::vector<double> e;
  ASSERT_TRUE(r.ReadVector(&e).ok());
  EXPECT_TRUE(e.empty());
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerialTest, ReadPastEndIsCorruption) {
  BinaryWriter w;
  w.Write<int32_t>(1);
  BinaryReader r(w.buffer());
  int64_t big;
  EXPECT_EQ(r.Read(&big).code(), StatusCode::kCorruption);
}

TEST(SerialTest, TruncatedVectorIsCorruption) {
  BinaryWriter w;
  w.Write<uint64_t>(1000);  // claims 1000 elements, provides none
  BinaryReader r(w.buffer());
  std::vector<double> v;
  EXPECT_EQ(r.ReadVector(&v).code(), StatusCode::kCorruption);
}

TEST(MetricsTest, CounterAccumulates) {
  Counter c;
  c.Add(5);
  c.Inc();
  EXPECT_EQ(c.value(), 6u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(MetricsTest, PeakGaugeTracksHighWater) {
  PeakGauge g;
  g.Add(10);
  g.Add(20);
  g.Sub(25);
  EXPECT_EQ(g.value(), 5);
  EXPECT_EQ(g.peak(), 30);
}

}  // namespace
}  // namespace treeserver
