#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "table/datasets.h"
#include "tree/model.h"
#include "tree/trainer.h"

namespace treeserver {
namespace {

// A tiny fully learnable classification table: y = (a <= 4) XOR-free.
DataTable TinyTable() {
  std::vector<double> a = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<double> b = {0.1, 0.9, 0.2, 0.8, 0.3, 0.7, 0.4, 0.6};
  std::vector<int32_t> y = {0, 0, 0, 0, 1, 1, 1, 1};
  std::vector<ColumnMeta> metas = {{"a", DataType::kNumeric, 0},
                                   {"b", DataType::kNumeric, 0},
                                   {"y", DataType::kCategorical, 2}};
  std::vector<ColumnPtr> cols = {Column::Numeric("a", a),
                                 Column::Numeric("b", b),
                                 Column::Categorical("y", y, 2)};
  auto t = DataTable::Make(Schema(metas, 2, TaskKind::kClassification),
                           std::move(cols));
  EXPECT_TRUE(t.ok());
  return std::move(t).value();
}

TEST(TrainerTest, LearnsSeparableData) {
  DataTable t = TinyTable();
  TreeConfig cfg;
  cfg.max_depth = 4;
  TreeModel model = TrainTreeOnTable(t, {0, 1}, cfg);
  // Root splits on column 0 at threshold 4.
  EXPECT_FALSE(model.node(0).is_leaf());
  EXPECT_EQ(model.node(0).condition.column, 0);
  EXPECT_DOUBLE_EQ(model.node(0).condition.threshold, 4.0);
  // Perfect training accuracy.
  for (size_t i = 0; i < t.num_rows(); ++i) {
    EXPECT_EQ(model.PredictLabel(t, i), t.label_at(i));
  }
}

TEST(TrainerTest, MaxDepthZeroIsSingleLeaf) {
  DataTable t = TinyTable();
  TreeConfig cfg;
  cfg.max_depth = 0;
  TreeModel model = TrainTreeOnTable(t, {0, 1}, cfg);
  EXPECT_EQ(model.num_nodes(), 1u);
  EXPECT_TRUE(model.node(0).is_leaf());
  EXPECT_EQ(model.node(0).n_rows, 8u);
  // PMF is uniform over the two balanced classes.
  EXPECT_FLOAT_EQ(model.node(0).pmf[0], 0.5f);
}

TEST(TrainerTest, MinLeafStopsSplitting) {
  DataTable t = TinyTable();
  TreeConfig cfg;
  cfg.max_depth = 20;
  cfg.min_leaf = 8;  // node of 8 rows may not split
  TreeModel model = TrainTreeOnTable(t, {0, 1}, cfg);
  EXPECT_EQ(model.num_nodes(), 1u);
}

TEST(TrainerTest, InternalNodesCarryPredictions) {
  DataTable t = TinyTable();
  TreeConfig cfg;
  cfg.max_depth = 6;
  TreeModel model = TrainTreeOnTable(t, {0, 1}, cfg);
  for (size_t i = 0; i < model.num_nodes(); ++i) {
    const auto& n = model.node(static_cast<int32_t>(i));
    ASSERT_EQ(n.pmf.size(), 2u);
    float sum = n.pmf[0] + n.pmf[1];
    EXPECT_NEAR(sum, 1.0f, 1e-6f);
    EXPECT_GT(n.n_rows, 0u);
  }
}

TEST(TrainerTest, DepthCutoffPredictionUsesInternalNode) {
  DataTable t = TinyTable();
  TreeConfig cfg;
  cfg.max_depth = 6;
  TreeModel model = TrainTreeOnTable(t, {0, 1}, cfg);
  // With max_depth 0 at prediction time, every row gets the root
  // majority — i.e. training a deep tree and predicting shallow works
  // (Appendix D).
  const TreeModel::Node& root = model.node(0);
  for (size_t i = 0; i < t.num_rows(); ++i) {
    EXPECT_EQ(model.PredictLabel(t, i, 0), root.label);
  }
}

TEST(TrainerTest, RegressionTreeFitsMeans) {
  std::vector<double> x = {1, 2, 3, 10, 11, 12};
  std::vector<double> y = {5, 5, 5, 40, 40, 40};
  std::vector<ColumnMeta> metas = {{"x", DataType::kNumeric, 0},
                                   {"y", DataType::kNumeric, 0}};
  std::vector<ColumnPtr> cols = {Column::Numeric("x", x),
                                 Column::Numeric("y", y)};
  auto t = DataTable::Make(Schema(metas, 1, TaskKind::kRegression),
                           std::move(cols));
  ASSERT_TRUE(t.ok());
  TreeConfig cfg;
  cfg.impurity = Impurity::kVariance;
  TreeModel model = TrainTreeOnTable(*t, {0}, cfg);
  EXPECT_DOUBLE_EQ(model.PredictValue(*t, 0), 5.0);
  EXPECT_DOUBLE_EQ(model.PredictValue(*t, 5), 40.0);
}

TEST(TrainerTest, BaseDepthLimitsGlobalDepth) {
  DataTable t = TinyTable();
  TreeConfig cfg;
  cfg.max_depth = 3;
  cfg.base_depth = 3;  // subtree rooted at depth 3: no more splits
  TreeModel model = TrainTreeOnTable(t, {0, 1}, cfg);
  EXPECT_EQ(model.num_nodes(), 1u);
}

TEST(TrainerTest, HandlesMissingValues) {
  std::vector<double> x = {1, 2, 3, MissingNumeric(), 10, 11, 12,
                           MissingNumeric()};
  std::vector<int32_t> y = {0, 0, 0, 0, 1, 1, 1, 1};
  std::vector<ColumnMeta> metas = {{"x", DataType::kNumeric, 0},
                                   {"y", DataType::kCategorical, 2}};
  std::vector<ColumnPtr> cols = {Column::Numeric("x", x),
                                 Column::Categorical("y", y, 2)};
  auto t = DataTable::Make(Schema(metas, 1, TaskKind::kClassification),
                           std::move(cols));
  ASSERT_TRUE(t.ok());
  TreeConfig cfg;
  TreeModel model = TrainTreeOnTable(*t, {0}, cfg);
  // Non-missing rows all classified correctly.
  for (size_t i : {0u, 1u, 2u, 4u, 5u, 6u}) {
    EXPECT_EQ(model.PredictLabel(*t, i), t->label_at(i));
  }
  // Missing-value rows stop early and get a sane PMF.
  const TreeModel::Node& stop = model.Traverse(*t, 3);
  EXPECT_EQ(stop.pmf.size(), 2u);
}

TEST(TrainerTest, UnseenCategoryStopsAtNode) {
  // Train on categories {0,1}; category 2 appears only at test time.
  std::vector<int32_t> x = {0, 0, 1, 1};
  std::vector<int32_t> y = {0, 0, 1, 1};
  std::vector<ColumnMeta> metas = {{"x", DataType::kCategorical, 3},
                                   {"y", DataType::kCategorical, 2}};
  auto train = DataTable::Make(
      Schema(metas, 1, TaskKind::kClassification),
      {Column::Categorical("x", x, 3), Column::Categorical("y", y, 2)});
  ASSERT_TRUE(train.ok());
  TreeModel model = TrainTreeOnTable(*train, {0}, TreeConfig{});
  ASSERT_FALSE(model.node(0).is_leaf());

  auto test = DataTable::Make(
      Schema(metas, 1, TaskKind::kClassification),
      {Column::Categorical("x", {2}, 3), Column::Categorical("y", {0}, 2)});
  ASSERT_TRUE(test.ok());
  const TreeModel::Node& stop = model.Traverse(*test, 0);
  EXPECT_EQ(stop.depth, 0);  // stopped at the root
}

TEST(TrainerTest, ExtraTreesDeterministicGivenSeed) {
  DatasetProfile p;
  p.name = "tiny";
  p.rows = 500;
  p.num_numeric = 5;
  p.num_categorical = 2;
  p.num_classes = 3;
  DataTable t = GenerateTable(p, 11);
  TreeConfig cfg;
  cfg.extra_trees = true;
  cfg.max_depth = 8;
  Rng r1(77), r2(77);
  TreeModel a = TrainTreeOnTable(t, t.schema().FeatureIndices(), cfg, &r1);
  TreeModel b = TrainTreeOnTable(t, t.schema().FeatureIndices(), cfg, &r2);
  EXPECT_TRUE(a.StructurallyEqual(b));
  EXPECT_GT(a.num_nodes(), 1u);
}

TEST(TrainerTest, GraftSubtreePreservesPredictions) {
  DataTable t = TinyTable();
  TreeConfig deep;
  deep.max_depth = 6;
  TreeModel full = TrainTreeOnTable(t, {0, 1}, deep);

  // Train the root level only, then separately train the two halves as
  // subtrees and graft; the result must predict identically to `full`.
  TreeConfig root_only;
  root_only.max_depth = 1;
  TreeModel stub = TrainTreeOnTable(t, {0, 1}, root_only);
  ASSERT_EQ(stub.num_nodes(), 3u);

  std::vector<uint32_t> left_rows, right_rows;
  const SplitCondition& cond = stub.node(0).condition;
  for (uint32_t i = 0; i < t.num_rows(); ++i) {
    if (cond.TrainRoutesLeftNumeric(t.column(cond.column)->numeric_at(i))) {
      left_rows.push_back(i);
    } else {
      right_rows.push_back(i);
    }
  }
  TreeConfig sub;
  sub.max_depth = 6;
  sub.base_depth = 1;
  TreeModel left_sub = TrainTree(t, left_rows, {0, 1}, sub);
  TreeModel right_sub = TrainTree(t, right_rows, {0, 1}, sub);
  // Subtree node depths are local before grafting.
  EXPECT_EQ(left_sub.node(0).depth, 0);

  stub.GraftSubtree(stub.node(0).left, left_sub);
  stub.GraftSubtree(stub.node(0).right, right_sub);

  for (size_t i = 0; i < t.num_rows(); ++i) {
    EXPECT_EQ(stub.PredictLabel(t, i), full.PredictLabel(t, i));
  }
}

TEST(ModelTest, SerializationRoundTrip) {
  DataTable t = TinyTable();
  TreeConfig cfg;
  cfg.max_depth = 6;
  TreeModel model = TrainTreeOnTable(t, {0, 1}, cfg);

  BinaryWriter w;
  model.Serialize(&w);
  BinaryReader r(w.buffer());
  TreeModel back;
  ASSERT_TRUE(TreeModel::Deserialize(&r, &back).ok());
  EXPECT_TRUE(model.StructurallyEqual(back));
  for (size_t i = 0; i < t.num_rows(); ++i) {
    EXPECT_EQ(model.PredictLabel(t, i), back.PredictLabel(t, i));
  }
}

TEST(ModelTest, CorruptDeserializeFails) {
  std::string garbage = "not a tree";
  BinaryReader r(garbage);
  TreeModel m;
  EXPECT_FALSE(TreeModel::Deserialize(&r, &m).ok());
}

TEST(ModelTest, MaxDepthAndLeafCount) {
  DataTable t = TinyTable();
  TreeConfig cfg;
  cfg.max_depth = 6;
  TreeModel model = TrainTreeOnTable(t, {0, 1}, cfg);
  EXPECT_GE(model.MaxDepth(), 1);
  EXPECT_GE(model.NumLeaves(), 2u);
  // Internal nodes + leaves = total.
  EXPECT_EQ(model.NumLeaves() * 2 - 1, model.num_nodes());  // binary tree
}

// Property sweep: on generated datasets of several shapes, a trained
// tree must (a) beat majority-class accuracy on training data, and
// (b) never exceed the configured depth.
class TrainerPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(TrainerPropertyTest, DepthBoundAndLearning) {
  auto [classes, depth, cat_cols] = GetParam();
  DatasetProfile p;
  p.rows = 1500;
  p.num_numeric = 4;
  p.num_categorical = cat_cols;
  p.num_classes = classes;
  p.noise = 0.05;
  p.concept_depth = 5;
  DataTable t = GenerateTable(p, 1234 + classes * 7 + depth);

  TreeConfig cfg;
  cfg.max_depth = depth;
  cfg.impurity = Impurity::kGini;
  TreeModel model = TrainTreeOnTable(t, t.schema().FeatureIndices(), cfg);
  EXPECT_LE(model.MaxDepth(), depth);

  // Majority baseline.
  ClassStats stats(classes);
  for (size_t i = 0; i < t.num_rows(); ++i) stats.Add(t.label_at(i));
  double majority =
      static_cast<double>(stats.counts[stats.Majority()]) / t.num_rows();
  size_t correct = 0;
  for (size_t i = 0; i < t.num_rows(); ++i) {
    if (model.PredictLabel(t, i) == t.label_at(i)) ++correct;
  }
  double acc = static_cast<double>(correct) / t.num_rows();
  EXPECT_GT(acc, majority);
}

INSTANTIATE_TEST_SUITE_P(Sweep, TrainerPropertyTest,
                         ::testing::Combine(::testing::Values(2, 5),
                                            ::testing::Values(4, 8, 12),
                                            ::testing::Values(0, 3)));

}  // namespace
}  // namespace treeserver
