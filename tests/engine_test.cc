#include <gtest/gtest.h>

#include <tuple>

#include "engine/cluster.h"
#include "forest/forest.h"
#include "table/datasets.h"

namespace treeserver {
namespace {

DataTable MakeData(int classes, size_t rows, uint64_t seed, int num_cols = 6,
                   int cat_cols = 2) {
  DatasetProfile p;
  p.rows = rows;
  p.num_numeric = num_cols;
  p.num_categorical = cat_cols;
  p.num_classes = classes;
  p.noise = 0.08;
  p.concept_depth = 6;
  return GenerateTable(p, seed);
}

EngineConfig SmallConfig() {
  EngineConfig cfg;
  cfg.num_workers = 3;
  cfg.compers_per_worker = 2;
  cfg.replication = 2;
  // Small thresholds so both task types exercise on small data:
  // nodes above 600 rows are column-tasks.
  cfg.tau_d = 600;
  cfg.tau_dfs = 1500;
  return cfg;
}

TEST(EngineTest, SingleTreeMatchesSerialReference) {
  DataTable t = MakeData(3, 3000, 11);
  ForestJobSpec spec;
  spec.num_trees = 1;
  spec.tree.max_depth = 8;

  TreeModel reference =
      TrainTreeOnTable(t, t.schema().FeatureIndices(), spec.tree);

  TreeServerCluster cluster(t, SmallConfig());
  ForestModel forest = cluster.TrainForest(spec);
  ASSERT_EQ(forest.num_trees(), 1u);
  EXPECT_TRUE(forest.tree(0).StructurallyEqual(reference))
      << "engine tree (" << forest.tree(0).num_nodes()
      << " nodes) != serial tree (" << reference.num_nodes() << " nodes)";
}

TEST(EngineTest, RegressionTreeMatchesSerialReference) {
  DatasetProfile p;
  p.rows = 2500;
  p.num_numeric = 5;
  p.num_categorical = 3;
  p.num_classes = 0;
  p.noise = 0.05;
  p.concept_depth = 5;
  DataTable t = GenerateTable(p, 21);

  ForestJobSpec spec;
  spec.num_trees = 1;
  spec.tree.max_depth = 9;
  spec.tree.impurity = Impurity::kVariance;

  TreeModel reference =
      TrainTreeOnTable(t, t.schema().FeatureIndices(), spec.tree);
  TreeServerCluster cluster(t, SmallConfig());
  ForestModel forest = cluster.TrainForest(spec);
  ASSERT_EQ(forest.num_trees(), 1u);
  EXPECT_TRUE(forest.tree(0).StructurallyEqual(reference));
}

TEST(EngineTest, MissingValuesHandled) {
  DatasetProfile p;
  p.rows = 2000;
  p.num_numeric = 5;
  p.num_categorical = 3;
  p.num_classes = 2;
  p.missing_fraction = 0.08;
  p.concept_depth = 5;
  DataTable t = GenerateTable(p, 31);

  ForestJobSpec spec;
  spec.num_trees = 1;
  spec.tree.max_depth = 7;
  TreeModel reference =
      TrainTreeOnTable(t, t.schema().FeatureIndices(), spec.tree);
  TreeServerCluster cluster(t, SmallConfig());
  ForestModel forest = cluster.TrainForest(spec);
  EXPECT_TRUE(forest.tree(0).StructurallyEqual(reference));
}

TEST(EngineTest, ForestMatchesSerialReference) {
  DataTable t = MakeData(4, 2400, 17);
  ForestJobSpec spec;
  spec.num_trees = 8;
  spec.tree.max_depth = 7;
  spec.column_ratio = 0.6;
  spec.seed = 99;

  ForestModel reference = TrainForestSerial(t, spec, 4);
  TreeServerCluster cluster(t, SmallConfig());
  ForestModel forest = cluster.TrainForest(spec);
  ASSERT_EQ(forest.num_trees(), reference.num_trees());
  for (size_t i = 0; i < forest.num_trees(); ++i) {
    EXPECT_TRUE(forest.tree(i).StructurallyEqual(reference.tree(i)))
        << "tree " << i << " differs";
  }
}

TEST(EngineTest, DeepTreeAllSubtreeTasks) {
  // τ_D larger than the table: the root itself becomes one
  // subtree-task (fully local build on a key worker).
  DataTable t = MakeData(2, 1200, 41);
  EngineConfig cfg = SmallConfig();
  cfg.tau_d = 100000;
  cfg.tau_dfs = 200000;
  ForestJobSpec spec;
  spec.num_trees = 2;
  spec.tree.max_depth = 6;
  TreeModel reference =
      TrainTreeOnTable(t, t.schema().FeatureIndices(), spec.tree);
  TreeServerCluster cluster(t, cfg);
  ForestModel forest = cluster.TrainForest(spec);
  EXPECT_TRUE(forest.tree(0).StructurallyEqual(reference));
  EXPECT_TRUE(forest.tree(1).StructurallyEqual(reference));
}

TEST(EngineTest, AllColumnTasks) {
  // τ_D = 0: every node (down to leaves) is processed via
  // column-tasks; exercises the delegate/parent-worker protocol hard.
  DataTable t = MakeData(2, 800, 43, 4, 1);
  EngineConfig cfg = SmallConfig();
  cfg.tau_d = 0;
  cfg.tau_dfs = 100;
  ForestJobSpec spec;
  spec.num_trees = 1;
  spec.tree.max_depth = 5;
  TreeModel reference =
      TrainTreeOnTable(t, t.schema().FeatureIndices(), spec.tree);
  TreeServerCluster cluster(t, cfg);
  ForestModel forest = cluster.TrainForest(spec);
  EXPECT_TRUE(forest.tree(0).StructurallyEqual(reference));
}

TEST(EngineTest, MultipleConcurrentJobs) {
  DataTable t = MakeData(3, 2000, 53);
  TreeServerCluster cluster(t, SmallConfig());

  ForestJobSpec dt1;
  dt1.name = "DT1";
  dt1.num_trees = 1;
  dt1.tree.max_depth = 6;
  dt1.tree.impurity = Impurity::kEntropy;

  ForestJobSpec dt2;
  dt2.name = "DT2";
  dt2.num_trees = 1;
  dt2.tree.max_depth = 8;

  ForestJobSpec rf3;
  rf3.name = "RF3";
  rf3.num_trees = 3;
  rf3.tree.max_depth = 6;
  rf3.column_ratio = 0.4;

  uint32_t j1 = cluster.Submit(dt1);
  uint32_t j2 = cluster.Submit(dt2);
  uint32_t j3 = cluster.Submit(rf3);

  ForestModel m3 = cluster.Wait(j3);
  ForestModel m1 = cluster.Wait(j1);
  ForestModel m2 = cluster.Wait(j2);
  EXPECT_EQ(m1.num_trees(), 1u);
  EXPECT_EQ(m2.num_trees(), 1u);
  EXPECT_EQ(m3.num_trees(), 3u);

  // Each result matches its own serial reference.
  EXPECT_TRUE(m1.tree(0).StructurallyEqual(
      TrainForestSerial(t, dt1).tree(0)));
  EXPECT_TRUE(m2.tree(0).StructurallyEqual(
      TrainForestSerial(t, dt2).tree(0)));
  ForestModel ref3 = TrainForestSerial(t, rf3);
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(m3.tree(i).StructurallyEqual(ref3.tree(i)));
  }
}

TEST(EngineTest, NpoolOneStillCorrect) {
  DataTable t = MakeData(2, 1500, 61);
  EngineConfig cfg = SmallConfig();
  cfg.npool = 1;  // strictly one tree at a time
  ForestJobSpec spec;
  spec.num_trees = 4;
  spec.tree.max_depth = 6;
  spec.column_ratio = 0.7;
  ForestModel reference = TrainForestSerial(t, spec);
  TreeServerCluster cluster(t, cfg);
  ForestModel forest = cluster.TrainForest(spec);
  ASSERT_EQ(forest.num_trees(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(forest.tree(i).StructurallyEqual(reference.tree(i)));
  }
}

TEST(EngineTest, ExtraTreesTrainAndPredict) {
  DataTable t = MakeData(3, 2500, 71);
  EngineConfig cfg = SmallConfig();
  ForestJobSpec spec;
  spec.num_trees = 6;
  spec.tree.max_depth = 10;
  spec.tree.extra_trees = true;
  TreeServerCluster cluster(t, cfg);
  ForestModel forest = cluster.TrainForest(spec);
  ASSERT_EQ(forest.num_trees(), 6u);
  // Randomized splits are not reproducible against the serial trainer,
  // but the forest must still learn the concept reasonably.
  double acc = EvaluateAccuracy(forest, t);
  EXPECT_GT(acc, 0.45);
  for (size_t i = 0; i < forest.num_trees(); ++i) {
    EXPECT_GT(forest.tree(i).num_nodes(), 1u);
    EXPECT_LE(forest.tree(i).MaxDepth(), 10);
  }
}

TEST(EngineTest, MetricsAreCollected) {
  DataTable t = MakeData(2, 2000, 81);
  TreeServerCluster cluster(t, SmallConfig());
  ForestJobSpec spec;
  spec.num_trees = 2;
  spec.tree.max_depth = 6;
  cluster.TrainForest(spec);
  EngineMetrics m = cluster.metrics();
  EXPECT_GT(m.bytes_sent_total, 0u);
  EXPECT_GT(m.comper_busy_seconds, 0.0);
  EXPECT_GT(m.tasks_scheduled, 0u);
  EXPECT_EQ(m.trees_completed, 2u);
  EXPECT_GT(m.peak_task_memory_bytes, 0);
  cluster.ResetMetrics();
  EXPECT_EQ(cluster.metrics().bytes_sent_total, 0u);
}

TEST(EngineTest, WorkerTaskTablesDrainAfterJob) {
  DataTable t = MakeData(2, 1500, 91);
  EngineConfig cfg = SmallConfig();
  TreeServerCluster cluster(t, cfg);
  ForestJobSpec spec;
  spec.num_trees = 3;
  spec.tree.max_depth = 7;
  cluster.TrainForest(spec);
  // Parent-release GC must have cleaned every delegate task object.
  // (Brief grace period: releases are asynchronous.)
  for (int attempt = 0; attempt < 100; ++attempt) {
    uint64_t total = cluster.metrics().tasks_scheduled;
    (void)total;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  // No assertion API on worker internals via cluster; the absence of
  // deadlock/leak is validated by the clean shutdown in ~Cluster.
  SUCCEED();
}

TEST(EngineTest, ThrottledNetworkStillCorrect) {
  DataTable t = MakeData(2, 1200, 95, 4, 0);
  EngineConfig cfg = SmallConfig();
  cfg.bandwidth_mbps = 200.0;  // slow enough to exercise throttling
  ForestJobSpec spec;
  spec.num_trees = 1;
  spec.tree.max_depth = 5;
  TreeModel reference =
      TrainTreeOnTable(t, t.schema().FeatureIndices(), spec.tree);
  TreeServerCluster cluster(t, cfg);
  ForestModel forest = cluster.TrainForest(spec);
  EXPECT_TRUE(forest.tree(0).StructurallyEqual(reference));
}

// Property sweep over engine configurations: engine == serial for
// every (workers, compers, τ_D) combination.
class EngineEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<int, int, uint64_t>> {};

TEST_P(EngineEquivalenceTest, MatchesSerial) {
  auto [workers, compers, tau_d] = GetParam();
  DataTable t = MakeData(3, 1600, 123 + workers * 10 + tau_d);
  EngineConfig cfg;
  cfg.num_workers = workers;
  cfg.compers_per_worker = compers;
  cfg.tau_d = tau_d;
  cfg.tau_dfs = tau_d * 2 + 100;
  ForestJobSpec spec;
  spec.num_trees = 2;
  spec.tree.max_depth = 7;
  spec.column_ratio = 0.8;
  ForestModel reference = TrainForestSerial(t, spec);
  TreeServerCluster cluster(t, cfg);
  ForestModel forest = cluster.TrainForest(spec);
  for (size_t i = 0; i < forest.num_trees(); ++i) {
    EXPECT_TRUE(forest.tree(i).StructurallyEqual(reference.tree(i)));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EngineEquivalenceTest,
    ::testing::Combine(::testing::Values(1, 2, 5), ::testing::Values(1, 3),
                       ::testing::Values(0u, 200u, 5000u)));

TEST(EngineFaultToleranceTest, CrashDuringTrainingStillCompletes) {
  DataTable t = MakeData(2, 4000, 131);
  EngineConfig cfg;
  cfg.num_workers = 4;
  cfg.compers_per_worker = 2;
  cfg.replication = 2;
  cfg.tau_d = 400;
  cfg.tau_dfs = 1200;
  ForestJobSpec spec;
  spec.num_trees = 6;
  spec.tree.max_depth = 8;

  TreeServerCluster cluster(t, cfg);
  uint32_t job = cluster.Submit(spec);
  // Let training get going, then kill a worker.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  cluster.CrashWorker(2);
  ForestModel forest = cluster.Wait(job);
  ASSERT_EQ(forest.num_trees(), 6u);

  // The surviving cluster must produce the same trees as the serial
  // reference (the computation is deterministic regardless of which
  // workers executed it).
  ForestModel reference = TrainForestSerial(t, spec, 4);
  for (size_t i = 0; i < forest.num_trees(); ++i) {
    EXPECT_TRUE(forest.tree(i).StructurallyEqual(reference.tree(i)))
        << "tree " << i << " diverged after crash recovery";
  }
}

TEST(EngineFaultToleranceTest, CrashBeforeSubmitWorks) {
  DataTable t = MakeData(2, 1200, 151);
  EngineConfig cfg = SmallConfig();
  cfg.num_workers = 4;
  TreeServerCluster cluster(t, cfg);
  cluster.CrashWorker(0);
  ForestJobSpec spec;
  spec.num_trees = 2;
  spec.tree.max_depth = 6;
  ForestModel forest = cluster.TrainForest(spec);
  ASSERT_EQ(forest.num_trees(), 2u);
  ForestModel reference = TrainForestSerial(t, spec);
  EXPECT_TRUE(forest.tree(0).StructurallyEqual(reference.tree(0)));
}

}  // namespace
}  // namespace treeserver
