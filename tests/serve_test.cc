#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <future>
#include <thread>
#include <vector>

#include "deepforest/deep_forest.h"
#include "forest/forest.h"
#include "serve/compiled_model.h"
#include "serve/model_io.h"
#include "serve/registry.h"
#include "serve/server.h"
#include "table/datasets.h"

namespace treeserver {
namespace {

DataTable MixedData(int classes, size_t rows, uint64_t seed,
                    double missing = 0.1) {
  DatasetProfile p;
  p.rows = rows;
  p.num_numeric = 5;
  p.num_categorical = 3;
  p.num_classes = classes;
  p.missing_fraction = missing;
  p.noise = 0.05;
  p.concept_depth = 6;
  return GenerateTable(p, seed);
}

ForestModel TrainSmallForest(const DataTable& t, int trees = 8,
                             int max_depth = 7, uint64_t seed = 17) {
  ForestJobSpec spec;
  spec.num_trees = trees;
  spec.tree.max_depth = max_depth;
  spec.column_ratio = 0.7;
  spec.seed = seed;
  if (t.schema().task_kind() == TaskKind::kRegression) {
    spec.tree.impurity = Impurity::kVariance;
  }
  return TrainForestSerial(t, spec, 2);
}

/// A copy of `t` with deliberately hostile feature cells: missing
/// numerics (NaN), missing categories (-1), and categorical codes
/// beyond every cardinality the trainer ever saw (unseen at any split).
DataTable Mutate(const DataTable& t, uint64_t seed) {
  Rng rng(seed);
  std::vector<ColumnMeta> metas;
  std::vector<ColumnPtr> cols;
  for (int c = 0; c < t.num_columns(); ++c) {
    ColumnMeta meta = t.schema().column(c);
    if (c == t.schema().target_index()) {
      metas.push_back(meta);
      cols.push_back(t.column(c));
      continue;
    }
    if (meta.type == DataType::kNumeric) {
      std::vector<double> v = t.column(c)->numeric_values();
      for (double& x : v) {
        if (rng.Bernoulli(0.15)) x = MissingNumeric();
      }
      cols.push_back(Column::Numeric(meta.name, std::move(v)));
    } else {
      std::vector<int32_t> v = t.column(c)->categorical_codes();
      const int32_t card = meta.cardinality;
      for (int32_t& x : v) {
        double r = rng.UniformDouble();
        if (r < 0.10) {
          x = kMissingCategory;
        } else if (r < 0.25) {
          // Unseen code: beyond the training cardinality, including
          // codes far past any compiled bitmask width.
          x = card + static_cast<int32_t>(rng.Uniform(200));
        }
      }
      meta.cardinality = card + 200;
      cols.push_back(
          Column::Categorical(meta.name, std::move(v), meta.cardinality));
    }
    metas.push_back(meta);
  }
  return DataTable(Schema(std::move(metas), t.schema().target_index(),
                          t.schema().task_kind()),
                   std::move(cols));
}

std::vector<uint32_t> AllRows(const DataTable& t) {
  std::vector<uint32_t> rows(t.num_rows());
  for (size_t i = 0; i < rows.size(); ++i) rows[i] = static_cast<uint32_t>(i);
  return rows;
}

/// Exact (bit-for-bit) agreement between the compiled forest and the
/// row-at-a-time reference on every row of `eval`, at several depth
/// cutoffs.
void ExpectClassificationParity(const ForestModel& forest,
                                const CompiledForest& compiled,
                                const DataTable& eval) {
  const std::vector<uint32_t> rows = AllRows(eval);
  const int k = forest.num_classes();
  std::vector<float> pmf(rows.size() * k);
  std::vector<int32_t> labels(rows.size());
  for (int max_depth : {-1, 0, 1, 3, 64}) {
    compiled.PredictPmf(eval, rows.data(), rows.size(), max_depth, pmf.data());
    compiled.PredictLabel(eval, rows.data(), rows.size(), max_depth,
                          labels.data());
    for (size_t i = 0; i < rows.size(); ++i) {
      std::vector<float> want = forest.PredictPmf(eval, i, max_depth);
      ASSERT_EQ(want.size(), static_cast<size_t>(k));
      for (int c = 0; c < k; ++c) {
        ASSERT_EQ(pmf[i * k + c], want[c])
            << "row " << i << " class " << c << " depth " << max_depth;
      }
      ASSERT_EQ(labels[i], forest.PredictLabel(eval, i, max_depth))
          << "row " << i << " depth " << max_depth;
    }
  }
}

TEST(CompiledForestTest, ClassificationParityOnCleanData) {
  DataTable t = MixedData(3, 1200, 41, /*missing=*/0.0);
  ForestModel forest = TrainSmallForest(t);
  CompiledForest compiled = CompiledForest::Compile(forest);
  EXPECT_EQ(compiled.num_trees(), forest.num_trees());
  EXPECT_EQ(compiled.num_classes(), forest.num_classes());
  ExpectClassificationParity(forest, compiled, t);
}

TEST(CompiledForestTest, ParityWithMissingAndUnseenCategories) {
  DataTable t = MixedData(4, 1000, 42, /*missing=*/0.1);
  ForestModel forest = TrainSmallForest(t, 10, 8);
  CompiledForest compiled = CompiledForest::Compile(forest);
  // Fresh rows the model never trained on, salted with NaNs, missing
  // categories and out-of-vocabulary codes.
  DataTable eval = Mutate(MixedData(4, 600, 1042, 0.1), 7);
  ExpectClassificationParity(forest, compiled, eval);
}

TEST(CompiledForestTest, RegressionParity) {
  DatasetProfile p;
  p.rows = 1500;
  p.num_numeric = 5;
  p.num_categorical = 2;
  p.num_classes = 0;  // regression
  p.missing_fraction = 0.08;
  p.noise = 0.05;
  p.concept_depth = 5;
  DataTable t = GenerateTable(p, 91);
  ForestModel forest = TrainSmallForest(t, 9, 9);
  CompiledForest compiled = CompiledForest::Compile(forest);
  DataTable eval = Mutate(GenerateTable(p, 191), 13);
  const std::vector<uint32_t> rows = AllRows(eval);
  std::vector<double> values(rows.size());
  for (int max_depth : {-1, 0, 2, 5}) {
    compiled.PredictValue(eval, rows.data(), rows.size(), max_depth,
                          values.data());
    for (size_t i = 0; i < rows.size(); ++i) {
      ASSERT_EQ(values[i], forest.PredictValue(eval, i, max_depth))
          << "row " << i << " depth " << max_depth;
    }
  }
  // `values` holds the depth-5 results from the last loop iteration.
  EXPECT_EQ(compiled.PredictValues(eval, 5), values);
}

TEST(CompiledForestTest, SingleTreeForestOfOne) {
  DataTable t = MixedData(3, 800, 43);
  ForestModel forest = TrainSmallForest(t, 1, 6);
  CompiledForest from_tree = CompiledForest::Compile(forest.tree(0));
  ASSERT_EQ(from_tree.num_trees(), 1u);
  for (size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(from_tree.PredictLabelRow(t, i), forest.PredictLabel(t, i));
    EXPECT_EQ(from_tree.PredictPmfRow(t, i), forest.PredictPmf(t, i));
  }
}

TEST(CompiledForestTest, WholeTableConvenienceMatchesBatched) {
  DataTable t = MixedData(2, 2500, 44);  // > one 1024-row block
  ForestModel forest = TrainSmallForest(t, 5, 6);
  CompiledForest compiled = CompiledForest::Compile(forest);
  std::vector<int32_t> labels = compiled.PredictLabels(t);
  ASSERT_EQ(labels.size(), t.num_rows());
  for (size_t i = 0; i < t.num_rows(); ++i) {
    EXPECT_EQ(labels[i], forest.PredictLabel(t, i));
  }
}

TEST(CompiledCascadeTest, MatchesDeepForestPredictions) {
  ImageDataset train = GenerateImages(120, 311);
  ImageDataset test = GenerateImages(40, 312);
  EngineConfig engine;
  engine.num_workers = 2;
  engine.compers_per_worker = 2;
  engine.tau_d = 100000;
  engine.tau_dfs = 200000;
  DeepForestConfig cfg;
  cfg.mgs.window_sizes = {5};
  cfg.mgs.stride = 4;
  cfg.mgs.trees_per_forest = 4;
  cfg.mgs.forests_per_window = 2;
  cfg.mgs.max_depth = 6;
  cfg.cascade.num_layers = 2;
  cfg.cascade.trees_per_forest = 4;
  cfg.cascade.max_depth = 10;
  cfg.extract_threads = 2;
  DeepForestTrainer trainer(cfg, engine);
  DeepForestModel model = trainer.Train(train, test);

  CompiledCascade compiled = CompiledCascade::Compile(model);
  EXPECT_EQ(compiled.num_layers(), model.num_layers());
  EXPECT_EQ(compiled.Predict(test, 2), model.Predict(test, 2));
  // Thread count must not change results.
  EXPECT_EQ(compiled.Predict(test, 1), model.Predict(test, 2));
}

class ModelIoTest : public ::testing::Test {
 protected:
  void TearDown() override {
    for (const std::string& p : files_) std::remove(p.c_str());
  }
  std::string Tracked(const std::string& name) {
    std::string p = testing::TempDir() + "serve_io_" + name;
    files_.push_back(p);
    return p;
  }
  std::vector<std::string> files_;
};

TEST_F(ModelIoTest, ForestRoundTrip) {
  DataTable t = MixedData(3, 800, 51);
  ForestModel forest = TrainSmallForest(t, 4, 5);
  const std::string path = Tracked("forest.tsm");
  ASSERT_TRUE(SaveToFile(forest, path).ok());

  auto kind = ReadModelFileKind(path);
  ASSERT_TRUE(kind.ok());
  EXPECT_EQ(*kind, ModelKind::kForest);

  ForestModel back;
  ASSERT_TRUE(LoadFromFile(path, &back).ok());
  EXPECT_EQ(back.num_trees(), forest.num_trees());
  for (size_t i = 0; i < 200; ++i) {
    EXPECT_EQ(back.PredictPmf(t, i), forest.PredictPmf(t, i));
  }
}

TEST_F(ModelIoTest, TreeRoundTrip) {
  DataTable t = MixedData(2, 600, 52);
  ForestModel forest = TrainSmallForest(t, 1, 6);
  const std::string path = Tracked("tree.tsm");
  ASSERT_TRUE(SaveToFile(forest.tree(0), path).ok());
  TreeModel back;
  ASSERT_TRUE(LoadFromFile(path, &back).ok());
  EXPECT_TRUE(back.StructurallyEqual(forest.tree(0)));
}

TEST_F(ModelIoTest, KindMismatchRejected) {
  DataTable t = MixedData(2, 600, 53);
  ForestModel forest = TrainSmallForest(t, 2, 4);
  const std::string path = Tracked("forest2.tsm");
  ASSERT_TRUE(SaveToFile(forest, path).ok());
  TreeModel tree;
  Status st = LoadFromFile(path, &tree);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("expected"), std::string::npos);
}

TEST_F(ModelIoTest, MissingFileIsError) {
  const std::string path = testing::TempDir() + "serve_io_nope.tsm";
  ForestModel out;
  EXPECT_FALSE(LoadFromFile(path, &out).ok());
  EXPECT_FALSE(ReadModelFileKind(path).ok());
}

TEST_F(ModelIoTest, EveryTruncationRejectedCleanly) {
  DataTable t = MixedData(2, 400, 54);
  ForestModel forest = TrainSmallForest(t, 2, 4);
  const std::string full_path = Tracked("trunc_src.tsm");
  ASSERT_TRUE(SaveToFile(forest, full_path).ok());
  std::string bytes;
  {
    std::FILE* f = std::fopen(full_path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    bytes.resize(static_cast<size_t>(std::ftell(f)));
    std::fseek(f, 0, SEEK_SET);
    ASSERT_EQ(std::fread(bytes.data(), 1, bytes.size(), f), bytes.size());
    std::fclose(f);
  }
  // Every strict prefix must fail to load — header-truncated files and
  // payload-truncated files alike.
  const std::string path = Tracked("trunc.tsm");
  for (size_t len = 0; len < bytes.size();
       len += 1 + len / 7 /* denser near the header */) {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    if (len > 0) ASSERT_EQ(std::fwrite(bytes.data(), 1, len, f), len);
    std::fclose(f);
    ForestModel out;
    EXPECT_FALSE(LoadFromFile(path, &out).ok()) << "prefix " << len;
  }
  // Trailing garbage must also fail.
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
    ASSERT_EQ(std::fwrite("xx", 1, 2, f), 2u);
    std::fclose(f);
    ForestModel out;
    EXPECT_FALSE(LoadFromFile(path, &out).ok());
  }
}

TEST_F(ModelIoTest, HeaderFuzzNeverCrashesAndBadHeadersFail) {
  DataTable t = MixedData(2, 400, 55);
  ForestModel forest = TrainSmallForest(t, 2, 4);
  const std::string src = Tracked("fuzz_src.tsm");
  ASSERT_TRUE(SaveToFile(forest, src).ok());
  std::string bytes;
  {
    std::FILE* f = std::fopen(src.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    bytes.resize(static_cast<size_t>(std::ftell(f)));
    std::fseek(f, 0, SEEK_SET);
    ASSERT_EQ(std::fread(bytes.data(), 1, bytes.size(), f), bytes.size());
    std::fclose(f);
  }
  const std::string path = Tracked("fuzz.tsm");
  Rng rng(99);
  // Each iteration flips one byte: the first 9 iterations cover every
  // header byte (magic, version, kind), the rest hit random payload
  // positions. A header flip must be rejected; a payload flip must
  // never crash (it may deserialize to a different valid model).
  for (int iter = 0; iter < 60; ++iter) {
    std::string mutated = bytes;
    const size_t pos =
        iter < 9 ? static_cast<size_t>(iter) : rng.Uniform(mutated.size());
    mutated[pos] ^= static_cast<char>(1 + rng.Uniform(255));
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(mutated.data(), 1, mutated.size(), f),
              mutated.size());
    std::fclose(f);
    ForestModel out;
    Status st = LoadFromFile(path, &out);
    if (pos < 9) {
      EXPECT_FALSE(st.ok()) << "header byte " << pos;
    }
  }
}

TEST(ModelRegistryTest, PublishLookupAndVersioning) {
  DataTable t = MixedData(3, 800, 61);
  ModelRegistry registry;
  EXPECT_EQ(registry.Current("risk"), nullptr);
  EXPECT_EQ(registry.NumVersions("risk"), 0u);

  auto v1 = registry.Publish("risk", TrainSmallForest(t, 3, 5, 1));
  ASSERT_TRUE(v1.ok());
  EXPECT_EQ(*v1, 1u);
  auto v2 = registry.Publish("risk", TrainSmallForest(t, 5, 6, 2));
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(*v2, 2u);

  auto current = registry.Current("risk");
  ASSERT_NE(current, nullptr);
  EXPECT_EQ(current->version, 2u);
  EXPECT_EQ(current->compiled.num_trees(), 5u);
  // The old version stays pinned until retired.
  auto old = registry.Version("risk", 1);
  ASSERT_NE(old, nullptr);
  EXPECT_EQ(old->compiled.num_trees(), 3u);
  EXPECT_EQ(registry.NumVersions("risk"), 2u);
  EXPECT_EQ(registry.RetireOldVersions("risk"), 1u);
  EXPECT_EQ(registry.Version("risk", 1), nullptr);
  ASSERT_NE(registry.Current("risk"), nullptr);
  EXPECT_EQ(registry.Current("risk")->version, 2u);

  EXPECT_FALSE(registry.Publish("", TrainSmallForest(t, 1, 3)).ok());
  EXPECT_FALSE(registry.Publish("empty", ForestModel()).ok());
  EXPECT_EQ(registry.ModelNames(), std::vector<std::string>{"risk"});
}

TEST(ModelRegistryTest, FileRoundTripThroughRegistry) {
  DataTable t = MixedData(3, 800, 62);
  ModelRegistry registry;
  ASSERT_TRUE(registry.Publish("m", TrainSmallForest(t, 4, 5)).ok());
  const std::string path = testing::TempDir() + "serve_registry_m.tsm";
  ASSERT_TRUE(registry.SaveCurrent("m", path).ok());
  auto v = registry.PublishFromFile("m2", path);
  ASSERT_TRUE(v.ok());
  auto a = registry.Current("m");
  auto b = registry.Current("m2");
  ASSERT_NE(b, nullptr);
  for (size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(a->compiled.PredictLabelRow(t, i),
              b->compiled.PredictLabelRow(t, i));
  }
  std::remove(path.c_str());
  EXPECT_FALSE(registry.SaveCurrent("ghost", path).ok());
  EXPECT_FALSE(registry.PublishFromFile("ghost", path).ok());
}

TEST(ModelRegistryTest, TreeKindSurvivesFileRoundTrip) {
  DataTable t = MixedData(2, 500, 64);
  ForestModel one = TrainSmallForest(t, 1, 5);
  ModelRegistry registry;
  ASSERT_TRUE(registry.Publish("tree", one.tree(0)).ok());
  ASSERT_EQ(registry.Current("tree")->kind, ModelKind::kTree);
  const std::string path = testing::TempDir() + "serve_registry_tree.tsm";
  ASSERT_TRUE(registry.SaveCurrent("tree", path).ok());
  auto kind = ReadModelFileKind(path);
  ASSERT_TRUE(kind.ok());
  EXPECT_EQ(*kind, ModelKind::kTree);
  ASSERT_TRUE(registry.PublishFromFile("tree2", path).ok());
  EXPECT_EQ(registry.Current("tree2")->kind, ModelKind::kTree);
  std::remove(path.c_str());
}

TEST(ModelRegistryTest, HotSwapIsSafeUnderConcurrentReads) {
  DataTable t = MixedData(2, 500, 63);
  ModelRegistry registry;
  ASSERT_TRUE(registry.Publish("hot", TrainSmallForest(t, 1, 4, 1)).ok());
  std::atomic<bool> stop{false};
  std::atomic<uint32_t> max_seen{0};
  std::thread reader([&] {
    while (!stop.load()) {
      auto m = registry.Current("hot");
      ASSERT_NE(m, nullptr);
      uint32_t v = m->version;
      uint32_t prev = max_seen.load();
      // Versions observed by a reader never go backwards.
      while (v > prev && !max_seen.compare_exchange_weak(prev, v)) {
      }
      EXPECT_GE(v, 1u);
      // The pinned version stays fully usable mid-swap.
      m->compiled.PredictLabelRow(t, v % t.num_rows());
    }
  });
  for (int i = 2; i <= 20; ++i) {
    ASSERT_TRUE(registry.Publish("hot", TrainSmallForest(t, 1, 4, i)).ok());
  }
  stop.store(true);
  reader.join();
  EXPECT_EQ(registry.Current("hot")->version, 20u);
}

TEST(ModelRegistryTest, RollbackRestoresPreviousVersion) {
  DataTable table = MixedData(3, 200, 5);
  ModelRegistry registry;
  ASSERT_TRUE(registry.Publish("m", TrainSmallForest(table, 4, 5, 1)).ok());
  ASSERT_TRUE(registry.Publish("m", TrainSmallForest(table, 4, 5, 2)).ok());
  ASSERT_TRUE(registry.Publish("m", TrainSmallForest(table, 4, 5, 3)).ok());
  ASSERT_EQ(registry.Current("m")->version, 3u);

  Result<uint32_t> v = registry.Rollback("m");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 2u);
  EXPECT_EQ(registry.Current("m")->version, 2u);
  // The rolled-back version is gone: a second rollback lands on v1,
  // not back on v3.
  v = registry.Rollback("m");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 1u);
  // Nothing older than v1: rollback now fails, current is unchanged.
  EXPECT_EQ(registry.Rollback("m").status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(registry.Current("m")->version, 1u);
  EXPECT_EQ(registry.Rollback("nope").status().code(), StatusCode::kNotFound);
  // A fresh publish after rollbacks still gets a fresh version number.
  Result<uint32_t> republished =
      registry.Publish("m", TrainSmallForest(table, 4, 5, 4));
  ASSERT_TRUE(republished.ok());
  EXPECT_EQ(*republished, 4u);
}

TEST(ModelRegistryTest, StatusSnapshotListsEveryModel) {
  DataTable table = MixedData(2, 150, 9);
  ModelRegistry registry;
  ASSERT_TRUE(registry.Publish("a", TrainSmallForest(table, 2, 4)).ok());
  ASSERT_TRUE(registry.Publish("b", TrainSmallForest(table, 2, 4)).ok());
  ASSERT_TRUE(registry.Publish("b", TrainSmallForest(table, 2, 4, 5)).ok());

  auto snapshot = registry.StatusSnapshot();
  ASSERT_EQ(snapshot.size(), 2u);
  EXPECT_EQ(snapshot[0].name, "a");
  EXPECT_EQ(snapshot[0].version, 1u);
  EXPECT_EQ(snapshot[0].num_versions, 1u);
  EXPECT_EQ(snapshot[1].name, "b");
  EXPECT_EQ(snapshot[1].version, 2u);
  EXPECT_EQ(snapshot[1].num_versions, 2u);
}

// Satellite: hot-swap under live batched load. Every published version
// holds an identical model, so any torn read — a prediction computed
// from half-swapped state — shows up as a wrong label, and TSan sees
// any racy access. Old-version in-flight work must still complete.
TEST(ModelRegistrySwapStress, HotSwapUnderConcurrentPredictionLoad) {
  auto table = std::make_shared<DataTable>(MixedData(3, 300, 77));
  ForestModel forest = TrainSmallForest(*table, 6, 6);
  CompiledForest compiled = CompiledForest::Compile(forest);

  ModelRegistry registry;
  ASSERT_TRUE(registry.Publish("m", forest).ok());

  InferenceServerConfig cfg;
  cfg.num_workers = 3;
  cfg.max_batch = 8;
  cfg.batch_deadline_us = 50;
  cfg.max_queue = 1 << 16;
  MetricsRegistry metrics;
  cfg.metrics = &metrics;
  InferenceServer server(&registry, cfg);
  server.Start();

  constexpr int kSwaps = 25;
  std::atomic<bool> done{false};
  std::thread publisher([&] {
    for (int i = 0; i < kSwaps; ++i) {
      ASSERT_TRUE(registry.Publish("m", forest).ok());
      registry.RetireOldVersions("m", 4);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    done.store(true);
  });

  std::vector<std::future<Result<Prediction>>> futures;
  uint32_t row = 0;
  while (!done.load() || futures.size() < 2000) {
    PredictRequest req;
    req.model = "m";
    req.table = table;
    req.row = row;
    futures.push_back(server.Predict(std::move(req)));
    row = (row + 1) % table->num_rows();
    if (futures.size() >= 20000) break;
  }
  publisher.join();

  uint32_t max_version = 0;
  for (size_t i = 0; i < futures.size(); ++i) {
    Result<Prediction> r = futures[i].get();
    ASSERT_TRUE(r.ok()) << r.status().message();
    // Identical model at every version: a label mismatch means a torn
    // read of half-swapped state.
    const uint32_t expect_row = static_cast<uint32_t>(i) % table->num_rows();
    EXPECT_EQ(r->label, compiled.PredictLabelRow(*table, expect_row));
    ASSERT_GE(r->model_version, 1u);
    ASSERT_LE(r->model_version, static_cast<uint32_t>(kSwaps) + 1);
    max_version = std::max(max_version, r->model_version);
  }
  server.Stop();
  // The load really did overlap the swaps.
  EXPECT_GT(max_version, 1u);
  EXPECT_EQ(metrics.GetCounter("serve.rejected")->value(), 0u);
}

TEST(InferenceServerTest, ServesParityWithDirectPrediction) {
  auto table = std::make_shared<DataTable>(MixedData(3, 400, 71));
  ForestModel forest = TrainSmallForest(*table, 6, 6);
  ModelRegistry registry;
  ASSERT_TRUE(registry.Publish("m", forest).ok());

  MetricsRegistry metrics;
  InferenceServerConfig cfg;
  cfg.num_workers = 3;
  cfg.max_batch = 16;
  cfg.batch_deadline_us = 100;
  cfg.metrics = &metrics;
  InferenceServer server(&registry, cfg);
  server.Start();

  std::vector<std::future<Result<Prediction>>> futures;
  for (size_t i = 0; i < table->num_rows(); ++i) {
    PredictRequest req;
    req.model = "m";
    req.table = table;
    req.row = static_cast<uint32_t>(i);
    req.want_pmf = true;
    futures.push_back(server.Predict(std::move(req)));
  }
  for (size_t i = 0; i < futures.size(); ++i) {
    Result<Prediction> r = futures[i].get();
    ASSERT_TRUE(r.ok()) << r.status().message();
    EXPECT_EQ(r->model_version, 1u);
    EXPECT_EQ(r->label, forest.PredictLabel(*table, i));
    EXPECT_EQ(r->pmf, forest.PredictPmf(*table, i));
  }
  server.Stop();
  EXPECT_EQ(metrics.GetCounter("serve.requests")->value(), table->num_rows());
  EXPECT_EQ(metrics.GetCounter("serve.rejected")->value(), 0u);
  EXPECT_GT(metrics.GetCounter("serve.batches")->value(), 0u);
  EXPECT_EQ(metrics.GetHistogram("serve.latency_us.m")->Count(),
            table->num_rows());
}

TEST(InferenceServerTest, RegressionAndDepthCutoff) {
  DatasetProfile p;
  p.rows = 300;
  p.num_numeric = 4;
  p.num_categorical = 1;
  p.num_classes = 0;
  p.concept_depth = 4;
  auto table = std::make_shared<DataTable>(GenerateTable(p, 72));
  ForestModel forest = TrainSmallForest(*table, 4, 8);
  ModelRegistry registry;
  ASSERT_TRUE(registry.Publish("reg", forest).ok());
  InferenceServerConfig cfg;
  cfg.metrics = nullptr;  // exercise the Global() default
  InferenceServer server(&registry, cfg);
  server.Start();
  for (uint32_t row : {0u, 5u, 99u}) {
    for (int depth : {-1, 2}) {
      PredictRequest req;
      req.model = "reg";
      req.table = table;
      req.row = row;
      req.max_depth = depth;
      Result<Prediction> r = server.Predict(std::move(req)).get();
      ASSERT_TRUE(r.ok());
      EXPECT_EQ(r->value, forest.PredictValue(*table, row, depth));
    }
  }
}

TEST(InferenceServerTest, UnknownModelAndBadRequest) {
  auto table = std::make_shared<DataTable>(MixedData(2, 50, 73));
  ModelRegistry registry;
  MetricsRegistry metrics;
  InferenceServerConfig cfg;
  cfg.metrics = &metrics;
  InferenceServer server(&registry, cfg);
  server.Start();
  PredictRequest req;
  req.model = "ghost";
  req.table = table;
  Result<Prediction> r = server.Predict(std::move(req)).get();
  EXPECT_FALSE(r.ok());

  PredictRequest bad;
  bad.model = "ghost";
  bad.table = table;
  bad.row = 50;  // out of range
  EXPECT_FALSE(server.Predict(std::move(bad)).get().ok());
  PredictRequest no_table;
  no_table.model = "ghost";
  EXPECT_FALSE(server.Predict(std::move(no_table)).get().ok());
}

TEST(InferenceServerTest, BackpressureRejectsBeyondBound) {
  auto table = std::make_shared<DataTable>(MixedData(2, 50, 74));
  ForestModel forest = TrainSmallForest(*table, 2, 4);
  ModelRegistry registry;
  ASSERT_TRUE(registry.Publish("m", forest).ok());
  MetricsRegistry metrics;
  InferenceServerConfig cfg;
  cfg.max_queue = 4;
  cfg.metrics = &metrics;
  InferenceServer server(&registry, cfg);
  // Not started yet: requests queue up deterministically.
  std::vector<std::future<Result<Prediction>>> admitted;
  for (int i = 0; i < 4; ++i) {
    PredictRequest req;
    req.model = "m";
    req.table = table;
    req.row = static_cast<uint32_t>(i);
    admitted.push_back(server.Predict(std::move(req)));
  }
  EXPECT_EQ(server.queue_depth(), 4u);
  PredictRequest overflow;
  overflow.model = "m";
  overflow.table = table;
  Result<Prediction> rejected = server.Predict(std::move(overflow)).get();
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(metrics.GetCounter("serve.rejected")->value(), 1u);
  // Admitted requests are served once the server starts.
  server.Start();
  for (int i = 0; i < 4; ++i) {
    Result<Prediction> r = admitted[i].get();
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->label, forest.PredictLabel(*table, i));
  }
}

TEST(InferenceServerTest, HotSwapTakesEffectBetweenRequests) {
  auto table = std::make_shared<DataTable>(MixedData(2, 100, 75));
  ModelRegistry registry;
  ASSERT_TRUE(registry.Publish("m", TrainSmallForest(*table, 1, 3, 1)).ok());
  InferenceServer server(&registry, {});
  server.Start();
  PredictRequest req;
  req.model = "m";
  req.table = table;
  Result<Prediction> r1 = server.Predict(req).get();
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(r1->model_version, 1u);
  ASSERT_TRUE(registry.Publish("m", TrainSmallForest(*table, 3, 5, 2)).ok());
  Result<Prediction> r2 = server.Predict(req).get();
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->model_version, 2u);
}

TEST(InferenceServerTest, StopDrainsQueuedWork) {
  auto table = std::make_shared<DataTable>(MixedData(2, 200, 76));
  ForestModel forest = TrainSmallForest(*table, 3, 5);
  ModelRegistry registry;
  ASSERT_TRUE(registry.Publish("m", forest).ok());
  InferenceServerConfig cfg;
  cfg.batch_deadline_us = 50000;  // long deadline: Stop must not wait it out
  InferenceServer server(&registry, cfg);
  server.Start();
  std::vector<std::future<Result<Prediction>>> futures;
  for (uint32_t i = 0; i < 200; ++i) {
    PredictRequest req;
    req.model = "m";
    req.table = table;
    req.row = i;
    futures.push_back(server.Predict(std::move(req)));
  }
  server.Stop();
  for (uint32_t i = 0; i < 200; ++i) {
    Result<Prediction> r = futures[i].get();
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->label, forest.PredictLabel(*table, i));
  }
  // After Stop, new work is refused but the future still resolves.
  PredictRequest late;
  late.model = "m";
  late.table = table;
  EXPECT_FALSE(server.Predict(std::move(late)).get().ok());
}

}  // namespace
}  // namespace treeserver
