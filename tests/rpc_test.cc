#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "common/metrics_registry.h"
#include "engine/cluster.h"
#include "engine/master.h"
#include "engine/messages.h"
#include "engine/worker.h"
#include "forest/forest.h"
#include "rpc/crc32c.h"
#include "rpc/frame.h"
#include "rpc/tcp_transport.h"
#include "table/datasets.h"

namespace treeserver {
namespace {

// ---------------------------------------------------------------------------
// CRC-32C
// ---------------------------------------------------------------------------

TEST(Crc32cTest, KnownAnswer) {
  // The canonical CRC-32C check value (RFC 3720 appendix B.4 vectors).
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);
  EXPECT_EQ(Crc32c("", 0), 0u);
}

TEST(Crc32cTest, ExtendMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  for (size_t split = 0; split <= data.size(); ++split) {
    uint32_t crc = Crc32cExtend(0, data.data(), split);
    crc = Crc32cExtend(crc, data.data() + split, data.size() - split);
    EXPECT_EQ(crc, Crc32c(data.data(), data.size())) << "split at " << split;
  }
}

// ---------------------------------------------------------------------------
// Wire framing
// ---------------------------------------------------------------------------

Message TestMessage() {
  Message msg;
  msg.src = 3;
  msg.dst = kMasterRank;
  msg.type = 11;
  msg.payload = "subtree result payload bytes";
  msg.trace_id = 0xDEADBEEFCAFEull;
  return msg;
}

std::string FrameOf(const Message& msg) {
  std::string buf;
  AppendFrame(kWireChannelData, msg, &buf);
  return buf;
}

void PutLe32(std::string* buf, size_t offset, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    (*buf)[offset + i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  }
}

// Rewrites the trailing header CRC so a deliberately hostile header is
// otherwise self-consistent — the decoder must reject it on semantic
// grounds, not just the checksum.
void FixHeaderCrc(std::string* buf) {
  PutLe32(buf, kFrameHeaderBytes - 4, Crc32c(buf->data(), kFrameHeaderBytes - 4));
}

TEST(FrameTest, RoundTripPreservesAllFields) {
  const Message msg = TestMessage();
  const std::string buf = FrameOf(msg);
  ASSERT_EQ(buf.size(), kFrameHeaderBytes + msg.payload.size());

  FrameHeader header;
  std::string payload;
  ASSERT_TRUE(DecodeFrame(buf, &header, &payload).ok());
  EXPECT_EQ(header.version, kFrameVersion);
  EXPECT_EQ(header.channel, kWireChannelData);
  EXPECT_EQ(header.msg_type, 11u);
  EXPECT_EQ(header.src, 3);
  EXPECT_EQ(header.dst, kMasterRank);
  EXPECT_EQ(header.trace_id, 0xDEADBEEFCAFEull);
  EXPECT_EQ(payload, msg.payload);
}

TEST(FrameTest, ControlFrameRoundTrip) {
  std::string buf;
  AppendControlFrame(kCtrlHello, 2, kMasterRank, std::string("\x02\x00\x00\x00", 4),
                     &buf);
  FrameHeader header;
  std::string payload;
  ASSERT_TRUE(DecodeFrame(buf, &header, &payload).ok());
  EXPECT_EQ(header.channel, kWireChannelControl);
  EXPECT_EQ(header.msg_type, kCtrlHello);
  EXPECT_EQ(payload.size(), 4u);
}

TEST(FrameTest, EveryTruncationFails) {
  const std::string buf = FrameOf(TestMessage());
  for (size_t len = 0; len < buf.size(); ++len) {
    FrameHeader header;
    std::string payload;
    EXPECT_FALSE(DecodeFrame(buf.substr(0, len), &header, &payload).ok())
        << "truncation to " << len << " bytes was accepted";
  }
}

TEST(FrameTest, EverySingleBitFlipFails) {
  const std::string buf = FrameOf(TestMessage());
  for (size_t byte = 0; byte < buf.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string corrupt = buf;
      corrupt[byte] = static_cast<char>(corrupt[byte] ^ (1 << bit));
      FrameHeader header;
      std::string payload;
      EXPECT_FALSE(DecodeFrame(corrupt, &header, &payload).ok())
          << "bit " << bit << " of byte " << byte << " was accepted";
    }
  }
}

TEST(FrameTest, WrongVersionRejectedEvenWithValidCrc) {
  std::string buf = FrameOf(TestMessage());
  buf[4] = static_cast<char>(kFrameVersion + 1);
  FixHeaderCrc(&buf);
  FrameHeader header;
  std::string payload;
  EXPECT_FALSE(DecodeFrame(buf, &header, &payload).ok());
}

TEST(FrameTest, BadChannelRejected) {
  std::string buf = FrameOf(TestMessage());
  buf[5] = 7;  // not a wire channel
  FixHeaderCrc(&buf);
  FrameHeader header;
  std::string payload;
  EXPECT_FALSE(DecodeFrame(buf, &header, &payload).ok());
}

TEST(FrameTest, GenerationRoundTrips) {
  const Message msg = TestMessage();
  std::string buf;
  AppendFrame(kWireChannelData, msg, &buf, /*generation=*/7);
  FrameHeader header;
  std::string payload;
  ASSERT_TRUE(DecodeFrame(buf, &header, &payload).ok());
  EXPECT_EQ(header.src_generation, 7u);
  EXPECT_EQ(payload, msg.payload);

  // The default generation is 0 — byte-identical to pre-fencing frames
  // whose reserved field was required to be zero.
  std::string old_style;
  AppendFrame(kWireChannelData, msg, &old_style);
  ASSERT_TRUE(DecodeFrame(old_style, &header, &payload).ok());
  EXPECT_EQ(header.src_generation, 0u);
}

TEST(FrameTest, OversizedLengthRejectedBeforeAllocation) {
  // A header announcing a multi-GiB payload must be rejected from the
  // header alone (the receive path would otherwise try to reserve it).
  std::string head = FrameOf(TestMessage()).substr(0, kFrameHeaderBytes);
  PutLe32(&head, 28, kMaxFramePayload + 1);
  FixHeaderCrc(&head);
  FrameHeader header;
  EXPECT_FALSE(ParseFrameHeader(head.data(), head.size(), &header).ok());
}

TEST(FrameTest, PayloadCrcMismatchRejected) {
  const Message msg = TestMessage();
  std::string buf = FrameOf(msg);
  // Swap in a different payload of the same length; header stays valid.
  for (size_t i = 0; i < msg.payload.size(); ++i) {
    buf[kFrameHeaderBytes + i] = 'x';
  }
  FrameHeader header;
  ASSERT_TRUE(ParseFrameHeader(buf.data(), buf.size(), &header).ok());
  EXPECT_FALSE(
      VerifyFramePayload(header, buf.data() + kFrameHeaderBytes, msg.payload.size())
          .ok());
}

// ---------------------------------------------------------------------------
// Hostile bytes into the engine decoders
// ---------------------------------------------------------------------------

// Every engine payload decoder must return a Status on garbage — never
// crash, assert, or attempt an absurd allocation.
template <typename T>
void FuzzDecoder(const std::string& valid, std::mt19937* rng) {
  std::uniform_int_distribution<size_t> pick_len(0, 96);
  std::uniform_int_distribution<int> pick_byte(0, 255);
  // Pure noise.
  for (int i = 0; i < 200; ++i) {
    std::string noise(pick_len(*rng), '\0');
    for (char& c : noise) c = static_cast<char>(pick_byte(*rng));
    T out;
    (void)T::Decode(noise, &out);
  }
  // Mutations of a valid encoding: bit flips and truncations land on
  // interior length/type fields that pure noise rarely reaches.
  for (int i = 0; i < 400 && !valid.empty(); ++i) {
    std::string mutated = valid;
    switch (i % 3) {
      case 0:
        mutated[static_cast<size_t>(rng->operator()()) % mutated.size()] ^=
            static_cast<char>(1 << (i % 8));
        break;
      case 1:
        mutated.resize(static_cast<size_t>(rng->operator()()) % mutated.size());
        break;
      default:
        // Blow up a random 4-byte window — often a vector length.
        for (int j = 0; j < 4 && mutated.size() > 4; ++j) {
          mutated[static_cast<size_t>(rng->operator()()) % mutated.size()] =
              static_cast<char>(0xFF);
        }
        break;
    }
    T out;
    (void)T::Decode(mutated, &out);
  }
}

TEST(MessageDecodeFuzzTest, HostilePayloadsNeverCrash) {
  std::mt19937 rng(20260806);

  ColumnTaskPlan plan;
  plan.task_id = 42;
  plan.tree_id = 3;
  plan.n_rows = 1000;
  plan.columns = {0, 4, 7};
  FuzzDecoder<ColumnTaskPlan>(plan.Encode(), &rng);

  SubtreeTaskPlan subtree;
  subtree.task_id = 43;
  subtree.columns = {1, 2};
  subtree.column_servers = {0, 1};
  FuzzDecoder<SubtreeTaskPlan>(subtree.Encode(), &rng);

  ColumnTaskResponse response;
  response.task_id = 42;
  response.worker = 1;
  FuzzDecoder<ColumnTaskResponse>(response.Encode(), &rng);

  BestSplitNotify notify;
  notify.task_id = 42;
  notify.is_delegate = 1;
  FuzzDecoder<BestSplitNotify>(notify.Encode(), &rng);

  SubtreeResult result;
  result.task_id = 43;
  result.worker = 2;
  result.tree_bytes = "not actually a tree";
  FuzzDecoder<SubtreeResult>(result.Encode(), &rng);

  IxRequest ix_req;
  ix_req.parent_task = 41;
  ix_req.requester_task = 42;
  ix_req.requester_worker = 0;
  FuzzDecoder<IxRequest>(ix_req.Encode(), &rng);

  IxResponse ix_resp;
  ix_resp.requester_task = 42;
  ix_resp.rows = {1, 5, 9, 200};
  FuzzDecoder<IxResponse>(ix_resp.Encode(), &rng);
  ix_resp.compress = true;
  FuzzDecoder<IxResponse>(ix_resp.Encode(), &rng);

  ColumnDataRequest data_req;
  data_req.task_id = 44;
  data_req.columns = {0, 1};
  data_req.n_rows = 100;
  FuzzDecoder<ColumnDataRequest>(data_req.Encode(), &rng);

  FuzzDecoder<TaskIdOnly>(TaskIdOnly{42}.Encode(), &rng);
  FuzzDecoder<TreeIdOnly>(TreeIdOnly{7}.Encode(), &rng);
}

TEST(MessageDecodeFuzzTest, TreeModelDeserializeRejectsGarbage) {
  std::mt19937 rng(7);
  std::uniform_int_distribution<int> pick_byte(0, 255);
  for (int i = 0; i < 300; ++i) {
    std::string noise(static_cast<size_t>(i % 64), '\0');
    for (char& c : noise) c = static_cast<char>(pick_byte(rng));
    BinaryReader r(noise);
    TreeModel model;
    (void)TreeModel::Deserialize(&r, &model);
  }
}

// ---------------------------------------------------------------------------
// TcpTransport: framing + accounting over real sockets
// ---------------------------------------------------------------------------

struct TcpPair {
  std::unique_ptr<TcpTransport> master;
  std::unique_ptr<TcpTransport> worker;

  explicit TcpPair(int64_t heartbeat_ms = 50, int miss_limit = 20) {
    TcpTransportOptions mo;
    mo.num_workers = 1;
    mo.local_rank = kMasterRank;
    mo.heartbeat_period_ms = heartbeat_ms;
    mo.heartbeat_miss_limit = miss_limit;
    master = std::make_unique<TcpTransport>(mo);
    TcpTransportOptions wo = mo;
    wo.local_rank = 0;
    worker = std::make_unique<TcpTransport>(wo);
  }

  std::vector<std::string> Peers() const {
    return {"127.0.0.1:" + std::to_string(worker->local_port()),
            "127.0.0.1:" + std::to_string(master->local_port())};
  }

  void Connect() {
    ASSERT_TRUE(master->ConnectPeers(Peers()).ok());
    ASSERT_TRUE(worker->ConnectPeers(Peers()).ok());
    ASSERT_TRUE(master->WaitForPeers(10000));
    ASSERT_TRUE(worker->WaitForPeers(10000));
  }

  ~TcpPair() {
    if (worker) worker->Shutdown();
    if (master) master->Shutdown();
  }
};

TEST(TcpTransportTest, DeliversMessagesWithTraceIdAndAccounting) {
  TcpPair pair;
  pair.Connect();

  Message msg;
  msg.src = kMasterRank;
  msg.dst = 0;
  msg.type = 1;
  msg.payload = "hello";
  msg.trace_id = 77;
  ASSERT_TRUE(pair.master->Send(ChannelKind::kTask, msg));

  auto got = pair.worker->task_queue(0).Pop();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->src, kMasterRank);
  EXPECT_EQ(got->dst, 0);
  EXPECT_EQ(got->type, 1u);
  EXPECT_EQ(got->payload, "hello");
  EXPECT_EQ(got->trace_id, 77u);

  // Modeled accounting (payload + kHeaderBytes) is split between the
  // two processes: the sender charges sent, the receiver charges recv.
  const uint64_t charged = 5 + Transport::kHeaderBytes;
  EXPECT_EQ(pair.master->bytes_sent(kMasterRank), charged);
  EXPECT_EQ(pair.master->bytes_received(0), 0u);
  EXPECT_EQ(pair.worker->bytes_received(0), charged);

  // Data channel routes to the worker's data queue.
  msg.type = 21;
  msg.payload = "rows";
  ASSERT_TRUE(pair.master->Send(ChannelKind::kData, msg));
  got = pair.worker->data_queue(0).Pop();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->type, 21u);

  // Reply lands in the master queue.
  Message reply;
  reply.src = 0;
  reply.dst = kMasterRank;
  reply.type = 10;
  reply.payload = "result";
  ASSERT_TRUE(pair.worker->Send(ChannelKind::kTask, reply));
  got = pair.master->master_queue().Pop();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->type, 10u);
  EXPECT_EQ(got->payload, "result");

  // The bounded send buffer saw at least one queued frame.
  NetworkStats stats = pair.master->GetStats();
  ASSERT_EQ(stats.endpoints.size(), 2u);
  EXPECT_GT(stats.endpoints[0].send_buffer_hwm, 0u);
  EXPECT_GT(stats.task_payload_bytes.count, 0u);
}

TEST(TcpTransportTest, LocalDeliveryBypassesSockets) {
  TcpPair pair;
  pair.Connect();
  Message msg;
  msg.src = 0;
  msg.dst = 0;
  msg.type = 20;
  msg.payload = "self";
  ASSERT_TRUE(pair.worker->Send(ChannelKind::kTask, msg));
  auto got = pair.worker->task_queue(0).Pop();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->payload, "self");
}

TEST(TcpTransportTest, CrashedPeerDropsTraffic) {
  TcpPair pair;
  pair.Connect();
  pair.master->SetCrashed(0);
  EXPECT_TRUE(pair.master->IsCrashed(0));
  Message msg;
  msg.src = kMasterRank;
  msg.dst = 0;
  msg.type = 1;
  msg.payload = "late";
  EXPECT_FALSE(pair.master->Send(ChannelKind::kTask, msg));
  EXPECT_GE(pair.master->msgs_dropped(0), 1u);
}

TEST(TcpTransportTest, HeartbeatDetectsDeadPeer) {
  TcpPair pair(/*heartbeat_ms=*/10, /*miss_limit=*/4);
  std::atomic<int> dead_rank{kMasterRank - 1};
  pair.master->SetPeerDeadCallback([&](int rank) { dead_rank.store(rank); });
  pair.Connect();

  // Abrupt teardown: the worker process "vanishes" — stops
  // heartbeating and closes its sockets without any goodbye protocol.
  pair.worker->Shutdown();

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (dead_rank.load() != 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(dead_rank.load(), 0);
  EXPECT_TRUE(pair.master->IsCrashed(0));
  NetworkStats stats = pair.master->GetStats();
  EXPECT_GT(stats.endpoints[0].heartbeat_misses, 0u);
}

TEST(TcpTransportTest, PeerDeclaredDeadExactlyOnce) {
  TcpPair pair(/*heartbeat_ms=*/10, /*miss_limit=*/4);
  std::atomic<int> dead_calls{0};
  pair.master->SetPeerDeadCallback([&](int rank) {
    if (rank == 0) dead_calls.fetch_add(1);
  });
  pair.Connect();
  pair.worker->Shutdown();

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (dead_calls.load() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(dead_calls.load(), 1);
  // Keep the heartbeat thread running well past more miss windows, and
  // poke the crash path again: the callback must never re-fire.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  pair.master->SetCrashed(0);
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_EQ(dead_calls.load(), 1);
}

TEST(TcpTransportTest, FramesFromDeadPeerAreFencedAndCounted) {
  TcpPair pair;
  pair.Connect();
  Counter* fenced = MetricsRegistry::Global().GetCounter("engine.fenced_msgs");
  const uint64_t before = fenced->value();

  // The master declares worker 0 dead; the worker does not know (a
  // healed partition's zombie) and keeps sending engine frames. They
  // must be counted and dropped before reaching the mailboxes.
  pair.master->SetCrashed(0);
  while (pair.master->master_queue().TryPop().has_value()) {
  }
  Message msg;
  msg.src = 0;
  msg.dst = kMasterRank;
  msg.type = 10;
  msg.payload = "zombie result";
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (fenced->value() == before &&
         std::chrono::steady_clock::now() < deadline) {
    pair.worker->Send(ChannelKind::kTask, msg);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GT(fenced->value(), before);
  EXPECT_FALSE(pair.master->master_queue().TryPop().has_value());
}

TEST(TcpTransportTest, StaleGenerationFramesAreFenced) {
  // Incarnation 2 of worker 0 handshakes with the master; a lingering
  // incarnation-0 connection then delivers a frame. The master must
  // fence the stale generation rather than hand it to the engine.
  TcpTransportOptions mo;
  mo.num_workers = 1;
  mo.local_rank = kMasterRank;
  auto master = std::make_unique<TcpTransport>(mo);

  TcpTransportOptions wo = mo;
  wo.local_rank = 0;
  wo.generation = 2;
  auto worker_new = std::make_unique<TcpTransport>(wo);

  const std::vector<std::string> peers = {
      "127.0.0.1:" + std::to_string(worker_new->local_port()),
      "127.0.0.1:" + std::to_string(master->local_port())};
  ASSERT_TRUE(master->ConnectPeers(peers).ok());
  ASSERT_TRUE(worker_new->ConnectPeers(peers).ok());
  ASSERT_TRUE(master->WaitForPeers(10000));
  ASSERT_TRUE(worker_new->WaitForPeers(10000));

  // A generation-2 frame flows through normally.
  Message msg;
  msg.src = 0;
  msg.dst = kMasterRank;
  msg.type = 10;
  msg.payload = "fresh";
  ASSERT_TRUE(worker_new->Send(ChannelKind::kTask, msg));
  auto got = master->master_queue().Pop();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->payload, "fresh");

  // The zombie incarnation (default generation 0) dials in and sends.
  TcpTransportOptions zo = wo;
  zo.generation = 0;
  auto worker_old = std::make_unique<TcpTransport>(zo);
  ASSERT_TRUE(worker_old->ConnectPeers(peers).ok());
  Counter* fenced = MetricsRegistry::Global().GetCounter("engine.fenced_msgs");
  const uint64_t before = fenced->value();
  msg.payload = "stale";
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (fenced->value() == before &&
         std::chrono::steady_clock::now() < deadline) {
    worker_old->Send(ChannelKind::kTask, msg);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GT(fenced->value(), before);
  EXPECT_FALSE(master->master_queue().TryPop().has_value());

  worker_old->Shutdown();
  worker_new->Shutdown();
  master->Shutdown();
}

// ---------------------------------------------------------------------------
// End-to-end training over loopback TCP (all ranks in one process,
// each with its own TcpTransport — real sockets, real framing)
// ---------------------------------------------------------------------------

DataTable MakeClusterData(size_t rows, uint64_t seed) {
  DatasetProfile p;
  p.rows = rows;
  p.num_numeric = 6;
  p.num_categorical = 2;
  p.num_classes = 3;
  p.noise = 0.08;
  return GenerateTable(p, seed);
}

std::string SerializeForest(const ForestModel& forest) {
  BinaryWriter w;
  forest.Serialize(&w);
  return w.buffer();
}

// One rank of the in-one-process TCP cluster.
struct TcpNode {
  std::unique_ptr<TcpTransport> transport;
  PeakGauge task_memory;
  BusyClock busy;
  std::unique_ptr<Worker> worker;
};

struct TcpCluster {
  std::shared_ptr<const DataTable> table;
  EngineConfig cfg;
  std::unique_ptr<TcpTransport> master_tx;
  std::unique_ptr<Master> master;
  std::vector<std::unique_ptr<TcpNode>> nodes;

  TcpCluster(DataTable data, const EngineConfig& config, int64_t heartbeat_ms,
             int miss_limit)
      : table(std::make_shared<const DataTable>(std::move(data))),
        cfg(config) {
    auto make_options = [&](int rank) {
      TcpTransportOptions o;
      o.num_workers = cfg.num_workers;
      o.local_rank = rank;
      o.heartbeat_period_ms = heartbeat_ms;
      o.heartbeat_miss_limit = miss_limit;
      return o;
    };
    master_tx = std::make_unique<TcpTransport>(make_options(kMasterRank));
    for (int w = 0; w < cfg.num_workers; ++w) {
      auto node = std::make_unique<TcpNode>();
      node->transport = std::make_unique<TcpTransport>(make_options(w));
      nodes.push_back(std::move(node));
    }

    std::vector<std::string> peers;
    for (int w = 0; w < cfg.num_workers; ++w) {
      peers.push_back("127.0.0.1:" +
                      std::to_string(nodes[w]->transport->local_port()));
    }
    peers.push_back("127.0.0.1:" + std::to_string(master_tx->local_port()));

    master = std::make_unique<Master>(table, master_tx.get(), cfg);
    master_tx->SetPeerDeadCallback([this](int rank) {
      if (rank != kMasterRank) master->OnWorkerCrash(rank);
    });

    TS_CHECK(master_tx->ConnectPeers(peers).ok());
    for (auto& node : nodes) {
      TS_CHECK(node->transport->ConnectPeers(peers).ok());
    }
    TS_CHECK(master_tx->WaitForPeers(20000)) << "workers did not connect";
    for (auto& node : nodes) {
      TS_CHECK(node->transport->WaitForPeers(20000)) << "peers did not connect";
    }

    for (int w = 0; w < cfg.num_workers; ++w) {
      TcpNode& node = *nodes[w];
      node.worker = std::make_unique<Worker>(
          w, table, node.transport.get(), cfg.compers_per_worker,
          &node.task_memory, &node.busy, cfg.compress_transfers);
    }
    master->Start();
    for (auto& node : nodes) node->worker->Start();
  }

  // Simulates a SIGKILL of worker `w`: its transport goes silent
  // mid-job with no goodbye; its threads are reaped like an exiting
  // process.
  void KillWorker(int w) {
    nodes[w]->transport->Shutdown();
    nodes[w]->worker->Join();
  }

  ForestModel Train(const ForestJobSpec& spec) {
    uint32_t job = master->Submit(spec);
    return master->Wait(job);
  }

  ~TcpCluster() {
    for (int w = 0; w < cfg.num_workers; ++w) {
      if (!master_tx->IsCrashed(w)) {
        master_tx->Send(ChannelKind::kTask,
                        Message{kMasterRank, w,
                                static_cast<uint32_t>(MsgType::kShutdown), ""});
      }
    }
    // Workers exit their task loop on kShutdown (closing their local
    // queues); give the frames time to arrive, then reap everything.
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    for (auto& node : nodes) {
      node->transport->CloseAll();
      if (node->worker) node->worker->Join();
      node->transport->Shutdown();
    }
    master->Stop();
    master_tx->Shutdown();
  }
};

ForestJobSpec SmallJob() {
  ForestJobSpec spec;
  spec.num_trees = 6;
  spec.tree.max_depth = 8;
  spec.tree.min_leaf = 2;
  spec.column_ratio = 0.8;
  spec.seed = 99;
  return spec;
}

EngineConfig SmallClusterConfig(int workers) {
  EngineConfig cfg;
  cfg.num_workers = workers;
  cfg.compers_per_worker = 2;
  // Force the column-task path (nodes above tau_d rows fan out over
  // workers) so the wire carries I_x pulls and column responses, not
  // just whole-subtree shipping.
  cfg.tau_d = 400;
  cfg.tau_dfs = 1200;
  return cfg;
}

TEST(TcpClusterTest, TrainsByteIdenticalToInProcessAndSerial) {
  DataTable data = MakeClusterData(3000, 301);
  const EngineConfig cfg = SmallClusterConfig(2);
  const ForestJobSpec spec = SmallJob();

  ForestModel tcp_forest;
  {
    TcpCluster cluster(MakeClusterData(3000, 301), cfg, 50, 20);
    tcp_forest = cluster.Train(spec);
  }
  ASSERT_EQ(tcp_forest.num_trees(), spec.num_trees);

  // Same engine, simulated in-process network.
  TreeServerCluster inproc(data, cfg);
  ForestModel inproc_forest = inproc.Wait(inproc.Submit(spec));

  EXPECT_EQ(SerializeForest(tcp_forest), SerializeForest(inproc_forest))
      << "TCP and in-process transports must produce identical bytes";

  // And both match the serial reference trainer exactly: Canonicalize
  // re-lays task-completion order into the serial creation order.
  ForestModel reference = TrainForestSerial(data, spec, 2);
  EXPECT_EQ(SerializeForest(tcp_forest), SerializeForest(reference))
      << "distributed forest must serialize identically to the serial one";
}

TEST(TcpClusterTest, HistogramModeTrainsByteIdenticalAcrossTransports) {
  // Same parity contract as above, but with the histogram split kernel:
  // classification histograms are integer counts, so every transport
  // (and the worker-side sibling-subtraction cache) is bit-exact.
  DataTable data = MakeClusterData(3000, 301);
  const EngineConfig cfg = SmallClusterConfig(2);
  ForestJobSpec spec = SmallJob();
  spec.tree.split_method = SplitMethod::kHistogram;
  spec.tree.max_bins = 64;

  ForestModel tcp_forest;
  {
    TcpCluster cluster(MakeClusterData(3000, 301), cfg, 50, 20);
    tcp_forest = cluster.Train(spec);
  }
  ASSERT_EQ(tcp_forest.num_trees(), spec.num_trees);

  TreeServerCluster inproc(data, cfg);
  ForestModel inproc_forest = inproc.Wait(inproc.Submit(spec));
  EXPECT_EQ(SerializeForest(tcp_forest), SerializeForest(inproc_forest))
      << "TCP and in-process histogram training must produce identical bytes";

  ForestModel reference = TrainForestSerial(data, spec, 2);
  EXPECT_EQ(SerializeForest(tcp_forest), SerializeForest(reference))
      << "histogram-mode distributed forest must match the serial one";
}

TEST(TcpClusterTest, SurvivesKilledWorkerMidJob) {
  DataTable data = MakeClusterData(3000, 301);
  EngineConfig cfg = SmallClusterConfig(3);
  cfg.replication = 2;
  ForestJobSpec spec = SmallJob();
  spec.num_trees = 8;

  ForestModel forest;
  uint64_t heartbeat_misses = 0;
  {
    TcpCluster cluster(MakeClusterData(3000, 301), cfg, 10, 5);
    uint32_t job = cluster.master->Submit(spec);
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    cluster.KillWorker(2);
    forest = cluster.master->Wait(job);
    heartbeat_misses =
        cluster.master_tx->GetStats().endpoints[2].heartbeat_misses;
    EXPECT_TRUE(cluster.master_tx->IsCrashed(2));
  }
  ASSERT_EQ(forest.num_trees(), spec.num_trees);
  EXPECT_GT(heartbeat_misses, 0u);

  ForestModel reference = TrainForestSerial(data, spec, 2);
  EXPECT_EQ(SerializeForest(forest), SerializeForest(reference))
      << "post-crash forest must still match the reference bytes";
}

}  // namespace
}  // namespace treeserver
