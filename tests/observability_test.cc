#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/metrics_registry.h"
#include "common/trace.h"
#include "engine/cluster.h"
#include "engine/stats_reporter.h"
#include "table/datasets.h"

namespace treeserver {
namespace {

TEST(HistogramTest, BucketBoundaries) {
  EXPECT_EQ(Histogram::BucketIndex(0), 0);
  EXPECT_EQ(Histogram::BucketIndex(1), 1);
  EXPECT_EQ(Histogram::BucketIndex(2), 2);
  EXPECT_EQ(Histogram::BucketIndex(3), 2);
  EXPECT_EQ(Histogram::BucketIndex(4), 3);
  EXPECT_EQ(Histogram::BucketIndex(1023), 10);
  EXPECT_EQ(Histogram::BucketIndex(1024), 11);
  EXPECT_EQ(Histogram::BucketIndex(~uint64_t{0}), 64);

  EXPECT_EQ(Histogram::BucketLowerBound(0), 0u);
  EXPECT_EQ(Histogram::BucketUpperBound(0), 0u);
  for (int i = 1; i < Histogram::kNumBuckets; ++i) {
    EXPECT_EQ(Histogram::BucketIndex(Histogram::BucketLowerBound(i)), i)
        << "bucket " << i;
    EXPECT_EQ(Histogram::BucketIndex(Histogram::BucketUpperBound(i)), i)
        << "bucket " << i;
  }
  EXPECT_EQ(Histogram::BucketUpperBound(64), ~uint64_t{0});
}

TEST(HistogramTest, AddAndAccessors) {
  Histogram h;
  h.Add(0);
  h.Add(1);
  h.Add(5);
  h.Add(5);
  h.Add(100);
  EXPECT_EQ(h.Count(), 5u);
  EXPECT_EQ(h.Sum(), 111u);
  EXPECT_EQ(h.Max(), 100u);
  EXPECT_DOUBLE_EQ(h.Mean(), 111.0 / 5.0);
  EXPECT_EQ(h.bucket_count(0), 1u);  // 0
  EXPECT_EQ(h.bucket_count(1), 1u);  // 1
  EXPECT_EQ(h.bucket_count(3), 2u);  // 4..7
  EXPECT_EQ(h.bucket_count(7), 1u);  // 64..127
  h.Reset();
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.Max(), 0u);
  EXPECT_EQ(h.bucket_count(3), 0u);
}

TEST(HistogramTest, ConcurrentAddLosesNothing) {
  Histogram h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.Add(static_cast<uint64_t>(t * kPerThread + i));
      }
    });
  }
  for (auto& th : threads) th.join();

  constexpr uint64_t kTotal = uint64_t{kThreads} * kPerThread;
  EXPECT_EQ(h.Count(), kTotal);
  EXPECT_EQ(h.Sum(), kTotal * (kTotal - 1) / 2);
  EXPECT_EQ(h.Max(), kTotal - 1);
  uint64_t bucket_total = 0;
  for (int i = 0; i < Histogram::kNumBuckets; ++i) {
    bucket_total += h.bucket_count(i);
  }
  EXPECT_EQ(bucket_total, kTotal);
}

TEST(HistogramTest, SnapshotAndMerge) {
  Histogram a;
  Histogram b;
  a.Add(1);
  a.Add(10);
  b.Add(100);
  b.Add(1000);

  Histogram::Snapshot sa = a.snapshot();
  Histogram::Snapshot sb = b.snapshot();
  EXPECT_EQ(sa.count, 2u);
  EXPECT_EQ(sa.sum, 11u);
  EXPECT_EQ(sa.max, 10u);

  sa.Merge(sb);
  EXPECT_EQ(sa.count, 4u);
  EXPECT_EQ(sa.sum, 1111u);
  EXPECT_EQ(sa.max, 1000u);
  uint64_t bucket_total = 0;
  for (uint64_t c : sa.buckets) bucket_total += c;
  EXPECT_EQ(bucket_total, 4u);
}

TEST(HistogramTest, PercentileEstimates) {
  Histogram h;
  for (int i = 0; i < 90; ++i) h.Add(10);   // bucket [8, 15]
  for (int i = 0; i < 10; ++i) h.Add(900);  // bucket [512, 1023]
  Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.Percentile(0.5), 15u);    // upper bound of 10's bucket
  EXPECT_EQ(s.Percentile(0.99), 900u);  // capped at the observed max
  Histogram::Snapshot empty;
  EXPECT_EQ(empty.Percentile(0.5), 0u);
}

TEST(PeakGaugeTest, TracksPeakUnderConcurrentAddSub) {
  PeakGauge g;
  constexpr int kThreads = 8;
  constexpr int kIters = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&g] {
      for (int i = 0; i < kIters; ++i) {
        g.Add(3);
        g.Sub(3);
      }
    });
  }
  for (auto& th : threads) th.join();
  // All adds are balanced by subs, so the gauge must settle at 0, and
  // the peak can never exceed every thread holding its +3 at once.
  EXPECT_EQ(g.value(), 0);
  EXPECT_GE(g.peak(), 3);
  EXPECT_LE(g.peak(), 3 * kThreads);
}

TEST(MetricsRegistryTest, StablePointersAndSnapshot) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("test.counter");
  EXPECT_EQ(reg.GetCounter("test.counter"), c);
  c->Add(7);
  reg.GetGauge("test.gauge")->Add(5);
  reg.GetHistogram("test.hist")->Add(42);

  std::vector<MetricSnapshot> snap = reg.Snapshot();
  ASSERT_EQ(snap.size(), 3u);
  bool saw_counter = false;
  for (const MetricSnapshot& m : snap) {
    if (m.name == "test.counter") {
      saw_counter = true;
      EXPECT_EQ(m.kind, MetricSnapshot::Kind::kCounter);
      EXPECT_EQ(m.count, 7u);
    }
  }
  EXPECT_TRUE(saw_counter);

  std::string text = reg.DumpText();
  EXPECT_NE(text.find("test.counter"), std::string::npos);
  std::string json = reg.DumpJson();
  EXPECT_NE(json.find("\"test.hist\""), std::string::npos);

  reg.ResetAll();
  EXPECT_EQ(reg.GetCounter("test.counter")->value(), 0u);
}

class TracerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::Global().Clear();
    Tracer::Global().Enable();
  }
  void TearDown() override {
    Tracer::Global().Disable();
    Tracer::Global().Clear();
  }
};

TEST_F(TracerTest, SpanAndAsyncEventsExportAsChromeJson) {
  {
    TraceSpan span(TraceCat::kColumnTask, "compute-column", 42);
    span.SetArg("n_rows", 1234);
  }
  TraceAsyncBegin(TraceCat::kSubtreeTask, "task", 42);
  TraceAsyncEnd(TraceCat::kSubtreeTask, "task", 42);
  TraceInstant(TraceCat::kTreeComplete, "tree-complete", 7);
  EXPECT_EQ(Tracer::Global().event_count(), 4u);

  std::string json = Tracer::Global().ToChromeJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"column-task\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"subtree-task\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"b\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"e\""), std::string::npos);
  EXPECT_NE(json.find("\"id\":\"0x2a\""), std::string::npos);
  EXPECT_NE(json.find("\"n_rows\":1234"), std::string::npos);
}

TEST_F(TracerTest, DisabledTracerRecordsNothing) {
  Tracer::Global().Disable();
  {
    TraceSpan span(TraceCat::kNetSend, "send", 1);
  }
  TraceInstant(TraceCat::kPlanInsert, "plan-head", 1);
  EXPECT_EQ(Tracer::Global().event_count(), 0u);
}

TEST_F(TracerTest, ThreadsGetDistinctTidsInExport) {
  TraceInstant(TraceCat::kPlanInsert, "main-thread");
  std::thread other([] { TraceInstant(TraceCat::kPlanInsert, "other-thread"); });
  other.join();
  EXPECT_EQ(Tracer::Global().event_count(), 2u);
  int tid_here = CurrentThreadId();
  std::string json = Tracer::Global().ToChromeJson();
  EXPECT_NE(json.find("\"tid\":" + std::to_string(tid_here)),
            std::string::npos);
}

TEST_F(TracerTest, WriteChromeTraceProducesLoadableFile) {
  TraceInstant(TraceCat::kWorkerAssign, "schedule", 3);
  std::string path = ::testing::TempDir() + "trace_test.json";
  Status st = Tracer::Global().WriteChromeTrace(path);
  ASSERT_TRUE(st.ok()) << st.ToString();
  FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char buf[16] = {};
  size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  std::remove(path.c_str());
  ASSERT_GT(n, 0u);
  EXPECT_EQ(buf[0], '{');
}

DataTable MakeData(size_t rows) {
  DatasetProfile p;
  p.rows = rows;
  p.num_numeric = 6;
  p.num_categorical = 2;
  p.num_classes = 3;
  p.noise = 0.08;
  p.concept_depth = 6;
  return GenerateTable(p, 11);
}

EngineConfig SmallConfig() {
  EngineConfig cfg;
  cfg.num_workers = 3;
  cfg.compers_per_worker = 2;
  cfg.replication = 2;
  // Small thresholds so both task kinds exercise on small data.
  cfg.tau_d = 600;
  cfg.tau_dfs = 1500;
  return cfg;
}

TEST(EngineStatsTest, SnapshotCoversMasterWorkersAndNetwork) {
  DataTable t = MakeData(3000);
  TreeServerCluster cluster(t, SmallConfig());
  ForestJobSpec spec;
  spec.num_trees = 4;
  spec.tree.max_depth = 8;
  cluster.TrainForest(spec);

  EngineStats stats = cluster.GetEngineStats();
  EXPECT_EQ(stats.master.jobs_total, 1u);
  EXPECT_EQ(stats.master.jobs_completed, 1u);
  EXPECT_EQ(stats.master.trees_completed, 4u);
  EXPECT_GT(stats.master.tasks_scheduled, 0u);
  EXPECT_EQ(stats.master.tasks_in_flight, 0u);
  EXPECT_EQ(stats.master.npool, cluster.config().npool);
  ASSERT_EQ(stats.master.predicted_load.size(), 3u);
  ASSERT_EQ(stats.workers.size(), 3u);
  uint64_t computed = 0;
  for (const WorkerStats& w : stats.workers) computed += w.tasks_computed;
  EXPECT_GT(computed, 0u);
  // endpoints = workers + master; everyone talked to someone.
  ASSERT_EQ(stats.network.endpoints.size(), 4u);
  EXPECT_GT(stats.network.endpoints.back().bytes_sent, 0u);
  EXPECT_GT(stats.network.task_payload_bytes.count, 0u);
  EXPECT_GE(stats.task_memory_peak, stats.task_memory_bytes);

  std::string report = FormatEngineStats(stats);
  EXPECT_NE(report.find("bplan="), std::string::npos);
  EXPECT_NE(report.find("task payload bytes"), std::string::npos);
}

TEST(EngineStatsTest, TraceCapturesTaskLifecyclesAcrossEngine) {
  Tracer::Global().Clear();
  Tracer::Global().Enable();
  {
    DataTable t = MakeData(3000);
    TreeServerCluster cluster(t, SmallConfig());
    ForestJobSpec spec;
    spec.num_trees = 2;
    spec.tree.max_depth = 8;
    cluster.TrainForest(spec);
  }
  Tracer::Global().Disable();

  std::string json = Tracer::Global().ToChromeJson();
  Tracer::Global().Clear();
  EXPECT_NE(json.find("\"cat\":\"column-task\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"subtree-task\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"net-send\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"plan-insert\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"worker-assign\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"tree-complete\""), std::string::npos);
  // Async lifecycle pairs are keyed by task id.
  EXPECT_NE(json.find("\"ph\":\"b\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"e\""), std::string::npos);
}

TEST(EngineStatsTest, StatsReporterEmitsAtCompletion) {
  DataTable t = MakeData(3000);
  EngineConfig cfg = SmallConfig();
  cfg.stats_period_ms = 50;
  TreeServerCluster cluster(t, cfg);
  ForestJobSpec spec;
  spec.num_trees = 2;
  spec.tree.max_depth = 7;
  ForestModel forest = cluster.TrainForest(spec);
  EXPECT_EQ(forest.num_trees(), 2u);
  // The reporter thread is exercised for liveness (output goes to
  // stderr); stats must still be coherent while it runs.
  EngineStats stats = cluster.GetEngineStats();
  EXPECT_EQ(stats.master.trees_completed, 2u);
}

}  // namespace
}  // namespace treeserver
