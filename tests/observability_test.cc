#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/clock_sync.h"
#include "common/http_server.h"
#include "common/json.h"
#include "common/metrics.h"
#include "common/metrics_registry.h"
#include "common/prometheus.h"
#include "common/trace.h"
#include "common/trace_merge.h"
#include "engine/cluster.h"
#include "engine/messages.h"
#include "engine/stats_reporter.h"
#include "table/datasets.h"

namespace treeserver {
namespace {

TEST(HistogramTest, BucketBoundaries) {
  EXPECT_EQ(Histogram::BucketIndex(0), 0);
  EXPECT_EQ(Histogram::BucketIndex(1), 1);
  EXPECT_EQ(Histogram::BucketIndex(2), 2);
  EXPECT_EQ(Histogram::BucketIndex(3), 2);
  EXPECT_EQ(Histogram::BucketIndex(4), 3);
  EXPECT_EQ(Histogram::BucketIndex(1023), 10);
  EXPECT_EQ(Histogram::BucketIndex(1024), 11);
  EXPECT_EQ(Histogram::BucketIndex(~uint64_t{0}), 64);

  EXPECT_EQ(Histogram::BucketLowerBound(0), 0u);
  EXPECT_EQ(Histogram::BucketUpperBound(0), 0u);
  for (int i = 1; i < Histogram::kNumBuckets; ++i) {
    EXPECT_EQ(Histogram::BucketIndex(Histogram::BucketLowerBound(i)), i)
        << "bucket " << i;
    EXPECT_EQ(Histogram::BucketIndex(Histogram::BucketUpperBound(i)), i)
        << "bucket " << i;
  }
  EXPECT_EQ(Histogram::BucketUpperBound(64), ~uint64_t{0});
}

TEST(HistogramTest, AddAndAccessors) {
  Histogram h;
  h.Add(0);
  h.Add(1);
  h.Add(5);
  h.Add(5);
  h.Add(100);
  EXPECT_EQ(h.Count(), 5u);
  EXPECT_EQ(h.Sum(), 111u);
  EXPECT_EQ(h.Max(), 100u);
  EXPECT_DOUBLE_EQ(h.Mean(), 111.0 / 5.0);
  EXPECT_EQ(h.bucket_count(0), 1u);  // 0
  EXPECT_EQ(h.bucket_count(1), 1u);  // 1
  EXPECT_EQ(h.bucket_count(3), 2u);  // 4..7
  EXPECT_EQ(h.bucket_count(7), 1u);  // 64..127
  h.Reset();
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.Max(), 0u);
  EXPECT_EQ(h.bucket_count(3), 0u);
}

TEST(HistogramTest, ConcurrentAddLosesNothing) {
  Histogram h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.Add(static_cast<uint64_t>(t * kPerThread + i));
      }
    });
  }
  for (auto& th : threads) th.join();

  constexpr uint64_t kTotal = uint64_t{kThreads} * kPerThread;
  EXPECT_EQ(h.Count(), kTotal);
  EXPECT_EQ(h.Sum(), kTotal * (kTotal - 1) / 2);
  EXPECT_EQ(h.Max(), kTotal - 1);
  uint64_t bucket_total = 0;
  for (int i = 0; i < Histogram::kNumBuckets; ++i) {
    bucket_total += h.bucket_count(i);
  }
  EXPECT_EQ(bucket_total, kTotal);
}

TEST(HistogramTest, SnapshotAndMerge) {
  Histogram a;
  Histogram b;
  a.Add(1);
  a.Add(10);
  b.Add(100);
  b.Add(1000);

  Histogram::Snapshot sa = a.snapshot();
  Histogram::Snapshot sb = b.snapshot();
  EXPECT_EQ(sa.count, 2u);
  EXPECT_EQ(sa.sum, 11u);
  EXPECT_EQ(sa.max, 10u);

  sa.Merge(sb);
  EXPECT_EQ(sa.count, 4u);
  EXPECT_EQ(sa.sum, 1111u);
  EXPECT_EQ(sa.max, 1000u);
  uint64_t bucket_total = 0;
  for (uint64_t c : sa.buckets) bucket_total += c;
  EXPECT_EQ(bucket_total, 4u);
}

TEST(HistogramTest, PercentileEstimates) {
  Histogram h;
  for (int i = 0; i < 90; ++i) h.Add(10);   // bucket [8, 15]
  for (int i = 0; i < 10; ++i) h.Add(900);  // bucket [512, 1023]
  Histogram::Snapshot s = h.snapshot();
  // Interpolated within the bucket, not snapped to its upper bound.
  EXPECT_EQ(s.Percentile(0.5), 11u);
  EXPECT_EQ(s.Percentile(0.99), 861u);
  EXPECT_EQ(s.Percentile(1.0), 900u);  // p100 is the observed max
  Histogram::Snapshot empty;
  EXPECT_EQ(empty.Percentile(0.5), 0u);
}

TEST(HistogramTest, TailPercentilesStayBelowMaxOnHeavyTail) {
  // The log-bucketed histogram's tail buckets double in width; without
  // sub-bucket interpolation every percentile above the body collapses
  // onto the observed max (p99 == max in the serve benchmark output).
  Histogram h;
  for (int i = 0; i < 985; ++i) h.Add(100);
  for (int i = 0; i < 15; ++i) h.Add(25000 + 100 * i);  // bucket [16384, 32767]
  Histogram::Snapshot s = h.snapshot();
  const uint64_t p99 = s.Percentile(0.99);
  EXPECT_GE(p99, 16384u);  // in the tail bucket
  EXPECT_LT(p99, s.max);   // but not pinned to its end
  EXPECT_EQ(s.Percentile(1.0), s.max);
}

TEST(PeakGaugeTest, TracksPeakUnderConcurrentAddSub) {
  PeakGauge g;
  constexpr int kThreads = 8;
  constexpr int kIters = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&g] {
      for (int i = 0; i < kIters; ++i) {
        g.Add(3);
        g.Sub(3);
      }
    });
  }
  for (auto& th : threads) th.join();
  // All adds are balanced by subs, so the gauge must settle at 0, and
  // the peak can never exceed every thread holding its +3 at once.
  EXPECT_EQ(g.value(), 0);
  EXPECT_GE(g.peak(), 3);
  EXPECT_LE(g.peak(), 3 * kThreads);
}

TEST(MetricsRegistryTest, StablePointersAndSnapshot) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("test.counter");
  EXPECT_EQ(reg.GetCounter("test.counter"), c);
  c->Add(7);
  reg.GetGauge("test.gauge")->Add(5);
  reg.GetHistogram("test.hist")->Add(42);

  std::vector<MetricSnapshot> snap = reg.Snapshot();
  ASSERT_EQ(snap.size(), 3u);
  bool saw_counter = false;
  for (const MetricSnapshot& m : snap) {
    if (m.name == "test.counter") {
      saw_counter = true;
      EXPECT_EQ(m.kind, MetricSnapshot::Kind::kCounter);
      EXPECT_EQ(m.count, 7u);
    }
  }
  EXPECT_TRUE(saw_counter);

  std::string text = reg.DumpText();
  EXPECT_NE(text.find("test.counter"), std::string::npos);
  std::string json = reg.DumpJson();
  EXPECT_NE(json.find("\"test.hist\""), std::string::npos);

  reg.ResetAll();
  EXPECT_EQ(reg.GetCounter("test.counter")->value(), 0u);
}

class TracerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::Global().Clear();
    Tracer::Global().Enable();
  }
  void TearDown() override {
    Tracer::Global().Disable();
    Tracer::Global().Clear();
  }
};

TEST_F(TracerTest, SpanAndAsyncEventsExportAsChromeJson) {
  {
    TraceSpan span(TraceCat::kColumnTask, "compute-column", 42);
    span.SetArg("n_rows", 1234);
  }
  TraceAsyncBegin(TraceCat::kSubtreeTask, "task", 42);
  TraceAsyncEnd(TraceCat::kSubtreeTask, "task", 42);
  TraceInstant(TraceCat::kTreeComplete, "tree-complete", 7);
  EXPECT_EQ(Tracer::Global().event_count(), 4u);

  std::string json = Tracer::Global().ToChromeJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"column-task\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"subtree-task\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"b\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"e\""), std::string::npos);
  EXPECT_NE(json.find("\"id\":\"0x2a\""), std::string::npos);
  EXPECT_NE(json.find("\"n_rows\":1234"), std::string::npos);
}

TEST_F(TracerTest, DisabledTracerRecordsNothing) {
  Tracer::Global().Disable();
  {
    TraceSpan span(TraceCat::kNetSend, "send", 1);
  }
  TraceInstant(TraceCat::kPlanInsert, "plan-head", 1);
  EXPECT_EQ(Tracer::Global().event_count(), 0u);
}

TEST_F(TracerTest, ThreadsGetDistinctTidsInExport) {
  TraceInstant(TraceCat::kPlanInsert, "main-thread");
  std::thread other([] { TraceInstant(TraceCat::kPlanInsert, "other-thread"); });
  other.join();
  EXPECT_EQ(Tracer::Global().event_count(), 2u);
  int tid_here = CurrentThreadId();
  std::string json = Tracer::Global().ToChromeJson();
  EXPECT_NE(json.find("\"tid\":" + std::to_string(tid_here)),
            std::string::npos);
}

TEST_F(TracerTest, WriteChromeTraceProducesLoadableFile) {
  TraceInstant(TraceCat::kWorkerAssign, "schedule", 3);
  std::string path = ::testing::TempDir() + "trace_test.json";
  Status st = Tracer::Global().WriteChromeTrace(path);
  ASSERT_TRUE(st.ok()) << st.ToString();
  FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char buf[16] = {};
  size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  std::remove(path.c_str());
  ASSERT_GT(n, 0u);
  EXPECT_EQ(buf[0], '{');
}

DataTable MakeData(size_t rows) {
  DatasetProfile p;
  p.rows = rows;
  p.num_numeric = 6;
  p.num_categorical = 2;
  p.num_classes = 3;
  p.noise = 0.08;
  p.concept_depth = 6;
  return GenerateTable(p, 11);
}

EngineConfig SmallConfig() {
  EngineConfig cfg;
  cfg.num_workers = 3;
  cfg.compers_per_worker = 2;
  cfg.replication = 2;
  // Small thresholds so both task kinds exercise on small data.
  cfg.tau_d = 600;
  cfg.tau_dfs = 1500;
  return cfg;
}

TEST(EngineStatsTest, SnapshotCoversMasterWorkersAndNetwork) {
  DataTable t = MakeData(3000);
  TreeServerCluster cluster(t, SmallConfig());
  ForestJobSpec spec;
  spec.num_trees = 4;
  spec.tree.max_depth = 8;
  cluster.TrainForest(spec);

  EngineStats stats = cluster.GetEngineStats();
  EXPECT_EQ(stats.master.jobs_total, 1u);
  EXPECT_EQ(stats.master.jobs_completed, 1u);
  EXPECT_EQ(stats.master.trees_completed, 4u);
  EXPECT_GT(stats.master.tasks_scheduled, 0u);
  EXPECT_EQ(stats.master.tasks_in_flight, 0u);
  EXPECT_EQ(stats.master.npool, cluster.config().npool);
  ASSERT_EQ(stats.master.predicted_load.size(), 3u);
  ASSERT_EQ(stats.workers.size(), 3u);
  uint64_t computed = 0;
  for (const WorkerStats& w : stats.workers) computed += w.tasks_computed;
  EXPECT_GT(computed, 0u);
  // endpoints = workers + master; everyone talked to someone.
  ASSERT_EQ(stats.network.endpoints.size(), 4u);
  EXPECT_GT(stats.network.endpoints.back().bytes_sent, 0u);
  EXPECT_GT(stats.network.task_payload_bytes.count, 0u);
  EXPECT_GE(stats.task_memory_peak, stats.task_memory_bytes);

  std::string report = FormatEngineStats(stats);
  EXPECT_NE(report.find("bplan="), std::string::npos);
  EXPECT_NE(report.find("task payload bytes"), std::string::npos);
}

TEST(EngineStatsTest, TraceCapturesTaskLifecyclesAcrossEngine) {
  Tracer::Global().Clear();
  Tracer::Global().Enable();
  {
    DataTable t = MakeData(3000);
    TreeServerCluster cluster(t, SmallConfig());
    ForestJobSpec spec;
    spec.num_trees = 2;
    spec.tree.max_depth = 8;
    cluster.TrainForest(spec);
  }
  Tracer::Global().Disable();

  std::string json = Tracer::Global().ToChromeJson();
  Tracer::Global().Clear();
  EXPECT_NE(json.find("\"cat\":\"column-task\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"subtree-task\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"net-send\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"plan-insert\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"worker-assign\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"tree-complete\""), std::string::npos);
  // Async lifecycle pairs are keyed by task id.
  EXPECT_NE(json.find("\"ph\":\"b\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"e\""), std::string::npos);
}

TEST_F(TracerTest, DropsBeyondPerThreadCapAndCounts) {
  Tracer& tracer = Tracer::Global();
  Counter* dropped_counter =
      MetricsRegistry::Global().GetCounter("trace.dropped_spans");
  const uint64_t counter_before = dropped_counter->value();
  const size_t old_cap = tracer.max_events_per_thread();
  tracer.set_max_events_per_thread(4);
  for (int i = 0; i < 10; ++i) {
    TraceInstant(TraceCat::kPlanInsert, "overflow", static_cast<uint64_t>(i));
  }
  EXPECT_EQ(tracer.event_count(), 4u);
  EXPECT_EQ(tracer.dropped_spans(), 6u);
  EXPECT_EQ(dropped_counter->value(), counter_before + 6);
  // The drop count rides worker snapshots into the merged-trace warning.
  tracer.Clear();
  EXPECT_EQ(tracer.dropped_spans(), 0u);
  tracer.set_max_events_per_thread(old_cap);
}

TEST(StatsReporterTest, StopEmitsFinalReportWhenNoneWereProduced) {
  std::vector<std::string> reasons;
  std::vector<std::string> bodies;
  StatsReporter reporter([] { return EngineStats{}; },
                         /*period_ms=*/60000);
  reporter.SetSink([&](const char* reason, const std::string& body) {
    reasons.emplace_back(reason);
    bodies.push_back(body);
  });
  reporter.Start();
  reporter.Stop();  // job "finished" well inside the first period
  ASSERT_EQ(reasons.size(), 1u);
  EXPECT_EQ(reasons[0], "final");
  EXPECT_NE(bodies[0].find("bplan="), std::string::npos);
  EXPECT_EQ(reporter.reports_emitted(), 1u);
}

TEST(StatsReporterTest, NoFinalReportAfterExplicitReport) {
  std::vector<std::string> reasons;
  StatsReporter reporter([] { return EngineStats{}; },
                         /*period_ms=*/60000);
  reporter.SetSink([&](const char* reason, const std::string&) {
    reasons.emplace_back(reason);
  });
  reporter.Start();
  reporter.ReportNow("job-complete");
  reporter.Stop();
  ASSERT_EQ(reasons.size(), 1u);
  EXPECT_EQ(reasons[0], "job-complete");
}

TEST(ClockSyncTest, RecoversOffsetFromSymmetricExchange) {
  // The remote trace clock runs 5ms ahead of ours. We sent a heartbeat
  // at local t=1ms; it took 200us each way; the remote held it for
  // 700us before its own heartbeat went out.
  const int64_t kOffset = 5'000'000;
  const uint64_t local_send = 1'000'000;
  const uint64_t one_way = 200'000;
  const uint64_t remote_hold = 700'000;
  const uint64_t remote_send =
      local_send + static_cast<uint64_t>(kOffset) + one_way + remote_hold;
  const uint64_t local_now = local_send + one_way + remote_hold + one_way;
  ClockSample s;
  ASSERT_TRUE(ComputeClockSample(remote_send, /*echo_ns=*/local_send,
                                 /*echo_elapsed_ns=*/remote_hold, local_now,
                                 &s));
  EXPECT_EQ(s.rtt_ns, static_cast<int64_t>(2 * one_way));
  EXPECT_EQ(s.offset_ns, kOffset);  // symmetric path recovers it exactly
}

TEST(ClockSyncTest, RejectsDegenerateExchanges) {
  ClockSample s;
  // First heartbeat: nothing of ours echoed yet.
  EXPECT_FALSE(ComputeClockSample(100, /*echo_ns=*/0, 0, 200, &s));
  // Echo from our future: clock glitch.
  EXPECT_FALSE(ComputeClockSample(100, /*echo_ns=*/500, 0, 200, &s));
  // Hold time longer than the whole turnaround: non-causal.
  EXPECT_FALSE(ComputeClockSample(100, /*echo_ns=*/100,
                                  /*echo_elapsed_ns=*/900, 200, &s));
}

TEST(ClockSyncTest, EstimatorKeepsMinimumRttSample) {
  ClockOffsetEstimator est;
  EXPECT_FALSE(est.has_offset());
  est.AddSample({/*rtt_ns=*/100, /*offset_ns=*/5});
  est.AddSample({/*rtt_ns=*/40, /*offset_ns=*/7});
  est.AddSample({/*rtt_ns=*/80, /*offset_ns=*/9});
  EXPECT_TRUE(est.has_offset());
  // The tightest (lowest-RTT) sample wins regardless of arrival order.
  EXPECT_EQ(est.min_rtt_ns(), 40);
  EXPECT_EQ(est.offset_ns(), 7);
  EXPECT_EQ(est.samples(), 3u);
}

TEST(PrometheusTest, SanitizesNamesAndEscapesLabels) {
  EXPECT_EQ(PrometheusMetricName("engine.slow_tasks"), "engine_slow_tasks");
  EXPECT_EQ(PrometheusMetricName("net.bytes-sent"), "net_bytes_sent");
  EXPECT_EQ(PrometheusMetricName("9lives"), "_lives");
  EXPECT_EQ(PrometheusEscapeLabel("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
}

TEST(PrometheusTest, ExportsCountersGaugesAndCumulativeBuckets) {
  MetricsRegistry reg;
  reg.GetCounter("test.requests")->Add(7);
  reg.GetGauge("test.depth")->Add(3);
  Histogram* h = reg.GetHistogram("test.latency_us");
  h->Add(1);
  h->Add(10);
  h->Add(1000);
  std::string text = PrometheusExport(reg.Snapshot(), {{"rank", "2"}});

  EXPECT_NE(text.find("# TYPE test_requests counter"), std::string::npos);
  EXPECT_NE(text.find("test_requests{rank=\"2\"} 7"), std::string::npos);
  EXPECT_NE(text.find("test_depth{rank=\"2\"} 3"), std::string::npos);
  EXPECT_NE(text.find("test_depth_peak{rank=\"2\"} 3"), std::string::npos);
  EXPECT_NE(text.find("test_latency_us_sum{rank=\"2\"} 1011"),
            std::string::npos);
  EXPECT_NE(text.find("test_latency_us_count{rank=\"2\"} 3"),
            std::string::npos)
      << "count line missing or wrong:\n"
      << text;

  // Bucket series must be cumulative and end at +Inf == count.
  uint64_t last = 0;
  bool saw_inf = false;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.rfind("test_latency_us_bucket", 0) != 0) continue;
    uint64_t v = std::stoull(line.substr(line.rfind(' ') + 1));
    EXPECT_GE(v, last) << "non-cumulative bucket line: " << line;
    last = v;
    if (line.find("le=\"+Inf\"") != std::string::npos) {
      saw_inf = true;
      EXPECT_EQ(v, 3u);
    }
  }
  EXPECT_TRUE(saw_inf);
}

TEST(HttpServerTest, ServesHandlersQueriesAnd404) {
  HttpServer server;
  server.Handle("/echo", [](const std::string& query) {
    HttpResponse resp;
    resp.body = "q=" + query;
    return resp;
  });
  ASSERT_TRUE(server.Start("127.0.0.1", 0).ok());
  ASSERT_GT(server.port(), 0);

  std::string body;
  int code = 0;
  ASSERT_TRUE(HttpGet("127.0.0.1", server.port(), "/echo?a=1&b=2", &body,
                      &code)
                  .ok());
  EXPECT_EQ(code, 200);
  EXPECT_EQ(body, "q=a=1&b=2");

  ASSERT_TRUE(HttpGet("127.0.0.1", server.port(), "/nope", &body, &code).ok());
  EXPECT_EQ(code, 404);

  server.Stop();
  server.Stop();  // idempotent
  EXPECT_FALSE(HttpGet("127.0.0.1", server.port(), "/echo", &body).ok());
}

TEST(JsonTest, ParsesDocumentsThisSystemEmits) {
  JsonValue v;
  ASSERT_TRUE(JsonValue::Parse(
                  "{\"rank\":-1,\"role\":\"master\",\"rss_bytes\":1.5e6,"
                  "\"lanes\":[1,2,3],\"meta\":{\"ok\":true,\"gap\":null},"
                  "\"esc\":\"a\\\"b\\\\c\"}",
                  &v)
                  .ok());
  EXPECT_EQ(v.NumberOr("rank", 0), -1);
  EXPECT_EQ(v.StringOr("role", ""), "master");
  EXPECT_DOUBLE_EQ(v.NumberOr("rss_bytes", 0), 1.5e6);
  ASSERT_NE(v.Find("lanes"), nullptr);
  ASSERT_EQ(v.Find("lanes")->as_array().size(), 3u);
  EXPECT_EQ(v.Find("lanes")->as_array()[2].as_number(), 3);
  ASSERT_NE(v.Find("meta"), nullptr);
  EXPECT_TRUE(v.Find("meta")->Find("ok")->as_bool());
  EXPECT_TRUE(v.Find("meta")->Find("gap")->is_null());
  EXPECT_EQ(v.StringOr("esc", ""), "a\"b\\c");
}

TEST(JsonTest, RejectsMalformedInput) {
  JsonValue v;
  EXPECT_FALSE(JsonValue::Parse("{", &v).ok());
  EXPECT_FALSE(JsonValue::Parse("[1,]", &v).ok());
  EXPECT_FALSE(JsonValue::Parse("{\"a\":}", &v).ok());
  EXPECT_FALSE(JsonValue::Parse("{} trailing", &v).ok());
  EXPECT_FALSE(JsonValue::Parse("\"unterminated", &v).ok());
}

TEST(TraceSnapshotMsgTest, EncodeDecodeRoundTrip) {
  TraceSnapshotMsg msg;
  msg.worker = 2;
  msg.dropped = 17;
  TraceEventCopy e;
  e.name = "compute-column";
  e.cat = TraceCat::kColumnTask;
  e.phase = 'X';
  e.tid = 5;
  e.ts_ns = 123456789;
  e.dur_ns = 4242;
  e.id = 99;
  e.arg_name = "n_rows";
  e.arg = 4096;
  msg.events.push_back(e);
  e.name = "slow-task";
  e.cat = TraceCat::kWatchdog;
  e.phase = 'i';
  e.arg_name.clear();
  msg.events.push_back(e);

  TraceSnapshotMsg got;
  ASSERT_TRUE(TraceSnapshotMsg::Decode(msg.Encode(), &got).ok());
  EXPECT_EQ(got.worker, 2);
  EXPECT_EQ(got.dropped, 17u);
  ASSERT_EQ(got.events.size(), 2u);
  EXPECT_EQ(got.events[0].name, "compute-column");
  EXPECT_EQ(got.events[0].cat, TraceCat::kColumnTask);
  EXPECT_EQ(got.events[0].phase, 'X');
  EXPECT_EQ(got.events[0].tid, 5);
  EXPECT_EQ(got.events[0].ts_ns, 123456789u);
  EXPECT_EQ(got.events[0].dur_ns, 4242u);
  EXPECT_EQ(got.events[0].id, 99u);
  EXPECT_EQ(got.events[0].arg_name, "n_rows");
  EXPECT_EQ(got.events[0].arg, 4096);
  EXPECT_EQ(got.events[1].cat, TraceCat::kWatchdog);
  EXPECT_TRUE(got.events[1].arg_name.empty());

  TraceSnapshotMsg bad;
  EXPECT_FALSE(TraceSnapshotMsg::Decode("truncated", &bad).ok());
}

TEST(TraceMergeTest, MergedJsonHasRankLanesAndRebasedTimestamps) {
  std::vector<RankTrace> ranks(2);
  ranks[0].rank = kMasterRank;
  ranks[0].label = "master";
  TraceEventCopy sched;
  sched.name = "schedule";
  sched.phase = 'i';
  sched.ts_ns = 1'000'000;  // 1000us on the master clock
  ranks[0].events.push_back(sched);

  // Worker 1's clock runs 5ms AHEAD of the master's; it computed the
  // task 500us after the master scheduled it, so its raw timestamp is
  // 1000us + 5000us + 500us.
  ranks[1].rank = 1;
  ranks[1].label = "worker 1";
  ranks[1].clock_offset_ns = 5'000'000;
  TraceEventCopy comp;
  comp.name = "compute-column";
  comp.phase = 'X';
  comp.ts_ns = 6'500'000;
  comp.dur_ns = 100'000;
  ranks[1].events.push_back(comp);

  JsonValue doc;
  ASSERT_TRUE(JsonValue::Parse(MergedChromeTraceJson(ranks), &doc).ok());
  const JsonValue* events = doc.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());

  double sched_ts = -1, comp_ts = -1;
  int sched_pid = -1, comp_pid = -1;
  int process_names = 0;
  for (const JsonValue& ev : events->as_array()) {
    const std::string name = ev.StringOr("name", "");
    if (name == "process_name") {
      ++process_names;
      continue;
    }
    if (name == "schedule") {
      sched_ts = ev.NumberOr("ts", -1);
      sched_pid = static_cast<int>(ev.NumberOr("pid", -1));
    } else if (name == "compute-column") {
      comp_ts = ev.NumberOr("ts", -1);
      comp_pid = static_cast<int>(ev.NumberOr("pid", -1));
    }
  }
  EXPECT_EQ(process_names, 2);  // one lane label per rank
  EXPECT_EQ(sched_pid, TracePidForRank(kMasterRank));
  EXPECT_EQ(comp_pid, TracePidForRank(1));
  EXPECT_DOUBLE_EQ(sched_ts, 1000.0);
  // Rebasing subtracted the 5ms skew: causality restored.
  EXPECT_DOUBLE_EQ(comp_ts, 1500.0);
  EXPECT_GT(comp_ts, sched_ts);
}

TEST(WatchdogTest, FlagsInjectedStragglerTasks) {
  Counter* slow = MetricsRegistry::Global().GetCounter("engine.slow_tasks");
  const uint64_t before = slow->value();

  DataTable t = MakeData(1500);
  EngineConfig cfg = SmallConfig();
  cfg.tau_d = 400;
  // Worker 0 sleeps 200ms before every task; the watchdog scans every
  // 10ms with a 20ms floor, so its in-flight tasks must get flagged.
  // The multiplier term is zeroed because the per-kind latency
  // histograms are process-global: earlier training suites in this
  // test binary (slowed 10-20x under TSan) can push the rolling p99
  // high enough that multiplier x p99 exceeds the injected 200ms
  // straggler, and the floor alone makes the test deterministic.
  cfg.debug_slow_worker = 0;
  cfg.debug_slow_task_ms = 200;
  cfg.watchdog_period_ms = 10;
  cfg.watchdog_min_us = 20000;
  cfg.watchdog_multiplier = 0.0;
  TreeServerCluster cluster(t, cfg);
  ForestJobSpec spec;
  spec.num_trees = 1;
  spec.tree.max_depth = 4;
  ForestModel forest = cluster.TrainForest(spec);
  EXPECT_EQ(forest.num_trees(), 1u);

  EXPECT_GT(slow->value(), before) << "watchdog never flagged the straggler";
  EXPECT_GT(cluster.GetEngineStats().master.slow_tasks, 0u);
}

TEST(WatchdogTest, QuietOnHealthyRunWithDefaults) {
  Counter* slow = MetricsRegistry::Global().GetCounter("engine.slow_tasks");
  const uint64_t before = slow->value();

  DataTable t = MakeData(2000);
  EngineConfig cfg = SmallConfig();  // default watchdog: 500ms floor
  TreeServerCluster cluster(t, cfg);
  ForestJobSpec spec;
  spec.num_trees = 2;
  spec.tree.max_depth = 6;
  cluster.TrainForest(spec);

  EXPECT_EQ(slow->value(), before)
      << "watchdog flagged tasks on an unperturbed in-process run";
}

TEST(EngineStatsTest, StatsReporterEmitsAtCompletion) {
  DataTable t = MakeData(3000);
  EngineConfig cfg = SmallConfig();
  cfg.stats_period_ms = 50;
  TreeServerCluster cluster(t, cfg);
  ForestJobSpec spec;
  spec.num_trees = 2;
  spec.tree.max_depth = 7;
  ForestModel forest = cluster.TrainForest(spec);
  EXPECT_EQ(forest.num_trees(), 2u);
  // The reporter thread is exercised for liveness (output goes to
  // stderr); stats must still be coherent while it runs.
  EngineStats stats = cluster.GetEngineStats();
  EXPECT_EQ(stats.master.trees_completed, 2u);
}

}  // namespace
}  // namespace treeserver
