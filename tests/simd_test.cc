// Randomized scalar-vs-SIMD parity fuzz for the hot-path kernels
// (tree/hist_kernels.h) and the serving node layouts
// (serve/packed_tree.h). The contract under test is EXACTNESS, not
// closeness: histograms must be bit-identical between the scalar
// reference and the active vector level, and predictions must be
// byte-identical across soa / packed / quantized layouts at every SIMD
// level. On a scalar-only build (-DTS_SIMD=OFF) or CPU the level loop
// degenerates to scalar-vs-scalar and the layout checks still carry
// the coverage.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/simd.h"
#include "forest/forest.h"
#include "serve/compiled_model.h"
#include "serve/layout.h"
#include "table/binned.h"
#include "table/datasets.h"
#include "tree/hist.h"
#include "tree/split.h"

namespace treeserver {
namespace {

/// Forces a SIMD level for one scope and always restores the previous
/// one, so a failing assertion cannot leak a forced level into later
/// tests.
class ScopedSimdLevel {
 public:
  explicit ScopedSimdLevel(SimdLevel level) : prev_(ActiveSimdLevel()) {
    forced_ = SetSimdLevel(level);
    EXPECT_TRUE(forced_) << "cannot force level " << SimdLevelName(level);
  }
  ~ScopedSimdLevel() { SetSimdLevel(prev_); }

 private:
  SimdLevel prev_;
  bool forced_;
};

/// The levels worth comparing on this machine: scalar always, plus the
/// detected vector level when there is one.
std::vector<SimdLevel> LevelsUnderTest() {
  std::vector<SimdLevel> levels = {SimdLevel::kScalar};
  if (DetectedSimdLevel() != SimdLevel::kScalar) {
    levels.push_back(DetectedSimdLevel());
  }
  return levels;
}

/// Batch shapes the kernels must agree on: single row, odd tails, one
/// below / one above the vector unroll, the fused-dispatch threshold
/// neighborhood, and "everything".
std::vector<size_t> RaggedSizes(size_t n) {
  std::vector<size_t> sizes = {1, 7, 127, 129, 1000};
  sizes.push_back(n);
  return sizes;
}

/// A sorted scattered row subset of size m (row ids, not positions —
/// the kernels index labels/targets by row id).
std::vector<uint32_t> RandomRows(size_t n, size_t m, Rng* rng) {
  std::vector<uint32_t> rows(n);
  for (size_t i = 0; i < n; ++i) rows[i] = static_cast<uint32_t>(i);
  rng->Shuffle(&rows);
  rows.resize(std::min(m, n));
  std::sort(rows.begin(), rows.end());
  return rows;
}

/// Classification table whose numeric features take `distinct` values
/// (> 255 forces the uint16 bin-code kernels) with missing holes, so
/// binned columns carry a populated missing bin and, with max_bins >
/// distinct, empty bins never touched by any row.
DataTable FuzzClsTable(size_t rows, int num_cols, int distinct, int classes,
                       uint64_t seed, double missing_fraction) {
  Rng rng(seed);
  std::vector<std::vector<double>> feats(num_cols, std::vector<double>(rows));
  std::vector<int32_t> y(rows);
  for (size_t r = 0; r < rows; ++r) {
    double s = 0.0;
    for (int c = 0; c < num_cols; ++c) {
      if (rng.Bernoulli(missing_fraction)) {
        feats[c][r] = MissingNumeric();
      } else {
        feats[c][r] = static_cast<double>(rng.Uniform(distinct));
        s += feats[c][r];
      }
    }
    y[r] = static_cast<int32_t>(rng.Bernoulli(0.3)
                                    ? rng.Uniform(classes)
                                    : static_cast<uint64_t>(s) % classes);
  }
  std::vector<ColumnMeta> metas;
  std::vector<ColumnPtr> cols;
  for (int c = 0; c < num_cols; ++c) {
    std::string name = "x" + std::to_string(c);
    metas.push_back({name, DataType::kNumeric, 0});
    cols.push_back(Column::Numeric(name, std::move(feats[c])));
  }
  metas.push_back({"y", DataType::kCategorical, classes});
  cols.push_back(Column::Categorical("y", std::move(y), classes));
  auto t = DataTable::Make(Schema(metas, num_cols, TaskKind::kClassification),
                           std::move(cols));
  EXPECT_TRUE(t.ok());
  return std::move(t).value();
}

/// Regression twin with CONTINUOUS targets: real-valued sums make any
/// reassociation in the vector kernels visible as a bit difference,
/// which is exactly what the per-bin accumulation-order contract
/// forbids.
DataTable FuzzRegTable(size_t rows, int num_cols, int distinct, uint64_t seed,
                       double missing_fraction) {
  Rng rng(seed);
  std::vector<std::vector<double>> feats(num_cols, std::vector<double>(rows));
  std::vector<double> y(rows);
  for (size_t r = 0; r < rows; ++r) {
    for (int c = 0; c < num_cols; ++c) {
      feats[c][r] = rng.Bernoulli(missing_fraction)
                        ? MissingNumeric()
                        : static_cast<double>(rng.Uniform(distinct));
    }
    y[r] = rng.Normal() * 3.7 + rng.UniformDouble();
  }
  std::vector<ColumnMeta> metas;
  std::vector<ColumnPtr> cols;
  for (int c = 0; c < num_cols; ++c) {
    std::string name = "x" + std::to_string(c);
    metas.push_back({name, DataType::kNumeric, 0});
    cols.push_back(Column::Numeric(name, std::move(feats[c])));
  }
  metas.push_back({"y", DataType::kNumeric, 0});
  cols.push_back(Column::Numeric("y", std::move(y)));
  auto t = DataTable::Make(Schema(metas, num_cols, TaskKind::kRegression),
                           std::move(cols));
  EXPECT_TRUE(t.ok());
  return std::move(t).value();
}

void ExpectBitExact(const NodeHistogram& a, const NodeHistogram& b,
                    const char* what) {
  ASSERT_EQ(a.slots(), b.slots()) << what;
  ASSERT_EQ(a.cls_size(), b.cls_size()) << what;
  ASSERT_EQ(a.reg_size(), b.reg_size()) << what;
  EXPECT_EQ(std::memcmp(a.cls_data(), b.cls_data(),
                        a.cls_size() * sizeof(int64_t)),
            0)
      << what << ": class counts differ";
  EXPECT_EQ(std::memcmp(a.reg_data(), b.reg_data(),
                        a.reg_size() * sizeof(HistRegBin)),
            0)
      << what << ": regression bins differ";
}

/// Builds every column's histogram via the fused BuildMany path at
/// `level` (num_cols spans a full fuse group plus a remainder).
std::vector<NodeHistogram> BuildAt(SimdLevel level, const DataTable& t,
                                   const std::vector<const BinnedColumn*>& cols,
                                   const SplitContext& ctx,
                                   const uint32_t* rows, size_t n) {
  ScopedSimdLevel forced(level);
  std::vector<NodeHistogram> out(cols.size());
  NodeHistogram::BuildMany(cols.data(), cols.size(), *t.target(), ctx,
                           rows, n, out.data());
  return out;
}

// -------------------------------------------------------------------
// Histogram kernels: scalar vs vector, bit for bit.
// -------------------------------------------------------------------

void FuzzHistograms(TaskKind kind) {
  const size_t n = 3000;
  const int num_cols = 5;  // one full fuse-of-4 plus a remainder column
  Rng rng(kind == TaskKind::kClassification ? 101 : 202);
  // distinct = 9 exercises the uint8 code kernels, 700 the uint16
  // fallback; max_bins = 900 > distinct leaves empty bins in between.
  for (int distinct : {9, 700}) {
    DataTable t = kind == TaskKind::kClassification
                      ? FuzzClsTable(n, num_cols, distinct, 4, 11 + distinct,
                                     /*missing_fraction=*/0.15)
                      : FuzzRegTable(n, num_cols, distinct, 13 + distinct,
                                     /*missing_fraction=*/0.15);
    SplitContext ctx =
        kind == TaskKind::kClassification
            ? SplitContext{TaskKind::kClassification, Impurity::kGini, 4}
            : SplitContext{TaskKind::kRegression, Impurity::kVariance, 0};
    std::vector<std::shared_ptr<const BinnedColumn>> owned;
    std::vector<const BinnedColumn*> cols;
    for (int c = 0; c < num_cols; ++c) {
      owned.push_back(BinnedColumn::Build(*t.column(c), 900));
      cols.push_back(owned.back().get());
    }
    ASSERT_EQ(cols[0]->wide(), distinct > 255);
    for (size_t m : RaggedSizes(n)) {
      // Identity mapping (rows == nullptr) and a scattered subset.
      for (bool scattered : {false, true}) {
        std::vector<uint32_t> rows;
        const uint32_t* rows_ptr = nullptr;
        if (scattered) {
          rows = RandomRows(n, m, &rng);
          rows_ptr = rows.data();
        }
        const size_t take = scattered ? rows.size() : std::min(m, n);
        std::vector<NodeHistogram> ref =
            BuildAt(SimdLevel::kScalar, t, cols, ctx, rows_ptr, take);
        for (SimdLevel level : LevelsUnderTest()) {
          std::vector<NodeHistogram> got =
              BuildAt(level, t, cols, ctx, rows_ptr, take);
          for (int c = 0; c < num_cols; ++c) {
            const std::string what =
                std::string(SimdLevelName(level)) + " distinct=" +
                std::to_string(distinct) + " n=" + std::to_string(take) +
                (scattered ? " scattered" : " identity") + " col=" +
                std::to_string(c);
            ExpectBitExact(ref[c], got[c], what.c_str());
          }
        }
      }
    }
  }
}

TEST(SimdParityTest, ClassificationHistogramsBitExact) {
  FuzzHistograms(TaskKind::kClassification);
}

TEST(SimdParityTest, RegressionHistogramsBitExact) {
  FuzzHistograms(TaskKind::kRegression);
}

// -------------------------------------------------------------------
// Serving layouts: byte-identical predictions across soa / packed /
// quantized at every SIMD level, over ragged scattered batches and
// depth cutoffs.
// -------------------------------------------------------------------

CompiledForest CompileFuzzForest(const DataTable& table, int trees,
                                 bool sqrt_columns) {
  ForestJobSpec spec;
  spec.num_trees = trees;
  spec.tree.max_depth = 9;
  spec.sqrt_columns = sqrt_columns;
  return CompiledForest::Compile(TrainForestSerial(table, spec, 2));
}

void CheckLayoutParity(const DataTable& table, CompiledForest* compiled) {
  const size_t n = table.num_rows();
  auto bins = BinnedTable::Build(table, 65535);
  Rng rng(31);
  const bool classification = compiled->is_classification();
  const size_t k = static_cast<size_t>(compiled->num_classes());
  for (int max_depth : {-1, 0, 3}) {
    for (size_t m : {size_t{1}, size_t{7}, size_t{127}, size_t{129}, n}) {
      const std::vector<uint32_t> rows = RandomRows(n, m, &rng);
      // Reference: soa layout at scalar level.
      compiled->Repack(NodeLayout::kSoa, nullptr);
      std::vector<int32_t> ref_labels(rows.size());
      std::vector<double> ref_values(rows.size());
      std::vector<float> ref_pmf(rows.size() * k);
      {
        ScopedSimdLevel forced(SimdLevel::kScalar);
        if (classification) {
          compiled->PredictLabel(table, rows.data(), rows.size(), max_depth,
                                 ref_labels.data());
          compiled->PredictPmf(table, rows.data(), rows.size(), max_depth,
                               ref_pmf.data());
        } else {
          compiled->PredictValue(table, rows.data(), rows.size(), max_depth,
                                 ref_values.data());
        }
      }
      for (NodeLayout want : {NodeLayout::kSoa, NodeLayout::kPacked,
                              NodeLayout::kQuantized}) {
        const NodeLayout got = compiled->Repack(
            want, want == NodeLayout::kQuantized ? bins : nullptr);
        // One bin per distinct value makes every exact threshold a bin
        // upper, so quantization must never fall back.
        ASSERT_EQ(got, want) << NodeLayoutName(want);
        for (SimdLevel level : LevelsUnderTest()) {
          ScopedSimdLevel forced(level);
          const std::string what = std::string(NodeLayoutName(want)) + "/" +
                                   SimdLevelName(level) + " depth=" +
                                   std::to_string(max_depth) + " m=" +
                                   std::to_string(rows.size());
          if (classification) {
            std::vector<int32_t> labels(rows.size());
            compiled->PredictLabel(table, rows.data(), rows.size(), max_depth,
                                   labels.data());
            EXPECT_EQ(labels, ref_labels) << what;
            std::vector<float> pmf(rows.size() * k);
            compiled->PredictPmf(table, rows.data(), rows.size(), max_depth,
                                 pmf.data());
            EXPECT_EQ(std::memcmp(pmf.data(), ref_pmf.data(),
                                  pmf.size() * sizeof(float)),
                      0)
                << what << ": PMFs not byte-identical";
          } else {
            std::vector<double> values(rows.size());
            compiled->PredictValue(table, rows.data(), rows.size(), max_depth,
                                   values.data());
            EXPECT_EQ(std::memcmp(values.data(), ref_values.data(),
                                  values.size() * sizeof(double)),
                      0)
                << what << ": values not byte-identical";
          }
        }
      }
    }
  }
}

TEST(SimdParityTest, ClassificationServingLayoutsByteIdentical) {
  DatasetProfile profile;
  profile.name = "simd_fuzz_cls";
  profile.rows = 2500;
  profile.num_numeric = 5;
  profile.num_categorical = 2;
  profile.num_classes = 4;
  profile.missing_fraction = 0.08;
  DataTable table = GenerateTable(profile, 17);
  CompiledForest compiled = CompileFuzzForest(table, 6, /*sqrt_columns=*/true);
  CheckLayoutParity(table, &compiled);
}

TEST(SimdParityTest, RegressionServingLayoutsByteIdentical) {
  DatasetProfile profile;
  profile.name = "simd_fuzz_reg";
  profile.rows = 2500;
  profile.num_numeric = 6;
  profile.num_categorical = 1;
  profile.num_classes = 0;  // regression
  profile.missing_fraction = 0.08;
  DataTable table = GenerateTable(profile, 19);
  CompiledForest compiled = CompileFuzzForest(table, 5, /*sqrt_columns=*/true);
  CheckLayoutParity(table, &compiled);
}

TEST(SimdParityTest, WideCategoricalColumnsAcrossLayouts) {
  // 100 categories force multi-word bitmasks in the packed layout and
  // >64-slot route tables in the quantized one, with missing
  // categories and (rare) codes the training split never saw.
  const size_t n = 2000;
  const int card = 100;
  Rng rng(59);
  std::vector<int32_t> cat(n);
  std::vector<double> num(n);
  std::vector<int32_t> y(n);
  for (size_t r = 0; r < n; ++r) {
    cat[r] = rng.Bernoulli(0.05)
                 ? kMissingCategory
                 : static_cast<int32_t>(rng.Uniform(card));
    num[r] = rng.Bernoulli(0.05) ? MissingNumeric()
                                 : static_cast<double>(rng.Uniform(37));
    const int32_t base = cat[r] < 0 ? 0 : (cat[r] / 25) % 3;
    y[r] = rng.Bernoulli(0.1) ? static_cast<int32_t>(rng.Uniform(3)) : base;
  }
  std::vector<ColumnMeta> metas = {{"c", DataType::kCategorical, card},
                                   {"x", DataType::kNumeric, 0},
                                   {"y", DataType::kCategorical, 3}};
  std::vector<ColumnPtr> cols = {Column::Categorical("c", std::move(cat), card),
                                 Column::Numeric("x", std::move(num)),
                                 Column::Categorical("y", std::move(y), 3)};
  auto made = DataTable::Make(Schema(metas, 2, TaskKind::kClassification),
                              std::move(cols));
  ASSERT_TRUE(made.ok());
  DataTable table = std::move(made).value();
  CompiledForest compiled = CompileFuzzForest(table, 4, /*sqrt_columns=*/false);
  CheckLayoutParity(table, &compiled);
}

}  // namespace
}  // namespace treeserver
