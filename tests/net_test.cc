#include <gtest/gtest.h>

#include <thread>

#include "common/timer.h"
#include "engine/cost_model.h"
#include "net/network.h"
#include "table/datasets.h"

namespace treeserver {
namespace {

TEST(NetworkTest, RoutesToQueues) {
  Network net(2, 0.0);
  net.Send(ChannelKind::kTask, Message{kMasterRank, 0, 1, "plan"});
  net.Send(ChannelKind::kData, Message{1, 0, 2, "data"});
  net.Send(ChannelKind::kTask, Message{0, kMasterRank, 3, "result"});

  auto task = net.task_queue(0).TryPop();
  ASSERT_TRUE(task.has_value());
  EXPECT_EQ(task->payload, "plan");
  auto data = net.data_queue(0).TryPop();
  ASSERT_TRUE(data.has_value());
  EXPECT_EQ(data->src, 1);
  auto master = net.master_queue().TryPop();
  ASSERT_TRUE(master.has_value());
  EXPECT_EQ(master->type, 3u);
}

TEST(NetworkTest, CountsBytesPerEndpoint) {
  Network net(3, 0.0);
  net.Send(ChannelKind::kData, Message{0, 1, 1, std::string(100, 'x')});
  net.Send(ChannelKind::kData, Message{0, 2, 1, std::string(50, 'x')});
  EXPECT_EQ(net.bytes_sent(0), 100u + 50u + 2 * 24u);
  EXPECT_EQ(net.bytes_received(1), 100u + 24u);
  EXPECT_EQ(net.bytes_received(2), 50u + 24u);
  EXPECT_EQ(net.total_bytes(), net.bytes_sent(0));
  net.ResetCounters();
  EXPECT_EQ(net.total_bytes(), 0u);
}

TEST(NetworkTest, LocalDeliveryIsFree) {
  Network net(2, 0.0);
  net.Send(ChannelKind::kData, Message{1, 1, 1, std::string(1000, 'x')});
  EXPECT_EQ(net.bytes_sent(1), 0u);
  EXPECT_TRUE(net.data_queue(1).TryPop().has_value());
}

TEST(NetworkTest, CrashedWorkerTrafficDropped) {
  Network net(2, 0.0);
  net.SetCrashed(1);
  EXPECT_TRUE(net.IsCrashed(1));
  EXPECT_FALSE(net.Send(ChannelKind::kTask, Message{kMasterRank, 1, 1, "x"}));
  EXPECT_FALSE(net.Send(ChannelKind::kTask, Message{1, kMasterRank, 1, "x"}));
  // Worker 0 still reachable.
  EXPECT_TRUE(net.Send(ChannelKind::kTask, Message{kMasterRank, 0, 1, "x"}));
}

TEST(NetworkTest, CountsDroppedMessagesPerEndpoint) {
  Network net(3, 0.0);
  EXPECT_EQ(net.total_msgs_dropped(), 0u);
  net.SetCrashed(1);
  // Dropped because the destination is crashed: charged to 1.
  net.Send(ChannelKind::kTask, Message{kMasterRank, 1, 1, "x"});
  net.Send(ChannelKind::kData, Message{0, 1, 1, "x"});
  // Dropped because the source is crashed: also charged to 1.
  net.Send(ChannelKind::kTask, Message{1, kMasterRank, 1, "x"});
  // Delivered fine: no drop.
  EXPECT_TRUE(net.Send(ChannelKind::kTask, Message{kMasterRank, 2, 1, "x"}));
  EXPECT_EQ(net.msgs_dropped(1), 3u);
  EXPECT_EQ(net.msgs_dropped(0), 0u);
  EXPECT_EQ(net.msgs_dropped(2), 0u);
  EXPECT_EQ(net.msgs_dropped(kMasterRank), 0u);
  EXPECT_EQ(net.total_msgs_dropped(), 3u);

  NetworkStats stats = net.GetStats();
  ASSERT_EQ(stats.endpoints.size(), 4u);
  EXPECT_EQ(stats.endpoints[1].msgs_dropped, 3u);
  EXPECT_EQ(stats.endpoints[0].msgs_dropped, 0u);

  net.ResetCounters();
  EXPECT_EQ(net.total_msgs_dropped(), 0u);
  EXPECT_EQ(net.msgs_dropped(1), 0u);
}

TEST(NetworkTest, ThrottleDelaysBigSends) {
  // 1 Mbps -> 125000 bytes/s; 125000 bytes should take about a second.
  // Use a smaller payload to keep the test fast: 12500 bytes ~ 100 ms.
  Network net(2, 1.0);
  WallTimer timer;
  net.Send(ChannelKind::kData, Message{0, 1, 1, std::string(12500, 'x')});
  EXPECT_GT(timer.Seconds(), 0.05);
}

TEST(ColumnPlacementTest, ReplicationAndBalance) {
  DatasetProfile p;
  p.rows = 10;
  p.num_numeric = 8;
  p.num_classes = 2;
  DataTable t = GenerateTable(p, 1);
  ColumnPlacement placement(t.schema(), 4, 2);
  std::vector<int> held(4, 0);
  for (int col = 0; col < 8; ++col) {
    EXPECT_EQ(placement.holders(col).size(), 2u);
    for (int h : placement.holders(col)) {
      ASSERT_GE(h, 0);
      ASSERT_LT(h, 4);
      ++held[h];
    }
  }
  // Round-robin placement balances to 4 columns per worker.
  for (int h : held) EXPECT_EQ(h, 4);
  // Target column has no holder entry.
  EXPECT_TRUE(placement.holders(t.schema().target_index()).empty());
}

TEST(ColumnPlacementTest, RemoveWorkerKeepsAReplica) {
  DatasetProfile p;
  p.rows = 10;
  p.num_numeric = 6;
  p.num_classes = 2;
  DataTable t = GenerateTable(p, 2);
  ColumnPlacement placement(t.schema(), 3, 2);
  std::vector<int> lost = placement.RemoveWorker(1);
  EXPECT_FALSE(lost.empty());
  for (int col : lost) {
    EXPECT_GE(placement.holders(col).size(), 1u);
    for (int h : placement.holders(col)) EXPECT_NE(h, 1);
  }
  placement.AddHolder(lost[0], 2);
  placement.AddHolder(lost[0], 2);  // idempotent
  int count = 0;
  for (int h : placement.holders(lost[0])) count += (h == 2);
  EXPECT_EQ(count, 1);
}

TEST(LoadMatrixTest, ApplyAndDeduct) {
  LoadMatrix m(2);
  LoadDelta d;
  d.Add(0, 100, 10, 5);
  d.Add(1, 0, 0, 50);
  m.Apply(d, 1.0);
  EXPECT_EQ(m.Get(0)[0], 100);
  EXPECT_EQ(m.Get(1)[2], 50);
  m.Apply(d, -1.0);
  EXPECT_EQ(m.Get(0)[0], 0);
  EXPECT_EQ(m.Get(1)[2], 0);
}

TEST(LoadMatrixTest, ColumnTaskBalancesAcrossHolders) {
  DatasetProfile p;
  p.rows = 10;
  p.num_numeric = 8;
  p.num_classes = 2;
  DataTable t = GenerateTable(p, 3);
  ColumnPlacement placement(t.schema(), 4, 2);
  LoadMatrix m(4);
  std::vector<bool> alive(4, true);
  std::vector<int> cols = {0, 1, 2, 3, 4, 5, 6, 7};
  auto a = m.AssignColumnTask(placement, cols, 1000, /*parent=*/0, alive);
  // Every column assigned exactly once, to one of its holders.
  size_t assigned = 0;
  for (const auto& [w, wc] : a.worker_columns) {
    for (int32_t col : wc) {
      bool holds = false;
      for (int h : placement.holders(col)) holds |= (h == w);
      EXPECT_TRUE(holds) << "col " << col << " -> non-holder " << w;
      ++assigned;
    }
  }
  EXPECT_EQ(assigned, cols.size());
  // Parent worker got charged send workload for I_x transfers.
  EXPECT_GT(m.Get(0)[1], 0.0);
}

TEST(LoadMatrixTest, SubtreeTaskPicksIdleKeyWorker) {
  DatasetProfile p;
  p.rows = 10;
  p.num_numeric = 4;
  p.num_classes = 2;
  DataTable t = GenerateTable(p, 4);
  ColumnPlacement placement(t.schema(), 3, 2);
  LoadMatrix m(3);
  // Pre-load workers 0 and 1 with compute.
  LoadDelta busy;
  busy.Add(0, 1e9, 0, 0);
  busy.Add(1, 1e9, 0, 0);
  m.Apply(busy, 1.0);
  std::vector<bool> alive(3, true);
  auto a = m.AssignSubtreeTask(placement, {0, 1, 2, 3}, 500, 0, alive);
  EXPECT_EQ(a.key_worker, 2);
  EXPECT_EQ(a.columns.size(), 4u);
  EXPECT_EQ(a.servers.size(), 4u);
  // Key worker got the |I_x| |C| log|I_x| compute charge.
  EXPECT_GT(m.Get(2)[0], 0.0);
}

TEST(LoadMatrixTest, SubtreeAssignmentSkipsDeadWorkers) {
  DatasetProfile p;
  p.rows = 10;
  p.num_numeric = 4;
  p.num_classes = 2;
  DataTable t = GenerateTable(p, 5);
  ColumnPlacement placement(t.schema(), 3, 3);  // full replication
  LoadMatrix m(3);
  std::vector<bool> alive = {true, false, true};
  auto a = m.AssignSubtreeTask(placement, {0, 1, 2, 3}, 500, -1, alive);
  EXPECT_NE(a.key_worker, 1);
  for (int s : a.servers) EXPECT_NE(s, 1);
}

}  // namespace
}  // namespace treeserver
