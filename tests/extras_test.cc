#include <gtest/gtest.h>

#include "engine/cluster.h"
#include "engine/messages.h"
#include "forest/forest.h"
#include "table/datasets.h"
#include "tree/trainer.h"

namespace treeserver {
namespace {

DataTable MakeData(int classes, size_t rows, uint64_t seed) {
  DatasetProfile p;
  p.rows = rows;
  p.num_numeric = 5;
  p.num_categorical = 3;
  p.num_classes = classes;
  p.noise = 0.05;
  return GenerateTable(p, seed);
}

TEST(FeatureImportanceTest, SumsToOneAndSkipsTarget) {
  DataTable t = MakeData(3, 2000, 5);
  ForestJobSpec spec;
  spec.num_trees = 5;
  spec.tree.max_depth = 8;
  spec.column_ratio = 0.7;
  ForestModel forest = TrainForestSerial(t, spec);
  std::vector<double> imp = FeatureImportance(forest, t.schema());
  ASSERT_EQ(imp.size(), static_cast<size_t>(t.num_columns()));
  double total = 0.0;
  for (double v : imp) {
    EXPECT_GE(v, 0.0);
    total += v;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_EQ(imp[t.schema().target_index()], 0.0);
}

TEST(FeatureImportanceTest, InformativeColumnsDominate) {
  // Build a table where only column 0 carries signal.
  Rng rng(9);
  size_t n = 3000;
  std::vector<double> x0(n), x1(n);
  std::vector<int32_t> y(n);
  for (size_t i = 0; i < n; ++i) {
    x0[i] = rng.UniformDouble();
    x1[i] = rng.UniformDouble();
    y[i] = x0[i] > 0.5 ? 1 : 0;
  }
  std::vector<ColumnMeta> metas = {{"signal", DataType::kNumeric, 0},
                                   {"noise", DataType::kNumeric, 0},
                                   {"y", DataType::kCategorical, 2}};
  auto t = DataTable::Make(Schema(metas, 2, TaskKind::kClassification),
                           {Column::Numeric("signal", x0),
                            Column::Numeric("noise", x1),
                            Column::Categorical("y", y, 2)});
  ASSERT_TRUE(t.ok());
  ForestJobSpec spec;
  spec.num_trees = 3;
  spec.tree.max_depth = 6;
  ForestModel forest = TrainForestSerial(*t, spec);
  std::vector<double> imp = FeatureImportance(forest, t->schema());
  EXPECT_GT(imp[0], 0.9);
  EXPECT_LT(imp[1], 0.1);
}

TEST(FeatureImportanceTest, EmptyForestIsAllZero) {
  DataTable t = MakeData(2, 100, 7);
  ForestModel empty(TaskKind::kClassification, 2);
  std::vector<double> imp = FeatureImportance(empty, t.schema());
  for (double v : imp) EXPECT_EQ(v, 0.0);
}

TEST(ModelDumpTest, DebugStringMentionsColumnsAndLeaves) {
  DataTable t = MakeData(2, 1000, 11);
  TreeConfig cfg;
  cfg.max_depth = 4;
  TreeModel model = TrainTreeOnTable(t, t.schema().FeatureIndices(), cfg);
  std::string dump = model.DebugString(t.schema());
  EXPECT_NE(dump.find("leaf: class"), std::string::npos);
  EXPECT_NE(dump.find("<="), std::string::npos);
  EXPECT_NE(dump.find("gain="), std::string::npos);
  // The root split's column name appears.
  const auto& root = model.node(0);
  ASSERT_FALSE(root.is_leaf());
  EXPECT_NE(dump.find(t.schema().column(root.condition.column).name),
            std::string::npos);
}

TEST(ModelDumpTest, DotOutputIsWellFormed) {
  DataTable t = MakeData(3, 800, 13);
  TreeConfig cfg;
  cfg.max_depth = 3;
  TreeModel model = TrainTreeOnTable(t, t.schema().FeatureIndices(), cfg);
  std::string dot = model.ToDot(t.schema(), "tree0");
  EXPECT_EQ(dot.find("digraph tree0 {"), 0u);
  EXPECT_NE(dot.find("->"), std::string::npos);
  EXPECT_EQ(dot.back(), '\n');
  // Balanced braces: exactly one { at start and one } at end.
  EXPECT_NE(dot.rfind("}\n"), std::string::npos);
}

TEST(ModelDumpTest, SplitGainRecordedOnInternalNodes) {
  DataTable t = MakeData(2, 1200, 17);
  TreeConfig cfg;
  cfg.max_depth = 5;
  TreeModel model = TrainTreeOnTable(t, t.schema().FeatureIndices(), cfg);
  for (size_t i = 0; i < model.num_nodes(); ++i) {
    const auto& n = model.node(static_cast<int32_t>(i));
    if (n.is_leaf()) {
      EXPECT_EQ(n.split_gain, 0.0);
    } else {
      EXPECT_GT(n.split_gain, 0.0);
    }
  }
}

TEST(RowIdCodecTest, DeltaVarintRoundTrip) {
  std::vector<uint32_t> rows = {0, 1, 5, 6, 100, 1000000, 1000001};
  BinaryWriter w;
  WriteRowIds(&w, rows, /*compress=*/true);
  BinaryReader r(w.buffer());
  std::vector<uint32_t> back;
  ASSERT_TRUE(ReadRowIds(&r, &back).ok());
  EXPECT_EQ(back, rows);
}

TEST(RowIdCodecTest, CompressionShrinksDenseIds) {
  std::vector<uint32_t> rows(50000);
  for (size_t i = 0; i < rows.size(); ++i) {
    rows[i] = static_cast<uint32_t>(2 * i);  // deltas of 2: 1 byte each
  }
  BinaryWriter raw, packed;
  WriteRowIds(&raw, rows, false);
  WriteRowIds(&packed, rows, true);
  EXPECT_LT(packed.size() * 3, raw.size());  // >3x smaller
  BinaryReader r(packed.buffer());
  std::vector<uint32_t> back;
  ASSERT_TRUE(ReadRowIds(&r, &back).ok());
  EXPECT_EQ(back, rows);
}

TEST(RowIdCodecTest, EmptyRows) {
  BinaryWriter w;
  WriteRowIds(&w, {}, true);
  BinaryReader r(w.buffer());
  std::vector<uint32_t> back = {1, 2, 3};
  ASSERT_TRUE(ReadRowIds(&r, &back).ok());
  EXPECT_TRUE(back.empty());
}

TEST(ColumnCodecTest, PackedCategoricalRoundTrip) {
  std::vector<int32_t> codes;
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    codes.push_back(i % 11 == 0 ? kMissingCategory
                                : static_cast<int32_t>(rng.Uniform(7)));
  }
  ColumnPtr col = Column::Categorical("c", codes, 7);
  BinaryWriter raw, packed;
  SerializeColumn(*col, &raw, false);
  SerializeColumn(*col, &packed, true);
  EXPECT_LT(packed.size() * 2, raw.size());  // 3 bits vs 32 bits

  BinaryReader r(packed.buffer());
  ColumnPtr back;
  ASSERT_TRUE(DeserializeColumn(&r, &back).ok());
  ASSERT_EQ(back->size(), col->size());
  EXPECT_EQ(back->cardinality(), 7);
  for (size_t i = 0; i < codes.size(); ++i) {
    EXPECT_EQ(back->category_at(i), codes[i]);
  }
}

TEST(ColumnCodecTest, NumericUnaffectedByCompressFlag) {
  ColumnPtr col = Column::Numeric("n", {1.5, 2.5, MissingNumeric()});
  BinaryWriter w;
  SerializeColumn(*col, &w, true);
  BinaryReader r(w.buffer());
  ColumnPtr back;
  ASSERT_TRUE(DeserializeColumn(&r, &back).ok());
  EXPECT_EQ(back->numeric_at(1), 2.5);
  EXPECT_TRUE(back->IsMissing(2));
}

TEST(CompressedEngineTest, SameTreesLessTraffic) {
  DataTable t = MakeData(3, 3000, 23);
  ForestJobSpec spec;
  spec.num_trees = 3;
  spec.tree.max_depth = 8;
  spec.column_ratio = 0.8;

  EngineConfig plain;
  plain.num_workers = 3;
  plain.compers_per_worker = 2;
  plain.tau_d = 500;
  plain.tau_dfs = 1500;
  EngineConfig compressed = plain;
  compressed.compress_transfers = true;

  uint64_t plain_bytes, packed_bytes;
  ForestModel a, b;
  {
    TreeServerCluster cluster(t, plain);
    a = cluster.TrainForest(spec);
    plain_bytes = cluster.metrics().bytes_sent_total;
  }
  {
    TreeServerCluster cluster(t, compressed);
    b = cluster.TrainForest(spec);
    packed_bytes = cluster.metrics().bytes_sent_total;
  }
  for (size_t i = 0; i < a.num_trees(); ++i) {
    EXPECT_TRUE(a.tree(i).StructurallyEqual(b.tree(i)));
  }
  EXPECT_LT(packed_bytes, plain_bytes);
}

TEST(JobDependencyTest, DependentJobWaitsForPredecessor) {
  DataTable t = MakeData(2, 1500, 29);
  EngineConfig cfg;
  cfg.num_workers = 2;
  cfg.compers_per_worker = 2;
  cfg.tau_d = 400;
  cfg.tau_dfs = 1200;
  TreeServerCluster cluster(t, cfg);

  ForestJobSpec layer0;
  layer0.name = "layer0";
  layer0.num_trees = 3;
  layer0.tree.max_depth = 7;
  uint32_t j0 = cluster.Submit(layer0);

  ForestJobSpec layer1;
  layer1.name = "layer1";
  layer1.num_trees = 3;
  layer1.tree.max_depth = 7;
  layer1.seed = 2;
  layer1.depends_on = {j0};
  uint32_t j1 = cluster.Submit(layer1);

  ForestJobSpec layer2;
  layer2.name = "layer2";
  layer2.num_trees = 2;
  layer2.tree.max_depth = 5;
  layer2.seed = 3;
  layer2.depends_on = {j1};
  uint32_t j2 = cluster.Submit(layer2);

  // Waiting on the LAST job first must not deadlock: the chain
  // resolves in dependency order.
  ForestModel m2 = cluster.Wait(j2);
  ForestModel m1 = cluster.Wait(j1);
  ForestModel m0 = cluster.Wait(j0);
  EXPECT_EQ(m0.num_trees(), 3u);
  EXPECT_EQ(m1.num_trees(), 3u);
  EXPECT_EQ(m2.num_trees(), 2u);
  EXPECT_TRUE(m0.tree(0).StructurallyEqual(
      TrainForestSerial(t, layer0).tree(0)));
}

TEST(JobDependencyTest, IndependentJobsUnaffected) {
  DataTable t = MakeData(2, 1000, 31);
  EngineConfig cfg;
  cfg.num_workers = 2;
  cfg.compers_per_worker = 1;
  cfg.tau_d = 100000;
  cfg.tau_dfs = 200000;
  TreeServerCluster cluster(t, cfg);
  ForestJobSpec a;
  a.num_trees = 2;
  ForestJobSpec b;
  b.num_trees = 2;
  b.seed = 9;
  uint32_t ja = cluster.Submit(a);
  uint32_t jb = cluster.Submit(b);
  EXPECT_EQ(cluster.Wait(jb).num_trees(), 2u);
  EXPECT_EQ(cluster.Wait(ja).num_trees(), 2u);
}

}  // namespace
}  // namespace treeserver
