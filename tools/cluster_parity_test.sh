#!/usr/bin/env bash
# Multi-process cluster acceptance test (run by ctest as
# `cluster_parity`):
#
#  1. a 4-worker localhost TCP cluster trains a seeded forest
#     byte-identical to the in-process transport on the same
#     seed/config;
#  2. SIGKILL-ing one worker mid-job trips dead-peer detection and the
#     job still completes — with the same bytes — via the k-replica
#     recovery path;
#  3. observability: the same cluster with tracing + HTTP endpoints on
#     serves /metrics + /statusz from every rank mid-job, the master
#     writes a merged Chrome trace with one lane per rank, and the
#     forest bytes are still identical (observability must not perturb
#     training).
set -euo pipefail

NODE="${TREESERVER_NODE:?set TREESERVER_NODE to the treeserver_node binary}"
TOP="${TREESERVER_TOP:?set TREESERVER_TOP to the treeserver_top binary}"
WORKERS=4
TMP="$(mktemp -d)"
PIDS=()

cleanup() {
  for pid in "${PIDS[@]:-}"; do
    kill -9 "$pid" 2>/dev/null || true
  done
  rm -rf "$TMP"
}
trap cleanup EXIT

# Common job/dataset config. Big enough that the crash run is still
# mid-job ~half a second in; deterministic in the seeds.
FLAGS=(--workers=$WORKERS --rows=40000 --features=16 --categorical=4
       --classes=3 --data-seed=7 --trees=12 --max-depth=10 --min-leaf=4
       --job-seed=3 --compers=2 --replication=2)

peers_for() {
  local base=$1 peers=""
  for ((i = 0; i < WORKERS; i++)); do
    peers+="127.0.0.1:$((base + i)),"
  done
  echo "${peers}127.0.0.1:$((base + WORKERS))"
}

# Polls /healthz on 127.0.0.1:$1 until the endpoint answers (the HTTP
# server mounts before training starts, so this converges fast).
wait_healthy() {
  local port=$1
  for _ in $(seq 1 50); do
    if "$TOP" --fetch="127.0.0.1:$port/healthz" >/dev/null 2>&1; then
      return 0
    fi
    sleep 0.1
  done
  echo "FAIL: 127.0.0.1:$port/healthz never came up" >&2
  return 1
}

# Fetches /metrics and /statusz from 127.0.0.1:$1 and asserts the
# samples a rank of role $2 (master|worker) must expose.
probe_rank() {
  local port=$1 role=$2
  local metrics statusz
  metrics="$("$TOP" --fetch="127.0.0.1:$port/metrics")"
  statusz="$("$TOP" --fetch="127.0.0.1:$port/statusz")"
  grep -q "trace_dropped_spans" <<<"$metrics" || {
    echo "FAIL: $role :$port /metrics lacks trace_dropped_spans" >&2
    return 1
  }
  if [[ "$role" == master ]]; then
    grep -q "engine_tasks_scheduled" <<<"$metrics" &&
      grep -q "net_bytes_sent_total" <<<"$metrics" || {
      echo "FAIL: master :$port /metrics lacks engine_/net_ samples" >&2
      return 1
    }
  else
    grep -q "engine_tasks_computed" <<<"$metrics" || {
      echo "FAIL: worker :$port /metrics lacks engine_tasks_computed" >&2
      return 1
    }
  fi
  grep -q "\"role\":\"$role\"" <<<"$statusz" || {
    echo "FAIL: $role :$port /statusz missing role (got: $statusz)" >&2
    return 1
  }
}

# run_cluster <out-file> <kill-worker-rank-or-empty> <base-port>
#             [http-base-port]
# With an http base port, every rank serves introspection HTTP (rank i
# on http_base+i, master on http_base+WORKERS), tracing is on, and the
# master writes the merged trace to $TMP/trace.json; the ranks are
# probed over HTTP while the job runs.
run_cluster() {
  local out=$1 kill_rank=$2 base=$3 http_base=${4:-}
  local peers; peers="$(peers_for "$base")"
  local wpids=()
  for ((i = 0; i < WORKERS; i++)); do
    local wobs=()
    [[ -n "$http_base" ]] &&
      wobs=(--http-port=$((http_base + i)) --trace=1)
    "$NODE" --rank="$i" --peers="$peers" "${FLAGS[@]}" \
      ${wobs[@]+"${wobs[@]}"} \
      --heartbeat-ms=20 --miss-limit=10 2>"$TMP/w$i.log" &
    wpids+=($!)
    PIDS+=($!)
  done
  local mobs=()
  [[ -n "$http_base" ]] &&
    mobs=(--http-port=$((http_base + WORKERS)) --trace=1
          --trace-out="$TMP/trace.json")
  "$NODE" --rank=master --peers="$peers" "${FLAGS[@]}" \
    ${mobs[@]+"${mobs[@]}"} \
    --heartbeat-ms=20 --miss-limit=10 --out="$out" 2>"$TMP/master.log" &
  local master_pid=$!
  PIDS+=("$master_pid")

  if [[ -n "$http_base" ]]; then
    wait_healthy $((http_base + WORKERS))
    probe_rank $((http_base + WORKERS)) master
    for ((i = 0; i < WORKERS; i++)); do
      wait_healthy $((http_base + i))
      probe_rank $((http_base + i)) worker
    done
    echo "PASS: /metrics + /statusz served by all $((WORKERS + 1)) ranks"
  fi

  if [[ -n "$kill_rank" ]]; then
    # Let the handshake finish and the job start, then kill abruptly.
    sleep 0.5
    kill -9 "${wpids[$kill_rank]}" 2>/dev/null || true
  fi

  if ! wait "$master_pid"; then
    echo "FAIL: master exited non-zero (log below)" >&2
    cat "$TMP/master.log" >&2
    return 1
  fi
  for ((i = 0; i < WORKERS; i++)); do
    wait "${wpids[$i]}" 2>/dev/null || true
  done
  PIDS=()
  return 0
}

echo "== in-process reference =="
"$NODE" --mode=inproc "${FLAGS[@]}" --out="$TMP/ref.bin"
[[ -s "$TMP/ref.bin" ]] || { echo "FAIL: empty reference forest" >&2; exit 1; }

echo "== 4-worker TCP cluster =="
run_cluster "$TMP/tcp.bin" "" $((21000 + RANDOM % 10000))
cmp "$TMP/ref.bin" "$TMP/tcp.bin" || {
  echo "FAIL: TCP forest differs from in-process forest" >&2
  exit 1
}
echo "PASS: TCP forest byte-identical to in-process"

echo "== 4-worker TCP cluster, SIGKILL worker 2 mid-job =="
run_cluster "$TMP/crash.bin" 2 $((21000 + RANDOM % 10000))
grep -q "declaring dead" "$TMP/master.log" || {
  echo "note: master log has no dead-peer line (job may have finished" \
       "before the kill); accepting if output matches" >&2
}
cmp "$TMP/ref.bin" "$TMP/crash.bin" || {
  echo "FAIL: post-crash forest differs from reference" >&2
  exit 1
}
echo "PASS: job survived SIGKILL'd worker with identical output"

echo "== observability: endpoints on every rank + merged trace =="
run_cluster "$TMP/obs.bin" "" $((21000 + RANDOM % 10000)) \
  $((31000 + RANDOM % 10000))
[[ -s "$TMP/trace.json" ]] || {
  echo "FAIL: master wrote no merged trace" >&2
  exit 1
}
"$TOP" --validate-trace="$TMP/trace.json" --expect-ranks="$WORKERS" || {
  echo "FAIL: merged trace invalid (lanes/causality)" >&2
  exit 1
}
cmp "$TMP/ref.bin" "$TMP/obs.bin" || {
  echo "FAIL: forest changed with observability enabled" >&2
  exit 1
}
echo "PASS: observability plane live on all ranks, trace merged," \
     "training bytes unperturbed"
