#!/usr/bin/env bash
# Multi-process cluster acceptance test (run by ctest as
# `cluster_parity`):
#
#  1. a 4-worker localhost TCP cluster trains a seeded forest
#     byte-identical to the in-process transport on the same
#     seed/config;
#  2. SIGKILL-ing one worker mid-job trips dead-peer detection and the
#     job still completes — with the same bytes — via the k-replica
#     recovery path.
set -euo pipefail

NODE="${TREESERVER_NODE:?set TREESERVER_NODE to the treeserver_node binary}"
WORKERS=4
TMP="$(mktemp -d)"
PIDS=()

cleanup() {
  for pid in "${PIDS[@]:-}"; do
    kill -9 "$pid" 2>/dev/null || true
  done
  rm -rf "$TMP"
}
trap cleanup EXIT

# Common job/dataset config. Big enough that the crash run is still
# mid-job ~half a second in; deterministic in the seeds.
FLAGS=(--workers=$WORKERS --rows=40000 --features=16 --categorical=4
       --classes=3 --data-seed=7 --trees=12 --max-depth=10 --min-leaf=4
       --job-seed=3 --compers=2 --replication=2)

peers_for() {
  local base=$1 peers=""
  for ((i = 0; i < WORKERS; i++)); do
    peers+="127.0.0.1:$((base + i)),"
  done
  echo "${peers}127.0.0.1:$((base + WORKERS))"
}

# run_cluster <out-file> <kill-worker-rank-or-empty> <base-port>
run_cluster() {
  local out=$1 kill_rank=$2 base=$3
  local peers; peers="$(peers_for "$base")"
  local wpids=()
  for ((i = 0; i < WORKERS; i++)); do
    "$NODE" --rank="$i" --peers="$peers" "${FLAGS[@]}" \
      --heartbeat-ms=20 --miss-limit=10 2>"$TMP/w$i.log" &
    wpids+=($!)
    PIDS+=($!)
  done
  "$NODE" --rank=master --peers="$peers" "${FLAGS[@]}" \
    --heartbeat-ms=20 --miss-limit=10 --out="$out" 2>"$TMP/master.log" &
  local master_pid=$!
  PIDS+=("$master_pid")

  if [[ -n "$kill_rank" ]]; then
    # Let the handshake finish and the job start, then kill abruptly.
    sleep 0.5
    kill -9 "${wpids[$kill_rank]}" 2>/dev/null || true
  fi

  if ! wait "$master_pid"; then
    echo "FAIL: master exited non-zero (log below)" >&2
    cat "$TMP/master.log" >&2
    return 1
  fi
  for ((i = 0; i < WORKERS; i++)); do
    wait "${wpids[$i]}" 2>/dev/null || true
  done
  PIDS=()
  return 0
}

echo "== in-process reference =="
"$NODE" --mode=inproc "${FLAGS[@]}" --out="$TMP/ref.bin"
[[ -s "$TMP/ref.bin" ]] || { echo "FAIL: empty reference forest" >&2; exit 1; }

echo "== 4-worker TCP cluster =="
run_cluster "$TMP/tcp.bin" "" $((21000 + RANDOM % 10000))
cmp "$TMP/ref.bin" "$TMP/tcp.bin" || {
  echo "FAIL: TCP forest differs from in-process forest" >&2
  exit 1
}
echo "PASS: TCP forest byte-identical to in-process"

echo "== 4-worker TCP cluster, SIGKILL worker 2 mid-job =="
run_cluster "$TMP/crash.bin" 2 $((21000 + RANDOM % 10000))
grep -q "declaring dead" "$TMP/master.log" || {
  echo "note: master log has no dead-peer line (job may have finished" \
       "before the kill); accepting if output matches" >&2
}
cmp "$TMP/ref.bin" "$TMP/crash.bin" || {
  echo "FAIL: post-crash forest differs from reference" >&2
  exit 1
}
echo "PASS: job survived SIGKILL'd worker with identical output"
