// Terminal observability companion for treeserver_node ranks.
//
// Modes:
//   treeserver_top HOST:PORT [HOST:PORT ...]
//       one-shot dashboard: fetch /statusz from every rank endpoint
//       and render one row per rank (add --watch=SECONDS to refresh).
//   treeserver_top --fetch=HOST:PORT/PATH
//       raw GET, body to stdout (curl-free smoke probes in scripts).
//   treeserver_top --fleet=HOST:PORT [--watch=SECONDS]
//       serving-fleet dashboard fed from the router's /statusz:
//       router totals (accepted/shed/p99) plus one row per replica
//       (health, rotation, queue, requests — QPS in watch mode — and
//       the model version table).
//   treeserver_top --validate-trace=FILE --expect-ranks=N
//       validate a merged Chrome trace: well-formed JSON, >= 1 event
//       in every expected process lane (master + N workers), and the
//       earliest master scheduling span not after the earliest worker
//       compute span (clock rebasing preserved causality). Add
//       --allow-missing-lanes=K to tolerate up to K empty worker
//       lanes (a SIGKILL'd fleet replica cannot answer a trace
//       request).
//   treeserver_top --self-test
//       exercise the HTTP client/server and the trace validator
//       in-process; exit 0 on success (tools/check.sh smoke stage).

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/http_server.h"
#include "common/json.h"
#include "common/trace_merge.h"

namespace treeserver {
namespace {

bool SplitHostPort(const std::string& addr, std::string* host, int* port,
                   std::string* path) {
  size_t slash = addr.find('/');
  std::string hp = slash == std::string::npos ? addr : addr.substr(0, slash);
  *path = slash == std::string::npos ? "/" : addr.substr(slash);
  size_t colon = hp.rfind(':');
  if (colon == std::string::npos) return false;
  *host = hp.substr(0, colon);
  *port = std::atoi(hp.c_str() + colon + 1);
  return *port > 0 && *port <= 65535;
}

int Fetch(const std::string& target) {
  std::string host, path;
  int port = 0;
  if (!SplitHostPort(target, &host, &port, &path)) {
    std::fprintf(stderr, "bad --fetch target %s (want HOST:PORT/PATH)\n",
                 target.c_str());
    return 2;
  }
  std::string body;
  int status_code = 0;
  Status st =
      HttpGet(host, static_cast<uint16_t>(port), path, &body, &status_code);
  if (!st.ok()) {
    std::fprintf(stderr, "fetch %s: %s\n", target.c_str(),
                 st.ToString().c_str());
    return 1;
  }
  std::fwrite(body.data(), 1, body.size(), stdout);
  if (status_code != 200) {
    std::fprintf(stderr, "fetch %s: HTTP %d\n", target.c_str(), status_code);
    return 1;
  }
  return 0;
}

int Dashboard(const std::vector<std::string>& endpoints, int watch_seconds) {
  do {
    if (watch_seconds > 0) std::printf("\x1b[H\x1b[2J");
    std::printf("%-22s %-8s %10s %10s %10s %8s %8s %7s %10s\n", "endpoint",
                "role", "in-flight", "queued", "computed", "slow", "retrans",
                "fenced", "rss(MB)");
    for (const std::string& ep : endpoints) {
      std::string host, path;
      int port = 0;
      if (!SplitHostPort(ep, &host, &port, &path)) {
        std::printf("%-22s bad endpoint\n", ep.c_str());
        continue;
      }
      std::string body;
      Status st =
          HttpGet(host, static_cast<uint16_t>(port), "/statusz", &body);
      JsonValue v;
      if (!st.ok() || !JsonValue::Parse(body, &v).ok()) {
        std::printf("%-22s unreachable (%s)\n", ep.c_str(),
                    st.ToString().c_str());
        continue;
      }
      const std::string role = v.StringOr("role", "?");
      const double in_flight = role == "master"
                                   ? v.NumberOr("tasks_in_flight", 0)
                                   : v.NumberOr("tasks_parked", 0);
      const double queued = role == "master" ? v.NumberOr("bplan_depth", 0)
                                             : v.NumberOr("btask_depth", 0);
      std::printf("%-22s %-8s %10.0f %10.0f %10.0f %8.0f %8.0f %7.0f %10.1f\n",
                  ep.c_str(), role.c_str(), in_flight, queued,
                  v.NumberOr("tasks_computed", 0), v.NumberOr("slow_tasks", 0),
                  v.NumberOr("retransmits", 0), v.NumberOr("fenced_msgs", 0),
                  v.NumberOr("rss_bytes", 0) / (1024.0 * 1024.0));
    }
    std::fflush(stdout);
    if (watch_seconds > 0) ::sleep(static_cast<unsigned>(watch_seconds));
  } while (watch_seconds > 0);
  return 0;
}

/// One-shot (or --watch) dashboard over the fleet router's /statusz.
/// In watch mode the per-replica QPS column is the request-count delta
/// between refreshes; the first frame shows 0.
int FleetView(const std::string& endpoint, int watch_seconds) {
  std::string host, path;
  int port = 0;
  if (!SplitHostPort(endpoint, &host, &port, &path)) {
    std::fprintf(stderr, "bad --fleet endpoint %s (want HOST:PORT)\n",
                 endpoint.c_str());
    return 2;
  }
  std::vector<double> last_requests;
  do {
    std::string body;
    Status st =
        HttpGet(host, static_cast<uint16_t>(port), "/statusz", &body);
    JsonValue v;
    if (!st.ok() || !JsonValue::Parse(body, &v).ok()) {
      std::fprintf(stderr, "fleet: router %s unreachable (%s)\n",
                   endpoint.c_str(), st.ToString().c_str());
      return 1;
    }
    if (watch_seconds > 0) std::printf("\x1b[H\x1b[2J");
    const JsonValue* lat = v.Find("latency_us");
    std::printf(
        "router %s  accepted=%.0f shed=%.0f retransmits=%.0f failovers=%.0f "
        "p50=%.0fus p99=%.0fus\n",
        endpoint.c_str(), v.NumberOr("accepted", 0), v.NumberOr("shed", 0),
        v.NumberOr("retransmits", 0), v.NumberOr("failovers", 0),
        lat != nullptr ? lat->NumberOr("p50", 0) : 0,
        lat != nullptr ? lat->NumberOr("p99", 0) : 0);
    const JsonValue* canaries = v.Find("canaries");
    if (canaries != nullptr && canaries->is_array()) {
      for (const JsonValue& c : canaries->as_array()) {
        const JsonValue* arm = c.Find("canary");
        std::printf("canary %s v%.0f on r%.0f  count=%.0f errors=%.0f "
                    "p99=%.0fus\n",
                    c.StringOr("model", "?").c_str(), c.NumberOr("version", 0),
                    c.NumberOr("replica", -1),
                    arm != nullptr ? arm->NumberOr("count", 0) : 0,
                    arm != nullptr ? arm->NumberOr("errors", 0) : 0,
                    arm != nullptr ? arm->NumberOr("p99_us", 0) : 0);
      }
    }
    std::printf("%-5s %-6s %-9s %7s %11s %10s %8s %8s  %s\n", "rank", "alive",
                "rotation", "queue", "outstanding", "requests", "qps",
                "rejected", "models");
    const JsonValue* replicas = v.Find("replicas");
    size_t idx = 0;
    if (replicas != nullptr && replicas->is_array()) {
      for (const JsonValue& r : replicas->as_array()) {
        const double requests = r.NumberOr("requests", 0);
        double qps = 0;
        if (idx < last_requests.size() && watch_seconds > 0) {
          qps = (requests - last_requests[idx]) / watch_seconds;
        }
        if (idx >= last_requests.size()) last_requests.resize(idx + 1, 0);
        last_requests[idx] = requests;
        std::string models;
        const JsonValue* mv = r.Find("models");
        if (mv != nullptr && mv->is_array()) {
          for (const JsonValue& m : mv->as_array()) {
            if (!models.empty()) models += " ";
            models += m.StringOr("name", "?") + ":v" +
                      std::to_string(
                          static_cast<long long>(m.NumberOr("version", 0)));
          }
        }
        const JsonValue* alive = r.Find("alive");
        const JsonValue* rotation = r.Find("in_rotation");
        std::printf("%-5.0f %-6s %-9s %7.0f %11.0f %10.0f %8.1f %8.0f  %s\n",
                    r.NumberOr("rank", -1),
                    alive != nullptr && alive->is_bool() && alive->as_bool()
                        ? "yes"
                        : "NO",
                    rotation != nullptr && rotation->is_bool() &&
                            rotation->as_bool()
                        ? "in"
                        : "OUT",
                    r.NumberOr("queue_depth", 0), r.NumberOr("outstanding", 0),
                    requests, qps, r.NumberOr("rejected", 0), models.c_str());
        ++idx;
      }
    }
    std::fflush(stdout);
    if (watch_seconds > 0) ::sleep(static_cast<unsigned>(watch_seconds));
  } while (watch_seconds > 0);
  return 0;
}

/// Validates a merged Chrome trace produced by the master: one process
/// lane per expected rank with at least one non-metadata event, and
/// master scheduling preceding worker computation after rebasing.
/// Up to `allow_missing` empty worker lanes are tolerated (dead ranks
/// cannot answer a trace request).
int ValidateTrace(const std::string& text, int expect_ranks,
                  int allow_missing = 0) {
  JsonValue doc;
  if (Status st = JsonValue::Parse(text, &doc); !st.ok()) {
    std::fprintf(stderr, "trace: bad JSON: %s\n", st.ToString().c_str());
    return 1;
  }
  const JsonValue* events = doc.Find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    std::fprintf(stderr, "trace: no traceEvents array\n");
    return 1;
  }
  // Lane pids: master = TracePidForRank(kMasterRank) = 1, worker w =
  // w + 2 (common/trace_merge.h).
  std::vector<uint64_t> events_per_lane(
      static_cast<size_t>(expect_ranks) + 2, 0);
  double first_master_schedule = -1.0;
  double first_worker_compute = -1.0;
  for (const JsonValue& e : events->as_array()) {
    const std::string ph = e.StringOr("ph", "");
    if (ph == "M") continue;  // metadata carries no timestamp
    const int pid = static_cast<int>(e.NumberOr("pid", -1));
    if (pid >= 1 && pid < static_cast<int>(events_per_lane.size())) {
      ++events_per_lane[static_cast<size_t>(pid)];
    }
    const std::string name = e.StringOr("name", "");
    const double ts = e.NumberOr("ts", -1.0);
    if (ts < 0) continue;
    if (pid == 1 && name == "schedule" &&
        (first_master_schedule < 0 || ts < first_master_schedule)) {
      first_master_schedule = ts;
    }
    if (pid >= 2 && name.rfind("compute-", 0) == 0 &&
        (first_worker_compute < 0 || ts < first_worker_compute)) {
      first_worker_compute = ts;
    }
  }
  int failures = 0;
  if (events_per_lane[1] == 0) {
    std::fprintf(stderr, "trace: master lane (pid 1) has no events\n");
    ++failures;
  }
  int missing_workers = 0;
  for (int w = 0; w < expect_ranks; ++w) {
    if (events_per_lane[static_cast<size_t>(w) + 2] == 0) {
      std::fprintf(stderr, "trace: worker %d lane (pid %d) has no events\n", w,
                   w + 2);
      ++missing_workers;
    }
  }
  if (missing_workers > allow_missing) {
    failures += missing_workers - allow_missing;
  } else if (missing_workers > 0) {
    std::fprintf(stderr, "trace: tolerating %d missing lane(s) (<= %d)\n",
                 missing_workers, allow_missing);
  }
  if (first_master_schedule >= 0 && first_worker_compute >= 0 &&
      first_master_schedule > first_worker_compute) {
    std::fprintf(stderr,
                 "trace: causality violated: first master schedule at %.1fus "
                 "is after first worker compute at %.1fus\n",
                 first_master_schedule, first_worker_compute);
    ++failures;
  }
  if (failures == 0) {
    std::fprintf(stderr, "trace: ok (%d lanes, schedule@%.1fus compute@%.1fus)\n",
                 expect_ranks + 1, first_master_schedule,
                 first_worker_compute);
  }
  return failures == 0 ? 0 : 1;
}

int ValidateTraceFile(const std::string& path, int expect_ranks,
                      int allow_missing) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot read %s\n", path.c_str());
    return 2;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return ValidateTrace(buf.str(), expect_ranks, allow_missing);
}

int SelfTest() {
  // HTTP server + client round trip.
  HttpServer server;
  server.Handle("/probe", [](const std::string& query) {
    HttpResponse resp;
    resp.body = "probe:" + query;
    return resp;
  });
  if (Status st = server.Start("127.0.0.1", 0); !st.ok()) {
    std::fprintf(stderr, "self-test: http start: %s\n", st.ToString().c_str());
    return 1;
  }
  std::string body;
  int code = 0;
  Status st = HttpGet("127.0.0.1", server.port(), "/probe?x=1", &body, &code);
  server.Stop();
  if (!st.ok() || code != 200 || body != "probe:x=1") {
    std::fprintf(stderr, "self-test: http round trip failed (%s, %d, %s)\n",
                 st.ToString().c_str(), code, body.c_str());
    return 1;
  }

  // Trace validator against a synthetic 1-master + 2-worker trace.
  std::vector<RankTrace> ranks(3);
  ranks[0].rank = -1;
  ranks[0].label = "master";
  TraceEventCopy sched;
  sched.name = "schedule";
  sched.phase = 'X';
  sched.ts_ns = 1000;
  sched.dur_ns = 500;
  ranks[0].events.push_back(sched);
  for (int w = 0; w < 2; ++w) {
    ranks[static_cast<size_t>(w) + 1].rank = w;
    ranks[static_cast<size_t>(w) + 1].label = "worker";
    TraceEventCopy compute;
    compute.name = "compute-column";
    compute.phase = 'X';
    compute.ts_ns = 5000;
    compute.dur_ns = 100;
    ranks[static_cast<size_t>(w) + 1].events.push_back(compute);
  }
  if (ValidateTrace(MergedChromeTraceJson(ranks), 2) != 0) {
    std::fprintf(stderr, "self-test: valid trace rejected\n");
    return 1;
  }
  // Reject a trace missing a worker lane.
  ranks.pop_back();
  if (ValidateTrace(MergedChromeTraceJson(ranks), 2) == 0) {
    std::fprintf(stderr, "self-test: missing lane not detected\n");
    return 1;
  }
  std::fprintf(stderr, "self-test: ok\n");
  return 0;
}

int Run(int argc, char** argv) {
  std::vector<std::string> endpoints;
  std::string fetch_target;
  std::string trace_file;
  std::string fleet_endpoint;
  int expect_ranks = -1;
  int allow_missing_lanes = 0;
  int watch_seconds = 0;
  bool self_test = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto flag_value = [&arg](const char* name) -> const char* {
      std::string prefix = std::string("--") + name + "=";
      return arg.rfind(prefix, 0) == 0 ? arg.c_str() + prefix.size() : nullptr;
    };
    if (const char* v = flag_value("fetch")) {
      fetch_target = v;
    } else if (const char* v = flag_value("validate-trace")) {
      trace_file = v;
    } else if (const char* v = flag_value("expect-ranks")) {
      expect_ranks = std::atoi(v);
    } else if (const char* v = flag_value("allow-missing-lanes")) {
      allow_missing_lanes = std::atoi(v);
    } else if (const char* v = flag_value("fleet")) {
      fleet_endpoint = v;
    } else if (const char* v = flag_value("watch")) {
      watch_seconds = std::atoi(v);
    } else if (arg == "--self-test") {
      self_test = true;
    } else if (arg == "--help" || arg == "-h") {
      std::fprintf(stderr,
                   "treeserver_top [HOST:PORT ...] [--watch=S]\n"
                   "               [--fleet=HOST:PORT]\n"
                   "               [--fetch=HOST:PORT/PATH]\n"
                   "               [--validate-trace=F --expect-ranks=N\n"
                   "                --allow-missing-lanes=K]\n"
                   "               [--self-test]\n");
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return 2;
    } else {
      endpoints.push_back(arg);
    }
  }
  if (self_test) return SelfTest();
  if (!fetch_target.empty()) return Fetch(fetch_target);
  if (!fleet_endpoint.empty()) return FleetView(fleet_endpoint, watch_seconds);
  if (!trace_file.empty()) {
    if (expect_ranks < 0) {
      std::fprintf(stderr, "--validate-trace needs --expect-ranks\n");
      return 2;
    }
    return ValidateTraceFile(trace_file, expect_ranks, allow_missing_lanes);
  }
  if (endpoints.empty()) {
    std::fprintf(stderr, "no endpoints; try --help\n");
    return 2;
  }
  return Dashboard(endpoints, watch_seconds);
}

}  // namespace
}  // namespace treeserver

int main(int argc, char** argv) { return treeserver::Run(argc, argv); }
