#!/usr/bin/env bash
# Seeded chaos soak (run by ctest as `chaos_soak`):
#
# For each fault profile, a 4-worker localhost TCP cluster trains with
# every rank's transport wrapped in the seeded fault injector
# (treeserver_node --chaos-profile/--chaos-seed). Dropped, duplicated,
# delayed, reordered, corrupted and partitioned messages must all be
# absorbed by the reliable-delivery layer: the trained forest has to be
# byte-identical to the fault-free in-process reference.
#
# The first chaos run also exercises --checkpoint-dir: the master must
# leave a durable, loadable checkpoint file behind.
#
# Environment knobs (used by the check.sh smoke stage):
#   CHAOS_PROFILES  space-separated profile list
#                   (default: drop-heavy duplicate-storm partition-heal mixed)
#   CHAOS_SEED      base RNG seed, rank r uses CHAOS_SEED+r (default 20260808)
set -euo pipefail

NODE="${TREESERVER_NODE:?set TREESERVER_NODE to the treeserver_node binary}"
WORKERS=4
read -r -a PROFILES <<<"${CHAOS_PROFILES:-drop-heavy duplicate-storm partition-heal mixed}"
SEED="${CHAOS_SEED:-20260808}"
TMP="$(mktemp -d)"
PIDS=()

cleanup() {
  for pid in "${PIDS[@]:-}"; do
    kill -9 "$pid" 2>/dev/null || true
  done
  rm -rf "$TMP"
}
trap cleanup EXIT

# Deterministic job/dataset config shared by the reference and every
# chaos run. Large enough that the timed fault windows (partitions at
# 200-900ms, stalls at 500-900ms) open while the job is still running.
FLAGS=(--workers=$WORKERS --rows=20000 --features=12 --categorical=3
       --classes=3 --data-seed=11 --trees=8 --max-depth=9 --min-leaf=4
       --job-seed=5 --compers=2 --replication=2)

peers_for() {
  local base=$1 peers=""
  for ((i = 0; i < WORKERS; i++)); do
    peers+="127.0.0.1:$((base + i)),"
  done
  echo "${peers}127.0.0.1:$((base + WORKERS))"
}

# run_chaos_cluster <out-file> <profile> <base-port> [master-extra-flag...]
run_chaos_cluster() {
  local out=$1 profile=$2 base=$3
  shift 3
  local peers; peers="$(peers_for "$base")"
  local wpids=()
  for ((i = 0; i < WORKERS; i++)); do
    "$NODE" --rank="$i" --peers="$peers" "${FLAGS[@]}" \
      --chaos-profile="$profile" --chaos-seed=$((SEED + i)) \
      --heartbeat-ms=20 --miss-limit=10 2>"$TMP/w$i.log" &
    wpids+=($!)
    PIDS+=($!)
  done
  "$NODE" --rank=master --peers="$peers" "${FLAGS[@]}" \
    --chaos-profile="$profile" --chaos-seed=$((SEED + WORKERS)) \
    --heartbeat-ms=20 --miss-limit=10 --out="$out" "$@" \
    2>"$TMP/master.log" &
  local master_pid=$!
  PIDS+=("$master_pid")

  if ! wait "$master_pid"; then
    echo "FAIL: master exited non-zero under profile $profile (log below)" >&2
    cat "$TMP/master.log" >&2
    return 1
  fi
  for ((i = 0; i < WORKERS; i++)); do
    wait "${wpids[$i]}" 2>/dev/null || true
  done
  PIDS=()
  grep -q "chaos: rank -1 injecting profile '$profile'" "$TMP/master.log" || {
    echo "FAIL: master log shows no fault injection for $profile" >&2
    return 1
  }
  return 0
}

echo "== fault-free in-process reference =="
"$NODE" --mode=inproc "${FLAGS[@]}" --out="$TMP/ref.bin"
[[ -s "$TMP/ref.bin" ]] || { echo "FAIL: empty reference forest" >&2; exit 1; }

first=1
for profile in "${PROFILES[@]}"; do
  echo "== chaos soak: profile $profile (seed $SEED) =="
  extra=()
  if [[ $first == 1 ]]; then
    mkdir -p "$TMP/ckpt"
    extra=(--checkpoint-dir="$TMP/ckpt" --checkpoint-period-ms=200)
  fi
  run_chaos_cluster "$TMP/$profile.bin" "$profile" \
    $((22000 + RANDOM % 10000)) ${extra[@]+"${extra[@]}"}
  cmp "$TMP/ref.bin" "$TMP/$profile.bin" || {
    echo "FAIL: forest under profile $profile differs from reference" >&2
    exit 1
  }
  if [[ $first == 1 ]]; then
    [[ -s "$TMP/ckpt/master.ckpt" ]] || {
      echo "FAIL: master left no durable checkpoint" >&2
      exit 1
    }
    echo "PASS: durable checkpoint written ($(wc -c <"$TMP/ckpt/master.ckpt") bytes)"
    first=0
  fi
  echo "PASS: profile $profile byte-identical to fault-free reference"
done

echo "PASS: chaos soak (${PROFILES[*]}) converged byte-identically"
