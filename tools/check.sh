#!/usr/bin/env bash
# Tier-1 gate plus sanitizer passes.
#
#   tools/check.sh          # build + ctest + smoke + TSan + UBSan passes
#   tools/check.sh --fast   # skip the sanitizer passes
#
# The TSan stage rebuilds into build-tsan/ with TS_SANITIZE=thread and
# runs the concurrent-structure and engine-stress suites, which cover
# every lock/atomic in the engine hot paths. The UBSan stage rebuilds
# into build-ubsan/ with TS_SANITIZE=undefined and runs the split-kernel
# and trainer suites, which exercise the index/offset arithmetic of the
# histogram and exact scratch kernels.
set -euo pipefail

cd "$(dirname "$0")/.."

FAST=0
for arg in "$@"; do
  case "$arg" in
    --fast) FAST=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

echo "== tier-1: configure + build =="
cmake -B build -S . >/dev/null
cmake --build build -j

echo "== tier-1: ctest =="
(cd build && ctest --output-on-failure -j"$(nproc)")

echo "== serve smoke: quickstart example + quick serving bench =="
./build/examples/serve_quickstart
./build/bench/bench_serve --quick

echo "== rpc smoke: quick transport bench =="
./build/bench/bench_rpc --quick

echo "== chaos smoke: injector overhead guard + fixed-seed mixed profile =="
./build/bench/bench_rpc --chaos-overhead
TREESERVER_NODE=./build/tools/treeserver_node \
  CHAOS_PROFILES="mixed" CHAOS_SEED=20260808 \
  bash tools/chaos_test.sh

echo "== fleet smoke: router + 2 replicas, kill-one failover =="
TREEFLEET=./build/tools/treefleet \
  TREESERVER_TOP=./build/tools/treeserver_top \
  FLEET_REPLICAS=2 FLEET_CHAOS=none FLEET_KILL_RANK=1 \
  FLEET_REQUESTS=4000 FLEET_PERIOD_US=500 \
  bash tools/fleet_failover_test.sh

echo "== observability smoke: top self-test + overhead guard =="
./build/tools/treeserver_top --self-test
./build/bench/bench_micro --obs-overhead

if [[ "$FAST" == "1" ]]; then
  echo "== skipping sanitizer passes (--fast) =="
  exit 0
fi

echo "== tsan: configure + build =="
cmake -B build-tsan -S . -DTS_SANITIZE=thread >/dev/null
cmake --build build-tsan -j

echo "== tsan: concurrent_test + engine_stress_test + serve + rpc + obs + chaos + fleet =="
# Chaos*/Reliable*/FaultInject* run the seeded fault injector, the
# ack/retransmit layer and a full chaos training job under TSan — the
# injector's delivery thread and the retransmit thread touch every
# engine queue concurrently, exactly the interleavings TSan exists for.
# Fleet*/ModelRegistry* add the router's timer/receive threads and the
# hot-swap-under-load registry stress on top.
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/treeserver_tests \
  --gtest_filter='BlockingQueue*:ConcurrentHashMap*:PlanDeque*:EngineStress*:InferenceServer*:ModelRegistry*:Fleet*:TcpTransport*:TcpCluster*:HttpServer*:StatsReporter*:Watchdog*:TracerTest*:Chaos*:Reliable*:FaultInject*'

echo "== ubsan: configure + build =="
cmake -B build-ubsan -S . -DTS_SANITIZE=undefined >/dev/null
cmake --build build-ubsan -j

echo "== ubsan: split/histogram/simd kernels + packed layouts + trainer + forest =="
# Simd*/Packed* add the fused vector kernels' gather/offset arithmetic
# and the bit-packed node decoding (20-bit fields, route-table clamps)
# on top of the original split/trainer coverage.
UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
  ./build-ubsan/tests/treeserver_tests \
  --gtest_filter='Split*:Binned*:NodeHistogram*:Hist*:Trainer*:Forest*:Simd*:Packed*'

echo "== scalar-only: configure + build + ctest (-DTS_SIMD=OFF) =="
# The parity suites must also pass with every vector translation unit
# stripped from the build — the scalar twins ARE the reference.
cmake -B build-scalar -S . -DTS_SIMD=OFF >/dev/null
cmake --build build-scalar -j
(cd build-scalar && ctest --output-on-failure -j"$(nproc)")

echo "== all checks passed =="
