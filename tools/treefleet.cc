// Serving-fleet launcher and CLI: one binary hosting every fleet role.
//
//   treefleet train    --out=model.bin [dataset/job flags]
//   treefleet replica  --rank=R --workers=N --peers=h:p,... [--http-port=P]
//   treefleet drive    --model=model.bin --workers=N --peers=... \
//       [--requests=N] [--canary-model=m2.bin] [--trace-out=t.json]
//   treefleet push     --router=H:P --name=m --path=model.bin [--canary=1]
//   treefleet promote  --router=H:P --name=m
//   treefleet rollback --router=H:P --name=m
//   treefleet status   --router=H:P
//
// `replica` runs one FleetReplica rank over the TCP transport until
// the router's kShutdown (or a dead router) ends it. `drive` is the
// router side: it pushes the model, drives paced prediction load,
// checks every accepted answer byte-for-byte against the in-process
// CompiledForest reference, reconciles the shed count against the
// fleet.shed counter, and (with --canary-model) exercises a canary
// push + forced rollback. tools/fleet_failover_test.sh SIGKILLs a
// replica in the middle of all this.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/http_server.h"
#include "common/logging.h"
#include "common/serial.h"
#include "common/trace.h"
#include "fleet/replica.h"
#include "fleet/router.h"
#include "forest/forest.h"
#include "rpc/fault_injection.h"
#include "rpc/tcp_transport.h"
#include "serve/compiled_model.h"
#include "table/datasets.h"

namespace treeserver {
namespace {

struct FleetOptions {
  std::string command;

  // Cluster shape (replica/drive): worker addresses 0..N-1 then router.
  int rank = 0;
  int workers = 3;
  std::vector<std::string> peers;
  int64_t wait_peers_ms = 30000;
  int64_t heartbeat_ms = 50;
  int miss_limit = 20;

  // Dataset (identical in train/drive, like treeserver_node).
  size_t rows = 4000;
  int features = 8;
  int categorical = 3;
  int classes = 3;
  uint64_t data_seed = 7;

  // Job (train).
  int trees = 8;
  int max_depth = 7;
  uint64_t job_seed = 17;

  // Files.
  std::string out;           // train: model file; drive: predictions
  std::string model;         // drive: v1 model file
  std::string canary_model;  // drive: v2 model file for the canary leg
  std::string trace_out;

  // Drive load shape.
  int requests = 0;      // 0 => one per dataset row
  int period_us = 300;   // pacing between sends
  int deadline_ms = 8000;
  size_t max_inflight = 1024;

  // Chaos (replica/drive).
  std::string chaos_profile;
  uint64_t chaos_seed = 1;

  // Observability.
  int http_port = -1;
  bool trace = false;

  // Serving node layout (replica): soa | packed.
  NodeLayout node_layout = NodeLayout::kSoa;

  // HTTP client subcommands.
  std::string router_addr;  // H:P
  std::string name = "m";
  std::string path;
  bool canary = false;
};

bool ParseFlag(const std::string& arg, const std::string& name,
               std::string* value) {
  std::string prefix = "--" + name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *value = arg.substr(prefix.size());
  return true;
}

std::vector<std::string> SplitCommas(const std::string& s) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= s.size()) {
    size_t comma = s.find(',', start);
    if (comma == std::string::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

void Usage() {
  std::fprintf(
      stderr,
      "treefleet: replicated serving fleet (router + replicas)\n"
      "  treefleet train --out=FILE [--rows --features --categorical\n"
      "      --classes --data-seed --trees --max-depth --job-seed]\n"
      "  treefleet replica --rank=R --workers=N --peers=h:p,...\n"
      "      [--http-port=P] [--node-layout=soa|packed]\n"
      "      [--chaos-profile=NAME --chaos-seed=N] [--trace=1]\n"
      "  treefleet drive --model=FILE --workers=N --peers=...\n"
      "      [--requests=N] [--period-us=N] [--deadline-ms=N]\n"
      "      [--max-inflight=N] [--canary-model=FILE] [--out=FILE]\n"
      "      [--http-port=P] [--trace=1 --trace-out=FILE]\n"
      "      [--chaos-profile=NAME --chaos-seed=N]\n"
      "  treefleet push --router=H:P --name=m --path=FILE [--canary=1]\n"
      "  treefleet promote|rollback --router=H:P --name=m\n"
      "  treefleet status --router=H:P\n"
      "Peers list worker (replica) addresses 0..N-1, then the router.\n");
}

bool ParseArgs(int argc, char** argv, FleetOptions* opt) {
  if (argc < 2) return false;
  opt->command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    std::string v;
    if (ParseFlag(arg, "rank", &v)) {
      opt->rank = std::atoi(v.c_str());
    } else if (ParseFlag(arg, "workers", &v)) {
      opt->workers = std::atoi(v.c_str());
    } else if (ParseFlag(arg, "peers", &v)) {
      opt->peers = SplitCommas(v);
    } else if (ParseFlag(arg, "wait-peers-ms", &v)) {
      opt->wait_peers_ms = std::atoll(v.c_str());
    } else if (ParseFlag(arg, "heartbeat-ms", &v)) {
      opt->heartbeat_ms = std::atoll(v.c_str());
    } else if (ParseFlag(arg, "miss-limit", &v)) {
      opt->miss_limit = std::atoi(v.c_str());
    } else if (ParseFlag(arg, "rows", &v)) {
      opt->rows = static_cast<size_t>(std::atoll(v.c_str()));
    } else if (ParseFlag(arg, "features", &v)) {
      opt->features = std::atoi(v.c_str());
    } else if (ParseFlag(arg, "categorical", &v)) {
      opt->categorical = std::atoi(v.c_str());
    } else if (ParseFlag(arg, "classes", &v)) {
      opt->classes = std::atoi(v.c_str());
    } else if (ParseFlag(arg, "data-seed", &v)) {
      opt->data_seed = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "trees", &v)) {
      opt->trees = std::atoi(v.c_str());
    } else if (ParseFlag(arg, "max-depth", &v)) {
      opt->max_depth = std::atoi(v.c_str());
    } else if (ParseFlag(arg, "job-seed", &v)) {
      opt->job_seed = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "out", &v)) {
      opt->out = v;
    } else if (ParseFlag(arg, "model", &v)) {
      opt->model = v;
    } else if (ParseFlag(arg, "canary-model", &v)) {
      opt->canary_model = v;
    } else if (ParseFlag(arg, "trace-out", &v)) {
      opt->trace_out = v;
    } else if (ParseFlag(arg, "requests", &v)) {
      opt->requests = std::atoi(v.c_str());
    } else if (ParseFlag(arg, "period-us", &v)) {
      opt->period_us = std::atoi(v.c_str());
    } else if (ParseFlag(arg, "deadline-ms", &v)) {
      opt->deadline_ms = std::atoi(v.c_str());
    } else if (ParseFlag(arg, "max-inflight", &v)) {
      opt->max_inflight = static_cast<size_t>(std::atoll(v.c_str()));
    } else if (ParseFlag(arg, "chaos-profile", &v)) {
      opt->chaos_profile = v;
    } else if (ParseFlag(arg, "chaos-seed", &v)) {
      opt->chaos_seed = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "http-port", &v)) {
      opt->http_port = std::atoi(v.c_str());
    } else if (ParseFlag(arg, "trace", &v)) {
      opt->trace = v == "1" || v == "true";
    } else if (ParseFlag(arg, "node-layout", &v)) {
      if (!ParseNodeLayout(v.c_str(), &opt->node_layout) ||
          opt->node_layout == NodeLayout::kQuantized) {
        std::fprintf(stderr,
                     "--node-layout=%s: replicas serve soa or packed\n",
                     v.c_str());
        return false;
      }
    } else if (ParseFlag(arg, "router", &v)) {
      opt->router_addr = v;
    } else if (ParseFlag(arg, "name", &v)) {
      opt->name = v;
    } else if (ParseFlag(arg, "path", &v)) {
      opt->path = v;
    } else if (ParseFlag(arg, "canary", &v)) {
      opt->canary = v == "1" || v == "true";
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

DataTable MakeTable(const FleetOptions& opt) {
  DatasetProfile profile;
  profile.name = "fleet";
  profile.rows = opt.rows;
  profile.num_numeric = opt.features;
  profile.num_categorical = opt.categorical;
  profile.num_classes = opt.classes;
  profile.missing_fraction = 0.05;
  return GenerateTable(profile, opt.data_seed);
}

uint16_t PortOfPeerEntry(const FleetOptions& opt, int rank) {
  size_t idx = rank == kMasterRank ? static_cast<size_t>(opt.workers)
                                   : static_cast<size_t>(rank);
  TS_CHECK(idx < opt.peers.size()) << "rank not covered by --peers";
  const std::string& addr = opt.peers[idx];
  size_t colon = addr.rfind(':');
  TS_CHECK(colon != std::string::npos) << "bad peer address " << addr;
  return static_cast<uint16_t>(std::atoi(addr.c_str() + colon + 1));
}

std::unique_ptr<TcpTransport> MakeTransport(const FleetOptions& opt,
                                            int rank) {
  TcpTransportOptions topt;
  topt.num_workers = opt.workers;
  topt.local_rank = rank;
  topt.listen_port = PortOfPeerEntry(opt, rank);
  topt.heartbeat_period_ms = opt.heartbeat_ms;
  topt.heartbeat_miss_limit = opt.miss_limit;
  return std::make_unique<TcpTransport>(topt);
}

std::unique_ptr<FaultInjectingTransport> MakeChaos(const FleetOptions& opt,
                                                   Transport* inner) {
  if (opt.chaos_profile.empty() || opt.chaos_profile == "none") return nullptr;
  FaultSchedule schedule;
  if (!FaultSchedule::Profile(opt.chaos_profile, opt.chaos_seed, &schedule)) {
    std::fprintf(stderr, "unknown --chaos-profile=%s (profiles: %s)\n",
                 opt.chaos_profile.c_str(), FaultSchedule::ProfileNames());
    std::exit(1);
  }
  // Replica death is the failover script's job (real SIGKILL); the
  // injector contributes drops/dups/corruption/partitions only.
  schedule.crashes.clear();
  std::fprintf(stderr, "chaos: injecting profile '%s' seed %llu\n",
               opt.chaos_profile.c_str(),
               static_cast<unsigned long long>(opt.chaos_seed));
  return std::make_unique<FaultInjectingTransport>(inner, schedule);
}

Status ReadFileBytes(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status(StatusCode::kIOError, "cannot open " + path);
  out->assign(std::istreambuf_iterator<char>(in),
              std::istreambuf_iterator<char>());
  return Status::OK();
}

int RunTrain(const FleetOptions& opt) {
  if (opt.out.empty()) {
    std::fprintf(stderr, "train: --out required\n");
    return 1;
  }
  DataTable table = MakeTable(opt);
  ForestJobSpec spec;
  spec.name = "fleet-job";
  spec.num_trees = opt.trees;
  spec.tree.max_depth = opt.max_depth;
  spec.column_ratio = 0.7;
  spec.seed = opt.job_seed;
  ForestModel model = TrainForestSerial(table, spec, 2);
  BinaryWriter w;
  model.Serialize(&w);
  std::ofstream out(opt.out, std::ios::binary | std::ios::trunc);
  if (!out || !out.write(w.buffer().data(),
                         static_cast<std::streamsize>(w.size()))) {
    std::fprintf(stderr, "train: cannot write %s\n", opt.out.c_str());
    return 1;
  }
  std::fprintf(stderr, "train: %zu trees (seed %llu) -> %s\n",
               model.num_trees(),
               static_cast<unsigned long long>(opt.job_seed),
               opt.out.c_str());
  return 0;
}

int RunReplica(const FleetOptions& opt) {
  if (opt.trace) Tracer::Global().Enable();
  auto transport = MakeTransport(opt, opt.rank);
  std::atomic<bool> router_dead{false};
  transport->SetPeerDeadCallback([&](int rank) {
    if (rank == kMasterRank) router_dead.store(true);
  });
  Status st = transport->ConnectPeers(opt.peers);
  if (!st.ok()) {
    std::fprintf(stderr, "replica %d: %s\n", opt.rank, st.ToString().c_str());
    return 1;
  }
  if (!transport->WaitForPeers(opt.wait_peers_ms)) {
    std::fprintf(stderr, "replica %d: peers did not connect\n", opt.rank);
    return 1;
  }
  std::unique_ptr<FaultInjectingTransport> chaos =
      MakeChaos(opt, transport.get());
  Transport* net = chaos != nullptr ? static_cast<Transport*>(chaos.get())
                                    : static_cast<Transport*>(transport.get());
  FleetReplicaConfig config;
  config.rank = opt.rank;
  config.serve.http_port = opt.http_port;
  config.node_layout = opt.node_layout;
  FleetReplica replica(net, config);
  replica.Start();
  std::fprintf(stderr, "replica %d: serving\n", opt.rank);
  while (!transport->task_queue(opt.rank).closed() && !router_dead.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  replica.Stop();
  if (chaos != nullptr) chaos->Stop();  // before the inner transport dies
  transport->Shutdown();
  std::fprintf(stderr, "replica %d: exiting (%s)\n", opt.rank,
               router_dead.load() ? "router died" : "shutdown");
  return 0;
}

/// Waits until every live replica's health pong reports `version` for
/// model `name`. Returns false on timeout.
bool WaitForVersionEverywhere(FleetRouter* router, const std::string& name,
                              uint32_t version, int timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    FleetStatus status = router->GetStatus();
    bool all = true;
    for (const FleetReplicaStatus& r : status.replicas) {
      if (!r.alive) continue;
      bool found = false;
      for (const auto& m : r.models) {
        if (m.name == name && m.version == version) found = true;
      }
      if (!found) all = false;
    }
    if (all) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return false;
}

int RunDrive(const FleetOptions& opt) {
  if (opt.model.empty()) {
    std::fprintf(stderr, "drive: --model required\n");
    return 1;
  }
  if (opt.trace) Tracer::Global().Enable();

  std::string model_bytes;
  if (Status st = ReadFileBytes(opt.model, &model_bytes); !st.ok()) {
    std::fprintf(stderr, "drive: %s\n", st.ToString().c_str());
    return 1;
  }
  ForestModel forest;
  {
    BinaryReader r(model_bytes);
    if (Status st = ForestModel::Deserialize(&r, &forest); !st.ok()) {
      std::fprintf(stderr, "drive: bad model: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  DataTable table = MakeTable(opt);
  CompiledForest compiled = CompiledForest::Compile(forest);
  std::vector<uint32_t> all_rows(table.num_rows());
  for (uint32_t i = 0; i < table.num_rows(); ++i) all_rows[i] = i;
  std::vector<int32_t> reference(table.num_rows());
  compiled.PredictLabel(table, all_rows.data(), all_rows.size(), -1,
                        reference.data());

  auto transport = MakeTransport(opt, kMasterRank);
  MetricsRegistry metrics;
  FleetRouterConfig config;
  config.max_inflight = opt.max_inflight;
  config.default_deadline_ms = opt.deadline_ms;
  config.metrics = &metrics;
  config.http_port = opt.http_port;
  config.clock_offset_ns = [&transport](int rank) {
    int64_t offset = 0;
    transport->PeerClockOffset(rank, &offset);
    return offset;
  };
  // The router doesn't exist yet when the callback must be installed
  // (before ConnectPeers), so bind it through an atomic set below.
  std::atomic<FleetRouter*> router_ptr{nullptr};
  transport->SetPeerDeadCallback([&router_ptr](int rank) {
    FleetRouter* r = router_ptr.load();
    if (rank != kMasterRank && r != nullptr) {
      std::fprintf(stderr, "drive: replica %d died\n", rank);
      r->MarkReplicaDead(rank);
    }
  });
  Status st = transport->ConnectPeers(opt.peers);
  if (!st.ok()) {
    std::fprintf(stderr, "drive: %s\n", st.ToString().c_str());
    return 1;
  }
  if (!transport->WaitForPeers(opt.wait_peers_ms)) {
    std::fprintf(stderr, "drive: replicas did not connect\n");
    return 1;
  }
  std::unique_ptr<FaultInjectingTransport> chaos =
      MakeChaos(opt, transport.get());
  Transport* net = chaos != nullptr ? static_cast<Transport*>(chaos.get())
                                    : static_cast<Transport*>(transport.get());
  auto router = std::make_unique<FleetRouter>(net, config);
  FleetRouter* active = router.get();
  router_ptr.store(active);
  active->Start();

  if (Status push = active->Push(opt.name, model_bytes); !push.ok()) {
    std::fprintf(stderr, "drive: push failed: %s\n", push.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "drive: pushed %s v1 to %d replicas\n",
               opt.name.c_str(), opt.workers);

  // Paced load: the failover script SIGKILLs a replica while this
  // loop is mid-flight.
  const int total = opt.requests > 0 ? opt.requests
                                     : static_cast<int>(table.num_rows());
  std::fprintf(stderr, "drive: driving %d requests\n", total);
  std::vector<std::future<Result<FleetBatchResult>>> futures;
  futures.reserve(total);
  for (int i = 0; i < total; ++i) {
    const uint32_t row = static_cast<uint32_t>(i) % table.num_rows();
    futures.push_back(active->Predict(opt.name, table, row));
    if (opt.period_us > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(opt.period_us));
    }
  }

  std::FILE* preds = nullptr;
  if (!opt.out.empty()) {
    preds = std::fopen(opt.out.c_str(), "w");
    if (preds == nullptr) {
      std::fprintf(stderr, "drive: cannot write %s\n", opt.out.c_str());
      return 1;
    }
  }
  uint64_t served = 0, shed = 0, wrong = 0;
  for (int i = 0; i < total; ++i) {
    const uint32_t row = static_cast<uint32_t>(i) % table.num_rows();
    Result<FleetBatchResult> result = futures[i].get();
    if (!result.ok()) {
      // Shed (admission, rotation or deadline) — acceptable under
      // failover, but it must be *counted*, never silent.
      if (result.status().code() != StatusCode::kUnavailable) {
        std::fprintf(stderr, "drive: request %d failed oddly: %s\n", i,
                     result.status().ToString().c_str());
        ++wrong;
      } else {
        ++shed;
      }
      continue;
    }
    ++served;
    if (result->labels.size() != 1 || result->labels[0] != reference[row]) {
      std::fprintf(stderr, "drive: WRONG answer for row %u\n", row);
      ++wrong;
    } else if (preds != nullptr) {
      std::fprintf(preds, "%u %d\n", row, result->labels[0]);
    }
  }
  if (preds != nullptr) std::fclose(preds);

  const uint64_t shed_counter = metrics.GetCounter("fleet.shed")->value();
  std::fprintf(stderr,
               "drive: served=%llu shed=%llu fleet.shed=%llu wrong=%llu\n",
               static_cast<unsigned long long>(served),
               static_cast<unsigned long long>(shed),
               static_cast<unsigned long long>(shed_counter),
               static_cast<unsigned long long>(wrong));
  bool failed = wrong != 0 || served == 0;
  // Every rejected future must be visible in the shed counter (the
  // counter may run ahead: sheds of retries count too).
  if (shed_counter < shed) {
    std::fprintf(stderr, "drive: FAIL shed counter %llu < rejected %llu\n",
                 static_cast<unsigned long long>(shed_counter),
                 static_cast<unsigned long long>(shed));
    failed = true;
  }

  // Canary leg: push v2 to one replica, then force a rollback and
  // prove every live replica is back on (or still on) v1.
  if (!opt.canary_model.empty()) {
    std::string canary_bytes;
    if (Status rst = ReadFileBytes(opt.canary_model, &canary_bytes);
        !rst.ok()) {
      std::fprintf(stderr, "drive: %s\n", rst.ToString().c_str());
      return 1;
    }
    Result<int> canary = active->PushCanary(opt.name, canary_bytes);
    if (!canary.ok()) {
      std::fprintf(stderr, "drive: canary push failed: %s\n",
                   canary.status().ToString().c_str());
      failed = true;
    } else {
      std::fprintf(stderr, "drive: canary on replica %d\n", *canary);
      for (int i = 0; i < 50; ++i) {
        const uint32_t row = static_cast<uint32_t>(i) % table.num_rows();
        (void)active->Predict(opt.name, table, row).get();
      }
      if (Status rb = active->Rollback(opt.name); !rb.ok()) {
        std::fprintf(stderr, "drive: rollback failed: %s\n",
                     rb.ToString().c_str());
        failed = true;
      } else if (!WaitForVersionEverywhere(active, opt.name, 1, 10000)) {
        std::fprintf(stderr,
                     "drive: FAIL not all replicas back on v1 after "
                     "rollback\n");
        failed = true;
      } else {
        // And the traffic agrees: post-rollback answers are v1 again.
        for (int i = 0; i < 50; ++i) {
          const uint32_t row = static_cast<uint32_t>(i) % table.num_rows();
          Result<FleetBatchResult> r = active->Predict(opt.name, table, row)
                                           .get();
          if (!r.ok()) continue;
          if (r->version != 1 || r->labels[0] != reference[row]) {
            std::fprintf(stderr, "drive: FAIL post-rollback row %u v%u\n",
                         row, r->version);
            failed = true;
            break;
          }
        }
        std::fprintf(stderr, "drive: canary rollback verified\n");
      }
    }
  }

  if (opt.trace && !opt.trace_out.empty()) {
    Result<std::string> merged = active->CollectMergedTrace();
    if (merged.ok()) {
      std::ofstream out(opt.trace_out, std::ios::trunc);
      out << *merged;
      std::fprintf(stderr, "drive: merged trace -> %s\n",
                   opt.trace_out.c_str());
    } else {
      std::fprintf(stderr, "drive: trace collection failed: %s\n",
                   merged.status().ToString().c_str());
    }
  }

  active->ShutdownReplicas();
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  active->Stop();
  if (chaos != nullptr) chaos->Stop();  // before the inner transport dies
  transport->Shutdown();
  std::fprintf(stderr, "drive: %s\n", failed ? "FAILED" : "ok");
  return failed ? 1 : 0;
}

/// push/promote/rollback/status against a running router's HTTP port.
int RunClient(const FleetOptions& opt) {
  size_t colon = opt.router_addr.rfind(':');
  if (colon == std::string::npos) {
    std::fprintf(stderr, "%s: --router=HOST:PORT required\n",
                 opt.command.c_str());
    return 1;
  }
  const std::string host = opt.router_addr.substr(0, colon);
  const uint16_t port =
      static_cast<uint16_t>(std::atoi(opt.router_addr.c_str() + colon + 1));

  std::string path;
  if (opt.command == "status") {
    path = "/statusz";
  } else if (opt.command == "push") {
    if (opt.path.empty()) {
      std::fprintf(stderr, "push: --path=MODEL_FILE required\n");
      return 1;
    }
    path = "/fleet/push?model=" + opt.name + "&path=" + opt.path;
    if (opt.canary) path += "&canary=1";
  } else if (opt.command == "promote") {
    path = "/fleet/promote?model=" + opt.name;
  } else if (opt.command == "rollback") {
    path = "/fleet/rollback?model=" + opt.name;
  }
  std::string body;
  int code = 0;
  Status st = HttpGet(host, port, path, &body, &code, 30000);
  if (!st.ok()) {
    std::fprintf(stderr, "%s: %s\n", opt.command.c_str(),
                 st.ToString().c_str());
    return 1;
  }
  std::fputs(body.c_str(), stdout);
  return code == 200 ? 0 : 1;
}

int Run(int argc, char** argv) {
  FleetOptions opt;
  if (!ParseArgs(argc, argv, &opt)) {
    Usage();
    return 1;
  }
  if (opt.command == "train") return RunTrain(opt);
  if (opt.command == "replica" || opt.command == "drive") {
    if (opt.peers.size() != static_cast<size_t>(opt.workers) + 1) {
      std::fprintf(stderr,
                   "--peers must list %d addresses (replicas then router)\n",
                   opt.workers + 1);
      return 1;
    }
    return opt.command == "replica" ? RunReplica(opt) : RunDrive(opt);
  }
  if (opt.command == "push" || opt.command == "promote" ||
      opt.command == "rollback" || opt.command == "status") {
    return RunClient(opt);
  }
  std::fprintf(stderr, "unknown command '%s'\n", opt.command.c_str());
  Usage();
  return 1;
}

}  // namespace
}  // namespace treeserver

int main(int argc, char** argv) { return treeserver::Run(argc, argv); }
