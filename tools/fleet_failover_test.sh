#!/usr/bin/env bash
# Serving-fleet acceptance test (run by ctest as `fleet_failover`):
#
#  1. a router + N replica processes serve a pushed forest over
#     localhost TCP, each transport wrapped in the seeded fault
#     injector (FLEET_CHAOS profile);
#  2. one replica is SIGKILL'd mid-load — every accepted request must
#     still return the byte-identical single-process prediction, and
#     every rejected request must be visible in the fleet.shed counter
#     (the drive binary enforces both and exits non-zero otherwise);
#  3. a canary push of a second model followed by a forced rollback
#     must leave every surviving replica on the old version;
#  4. the router's /metrics + /statusz serve fleet.* mid-run, the
#     treeserver_top --fleet view renders them, and the merged trace
#     validates with the killed replica's lane allowed missing.
#
# Env knobs (the check.sh smoke stage shrinks these):
#   FLEET_REPLICAS (3)  FLEET_CHAOS (mixed)  FLEET_CHAOS_SEED (20260808)
#   FLEET_KILL_RANK (1) FLEET_REQUESTS (8000) FLEET_PERIOD_US (400)
#   FLEET_TRACE_OUT (optional: copy the merged trace here for CI)
set -euo pipefail

FLEET="${TREEFLEET:?set TREEFLEET to the treefleet binary}"
TOP="${TREESERVER_TOP:?set TREESERVER_TOP to the treeserver_top binary}"
REPLICAS="${FLEET_REPLICAS:-3}"
CHAOS="${FLEET_CHAOS:-mixed}"
CHAOS_SEED="${FLEET_CHAOS_SEED:-20260808}"
KILL_RANK="${FLEET_KILL_RANK:-1}"
REQUESTS="${FLEET_REQUESTS:-8000}"
PERIOD_US="${FLEET_PERIOD_US:-400}"
TMP="$(mktemp -d)"
PIDS=()

cleanup() {
  for pid in "${PIDS[@]:-}"; do
    kill -9 "$pid" 2>/dev/null || true
  done
  rm -rf "$TMP"
}
trap cleanup EXIT

DATA=(--rows=2000 --features=8 --categorical=3 --classes=3 --data-seed=7)

peers_for() {
  local base=$1 peers=""
  for ((i = 0; i < REPLICAS; i++)); do
    peers+="127.0.0.1:$((base + i)),"
  done
  echo "${peers}127.0.0.1:$((base + REPLICAS))"
}

wait_healthy() {
  local port=$1
  for _ in $(seq 1 100); do
    if "$TOP" --fetch="127.0.0.1:$port/healthz" >/dev/null 2>&1; then
      return 0
    fi
    sleep 0.1
  done
  echo "FAIL: 127.0.0.1:$port/healthz never came up" >&2
  return 1
}

echo "== train v1 + v2 models =="
"$FLEET" train --out="$TMP/m1.bin" "${DATA[@]}" --trees=8 --max-depth=7 \
  --job-seed=17
"$FLEET" train --out="$TMP/m2.bin" "${DATA[@]}" --trees=8 --max-depth=7 \
  --job-seed=99
[[ -s "$TMP/m1.bin" && -s "$TMP/m2.bin" ]] || {
  echo "FAIL: training produced empty model files" >&2
  exit 1
}

BASE=$((22000 + RANDOM % 10000))
HTTP_PORT=$((32000 + RANDOM % 10000))
PEERS="$(peers_for "$BASE")"
CHAOS_FLAGS=()
[[ "$CHAOS" != none ]] && CHAOS_FLAGS=(--chaos-profile="$CHAOS")

echo "== launch $REPLICAS replicas (chaos=$CHAOS seed=$CHAOS_SEED) =="
RPIDS=()
for ((i = 0; i < REPLICAS; i++)); do
  "$FLEET" replica --rank="$i" --workers="$REPLICAS" --peers="$PEERS" \
    ${CHAOS_FLAGS[@]+"${CHAOS_FLAGS[@]}"} --chaos-seed=$((CHAOS_SEED + i)) \
    --trace=1 2>"$TMP/r$i.log" &
  RPIDS+=($!)
  PIDS+=($!)
done

echo "== drive load through the router =="
"$FLEET" drive --model="$TMP/m1.bin" --canary-model="$TMP/m2.bin" \
  --workers="$REPLICAS" --peers="$PEERS" "${DATA[@]}" \
  --requests="$REQUESTS" --period-us="$PERIOD_US" \
  ${CHAOS_FLAGS[@]+"${CHAOS_FLAGS[@]}"} --chaos-seed="$CHAOS_SEED" \
  --http-port="$HTTP_PORT" --trace=1 --trace-out="$TMP/trace.json" \
  --out="$TMP/preds.txt" 2>"$TMP/drive.log" &
DRIVE_PID=$!
PIDS+=("$DRIVE_PID")

wait_healthy "$HTTP_PORT"

# Kill a replica while the load loop is mid-flight.
sleep 1
kill -9 "${RPIDS[$KILL_RANK]}" 2>/dev/null || true
echo "== SIGKILL'd replica $KILL_RANK mid-load =="

# The router keeps serving: probe the observability plane mid-run.
METRICS="$("$TOP" --fetch="127.0.0.1:$HTTP_PORT/metrics" || true)"
grep -q "fleet_accepted" <<<"$METRICS" || {
  echo "FAIL: router /metrics lacks fleet_accepted" >&2
  exit 1
}
grep -q "fleet_shed" <<<"$METRICS" || {
  echo "FAIL: router /metrics lacks fleet_shed" >&2
  exit 1
}
STATUSZ="$("$TOP" --fetch="127.0.0.1:$HTTP_PORT/statusz" || true)"
grep -q '"role":"router"' <<<"$STATUSZ" || {
  echo "FAIL: router /statusz missing role (got: $STATUSZ)" >&2
  exit 1
}
"$TOP" --fleet="127.0.0.1:$HTTP_PORT" >"$TMP/fleet_view.txt" || {
  echo "FAIL: treeserver_top --fleet view failed" >&2
  exit 1
}
grep -q "router 127.0.0.1:$HTTP_PORT" "$TMP/fleet_view.txt" || {
  echo "FAIL: --fleet view did not render the router row" >&2
  cat "$TMP/fleet_view.txt" >&2
  exit 1
}
echo "PASS: /metrics + /statusz + --fleet view live mid-failover"

# The drive binary verifies parity, shed accounting and the canary
# rollback itself; its exit code is the core acceptance check.
if ! wait "$DRIVE_PID"; then
  echo "FAIL: drive exited non-zero (log below)" >&2
  cat "$TMP/drive.log" >&2
  exit 1
fi
cat "$TMP/drive.log" >&2
grep -q "canary rollback verified" "$TMP/drive.log" || {
  echo "FAIL: canary rollback leg did not run" >&2
  exit 1
}
[[ -s "$TMP/preds.txt" ]] || {
  echo "FAIL: no predictions were recorded" >&2
  exit 1
}
echo "PASS: parity + shed accounting + canary rollback under failover"

# Merged trace: the killed replica cannot answer the trace request, so
# exactly its lane may be missing.
[[ -s "$TMP/trace.json" ]] || {
  echo "FAIL: drive wrote no merged trace" >&2
  exit 1
}
"$TOP" --validate-trace="$TMP/trace.json" --expect-ranks="$REPLICAS" \
  --allow-missing-lanes=1 || {
  echo "FAIL: merged fleet trace invalid" >&2
  exit 1
}
if [[ -n "${FLEET_TRACE_OUT:-}" ]]; then
  cp "$TMP/trace.json" "$FLEET_TRACE_OUT"
fi
echo "PASS: merged trace valid with the dead replica's lane tolerated"

# Surviving replicas exit cleanly on the router's shutdown broadcast.
for ((i = 0; i < REPLICAS; i++)); do
  [[ "$i" == "$KILL_RANK" ]] && continue
  wait "${RPIDS[$i]}" 2>/dev/null || true
done
PIDS=()
echo "PASS: fleet failover test complete"
