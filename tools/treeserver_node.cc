// Cluster node binary: runs one TreeServer rank (master or worker) of
// a multi-process cluster over the TCP transport, or the whole job
// in-process (--mode=inproc) as the byte-identical reference.
//
// Every rank regenerates the same synthetic table from (profile,
// data-seed), mirroring a cluster whose workers load the same
// partitioned input; determinism of the engine then makes the trained
// forest independent of which transport carried the messages.
//
// Example (1 master + 2 workers on localhost):
//   treeserver_node --rank=0 --workers=2 \
//       --peers=127.0.0.1:7001,127.0.0.1:7002,127.0.0.1:7000 &
//   treeserver_node --rank=1 --workers=2 --peers=... &
//   treeserver_node --rank=master --workers=2 --peers=... --out=f.bin
// (tools/launch_local_cluster.sh automates this.)

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "engine/cluster.h"
#include "engine/master.h"
#include "engine/stats_reporter.h"
#include "engine/worker.h"
#include "forest/forest.h"
#include "rpc/tcp_transport.h"
#include "table/datasets.h"

namespace treeserver {
namespace {

struct NodeOptions {
  // --rank=master | --rank=<worker id>; --mode=tcp | inproc.
  int rank = kMasterRank;
  bool inproc = false;
  std::vector<std::string> peers;  // workers 0..n-1 then master

  // Dataset (identical on every rank).
  size_t rows = 20000;
  int features = 20;
  int categorical = 4;
  int classes = 2;
  uint64_t data_seed = 7;

  // Job.
  int trees = 8;
  int max_depth = 8;
  uint32_t min_leaf = 4;
  double column_ratio = 1.0;
  bool sqrt_columns = false;
  uint64_t job_seed = 1;
  SplitMethod split_method = SplitMethod::kExact;
  int max_bins = 255;

  // Engine.
  EngineConfig engine;

  // Transport.
  int64_t heartbeat_ms = 50;
  int miss_limit = 20;
  int64_t wait_peers_ms = 30000;

  std::string out;  // master: file for the serialized forest
};

bool ParseFlag(const std::string& arg, const std::string& name,
               std::string* value) {
  std::string prefix = "--" + name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *value = arg.substr(prefix.size());
  return true;
}

std::vector<std::string> SplitCommas(const std::string& s) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= s.size()) {
    size_t comma = s.find(',', start);
    if (comma == std::string::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

void Usage() {
  std::fprintf(
      stderr,
      "treeserver_node: one rank of a multi-process TreeServer cluster\n"
      "  --rank=master|<id>        rank this process hosts\n"
      "  --workers=N               cluster size (default 4)\n"
      "  --peers=h:p,...           worker addresses 0..N-1, then master\n"
      "  --mode=tcp|inproc         inproc trains the reference in one\n"
      "                            process and ignores --rank/--peers\n"
      "  --port=P                  listen port (default: from --peers)\n"
      "  --out=FILE                master: write the serialized forest\n"
      "  --split-method=exact|histogram\n"
      "                            numeric split kernel (default exact;\n"
      "                            histogram bins columns once and scans\n"
      "                            O(bins) per node)\n"
      "  --max-bins=N              histogram bin budget (default 255)\n"
      "  --rows --features --categorical --classes --data-seed\n"
      "  --trees --max-depth --min-leaf --column-ratio --sqrt-columns\n"
      "  --job-seed --compers --replication --tau-d --tau-dfs\n"
      "  --compress --stats-period --heartbeat-ms --miss-limit\n"
      "  --wait-peers-ms\n");
}

bool ParseArgs(int argc, char** argv, NodeOptions* opt) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::string v;
    if (ParseFlag(arg, "rank", &v)) {
      opt->rank = v == "master" ? kMasterRank : std::atoi(v.c_str());
    } else if (ParseFlag(arg, "workers", &v)) {
      opt->engine.num_workers = std::atoi(v.c_str());
    } else if (ParseFlag(arg, "peers", &v)) {
      opt->peers = SplitCommas(v);
    } else if (ParseFlag(arg, "mode", &v)) {
      if (v == "inproc") {
        opt->inproc = true;
      } else if (v != "tcp") {
        std::fprintf(stderr, "unknown --mode=%s\n", v.c_str());
        return false;
      }
    } else if (ParseFlag(arg, "out", &v)) {
      opt->out = v;
    } else if (ParseFlag(arg, "rows", &v)) {
      opt->rows = static_cast<size_t>(std::atoll(v.c_str()));
    } else if (ParseFlag(arg, "features", &v)) {
      opt->features = std::atoi(v.c_str());
    } else if (ParseFlag(arg, "categorical", &v)) {
      opt->categorical = std::atoi(v.c_str());
    } else if (ParseFlag(arg, "classes", &v)) {
      opt->classes = std::atoi(v.c_str());
    } else if (ParseFlag(arg, "data-seed", &v)) {
      opt->data_seed = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "trees", &v)) {
      opt->trees = std::atoi(v.c_str());
    } else if (ParseFlag(arg, "max-depth", &v)) {
      opt->max_depth = std::atoi(v.c_str());
    } else if (ParseFlag(arg, "min-leaf", &v)) {
      opt->min_leaf = static_cast<uint32_t>(std::atoi(v.c_str()));
    } else if (ParseFlag(arg, "column-ratio", &v)) {
      opt->column_ratio = std::atof(v.c_str());
    } else if (ParseFlag(arg, "sqrt-columns", &v)) {
      opt->sqrt_columns = v == "1" || v == "true";
    } else if (ParseFlag(arg, "job-seed", &v)) {
      opt->job_seed = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "split-method", &v)) {
      if (v == "histogram") {
        opt->split_method = SplitMethod::kHistogram;
      } else if (v == "exact") {
        opt->split_method = SplitMethod::kExact;
      } else {
        std::fprintf(stderr, "unknown --split-method=%s\n", v.c_str());
        return false;
      }
    } else if (ParseFlag(arg, "max-bins", &v)) {
      opt->max_bins = std::atoi(v.c_str());
    } else if (ParseFlag(arg, "compers", &v)) {
      opt->engine.compers_per_worker = std::atoi(v.c_str());
    } else if (ParseFlag(arg, "replication", &v)) {
      opt->engine.replication = std::atoi(v.c_str());
    } else if (ParseFlag(arg, "tau-d", &v)) {
      opt->engine.tau_d = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "tau-dfs", &v)) {
      opt->engine.tau_dfs = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "compress", &v)) {
      opt->engine.compress_transfers = v == "1" || v == "true";
    } else if (ParseFlag(arg, "stats-period", &v)) {
      opt->engine.stats_period_ms = std::atoi(v.c_str());
    } else if (ParseFlag(arg, "heartbeat-ms", &v)) {
      opt->heartbeat_ms = std::atoll(v.c_str());
    } else if (ParseFlag(arg, "miss-limit", &v)) {
      opt->miss_limit = std::atoi(v.c_str());
    } else if (ParseFlag(arg, "wait-peers-ms", &v)) {
      opt->wait_peers_ms = std::atoll(v.c_str());
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      Usage();
      return false;
    }
  }
  return true;
}

DataTable MakeTable(const NodeOptions& opt) {
  DatasetProfile profile;
  profile.name = "cluster";
  profile.rows = opt.rows;
  profile.num_numeric = opt.features;
  profile.num_categorical = opt.categorical;
  profile.num_classes = opt.classes;
  return GenerateTable(profile, opt.data_seed);
}

ForestJobSpec MakeJob(const NodeOptions& opt) {
  ForestJobSpec spec;
  spec.name = "cluster-job";
  spec.num_trees = opt.trees;
  spec.tree.max_depth = opt.max_depth;
  spec.tree.min_leaf = opt.min_leaf;
  spec.tree.split_method = opt.split_method;
  spec.tree.max_bins = opt.max_bins;
  spec.column_ratio = opt.column_ratio;
  spec.sqrt_columns = opt.sqrt_columns;
  spec.seed = opt.job_seed;
  return spec;
}

bool WriteForest(const ForestModel& model, const std::string& path) {
  BinaryWriter w;
  model.Serialize(&w);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out.write(w.buffer().data(), static_cast<std::streamsize>(w.size()));
  return static_cast<bool>(out);
}

uint16_t PortOfPeerEntry(const NodeOptions& opt) {
  size_t idx = opt.rank == kMasterRank
                   ? static_cast<size_t>(opt.engine.num_workers)
                   : static_cast<size_t>(opt.rank);
  TS_CHECK(idx < opt.peers.size()) << "rank not covered by --peers";
  const std::string& addr = opt.peers[idx];
  size_t colon = addr.rfind(':');
  TS_CHECK(colon != std::string::npos) << "bad peer address " << addr;
  return static_cast<uint16_t>(std::atoi(addr.c_str() + colon + 1));
}

std::unique_ptr<TcpTransport> MakeTransport(const NodeOptions& opt) {
  TcpTransportOptions topt;
  topt.num_workers = opt.engine.num_workers;
  topt.local_rank = opt.rank;
  topt.listen_port = PortOfPeerEntry(opt);
  topt.heartbeat_period_ms = opt.heartbeat_ms;
  topt.heartbeat_miss_limit = opt.miss_limit;
  return std::make_unique<TcpTransport>(topt);
}

int RunInproc(const NodeOptions& opt) {
  TreeServerCluster cluster(MakeTable(opt), opt.engine);
  ForestModel model = cluster.TrainForest(MakeJob(opt));
  if (!opt.out.empty() && !WriteForest(model, opt.out)) {
    std::fprintf(stderr, "cannot write %s\n", opt.out.c_str());
    return 1;
  }
  std::fprintf(stderr, "inproc: trained %zu trees\n", model.num_trees());
  return 0;
}

int RunMaster(const NodeOptions& opt) {
  auto table = std::make_shared<const DataTable>(MakeTable(opt));
  auto transport = MakeTransport(opt);
  Master master(table, transport.get(), opt.engine);
  transport->SetPeerDeadCallback([&](int rank) {
    if (rank != kMasterRank) master.OnWorkerCrash(rank);
  });
  Status st = transport->ConnectPeers(opt.peers);
  if (!st.ok()) {
    std::fprintf(stderr, "master: %s\n", st.ToString().c_str());
    return 1;
  }
  if (!transport->WaitForPeers(opt.wait_peers_ms)) {
    std::fprintf(stderr, "master: workers did not connect\n");
    return 1;
  }
  std::unique_ptr<StatsReporter> reporter;
  if (opt.engine.stats_period_ms > 0) {
    reporter = std::make_unique<StatsReporter>(
        [&] {
          EngineStats stats;
          stats.master = master.GetStats();
          stats.network = transport->GetStats();
          return stats;
        },
        opt.engine.stats_period_ms);
    reporter->Start();
  }
  master.Start();
  uint32_t job = master.Submit(MakeJob(opt));
  ForestModel model = master.Wait(job);
  if (reporter != nullptr) reporter->ReportNow("job-complete");
  reporter.reset();
  if (!opt.out.empty() && !WriteForest(model, opt.out)) {
    std::fprintf(stderr, "master: cannot write %s\n", opt.out.c_str());
    return 1;
  }
  for (int w = 0; w < opt.engine.num_workers; ++w) {
    if (!transport->IsCrashed(w)) {
      transport->Send(ChannelKind::kTask,
                      Message{kMasterRank, w,
                              static_cast<uint32_t>(MsgType::kShutdown), ""});
    }
  }
  // Give the shutdown frames a moment to flush before tearing down.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  master.Stop();
  transport->Shutdown();
  std::fprintf(stderr, "master: trained %zu trees\n", model.num_trees());
  return 0;
}

int RunWorker(const NodeOptions& opt) {
  auto table = std::make_shared<const DataTable>(MakeTable(opt));
  auto transport = MakeTransport(opt);
  std::atomic<bool> master_dead{false};
  transport->SetPeerDeadCallback([&](int rank) {
    if (rank == kMasterRank) master_dead.store(true);
  });
  Status st = transport->ConnectPeers(opt.peers);
  if (!st.ok()) {
    std::fprintf(stderr, "worker %d: %s\n", opt.rank, st.ToString().c_str());
    return 1;
  }
  if (!transport->WaitForPeers(opt.wait_peers_ms)) {
    std::fprintf(stderr, "worker %d: peers did not connect\n", opt.rank);
    return 1;
  }
  PeakGauge task_memory;
  BusyClock busy;
  Worker worker(opt.rank, table, transport.get(),
                opt.engine.compers_per_worker, &task_memory, &busy,
                opt.engine.compress_transfers);
  worker.Start();
  // The task loop exits (closing its queue) on the master's kShutdown;
  // a dead master ends the process too.
  while (!transport->task_queue(opt.rank).closed() && !master_dead.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  transport->CloseAll();
  worker.Join();
  transport->Shutdown();
  std::fprintf(stderr, "worker %d: exiting (%s)\n", opt.rank,
               master_dead.load() ? "master died" : "job done");
  return 0;
}

int Run(int argc, char** argv) {
  NodeOptions opt;
  if (!ParseArgs(argc, argv, &opt)) return 1;
  if (opt.inproc) return RunInproc(opt);
  if (opt.peers.size() != static_cast<size_t>(opt.engine.num_workers) + 1) {
    std::fprintf(stderr,
                 "--peers must list %d addresses (workers then master)\n",
                 opt.engine.num_workers + 1);
    return 1;
  }
  return opt.rank == kMasterRank ? RunMaster(opt) : RunWorker(opt);
}

}  // namespace
}  // namespace treeserver

int main(int argc, char** argv) { return treeserver::Run(argc, argv); }
