// Cluster node binary: runs one TreeServer rank (master or worker) of
// a multi-process cluster over the TCP transport, or the whole job
// in-process (--mode=inproc) as the byte-identical reference.
//
// Every rank regenerates the same synthetic table from (profile,
// data-seed), mirroring a cluster whose workers load the same
// partitioned input; determinism of the engine then makes the trained
// forest independent of which transport carried the messages.
//
// Example (1 master + 2 workers on localhost):
//   treeserver_node --rank=0 --workers=2 \
//       --peers=127.0.0.1:7001,127.0.0.1:7002,127.0.0.1:7000 &
//   treeserver_node --rank=1 --workers=2 --peers=... &
//   treeserver_node --rank=master --workers=2 --peers=... --out=f.bin
// (tools/launch_local_cluster.sh automates this.)

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/http_server.h"
#include "common/logging.h"
#include "common/prometheus.h"
#include "common/simd.h"
#include "common/trace.h"
#include "common/trace_merge.h"
#include "engine/checkpoint_io.h"
#include "engine/cluster.h"
#include "engine/master.h"
#include "engine/stats_reporter.h"
#include "engine/worker.h"
#include "forest/forest.h"
#include "rpc/fault_injection.h"
#include "rpc/tcp_transport.h"
#include "table/datasets.h"

namespace treeserver {
namespace {

struct NodeOptions {
  // --rank=master | --rank=<worker id>; --mode=tcp | inproc.
  int rank = kMasterRank;
  bool inproc = false;
  std::vector<std::string> peers;  // workers 0..n-1 then master

  // Dataset (identical on every rank).
  size_t rows = 20000;
  int features = 20;
  int categorical = 4;
  int classes = 2;
  uint64_t data_seed = 7;

  // Job.
  int trees = 8;
  int max_depth = 8;
  uint32_t min_leaf = 4;
  double column_ratio = 1.0;
  bool sqrt_columns = false;
  uint64_t job_seed = 1;
  SplitMethod split_method = SplitMethod::kExact;
  int max_bins = 255;

  // Engine.
  EngineConfig engine;

  // Transport.
  int64_t heartbeat_ms = 50;
  int miss_limit = 20;
  int64_t wait_peers_ms = 30000;
  // Fencing epoch stamped into every frame; a restarted rank passes a
  // higher value so its previous incarnation's stragglers are dropped.
  uint16_t generation = 0;

  // Chaos: wrap the transport in a seeded FaultInjectingTransport.
  std::string chaos_profile;  // empty = no injection
  uint64_t chaos_seed = 1;

  // Durable master checkpoints (written to <dir>/master.ckpt).
  std::string checkpoint_dir;
  int64_t checkpoint_period_ms = 500;

  std::string out;  // master: file for the serialized forest

  // Observability.
  int http_port = -1;     // -1 off, 0 ephemeral, else fixed
  bool trace = false;     // enable the process tracer
  std::string trace_out;  // master: merged Chrome trace JSON path
};

bool ParseFlag(const std::string& arg, const std::string& name,
               std::string* value) {
  std::string prefix = "--" + name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *value = arg.substr(prefix.size());
  return true;
}

std::vector<std::string> SplitCommas(const std::string& s) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= s.size()) {
    size_t comma = s.find(',', start);
    if (comma == std::string::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

void Usage() {
  std::fprintf(
      stderr,
      "treeserver_node: one rank of a multi-process TreeServer cluster\n"
      "  --rank=master|<id>        rank this process hosts\n"
      "  --workers=N               cluster size (default 4)\n"
      "  --peers=h:p,...           worker addresses 0..N-1, then master\n"
      "  --mode=tcp|inproc         inproc trains the reference in one\n"
      "                            process and ignores --rank/--peers\n"
      "  --port=P                  listen port (default: from --peers)\n"
      "  --out=FILE                master: write the serialized forest\n"
      "  --split-method=exact|histogram\n"
      "                            numeric split kernel (default exact;\n"
      "                            histogram bins columns once and scans\n"
      "                            O(bins) per node)\n"
      "  --max-bins=N              histogram bin budget (default 255)\n"
      "  --rows --features --categorical --classes --data-seed\n"
      "  --trees --max-depth --min-leaf --column-ratio --sqrt-columns\n"
      "  --job-seed --compers --replication --tau-d --tau-dfs\n"
      "  --compress --stats-period --heartbeat-ms --miss-limit\n"
      "  --wait-peers-ms\n"
      "  --generation=N            fencing epoch stamped into frames; a\n"
      "                            restarted rank announces a higher one\n"
      "  --chaos-profile=NAME      inject transport faults: none,\n"
      "                            drop-heavy, duplicate-storm,\n"
      "                            partition-heal, mixed\n"
      "  --chaos-seed=N            RNG seed for the fault schedule\n"
      "  --checkpoint-dir=DIR      master: durable CRC'd checkpoints in\n"
      "                            DIR/master.ckpt (restored at startup\n"
      "                            when present)\n"
      "  --checkpoint-period-ms=N  checkpoint cadence (default 500)\n"
      "  --http-port=P             introspection HTTP endpoint (/metrics,\n"
      "                            /healthz, /statusz); -1 off (default),\n"
      "                            0 ephemeral\n"
      "  --trace=1                 enable the process tracer\n"
      "  --trace-out=FILE          master: collect every rank's trace and\n"
      "                            write one merged Chrome trace JSON\n"
      "  --watchdog-period=MS      slow-task watchdog cadence (master)\n"
      "  --debug-slow-worker=W --debug-slow-task-ms=MS\n"
      "                            delay every task on worker W (tests)\n");
}

bool ParseArgs(int argc, char** argv, NodeOptions* opt) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::string v;
    if (ParseFlag(arg, "rank", &v)) {
      opt->rank = v == "master" ? kMasterRank : std::atoi(v.c_str());
    } else if (ParseFlag(arg, "workers", &v)) {
      opt->engine.num_workers = std::atoi(v.c_str());
    } else if (ParseFlag(arg, "peers", &v)) {
      opt->peers = SplitCommas(v);
    } else if (ParseFlag(arg, "mode", &v)) {
      if (v == "inproc") {
        opt->inproc = true;
      } else if (v != "tcp") {
        std::fprintf(stderr, "unknown --mode=%s\n", v.c_str());
        return false;
      }
    } else if (ParseFlag(arg, "out", &v)) {
      opt->out = v;
    } else if (ParseFlag(arg, "rows", &v)) {
      opt->rows = static_cast<size_t>(std::atoll(v.c_str()));
    } else if (ParseFlag(arg, "features", &v)) {
      opt->features = std::atoi(v.c_str());
    } else if (ParseFlag(arg, "categorical", &v)) {
      opt->categorical = std::atoi(v.c_str());
    } else if (ParseFlag(arg, "classes", &v)) {
      opt->classes = std::atoi(v.c_str());
    } else if (ParseFlag(arg, "data-seed", &v)) {
      opt->data_seed = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "trees", &v)) {
      opt->trees = std::atoi(v.c_str());
    } else if (ParseFlag(arg, "max-depth", &v)) {
      opt->max_depth = std::atoi(v.c_str());
    } else if (ParseFlag(arg, "min-leaf", &v)) {
      opt->min_leaf = static_cast<uint32_t>(std::atoi(v.c_str()));
    } else if (ParseFlag(arg, "column-ratio", &v)) {
      opt->column_ratio = std::atof(v.c_str());
    } else if (ParseFlag(arg, "sqrt-columns", &v)) {
      opt->sqrt_columns = v == "1" || v == "true";
    } else if (ParseFlag(arg, "job-seed", &v)) {
      opt->job_seed = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "split-method", &v)) {
      if (v == "histogram") {
        opt->split_method = SplitMethod::kHistogram;
      } else if (v == "exact") {
        opt->split_method = SplitMethod::kExact;
      } else {
        std::fprintf(stderr, "unknown --split-method=%s\n", v.c_str());
        return false;
      }
    } else if (ParseFlag(arg, "max-bins", &v)) {
      opt->max_bins = std::atoi(v.c_str());
    } else if (ParseFlag(arg, "compers", &v)) {
      opt->engine.compers_per_worker = std::atoi(v.c_str());
    } else if (ParseFlag(arg, "replication", &v)) {
      opt->engine.replication = std::atoi(v.c_str());
    } else if (ParseFlag(arg, "tau-d", &v)) {
      opt->engine.tau_d = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "tau-dfs", &v)) {
      opt->engine.tau_dfs = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "compress", &v)) {
      opt->engine.compress_transfers = v == "1" || v == "true";
    } else if (ParseFlag(arg, "stats-period", &v)) {
      opt->engine.stats_period_ms = std::atoi(v.c_str());
    } else if (ParseFlag(arg, "heartbeat-ms", &v)) {
      opt->heartbeat_ms = std::atoll(v.c_str());
    } else if (ParseFlag(arg, "miss-limit", &v)) {
      opt->miss_limit = std::atoi(v.c_str());
    } else if (ParseFlag(arg, "wait-peers-ms", &v)) {
      opt->wait_peers_ms = std::atoll(v.c_str());
    } else if (ParseFlag(arg, "generation", &v)) {
      opt->generation = static_cast<uint16_t>(std::atoi(v.c_str()));
    } else if (ParseFlag(arg, "chaos-profile", &v)) {
      opt->chaos_profile = v;
    } else if (ParseFlag(arg, "chaos-seed", &v)) {
      opt->chaos_seed = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "checkpoint-dir", &v)) {
      opt->checkpoint_dir = v;
    } else if (ParseFlag(arg, "checkpoint-period-ms", &v)) {
      opt->checkpoint_period_ms = std::atoll(v.c_str());
    } else if (ParseFlag(arg, "http-port", &v)) {
      opt->http_port = std::atoi(v.c_str());
    } else if (ParseFlag(arg, "trace", &v)) {
      opt->trace = v == "1" || v == "true";
    } else if (ParseFlag(arg, "trace-out", &v)) {
      opt->trace_out = v;
    } else if (ParseFlag(arg, "watchdog-period", &v)) {
      opt->engine.watchdog_period_ms = std::atoi(v.c_str());
    } else if (ParseFlag(arg, "debug-slow-worker", &v)) {
      opt->engine.debug_slow_worker = std::atoi(v.c_str());
    } else if (ParseFlag(arg, "debug-slow-task-ms", &v)) {
      opt->engine.debug_slow_task_ms = std::atoi(v.c_str());
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      Usage();
      return false;
    }
  }
  return true;
}

DataTable MakeTable(const NodeOptions& opt) {
  DatasetProfile profile;
  profile.name = "cluster";
  profile.rows = opt.rows;
  profile.num_numeric = opt.features;
  profile.num_categorical = opt.categorical;
  profile.num_classes = opt.classes;
  return GenerateTable(profile, opt.data_seed);
}

ForestJobSpec MakeJob(const NodeOptions& opt) {
  ForestJobSpec spec;
  spec.name = "cluster-job";
  spec.num_trees = opt.trees;
  spec.tree.max_depth = opt.max_depth;
  spec.tree.min_leaf = opt.min_leaf;
  spec.tree.split_method = opt.split_method;
  spec.tree.max_bins = opt.max_bins;
  spec.column_ratio = opt.column_ratio;
  spec.sqrt_columns = opt.sqrt_columns;
  spec.seed = opt.job_seed;
  return spec;
}

bool WriteForest(const ForestModel& model, const std::string& path) {
  BinaryWriter w;
  model.Serialize(&w);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out.write(w.buffer().data(), static_cast<std::streamsize>(w.size()));
  return static_cast<bool>(out);
}

uint16_t PortOfPeerEntry(const NodeOptions& opt) {
  size_t idx = opt.rank == kMasterRank
                   ? static_cast<size_t>(opt.engine.num_workers)
                   : static_cast<size_t>(opt.rank);
  TS_CHECK(idx < opt.peers.size()) << "rank not covered by --peers";
  const std::string& addr = opt.peers[idx];
  size_t colon = addr.rfind(':');
  TS_CHECK(colon != std::string::npos) << "bad peer address " << addr;
  return static_cast<uint16_t>(std::atoi(addr.c_str() + colon + 1));
}

std::unique_ptr<TcpTransport> MakeTransport(const NodeOptions& opt) {
  TcpTransportOptions topt;
  topt.num_workers = opt.engine.num_workers;
  topt.local_rank = opt.rank;
  topt.listen_port = PortOfPeerEntry(opt);
  topt.heartbeat_period_ms = opt.heartbeat_ms;
  topt.heartbeat_miss_limit = opt.miss_limit;
  topt.generation = opt.generation;
  return std::make_unique<TcpTransport>(topt);
}

/// Builds the fault injector for --chaos-profile, or null (no chaos).
/// Exits with a usage error on an unknown profile name.
std::unique_ptr<FaultInjectingTransport> MakeChaos(const NodeOptions& opt,
                                                   Transport* inner) {
  if (opt.chaos_profile.empty()) return nullptr;
  FaultSchedule schedule;
  if (!FaultSchedule::Profile(opt.chaos_profile, opt.chaos_seed, &schedule)) {
    std::fprintf(stderr, "unknown --chaos-profile=%s (profiles: %s)\n",
                 opt.chaos_profile.c_str(), FaultSchedule::ProfileNames());
    std::exit(1);
  }
  std::fprintf(stderr, "chaos: rank %d injecting profile '%s' seed %llu\n",
               opt.rank, opt.chaos_profile.c_str(),
               static_cast<unsigned long long>(opt.chaos_seed));
  return std::make_unique<FaultInjectingTransport>(inner, schedule);
}

// The registry holds engine.* / trace.* metrics; transport counters
// live in NetworkStats, so the /metrics handler appends them as
// hand-rolled net_* Prometheus lines (one sample per remote endpoint).
void AppendTransportMetrics(const NetworkStats& stats, std::string* out) {
  struct Field {
    const char* name;
    uint64_t NetworkStats::Endpoint::* member;
  };
  static constexpr Field kFields[] = {
      {"net_bytes_sent_total", &NetworkStats::Endpoint::bytes_sent},
      {"net_bytes_recv_total", &NetworkStats::Endpoint::bytes_recv},
      {"net_msgs_sent_total", &NetworkStats::Endpoint::msgs_sent},
      {"net_msgs_dropped_total", &NetworkStats::Endpoint::msgs_dropped},
      {"net_reconnects_total", &NetworkStats::Endpoint::reconnects},
      {"net_heartbeat_misses_total",
       &NetworkStats::Endpoint::heartbeat_misses},
  };
  for (const Field& f : kFields) {
    *out += "# TYPE " + std::string(f.name) + " counter\n";
    for (size_t ep = 0; ep < stats.endpoints.size(); ++ep) {
      const bool is_master = ep + 1 == stats.endpoints.size();
      std::string endpoint =
          is_master ? "master" : "w" + std::to_string(ep);
      *out += std::string(f.name) + "{endpoint=\"" + endpoint +
              "\"} " + std::to_string(stats.endpoints[ep].*(f.member)) + "\n";
    }
  }
}

/// Mounts /metrics, /healthz and /statusz for one TCP rank. `statusz`
/// produces the role-specific JSON body.
std::unique_ptr<HttpServer> StartNodeHttp(
    const NodeOptions& opt, const TcpTransport* transport,
    std::function<std::string()> statusz) {
  if (opt.http_port < 0) return nullptr;
  auto http = std::make_unique<HttpServer>();
  http->Handle("/metrics", [transport](const std::string&) {
    HttpResponse resp;
    resp.content_type = "text/plain; version=0.0.4; charset=utf-8";
    resp.body = PrometheusExport(MetricsRegistry::Global().Snapshot());
    AppendTransportMetrics(transport->GetStats(), &resp.body);
    return resp;
  });
  http->Handle("/healthz", [](const std::string&) {
    HttpResponse resp;
    resp.body = "ok\n";
    return resp;
  });
  http->Handle("/statusz", [statusz = std::move(statusz)](const std::string&) {
    HttpResponse resp;
    resp.content_type = "application/json";
    resp.body = statusz();
    return resp;
  });
  Status st = http->Start("127.0.0.1", static_cast<uint16_t>(opt.http_port));
  if (!st.ok()) {
    std::fprintf(stderr, "http: %s\n", st.ToString().c_str());
    return nullptr;
  }
  std::fprintf(stderr, "http: rank %d listening on 127.0.0.1:%u\n", opt.rank,
               http->port());
  return http;
}

uint64_t SumEndpoint(const NetworkStats& stats,
                     uint64_t NetworkStats::Endpoint::* member) {
  uint64_t total = 0;
  for (const auto& ep : stats.endpoints) total += ep.*member;
  return total;
}

/// Collects every rank's tracer snapshot at the master, rebases remote
/// timestamps with the heartbeat-derived clock offsets, and writes one
/// merged Chrome trace JSON.
void CollectAndWriteTrace(const NodeOptions& opt, Master* master,
                          TcpTransport* transport) {
  const int requested = master->RequestWorkerTraces();
  if (!master->WaitForWorkerTraces(10000)) {
    std::fprintf(stderr, "master: trace collection timed out\n");
  }
  std::vector<TraceSnapshotMsg> snaps = master->TakeWorkerTraces();
  std::vector<RankTrace> ranks;
  RankTrace mine;
  mine.rank = kMasterRank;
  mine.label = "master";
  mine.dropped_spans = Tracer::Global().dropped_spans();
  mine.events = Tracer::Global().SnapshotEvents();
  ranks.push_back(std::move(mine));
  for (TraceSnapshotMsg& snap : snaps) {
    RankTrace rt;
    rt.rank = snap.worker;
    rt.label = "worker " + std::to_string(snap.worker);
    if (!transport->PeerClockOffset(snap.worker, &rt.clock_offset_ns)) {
      std::fprintf(stderr, "master: no clock offset for w%d; using 0\n",
                   snap.worker);
    }
    rt.dropped_spans = snap.dropped;
    rt.events = std::move(snap.events);
    ranks.push_back(std::move(rt));
  }
  Status st = WriteMergedChromeTrace(ranks, opt.trace_out);
  if (!st.ok()) {
    std::fprintf(stderr, "master: cannot write trace: %s\n",
                 st.ToString().c_str());
    return;
  }
  std::fprintf(stderr, "master: merged trace (%zu/%d worker snapshots) -> %s\n",
               snaps.size(), requested, opt.trace_out.c_str());
}

int RunInproc(const NodeOptions& opt) {
  TreeServerCluster cluster(MakeTable(opt), opt.engine);
  ForestModel model = cluster.TrainForest(MakeJob(opt));
  if (!opt.out.empty() && !WriteForest(model, opt.out)) {
    std::fprintf(stderr, "cannot write %s\n", opt.out.c_str());
    return 1;
  }
  std::fprintf(stderr, "inproc: trained %zu trees\n", model.num_trees());
  return 0;
}

int RunMaster(const NodeOptions& opt) {
  if (opt.trace) Tracer::Global().Enable();
  auto table = std::make_shared<const DataTable>(MakeTable(opt));
  auto transport = MakeTransport(opt);
  // The engine talks to the injector (when chaos is on); TCP-specific
  // plumbing (handshake, callbacks, shutdown) stays on the inner
  // transport the decorator does not re-implement.
  std::unique_ptr<FaultInjectingTransport> chaos =
      MakeChaos(opt, transport.get());
  Transport* engine_net =
      chaos != nullptr ? static_cast<Transport*>(chaos.get())
                       : static_cast<Transport*>(transport.get());
  Master master(table, engine_net, opt.engine);
  const std::string ckpt_path =
      opt.checkpoint_dir.empty() ? "" : opt.checkpoint_dir + "/master.ckpt";
  if (!ckpt_path.empty()) {
    std::string snapshot;
    Status load = LoadCheckpoint(ckpt_path, &snapshot);
    if (load.ok()) {
      Status restored = master.Restore(snapshot);
      if (!restored.ok()) {
        std::fprintf(stderr, "master: checkpoint restore failed: %s\n",
                     restored.ToString().c_str());
        return 1;
      }
      std::fprintf(stderr, "master: restored %s (epoch now %u)\n",
                   ckpt_path.c_str(), master.epoch());
    } else if (load.code() == StatusCode::kIOError) {
      // No checkpoint yet: a cold start.
      std::fprintf(stderr, "master: no checkpoint at %s, cold start\n",
                   ckpt_path.c_str());
    } else {
      // A torn or bit-flipped checkpoint must fail loudly, never
      // restore silently-wrong job state.
      std::fprintf(stderr, "master: refusing corrupt checkpoint: %s\n",
                   load.ToString().c_str());
      return 1;
    }
  }
  std::unique_ptr<HttpServer> http =
      StartNodeHttp(opt, transport.get(), [&master, &transport] {
        MasterStats s = master.GetStats();
        NetworkStats net = transport->GetStats();
        return "{\"rank\":-1,\"role\":\"master\",\"tasks_in_flight\":" +
               std::to_string(s.tasks_in_flight) +
               ",\"bplan_depth\":" + std::to_string(s.bplan_depth) +
               ",\"active_trees\":" + std::to_string(s.active_trees) +
               ",\"slow_tasks\":" + std::to_string(s.slow_tasks) +
               ",\"reconnects\":" +
               std::to_string(
                   SumEndpoint(net, &NetworkStats::Endpoint::reconnects)) +
               ",\"heartbeat_misses\":" +
               std::to_string(SumEndpoint(
                   net, &NetworkStats::Endpoint::heartbeat_misses)) +
               ",\"retransmits\":" +
               std::to_string(MetricsRegistry::Global()
                                  .GetCounter("engine.retransmits")
                                  ->value()) +
               ",\"fenced_msgs\":" +
               std::to_string(MetricsRegistry::Global()
                                  .GetCounter("engine.fenced_msgs")
                                  ->value()) +
               ",\"rss_bytes\":" + std::to_string(CurrentRssBytes()) + "," +
               SimdStatusJson() + "}\n";
      });
  transport->SetPeerDeadCallback([&](int rank) {
    if (rank != kMasterRank) master.OnWorkerCrash(rank);
  });
  Status st = transport->ConnectPeers(opt.peers);
  if (!st.ok()) {
    std::fprintf(stderr, "master: %s\n", st.ToString().c_str());
    return 1;
  }
  if (!transport->WaitForPeers(opt.wait_peers_ms)) {
    std::fprintf(stderr, "master: workers did not connect\n");
    return 1;
  }
  std::unique_ptr<StatsReporter> reporter;
  if (opt.engine.stats_period_ms > 0) {
    reporter = std::make_unique<StatsReporter>(
        [&] {
          EngineStats stats;
          stats.master = master.GetStats();
          stats.network = transport->GetStats();
          return stats;
        },
        opt.engine.stats_period_ms);
    reporter->Start();
  }
  master.Start();
  // Durable checkpoints: a background thread snapshots the master and
  // writes an atomically-renamed, CRC-trailered file every period.
  std::atomic<bool> ckpt_stop{false};
  std::thread ckpt_thread;
  if (!ckpt_path.empty() && opt.checkpoint_period_ms > 0) {
    ckpt_thread = std::thread([&] {
      while (!ckpt_stop.load()) {
        for (int64_t slept = 0;
             slept < opt.checkpoint_period_ms && !ckpt_stop.load();
             slept += 20) {
          std::this_thread::sleep_for(std::chrono::milliseconds(20));
        }
        if (ckpt_stop.load()) break;
        Status st = SaveCheckpoint(ckpt_path, master.Checkpoint());
        if (!st.ok()) {
          std::fprintf(stderr, "master: checkpoint write failed: %s\n",
                       st.ToString().c_str());
        }
      }
    });
  }
  uint32_t job = master.Submit(MakeJob(opt));
  ForestModel model = master.Wait(job);
  ckpt_stop.store(true);
  if (ckpt_thread.joinable()) ckpt_thread.join();
  if (!ckpt_path.empty()) {
    // One final snapshot so the file reflects the completed job.
    Status st = SaveCheckpoint(ckpt_path, master.Checkpoint());
    if (!st.ok()) {
      std::fprintf(stderr, "master: final checkpoint failed: %s\n",
                   st.ToString().c_str());
    }
  }
  if (reporter != nullptr) reporter->ReportNow("job-complete");
  reporter.reset();
  if (!opt.out.empty() && !WriteForest(model, opt.out)) {
    std::fprintf(stderr, "master: cannot write %s\n", opt.out.c_str());
    return 1;
  }
  // Trace collection must precede the shutdown broadcast: workers
  // answer kTraceRequest from their still-running task loops.
  if (opt.trace && !opt.trace_out.empty()) {
    CollectAndWriteTrace(opt, &master, transport.get());
  }
  for (int w = 0; w < opt.engine.num_workers; ++w) {
    if (!transport->IsCrashed(w)) {
      transport->Send(ChannelKind::kTask,
                      Message{kMasterRank, w,
                              static_cast<uint32_t>(MsgType::kShutdown), ""});
    }
  }
  // Give the shutdown frames a moment to flush before tearing down.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  master.Stop();
  if (chaos != nullptr) chaos->Stop();  // before the inner transport dies
  if (http != nullptr) http->Stop();
  transport->Shutdown();
  std::fprintf(stderr, "master: trained %zu trees\n", model.num_trees());
  return 0;
}

int RunWorker(const NodeOptions& opt) {
  if (opt.trace) Tracer::Global().Enable();
  auto table = std::make_shared<const DataTable>(MakeTable(opt));
  auto transport = MakeTransport(opt);
  std::atomic<bool> master_dead{false};
  transport->SetPeerDeadCallback([&](int rank) {
    if (rank == kMasterRank) master_dead.store(true);
  });
  Status st = transport->ConnectPeers(opt.peers);
  if (!st.ok()) {
    std::fprintf(stderr, "worker %d: %s\n", opt.rank, st.ToString().c_str());
    return 1;
  }
  if (!transport->WaitForPeers(opt.wait_peers_ms)) {
    std::fprintf(stderr, "worker %d: peers did not connect\n", opt.rank);
    return 1;
  }
  std::unique_ptr<FaultInjectingTransport> chaos =
      MakeChaos(opt, transport.get());
  Transport* engine_net =
      chaos != nullptr ? static_cast<Transport*>(chaos.get())
                       : static_cast<Transport*>(transport.get());
  PeakGauge task_memory;
  BusyClock busy;
  Worker worker(opt.rank, table, engine_net,
                opt.engine.compers_per_worker, &task_memory, &busy,
                opt.engine.compress_transfers,
                opt.rank == opt.engine.debug_slow_worker
                    ? opt.engine.debug_slow_task_ms
                    : 0,
                opt.engine.ReliableConfig());
  std::unique_ptr<HttpServer> http =
      StartNodeHttp(opt, transport.get(), [&opt, &worker, &transport] {
        WorkerStats s = worker.GetStats();
        NetworkStats net = transport->GetStats();
        return "{\"rank\":" + std::to_string(opt.rank) +
               ",\"role\":\"worker\",\"tasks_parked\":" +
               std::to_string(s.tasks_parked) +
               ",\"btask_depth\":" + std::to_string(s.btask_depth) +
               ",\"tasks_computed\":" + std::to_string(s.tasks_computed) +
               ",\"reconnects\":" +
               std::to_string(
                   SumEndpoint(net, &NetworkStats::Endpoint::reconnects)) +
               ",\"heartbeat_misses\":" +
               std::to_string(SumEndpoint(
                   net, &NetworkStats::Endpoint::heartbeat_misses)) +
               ",\"retransmits\":" +
               std::to_string(MetricsRegistry::Global()
                                  .GetCounter("engine.retransmits")
                                  ->value()) +
               ",\"fenced_msgs\":" +
               std::to_string(MetricsRegistry::Global()
                                  .GetCounter("engine.fenced_msgs")
                                  ->value()) +
               ",\"rss_bytes\":" + std::to_string(CurrentRssBytes()) + "," +
               SimdStatusJson() + "}\n";
      });
  worker.Start();
  // The task loop exits (closing its queue) on the master's kShutdown;
  // a dead master ends the process too.
  while (!transport->task_queue(opt.rank).closed() && !master_dead.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  transport->CloseAll();
  worker.Join();
  if (chaos != nullptr) chaos->Stop();  // before the inner transport dies
  if (http != nullptr) http->Stop();
  transport->Shutdown();
  std::fprintf(stderr, "worker %d: exiting (%s)\n", opt.rank,
               master_dead.load() ? "master died" : "job done");
  return 0;
}

int Run(int argc, char** argv) {
  NodeOptions opt;
  if (!ParseArgs(argc, argv, &opt)) return 1;
  if (opt.inproc) return RunInproc(opt);
  if (opt.peers.size() != static_cast<size_t>(opt.engine.num_workers) + 1) {
    std::fprintf(stderr,
                 "--peers must list %d addresses (workers then master)\n",
                 opt.engine.num_workers + 1);
    return 1;
  }
  return opt.rank == kMasterRank ? RunMaster(opt) : RunWorker(opt);
}

}  // namespace
}  // namespace treeserver

int main(int argc, char** argv) { return treeserver::Run(argc, argv); }
