#!/usr/bin/env bash
# Launches a 1-master / N-worker TreeServer cluster on localhost over
# the TCP transport and trains one forest end-to-end.
#
# Usage:
#   tools/launch_local_cluster.sh [num_workers] [base_port] [extra node
#   flags...]
#
#   tools/launch_local_cluster.sh 4 7000 --trees=16 --rows=50000 \
#       --out=/tmp/forest.bin
#
# The node binary is looked up in build/tools by default; override
# with TREESERVER_NODE=/path/to/treeserver_node.
set -euo pipefail

WORKERS="${1:-4}"; shift || true
BASE_PORT="${1:-7000}"; shift || true

# `--http-port=P` is a base: rank i serves introspection HTTP on P+i,
# the master on P+WORKERS (one process cannot share a listen port).
HTTP_BASE=""
EXTRA=()
for arg in "$@"; do
  case "$arg" in
    --http-port=*) HTTP_BASE="${arg#--http-port=}" ;;
    *) EXTRA+=("$arg") ;;
  esac
done

http_flag() {  # http_flag <rank-index>
  [[ -n "$HTTP_BASE" ]] && echo "--http-port=$((HTTP_BASE + $1))"
}

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
NODE="${TREESERVER_NODE:-$ROOT/build/tools/treeserver_node}"
if [[ ! -x "$NODE" ]]; then
  echo "node binary not found at $NODE (build first, or set TREESERVER_NODE)" >&2
  exit 1
fi

PEERS=""
for ((i = 0; i < WORKERS; i++)); do
  PEERS+="127.0.0.1:$((BASE_PORT + i)),"
done
PEERS+="127.0.0.1:$((BASE_PORT + WORKERS))"  # master last

PIDS=()
cleanup() {
  for pid in "${PIDS[@]:-}"; do
    kill "$pid" 2>/dev/null || true
  done
}
trap cleanup EXIT

for ((i = 0; i < WORKERS; i++)); do
  "$NODE" --rank="$i" --workers="$WORKERS" --peers="$PEERS" \
    ${EXTRA[@]+"${EXTRA[@]}"} $(http_flag "$i") &
  PIDS+=($!)
done

"$NODE" --rank=master --workers="$WORKERS" --peers="$PEERS" \
  ${EXTRA[@]+"${EXTRA[@]}"} $(http_flag "$WORKERS")
STATUS=$?

for pid in "${PIDS[@]}"; do
  wait "$pid" || true
done
PIDS=()
exit "$STATUS"
