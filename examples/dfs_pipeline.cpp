// HDFS-style data pipeline (Section VII "Data Organization on HDFS"):
// a table is uploaded with the dedicated "put" program into the
// column-group x row-group layout of Fig. 13, then read back both ways
// — whole columns (as a TreeServer worker would) and row stripes (as a
// row-parallel extraction job would). Demonstrates why grouping
// matters when each file open carries a connection cost.
//
//   ./dfs_pipeline [directory]

#include <cstdio>
#include <filesystem>

#include "common/timer.h"
#include "dfs/dfs.h"
#include "table/datasets.h"

using namespace treeserver;  // NOLINT

int main(int argc, char** argv) {
  std::string root = argc > 1 ? argv[1]
                              : (std::filesystem::temp_directory_path() /
                                 "treeserver_dfs_demo")
                                    .string();

  // A wide table, like an MGS re-representation: 200 columns.
  DatasetProfile profile;
  profile.name = "wide";
  profile.rows = 20000;
  profile.num_numeric = 200;
  profile.num_classes = 10;
  DataTable table = GenerateTable(profile, 99);
  std::printf("table: %zu rows x %d columns (%.1f MB)\n", table.num_rows(),
              table.num_columns(),
              static_cast<double>(table.ByteSize()) / (1 << 20));

  // Simulate HDFS connection latency: 2 ms per file open.
  LocalDfs dfs(root, /*connect_cost_us=*/2000);

  // Upload twice: once one-file-per-column (naive), once grouped.
  Status st = dfs.Put(table, "naive", DfsLayout{1, 1000000});
  if (st.ok()) st = dfs.Put(table, "grouped", DfsLayout{50, 5000});
  if (!st.ok()) {
    std::fprintf(stderr, "put failed: %s\n", st.ToString().c_str());
    return 1;
  }

  std::vector<int> columns;
  for (int c = 0; c < 60; ++c) columns.push_back(c);

  dfs.ResetCounters();
  WallTimer naive_timer;
  auto naive = dfs.ReadColumns("naive", columns);
  double naive_s = naive_timer.Seconds();
  uint64_t naive_opens = dfs.file_opens();

  dfs.ResetCounters();
  WallTimer grouped_timer;
  auto grouped = dfs.ReadColumns("grouped", columns);
  double grouped_s = grouped_timer.Seconds();
  uint64_t grouped_opens = dfs.file_opens();

  if (!naive.ok() || !grouped.ok()) {
    std::fprintf(stderr, "read failed\n");
    return 1;
  }
  std::printf("loading 60 columns:\n");
  std::printf("  one file per column : %3lu opens, %.3f s\n",
              static_cast<unsigned long>(naive_opens), naive_s);
  std::printf("  grouped (Fig. 13)   : %3lu opens, %.3f s\n",
              static_cast<unsigned long>(grouped_opens), grouped_s);

  // Row-stripe access for the row-parallel jobs.
  dfs.ResetCounters();
  auto stripe = dfs.ReadRows("grouped", 5000, 10000);
  if (!stripe.ok()) {
    std::fprintf(stderr, "row read failed: %s\n",
                 stripe.status().ToString().c_str());
    return 1;
  }
  std::printf("row stripe [5000,10000): %zu rows via %lu opens\n",
              stripe->num_rows(),
              static_cast<unsigned long>(dfs.file_opens()));

  std::filesystem::remove_all(root);
  return 0;
}
