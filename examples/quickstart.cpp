// Quickstart: parse a CSV, train a decision tree on a simulated
// TreeServer cluster, evaluate it, and round-trip the model through
// serialization.
//
//   ./quickstart [path/to/data.csv]
//
// Without an argument a small in-memory CSV is used.

#include <cstdio>
#include <string>

#include "engine/cluster.h"
#include "forest/forest.h"
#include "tree/model.h"
#include "table/csv.h"

using namespace treeserver;  // NOLINT

namespace {

const char kDemoCsv[] =
    "age,education,home_owner,income,default\n"
    "24,Bachelor,No,5000,No\n"
    "28,Master,Yes,7500,No\n"
    "44,Bachelor,Yes,5500,No\n"
    "32,Secondary,Yes,6000,Yes\n"
    "36,PhD,No,10000,No\n"
    "48,Bachelor,Yes,6500,No\n"
    "37,Secondary,No,3000,Yes\n"
    "42,Bachelor,No,6000,No\n"
    "54,Secondary,No,4000,Yes\n"
    "47,PhD,Yes,8000,No\n";

}  // namespace

int main(int argc, char** argv) {
  // 1. Load data. Types are inferred per column (numeric vs
  //    categorical); the last column is the prediction target.
  Result<DataTable> table_or =
      argc > 1 ? ReadCsvFile(argv[1]) : ReadCsvString(kDemoCsv);
  if (!table_or.ok()) {
    std::fprintf(stderr, "failed to load data: %s\n",
                 table_or.status().ToString().c_str());
    return 1;
  }
  DataTable table = std::move(table_or).value();
  std::printf("loaded %zu rows, %d columns (%s)\n", table.num_rows(),
              table.num_columns(),
              TaskKindName(table.schema().task_kind()));

  // 2. Spin up a simulated cluster: 3 worker machines, 2 computing
  //    threads each, columns replicated twice.
  EngineConfig engine;
  engine.num_workers = 3;
  engine.compers_per_worker = 2;
  TreeServerCluster cluster(table, engine);

  // 3. Submit a decision-tree job (a forest with one tree).
  ForestJobSpec job;
  job.name = "DT1";
  job.num_trees = 1;
  job.tree.max_depth = 6;
  job.tree.impurity = Impurity::kGini;
  ForestModel model = cluster.TrainForest(job);
  std::printf("trained 1 tree with %zu nodes (depth %d)\n",
              model.tree(0).num_nodes(), model.tree(0).MaxDepth());

  // 4. Evaluate on the training data (a real application would hold
  //    out a test split).
  std::printf("training accuracy: %.1f%%\n",
              EvaluateAccuracy(model, table) * 100.0);

  // 5. Serialize the model and load it back.
  BinaryWriter writer;
  model.Serialize(&writer);
  BinaryReader reader(writer.buffer());
  ForestModel restored;
  Status st = ForestModel::Deserialize(&reader, &restored);
  if (!st.ok()) {
    std::fprintf(stderr, "round trip failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("model round-trips through %zu serialized bytes\n",
              writer.size());

  // 6. Model inspection: per-column importance and a readable dump.
  std::vector<double> importance = FeatureImportance(restored, table.schema());
  std::printf("feature importance:\n");
  for (int c = 0; c < table.num_columns(); ++c) {
    if (c == table.schema().target_index()) continue;
    std::printf("  %-12s %.3f\n", table.schema().column(c).name.c_str(),
                importance[c]);
  }
  std::printf("tree structure:\n%s",
              restored.tree(0).DebugString(table.schema()).c_str());

  // 7. Per-row predictions, including the paper's depth-cutoff mode:
  //    the same tree answers at any depth without retraining.
  for (size_t row = 0; row < std::min<size_t>(3, table.num_rows()); ++row) {
    int32_t full = restored.PredictLabel(table, row);
    int32_t shallow = restored.PredictLabel(table, row, /*max_depth=*/1);
    std::printf("row %zu: predicted class %d (depth<=1 says %d)\n", row,
                full, shallow);
  }
  return 0;
}
