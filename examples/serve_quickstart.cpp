// Serving quickstart: train a forest, publish it to a versioned model
// registry (via a model file, as a real train->serve pipeline would),
// run a micro-batching inference server against it, then hot-swap a
// retrained version while the server is live.
//
//   ./serve_quickstart

#include <cstdio>
#include <future>
#include <memory>
#include <vector>

#include "common/metrics_registry.h"
#include "forest/forest.h"
#include "serve/compiled_model.h"
#include "serve/model_io.h"
#include "serve/registry.h"
#include "serve/server.h"
#include "table/datasets.h"

using namespace treeserver;  // NOLINT

int main() {
  // 1. Train: a random forest on a synthetic loan-risk-style table
  //    (5 numeric + 3 categorical features, some values missing).
  DatasetProfile profile;
  profile.name = "loan_risk";
  profile.rows = 8000;
  profile.num_numeric = 5;
  profile.num_categorical = 3;
  profile.num_classes = 3;
  profile.missing_fraction = 0.05;
  DataTable all = GenerateTable(profile, 42);
  Rng rng(7);
  auto [train, test] = all.TrainTestSplit(0.25, &rng);

  ForestJobSpec job;
  job.num_trees = 20;
  job.tree.max_depth = 10;
  job.sqrt_columns = true;
  ForestModel forest = TrainForestSerial(train, job, 4);
  std::printf("trained %zu trees, test accuracy %.1f%%\n",
              forest.num_trees(), EvaluateAccuracy(forest, test) * 100.0);

  // 2. Publish: write the model file (magic + format version + kind
  //    header, atomic rename), then load it into the registry. The
  //    registry compiles the forest into flat node tables for batched
  //    traversal and installs it as version 1.
  const std::string model_path = "/tmp/serve_quickstart_model.tsm";
  Status st = SaveToFile(forest, model_path);
  if (!st.ok()) {
    std::fprintf(stderr, "save failed: %s\n", st.ToString().c_str());
    return 1;
  }
  ModelRegistry registry;
  Result<uint32_t> version = registry.PublishFromFile("loan_risk", model_path);
  if (!version.ok()) {
    std::fprintf(stderr, "publish failed: %s\n",
                 version.status().ToString().c_str());
    return 1;
  }
  std::printf("published %s as version %u\n", model_path.c_str(), *version);

  // 3. Serve: a micro-batching server with 2 prediction workers.
  //    Requests are grouped per model and flushed when a batch fills
  //    or its oldest request ages past the deadline.
  MetricsRegistry metrics;
  InferenceServerConfig config;
  config.num_workers = 2;
  config.max_batch = 64;
  config.batch_deadline_us = 200;
  config.metrics = &metrics;
  InferenceServer server(&registry, config);
  server.Start();

  auto serving_table = std::make_shared<DataTable>(test);
  std::vector<std::future<Result<Prediction>>> futures;
  for (uint32_t row = 0; row < 256; ++row) {
    PredictRequest req;
    req.model = "loan_risk";
    req.table = serving_table;
    req.row = row;
    req.want_pmf = (row == 0);
    futures.push_back(server.Predict(std::move(req)));
  }
  size_t agree = 0;
  for (uint32_t row = 0; row < 256; ++row) {
    Result<Prediction> r = futures[row].get();
    if (!r.ok()) {
      std::fprintf(stderr, "predict failed: %s\n",
                   r.status().ToString().c_str());
      return 1;
    }
    agree += (r->label == forest.PredictLabel(test, row));
    if (row == 0) {
      std::printf("row 0 (served by v%u): label=%d pmf=[", r->model_version,
                  r->label);
      for (size_t c = 0; c < r->pmf.size(); ++c) {
        std::printf("%s%.3f", c ? " " : "", r->pmf[c]);
      }
      std::printf("]\n");
    }
  }
  std::printf("256/256 served; %zu/256 match direct prediction exactly\n",
              agree);

  // 4. Hot-swap: retrain with more trees and publish again. In-flight
  //    requests keep the version they resolved; new batches pick up v2.
  job.num_trees = 40;
  job.seed = 2;
  Result<uint32_t> v2 = registry.Publish("loan_risk",
                                         TrainForestSerial(train, job, 4));
  if (!v2.ok()) return 1;
  PredictRequest req;
  req.model = "loan_risk";
  req.table = serving_table;
  req.row = 0;
  Result<Prediction> r = server.Predict(std::move(req)).get();
  std::printf("after hot-swap, row 0 served by version %u\n",
              r.ok() ? r->model_version : 0);

  server.Stop();
  std::printf("served %llu requests in %llu batches\n",
              static_cast<unsigned long long>(
                  metrics.GetCounter("serve.requests")->value()),
              static_cast<unsigned long long>(
                  metrics.GetCounter("serve.batches")->value()));
  std::remove(model_path.c_str());
  return 0;
}
