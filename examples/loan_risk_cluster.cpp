// Loan-risk scenario: trains a random forest on a loan-shaped dataset
// (the paper's Freddie Mac workload) on a larger simulated cluster,
// inspects the engine metrics, and demonstrates fault tolerance by
// crashing a worker machine in the middle of training.
//
//   ./loan_risk_cluster [--scale=F]

#include <cstdio>
#include <cstring>
#include <thread>

#include "common/timer.h"
#include "engine/cluster.h"
#include "forest/forest.h"
#include "table/datasets.h"

using namespace treeserver;  // NOLINT

int main(int argc, char** argv) {
  double scale = 0.0005;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--scale=", 8) == 0) scale = atof(argv[i] + 8);
  }

  // Generate a loan_m1-shaped table (14 numeric + 13 categorical
  // columns, binary default label).
  DatasetProfile profile = PaperProfile("loan_m1", scale, 6000);
  DataTable all = GenerateTable(profile, 42);
  Rng rng(7);
  auto [train, test] = all.TrainTestSplit(0.25, &rng);
  std::printf("loan data: %zu train rows, %zu test rows, %d features\n",
              train.num_rows(), test.num_rows(),
              train.schema().num_features());

  EngineConfig engine;
  engine.num_workers = 6;
  engine.compers_per_worker = 2;
  engine.replication = 2;
  engine.tau_d = 1500;
  engine.tau_dfs = 6000;
  TreeServerCluster cluster(train, engine);

  // Submit the forest job and crash a machine while it runs: the
  // master revokes the lost tasks, re-replicates the worker's columns
  // and restarts broken trees — training still completes with the
  // exact same forest a healthy cluster would produce.
  ForestJobSpec job;
  job.name = "loan-rf";
  job.num_trees = 20;
  job.tree.max_depth = 10;
  job.sqrt_columns = true;
  job.seed = 11;

  WallTimer timer;
  uint32_t handle = cluster.Submit(job);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  std::printf("crashing worker 3 mid-training...\n");
  cluster.CrashWorker(3);
  ForestModel forest = cluster.Wait(handle);
  double seconds = timer.Seconds();

  EngineMetrics metrics = cluster.metrics();
  std::printf("trained %zu trees in %.2f s despite the crash\n",
              forest.num_trees(), seconds);
  std::printf("  tasks scheduled:   %lu\n",
              static_cast<unsigned long>(metrics.tasks_scheduled));
  std::printf("  trees restarted:   %lu\n",
              static_cast<unsigned long>(metrics.trees_restarted));
  std::printf("  bytes on the wire: %.2f MB\n",
              static_cast<double>(metrics.bytes_sent_total) / (1 << 20));
  std::printf("  comper busy time:  %.2f s across %d threads\n",
              metrics.comper_busy_seconds,
              engine.num_workers * engine.compers_per_worker);
  std::printf("  peak task memory:  %.2f MB\n",
              static_cast<double>(metrics.peak_task_memory_bytes) /
                  (1 << 20));

  std::printf("test accuracy: %.2f%%\n",
              EvaluateAccuracy(forest, test) * 100.0);

  // The crash recovery is deterministic: the result equals the serial
  // reference forest.
  ForestModel reference = TrainForestSerial(train, job);
  bool equal = true;
  for (size_t i = 0; i < forest.num_trees(); ++i) {
    equal = equal && forest.tree(i).StructurallyEqual(reference.tree(i));
  }
  std::printf("matches the serial reference: %s\n", equal ? "yes" : "NO");
  return equal ? 0 : 1;
}
