// Deep-forest image classification (the paper's Section VII case
// study): multi-grained scanning re-represents small grayscale images
// through sliding-window forests, then a cascade of forest layers
// refines the prediction. Every forest is trained as a TreeServer job
// on a simulated cluster.
//
//   ./deep_forest_images [--train=N] [--test=N]

#include <cstdio>
#include <cstring>

#include "deepforest/deep_forest.h"

using namespace treeserver;  // NOLINT

int main(int argc, char** argv) {
  size_t train_n = 300;
  size_t test_n = 120;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--train=", 8) == 0) train_n = atoi(argv[i] + 8);
    if (std::strncmp(argv[i], "--test=", 7) == 0) test_n = atoi(argv[i] + 7);
  }

  // Synthetic 28x28 digit-like images, 10 classes (MNIST stand-in).
  ImageDataset train = GenerateImages(train_n, 1);
  ImageDataset test = GenerateImages(test_n, 2);
  std::printf("images: %zu train, %zu test (%dx%d, %d classes)\n",
              train.size(), test.size(), train.width, train.height,
              train.num_classes);

  DeepForestConfig config;
  config.mgs.window_sizes = {5, 7};
  config.mgs.stride = 3;
  config.mgs.trees_per_forest = 10;
  config.cascade.num_layers = 3;
  config.cascade.trees_per_forest = 10;
  config.extract_threads = 4;

  EngineConfig engine;
  engine.num_workers = 3;
  engine.compers_per_worker = 2;
  engine.tau_d = 5000;
  engine.tau_dfs = 20000;

  DeepForestTrainer trainer(config, engine);
  std::vector<DeepForestStep> steps;
  DeepForestModel model = trainer.Train(train, test, &steps);

  std::printf("\n%-14s %12s %10s %10s\n", "step", "train (s)", "test (s)",
              "accuracy");
  for (const DeepForestStep& step : steps) {
    if (step.test_accuracy >= 0) {
      std::printf("%-14s %12.3f %10.3f %9.1f%%\n", step.name.c_str(),
                  step.train_seconds, step.test_seconds,
                  step.test_accuracy * 100.0);
    } else {
      std::printf("%-14s %12.3f %10.3f %10s\n", step.name.c_str(),
                  step.train_seconds, step.test_seconds, "-");
    }
  }

  double final_acc = model.EvaluateAccuracy(test);
  std::printf("\nfinal deep-forest accuracy: %.1f%% "
              "(chance would be %.1f%%)\n",
              final_acc * 100.0, 100.0 / train.num_classes);
  return 0;
}
