#ifndef TREESERVER_CONCURRENT_PLAN_DEQUE_H_
#define TREESERVER_CONCURRENT_PLAN_DEQUE_H_

#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace treeserver {

/// Mutex-protected deque implementing the hybrid BFS/DFS plan buffer
/// B_plan (Section III, "Task Scheduling").
///
/// The master's receiving thread inserts new node tasks at the *tail*
/// when |D_x| > τ_dfs (queue behaviour → breadth-first expansion of
/// upper levels) and at the *head* when |D_x| ≤ τ_dfs (stack behaviour
/// → depth-first descent toward CPU-bound subtree-tasks). The main
/// thread always fetches from the head.
template <typename T>
class PlanDeque {
 public:
  PlanDeque() = default;
  PlanDeque(const PlanDeque&) = delete;
  PlanDeque& operator=(const PlanDeque&) = delete;

  /// Stack insert: the plan will be fetched next (depth-first).
  void PushFront(T plan) {
    std::lock_guard<std::mutex> lock(mu_);
    q_.push_front(std::move(plan));
  }

  /// Queue insert: the plan waits behind earlier ones (breadth-first).
  void PushBack(T plan) {
    std::lock_guard<std::mutex> lock(mu_);
    q_.push_back(std::move(plan));
  }

  /// Fetches the next plan from the head, if any.
  std::optional<T> TryPopFront() {
    std::lock_guard<std::mutex> lock(mu_);
    if (q_.empty()) return std::nullopt;
    T plan = std::move(q_.front());
    q_.pop_front();
    return plan;
  }

  /// Removes all plans matching the predicate (fault tolerance:
  /// dropping plans of a revoked tree). Returns the number removed.
  template <typename Pred>
  size_t RemoveIf(Pred pred) {
    std::lock_guard<std::mutex> lock(mu_);
    size_t before = q_.size();
    for (auto it = q_.begin(); it != q_.end();) {
      if (pred(*it)) {
        it = q_.erase(it);
      } else {
        ++it;
      }
    }
    return before - q_.size();
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return q_.size();
  }

  bool empty() const { return size() == 0; }

 private:
  mutable std::mutex mu_;
  std::deque<T> q_;
};

}  // namespace treeserver

#endif  // TREESERVER_CONCURRENT_PLAN_DEQUE_H_
