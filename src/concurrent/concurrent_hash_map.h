#ifndef TREESERVER_CONCURRENT_CONCURRENT_HASH_MAP_H_
#define TREESERVER_CONCURRENT_CONCURRENT_HASH_MAP_H_

#include <functional>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

namespace treeserver {

/// Sharded hash map for multi-threaded access.
///
/// The task tables (T_task in the master and in each worker) are
/// instances: insertion/lookup of different tasks proceed concurrently
/// as long as they land in different shards, matching the paper's
/// "concurrent hash table" description (Appendix E). Values are
/// accessed under the shard lock via visit callbacks so callers can
/// mutate task state without a second lookup.
template <typename K, typename V, typename Hash = std::hash<K>>
class ConcurrentHashMap {
 public:
  explicit ConcurrentHashMap(size_t num_shards = 16)
      : shards_(num_shards == 0 ? 1 : num_shards) {}

  ConcurrentHashMap(const ConcurrentHashMap&) = delete;
  ConcurrentHashMap& operator=(const ConcurrentHashMap&) = delete;

  /// Inserts if absent; returns false if the key already exists.
  bool Insert(const K& key, V value) {
    Shard& s = ShardFor(key);
    std::lock_guard<std::mutex> lock(s.mu);
    return s.map.emplace(key, std::move(value)).second;
  }

  /// Runs `fn(value)` under the shard lock if the key exists.
  /// Returns whether the key was found.
  bool Visit(const K& key, const std::function<void(V&)>& fn) {
    Shard& s = ShardFor(key);
    std::lock_guard<std::mutex> lock(s.mu);
    auto it = s.map.find(key);
    if (it == s.map.end()) return false;
    fn(it->second);
    return true;
  }

  /// Like Visit, but `fn` returns true to erase the entry afterwards.
  /// Returns whether the key was found.
  bool VisitAndMaybeErase(const K& key, const std::function<bool(V&)>& fn) {
    Shard& s = ShardFor(key);
    std::lock_guard<std::mutex> lock(s.mu);
    auto it = s.map.find(key);
    if (it == s.map.end()) return false;
    if (fn(it->second)) s.map.erase(it);
    return true;
  }

  /// Removes the entry and returns its value, if present.
  std::optional<V> Extract(const K& key) {
    Shard& s = ShardFor(key);
    std::lock_guard<std::mutex> lock(s.mu);
    auto it = s.map.find(key);
    if (it == s.map.end()) return std::nullopt;
    V v = std::move(it->second);
    s.map.erase(it);
    return v;
  }

  bool Erase(const K& key) {
    Shard& s = ShardFor(key);
    std::lock_guard<std::mutex> lock(s.mu);
    return s.map.erase(key) > 0;
  }

  bool Contains(const K& key) const {
    const Shard& s = ShardFor(key);
    std::lock_guard<std::mutex> lock(s.mu);
    return s.map.count(key) > 0;
  }

  /// Visits every entry (shard by shard, each under its lock). Used by
  /// fault-tolerance sweeps to find tasks touching a crashed worker.
  void ForEach(const std::function<void(const K&, V&)>& fn) {
    for (Shard& s : shards_) {
      std::lock_guard<std::mutex> lock(s.mu);
      for (auto& [k, v] : s.map) fn(k, v);
    }
  }

  /// Read-only ForEach (stats snapshots).
  void ForEach(const std::function<void(const K&, const V&)>& fn) const {
    for (const Shard& s : shards_) {
      std::lock_guard<std::mutex> lock(s.mu);
      for (const auto& [k, v] : s.map) fn(k, v);
    }
  }

  /// Collects keys matching a predicate (snapshot; the map may change
  /// immediately after).
  std::vector<K> KeysWhere(const std::function<bool(const K&, const V&)>& pred)
      const {
    std::vector<K> out;
    for (const Shard& s : shards_) {
      std::lock_guard<std::mutex> lock(s.mu);
      for (const auto& [k, v] : s.map) {
        if (pred(k, v)) out.push_back(k);
      }
    }
    return out;
  }

  size_t size() const {
    size_t n = 0;
    for (const Shard& s : shards_) {
      std::lock_guard<std::mutex> lock(s.mu);
      n += s.map.size();
    }
    return n;
  }

  bool empty() const { return size() == 0; }

 private:
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<K, V, Hash> map;
  };

  Shard& ShardFor(const K& key) {
    return shards_[Hash{}(key) % shards_.size()];
  }
  const Shard& ShardFor(const K& key) const {
    return shards_[Hash{}(key) % shards_.size()];
  }

  std::vector<Shard> shards_;
};

}  // namespace treeserver

#endif  // TREESERVER_CONCURRENT_CONCURRENT_HASH_MAP_H_
