#ifndef TREESERVER_CONCURRENT_BLOCKING_QUEUE_H_
#define TREESERVER_CONCURRENT_BLOCKING_QUEUE_H_

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace treeserver {

/// Multi-producer multi-consumer blocking FIFO.
///
/// This is the channel primitive of the simulated cluster: message
/// queues (Q_plan, send/recv queues) and task buffers (B_task) are all
/// instances. Close() wakes all blocked consumers; Pop() returns
/// nullopt once the queue is closed and drained, which is how worker
/// threads learn to terminate.
template <typename T>
class BlockingQueue {
 public:
  BlockingQueue() = default;
  BlockingQueue(const BlockingQueue&) = delete;
  BlockingQueue& operator=(const BlockingQueue&) = delete;

  /// Enqueues; returns false if the queue is already closed.
  bool Push(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) return false;
      q_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed and
  /// empty. Returns nullopt only in the latter case.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return !q_.empty() || closed_; });
    if (q_.empty()) return std::nullopt;
    T item = std::move(q_.front());
    q_.pop_front();
    return item;
  }

  /// Non-blocking pop.
  std::optional<T> TryPop() {
    std::lock_guard<std::mutex> lock(mu_);
    if (q_.empty()) return std::nullopt;
    T item = std::move(q_.front());
    q_.pop_front();
    return item;
  }

  /// Marks the queue closed. Pending items are still delivered;
  /// subsequent Push calls fail.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  /// Reopens a closed queue (master failover hands the mailbox to a
  /// fresh master). Pending stale items stay and are dropped by the
  /// new consumer via its unknown-task handling.
  void Reopen() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = false;
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return q_.size();
  }

  bool empty() const { return size() == 0; }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> q_;
  bool closed_ = false;
};

}  // namespace treeserver

#endif  // TREESERVER_CONCURRENT_BLOCKING_QUEUE_H_
