#include "fleet/router.h"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <optional>
#include <sstream>

#include "common/logging.h"
#include "common/prometheus.h"
#include "common/trace.h"
#include "engine/messages.h"
#include "serve/model_io.h"

namespace treeserver {

namespace {

uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

uint64_t Mix64(uint64_t x) {
  // splitmix64 finalizer: cheap, well distributed.
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

uint64_t HashString(const std::string& s) {
  uint64_t h = 1469598103934665603ull;  // FNV-1a 64
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return Mix64(h);
}

/// Value of `key` in an HTTP query string ("a=b&c=d"), empty if absent.
std::string QueryParam(const std::string& query, const std::string& key) {
  size_t pos = 0;
  while (pos < query.size()) {
    size_t amp = query.find('&', pos);
    if (amp == std::string::npos) amp = query.size();
    size_t eq = query.find('=', pos);
    if (eq != std::string::npos && eq < amp &&
        query.compare(pos, eq - pos, key) == 0) {
      return query.substr(eq + 1, amp - eq - 1);
    }
    pos = amp + 1;
  }
  return "";
}

/// Loads a tree/forest model file into serialized-forest bytes (the
/// fleet push payload). Trees ride as a forest of one.
Result<std::string> ForestBytesFromFile(const std::string& path) {
  TS_ASSIGN_OR_RETURN(ModelKind kind, ReadModelFileKind(path));
  ForestModel forest;
  if (kind == ModelKind::kTree) {
    TreeModel tree;
    TS_RETURN_IF_ERROR(LoadFromFile(path, &tree));
    forest = ForestModel(tree.kind(), tree.num_classes());
    if (!tree.empty()) forest.AddTree(std::move(tree));
  } else if (kind == ModelKind::kForest) {
    TS_RETURN_IF_ERROR(LoadFromFile(path, &forest));
  } else {
    return Status::InvalidArgument(path + ": not a fleet-servable model");
  }
  BinaryWriter w;
  forest.Serialize(&w);
  return w.Release();
}

}  // namespace

CanaryDecision EvaluateCanaryDecision(const CanaryArmView& canary,
                                      const CanaryArmView& baseline,
                                      const CanaryBudgets& budgets) {
  const auto error_rate = [](const CanaryArmView& v) {
    return v.count == 0 ? 0.0
                        : static_cast<double>(v.errors) /
                              static_cast<double>(v.count);
  };
  // An error-budget breach rolls back immediately once the canary has
  // any meaningful sample: waiting for min_requests would keep burning
  // traffic on a model that is already visibly failing.
  if (canary.count >= 10 &&
      error_rate(canary) > error_rate(baseline) + budgets.max_error_excess) {
    return CanaryDecision::kRollback;
  }
  if (canary.count < budgets.min_requests ||
      baseline.count < budgets.min_requests) {
    return CanaryDecision::kKeepRunning;
  }
  if (error_rate(canary) > error_rate(baseline) + budgets.max_error_excess) {
    return CanaryDecision::kRollback;
  }
  if (baseline.p99_us > 0 &&
      static_cast<double>(canary.p99_us) >
          static_cast<double>(baseline.p99_us) * budgets.max_p99_ratio) {
    return CanaryDecision::kRollback;
  }
  return CanaryDecision::kPromote;
}

FleetRouter::FleetRouter(Transport* transport, FleetRouterConfig config)
    : transport_(transport),
      config_(config),
      metrics_(config.metrics != nullptr ? *config.metrics
                                         : MetricsRegistry::Global()),
      accepted_(metrics_.GetCounter("fleet.accepted")),
      shed_(metrics_.GetCounter("fleet.shed")),
      retransmits_(metrics_.GetCounter("fleet.retransmits")),
      failovers_(metrics_.GetCounter("fleet.failovers")),
      corrupt_(metrics_.GetCounter("fleet.router.corrupt")),
      promotions_(metrics_.GetCounter("fleet.canary.promotions")),
      rollbacks_(metrics_.GetCounter("fleet.canary.rollbacks")),
      latency_us_(metrics_.GetHistogram("fleet.latency_us")) {
  replicas_.resize(transport_->num_workers());
  // Static hash ring over all replicas; rotation is applied at lookup
  // time (a returning replica reclaims its ring points, preserving
  // stickiness across an outage).
  const int vnodes = std::max(1, config_.vnodes);
  for (int r = 0; r < transport_->num_workers(); ++r) {
    for (int v = 0; v < vnodes; ++v) {
      ring_.emplace_back(
          Mix64(static_cast<uint64_t>(r) * 1000003ull + v), r);
    }
  }
  std::sort(ring_.begin(), ring_.end());
}

FleetRouter::~FleetRouter() { Stop(); }

void FleetRouter::Start() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (started_ || stopping_) return;
    started_ = true;
  }
  reply_thread_ = std::thread(&FleetRouter::ReplyLoop, this);
  timer_thread_ = std::thread(&FleetRouter::TimerLoop, this);
  if (config_.http_port >= 0) StartHttp();
}

void FleetRouter::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    stopping_ = true;
  }
  if (http_ != nullptr) http_->Stop();
  timer_cv_.notify_all();
  // Self-sentinel so the reply thread exits even on a shared in-process
  // transport whose master queue must stay open for other users.
  Message stop;
  stop.src = kMasterRank;
  stop.dst = kMasterRank;
  stop.type = static_cast<uint32_t>(FleetMsg::kShutdown);
  transport_->Send(ChannelKind::kTask, std::move(stop));
  if (timer_thread_.joinable()) timer_thread_.join();
  if (reply_thread_.joinable()) reply_thread_.join();

  // Fail everything still pending BEFORE joining the canary-op
  // threads: they may be blocked on an admin future only this drain
  // can now fulfill (the timer that enforced deadlines is gone).
  std::vector<Inflight> orphaned;
  std::vector<std::shared_ptr<AdminOp>> admin_orphaned;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [id, inf] : inflight_) orphaned.push_back(std::move(inf));
    inflight_.clear();
    for (auto& [id, op] : admin_) admin_orphaned.push_back(std::move(op));
    admin_.clear();
    trace_active_ = false;
    trace_cv_.notify_all();
  }
  for (auto& inf : orphaned) {
    inf.promise.set_value(Status::Unavailable("fleet router stopped"));
  }
  for (auto& op : admin_orphaned) {
    op->promise.set_value(std::move(op->replies));
  }

  for (auto& t : canary_ops_) {
    if (t.joinable()) t.join();
  }
  canary_ops_.clear();
}

uint16_t FleetRouter::http_port() const {
  return http_ != nullptr ? http_->port() : 0;
}

// ---------------------------------------------------------------------
// Dispatch.
// ---------------------------------------------------------------------

bool FleetRouter::EligibleLocked(int replica, int exclude_a,
                                 int exclude_b) const {
  if (replica == exclude_a || replica == exclude_b) return false;
  const ReplicaState& r = replicas_[replica];
  return r.alive && r.in_rotation;
}

void FleetRouter::DecOutstandingLocked(int replica) {
  if (replica < 0 || replica >= static_cast<int>(replicas_.size())) return;
  if (replicas_[replica].outstanding > 0) replicas_[replica].outstanding--;
}

int FleetRouter::LeastLoadedLocked(int exclude_a, int exclude_b) const {
  int best = -1;
  for (int r = 0; r < static_cast<int>(replicas_.size()); ++r) {
    if (!EligibleLocked(r, exclude_a, exclude_b)) continue;
    if (best == -1 || replicas_[r].outstanding < replicas_[best].outstanding) {
      best = r;
    }
  }
  return best;
}

int FleetRouter::ChooseReplicaLocked(const std::string& model,
                                     uint64_t request_id, int exclude,
                                     Arm* arm) {
  *arm = Arm::kNone;
  int canary_replica = -1;
  auto it = canaries_.find(model);
  if (it != canaries_.end() && it->second.active) {
    canary_replica = it->second.replica;
    // Deterministic per-request canary assignment.
    const uint64_t slot = Mix64(request_id) % 10000;
    const uint64_t cut =
        static_cast<uint64_t>(config_.canary_fraction * 10000.0);
    if (slot < cut && canary_replica != exclude &&
        EligibleLocked(canary_replica, -2, -2)) {
      *arm = Arm::kCanary;
      return canary_replica;
    }
    *arm = Arm::kBaseline;
    // Baseline traffic must avoid the canary replica: it serves the
    // new version for this model.
  }

  const int avoid = canary_replica;  // -1 when no canary
  int least = LeastLoadedLocked(exclude, avoid);
  if (least == -1) {
    // Nothing else eligible; a canaried model may still fall back to
    // its canary replica rather than shed (version skew beats a 429
    // when the canary is the last replica standing).
    if (canary_replica != -1 && canary_replica != exclude &&
        EligibleLocked(canary_replica, -2, -2)) {
      return canary_replica;
    }
    return -1;
  }

  // Consistent-hash stickiness: first ring point >= hash(model) that
  // is eligible.
  const uint64_t h = HashString(model);
  auto ring_it = std::lower_bound(
      ring_.begin(), ring_.end(), std::make_pair(h, -1),
      [](const auto& a, const auto& b) { return a.first < b.first; });
  for (size_t step = 0; step < ring_.size(); ++step) {
    if (ring_it == ring_.end()) ring_it = ring_.begin();
    const int sticky = ring_it->second;
    ++ring_it;
    if (!EligibleLocked(sticky, exclude, avoid)) continue;
    if (replicas_[sticky].outstanding <=
        replicas_[least].outstanding +
            static_cast<uint64_t>(std::max(0, config_.sticky_slack))) {
      return sticky;
    }
    break;  // sticky is overloaded: fall to least-loaded
  }
  return least;
}

std::future<Result<FleetBatchResult>> FleetRouter::PredictRows(
    const std::string& model, const DataTable& table, const uint32_t* rows,
    size_t n, int deadline_ms) {
  std::promise<Result<FleetBatchResult>> promise;
  std::future<Result<FleetBatchResult>> future = promise.get_future();
  if (n == 0 || table.num_columns() == 0) {
    promise.set_value(Status::InvalidArgument("empty predict batch"));
    return future;
  }
  const uint64_t now = NowNanos();
  const int effective_deadline =
      deadline_ms > 0 ? deadline_ms : config_.default_deadline_ms;
  TraceSpan span(TraceCat::kServe, "fleet-dispatch");

  Send send;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      promise.set_value(Status::Unavailable("fleet router stopped"));
      return future;
    }
    if (inflight_.size() >= config_.max_inflight) {
      shed_->Inc();
      promise.set_value(Status::Unavailable(
          "fleet overloaded (" + std::to_string(config_.max_inflight) +
          " in flight); shed"));
      return future;
    }
    const uint64_t id = next_id_++;
    Arm arm = Arm::kNone;
    const int replica = ChooseReplicaLocked(model, id, /*exclude=*/-2, &arm);
    if (replica == -1) {
      shed_->Inc();
      promise.set_value(
          Status::Unavailable("no fleet replica in rotation; shed"));
      return future;
    }
    accepted_->Inc();

    FleetPredictMsg msg = FleetPredictMsg::FromRows(id, model, table, rows, n);
    Inflight inf;
    inf.model = model;
    inf.payload = msg.Encode();
    inf.promise = std::move(promise);
    inf.enqueue_ns = now;
    inf.deadline_ns = now + static_cast<uint64_t>(effective_deadline) * 1000000;
    inf.last_send_ns = now;
    inf.replica = replica;
    inf.arm = arm;
    inf.num_rows = static_cast<uint32_t>(n);
    inf.classification =
        table.schema().task_kind() == TaskKind::kClassification;
    replicas_[replica].outstanding++;

    send.channel = ChannelKind::kTask;
    send.dst = replica;
    send.type = static_cast<uint32_t>(FleetMsg::kPredict);
    send.payload = inf.payload;
    inflight_.emplace(id, std::move(inf));
  }
  DoSends({std::move(send)});
  return future;
}

std::future<Result<FleetBatchResult>> FleetRouter::Predict(
    const std::string& model, const DataTable& table, uint32_t row,
    int deadline_ms) {
  return PredictRows(model, table, &row, 1, deadline_ms);
}

void FleetRouter::DoSends(std::vector<Send> sends) {
  for (Send& s : sends) {
    Message msg;
    msg.src = kMasterRank;
    msg.dst = s.dst;
    msg.type = s.type;
    msg.payload = std::move(s.payload);
    transport_->Send(s.channel, std::move(msg));
  }
}

// ---------------------------------------------------------------------
// Reply thread.
// ---------------------------------------------------------------------

void FleetRouter::ReplyLoop() {
  BlockingQueue<Message>& queue = transport_->master_queue();
  while (true) {
    std::optional<Message> msg = queue.Pop();
    if (!msg.has_value()) return;
    std::vector<Send> sends;
    switch (static_cast<FleetMsg>(msg->type)) {
      case FleetMsg::kPredictReply:
        HandlePredictReply(*msg, &sends);
        break;
      case FleetMsg::kPushReply:
      case FleetMsg::kRollbackReply:
        HandleAdminReply(*msg);
        break;
      case FleetMsg::kHealthPong:
        HandleHealthPong(*msg);
        break;
      case FleetMsg::kTraceReply:
        HandleTraceReply(*msg);
        break;
      case FleetMsg::kShutdown:
        return;
      default:
        TS_LOG(kWarn) << "fleet router: unknown message type "
                         << msg->type;
        break;
    }
    DoSends(std::move(sends));
  }
}

void FleetRouter::HandlePredictReply(const Message& msg,
                                     std::vector<Send>* sends) {
  FleetPredictReplyMsg reply;
  if (Status st = FleetPredictReplyMsg::Decode(msg.payload, &reply);
      !st.ok()) {
    corrupt_->Inc();
    return;  // the retransmit timer covers it
  }

  std::promise<Result<FleetBatchResult>> promise;
  Result<FleetBatchResult> outcome = Status::OK();
  bool resolve = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = inflight_.find(reply.request_id);
    if (it == inflight_.end()) return;  // late duplicate
    Inflight& inf = it->second;

    const uint64_t latency_us = (NowNanos() - inf.enqueue_ns) / 1000;
    const StatusCode code = static_cast<StatusCode>(reply.status_code);

    if (code == StatusCode::kOk) {
      const size_t got =
          inf.classification ? reply.labels.size() : reply.values.size();
      if (got != inf.num_rows) {
        // Malformed but CRC-clean reply (should not happen): retry.
        corrupt_->Inc();
        return;
      }
      FleetBatchResult result;
      result.replica = reply.replica;
      result.version = reply.version;
      result.labels = std::move(reply.labels);
      result.values = std::move(reply.values);
      latency_us_->Add(latency_us);
      RecordArmLocked(inf.model, inf.arm, /*error=*/false, latency_us);
      outcome = std::move(result);
      promise = std::move(inf.promise);
      resolve = true;
      DecOutstandingLocked(inf.replica);
      inflight_.erase(it);
    } else if (code == StatusCode::kUnavailable) {
      // Replica-side backpressure: immediately try another replica;
      // the deadline is the overall bound.
      Arm arm = inf.arm;
      const int next = ChooseReplicaLocked(inf.model, reply.request_id,
                                           /*exclude=*/inf.replica, &arm);
      if (next != -1) {
        DecOutstandingLocked(inf.replica);
        replicas_[next].outstanding++;
        inf.replica = next;
        inf.arm = arm;
        inf.last_send_ns = NowNanos();
        retransmits_->Inc();
        sends->push_back({ChannelKind::kTask, next,
                          static_cast<uint32_t>(FleetMsg::kPredict),
                          inf.payload});
      }
      // else: leave in flight; the timer retries or deadline-sheds.
    } else {
      // Hard error (unknown model, bad batch): not retryable.
      RecordArmLocked(inf.model, inf.arm, /*error=*/true, latency_us);
      outcome = Status(code, reply.error);
      promise = std::move(inf.promise);
      resolve = true;
      DecOutstandingLocked(inf.replica);
      inflight_.erase(it);
    }
  }
  if (resolve) promise.set_value(std::move(outcome));
}

void FleetRouter::RecordArmLocked(const std::string& model, Arm arm,
                                  bool error, uint64_t latency_us) {
  if (arm == Arm::kNone) return;
  auto it = canaries_.find(model);
  if (it == canaries_.end() || !it->second.active) return;
  ArmStats& stats =
      arm == Arm::kCanary ? it->second.canary : it->second.baseline;
  stats.count++;
  if (error) stats.errors++;
  stats.latency_us.Add(latency_us);
}

void FleetRouter::HandleAdminReply(const Message& msg) {
  FleetAdminReplyMsg reply;
  if (Status st = FleetAdminReplyMsg::Decode(msg.payload, &reply); !st.ok()) {
    corrupt_->Inc();
    return;
  }
  std::shared_ptr<AdminOp> done;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = admin_.find(reply.op_id);
    if (it == admin_.end()) return;  // late duplicate
    AdminOp& op = *it->second;
    if (op.replies.emplace(reply.replica, reply).second) {
      op.remaining.erase(reply.replica);
    }
    if (op.remaining.empty()) {
      done = it->second;
      admin_.erase(it);
    }
  }
  if (done != nullptr) done->promise.set_value(std::move(done->replies));
}

void FleetRouter::HandleHealthPong(const Message& msg) {
  FleetHealthPongMsg pong;
  if (Status st = FleetHealthPongMsg::Decode(msg.payload, &pong); !st.ok()) {
    corrupt_->Inc();
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (pong.replica < 0 ||
      pong.replica >= static_cast<int>(replicas_.size())) {
    return;
  }
  ReplicaState& r = replicas_[pong.replica];
  if (!r.alive) return;  // declared dead stays dead
  r.misses = 0;
  r.last_pong_ns = NowNanos();
  if (!r.in_rotation) {
    TS_LOG(kInfo) << "fleet: replica " << pong.replica
                  << " back in rotation";
    r.in_rotation = true;
  }
  r.last_pong = std::move(pong);
}

void FleetRouter::HandleTraceReply(const Message& msg) {
  TraceSnapshotMsg snap;
  if (Status st = TraceSnapshotMsg::Decode(msg.payload, &snap); !st.ok()) {
    corrupt_->Inc();
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (!trace_active_ || trace_expect_.count(snap.worker) == 0) return;
  trace_expect_.erase(snap.worker);
  RankTrace rank;
  rank.rank = snap.worker;
  rank.label = "replica " + std::to_string(snap.worker);
  rank.clock_offset_ns =
      config_.clock_offset_ns ? config_.clock_offset_ns(snap.worker) : 0;
  rank.dropped_spans = snap.dropped;
  rank.events = std::move(snap.events);
  trace_snaps_.push_back(std::move(rank));
  if (trace_expect_.empty()) trace_cv_.notify_all();
}

// ---------------------------------------------------------------------
// Timer thread: health, deadlines, retransmits, canary auto-decisions.
// ---------------------------------------------------------------------

void FleetRouter::TimerLoop() {
  const int tick_ms =
      std::max(5, std::min(config_.health_period_ms, config_.retry_period_ms) / 4);
  std::unique_lock<std::mutex> lock(mu_);
  while (!stopping_) {
    timer_cv_.wait_for(lock, std::chrono::milliseconds(tick_ms),
                       [&] { return stopping_; });
    if (stopping_) break;
    std::vector<Send> sends;
    std::vector<std::pair<std::promise<Result<FleetBatchResult>>, Status>>
        failed;
    lock.unlock();
    TimerTick(&sends, &failed);
    DoSends(std::move(sends));
    for (auto& [promise, status] : failed) promise.set_value(status);
    lock.lock();
  }
}

void FleetRouter::TimerTick(
    std::vector<Send>* sends,
    std::vector<std::pair<std::promise<Result<FleetBatchResult>>, Status>>*
        failed) {
  const uint64_t now = NowNanos();
  const uint64_t health_period_ns =
      static_cast<uint64_t>(std::max(1, config_.health_period_ms)) * 1000000;
  const uint64_t retry_ns =
      static_cast<uint64_t>(std::max(1, config_.retry_period_ms)) * 1000000;

  std::vector<std::pair<std::string, CanaryDecision>> decisions;
  std::vector<std::shared_ptr<AdminOp>> admin_done;
  {
    std::lock_guard<std::mutex> lock(mu_);

    // Health round.
    if (now - last_health_sent_ns_ >= health_period_ns) {
      for (int r = 0; r < static_cast<int>(replicas_.size()); ++r) {
        ReplicaState& state = replicas_[r];
        if (!state.alive) continue;
        if (last_health_sent_ns_ != 0 &&
            state.last_pong_ns < last_health_sent_ns_) {
          state.misses++;
          if (state.in_rotation && state.misses >= config_.health_miss_limit) {
            TS_LOG(kWarn) << "fleet: replica " << r << " missed "
                             << state.misses
                             << " health rounds, out of rotation";
            state.in_rotation = false;
          }
        }
        FleetHealthPingMsg ping;
        ping.nonce = now;
        sends->push_back({ChannelKind::kTask, r,
                          static_cast<uint32_t>(FleetMsg::kHealthPing),
                          ping.Encode()});
      }
      last_health_sent_ns_ = now;
    }

    // Deadline shedding + retransmits.
    for (auto it = inflight_.begin(); it != inflight_.end();) {
      Inflight& inf = it->second;
      if (now >= inf.deadline_ns) {
        shed_->Inc();
        DecOutstandingLocked(inf.replica);
        failed->emplace_back(
            std::move(inf.promise),
            Status::Unavailable("fleet deadline exceeded; shed"));
        it = inflight_.erase(it);
        continue;
      }
      if (now - inf.last_send_ns >= retry_ns) {
        Arm arm = inf.arm;
        // Rotate away from the unresponsive replica when possible.
        int next = ChooseReplicaLocked(inf.model, it->first,
                                       /*exclude=*/inf.replica, &arm);
        if (next == -1 && EligibleLocked(inf.replica, -2, -2)) {
          next = inf.replica;  // only choice: same replica again
          arm = inf.arm;
        }
        if (next != -1) {
          DecOutstandingLocked(inf.replica);
          replicas_[next].outstanding++;
          inf.replica = next;
          inf.arm = arm;
          inf.last_send_ns = now;
          retransmits_->Inc();
          sends->push_back({ChannelKind::kTask, next,
                            static_cast<uint32_t>(FleetMsg::kPredict),
                            inf.payload});
        }
      }
      ++it;
    }

    // Admin op retries + timeouts.
    for (auto it = admin_.begin(); it != admin_.end();) {
      AdminOp& op = *it->second;
      if (now >= op.deadline_ns) {
        admin_done.push_back(it->second);
        it = admin_.erase(it);
        continue;
      }
      if (now - op.last_send_ns >= retry_ns) {
        op.last_send_ns = now;
        for (int r : op.remaining) {
          if (!replicas_[r].alive) continue;
          sends->push_back({ChannelKind::kTask, r, op.send_type, op.payload});
        }
      }
      ++it;
    }

    // Canary auto-decisions.
    if (config_.canary_auto) {
      for (auto& [model, canary] : canaries_) {
        if (!canary.active || canary.deciding) continue;
        CanaryBudgets budgets;
        budgets.min_requests = config_.canary_min_requests;
        budgets.max_error_excess = config_.canary_max_error_excess;
        budgets.max_p99_ratio = config_.canary_max_p99_ratio;
        const CanaryDecision d = EvaluateCanaryDecision(
            canary.canary.View(), canary.baseline.View(), budgets);
        if (d != CanaryDecision::kKeepRunning) {
          canary.deciding = true;
          decisions.emplace_back(model, d);
        }
      }
    }
  }

  for (auto& op : admin_done) op->promise.set_value(std::move(op->replies));

  // Promote/Rollback block on admin fan-outs, so they run on their own
  // threads (joined at Stop), never on the timer thread.
  for (auto& [model, decision] : decisions) {
    std::lock_guard<std::mutex> lock(mu_);
    canary_ops_.emplace_back([this, model = model, decision] {
      if (decision == CanaryDecision::kPromote) {
        TS_LOG(kInfo) << "fleet: auto-promoting canary of " << model;
        Promote(model);
      } else {
        TS_LOG(kWarn) << "fleet: auto-rolling-back canary of " << model;
        Rollback(model);
      }
    });
  }
}

// ---------------------------------------------------------------------
// Admin: push / canary / promote / rollback.
// ---------------------------------------------------------------------

Result<std::map<int, FleetAdminReplyMsg>> FleetRouter::RunAdminOp(
    uint64_t op_id, uint32_t send_type, std::string payload,
    const std::set<int>& targets) {
  if (targets.empty()) {
    return Status::Unavailable("no live fleet replica to address");
  }
  TraceSpan span(TraceCat::kServe, "fleet-admin", op_id);
  auto op = std::make_shared<AdminOp>();
  std::future<std::map<int, FleetAdminReplyMsg>> future =
      op->promise.get_future();
  const uint64_t now = NowNanos();
  op->send_type = send_type;
  op->payload = std::move(payload);
  op->remaining = targets;
  op->deadline_ns =
      now + static_cast<uint64_t>(std::max(1, config_.admin_timeout_ms)) *
                1000000;
  op->last_send_ns = now;

  std::vector<Send> sends;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return Status::Unavailable("fleet router stopped");
    // Keyed by the id sealed inside the payload: replies correlate the
    // op by it.
    admin_[op_id] = op;
    for (int r : targets) {
      sends.push_back({ChannelKind::kTask, r, send_type, op->payload});
    }
  }
  DoSends(std::move(sends));
  return future.get();
}

Status FleetRouter::AggregateAdmin(
    const std::map<int, FleetAdminReplyMsg>& replies,
    const std::set<int>& targets) {
  for (int r : targets) {
    auto it = replies.find(r);
    if (it == replies.end()) {
      return Status::Unavailable("replica " + std::to_string(r) +
                                 " did not answer the admin op");
    }
    const StatusCode code = static_cast<StatusCode>(it->second.status_code);
    if (code != StatusCode::kOk) {
      return Status(code,
                    "replica " + std::to_string(r) + ": " + it->second.error);
    }
  }
  return Status::OK();
}

Status FleetRouter::Push(const std::string& model,
                         const std::string& model_bytes) {
  std::set<int> targets;
  uint64_t op_id = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    op_id = next_id_++;
    for (int r = 0; r < static_cast<int>(replicas_.size()); ++r) {
      if (replicas_[r].alive) targets.insert(r);
    }
  }
  FleetPushMsg msg;
  msg.op_id = op_id;
  msg.model = model;
  msg.model_bytes = model_bytes;
  TS_ASSIGN_OR_RETURN(auto replies,
                      RunAdminOp(op_id, static_cast<uint32_t>(FleetMsg::kPush),
                                 msg.Encode(), targets));
  return AggregateAdmin(replies, targets);
}

Result<int> FleetRouter::PushCanary(const std::string& model,
                                    const std::string& model_bytes,
                                    int replica) {
  uint64_t op_id = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = canaries_.find(model);
    if (it != canaries_.end() && it->second.active) {
      return Status::AlreadyExists(model +
                                   " already has an active canary; promote "
                                   "or roll it back first");
    }
    if (replica < 0) {
      replica = LeastLoadedLocked(-2, -2);
    } else if (replica >= static_cast<int>(replicas_.size()) ||
               !replicas_[replica].alive) {
      return Status::InvalidArgument("bad canary replica " +
                                     std::to_string(replica));
    }
    if (replica < 0) {
      return Status::Unavailable("no replica in rotation for a canary");
    }
    op_id = next_id_++;
  }

  FleetPushMsg msg;
  msg.op_id = op_id;
  msg.model = model;
  msg.model_bytes = model_bytes;
  const std::set<int> targets = {replica};
  TS_ASSIGN_OR_RETURN(auto replies,
                      RunAdminOp(op_id, static_cast<uint32_t>(FleetMsg::kPush),
                                 msg.Encode(), targets));
  TS_RETURN_IF_ERROR(AggregateAdmin(replies, targets));

  std::lock_guard<std::mutex> lock(mu_);
  CanaryState& canary = canaries_[model];
  canary.canary.Reset();
  canary.baseline.Reset();
  canary.deciding = false;
  canary.active = true;
  canary.replica = replica;
  canary.version = replies.at(replica).version;
  canary.model_bytes = model_bytes;
  TS_LOG(kInfo) << "fleet: canary of " << model << " v" << canary.version
                << " live on replica " << replica;
  return replica;
}

Status FleetRouter::Promote(const std::string& model) {
  std::string bytes;
  int canary_replica = -1;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = canaries_.find(model);
    if (it == canaries_.end() || !it->second.active) {
      return Status::FailedPrecondition(model + " has no active canary");
    }
    bytes = it->second.model_bytes;
    canary_replica = it->second.replica;
  }
  std::set<int> targets;
  uint64_t op_id = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    op_id = next_id_++;
    for (int r = 0; r < static_cast<int>(replicas_.size()); ++r) {
      if (replicas_[r].alive && r != canary_replica) targets.insert(r);
    }
  }
  if (!targets.empty()) {
    FleetPushMsg msg;
    msg.op_id = op_id;
    msg.model = model;
    msg.model_bytes = std::move(bytes);
    TS_ASSIGN_OR_RETURN(
        auto replies, RunAdminOp(op_id, static_cast<uint32_t>(FleetMsg::kPush),
                                 msg.Encode(), targets));
    TS_RETURN_IF_ERROR(AggregateAdmin(replies, targets));
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = canaries_.find(model);
  if (it != canaries_.end()) canaries_.erase(it);
  promotions_->Inc();
  TS_LOG(kInfo) << "fleet: canary of " << model << " promoted fleet-wide";
  return Status::OK();
}

Status FleetRouter::Rollback(const std::string& model) {
  std::set<int> targets;
  uint64_t op_id = 0;
  bool was_canary = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    op_id = next_id_++;
    auto it = canaries_.find(model);
    if (it != canaries_.end() && it->second.active) {
      was_canary = true;
      if (replicas_[it->second.replica].alive) {
        targets.insert(it->second.replica);
      }
      canaries_.erase(it);
    } else {
      for (int r = 0; r < static_cast<int>(replicas_.size()); ++r) {
        if (replicas_[r].alive) targets.insert(r);
      }
    }
  }
  rollbacks_->Inc();
  if (targets.empty()) {
    // Canary replica already dead: its versions died with it.
    return Status::OK();
  }
  FleetRollbackMsg msg;
  msg.op_id = op_id;
  msg.model = model;
  TS_ASSIGN_OR_RETURN(
      auto replies, RunAdminOp(op_id,
                               static_cast<uint32_t>(FleetMsg::kRollback),
                               msg.Encode(), targets));
  TS_RETURN_IF_ERROR(AggregateAdmin(replies, targets));
  TS_LOG(kInfo) << "fleet: " << model << " rolled back on "
                << (was_canary ? "the canary replica" : "every replica");
  return Status::OK();
}

// ---------------------------------------------------------------------
// Failure + lifecycle plumbing.
// ---------------------------------------------------------------------

void FleetRouter::MarkReplicaDead(int replica) {
  std::vector<Send> sends;
  std::vector<std::pair<std::promise<Result<FleetBatchResult>>, Status>>
      failed;
  std::vector<std::shared_ptr<AdminOp>> admin_done;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (replica < 0 || replica >= static_cast<int>(replicas_.size())) return;
    ReplicaState& state = replicas_[replica];
    if (!state.alive) return;
    TS_LOG(kWarn) << "fleet: replica " << replica << " declared dead";
    state.alive = false;
    state.in_rotation = false;

    // A dead canary host ends its canary: the pushed version died with
    // the process.
    for (auto it = canaries_.begin(); it != canaries_.end();) {
      if (it->second.active && it->second.replica == replica) {
        TS_LOG(kWarn) << "fleet: canary of " << it->first
                         << " lost its replica, rolled back";
        rollbacks_->Inc();
        it = canaries_.erase(it);
      } else {
        ++it;
      }
    }

    // Re-dispatch the dead replica's in-flight work right away.
    const uint64_t now = NowNanos();
    for (auto& [id, inf] : inflight_) {
      if (inf.replica != replica) continue;
      Arm arm = inf.arm;
      const int next = ChooseReplicaLocked(inf.model, id,
                                           /*exclude=*/replica, &arm);
      DecOutstandingLocked(replica);
      if (next == -1) {
        inf.replica = -1;
        continue;  // timer retries once something returns
      }
      replicas_[next].outstanding++;
      inf.replica = next;
      inf.arm = arm;
      inf.last_send_ns = now;
      failovers_->Inc();
      sends.push_back({ChannelKind::kTask, next,
                       static_cast<uint32_t>(FleetMsg::kPredict),
                       inf.payload});
    }

    // Admin ops stop waiting on it.
    for (auto it = admin_.begin(); it != admin_.end();) {
      AdminOp& op = *it->second;
      if (op.remaining.erase(replica) > 0) {
        FleetAdminReplyMsg dead;
        dead.replica = replica;
        dead.status_code = static_cast<uint8_t>(StatusCode::kUnavailable);
        dead.error = "replica dead";
        op.replies.emplace(replica, std::move(dead));
      }
      if (op.remaining.empty()) {
        admin_done.push_back(it->second);
        it = admin_.erase(it);
      } else {
        ++it;
      }
    }

    // A pending trace collection stops expecting its lane.
    if (trace_active_ && trace_expect_.erase(replica) > 0 &&
        trace_expect_.empty()) {
      trace_cv_.notify_all();
    }
  }
  for (auto& op : admin_done) op->promise.set_value(std::move(op->replies));
  DoSends(std::move(sends));
  for (auto& [promise, status] : failed) promise.set_value(status);
}

void FleetRouter::ShutdownReplicas() {
  std::vector<Send> sends;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (int r = 0; r < static_cast<int>(replicas_.size()); ++r) {
      if (!replicas_[r].alive) continue;
      sends.push_back({ChannelKind::kTask, r,
                       static_cast<uint32_t>(FleetMsg::kShutdown), ""});
    }
  }
  DoSends(std::move(sends));
}

Result<std::string> FleetRouter::CollectMergedTrace(int timeout_ms) {
  std::vector<Send> sends;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (trace_active_) {
      return Status::FailedPrecondition("trace collection already running");
    }
    trace_active_ = true;
    trace_expect_.clear();
    trace_snaps_.clear();
    for (int r = 0; r < static_cast<int>(replicas_.size()); ++r) {
      if (!replicas_[r].alive) continue;
      trace_expect_.insert(r);
      // kTrace channel: low priority on TCP, and exempt from fault
      // injection, so a chaos profile cannot corrupt trace collection.
      sends.push_back({ChannelKind::kTrace, r,
                       static_cast<uint32_t>(FleetMsg::kTraceRequest), ""});
    }
  }
  DoSends(std::move(sends));

  std::vector<RankTrace> ranks;
  {
    std::unique_lock<std::mutex> lock(mu_);
    trace_cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                       [&] { return trace_expect_.empty() || stopping_; });
    if (!trace_expect_.empty()) {
      TS_LOG(kWarn) << "fleet: trace collection missing "
                       << trace_expect_.size() << " replica lane(s)";
    }
    ranks = std::move(trace_snaps_);
    trace_snaps_.clear();
    trace_expect_.clear();
    trace_active_ = false;
  }

  RankTrace router_lane;
  router_lane.rank = kMasterRank;
  router_lane.label = "router";
  router_lane.clock_offset_ns = 0;
  router_lane.dropped_spans = Tracer::Global().dropped_spans();
  router_lane.events = Tracer::Global().SnapshotEvents();
  ranks.insert(ranks.begin(), std::move(router_lane));
  std::sort(ranks.begin(), ranks.end(),
            [](const RankTrace& a, const RankTrace& b) {
              return a.rank < b.rank;
            });
  return MergedChromeTraceJson(ranks);
}

// ---------------------------------------------------------------------
// Status + HTTP.
// ---------------------------------------------------------------------

FleetStatus FleetRouter::GetStatus() {
  FleetStatus status;
  status.accepted = accepted_->value();
  status.shed = shed_->value();
  status.retransmits = retransmits_->value();
  status.failovers = failovers_->value();
  std::lock_guard<std::mutex> lock(mu_);
  status.replicas.reserve(replicas_.size());
  for (int r = 0; r < static_cast<int>(replicas_.size()); ++r) {
    const ReplicaState& state = replicas_[r];
    FleetReplicaStatus rs;
    rs.rank = r;
    rs.alive = state.alive;
    rs.in_rotation = state.in_rotation;
    rs.misses = state.misses;
    rs.outstanding = state.outstanding;
    rs.queue_depth = state.last_pong.queue_depth;
    rs.requests = state.last_pong.requests;
    rs.batches = state.last_pong.batches;
    rs.rejected = state.last_pong.rejected;
    rs.models = state.last_pong.models;
    status.replicas.push_back(std::move(rs));
  }
  for (const auto& [model, canary] : canaries_) {
    if (!canary.active) continue;
    FleetCanaryStatus cs;
    cs.model = model;
    cs.replica = canary.replica;
    cs.version = canary.version;
    cs.canary = canary.canary.View();
    cs.baseline = canary.baseline.View();
    status.canaries.push_back(std::move(cs));
  }
  return status;
}

std::string FleetRouter::StatusJson() {
  const FleetStatus status = GetStatus();
  const Histogram::Snapshot latency = latency_us_->snapshot();
  std::ostringstream out;
  out << "{\"role\":\"router\",\"accepted\":" << status.accepted
      << ",\"shed\":" << status.shed
      << ",\"retransmits\":" << status.retransmits
      << ",\"failovers\":" << status.failovers
      << ",\"latency_us\":{\"count\":" << latency.count
      << ",\"p50\":" << latency.Percentile(0.50)
      << ",\"p99\":" << latency.Percentile(0.99) << "}"
      << ",\"rss_bytes\":" << CurrentRssBytes() << ",\"replicas\":[";
  for (size_t i = 0; i < status.replicas.size(); ++i) {
    const FleetReplicaStatus& r = status.replicas[i];
    if (i > 0) out << ",";
    out << "{\"rank\":" << r.rank
        << ",\"alive\":" << (r.alive ? "true" : "false")
        << ",\"in_rotation\":" << (r.in_rotation ? "true" : "false")
        << ",\"misses\":" << r.misses << ",\"outstanding\":" << r.outstanding
        << ",\"queue_depth\":" << r.queue_depth
        << ",\"requests\":" << r.requests << ",\"batches\":" << r.batches
        << ",\"rejected\":" << r.rejected << ",\"models\":[";
    for (size_t m = 0; m < r.models.size(); ++m) {
      if (m > 0) out << ",";
      out << "{\"name\":\"" << r.models[m].name
          << "\",\"version\":" << r.models[m].version
          << ",\"num_versions\":" << r.models[m].num_versions << "}";
    }
    out << "]}";
  }
  out << "],\"canaries\":[";
  for (size_t i = 0; i < status.canaries.size(); ++i) {
    const FleetCanaryStatus& c = status.canaries[i];
    if (i > 0) out << ",";
    out << "{\"model\":\"" << c.model << "\",\"replica\":" << c.replica
        << ",\"version\":" << c.version
        << ",\"canary\":{\"count\":" << c.canary.count
        << ",\"errors\":" << c.canary.errors
        << ",\"p99_us\":" << c.canary.p99_us
        << "},\"baseline\":{\"count\":" << c.baseline.count
        << ",\"errors\":" << c.baseline.errors
        << ",\"p99_us\":" << c.baseline.p99_us << "}}";
  }
  out << "]}\n";
  return out.str();
}

void FleetRouter::StartHttp() {
  http_ = std::make_unique<HttpServer>();
  http_->Handle("/metrics", [this](const std::string&) {
    HttpResponse resp;
    resp.content_type = "text/plain; version=0.0.4; charset=utf-8";
    resp.body = PrometheusExport(metrics_.Snapshot());
    return resp;
  });
  http_->Handle("/healthz", [](const std::string&) {
    HttpResponse resp;
    resp.body = "ok\n";
    return resp;
  });
  http_->Handle("/statusz", [this](const std::string&) {
    HttpResponse resp;
    resp.content_type = "application/json";
    resp.body = StatusJson();
    return resp;
  });
  http_->Handle("/fleet/push", [this](const std::string& query) {
    HttpResponse resp;
    const std::string model = QueryParam(query, "model");
    const std::string path = QueryParam(query, "path");
    const std::string canary = QueryParam(query, "canary");
    if (model.empty() || path.empty()) {
      resp.status = 400;
      resp.body = "usage: /fleet/push?model=NAME&path=FILE[&canary=1]\n";
      return resp;
    }
    Result<std::string> bytes = ForestBytesFromFile(path);
    if (!bytes.ok()) {
      resp.status = 400;
      resp.body = bytes.status().ToString() + "\n";
      return resp;
    }
    if (canary == "1" || canary == "true") {
      Result<int> replica = PushCanary(model, *bytes);
      if (!replica.ok()) {
        resp.status = 500;
        resp.body = replica.status().ToString() + "\n";
      } else {
        resp.body =
            "canary live on replica " + std::to_string(*replica) + "\n";
      }
    } else {
      Status st = Push(model, *bytes);
      resp.status = st.ok() ? 200 : 500;
      resp.body = st.ok() ? "pushed\n" : st.ToString() + "\n";
    }
    return resp;
  });
  http_->Handle("/fleet/promote", [this](const std::string& query) {
    HttpResponse resp;
    const std::string model = QueryParam(query, "model");
    if (model.empty()) {
      resp.status = 400;
      resp.body = "usage: /fleet/promote?model=NAME\n";
      return resp;
    }
    Status st = Promote(model);
    resp.status = st.ok() ? 200 : 500;
    resp.body = st.ok() ? "promoted\n" : st.ToString() + "\n";
    return resp;
  });
  http_->Handle("/fleet/rollback", [this](const std::string& query) {
    HttpResponse resp;
    const std::string model = QueryParam(query, "model");
    if (model.empty()) {
      resp.status = 400;
      resp.body = "usage: /fleet/rollback?model=NAME\n";
      return resp;
    }
    Status st = Rollback(model);
    resp.status = st.ok() ? 200 : 500;
    resp.body = st.ok() ? "rolled back\n" : st.ToString() + "\n";
    return resp;
  });
  Status st = http_->Start(config_.http_host,
                           static_cast<uint16_t>(config_.http_port));
  if (!st.ok()) {
    TS_LOG(kError) << "fleet router http: " << st.ToString();
    http_.reset();
  }
}

}  // namespace treeserver
