#ifndef TREESERVER_FLEET_WIRE_H_
#define TREESERVER_FLEET_WIRE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/serial.h"
#include "common/status.h"
#include "forest/forest.h"
#include "table/data_table.h"

namespace treeserver {

/// Message types of the fleet serving protocol (router <-> replica).
/// The fleet runs on its own Transport instance, so these values never
/// meet the training engine's MsgType space.
enum class FleetMsg : uint32_t {
  kPredict = 1,        // router -> replica: FleetPredictMsg
  kPredictReply = 2,   // replica -> router: FleetPredictReplyMsg
  kPush = 3,           // router -> replica: FleetPushMsg
  kPushReply = 4,      // replica -> router: FleetAdminReplyMsg
  kRollback = 5,       // router -> replica: FleetRollbackMsg
  kRollbackReply = 6,  // replica -> router: FleetAdminReplyMsg
  kHealthPing = 7,     // router -> replica: FleetHealthPingMsg
  kHealthPong = 8,     // replica -> router: FleetHealthPongMsg
  kTraceRequest = 9,   // router -> replica (kTrace channel), empty body
  kTraceReply = 10,    // replica -> router: TraceSnapshotMsg (engine codec)
  kShutdown = 11,      // router -> replica, empty body; also the
                       // router's self-sent stop sentinel
};

/// Every fleet payload is sealed as [u32 crc32c(body)][body] so a
/// fault-injected byte flip is detected at the seam instead of
/// corrupting a prediction: the receiver drops the frame (counted) and
/// the router's retransmit timer re-dispatches the request.
std::string SealFleetPayload(std::string body);
/// Verifies and strips the CRC prefix. Corruption on mismatch or a
/// short payload.
Status OpenFleetPayload(const std::string& payload, std::string* body);

/// A batch of rows to predict, self-describing: the columnar block
/// carries every column of the client table (type tag + raw values) at
/// its original index, so the replica rebuilds a table whose column
/// indices line up with the compiled model's — raw double bits and
/// category codes cross the wire unmodified, which is what keeps fleet
/// predictions byte-identical to the single-process reference.
struct FleetPredictMsg {
  struct WireColumn {
    uint8_t type = 0;  // DataType
    int32_t cardinality = 0;
    std::vector<double> num;   // numeric columns
    std::vector<int32_t> cat;  // categorical columns
  };

  uint64_t request_id = 0;
  std::string model;
  int32_t target_index = 0;
  uint8_t task_kind = 0;  // TaskKind
  uint32_t num_rows = 0;
  std::vector<WireColumn> columns;

  /// Extracts `rows` of `table` into a wire batch.
  static FleetPredictMsg FromRows(uint64_t request_id,
                                  const std::string& model,
                                  const DataTable& table,
                                  const uint32_t* rows, size_t n);
  /// Rebuilds a predictable table from the wire batch.
  Result<std::shared_ptr<const DataTable>> ToTable() const;

  std::string Encode() const;  // sealed
  static Status Decode(const std::string& payload, FleetPredictMsg* out);
};

struct FleetPredictReplyMsg {
  uint64_t request_id = 0;
  int32_t replica = -1;
  uint8_t status_code = 0;  // StatusCode
  std::string error;
  uint32_t version = 0;
  std::vector<int32_t> labels;  // classification, one per row
  std::vector<double> values;   // regression, one per row

  std::string Encode() const;  // sealed
  static Status Decode(const std::string& payload, FleetPredictReplyMsg* out);
};

/// Publishes `model_bytes` (ForestModel::Serialize payload) as the
/// next version of `model` on the receiving replica. `op_id` makes the
/// push idempotent: a replica that already applied it replays its
/// recorded reply instead of bumping the version again, so the
/// router's retransmits under chaos cannot skew version numbers.
struct FleetPushMsg {
  uint64_t op_id = 0;
  std::string model;
  std::string model_bytes;

  std::string Encode() const;  // sealed
  static Status Decode(const std::string& payload, FleetPushMsg* out);
};

struct FleetRollbackMsg {
  uint64_t op_id = 0;
  std::string model;

  std::string Encode() const;  // sealed
  static Status Decode(const std::string& payload, FleetRollbackMsg* out);
};

/// Reply to kPush / kRollback.
struct FleetAdminReplyMsg {
  uint64_t op_id = 0;
  int32_t replica = -1;
  uint8_t status_code = 0;  // StatusCode
  std::string error;
  uint32_t version = 0;  // version now current after the op

  std::string Encode() const;  // sealed
  static Status Decode(const std::string& payload, FleetAdminReplyMsg* out);
};

struct FleetHealthPingMsg {
  uint64_t nonce = 0;

  std::string Encode() const;  // sealed
  static Status Decode(const std::string& payload, FleetHealthPingMsg* out);
};

/// Replica liveness + load report; also feeds the router's /statusz
/// per-replica model-version table (and through it treeserver_top's
/// fleet view).
struct FleetHealthPongMsg {
  struct ModelVersion {
    std::string name;
    uint32_t version = 0;
    uint32_t num_versions = 0;
  };

  uint64_t nonce = 0;
  int32_t replica = -1;
  uint64_t queue_depth = 0;
  uint64_t requests = 0;
  uint64_t batches = 0;
  uint64_t rejected = 0;
  std::vector<ModelVersion> models;

  std::string Encode() const;  // sealed
  static Status Decode(const std::string& payload, FleetHealthPongMsg* out);
};

}  // namespace treeserver

#endif  // TREESERVER_FLEET_WIRE_H_
