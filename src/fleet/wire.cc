#include "fleet/wire.h"

#include <algorithm>
#include <utility>

#include "rpc/crc32c.h"

namespace treeserver {

namespace {

// Hostile-input bounds: a corrupt or adversarial payload may claim any
// length; cap structure sizes before allocating.
constexpr uint64_t kMaxWireRows = 1u << 20;
constexpr uint64_t kMaxWireColumns = 1u << 16;
constexpr uint64_t kMaxWireModels = 1u << 12;
constexpr uint64_t kMaxWireName = 1u << 12;

Status ReadBoundedString(BinaryReader* r, uint64_t max, std::string* out) {
  TS_RETURN_IF_ERROR(r->ReadString(out));
  if (out->size() > max) {
    return Status::Corruption("fleet wire: string over bound");
  }
  return Status::OK();
}

}  // namespace

std::string SealFleetPayload(std::string body) {
  const uint32_t crc = Crc32c(body.data(), body.size());
  std::string out;
  out.reserve(body.size() + sizeof(crc));
  out.append(reinterpret_cast<const char*>(&crc), sizeof(crc));
  out.append(body);
  return out;
}

Status OpenFleetPayload(const std::string& payload, std::string* body) {
  if (payload.size() < sizeof(uint32_t)) {
    return Status::Corruption("fleet payload shorter than its CRC");
  }
  uint32_t expect = 0;
  std::memcpy(&expect, payload.data(), sizeof(expect));
  const char* data = payload.data() + sizeof(expect);
  const size_t len = payload.size() - sizeof(expect);
  if (Crc32c(data, len) != expect) {
    return Status::Corruption("fleet payload CRC mismatch");
  }
  body->assign(data, len);
  return Status::OK();
}

FleetPredictMsg FleetPredictMsg::FromRows(uint64_t request_id,
                                          const std::string& model,
                                          const DataTable& table,
                                          const uint32_t* rows, size_t n) {
  FleetPredictMsg msg;
  msg.request_id = request_id;
  msg.model = model;
  msg.target_index = table.schema().target_index();
  msg.task_kind = static_cast<uint8_t>(table.schema().task_kind());
  msg.num_rows = static_cast<uint32_t>(n);
  msg.columns.resize(static_cast<size_t>(table.num_columns()));
  for (int c = 0; c < table.num_columns(); ++c) {
    const Column& col = *table.column(c);
    WireColumn& wc = msg.columns[static_cast<size_t>(c)];
    wc.type = static_cast<uint8_t>(col.type());
    wc.cardinality = col.cardinality();
    if (col.type() == DataType::kNumeric) {
      wc.num.reserve(n);
      for (size_t i = 0; i < n; ++i) wc.num.push_back(col.numeric_at(rows[i]));
    } else {
      wc.cat.reserve(n);
      for (size_t i = 0; i < n; ++i) wc.cat.push_back(col.category_at(rows[i]));
    }
  }
  return msg;
}

Result<std::shared_ptr<const DataTable>> FleetPredictMsg::ToTable() const {
  if (columns.empty() || target_index < 0 ||
      target_index >= static_cast<int32_t>(columns.size())) {
    return Status::InvalidArgument("fleet predict batch has a bad shape");
  }
  std::vector<ColumnMeta> metas(columns.size());
  std::vector<ColumnPtr> cols(columns.size());
  for (size_t c = 0; c < columns.size(); ++c) {
    const WireColumn& wc = columns[c];
    const std::string name = "c" + std::to_string(c);
    metas[c].name = name;
    if (wc.type == static_cast<uint8_t>(DataType::kNumeric)) {
      if (wc.num.size() != num_rows) {
        return Status::InvalidArgument("fleet predict column length mismatch");
      }
      metas[c].type = DataType::kNumeric;
      cols[c] = Column::Numeric(name, wc.num);
    } else {
      if (wc.cat.size() != num_rows) {
        return Status::InvalidArgument("fleet predict column length mismatch");
      }
      // The source cardinality crosses the wire; defend against a code
      // outside it anyway (a replica must never index past a PMF).
      int32_t cardinality = std::max<int32_t>(wc.cardinality, 1);
      for (int32_t code : wc.cat) {
        if (code >= cardinality) cardinality = code + 1;
      }
      metas[c].type = DataType::kCategorical;
      metas[c].cardinality = cardinality;
      cols[c] = Column::Categorical(name, wc.cat, cardinality);
    }
  }
  Schema schema(std::move(metas), target_index,
                static_cast<TaskKind>(task_kind));
  return std::make_shared<const DataTable>(std::move(schema), std::move(cols));
}

std::string FleetPredictMsg::Encode() const {
  BinaryWriter w;
  w.Write(request_id);
  w.WriteString(model);
  w.Write(target_index);
  w.Write(task_kind);
  w.Write(num_rows);
  w.Write<uint32_t>(static_cast<uint32_t>(columns.size()));
  for (const WireColumn& wc : columns) {
    w.Write(wc.type);
    w.Write(wc.cardinality);
    if (wc.type == static_cast<uint8_t>(DataType::kNumeric)) {
      w.WriteVector(wc.num);
    } else {
      w.WriteVector(wc.cat);
    }
  }
  return SealFleetPayload(w.Release());
}

Status FleetPredictMsg::Decode(const std::string& payload,
                               FleetPredictMsg* out) {
  std::string body;
  TS_RETURN_IF_ERROR(OpenFleetPayload(payload, &body));
  BinaryReader r(body);
  TS_RETURN_IF_ERROR(r.Read(&out->request_id));
  TS_RETURN_IF_ERROR(ReadBoundedString(&r, kMaxWireName, &out->model));
  TS_RETURN_IF_ERROR(r.Read(&out->target_index));
  TS_RETURN_IF_ERROR(r.Read(&out->task_kind));
  TS_RETURN_IF_ERROR(r.Read(&out->num_rows));
  uint32_t num_columns = 0;
  TS_RETURN_IF_ERROR(r.Read(&num_columns));
  if (out->num_rows > kMaxWireRows || num_columns > kMaxWireColumns) {
    return Status::Corruption("fleet predict batch over bounds");
  }
  out->columns.assign(num_columns, WireColumn());
  for (WireColumn& wc : out->columns) {
    TS_RETURN_IF_ERROR(r.Read(&wc.type));
    TS_RETURN_IF_ERROR(r.Read(&wc.cardinality));
    if (wc.type == static_cast<uint8_t>(DataType::kNumeric)) {
      TS_RETURN_IF_ERROR(r.ReadVector(&wc.num));
    } else if (wc.type == static_cast<uint8_t>(DataType::kCategorical)) {
      TS_RETURN_IF_ERROR(r.ReadVector(&wc.cat));
    } else {
      return Status::Corruption("fleet predict: unknown column type");
    }
  }
  if (!r.AtEnd()) return Status::Corruption("fleet predict: trailing bytes");
  return Status::OK();
}

std::string FleetPredictReplyMsg::Encode() const {
  BinaryWriter w;
  w.Write(request_id);
  w.Write(replica);
  w.Write(status_code);
  w.WriteString(error);
  w.Write(version);
  w.WriteVector(labels);
  w.WriteVector(values);
  return SealFleetPayload(w.Release());
}

Status FleetPredictReplyMsg::Decode(const std::string& payload,
                                    FleetPredictReplyMsg* out) {
  std::string body;
  TS_RETURN_IF_ERROR(OpenFleetPayload(payload, &body));
  BinaryReader r(body);
  TS_RETURN_IF_ERROR(r.Read(&out->request_id));
  TS_RETURN_IF_ERROR(r.Read(&out->replica));
  TS_RETURN_IF_ERROR(r.Read(&out->status_code));
  TS_RETURN_IF_ERROR(ReadBoundedString(&r, kMaxWireName, &out->error));
  TS_RETURN_IF_ERROR(r.Read(&out->version));
  TS_RETURN_IF_ERROR(r.ReadVector(&out->labels));
  TS_RETURN_IF_ERROR(r.ReadVector(&out->values));
  if (out->labels.size() > kMaxWireRows || out->values.size() > kMaxWireRows) {
    return Status::Corruption("fleet predict reply over bounds");
  }
  if (!r.AtEnd()) {
    return Status::Corruption("fleet predict reply: trailing bytes");
  }
  return Status::OK();
}

std::string FleetPushMsg::Encode() const {
  BinaryWriter w;
  w.Write(op_id);
  w.WriteString(model);
  w.WriteString(model_bytes);
  return SealFleetPayload(w.Release());
}

Status FleetPushMsg::Decode(const std::string& payload, FleetPushMsg* out) {
  std::string body;
  TS_RETURN_IF_ERROR(OpenFleetPayload(payload, &body));
  BinaryReader r(body);
  TS_RETURN_IF_ERROR(r.Read(&out->op_id));
  TS_RETURN_IF_ERROR(ReadBoundedString(&r, kMaxWireName, &out->model));
  TS_RETURN_IF_ERROR(r.ReadString(&out->model_bytes));
  if (!r.AtEnd()) return Status::Corruption("fleet push: trailing bytes");
  return Status::OK();
}

std::string FleetRollbackMsg::Encode() const {
  BinaryWriter w;
  w.Write(op_id);
  w.WriteString(model);
  return SealFleetPayload(w.Release());
}

Status FleetRollbackMsg::Decode(const std::string& payload,
                                FleetRollbackMsg* out) {
  std::string body;
  TS_RETURN_IF_ERROR(OpenFleetPayload(payload, &body));
  BinaryReader r(body);
  TS_RETURN_IF_ERROR(r.Read(&out->op_id));
  TS_RETURN_IF_ERROR(ReadBoundedString(&r, kMaxWireName, &out->model));
  if (!r.AtEnd()) return Status::Corruption("fleet rollback: trailing bytes");
  return Status::OK();
}

std::string FleetAdminReplyMsg::Encode() const {
  BinaryWriter w;
  w.Write(op_id);
  w.Write(replica);
  w.Write(status_code);
  w.WriteString(error);
  w.Write(version);
  return SealFleetPayload(w.Release());
}

Status FleetAdminReplyMsg::Decode(const std::string& payload,
                                  FleetAdminReplyMsg* out) {
  std::string body;
  TS_RETURN_IF_ERROR(OpenFleetPayload(payload, &body));
  BinaryReader r(body);
  TS_RETURN_IF_ERROR(r.Read(&out->op_id));
  TS_RETURN_IF_ERROR(r.Read(&out->replica));
  TS_RETURN_IF_ERROR(r.Read(&out->status_code));
  TS_RETURN_IF_ERROR(ReadBoundedString(&r, kMaxWireName, &out->error));
  TS_RETURN_IF_ERROR(r.Read(&out->version));
  if (!r.AtEnd()) return Status::Corruption("fleet admin reply: trailing bytes");
  return Status::OK();
}

std::string FleetHealthPingMsg::Encode() const {
  BinaryWriter w;
  w.Write(nonce);
  return SealFleetPayload(w.Release());
}

Status FleetHealthPingMsg::Decode(const std::string& payload,
                                  FleetHealthPingMsg* out) {
  std::string body;
  TS_RETURN_IF_ERROR(OpenFleetPayload(payload, &body));
  BinaryReader r(body);
  TS_RETURN_IF_ERROR(r.Read(&out->nonce));
  if (!r.AtEnd()) return Status::Corruption("fleet ping: trailing bytes");
  return Status::OK();
}

std::string FleetHealthPongMsg::Encode() const {
  BinaryWriter w;
  w.Write(nonce);
  w.Write(replica);
  w.Write(queue_depth);
  w.Write(requests);
  w.Write(batches);
  w.Write(rejected);
  w.Write<uint32_t>(static_cast<uint32_t>(models.size()));
  for (const ModelVersion& m : models) {
    w.WriteString(m.name);
    w.Write(m.version);
    w.Write(m.num_versions);
  }
  return SealFleetPayload(w.Release());
}

Status FleetHealthPongMsg::Decode(const std::string& payload,
                                  FleetHealthPongMsg* out) {
  std::string body;
  TS_RETURN_IF_ERROR(OpenFleetPayload(payload, &body));
  BinaryReader r(body);
  TS_RETURN_IF_ERROR(r.Read(&out->nonce));
  TS_RETURN_IF_ERROR(r.Read(&out->replica));
  TS_RETURN_IF_ERROR(r.Read(&out->queue_depth));
  TS_RETURN_IF_ERROR(r.Read(&out->requests));
  TS_RETURN_IF_ERROR(r.Read(&out->batches));
  TS_RETURN_IF_ERROR(r.Read(&out->rejected));
  uint32_t num_models = 0;
  TS_RETURN_IF_ERROR(r.Read(&num_models));
  if (num_models > kMaxWireModels) {
    return Status::Corruption("fleet pong: model table over bounds");
  }
  out->models.assign(num_models, ModelVersion());
  for (ModelVersion& m : out->models) {
    TS_RETURN_IF_ERROR(ReadBoundedString(&r, kMaxWireName, &m.name));
    TS_RETURN_IF_ERROR(r.Read(&m.version));
    TS_RETURN_IF_ERROR(r.Read(&m.num_versions));
  }
  if (!r.AtEnd()) return Status::Corruption("fleet pong: trailing bytes");
  return Status::OK();
}

}  // namespace treeserver
