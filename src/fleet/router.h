#ifndef TREESERVER_FLEET_ROUTER_H_
#define TREESERVER_FLEET_ROUTER_H_

#include <condition_variable>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/http_server.h"
#include "common/metrics_registry.h"
#include "common/trace_merge.h"
#include "fleet/wire.h"
#include "rpc/transport.h"
#include "table/data_table.h"

namespace treeserver {

struct FleetRouterConfig {
  /// Admission bound: Predict sheds (fleet.shed) once this many
  /// accepted requests are outstanding.
  size_t max_inflight = 1024;
  /// Deadline applied to requests that don't carry their own; an
  /// accepted request still unanswered past it resolves Unavailable
  /// and counts as shed (deadline-aware rejection, never a silent drop).
  int default_deadline_ms = 5000;
  /// Unanswered predicts are re-dispatched (rotating replicas) at this
  /// period; with CRC-sealed payloads this is what makes the fleet ride
  /// out chaos drops/corruption.
  int retry_period_ms = 250;
  /// Router-level health pings. A replica missing `health_miss_limit`
  /// consecutive rounds leaves rotation; any pong puts it back.
  int health_period_ms = 100;
  int health_miss_limit = 5;
  /// Push/rollback fan-outs give up after this long (partial results
  /// reported per replica).
  int admin_timeout_ms = 10000;
  /// Sticky dispatch tolerance: the consistent-hash pick is used while
  /// its outstanding count is within `sticky_slack` of the least
  /// loaded replica's; beyond that, least-loaded wins.
  int sticky_slack = 8;
  /// Virtual nodes per replica on the hash ring.
  int vnodes = 16;
  /// Fraction of a canaried model's traffic routed to the canary
  /// replica (deterministic on request id).
  double canary_fraction = 0.10;
  /// Auto-decision budgets: roll back when the canary arm's error rate
  /// exceeds baseline + `canary_max_error_excess`, or its p99 exceeds
  /// baseline p99 * `canary_max_p99_ratio`; promote once both arms
  /// have `canary_min_requests` and the budgets hold.
  double canary_max_p99_ratio = 2.0;
  double canary_max_error_excess = 0.02;
  uint64_t canary_min_requests = 50;
  /// Evaluate canaries from the timer thread and promote/roll back
  /// automatically. Off by default: tests and the CLI drive decisions
  /// explicitly.
  bool canary_auto = false;
  /// Destination for fleet.* metrics; nullptr uses Global().
  MetricsRegistry* metrics = nullptr;
  /// Router introspection HTTP port (-1 disables, 0 ephemeral).
  int http_port = -1;
  std::string http_host = "127.0.0.1";
  /// Per-replica trace clock offset (remote - local, ns) for merged
  /// traces; wire to TcpTransport::PeerClockOffset on real clusters.
  /// nullptr = all zero (in-process).
  std::function<int64_t(int)> clock_offset_ns;
};

/// Result of one routed predict batch.
struct FleetBatchResult {
  int32_t replica = -1;
  uint32_t version = 0;
  std::vector<int32_t> labels;  // classification, one per row
  std::vector<double> values;   // regression, one per row
};

enum class CanaryDecision { kKeepRunning, kPromote, kRollback };

/// One canary arm's observed stats, as fed to the decision function.
struct CanaryArmView {
  uint64_t count = 0;
  uint64_t errors = 0;
  uint64_t p99_us = 0;
};

struct CanaryBudgets {
  uint64_t min_requests = 50;
  double max_error_excess = 0.02;
  double max_p99_ratio = 2.0;
};

/// Pure canary policy: promote/rollback/keep from the two arms' stats.
/// Error-budget breaches roll back even before `min_requests`; promote
/// requires both arms past it with both budgets holding.
CanaryDecision EvaluateCanaryDecision(const CanaryArmView& canary,
                                      const CanaryArmView& baseline,
                                      const CanaryBudgets& budgets);

struct FleetReplicaStatus {
  int rank = 0;
  bool alive = true;
  bool in_rotation = true;
  int misses = 0;
  uint64_t outstanding = 0;
  uint64_t queue_depth = 0;
  uint64_t requests = 0;
  uint64_t batches = 0;
  uint64_t rejected = 0;
  std::vector<FleetHealthPongMsg::ModelVersion> models;
};

struct FleetCanaryStatus {
  std::string model;
  int replica = -1;
  uint32_t version = 0;
  CanaryArmView canary;
  CanaryArmView baseline;
};

struct FleetStatus {
  uint64_t accepted = 0;
  uint64_t shed = 0;
  uint64_t retransmits = 0;
  uint64_t failovers = 0;
  std::vector<FleetReplicaStatus> replicas;
  std::vector<FleetCanaryStatus> canaries;
};

/// The fleet front door: admission control, consistent-hash/least-
/// loaded dispatch over the Transport's replicas, health-based
/// rotation, retransmit-based reliability, and canary rollout.
///
/// The router is the transport's master rank. Two internal threads
/// run: a reply thread draining master_queue() and a timer thread
/// (health pings, deadline shedding, retransmits, admin retries,
/// optional canary auto-decisions). All Sends happen outside the state
/// mutex so TCP backpressure can never wedge the state machine.
class FleetRouter {
 public:
  FleetRouter(Transport* transport, FleetRouterConfig config);
  ~FleetRouter();

  FleetRouter(const FleetRouter&) = delete;
  FleetRouter& operator=(const FleetRouter&) = delete;

  void Start();
  /// Stops the threads and fails every still-pending request/op.
  /// Idempotent. Does not touch the replicas (see ShutdownReplicas).
  void Stop();

  /// Routes `rows` of `table` as one batch against `model`.
  /// Resolves with the replica's predictions, or Unavailable when shed
  /// (admission bound, no replica in rotation, or deadline exceeded).
  /// `deadline_ms` <= 0 uses the config default.
  std::future<Result<FleetBatchResult>> PredictRows(
      const std::string& model, const DataTable& table, const uint32_t* rows,
      size_t n, int deadline_ms = 0);
  std::future<Result<FleetBatchResult>> Predict(const std::string& model,
                                                const DataTable& table,
                                                uint32_t row,
                                                int deadline_ms = 0);

  /// Pushes serialized forest bytes as the next version of `model` on
  /// every live replica (idempotent per-replica via op ids; retried
  /// under chaos until admin_timeout_ms).
  Status Push(const std::string& model, const std::string& model_bytes);
  /// Pushes to a single replica (-1 = router's choice) and starts a
  /// canary: `canary_fraction` of the model's traffic routes there,
  /// the rest explicitly avoids it. Returns the canary replica.
  Result<int> PushCanary(const std::string& model,
                         const std::string& model_bytes, int replica = -1);
  /// Pushes the canaried bytes to every other live replica and ends
  /// the canary.
  Status Promote(const std::string& model);
  /// With an active canary: rolls back the canary replica only (ending
  /// the canary). Otherwise rolls back every live replica one version.
  Status Rollback(const std::string& model);

  /// Permanently removes a replica (process death): out of rotation,
  /// its in-flight work re-dispatched, an active canary on it ended.
  /// Wire to TcpTransport::SetPeerDeadCallback.
  void MarkReplicaDead(int replica);

  /// Sends kShutdown to every live replica.
  void ShutdownReplicas();

  FleetStatus GetStatus();
  std::string StatusJson();

  /// Requests every live replica's tracer snapshot and merges them
  /// (plus the router's own lane) into one Chrome trace JSON document.
  /// Lanes of dead replicas are simply absent.
  Result<std::string> CollectMergedTrace(int timeout_ms = 5000);

  /// Router introspection port, 0 when HTTP is disabled. Endpoints:
  /// /metrics /healthz /statusz /fleet/push /fleet/promote
  /// /fleet/rollback.
  uint16_t http_port() const;

 private:
  struct ReplicaState {
    bool alive = true;
    bool in_rotation = true;
    int misses = 0;
    uint64_t last_pong_ns = 0;
    uint64_t outstanding = 0;
    FleetHealthPongMsg last_pong;
  };

  /// Dispatch arm of an in-flight request (canary accounting).
  enum class Arm : uint8_t { kNone = 0, kBaseline = 1, kCanary = 2 };

  struct Inflight {
    std::string model;
    std::string payload;  // encoded FleetPredictMsg, kept for resends
    std::promise<Result<FleetBatchResult>> promise;
    uint64_t enqueue_ns = 0;
    uint64_t deadline_ns = 0;
    uint64_t last_send_ns = 0;
    int replica = -1;
    Arm arm = Arm::kNone;
    uint32_t num_rows = 0;
    bool classification = true;
  };

  struct AdminOp {
    uint32_t send_type = 0;
    std::string payload;  // resent to unanswered replicas
    std::set<int> remaining;
    std::map<int, FleetAdminReplyMsg> replies;
    std::promise<std::map<int, FleetAdminReplyMsg>> promise;
    uint64_t deadline_ns = 0;
    uint64_t last_send_ns = 0;
  };

  struct ArmStats {
    uint64_t count = 0;
    uint64_t errors = 0;
    Histogram latency_us;
    CanaryArmView View() const {
      return {count, errors, latency_us.snapshot().Percentile(0.99)};
    }
    void Reset() {
      count = 0;
      errors = 0;
      latency_us.Reset();
    }
  };

  struct CanaryState {
    bool active = false;
    int replica = -1;
    uint32_t version = 0;
    std::string model_bytes;  // promoted to the rest on Promote()
    ArmStats canary;
    ArmStats baseline;
    bool deciding = false;  // auto decision already launched
  };

  struct Send {
    ChannelKind channel = ChannelKind::kTask;
    int dst = 0;
    uint32_t type = 0;
    std::string payload;
  };

  void ReplyLoop();
  void TimerLoop();
  void TimerTick(std::vector<Send>* sends,
                 std::vector<std::pair<std::promise<Result<FleetBatchResult>>,
                                       Status>>* failed);

  void HandlePredictReply(const Message& msg, std::vector<Send>* sends);
  void HandleAdminReply(const Message& msg);
  void HandleHealthPong(const Message& msg);
  void HandleTraceReply(const Message& msg);

  /// Picks a replica for `model`: canary arm by deterministic hash
  /// when active, else consistent-hash sticky with least-loaded
  /// fallback. `exclude` skips a replica (retry rotation); returns -1
  /// when nothing is in rotation. Caller holds mu_.
  int ChooseReplicaLocked(const std::string& model, uint64_t request_id,
                          int exclude, Arm* arm);
  int LeastLoadedLocked(int exclude_a, int exclude_b) const;
  bool EligibleLocked(int replica, int exclude_a, int exclude_b) const;
  void DecOutstandingLocked(int replica);
  void RecordArmLocked(const std::string& model, Arm arm, bool error,
                       uint64_t latency_us);

  /// Runs one admin fan-out to `targets` and waits for the replies.
  /// `op_id` must be the id sealed inside `payload` (replies correlate
  /// by it).
  Result<std::map<int, FleetAdminReplyMsg>> RunAdminOp(
      uint64_t op_id, uint32_t send_type, std::string payload,
      const std::set<int>& targets);
  static Status AggregateAdmin(const std::map<int, FleetAdminReplyMsg>& replies,
                               const std::set<int>& targets);

  void DoSends(std::vector<Send> sends);
  void StartHttp();

  Transport* const transport_;
  const FleetRouterConfig config_;
  MetricsRegistry& metrics_;

  Counter* const accepted_;      // fleet.accepted
  Counter* const shed_;          // fleet.shed
  Counter* const retransmits_;   // fleet.retransmits
  Counter* const failovers_;     // fleet.failovers
  Counter* const corrupt_;       // fleet.router.corrupt
  Counter* const promotions_;    // fleet.canary.promotions
  Counter* const rollbacks_;     // fleet.canary.rollbacks
  Histogram* const latency_us_;  // fleet.latency_us

  mutable std::mutex mu_;
  std::vector<ReplicaState> replicas_;
  std::map<uint64_t, Inflight> inflight_;
  std::map<uint64_t, std::shared_ptr<AdminOp>> admin_;
  std::map<std::string, CanaryState> canaries_;
  std::vector<std::pair<uint64_t, int>> ring_;  // (hash point, replica)
  uint64_t next_id_ = 1;
  uint64_t last_health_sent_ns_ = 0;
  bool started_ = false;
  bool stopping_ = false;

  /// Trace collection state (one outstanding collection at a time).
  std::condition_variable trace_cv_;
  std::set<int> trace_expect_;
  std::vector<RankTrace> trace_snaps_;
  bool trace_active_ = false;

  std::condition_variable timer_cv_;
  std::thread reply_thread_;
  std::thread timer_thread_;
  std::vector<std::thread> canary_ops_;
  std::unique_ptr<HttpServer> http_;
};

}  // namespace treeserver

#endif  // TREESERVER_FLEET_ROUTER_H_
