#ifndef TREESERVER_FLEET_REPLICA_H_
#define TREESERVER_FLEET_REPLICA_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics_registry.h"
#include "fleet/wire.h"
#include "rpc/transport.h"
#include "serve/registry.h"
#include "serve/server.h"

namespace treeserver {

struct FleetReplicaConfig {
  /// This replica's rank on the fleet transport (0..N-1; the router is
  /// the master).
  int rank = 0;
  /// Threads draining this replica's task mailbox. More than one keeps
  /// health pings responsive while a large predict batch is waiting on
  /// the inference server.
  int handler_threads = 2;
  /// Inner micro-batching server (its http_port opens the replica's
  /// own /metrics + /statusz when >= 0).
  InferenceServerConfig serve;
  /// Node layout pushed models are compiled into (soa or packed;
  /// quantized is bulk-scoring only and rejected by the registry).
  NodeLayout node_layout = NodeLayout::kSoa;
  /// Destination for fleet.replica.* counters; nullptr uses
  /// MetricsRegistry::Global().
  MetricsRegistry* metrics = nullptr;
};

/// One fleet serving process: a ModelRegistry + InferenceServer behind
/// the fleet wire protocol. Handler threads drain the replica's task
/// mailbox and answer predicts, model pushes/rollbacks, health pings
/// and trace requests; a CRC-failed payload (chaos corruption) is
/// counted and dropped — the router's retransmit timer covers it.
///
/// Admin ops are idempotent: the reply to each applied op_id is
/// recorded and replayed verbatim on retransmit, so a duplicated push
/// can never bump the version twice.
class FleetReplica {
 public:
  FleetReplica(Transport* transport, FleetReplicaConfig config);
  ~FleetReplica();

  FleetReplica(const FleetReplica&) = delete;
  FleetReplica& operator=(const FleetReplica&) = delete;

  /// Starts the inference server and the handler threads.
  void Start();
  /// Stops handlers (closing this rank's task mailbox) and the inner
  /// server. Idempotent; also run by the destructor.
  void Stop();
  /// Blocks until the handler threads exit (kShutdown from the router
  /// or a closed mailbox).
  void Wait();

  ModelRegistry* registry() { return &registry_; }
  InferenceServer* server() { return server_.get(); }

 private:
  void HandlerLoop();
  /// Returns false on kShutdown.
  bool Handle(const Message& msg);
  void HandlePredict(const Message& msg);
  void HandlePush(const Message& msg);
  void HandleRollback(const Message& msg);
  void HandleHealthPing(const Message& msg);
  void HandleTraceRequest();

  void SendToRouter(ChannelKind channel, uint32_t type, std::string payload);

  Transport* const transport_;
  const FleetReplicaConfig config_;
  MetricsRegistry& metrics_;

  Counter* const predicts_;       // fleet.replica.predicts
  Counter* const corrupt_;        // fleet.replica.corrupt
  Counter* const dup_admin_;      // fleet.replica.dup_admin

  ModelRegistry registry_;
  std::unique_ptr<InferenceServer> server_;

  /// op_id -> recorded admin reply payload (replayed on retransmit).
  std::mutex admin_mu_;
  std::map<uint64_t, std::pair<uint32_t, std::string>> admin_replies_;

  std::mutex lifecycle_mu_;
  bool started_ = false;
  bool stopped_ = false;
  std::vector<std::thread> handlers_;
};

}  // namespace treeserver

#endif  // TREESERVER_FLEET_REPLICA_H_
