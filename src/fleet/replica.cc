#include "fleet/replica.h"

#include <algorithm>
#include <future>
#include <optional>
#include <utility>

#include "common/logging.h"
#include "common/trace.h"
#include "engine/messages.h"

namespace treeserver {

FleetReplica::FleetReplica(Transport* transport, FleetReplicaConfig config)
    : transport_(transport),
      config_(config),
      metrics_(config.metrics != nullptr ? *config.metrics
                                         : MetricsRegistry::Global()),
      predicts_(metrics_.GetCounter("fleet.replica.predicts")),
      corrupt_(metrics_.GetCounter("fleet.replica.corrupt")),
      dup_admin_(metrics_.GetCounter("fleet.replica.dup_admin")) {
  InferenceServerConfig serve = config_.serve;
  if (serve.metrics == nullptr) serve.metrics = &metrics_;
  TS_CHECK(registry_.SetDefaultLayout(config_.node_layout).ok())
      << "fleet replica: invalid node layout";
  server_ = std::make_unique<InferenceServer>(&registry_, serve);
}

FleetReplica::~FleetReplica() { Stop(); }

void FleetReplica::Start() {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (started_ || stopped_) return;
  started_ = true;
  server_->Start();
  const int handlers = std::max(1, config_.handler_threads);
  handlers_.reserve(handlers);
  for (int i = 0; i < handlers; ++i) {
    handlers_.emplace_back(&FleetReplica::HandlerLoop, this);
  }
}

void FleetReplica::Stop() {
  {
    std::lock_guard<std::mutex> lock(lifecycle_mu_);
    if (stopped_) return;
    stopped_ = true;
  }
  // Closing the mailbox unblocks every handler's Pop.
  transport_->task_queue(config_.rank).Close();
  Wait();
  server_->Stop();
}

void FleetReplica::Wait() {
  for (auto& t : handlers_) {
    if (t.joinable()) t.join();
  }
}

void FleetReplica::HandlerLoop() {
  BlockingQueue<Message>& queue = transport_->task_queue(config_.rank);
  while (true) {
    std::optional<Message> msg = queue.Pop();
    if (!msg.has_value()) return;
    if (!Handle(*msg)) {
      // kShutdown: close the mailbox so sibling handlers exit too.
      queue.Close();
      return;
    }
  }
}

bool FleetReplica::Handle(const Message& msg) {
  switch (static_cast<FleetMsg>(msg.type)) {
    case FleetMsg::kPredict:
      HandlePredict(msg);
      return true;
    case FleetMsg::kPush:
      HandlePush(msg);
      return true;
    case FleetMsg::kRollback:
      HandleRollback(msg);
      return true;
    case FleetMsg::kHealthPing:
      HandleHealthPing(msg);
      return true;
    case FleetMsg::kTraceRequest:
      HandleTraceRequest();
      return true;
    case FleetMsg::kShutdown:
      return false;
    default:
      TS_LOG(kWarn) << "fleet replica " << config_.rank
                       << ": unknown message type " << msg.type;
      return true;
  }
}

void FleetReplica::SendToRouter(ChannelKind channel, uint32_t type,
                                std::string payload) {
  Message out;
  out.src = config_.rank;
  out.dst = kMasterRank;
  out.type = type;
  out.payload = std::move(payload);
  transport_->Send(channel, std::move(out));
}

void FleetReplica::HandlePredict(const Message& msg) {
  FleetPredictMsg req;
  if (Status st = FleetPredictMsg::Decode(msg.payload, &req); !st.ok()) {
    corrupt_->Inc();
    return;  // the router retransmits
  }
  predicts_->Inc();

  FleetPredictReplyMsg reply;
  reply.request_id = req.request_id;
  reply.replica = config_.rank;

  Result<std::shared_ptr<const DataTable>> table = req.ToTable();
  if (!table.ok()) {
    reply.status_code = static_cast<uint8_t>(table.status().code());
    reply.error = table.status().message();
    SendToRouter(ChannelKind::kTask,
                 static_cast<uint32_t>(FleetMsg::kPredictReply),
                 reply.Encode());
    return;
  }

  std::vector<std::future<Result<Prediction>>> futures;
  futures.reserve(req.num_rows);
  for (uint32_t row = 0; row < req.num_rows; ++row) {
    PredictRequest p;
    p.model = req.model;
    p.table = *table;
    p.row = row;
    futures.push_back(server_->Predict(std::move(p)));
  }

  const bool classification =
      static_cast<TaskKind>(req.task_kind) == TaskKind::kClassification;
  for (auto& f : futures) {
    Result<Prediction> pred = f.get();
    if (!pred.ok()) {
      // All-or-nothing: the router retries retryable codes elsewhere.
      reply.status_code = static_cast<uint8_t>(pred.status().code());
      reply.error = pred.status().message();
      reply.labels.clear();
      reply.values.clear();
      break;
    }
    reply.version = pred->model_version;
    if (classification) {
      reply.labels.push_back(pred->label);
    } else {
      reply.values.push_back(pred->value);
    }
  }
  SendToRouter(ChannelKind::kTask,
               static_cast<uint32_t>(FleetMsg::kPredictReply), reply.Encode());
}

void FleetReplica::HandlePush(const Message& msg) {
  FleetPushMsg req;
  if (Status st = FleetPushMsg::Decode(msg.payload, &req); !st.ok()) {
    corrupt_->Inc();
    return;
  }

  {
    std::lock_guard<std::mutex> lock(admin_mu_);
    auto it = admin_replies_.find(req.op_id);
    if (it != admin_replies_.end()) {
      // Retransmitted op: replay the recorded reply, don't re-apply.
      dup_admin_->Inc();
      SendToRouter(ChannelKind::kTask, it->second.first,
                   it->second.second);
      return;
    }
  }

  FleetAdminReplyMsg reply;
  reply.op_id = req.op_id;
  reply.replica = config_.rank;

  ForestModel model;
  BinaryReader r(req.model_bytes);
  Status st = ForestModel::Deserialize(&r, &model);
  if (st.ok()) {
    Result<uint32_t> version = registry_.Publish(req.model, std::move(model));
    if (version.ok()) {
      reply.version = *version;
    } else {
      st = version.status();
    }
  }
  if (!st.ok()) {
    reply.status_code = static_cast<uint8_t>(st.code());
    reply.error = st.message();
  }

  const std::string payload = reply.Encode();
  {
    std::lock_guard<std::mutex> lock(admin_mu_);
    admin_replies_[req.op_id] = {
        static_cast<uint32_t>(FleetMsg::kPushReply), payload};
  }
  SendToRouter(ChannelKind::kTask, static_cast<uint32_t>(FleetMsg::kPushReply),
               payload);
}

void FleetReplica::HandleRollback(const Message& msg) {
  FleetRollbackMsg req;
  if (Status st = FleetRollbackMsg::Decode(msg.payload, &req); !st.ok()) {
    corrupt_->Inc();
    return;
  }

  {
    std::lock_guard<std::mutex> lock(admin_mu_);
    auto it = admin_replies_.find(req.op_id);
    if (it != admin_replies_.end()) {
      dup_admin_->Inc();
      SendToRouter(ChannelKind::kTask, it->second.first, it->second.second);
      return;
    }
  }

  FleetAdminReplyMsg reply;
  reply.op_id = req.op_id;
  reply.replica = config_.rank;
  Result<uint32_t> version = registry_.Rollback(req.model);
  if (version.ok()) {
    reply.version = *version;
  } else {
    reply.status_code = static_cast<uint8_t>(version.status().code());
    reply.error = version.status().message();
  }

  const std::string payload = reply.Encode();
  {
    std::lock_guard<std::mutex> lock(admin_mu_);
    admin_replies_[req.op_id] = {
        static_cast<uint32_t>(FleetMsg::kRollbackReply), payload};
  }
  SendToRouter(ChannelKind::kTask,
               static_cast<uint32_t>(FleetMsg::kRollbackReply), payload);
}

void FleetReplica::HandleHealthPing(const Message& msg) {
  FleetHealthPingMsg ping;
  if (Status st = FleetHealthPingMsg::Decode(msg.payload, &ping); !st.ok()) {
    corrupt_->Inc();
    return;
  }
  FleetHealthPongMsg pong;
  pong.nonce = ping.nonce;
  pong.replica = config_.rank;
  const InferenceServer::Stats stats = server_->GetStats();
  pong.queue_depth = stats.queue_depth;
  pong.requests = stats.requests;
  pong.batches = stats.batches;
  pong.rejected = stats.rejected;
  for (const auto& m : registry_.StatusSnapshot()) {
    FleetHealthPongMsg::ModelVersion mv;
    mv.name = m.name;
    mv.version = m.version;
    mv.num_versions = static_cast<uint32_t>(m.num_versions);
    pong.models.push_back(std::move(mv));
  }
  SendToRouter(ChannelKind::kTask,
               static_cast<uint32_t>(FleetMsg::kHealthPong), pong.Encode());
}

void FleetReplica::HandleTraceRequest() {
  TraceSnapshotMsg snap;
  snap.worker = config_.rank;
  snap.dropped = Tracer::Global().dropped_spans();
  snap.events = Tracer::Global().SnapshotEvents();
  SendToRouter(ChannelKind::kTrace,
               static_cast<uint32_t>(FleetMsg::kTraceReply), snap.Encode());
}

}  // namespace treeserver
