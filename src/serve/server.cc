#include "serve/server.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/logging.h"
#include "common/prometheus.h"
#include "common/simd.h"
#include "common/trace.h"

namespace treeserver {

namespace {

uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

InferenceServer::InferenceServer(const ModelRegistry* registry,
                                 InferenceServerConfig config)
    : registry_(registry),
      config_(config),
      metrics_(config.metrics != nullptr ? *config.metrics
                                         : MetricsRegistry::Global()),
      requests_total_(metrics_.GetCounter("serve.requests")),
      requests_rejected_(metrics_.GetCounter("serve.rejected")),
      batches_flushed_(metrics_.GetCounter("serve.batches")),
      batch_rows_(metrics_.GetHistogram("serve.batch_rows")) {}

InferenceServer::~InferenceServer() { Stop(); }

void InferenceServer::Start() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (started_ || stopping_) return;
    started_ = true;
    scheduler_ = std::thread(&InferenceServer::SchedulerLoop, this);
    const int workers = std::max(1, config_.num_workers);
    workers_.reserve(workers);
    for (int i = 0; i < workers; ++i) {
      workers_.emplace_back(&InferenceServer::WorkerLoop, this);
    }
  }
  if (config_.http_port >= 0) {
    http_ = std::make_unique<HttpServer>();
    http_->Handle("/metrics", [this](const std::string&) {
      HttpResponse resp;
      resp.content_type = "text/plain; version=0.0.4; charset=utf-8";
      resp.body = PrometheusExport(metrics_.Snapshot());
      return resp;
    });
    http_->Handle("/healthz", [](const std::string&) {
      HttpResponse resp;
      resp.body = "ok\n";
      return resp;
    });
    http_->Handle("/statusz", [this](const std::string&) {
      HttpResponse resp;
      resp.content_type = "application/json";
      const Stats stats = GetStats();
      std::string body = "{\"role\":\"inference\"," + SimdStatusJson() +
                         ",\"queue_depth\":" +
                         std::to_string(stats.queue_depth) +
                         ",\"requests\":" + std::to_string(stats.requests) +
                         ",\"batches\":" + std::to_string(stats.batches) +
                         ",\"rejected\":" + std::to_string(stats.rejected) +
                         ",\"rss_bytes\":" + std::to_string(CurrentRssBytes()) +
                         ",\"models\":[";
      if (registry_ != nullptr) {
        bool first = true;
        for (const auto& m : registry_->StatusSnapshot()) {
          if (!first) body += ",";
          first = false;
          body += "{\"name\":\"" + m.name +
                  "\",\"version\":" + std::to_string(m.version) +
                  ",\"num_versions\":" + std::to_string(m.num_versions) +
                  ",\"kind\":\"" + ModelKindName(m.kind) +
                  "\",\"layout\":\"" + NodeLayoutName(m.layout) + "\"}";
        }
      }
      body += "]}\n";
      resp.body = std::move(body);
      return resp;
    });
    Status st = http_->Start(config_.http_host,
                             static_cast<uint16_t>(config_.http_port));
    if (!st.ok()) {
      TS_LOG(kError) << "inference http: " << st.ToString();
      http_.reset();
    }
  }
}

void InferenceServer::Stop() {
  if (http_ != nullptr) http_->Stop();
  std::vector<PendingRequest> orphaned;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    stopping_ = true;
    if (!started_) {
      // Never ran: fail whatever was admitted pre-Start.
      orphaned.reserve(queue_.size());
      while (!queue_.empty()) {
        orphaned.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
    }
  }
  cv_.notify_all();
  for (auto& p : orphaned) {
    p.promise.set_value(
        Status::FailedPrecondition("inference server stopped before start"));
  }
  if (scheduler_.joinable()) scheduler_.join();
  batches_.Close();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
}

std::future<Result<Prediction>> InferenceServer::Predict(
    PredictRequest request) {
  PendingRequest pending;
  pending.request = std::move(request);
  pending.enqueue_ns = NowNanos();
  std::future<Result<Prediction>> future = pending.promise.get_future();
  requests_total_->Inc();

  if (pending.request.table == nullptr ||
      pending.request.row >= pending.request.table->num_rows()) {
    pending.promise.set_value(Status::InvalidArgument(
        "predict request has no table or an out-of-range row"));
    return future;
  }

  bool rejected = false;
  bool stopped = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      stopped = true;
    } else if (queue_.size() >= config_.max_queue) {
      rejected = true;
    } else {
      queue_.push_back(std::move(pending));
    }
  }
  if (stopped) {
    pending.promise.set_value(
        Status::FailedPrecondition("inference server is stopped"));
    return future;
  }
  if (rejected) {
    requests_rejected_->Inc();
    pending.promise.set_value(Status::Unavailable(
        "inference queue full (" + std::to_string(config_.max_queue) +
        " pending); retry later"));
    return future;
  }
  cv_.notify_one();
  return future;
}

size_t InferenceServer::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

InferenceServer::Stats InferenceServer::GetStats() const {
  Stats stats;
  stats.queue_depth = queue_depth();
  stats.requests = requests_total_->value();
  stats.batches = batches_flushed_->value();
  stats.rejected = requests_rejected_->value();
  return stats;
}

uint16_t InferenceServer::http_port() const {
  return http_ != nullptr ? http_->port() : 0;
}

void InferenceServer::SchedulerLoop() {
  const auto deadline =
      std::chrono::microseconds(std::max(0, config_.batch_deadline_us));
  const size_t max_batch = static_cast<size_t>(std::max(1, config_.max_batch));

  // Per-model groups being accumulated, with the enqueue time of each
  // group's oldest request for the deadline check.
  std::map<std::string, std::vector<PendingRequest>> pending;
  std::map<std::string, uint64_t> oldest_ns;

  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    if (!pending.empty()) {
      cv_.wait_for(lock, deadline,
                   [&] { return !queue_.empty() || stopping_; });
    } else {
      cv_.wait(lock, [&] { return !queue_.empty() || stopping_; });
    }

    // Drain the intake queue into per-model groups, flushing any group
    // that reaches the batch size.
    while (!queue_.empty()) {
      PendingRequest req = std::move(queue_.front());
      queue_.pop_front();
      // Copied, not referenced: `req` is moved into the group below.
      const std::string name = req.request.model;
      std::vector<PendingRequest>& group = pending[name];
      if (group.empty()) oldest_ns[name] = req.enqueue_ns;
      group.push_back(std::move(req));
      if (group.size() >= max_batch) {
        std::vector<PendingRequest> batch = std::move(group);
        pending.erase(name);
        oldest_ns.erase(name);
        lock.unlock();
        FlushModel(name, std::move(batch));
        lock.lock();
      }
    }

    const bool draining = stopping_;
    // Flush groups whose oldest request aged past the deadline (all of
    // them when draining for shutdown).
    const uint64_t now = NowNanos();
    const uint64_t deadline_ns = static_cast<uint64_t>(deadline.count()) * 1000;
    for (auto it = pending.begin(); it != pending.end();) {
      if (!draining && now - oldest_ns[it->first] < deadline_ns) {
        ++it;
        continue;
      }
      std::string name = it->first;
      std::vector<PendingRequest> batch = std::move(it->second);
      it = pending.erase(it);
      oldest_ns.erase(name);
      lock.unlock();
      FlushModel(name, std::move(batch));
      lock.lock();
    }

    if (draining && queue_.empty() && pending.empty()) break;
  }
}

void InferenceServer::FlushModel(const std::string& name,
                                 std::vector<PendingRequest> items) {
  // Resolve the model version once per batch: a hot-swap takes effect
  // between batches, never within one.
  std::shared_ptr<const ServedModel> model =
      registry_ == nullptr ? nullptr : registry_->Current(name);
  if (model == nullptr) {
    for (auto& item : items) {
      item.promise.set_value(
          Status::NotFound("no published model named " + name));
    }
    return;
  }
  batches_flushed_->Inc();
  batch_rows_->Add(items.size());
  Batch batch;
  batch.model = std::move(model);
  batch.items = std::move(items);
  // Stop() joins the scheduler before closing the batch queue, so this
  // Push cannot race Close.
  batches_.Push(std::move(batch));
}

void InferenceServer::WorkerLoop() {
  while (true) {
    std::optional<Batch> batch = batches_.Pop();
    if (!batch.has_value()) return;
    ExecuteBatch(std::move(*batch));
  }
}

void InferenceServer::ExecuteBatch(Batch batch) {
  TraceSpan span(TraceCat::kServe, "serve-batch");
  const CompiledForest& compiled = batch.model->compiled;
  Histogram* latency =
      metrics_.GetHistogram("serve.latency_us." + batch.model->name);

  // Sub-group items sharing a table and depth cutoff: each sub-group is
  // one batched traversal over the compiled forest.
  struct GroupKey {
    const DataTable* table;
    int max_depth;
    bool operator<(const GroupKey& o) const {
      return table != o.table ? table < o.table : max_depth < o.max_depth;
    }
  };
  std::map<GroupKey, std::vector<size_t>> groups;
  for (size_t i = 0; i < batch.items.size(); ++i) {
    const PredictRequest& req = batch.items[i].request;
    groups[{req.table.get(), req.max_depth}].push_back(i);
  }

  const int num_classes = compiled.num_classes();
  std::vector<uint32_t> rows;
  std::vector<float> pmf;
  std::vector<int32_t> labels;
  std::vector<double> values;
  for (const auto& [key, indices] : groups) {
    const DataTable& table = *batch.items[indices.front()].request.table;
    rows.clear();
    rows.reserve(indices.size());
    for (size_t i : indices) rows.push_back(batch.items[i].request.row);

    const bool classification = compiled.is_classification();
    if (classification) {
      pmf.assign(indices.size() * static_cast<size_t>(num_classes), 0.0f);
      compiled.PredictPmf(table, rows.data(), rows.size(), key.max_depth,
                          pmf.data());
    } else {
      values.assign(indices.size(), 0.0);
      compiled.PredictValue(table, rows.data(), rows.size(), key.max_depth,
                            values.data());
    }
    labels.assign(indices.size(), 0);
    if (classification) {
      compiled.PredictLabel(table, rows.data(), rows.size(), key.max_depth,
                            labels.data());
    }

    const uint64_t done_ns = NowNanos();
    for (size_t j = 0; j < indices.size(); ++j) {
      PendingRequest& item = batch.items[indices[j]];
      Prediction out;
      out.model_version = batch.model->version;
      if (classification) {
        out.label = labels[j];
        if (item.request.want_pmf) {
          const float* p = pmf.data() + j * static_cast<size_t>(num_classes);
          out.pmf.assign(p, p + num_classes);
        }
      } else {
        out.value = values[j];
      }
      latency->Add((done_ns - item.enqueue_ns) / 1000);
      item.promise.set_value(std::move(out));
    }
  }
}

}  // namespace treeserver
