#include "serve/compiled_model.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <functional>
#include <set>
#include <thread>

#include "common/logging.h"
#include "serve/serve_kernels.h"

namespace treeserver {

namespace {

/// Bitmask words needed to hold the (sorted) category codes.
uint32_t WordsFor(const std::vector<int32_t>& sorted_codes) {
  if (sorted_codes.empty()) return 0;
  return static_cast<uint32_t>(sorted_codes.back() / 64) + 1;
}

void SetBits(const std::vector<int32_t>& codes, uint64_t* words) {
  for (int32_t c : codes) words[c >> 6] |= uint64_t{1} << (c & 63);
}

/// Chunked parallel-for over [0, n) in blocks of `chunk`.
void ParallelChunks(size_t n, size_t chunk, int num_threads,
                    const std::function<void(size_t, size_t)>& fn) {
  const size_t num_chunks = (n + chunk - 1) / chunk;
  if (num_threads <= 1 || num_chunks <= 1) {
    for (size_t c = 0; c < num_chunks; ++c) {
      fn(c * chunk, std::min(n, (c + 1) * chunk));
    }
    return;
  }
  std::atomic<size_t> next{0};
  std::vector<std::thread> pool;
  int workers = static_cast<int>(
      std::min<size_t>(static_cast<size_t>(num_threads), num_chunks));
  for (int w = 0; w < workers; ++w) {
    pool.emplace_back([&] {
      for (size_t c = next.fetch_add(1); c < num_chunks;
           c = next.fetch_add(1)) {
        fn(c * chunk, std::min(n, (c + 1) * chunk));
      }
    });
  }
  for (std::thread& th : pool) th.join();
}

}  // namespace

CompiledTree CompiledTree::Compile(const TreeModel& tree) {
  TS_CHECK(!tree.empty()) << "cannot compile an empty tree";
  CompiledTree out;
  out.kind_ = tree.kind();
  out.num_classes_ = tree.num_classes();

  const size_t n = tree.num_nodes();
  out.col_.resize(n);
  out.is_cat_.resize(n);
  out.threshold_.resize(n);
  out.left_.resize(n);
  out.right_.resize(n);
  out.depth_.resize(n);
  out.label_.resize(n);
  out.value_.resize(n);
  out.cat_offset_.resize(n, 0);
  out.cat_words_.resize(n, 0);
  if (out.kind_ == TaskKind::kClassification) {
    out.pmf_pool_.assign(n * static_cast<size_t>(out.num_classes_), 0.0f);
  }

  std::set<int32_t> used;
  for (size_t i = 0; i < n; ++i) {
    const TreeModel::Node& node = tree.node(static_cast<int32_t>(i));
    const SplitCondition& cond = node.condition;
    out.col_[i] = node.is_leaf() ? -1 : cond.column;
    out.left_[i] = node.left;
    out.right_[i] = node.right;
    out.depth_[i] = node.depth;
    out.label_[i] = node.label;
    out.value_[i] = node.value;
    if (out.kind_ == TaskKind::kClassification) {
      // Every node carries its PMF (predict-at-any-depth): copy into
      // the contiguous pool, padding short vectors with zeros.
      float* dst = out.pmf_pool_.data() + i * out.num_classes_;
      size_t copy = std::min<size_t>(node.pmf.size(), out.num_classes_);
      std::copy_n(node.pmf.data(), copy, dst);
    }
    if (node.is_leaf()) continue;
    used.insert(cond.column);
    if (cond.type == DataType::kCategorical) {
      out.is_cat_[i] = 1;
      uint32_t words =
          std::max(WordsFor(cond.left_categories), WordsFor(cond.seen_categories));
      out.cat_offset_[i] = static_cast<uint32_t>(out.cat_pool_.size());
      out.cat_words_[i] = words;
      out.cat_pool_.resize(out.cat_pool_.size() + 2 * words, 0);
      uint64_t* base = out.cat_pool_.data() + out.cat_offset_[i];
      SetBits(cond.left_categories, base);
      SetBits(cond.seen_categories, base + words);
    } else {
      out.threshold_[i] = cond.threshold;
    }
  }
  out.used_columns_.assign(used.begin(), used.end());
  return out;
}

NodeLayout CompiledTree::Repack(NodeLayout want, const BinnedTable* binned) {
  packed_ = nullptr;
  layout_ = NodeLayout::kSoa;
  if (want == NodeLayout::kQuantized) {
    TS_CHECK(binned != nullptr) << "quantized layout needs a BinnedTable";
    packed_ = PackedTree::PackQuantized(*this, *binned);
    if (packed_ != nullptr) {
      layout_ = NodeLayout::kQuantized;
      return layout_;
    }
    want = NodeLayout::kPacked;  // thresholds off the bin grid
  }
  if (want == NodeLayout::kPacked) {
    packed_ = PackedTree::Pack(*this);
    if (packed_ != nullptr) layout_ = NodeLayout::kPacked;
  }
  return layout_;
}

void CompiledTree::BuildContext(const DataTable& table,
                                const std::vector<int32_t>& columns,
                                RowBlockContext* ctx) {
  ctx->numeric.assign(table.num_columns(), nullptr);
  ctx->category.assign(table.num_columns(), nullptr);
  ctx->ucodes.clear();
  ctx->ustorage.clear();
  for (int32_t id : columns) {
    const ColumnPtr& col = table.column(id);
    TS_CHECK(col != nullptr) << "serving table misses split column " << id;
    if (col->type() == DataType::kNumeric) {
      ctx->numeric[id] = col->numeric_values().data();
    } else {
      ctx->category[id] = col->categorical_codes().data();
    }
  }
}

void CompiledTree::RouteRows(const RowBlockContext& ctx, const uint32_t* rows,
                             size_t n, int max_depth,
                             int32_t* out_nodes) const {
  if (packed_ != nullptr) {
    packed_->RouteRows(ctx, rows, n, max_depth, out_nodes);
    return;
  }
  const int32_t* col = col_.data();
  const uint8_t* is_cat = is_cat_.data();
  const double* threshold = threshold_.data();
  const int32_t* left = left_.data();
  const int32_t* right = right_.data();
  const uint16_t* depth = depth_.data();
  for (size_t i = 0; i < n; ++i) {
    const uint32_t row = rows[i];
    int32_t id = 0;
    while (true) {
      const int32_t c = col[id];
      if (c < 0) break;  // leaf
      if (max_depth >= 0 && depth[id] >= max_depth) break;
      if (!is_cat[id]) {
        const double v = ctx.numeric[c][row];
        if (std::isnan(v)) break;  // missing: stop here (Appendix D)
        id = v <= threshold[id] ? left[id] : right[id];
      } else {
        const int32_t code = ctx.category[c][row];
        if (code < 0) break;  // missing
        const uint32_t words = cat_words_[id];
        const uint32_t word = static_cast<uint32_t>(code) >> 6;
        if (word >= words) break;  // beyond the mask: unseen in training
        const uint64_t* masks = cat_pool_.data() + cat_offset_[id];
        const uint64_t bit = uint64_t{1} << (code & 63);
        if (masks[word] & bit) {
          id = left[id];
        } else if (masks[words + word] & bit) {
          id = right[id];
        } else {
          break;  // unseen category: stop here
        }
      }
    }
    out_nodes[i] = id;
  }
}

int32_t CompiledTree::RouteRow(const DataTable& table, uint32_t row,
                               int max_depth) const {
  TS_CHECK(layout_ != NodeLayout::kQuantized)
      << "RouteRow has no bin codes; quantized trees are bulk-scoring only";
  RowBlockContext ctx;
  BuildContext(table, used_columns_, &ctx);
  int32_t node = 0;
  RouteRows(ctx, &row, 1, max_depth, &node);
  return node;
}

CompiledForest CompiledForest::Compile(const ForestModel& forest) {
  CompiledForest out;
  out.kind_ = forest.kind();
  out.num_classes_ = forest.num_classes();
  std::set<int32_t> used;
  out.trees_.reserve(forest.num_trees());
  for (size_t i = 0; i < forest.num_trees(); ++i) {
    out.trees_.push_back(CompiledTree::Compile(forest.tree(i)));
    const std::vector<int32_t>& cols = out.trees_.back().used_columns();
    used.insert(cols.begin(), cols.end());
  }
  out.used_columns_.assign(used.begin(), used.end());
  return out;
}

CompiledForest CompiledForest::Compile(const TreeModel& tree) {
  ForestModel forest(tree.kind(), tree.num_classes());
  forest.AddTree(tree);
  return Compile(forest);
}

NodeLayout CompiledForest::Repack(NodeLayout want,
                                  std::shared_ptr<const BinnedTable> binned) {
  quant_binned_ = want == NodeLayout::kQuantized ? std::move(binned) : nullptr;
  NodeLayout achieved = want;
  bool any_quant = false;
  for (CompiledTree& tree : trees_) {
    achieved = std::min(achieved, tree.Repack(want, quant_binned_.get()));
    any_quant = any_quant || tree.layout() == NodeLayout::kQuantized;
  }
  // If no tree quantized, future contexts don't need bin codes.
  if (!any_quant) quant_binned_ = nullptr;
  layout_ = achieved;
  return achieved;
}

void CompiledForest::BuildContext(const DataTable& table,
                                  RowBlockContext* ctx) const {
  CompiledTree::BuildContext(table, used_columns_, ctx);
  if (quant_binned_ == nullptr) return;
  // Quantized trees route on precomputed bin codes of the stationary
  // serving table; the BinnedTable was built from that very table.
  // Every used column gets a uniform uint16 code array with the
  // per-column missing code rewritten to the universal kStopCode, so
  // the level walker tests missingness against one constant instead of
  // loading a per-column stop code every step. The rewrite forces a
  // copy into ctx->ustorage (except when the column's missing code
  // already IS kStopCode) — a linear pass that is noise next to the
  // traversal it feeds.
  const size_t n = table.num_rows();
  ctx->ucodes.assign(table.num_columns(), nullptr);
  for (int32_t id : used_columns_) {
    const BinnedColumn* bc = quant_binned_->column(id);
    if (bc != nullptr) {
      TS_CHECK(bc->num_rows() == table.num_rows())
          << "quantized layout: BinnedTable does not match the serving table";
      const uint16_t miss = static_cast<uint16_t>(bc->missing_code());
      if (bc->codes16_data() != nullptr) {
        const uint16_t* src = bc->codes16_data();
        if (miss == RowBlockContext::kStopCode) {
          ctx->ucodes[id] = src;
        } else {
          std::vector<uint16_t>& dst = ctx->ustorage.emplace_back(n);
          for (size_t i = 0; i < n; ++i) {
            dst[i] = src[i] == miss ? RowBlockContext::kStopCode : src[i];
          }
          ctx->ucodes[id] = dst.data();
        }
      } else {
        const uint8_t* src = bc->codes8_data();
        const uint8_t miss8 = static_cast<uint8_t>(miss);
        std::vector<uint16_t>& dst = ctx->ustorage.emplace_back(n);
        for (size_t i = 0; i < n; ++i) {
          dst[i] = src[i] == miss8 ? RowBlockContext::kStopCode : src[i];
        }
        ctx->ucodes[id] = dst.data();
      }
    } else {
      const int32_t* src = ctx->category[id];
      TS_CHECK(src != nullptr) << "serving table misses split column " << id;
      std::vector<uint16_t>& dst = ctx->ustorage.emplace_back(n);
      for (size_t i = 0; i < n; ++i) {
        const int32_t c = src[i];
        dst[i] = c < 0 || c >= RowBlockContext::kStopCode
                     ? RowBlockContext::kStopCode
                     : static_cast<uint16_t>(c);
      }
      ctx->ucodes[id] = dst.data();
    }
  }
}

void CompiledForest::PredictPmf(const DataTable& table, const uint32_t* rows,
                                size_t n, int max_depth,
                                float* out_pmf) const {
  const size_t k = static_cast<size_t>(num_classes_);
  std::fill(out_pmf, out_pmf + n * k, 0.0f);
  if (trees_.empty()) return;
  RowBlockContext ctx;
  BuildContext(table, &ctx);
  std::vector<int32_t> nodes(n);
  // Accumulate per-tree PMFs in tree order, then scale — the same
  // float operations, in the same order, as ForestModel::PredictPmf
  // (the serve kernels are element-wise, so SIMD changes no bits).
  for (const CompiledTree& tree : trees_) {
    tree.RouteRows(ctx, rows, n, max_depth, nodes.data());
    servek::AddIndexedPmf(out_pmf, nodes.data(), n, k,
                          tree.active_pmf_pool());
  }
  const float inv = 1.0f / static_cast<float>(trees_.size());
  servek::ScaleF32(out_pmf, n * k, inv);
}

void CompiledForest::PredictLabel(const DataTable& table, const uint32_t* rows,
                                  size_t n, int max_depth,
                                  int32_t* out_labels) const {
  const size_t k = static_cast<size_t>(num_classes_);
  std::vector<float> pmf(n * k);
  PredictPmf(table, rows, n, max_depth, pmf.data());
  for (size_t i = 0; i < n; ++i) {
    const float* p = pmf.data() + i * k;
    // First-max argmax, matching std::max_element in
    // ForestModel::PredictLabel.
    size_t best = 0;
    for (size_t c = 1; c < k; ++c) {
      if (p[c] > p[best]) best = c;
    }
    out_labels[i] = static_cast<int32_t>(best);
  }
}

void CompiledForest::PredictValue(const DataTable& table, const uint32_t* rows,
                                  size_t n, int max_depth,
                                  double* out_values) const {
  std::fill(out_values, out_values + n, 0.0);
  if (trees_.empty()) return;
  RowBlockContext ctx;
  BuildContext(table, &ctx);
  std::vector<int32_t> nodes(n);
  for (const CompiledTree& tree : trees_) {
    tree.RouteRows(ctx, rows, n, max_depth, nodes.data());
    servek::AddIndexedValue(out_values, nodes.data(), n,
                            tree.active_values());
  }
  const double count = static_cast<double>(trees_.size());
  // Divide (not multiply by a reciprocal): ForestModel::PredictValue
  // divides, and the results must be bit-identical.
  servek::DivF64(out_values, n, count);
}

namespace {
constexpr size_t kRowBlock = 1024;
}  // namespace

std::vector<int32_t> CompiledForest::PredictLabels(const DataTable& table,
                                                   int max_depth) const {
  const size_t n = table.num_rows();
  std::vector<int32_t> out(n);
  std::vector<uint32_t> rows(std::min(n, kRowBlock));
  for (size_t begin = 0; begin < n; begin += kRowBlock) {
    const size_t m = std::min(kRowBlock, n - begin);
    for (size_t i = 0; i < m; ++i) rows[i] = static_cast<uint32_t>(begin + i);
    PredictLabel(table, rows.data(), m, max_depth, out.data() + begin);
  }
  return out;
}

std::vector<double> CompiledForest::PredictValues(const DataTable& table,
                                                  int max_depth) const {
  const size_t n = table.num_rows();
  std::vector<double> out(n);
  std::vector<uint32_t> rows(std::min(n, kRowBlock));
  for (size_t begin = 0; begin < n; begin += kRowBlock) {
    const size_t m = std::min(kRowBlock, n - begin);
    for (size_t i = 0; i < m; ++i) rows[i] = static_cast<uint32_t>(begin + i);
    PredictValue(table, rows.data(), m, max_depth, out.data() + begin);
  }
  return out;
}

std::vector<float> CompiledForest::PredictPmfRow(const DataTable& table,
                                                 uint32_t row,
                                                 int max_depth) const {
  std::vector<float> pmf(num_classes_);
  PredictPmf(table, &row, 1, max_depth, pmf.data());
  return pmf;
}

int32_t CompiledForest::PredictLabelRow(const DataTable& table, uint32_t row,
                                        int max_depth) const {
  int32_t label = 0;
  PredictLabel(table, &row, 1, max_depth, &label);
  return label;
}

double CompiledForest::PredictValueRow(const DataTable& table, uint32_t row,
                                       int max_depth) const {
  double value = 0.0;
  PredictValue(table, &row, 1, max_depth, &value);
  return value;
}

CompiledCascade CompiledCascade::Compile(const DeepForestModel& model) {
  CompiledCascade out;
  out.window_sizes_ = model.mgs_config().window_sizes;
  out.stride_ = model.mgs_config().stride;
  out.forests_per_layer_ = model.cascade_config().forests_per_layer;
  out.num_classes_ = model.num_classes();
  for (const std::vector<ForestModel>& group : model.mgs_forests()) {
    std::vector<CompiledForest> compiled;
    compiled.reserve(group.size());
    for (const ForestModel& f : group) compiled.push_back(CompiledForest::Compile(f));
    out.mgs_.push_back(std::move(compiled));
  }
  for (const std::vector<ForestModel>& group : model.cascade_layers()) {
    std::vector<CompiledForest> compiled;
    compiled.reserve(group.size());
    for (const ForestModel& f : group) compiled.push_back(CompiledForest::Compile(f));
    out.cascade_.push_back(std::move(compiled));
  }
  return out;
}

std::vector<int32_t> CompiledCascade::Predict(const ImageDataset& images,
                                              int num_threads) const {
  // MGS re-representation, batched: one PMF buffer per forest over the
  // whole window table, assembled per image in the same
  // position-major, forest-minor order as ExtractWindowFeatures.
  std::vector<std::vector<std::vector<float>>> rep;  // [window][image]
  for (size_t wi = 0; wi < window_sizes_.size(); ++wi) {
    DataTable window_table =
        BuildWindowTable(images, window_sizes_[wi], stride_, num_threads);
    const size_t rows = window_table.num_rows();
    const size_t positions = rows / images.size();
    std::vector<std::vector<float>> buffers(mgs_[wi].size());
    for (size_t f = 0; f < mgs_[wi].size(); ++f) {
      const size_t k = static_cast<size_t>(mgs_[wi][f].num_classes());
      buffers[f].resize(rows * k);
      const CompiledForest& forest = mgs_[wi][f];
      float* out = buffers[f].data();
      ParallelChunks(rows, 1024, num_threads,
                     [&forest, &window_table, out, k](size_t begin,
                                                      size_t end) {
                       std::vector<uint32_t> idx(end - begin);
                       for (size_t i = begin; i < end; ++i) {
                         idx[i - begin] = static_cast<uint32_t>(i);
                       }
                       forest.PredictPmf(window_table, idx.data(), idx.size(),
                                         -1, out + begin * k);
                     });
    }
    std::vector<std::vector<float>> features(images.size());
    const size_t k = static_cast<size_t>(num_classes_);
    for (size_t img = 0; img < images.size(); ++img) {
      std::vector<float>& feat = features[img];
      feat.reserve(positions * mgs_[wi].size() * k);
      for (size_t p = 0; p < positions; ++p) {
        const size_t row = img * positions + p;
        for (size_t f = 0; f < mgs_[wi].size(); ++f) {
          const float* pmf = buffers[f].data() + row * k;
          feat.insert(feat.end(), pmf, pmf + k);
        }
      }
    }
    rep.push_back(std::move(features));
  }

  // Cascade, layer by layer; layer l consumes window (l mod #windows).
  std::vector<std::vector<float>> prev;
  for (size_t layer = 0; layer < cascade_.size(); ++layer) {
    const size_t wi = layer % window_sizes_.size();
    std::vector<std::vector<float>> in =
        layer == 0 ? rep[wi] : ConcatPerImageFeatures(prev, rep[wi]);
    DataTable table = BuildFeatureTable(
        in, std::vector<int32_t>(images.size(), 0), num_classes_);
    const size_t rows = table.num_rows();
    const size_t k = static_cast<size_t>(num_classes_);
    std::vector<std::vector<float>> buffers(cascade_[layer].size());
    for (size_t f = 0; f < cascade_[layer].size(); ++f) {
      buffers[f].resize(rows * k);
      const CompiledForest& forest = cascade_[layer][f];
      float* out = buffers[f].data();
      ParallelChunks(rows, 1024, num_threads,
                     [&forest, &table, out, k](size_t begin, size_t end) {
                       std::vector<uint32_t> idx(end - begin);
                       for (size_t i = begin; i < end; ++i) {
                         idx[i - begin] = static_cast<uint32_t>(i);
                       }
                       forest.PredictPmf(table, idx.data(), idx.size(), -1,
                                         out + begin * k);
                     });
    }
    prev.assign(rows, {});
    for (size_t img = 0; img < rows; ++img) {
      std::vector<float>& feat = prev[img];
      feat.reserve(cascade_[layer].size() * k);
      for (size_t f = 0; f < cascade_[layer].size(); ++f) {
        const float* pmf = buffers[f].data() + img * k;
        feat.insert(feat.end(), pmf, pmf + k);
      }
    }
  }
  return ArgmaxAveragedLabels(prev, num_classes_, forests_per_layer_);
}

}  // namespace treeserver
