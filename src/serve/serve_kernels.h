#ifndef TREESERVER_SERVE_SERVE_KERNELS_H_
#define TREESERVER_SERVE_SERVE_KERNELS_H_

#include <cstddef>
#include <cstdint>

namespace treeserver {

/// Element-wise accumulation kernels behind CompiledForest's batched
/// Predict loops, dispatched on common/simd.h's active level. All four
/// operations are per-element (no reassociation: out[i] gets the same
/// single IEEE op either way), so the vector paths are bit-exact
/// against the scalar twins — fuzz-checked in tests/simd_test.cc.
///
/// Only an AVX2 variant exists: on AArch64 the baseline ISA includes
/// NEON and the compiler auto-vectorizes these element-wise loops
/// exactly, so a hand-written twin would be redundant.
namespace servek {

/// out[i*k + c] += pool[nodes[i]*k + c] for all rows and classes.
void AddIndexedPmf(float* out, const int32_t* nodes, size_t n, size_t k,
                   const float* pool);
/// out[i] += pool[nodes[i]].
void AddIndexedValue(double* out, const int32_t* nodes, size_t n,
                     const double* pool);
/// v[i] *= s.
void ScaleF32(float* v, size_t n, float s);
/// v[i] /= d (a divide, not a reciprocal multiply — bit parity with
/// ForestModel::PredictValue).
void DivF64(double* v, size_t n, double d);

// Scalar twins, callable directly by the parity tests.
void AddIndexedPmfScalar(float* out, const int32_t* nodes, size_t n, size_t k,
                         const float* pool);
void AddIndexedValueScalar(double* out, const int32_t* nodes, size_t n,
                           const double* pool);
void ScaleF32Scalar(float* v, size_t n, float s);
void DivF64Scalar(double* v, size_t n, double d);

#if TS_SIMD_ENABLED && (defined(__x86_64__) || defined(_M_X64))
void AddIndexedPmfAvx2(float* out, const int32_t* nodes, size_t n, size_t k,
                       const float* pool);
void AddIndexedValueAvx2(double* out, const int32_t* nodes, size_t n,
                         const double* pool);
void ScaleF32Avx2(float* v, size_t n, float s);
void DivF64Avx2(double* v, size_t n, double d);
#endif

}  // namespace servek
}  // namespace treeserver

#endif  // TREESERVER_SERVE_SERVE_KERNELS_H_
