#ifndef TREESERVER_SERVE_PACKED_TREE_H_
#define TREESERVER_SERVE_PACKED_TREE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "table/binned.h"

namespace treeserver {

class CompiledTree;
struct RowBlockContext;

/// A CompiledTree re-encoded as bit-packed 16-byte nodes in
/// breadth-first order (after SNIPPETS.md §1's 32-bit Tree_node, scaled
/// up to keep exact doubles): siblings are adjacent with
/// right = left + 1, so one child pointer serves both and a whole
/// depth-12 tree sits in L2. Each node is two 64-bit words:
///
///   meta  bits  0..19  split column (kLeafCol marks a leaf)
///         bit   20     categorical split
///         bits 21..30  node depth (predict-at-any-depth cutoff)
///         bits 32..63  left child index; right child = left + 1
///   aux   numeric split: bit_cast<uint64_t>(threshold)
///         quantized numeric split: the threshold's bin code
///         categorical split: (mask_words << 32) | cat_pool offset
///         quantized categorical split: (route_pool offset << 32) |
///         (table_cap << 16) — see the route-table note below
///
/// The quantized encoding additionally turns every node into a
/// BRANCHLESS step so RouteRows can sweep whole row blocks one tree
/// level at a time with no data-dependent branches:
///
///  - categorical splits carry a byte route table instead of bitmask
///    words: route_pool_[off + min(code, cap)] is 0 (go left),
///    1 (go right) or 2 (stop here), with the cap slot itself a stop
///    sentinel so out-of-range and missing codes fall out of the same
///    clamped load;
///  - leaves are self-loops: col points at an arbitrary used column
///    (never dereferenced out of bounds), left at the leaf itself and
///    aux holds code 0xFFFF, so the generic "code <= aux ? left :
///    left + 1" step parks the row on the leaf forever;
///  - rows that stop early (missing value, unseen category, depth
///    cutoff) park the same way: the step computes
///    `route == stop ? self : left + route` with conditional moves.
///
/// A depth-d node is reached after exactly d sweeps (breadth-first
/// property), so running min(tree_depth, max_depth) sweeps implements
/// the predict-at-any-depth cutoff without per-row depth checks.
///
/// Prediction outputs (PMF pool / labels / values) are permuted to the
/// same breadth-first order, so the node ids RouteRows emits index
/// them directly.
///
/// Routing semantics are exactly CompiledTree::RouteRows — leaf, depth
/// cutoff, missing value and unseen category all stop at the current
/// node. The quantized variant replaces the double compare
/// `v <= threshold` with `code <= threshold_bin` against the row's
/// precomputed bin code; PackQuantized only succeeds when every
/// numeric threshold is EXACTLY the upper bound of its bin in the
/// serving table's BinnedTable (then the two compares agree for every
/// value the table contains — bins partition values monotonically and
/// no serving value exceeds its column's last bin, since the
/// BinnedTable was built from this very table), and missing values
/// carry the dedicated missing code, which stops the walk just like
/// NaN. Byte-identical predictions are fuzz-checked in
/// tests/simd_test.cc.
///
/// RouteRows walks up to kLanes rows interleaved, prefetching each
/// lane's next node while the other lanes execute — tree traversal is
/// latency-bound pointer chasing, so memory-level parallelism, not
/// vector width, is what multi-row batching buys here.
class PackedTree {
 public:
  static constexpr uint32_t kLeafCol = 0xFFFFF;  // 20-bit sentinel
  static constexpr int kMaxDepth = 1023;         // 10-bit field
  static constexpr int kLanes = 16;              // rows in flight

  /// Packs with exact double thresholds. Returns nullptr when the tree
  /// exceeds the packed limits (column id >= kLeafCol, depth >
  /// kMaxDepth, or >= 2^32 - 1 nodes) — the caller keeps serving SoA.
  static std::shared_ptr<const PackedTree> Pack(const CompiledTree& tree);

  /// Packs with numeric thresholds quantized to bin codes of `binned`
  /// (the BinnedTable of the table rows will be routed against).
  /// Returns nullptr when any numeric threshold is not exactly a bin
  /// upper of its column (or a split column is unbinned, or the packed
  /// limits are exceeded) — the caller falls back to Pack().
  static std::shared_ptr<const PackedTree> PackQuantized(
      const CompiledTree& tree, const BinnedTable& binned);

  /// Same contract as CompiledTree::RouteRows; emits PACKED node ids.
  /// Quantized trees read ctx.ucodes, which BuildContext fills from
  /// the forest's serving BinnedTable, and take the branchless
  /// level-synchronous walker; exact-threshold packed trees take the
  /// lane-interleaved pointer chase.
  void RouteRows(const RowBlockContext& ctx, const uint32_t* rows, size_t n,
                 int max_depth, int32_t* out_nodes) const;

  bool quantized() const { return quantized_; }
  size_t num_nodes() const { return words_.size() / 2; }

  /// Prediction pools, indexed by packed node id.
  const float* pmf_pool() const { return pmf_pool_.data(); }
  const int32_t* labels() const { return label_.data(); }
  const double* values() const { return value_.data(); }

  /// Node payload bytes (16 per node + masks + prediction pools).
  size_t ByteSize() const;

 private:
  PackedTree() = default;

  static std::shared_ptr<const PackedTree> PackImpl(const CompiledTree& tree,
                                                    const BinnedTable* binned);

  void RouteRowsQuantized(const RowBlockContext& ctx, const uint32_t* rows,
                          size_t n, int max_depth, int32_t* out_nodes) const;

  bool quantized_ = false;
  int num_classes_ = 0;
  uint32_t tree_depth_ = 0;  // deepest node; bounds the level sweeps
  // Interleaved node words: node i is {meta, aux} at words_[2i, 2i+1],
  // so one step touches one cache line and a 64-byte line holds two
  // sibling pairs.
  std::vector<uint64_t> words_;
  std::vector<uint64_t> cat_pool_;
  std::vector<uint8_t> route_pool_;  // quantized categorical route tables
  std::vector<float> pmf_pool_;  // num_nodes * num_classes
  std::vector<int32_t> label_;
  std::vector<double> value_;
};

}  // namespace treeserver

#endif  // TREESERVER_SERVE_PACKED_TREE_H_
