#ifndef TREESERVER_SERVE_SERVER_H_
#define TREESERVER_SERVE_SERVER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/http_server.h"
#include "common/metrics_registry.h"
#include "concurrent/blocking_queue.h"
#include "serve/registry.h"
#include "table/data_table.h"

namespace treeserver {

struct InferenceServerConfig {
  /// Prediction worker threads executing flushed batches.
  int num_workers = 2;
  /// A model's pending batch is flushed as soon as it reaches this
  /// many requests...
  int max_batch = 64;
  /// ...or as soon as its oldest request has waited this long.
  int batch_deadline_us = 200;
  /// Admission bound: Predict() rejects with Unavailable once this
  /// many requests are queued but not yet executing (backpressure).
  size_t max_queue = 4096;
  /// Destination for serving metrics; nullptr uses
  /// MetricsRegistry::Global(). Metrics:
  ///   serve.requests / serve.rejected / serve.batches   (counters)
  ///   serve.batch_rows                                  (histogram)
  ///   serve.latency_us.<model>                          (histograms)
  MetricsRegistry* metrics = nullptr;
  /// Introspection HTTP port (-1 disables, 0 picks an ephemeral port;
  /// read it back via InferenceServer::http_port()). Endpoints:
  /// /metrics (Prometheus text), /healthz, /statusz (JSON).
  int http_port = -1;
  std::string http_host = "127.0.0.1";
};

/// One row-prediction request. The table is shared so the caller can
/// batch many requests against one block without copies; `row` indexes
/// into it.
struct PredictRequest {
  std::string model;
  std::shared_ptr<const DataTable> table;
  uint32_t row = 0;
  /// Predict-at-any-depth cutoff; -1 serves the full tree depth.
  int max_depth = -1;
  /// Also return the full class PMF (classification models).
  bool want_pmf = false;
};

struct Prediction {
  uint32_t model_version = 0;
  /// Classification output (argmax of the averaged PMF).
  int32_t label = 0;
  /// Regression output.
  double value = 0.0;
  /// Filled only when PredictRequest::want_pmf was set.
  std::vector<float> pmf;
};

/// In-process micro-batching prediction server over a ModelRegistry.
///
/// Predict() enqueues a request and returns a future. A scheduler
/// thread groups requests per model and flushes a batch when it
/// reaches `max_batch` rows or its oldest request ages past
/// `batch_deadline_us`; the model version is resolved at flush time
/// (atomic registry load), so hot-swapped models take over between
/// batches, never inside one. Worker threads execute batches through
/// the compiled predictors, sub-grouped by (table, max_depth) so each
/// group is a single batched traversal. Admission control rejects work
/// beyond `max_queue` instead of queueing unboundedly.
///
/// Requests may be submitted before Start(): they are admitted against
/// the same bound and served once the server starts.
class InferenceServer {
 public:
  InferenceServer(const ModelRegistry* registry, InferenceServerConfig config);
  ~InferenceServer();

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  void Start();
  /// Stops admission, drains queued requests, joins all threads.
  /// Idempotent.
  void Stop();

  /// Queues one prediction. The future resolves with the prediction,
  /// or with NotFound (unknown model), Unavailable (queue full), or
  /// FailedPrecondition (server stopped).
  std::future<Result<Prediction>> Predict(PredictRequest request);

  /// Requests currently queued ahead of the scheduler (not yet
  /// batched).
  size_t queue_depth() const;

  /// Point-in-time load counters (this server's own serve.* counters,
  /// not the registry-wide metrics). Feeds /statusz and the fleet
  /// replica's health pongs.
  struct Stats {
    size_t queue_depth = 0;
    uint64_t requests = 0;
    uint64_t batches = 0;
    uint64_t rejected = 0;
  };
  Stats GetStats() const;

  /// Bound introspection port, or 0 when HTTP is disabled.
  uint16_t http_port() const;

 private:
  struct PendingRequest {
    PredictRequest request;
    std::promise<Result<Prediction>> promise;
    uint64_t enqueue_ns = 0;
  };
  struct Batch {
    std::shared_ptr<const ServedModel> model;
    std::vector<PendingRequest> items;
  };

  void SchedulerLoop();
  void WorkerLoop();
  void ExecuteBatch(Batch batch);
  void FlushModel(const std::string& name, std::vector<PendingRequest> items);

  const ModelRegistry* const registry_;
  const InferenceServerConfig config_;
  MetricsRegistry& metrics_;

  Counter* const requests_total_;
  Counter* const requests_rejected_;
  Counter* const batches_flushed_;
  Histogram* const batch_rows_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<PendingRequest> queue_;
  bool started_ = false;
  bool stopping_ = false;

  std::thread scheduler_;
  BlockingQueue<Batch> batches_;
  std::vector<std::thread> workers_;
  std::unique_ptr<HttpServer> http_;
};

}  // namespace treeserver

#endif  // TREESERVER_SERVE_SERVER_H_
