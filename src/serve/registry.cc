#include "serve/registry.h"

#include <iterator>
#include <utility>

namespace treeserver {

ModelRegistry::Entry* ModelRegistry::GetOrCreateEntry(
    const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Entry>& slot = entries_[name];
  if (slot == nullptr) slot = std::make_unique<Entry>();
  return slot.get();
}

ModelRegistry::Entry* ModelRegistry::FindEntry(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : it->second.get();
}

Result<uint32_t> ModelRegistry::PublishCompiled(const std::string& name,
                                                ModelKind kind,
                                                ForestModel model) {
  if (name.empty()) {
    return Status::InvalidArgument("model name must not be empty");
  }
  if (model.num_trees() == 0) {
    return Status::InvalidArgument("cannot publish an empty model: " + name);
  }
  auto served = std::make_shared<ServedModel>();
  served->name = name;
  served->kind = kind;
  served->compiled = CompiledForest::Compile(model);
  // Re-encode into the configured layout before the model is visible;
  // layouts are byte-parity, so this is purely a speed choice.
  served->layout = served->compiled.Repack(default_layout());
  served->source = std::make_shared<const ForestModel>(std::move(model));

  Entry* entry = GetOrCreateEntry(name);
  std::lock_guard<std::mutex> lock(entry->mu);
  served->version = entry->next_version++;
  entry->versions[served->version] = served;
  // The swap is a single pointer assignment under the entry lock:
  // requests that resolved the previous version keep serving it to
  // completion via their shared_ptr.
  entry->current = std::move(served);
  return entry->next_version - 1;
}

Result<uint32_t> ModelRegistry::Publish(const std::string& name,
                                        ForestModel model) {
  return PublishCompiled(name, ModelKind::kForest, std::move(model));
}

Result<uint32_t> ModelRegistry::Publish(const std::string& name,
                                        TreeModel model) {
  ForestModel forest(model.kind(), model.num_classes());
  if (!model.empty()) forest.AddTree(std::move(model));
  return PublishCompiled(name, ModelKind::kTree, std::move(forest));
}

Result<uint32_t> ModelRegistry::PublishFromFile(const std::string& name,
                                                const std::string& path) {
  TS_ASSIGN_OR_RETURN(ModelKind kind, ReadModelFileKind(path));
  switch (kind) {
    case ModelKind::kTree: {
      TreeModel tree;
      TS_RETURN_IF_ERROR(LoadFromFile(path, &tree));
      return Publish(name, std::move(tree));
    }
    case ModelKind::kForest: {
      ForestModel forest;
      TS_RETURN_IF_ERROR(LoadFromFile(path, &forest));
      return Publish(name, std::move(forest));
    }
    case ModelKind::kDeepForest:
      return Status::InvalidArgument(
          path + ": deep-forest models are not servable by the row "
                 "prediction server; load it with LoadFromFile and use "
                 "CompiledCascade directly");
  }
  return Status::Internal("unreachable model kind");
}

std::shared_ptr<const ServedModel> ModelRegistry::Current(
    const std::string& name) const {
  Entry* entry = FindEntry(name);
  if (entry == nullptr) return nullptr;
  std::lock_guard<std::mutex> lock(entry->mu);
  return entry->current;
}

std::shared_ptr<const ServedModel> ModelRegistry::Version(
    const std::string& name, uint32_t version) const {
  Entry* entry = FindEntry(name);
  if (entry == nullptr) return nullptr;
  std::lock_guard<std::mutex> lock(entry->mu);
  auto it = entry->versions.find(version);
  return it == entry->versions.end() ? nullptr : it->second;
}

Status ModelRegistry::SaveCurrent(const std::string& name,
                                  const std::string& path) const {
  std::shared_ptr<const ServedModel> served = Current(name);
  if (served == nullptr) {
    return Status::NotFound("no published model named " + name);
  }
  if (served->kind == ModelKind::kTree) {
    // Round-trip as a tree file so PublishFromFile restores the kind.
    return SaveToFile(served->source->tree(0), path);
  }
  return SaveToFile(*served->source, path);
}

size_t ModelRegistry::RetireOldVersions(const std::string& name,
                                        size_t keep_latest) {
  Entry* entry = FindEntry(name);
  if (entry == nullptr) return 0;
  if (keep_latest == 0) keep_latest = 1;
  std::lock_guard<std::mutex> lock(entry->mu);
  size_t retired = 0;
  while (entry->versions.size() > keep_latest) {
    entry->versions.erase(entry->versions.begin());
    ++retired;
  }
  return retired;
}

Result<uint32_t> ModelRegistry::Rollback(const std::string& name) {
  Entry* entry = FindEntry(name);
  if (entry == nullptr) {
    return Status::NotFound("no published model named " + name);
  }
  std::lock_guard<std::mutex> lock(entry->mu);
  if (entry->current == nullptr) {
    return Status::NotFound("no published model named " + name);
  }
  auto it = entry->versions.find(entry->current->version);
  if (it == entry->versions.begin() || it == entry->versions.end()) {
    return Status::FailedPrecondition(
        name + ": no older version to roll back to");
  }
  auto prev = std::prev(it);
  entry->current = prev->second;
  // Erase the rolled-back version so a later Rollback cannot bounce
  // forward to it; requests in flight keep it alive via shared_ptr.
  entry->versions.erase(it);
  return entry->current->version;
}

std::vector<ModelRegistry::ModelStatusInfo> ModelRegistry::StatusSnapshot()
    const {
  std::vector<std::pair<std::string, Entry*>> slots;
  {
    std::lock_guard<std::mutex> lock(mu_);
    slots.reserve(entries_.size());
    for (const auto& [name, entry] : entries_) {
      slots.emplace_back(name, entry.get());
    }
  }
  std::vector<ModelStatusInfo> out;
  out.reserve(slots.size());
  for (const auto& [name, entry] : slots) {
    std::lock_guard<std::mutex> lock(entry->mu);
    if (entry->current == nullptr) continue;
    ModelStatusInfo info;
    info.name = name;
    info.version = entry->current->version;
    info.num_versions = entry->versions.size();
    info.kind = entry->current->kind;
    info.layout = entry->current->layout;
    out.push_back(std::move(info));
  }
  return out;
}

std::vector<std::string> ModelRegistry::ModelNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) names.push_back(name);
  return names;
}

Status ModelRegistry::SetDefaultLayout(NodeLayout layout) {
  if (layout == NodeLayout::kQuantized) {
    return Status::InvalidArgument(
        "quantized layout is bulk-scoring only (needs the serving table's "
        "bin index); the server accepts soa or packed");
  }
  std::lock_guard<std::mutex> lock(mu_);
  default_layout_ = layout;
  return Status::OK();
}

NodeLayout ModelRegistry::default_layout() const {
  std::lock_guard<std::mutex> lock(mu_);
  return default_layout_;
}

size_t ModelRegistry::NumVersions(const std::string& name) const {
  Entry* entry = FindEntry(name);
  if (entry == nullptr) return 0;
  std::lock_guard<std::mutex> lock(entry->mu);
  return entry->versions.size();
}

}  // namespace treeserver
