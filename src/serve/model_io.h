#ifndef TREESERVER_SERVE_MODEL_IO_H_
#define TREESERVER_SERVE_MODEL_IO_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "deepforest/deep_forest.h"
#include "forest/forest.h"
#include "tree/model.h"

namespace treeserver {

/// What a model file holds.
enum class ModelKind : uint8_t {
  kTree = 0,
  kForest = 1,
  kDeepForest = 2,
};

const char* ModelKindName(ModelKind kind);

/// Model files open with a fixed header so stale/foreign files are
/// rejected with a clear error instead of garbage deserialization:
///
///   uint32 magic ("TSRM"), uint32 format version, uint8 model kind,
///   then the model's Serialize() payload.
inline constexpr uint32_t kModelFileMagic = 0x4D525354;  // "TSRM" on disk
inline constexpr uint32_t kModelFormatVersion = 1;

/// Atomic (write-temp-then-rename) save of a serialized model with the
/// file header. Returns IOError on filesystem failures.
Status SaveToFile(const TreeModel& model, const std::string& path);
Status SaveToFile(const ForestModel& model, const std::string& path);
Status SaveToFile(const DeepForestModel& model, const std::string& path);

/// Loads a model saved by the matching SaveToFile. Errors:
///   - IOError: file unreadable
///   - Corruption: bad magic, truncated payload, or trailing bytes
///   - InvalidArgument: unsupported future format version, or the file
///     holds a different model kind than requested
Status LoadFromFile(const std::string& path, TreeModel* out);
Status LoadFromFile(const std::string& path, ForestModel* out);
Status LoadFromFile(const std::string& path, DeepForestModel* out);

/// Reads just the header and reports what the file holds (used by the
/// registry to dispatch PublishFromFile).
Result<ModelKind> ReadModelFileKind(const std::string& path);

}  // namespace treeserver

#endif  // TREESERVER_SERVE_MODEL_IO_H_
