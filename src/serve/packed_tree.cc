#include "serve/packed_tree.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/logging.h"
#include "serve/compiled_model.h"

namespace treeserver {

namespace {
constexpr uint64_t kCatBit = uint64_t{1} << 20;
constexpr uint32_t kDepthMask = 0x3FF;  // bits 21..30
}  // namespace

std::shared_ptr<const PackedTree> PackedTree::Pack(const CompiledTree& tree) {
  return PackImpl(tree, nullptr);
}

std::shared_ptr<const PackedTree> PackedTree::PackQuantized(
    const CompiledTree& tree, const BinnedTable& binned) {
  return PackImpl(tree, &binned);
}

std::shared_ptr<const PackedTree> PackedTree::PackImpl(
    const CompiledTree& tree, const BinnedTable* binned) {
  const size_t n = tree.num_nodes();
  if (n == 0 || n >= 0xFFFFFFFFull) return nullptr;

  // Breadth-first order; enqueueing both children together makes
  // right = left + 1 hold by construction.
  std::vector<int32_t> order;
  std::vector<int32_t> newid(n, -1);
  order.reserve(n);
  order.push_back(0);
  newid[0] = 0;
  for (size_t q = 0; q < order.size(); ++q) {
    const int32_t old = order[q];
    if (tree.raw_col(old) < 0) continue;  // leaf
    const int32_t l = tree.raw_left(old);
    const int32_t r = tree.raw_right(old);
    newid[l] = static_cast<int32_t>(order.size());
    order.push_back(l);
    newid[r] = static_cast<int32_t>(order.size());
    order.push_back(r);
  }

  std::shared_ptr<PackedTree> out(new PackedTree());
  out->quantized_ = binned != nullptr;
  // Dummy byte at route offset 0: numeric nodes' unconditional (then
  // discarded) route-table load lands here.
  if (binned != nullptr) out->route_pool_.push_back(0);
  out->num_classes_ = tree.num_classes();
  const size_t m = order.size();
  const size_t k = static_cast<size_t>(out->num_classes_);
  out->words_.reserve(2 * m);
  out->label_.reserve(m);
  out->value_.reserve(m);
  if (tree.kind() == TaskKind::kClassification) out->pmf_pool_.reserve(m * k);

  // Quantized leaves must carry a dereferenceable column id for the
  // branchless walker; any used column works (every used column has a
  // ucodes array). A single-leaf tree has none, but also depth 0, so
  // the walker never reads a node there.
  const uint32_t safe_col =
      tree.used_columns().empty()
          ? 0
          : static_cast<uint32_t>(tree.used_columns().front());

  for (size_t q = 0; q < m; ++q) {
    const int32_t old = order[q];
    const int32_t col = tree.raw_col(old);
    const uint32_t depth = tree.raw_depth(old);
    if (depth > static_cast<uint32_t>(kMaxDepth)) return nullptr;
    out->tree_depth_ = std::max(out->tree_depth_, depth);
    uint64_t meta = uint64_t{depth} << 21;
    uint64_t aux = 0;
    if (col < 0) {
      if (binned != nullptr) {
        // Self-loop: code <= 0xFFFF always routes "left", i.e. back
        // here, and the stop route parks here too.
        meta |= safe_col | (uint64_t{static_cast<uint32_t>(q)} << 32);
        aux = 0xFFFF;
      } else {
        meta |= kLeafCol;
      }
    } else {
      if (col >= static_cast<int32_t>(kLeafCol)) return nullptr;
      const uint32_t left = static_cast<uint32_t>(newid[tree.raw_left(old)]);
      TS_DCHECK(newid[tree.raw_right(old)] ==
                static_cast<int32_t>(left) + 1);
      meta |= static_cast<uint32_t>(col) | (uint64_t{left} << 32);
      if (tree.raw_is_cat(old)) {
        meta |= kCatBit;
        const uint32_t words = tree.raw_cat_words(old);
        const uint64_t* src =
            tree.raw_cat_pool().data() + tree.raw_cat_offset(old);
        if (binned != nullptr) {
          // Byte route table: 0 = left mask, 1 = right mask, 2 = stop
          // (unseen), with a stop sentinel at slot `cap` so clamped
          // out-of-range / missing codes land on it. Context codes are
          // uint16, so caps beyond the code space cannot quantize.
          // cap sits in aux bits 16..31 and the table offset in bits
          // 32..63; numeric nodes leave both zero, so their clamped
          // route load harmlessly hits the dummy byte at offset 0.
          const uint32_t cap = words * 64;
          if (cap > RowBlockContext::kStopCode) return nullptr;
          const uint32_t off = static_cast<uint32_t>(out->route_pool_.size());
          out->route_pool_.resize(off + cap + 1, 2);
          for (uint32_t c = 0; c < cap; ++c) {
            const uint64_t bit = uint64_t{1} << (c & 63);
            if (src[c >> 6] & bit) {
              out->route_pool_[off + c] = 0;
            } else if (src[words + (c >> 6)] & bit) {
              out->route_pool_[off + c] = 1;
            }
          }
          aux = (uint64_t{off} << 32) | (uint64_t{cap} << 16);
        } else {
          const uint32_t off = static_cast<uint32_t>(out->cat_pool_.size());
          out->cat_pool_.insert(out->cat_pool_.end(), src, src + 2 * words);
          aux = (uint64_t{words} << 32) | off;
        }
      } else if (binned != nullptr) {
        // Quantization is only exact when the threshold IS a bin
        // upper of the serving table: then `v <= thr` and
        // `code(v) <= code(thr)` agree for every value in the table.
        const BinnedColumn* bc = binned->column(col);
        if (bc == nullptr) return nullptr;
        const double thr = tree.raw_threshold(old);
        if (std::isnan(thr)) return nullptr;
        const uint16_t code = bc->CodeOf(thr);
        if (code >= bc->num_bins() || bc->upper(code) != thr) return nullptr;
        aux = code;
      } else {
        aux = std::bit_cast<uint64_t>(tree.raw_threshold(old));
      }
    }
    out->words_.push_back(meta);
    out->words_.push_back(aux);
    out->label_.push_back(tree.raw_label(old));
    out->value_.push_back(tree.raw_value(old));
    if (tree.kind() == TaskKind::kClassification) {
      const float* pmf = tree.raw_pmf_pool().data() + old * k;
      out->pmf_pool_.insert(out->pmf_pool_.end(), pmf, pmf + k);
    }
  }
  return out;
}

void PackedTree::RouteRows(const RowBlockContext& ctx, const uint32_t* rows,
                           size_t n, int max_depth,
                           int32_t* out_nodes) const {
  if (quantized_) {
    RouteRowsQuantized(ctx, rows, n, max_depth, out_nodes);
    return;
  }
  const uint64_t* words = words_.data();
  const uint64_t* catp = cat_pool_.data();
  const uint32_t depth_limit =
      max_depth < 0 ? 0xFFFFFFFFu : static_cast<uint32_t>(max_depth);

  uint32_t lrow[kLanes];
  int32_t lid[kLanes];
  size_t lout[kLanes];
  int active = 0;
  size_t next = 0;
  while (next < n && active < kLanes) {
    lrow[active] = rows[next];
    lid[active] = 0;
    lout[active] = next;
    ++active;
    ++next;
  }

  // One tree level per sweep, kLanes rows in flight: the prefetch of
  // each lane's next node overlaps the compute of the other lanes, so
  // throughput is bounded by memory-level parallelism instead of one
  // serial miss chain per row.
  while (active > 0) {
    for (int l = 0; l < active;) {
      const int32_t id = lid[l];
      const uint64_t m = words[2 * id];
      const uint32_t col = static_cast<uint32_t>(m) & kLeafCol;
      int32_t nxt = -1;
      if (col != kLeafCol &&
          ((static_cast<uint32_t>(m) >> 21) & kDepthMask) < depth_limit) {
        const int32_t left = static_cast<int32_t>(m >> 32);
        const uint64_t aux = words[2 * id + 1];
        if ((m & kCatBit) == 0) {
          const double v = ctx.numeric[col][lrow[l]];
          if (!std::isnan(v)) {
            nxt = v <= std::bit_cast<double>(aux) ? left : left + 1;
          }
        } else {
          const int32_t code = ctx.category[col][lrow[l]];
          if (code >= 0) {
            const uint32_t nwords = static_cast<uint32_t>(aux >> 32);
            const uint32_t word = static_cast<uint32_t>(code) >> 6;
            if (word < nwords) {
              const uint64_t* masks = catp + static_cast<uint32_t>(aux);
              const uint64_t bit = uint64_t{1} << (code & 63);
              if (masks[word] & bit) {
                nxt = left;
              } else if (masks[nwords + word] & bit) {
                nxt = left + 1;
              }
            }
          }
        }
      }
      if (nxt < 0) {  // stop here: leaf / depth / missing / unseen
        out_nodes[lout[l]] = id;
        if (next < n) {
          lrow[l] = rows[next];
          lid[l] = 0;
          lout[l] = next;
          ++next;
        } else {
          --active;
          lrow[l] = lrow[active];
          lid[l] = lid[active];
          lout[l] = lout[active];
        }
        continue;  // re-sweep the refilled / swapped-in lane
      }
      lid[l] = nxt;
      __builtin_prefetch(words + 2 * nxt, 0, 3);
      ++l;
    }
  }
}

void PackedTree::RouteRowsQuantized(const RowBlockContext& ctx,
                                    const uint32_t* rows, size_t n,
                                    int max_depth,
                                    int32_t* out_nodes) const {
  const uint32_t depth_limit =
      max_depth < 0 ? tree_depth_
                    : std::min(tree_depth_, static_cast<uint32_t>(max_depth));
  if (depth_limit == 0 || n == 0) {
    for (size_t i = 0; i < n; ++i) out_nodes[i] = 0;
    return;
  }
  const uint64_t* words = words_.data();
  const uint8_t* routes = route_pool_.data();
  const uint16_t* const* ucodes = ctx.ucodes.data();

  // One tree level per sweep over a block of rows. Every step is the
  // same few conditional-move instructions — no leaf / depth / missing
  // branches to mispredict — and consecutive rows are independent, so
  // the out-of-order window keeps many code/node loads in flight.
  // Parked rows (leaf, missing, unseen category, depth cutoff) self-
  // loop on L1-resident node words until the sweeps run out.
  constexpr size_t kBlock = 2048;
  int32_t id[kBlock];
  for (size_t begin = 0; begin < n; begin += kBlock) {
    const size_t m = std::min(kBlock, n - begin);
    const uint32_t* brows = rows + begin;
    for (size_t i = 0; i < m; ++i) id[i] = 0;
    for (uint32_t d = 0; d < depth_limit; ++d) {
      for (size_t i = 0; i < m; ++i) {
        const int32_t cur = id[i];
        const uint64_t meta = words[2 * cur];
        const uint64_t aux = words[2 * cur + 1];
        const uint32_t col = static_cast<uint32_t>(meta) & kLeafCol;
        const int32_t left = static_cast<int32_t>(meta >> 32);
        const uint16_t code = ucodes[col][brows[i]];
        // Leaf / missing / depth handling is folded into the encoding
        // (missing is always kStopCode after BuildContext), so the
        // only data-dependent branch left is the per-node split type,
        // which the predictor learns well on real trees (numeric
        // splits dominate); everything else is conditional moves.
        uint32_t route;
        if ((meta & kCatBit) == 0) {
          route = code <= (static_cast<uint32_t>(aux) & 0xFFFFu) ? 0u : 1u;
          route = code == RowBlockContext::kStopCode ? 2u : route;
        } else {
          const uint32_t cap = static_cast<uint32_t>(aux) >> 16;
          const uint32_t slot = code < cap ? code : cap;
          route = routes[static_cast<uint32_t>(aux >> 32) + slot];
        }
        id[i] = route == 2u ? cur : left + static_cast<int32_t>(route);
      }
    }
    for (size_t i = 0; i < m; ++i) out_nodes[begin + i] = id[i];
  }
}

size_t PackedTree::ByteSize() const {
  return words_.size() * sizeof(uint64_t) +
         cat_pool_.size() * sizeof(uint64_t) + route_pool_.size() +
         pmf_pool_.size() * sizeof(float) + label_.size() * sizeof(int32_t) +
         value_.size() * sizeof(double);
}

}  // namespace treeserver
