#include "serve/model_io.h"

#include <cstdio>

#include "common/serial.h"

namespace treeserver {

const char* ModelKindName(ModelKind kind) {
  switch (kind) {
    case ModelKind::kTree:
      return "tree";
    case ModelKind::kForest:
      return "forest";
    case ModelKind::kDeepForest:
      return "deep-forest";
  }
  return "?";
}

namespace {

Status WriteFileAtomic(const std::string& path, const std::string& bytes) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("cannot open " + tmp + " for writing");
  }
  size_t written = bytes.empty() ? 0 : std::fwrite(bytes.data(), 1, bytes.size(), f);
  const bool flushed = std::fclose(f) == 0;
  if (written != bytes.size() || !flushed) {
    std::remove(tmp.c_str());
    return Status::IOError("short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IOError("cannot rename " + tmp + " to " + path);
  }
  return Status::OK();
}

Status ReadFile(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IOError("cannot open " + path);
  }
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  if (size < 0) {
    std::fclose(f);
    return Status::IOError("cannot stat " + path);
  }
  out->resize(static_cast<size_t>(size));
  size_t read = size == 0 ? 0 : std::fread(out->data(), 1, out->size(), f);
  std::fclose(f);
  if (read != out->size()) {
    return Status::IOError("short read from " + path);
  }
  return Status::OK();
}

template <typename Model>
Status SaveModel(const Model& model, ModelKind kind, const std::string& path) {
  BinaryWriter w;
  w.Write(kModelFileMagic);
  w.Write(kModelFormatVersion);
  w.Write(static_cast<uint8_t>(kind));
  model.Serialize(&w);
  return WriteFileAtomic(path, w.buffer());
}

/// Validates the header; on success leaves `r` positioned at the
/// payload.
Status CheckHeader(const std::string& path, BinaryReader* r,
                   ModelKind expected) {
  uint32_t magic = 0;
  uint32_t version = 0;
  uint8_t kind = 0;
  if (!r->Read(&magic).ok() || !r->Read(&version).ok() ||
      !r->Read(&kind).ok()) {
    return Status::Corruption(path + ": truncated model file header");
  }
  if (magic != kModelFileMagic) {
    return Status::Corruption(path + ": not a TreeServer model file "
                                     "(bad magic)");
  }
  if (version == 0 || version > kModelFormatVersion) {
    return Status::InvalidArgument(
        path + ": unsupported model format version " +
        std::to_string(version) + " (this build reads up to " +
        std::to_string(kModelFormatVersion) + ")");
  }
  if (kind > static_cast<uint8_t>(ModelKind::kDeepForest)) {
    return Status::Corruption(path + ": unknown model kind byte " +
                              std::to_string(kind));
  }
  if (static_cast<ModelKind>(kind) != expected) {
    return Status::InvalidArgument(
        path + ": file holds a " +
        ModelKindName(static_cast<ModelKind>(kind)) + " model, expected " +
        ModelKindName(expected));
  }
  return Status::OK();
}

template <typename Model>
Status LoadModel(const std::string& path, ModelKind kind, Model* out) {
  std::string bytes;
  TS_RETURN_IF_ERROR(ReadFile(path, &bytes));
  BinaryReader r(bytes);
  TS_RETURN_IF_ERROR(CheckHeader(path, &r, kind));
  Status st = Model::Deserialize(&r, out);
  if (!st.ok()) {
    return Status::Corruption(path + ": " + st.message() +
                              " (truncated or corrupt payload)");
  }
  if (!r.AtEnd()) {
    return Status::Corruption(path + ": trailing bytes after model payload");
  }
  return Status::OK();
}

}  // namespace

Status SaveToFile(const TreeModel& model, const std::string& path) {
  return SaveModel(model, ModelKind::kTree, path);
}

Status SaveToFile(const ForestModel& model, const std::string& path) {
  return SaveModel(model, ModelKind::kForest, path);
}

Status SaveToFile(const DeepForestModel& model, const std::string& path) {
  return SaveModel(model, ModelKind::kDeepForest, path);
}

Status LoadFromFile(const std::string& path, TreeModel* out) {
  return LoadModel(path, ModelKind::kTree, out);
}

Status LoadFromFile(const std::string& path, ForestModel* out) {
  return LoadModel(path, ModelKind::kForest, out);
}

Status LoadFromFile(const std::string& path, DeepForestModel* out) {
  return LoadModel(path, ModelKind::kDeepForest, out);
}

Result<ModelKind> ReadModelFileKind(const std::string& path) {
  std::string bytes;
  TS_RETURN_IF_ERROR(ReadFile(path, &bytes));
  BinaryReader r(bytes);
  uint32_t magic = 0;
  uint32_t version = 0;
  uint8_t kind = 0;
  if (!r.Read(&magic).ok() || !r.Read(&version).ok() || !r.Read(&kind).ok()) {
    return Status::Corruption(path + ": truncated model file header");
  }
  if (magic != kModelFileMagic) {
    return Status::Corruption(path + ": not a TreeServer model file");
  }
  if (version == 0 || version > kModelFormatVersion) {
    return Status::InvalidArgument(path + ": unsupported model format version " +
                                   std::to_string(version));
  }
  if (kind > static_cast<uint8_t>(ModelKind::kDeepForest)) {
    return Status::Corruption(path + ": unknown model kind byte " +
                              std::to_string(kind));
  }
  return static_cast<ModelKind>(kind);
}

}  // namespace treeserver
