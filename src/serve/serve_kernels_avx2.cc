// AVX2 twins of the element-wise serve kernels. Compiled with -mavx2
// (src/CMakeLists.txt) and empty unless TS_SIMD is ON on x86-64.
// Every loop below performs exactly one IEEE op per element, same as
// the scalar twin — no horizontal reductions, no reassociation — so
// the results are bit-identical.
#include "serve/serve_kernels.h"

#if TS_SIMD_ENABLED && (defined(__x86_64__) || defined(_M_X64))

#include <immintrin.h>

namespace treeserver {
namespace servek {

void AddIndexedPmfAvx2(float* out, const int32_t* nodes, size_t n, size_t k,
                       const float* pool) {
  for (size_t i = 0; i < n; ++i) {
    const float* p = pool + static_cast<size_t>(nodes[i]) * k;
    float* o = out + i * k;
    size_t c = 0;
    for (; c + 8 <= k; c += 8) {
      _mm256_storeu_ps(o + c, _mm256_add_ps(_mm256_loadu_ps(o + c),
                                            _mm256_loadu_ps(p + c)));
    }
    for (; c < k; ++c) o[c] += p[c];
  }
}

void AddIndexedValueAvx2(double* out, const int32_t* nodes, size_t n,
                         const double* pool) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i idx =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(nodes + i));
    const __m256d vals = _mm256_i32gather_pd(pool, idx, 8);
    _mm256_storeu_pd(out + i, _mm256_add_pd(_mm256_loadu_pd(out + i), vals));
  }
  for (; i < n; ++i) out[i] += pool[nodes[i]];
}

void ScaleF32Avx2(float* v, size_t n, float s) {
  const __m256 vs = _mm256_set1_ps(s);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(v + i, _mm256_mul_ps(_mm256_loadu_ps(v + i), vs));
  }
  for (; i < n; ++i) v[i] *= s;
}

void DivF64Avx2(double* v, size_t n, double d) {
  const __m256d vd = _mm256_set1_pd(d);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(v + i, _mm256_div_pd(_mm256_loadu_pd(v + i), vd));
  }
  for (; i < n; ++i) v[i] /= d;
}

}  // namespace servek
}  // namespace treeserver

#endif  // TS_SIMD_ENABLED && x86-64
