#ifndef TREESERVER_SERVE_LAYOUT_H_
#define TREESERVER_SERVE_LAYOUT_H_

#include <cstdint>

namespace treeserver {

/// Node-table layout a compiled model serves from. Every layout routes
/// every row to exactly the same node as TreeModel::Traverse — layouts
/// trade memory footprint for speed, never accuracy.
enum class NodeLayout : uint8_t {
  /// Structure-of-arrays (the original CompiledTree tables). Always
  /// available; the layout every model starts in.
  kSoa = 0,
  /// Bit-packed 16-byte nodes in breadth-first order with the
  /// right = left + 1 convention (serve/packed_tree.h), walked by the
  /// interleaved multi-row traversal with software prefetch.
  kPacked = 1,
  /// Packed nodes whose numeric thresholds are quantized to bin codes
  /// of a serving-table BinnedTable: the double compare becomes a
  /// uint16 compare against the row's precomputed bin code. Only valid
  /// for bulk scoring against the stationary table the BinnedTable was
  /// built from; trees whose thresholds don't all fall on bin uppers
  /// fall back to kPacked tree by tree.
  kQuantized = 2,
};

inline const char* NodeLayoutName(NodeLayout layout) {
  switch (layout) {
    case NodeLayout::kSoa:
      return "soa";
    case NodeLayout::kPacked:
      return "packed";
    case NodeLayout::kQuantized:
      return "quantized";
  }
  return "unknown";
}

/// Parses "soa" | "packed" | "quantized"; false on anything else.
inline bool ParseNodeLayout(const char* s, NodeLayout* out) {
  if (s == nullptr) return false;
  const auto eq = [s](const char* t) {
    const char* a = s;
    while (*a && *t && *a == *t) {
      ++a;
      ++t;
    }
    return *a == '\0' && *t == '\0';
  };
  if (eq("soa")) {
    *out = NodeLayout::kSoa;
    return true;
  }
  if (eq("packed")) {
    *out = NodeLayout::kPacked;
    return true;
  }
  if (eq("quantized")) {
    *out = NodeLayout::kQuantized;
    return true;
  }
  return false;
}

}  // namespace treeserver

#endif  // TREESERVER_SERVE_LAYOUT_H_
