#include "serve/serve_kernels.h"

#include "common/simd.h"

namespace treeserver {
namespace servek {

void AddIndexedPmfScalar(float* out, const int32_t* nodes, size_t n, size_t k,
                         const float* pool) {
  for (size_t i = 0; i < n; ++i) {
    const float* p = pool + static_cast<size_t>(nodes[i]) * k;
    float* o = out + i * k;
    for (size_t c = 0; c < k; ++c) o[c] += p[c];
  }
}

void AddIndexedValueScalar(double* out, const int32_t* nodes, size_t n,
                           const double* pool) {
  for (size_t i = 0; i < n; ++i) out[i] += pool[nodes[i]];
}

void ScaleF32Scalar(float* v, size_t n, float s) {
  for (size_t i = 0; i < n; ++i) v[i] *= s;
}

void DivF64Scalar(double* v, size_t n, double d) {
  for (size_t i = 0; i < n; ++i) v[i] /= d;
}

namespace {

inline bool UseAvx2() {
#if TS_SIMD_ENABLED && (defined(__x86_64__) || defined(_M_X64))
  return ActiveSimdLevel() == SimdLevel::kAvx2;
#else
  return false;
#endif
}

}  // namespace

void AddIndexedPmf(float* out, const int32_t* nodes, size_t n, size_t k,
                   const float* pool) {
#if TS_SIMD_ENABLED && (defined(__x86_64__) || defined(_M_X64))
  if (UseAvx2()) {
    AddIndexedPmfAvx2(out, nodes, n, k, pool);
    return;
  }
#endif
  AddIndexedPmfScalar(out, nodes, n, k, pool);
}

void AddIndexedValue(double* out, const int32_t* nodes, size_t n,
                     const double* pool) {
#if TS_SIMD_ENABLED && (defined(__x86_64__) || defined(_M_X64))
  if (UseAvx2()) {
    AddIndexedValueAvx2(out, nodes, n, pool);
    return;
  }
#endif
  AddIndexedValueScalar(out, nodes, n, pool);
}

void ScaleF32(float* v, size_t n, float s) {
#if TS_SIMD_ENABLED && (defined(__x86_64__) || defined(_M_X64))
  if (UseAvx2()) {
    ScaleF32Avx2(v, n, s);
    return;
  }
#endif
  ScaleF32Scalar(v, n, s);
}

void DivF64(double* v, size_t n, double d) {
#if TS_SIMD_ENABLED && (defined(__x86_64__) || defined(_M_X64))
  if (UseAvx2()) {
    DivF64Avx2(v, n, d);
    return;
  }
#endif
  DivF64Scalar(v, n, d);
}

}  // namespace servek
}  // namespace treeserver
