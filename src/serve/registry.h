#ifndef TREESERVER_SERVE_REGISTRY_H_
#define TREESERVER_SERVE_REGISTRY_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "serve/compiled_model.h"
#include "serve/model_io.h"

namespace treeserver {

/// One immutable published model version: the compiled predictor the
/// server traverses plus the source model it was compiled from (kept
/// for save-to-file and introspection). Shared out as
/// shared_ptr<const ServedModel>; requests in flight keep their
/// version alive across hot-swaps.
struct ServedModel {
  std::string name;
  uint32_t version = 0;
  ModelKind kind = ModelKind::kForest;
  CompiledForest compiled;
  /// Node layout `compiled` serves from (the registry default at
  /// publish time; layouts are byte-parity so this only affects speed).
  NodeLayout layout = NodeLayout::kSoa;
  std::shared_ptr<const ForestModel> source;
};

/// Versioned, name-keyed model registry for the inference server.
///
/// Publish() compiles the model outside any lock and installs it as
/// the current version with a single pointer swap under a short
/// per-entry mutex, so a newly trained forest goes live while requests
/// against the previous version are still in flight — in-flight
/// batches keep serving the version they resolved via shared_ptr. All
/// versions stay addressable until retired.
class ModelRegistry {
 public:
  ModelRegistry() = default;
  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

  /// Compiles and installs `model` as the next version of `name`
  /// (versions start at 1). Returns the new version number.
  Result<uint32_t> Publish(const std::string& name, ForestModel model);
  /// A single decision tree, served with forest-of-one semantics.
  Result<uint32_t> Publish(const std::string& name, TreeModel model);
  /// Loads a tree or forest model file (see serve/model_io.h) and
  /// publishes it. Deep-forest files are rejected: the row server
  /// serves tabular models.
  Result<uint32_t> PublishFromFile(const std::string& name,
                                   const std::string& path);

  /// Node layout future publishes compile into (`--node-layout`).
  /// Only kSoa and kPacked are accepted: kQuantized routes on
  /// precomputed bin codes of one stationary table, which an ad-hoc
  /// request server does not have. Already-published versions keep
  /// their layout.
  Status SetDefaultLayout(NodeLayout layout);
  NodeLayout default_layout() const;

  /// Current version of a model; nullptr when the name is unknown.
  /// Costs one brief per-entry lock (taken once per batch, not per
  /// row); publishers hold it only for the pointer swap.
  std::shared_ptr<const ServedModel> Current(const std::string& name) const;
  /// A specific pinned version; nullptr if unknown/retired.
  std::shared_ptr<const ServedModel> Version(const std::string& name,
                                             uint32_t version) const;

  /// Writes the current version's source model to `path` with the
  /// model file header.
  Status SaveCurrent(const std::string& name, const std::string& path) const;

  /// Drops pinned versions older than `keep_latest` (the current
  /// version is never dropped). Returns the number retired. In-flight
  /// requests holding a retired version keep it alive via shared_ptr.
  size_t RetireOldVersions(const std::string& name, size_t keep_latest = 1);

  /// Reverts `name` to the newest pinned version older than the
  /// current one and erases the rolled-back version from the history
  /// (in-flight requests holding it keep it alive). Returns the
  /// version now current; FailedPrecondition when there is no older
  /// version to fall back to.
  Result<uint32_t> Rollback(const std::string& name);

  /// One row of the /statusz model-version table.
  struct ModelStatusInfo {
    std::string name;
    uint32_t version = 0;  // current
    size_t num_versions = 0;
    ModelKind kind = ModelKind::kForest;
    NodeLayout layout = NodeLayout::kSoa;
  };
  /// Current version + history depth for every registered model,
  /// sorted by name.
  std::vector<ModelStatusInfo> StatusSnapshot() const;

  std::vector<std::string> ModelNames() const;
  /// Number of pinned (non-retired) versions; 0 for unknown names.
  size_t NumVersions(const std::string& name) const;

 private:
  struct Entry {
    mutable std::mutex mu;
    /// Hot-swap slot read by the serving path; swapped under `mu`.
    std::shared_ptr<const ServedModel> current;
    /// Publisher-side state: version history and the next number.
    uint32_t next_version = 1;
    std::map<uint32_t, std::shared_ptr<const ServedModel>> versions;
  };

  Entry* GetOrCreateEntry(const std::string& name);
  Entry* FindEntry(const std::string& name) const;

  Result<uint32_t> PublishCompiled(const std::string& name, ModelKind kind,
                                   ForestModel model);

  mutable std::mutex mu_;  // guards the name -> entry map shape
  std::map<std::string, std::unique_ptr<Entry>> entries_;
  NodeLayout default_layout_ = NodeLayout::kSoa;  // guarded by mu_
};

}  // namespace treeserver

#endif  // TREESERVER_SERVE_REGISTRY_H_
