#ifndef TREESERVER_SERVE_COMPILED_MODEL_H_
#define TREESERVER_SERVE_COMPILED_MODEL_H_

#include <cstdint>
#include <vector>

#include <memory>

#include "deepforest/deep_forest.h"
#include "forest/forest.h"
#include "serve/layout.h"
#include "serve/packed_tree.h"
#include "table/binned.h"
#include "table/data_table.h"
#include "table/datasets.h"
#include "tree/model.h"

namespace treeserver {

/// Raw column pointers for one table, resolved once per row block so
/// the traversal inner loop never touches a shared_ptr or a Column
/// accessor. Only the columns a compiled model actually splits on are
/// filled; the rest stay null (gathered subset tables may hold null
/// columns outside the candidate set).
struct RowBlockContext {
  std::vector<const double*> numeric;    // indexed by column id
  std::vector<const int32_t*> category;  // indexed by column id
  // Quantized layout only: one uint16 code array per used column —
  // numeric columns carry their serving-table bin codes, categorical
  // columns their category codes — so the level walker reads every
  // split input through one uniform pointer table. Codes that must
  // stop the walk at the node (numeric missing, categorical missing /
  // out-of-range) are rewritten to the universal kStopCode sentinel at
  // build time, so the walker needs no per-column stop lookup.
  // `ustorage` owns the arrays that had to be widened, sign-filtered
  // or missing-rewritten.
  static constexpr uint16_t kStopCode = 0xFFFF;
  std::vector<const uint16_t*> ucodes;
  std::vector<std::vector<uint16_t>> ustorage;
};

/// A TreeModel flattened into structure-of-arrays node tables for
/// cache-friendly batched traversal.
///
/// Per-node state lives in parallel vectors (split column, threshold,
/// child offsets, depth, prediction outputs); categorical split sets
/// are compiled into bitmask words in a shared pool, turning the
/// per-step binary search of SplitCondition::RouteCategory into a
/// single bit test; leaf/internal PMFs live in one contiguous float
/// pool. Traversal semantics are *exactly* those of
/// TreeModel::Traverse, including the paper's predict-at-any-depth
/// routes (Appendix D): depth cutoff, missing value, and
/// unseen-category all stop at the current node and report its
/// prediction.
class CompiledTree {
 public:
  /// Flattens a trained (non-empty) tree.
  static CompiledTree Compile(const TreeModel& tree);

  TaskKind kind() const { return kind_; }
  int num_classes() const { return num_classes_; }
  size_t num_nodes() const { return col_.size(); }

  /// Column ids this tree splits on (sorted, unique).
  const std::vector<int32_t>& used_columns() const { return used_columns_; }

  /// Batched traversal: resolves the stop node of each row in `rows`
  /// and writes its index to `out_nodes[i]`. `ctx` must have been
  /// built (BuildContext) against the table the rows refer to. Node
  /// ids are in the ACTIVE layout's numbering (see Repack below).
  void RouteRows(const RowBlockContext& ctx, const uint32_t* rows, size_t n,
                 int max_depth, int32_t* out_nodes) const;

  /// Prediction outputs of a stop node (classification PMF pointer is
  /// `num_classes()` floats). `node` is an id RouteRows emitted, i.e.
  /// in the active layout's numbering.
  const float* node_pmf(int32_t node) const {
    return active_pmf_pool() + static_cast<size_t>(node) * num_classes_;
  }
  int32_t node_label(int32_t node) const { return active_labels()[node]; }
  double node_value(int32_t node) const { return active_values()[node]; }

  /// Fills `ctx` with raw pointers for `columns` of `table`.
  static void BuildContext(const DataTable& table,
                           const std::vector<int32_t>& columns,
                           RowBlockContext* ctx);

  /// Single-row convenience (tests / spot checks); returns the stop
  /// node index, matching TreeModel::Traverse on the same row.
  int32_t RouteRow(const DataTable& table, uint32_t row,
                   int max_depth = -1) const;

  /// Re-encodes the node tables into `want` (serve/layout.h) and
  /// returns the layout actually achieved: kQuantized needs `binned`
  /// (the serving table's bin index) and falls back to kPacked when
  /// any numeric threshold is not exactly a bin upper; kPacked falls
  /// back to kSoa when the tree exceeds the packed field widths.
  /// After a repack, RouteRows emits node ids of the NEW layout — use
  /// the active_* pools below to read predictions.
  NodeLayout Repack(NodeLayout want, const BinnedTable* binned);
  NodeLayout layout() const { return layout_; }

  /// Prediction pools of the active layout, indexed by the node ids
  /// RouteRows emits.
  const float* active_pmf_pool() const {
    return packed_ ? packed_->pmf_pool() : pmf_pool_.data();
  }
  const int32_t* active_labels() const {
    return packed_ ? packed_->labels() : label_.data();
  }
  const double* active_values() const {
    return packed_ ? packed_->values() : value_.data();
  }

  /// Read-only SoA node tables, for PackedTree::Pack and white-box
  /// tests. Indices are the original (pre-repack) node ids.
  int32_t raw_col(int32_t i) const { return col_[i]; }
  bool raw_is_cat(int32_t i) const { return is_cat_[i] != 0; }
  double raw_threshold(int32_t i) const { return threshold_[i]; }
  int32_t raw_left(int32_t i) const { return left_[i]; }
  int32_t raw_right(int32_t i) const { return right_[i]; }
  uint16_t raw_depth(int32_t i) const { return depth_[i]; }
  int32_t raw_label(int32_t i) const { return label_[i]; }
  double raw_value(int32_t i) const { return value_[i]; }
  const std::vector<float>& raw_pmf_pool() const { return pmf_pool_; }
  const std::vector<uint64_t>& raw_cat_pool() const { return cat_pool_; }
  uint32_t raw_cat_offset(int32_t i) const { return cat_offset_[i]; }
  uint32_t raw_cat_words(int32_t i) const { return cat_words_[i]; }

 private:
  TaskKind kind_ = TaskKind::kClassification;
  int num_classes_ = 0;

  // One entry per node, same indices as the source TreeModel.
  std::vector<int32_t> col_;        // split column; -1 marks a leaf
  std::vector<uint8_t> is_cat_;     // 1 = categorical split
  std::vector<double> threshold_;   // numeric splits
  std::vector<int32_t> left_;
  std::vector<int32_t> right_;
  std::vector<uint16_t> depth_;
  std::vector<int32_t> label_;
  std::vector<double> value_;
  std::vector<float> pmf_pool_;     // num_nodes * num_classes

  // Categorical split sets as bitmasks: node i's left set occupies
  // cat_words_[i] uint64 words at cat_offset_[i], immediately followed
  // by its seen set of the same width. A code beyond the mask is, by
  // construction, unseen.
  std::vector<uint32_t> cat_offset_;
  std::vector<uint32_t> cat_words_;
  std::vector<uint64_t> cat_pool_;

  std::vector<int32_t> used_columns_;

  // Non-SoA layouts (serve/packed_tree.h); null while layout_ == kSoa.
  NodeLayout layout_ = NodeLayout::kSoa;
  std::shared_ptr<const PackedTree> packed_;
};

/// A ForestModel compiled for batched serving. Predictions are exactly
/// equal (bit-for-bit, same float accumulation order) to the
/// row-at-a-time ForestModel::PredictPmf / PredictLabel / PredictValue.
class CompiledForest {
 public:
  CompiledForest() = default;

  static CompiledForest Compile(const ForestModel& forest);
  /// A single tree served with forest-of-one semantics.
  static CompiledForest Compile(const TreeModel& tree);

  TaskKind kind() const { return kind_; }
  bool is_classification() const { return kind_ == TaskKind::kClassification; }
  int num_classes() const { return num_classes_; }
  size_t num_trees() const { return trees_.size(); }
  const CompiledTree& tree(size_t i) const { return trees_[i]; }

  /// Batched predictions over the rows `rows[0..n)` of `table`.
  /// `out_pmf` is row-major n x num_classes. All three match the
  /// ForestModel results exactly, including depth-cutoff routes.
  void PredictPmf(const DataTable& table, const uint32_t* rows, size_t n,
                  int max_depth, float* out_pmf) const;
  void PredictLabel(const DataTable& table, const uint32_t* rows, size_t n,
                    int max_depth, int32_t* out_labels) const;
  void PredictValue(const DataTable& table, const uint32_t* rows, size_t n,
                    int max_depth, double* out_values) const;

  /// Whole-table conveniences (rows [0, num_rows)), processed in
  /// cache-sized blocks.
  std::vector<int32_t> PredictLabels(const DataTable& table,
                                     int max_depth = -1) const;
  std::vector<double> PredictValues(const DataTable& table,
                                    int max_depth = -1) const;

  /// Single-row conveniences.
  std::vector<float> PredictPmfRow(const DataTable& table, uint32_t row,
                                   int max_depth = -1) const;
  int32_t PredictLabelRow(const DataTable& table, uint32_t row,
                          int max_depth = -1) const;
  double PredictValueRow(const DataTable& table, uint32_t row,
                         int max_depth = -1) const;

  const std::vector<int32_t>& used_columns() const { return used_columns_; }

  /// Re-encodes every tree into `want` and returns the weakest layout
  /// any tree achieved (they can diverge only via per-tree quantized →
  /// packed fallback). kQuantized requires `binned`, built from the
  /// very table rows will be scored against — it is kept and used to
  /// feed bin codes into every RowBlockContext, so quantized forests
  /// must only serve that stationary table (the bulk-scoring path;
  /// InferenceServer restricts itself to soa|packed). Predictions are
  /// byte-identical across layouts.
  NodeLayout Repack(NodeLayout want,
                    std::shared_ptr<const BinnedTable> binned = nullptr);
  NodeLayout layout() const { return layout_; }

 private:
  void BuildContext(const DataTable& table, RowBlockContext* ctx) const;

  TaskKind kind_ = TaskKind::kClassification;
  int num_classes_ = 0;
  std::vector<CompiledTree> trees_;
  std::vector<int32_t> used_columns_;  // union over trees
  NodeLayout layout_ = NodeLayout::kSoa;
  std::shared_ptr<const BinnedTable> quant_binned_;
};

/// A DeepForestModel (MGS windows + cascade layers) compiled for
/// batched serving: every forest in the pipeline becomes a
/// CompiledForest and re-representation runs through the batched PMF
/// path. Predict() returns exactly the labels of
/// DeepForestModel::Predict on the same images.
class CompiledCascade {
 public:
  static CompiledCascade Compile(const DeepForestModel& model);

  int num_classes() const { return num_classes_; }
  int num_layers() const { return static_cast<int>(cascade_.size()); }

  std::vector<int32_t> Predict(const ImageDataset& images,
                               int num_threads = 1) const;

 private:
  std::vector<int> window_sizes_;
  int stride_ = 2;
  int forests_per_layer_ = 2;
  int num_classes_ = 10;
  std::vector<std::vector<CompiledForest>> mgs_;      // [window][forest]
  std::vector<std::vector<CompiledForest>> cascade_;  // [layer][forest]
};

}  // namespace treeserver

#endif  // TREESERVER_SERVE_COMPILED_MODEL_H_
