#ifndef TREESERVER_SERVE_COMPILED_MODEL_H_
#define TREESERVER_SERVE_COMPILED_MODEL_H_

#include <cstdint>
#include <vector>

#include "deepforest/deep_forest.h"
#include "forest/forest.h"
#include "table/data_table.h"
#include "table/datasets.h"
#include "tree/model.h"

namespace treeserver {

/// Raw column pointers for one table, resolved once per row block so
/// the traversal inner loop never touches a shared_ptr or a Column
/// accessor. Only the columns a compiled model actually splits on are
/// filled; the rest stay null (gathered subset tables may hold null
/// columns outside the candidate set).
struct RowBlockContext {
  std::vector<const double*> numeric;    // indexed by column id
  std::vector<const int32_t*> category;  // indexed by column id
};

/// A TreeModel flattened into structure-of-arrays node tables for
/// cache-friendly batched traversal.
///
/// Per-node state lives in parallel vectors (split column, threshold,
/// child offsets, depth, prediction outputs); categorical split sets
/// are compiled into bitmask words in a shared pool, turning the
/// per-step binary search of SplitCondition::RouteCategory into a
/// single bit test; leaf/internal PMFs live in one contiguous float
/// pool. Traversal semantics are *exactly* those of
/// TreeModel::Traverse, including the paper's predict-at-any-depth
/// routes (Appendix D): depth cutoff, missing value, and
/// unseen-category all stop at the current node and report its
/// prediction.
class CompiledTree {
 public:
  /// Flattens a trained (non-empty) tree.
  static CompiledTree Compile(const TreeModel& tree);

  TaskKind kind() const { return kind_; }
  int num_classes() const { return num_classes_; }
  size_t num_nodes() const { return col_.size(); }

  /// Column ids this tree splits on (sorted, unique).
  const std::vector<int32_t>& used_columns() const { return used_columns_; }

  /// Batched traversal: resolves the stop node of each row in `rows`
  /// and writes its index to `out_nodes[i]`. `ctx` must have been
  /// built (BuildContext) against the table the rows refer to.
  void RouteRows(const RowBlockContext& ctx, const uint32_t* rows, size_t n,
                 int max_depth, int32_t* out_nodes) const;

  /// Prediction outputs of a stop node (classification PMF pointer is
  /// `num_classes()` floats).
  const float* node_pmf(int32_t node) const {
    return pmf_pool_.data() + static_cast<size_t>(node) * num_classes_;
  }
  int32_t node_label(int32_t node) const { return label_[node]; }
  double node_value(int32_t node) const { return value_[node]; }

  /// Fills `ctx` with raw pointers for `columns` of `table`.
  static void BuildContext(const DataTable& table,
                           const std::vector<int32_t>& columns,
                           RowBlockContext* ctx);

  /// Single-row convenience (tests / spot checks); returns the stop
  /// node index, matching TreeModel::Traverse on the same row.
  int32_t RouteRow(const DataTable& table, uint32_t row,
                   int max_depth = -1) const;

 private:
  TaskKind kind_ = TaskKind::kClassification;
  int num_classes_ = 0;

  // One entry per node, same indices as the source TreeModel.
  std::vector<int32_t> col_;        // split column; -1 marks a leaf
  std::vector<uint8_t> is_cat_;     // 1 = categorical split
  std::vector<double> threshold_;   // numeric splits
  std::vector<int32_t> left_;
  std::vector<int32_t> right_;
  std::vector<uint16_t> depth_;
  std::vector<int32_t> label_;
  std::vector<double> value_;
  std::vector<float> pmf_pool_;     // num_nodes * num_classes

  // Categorical split sets as bitmasks: node i's left set occupies
  // cat_words_[i] uint64 words at cat_offset_[i], immediately followed
  // by its seen set of the same width. A code beyond the mask is, by
  // construction, unseen.
  std::vector<uint32_t> cat_offset_;
  std::vector<uint32_t> cat_words_;
  std::vector<uint64_t> cat_pool_;

  std::vector<int32_t> used_columns_;
};

/// A ForestModel compiled for batched serving. Predictions are exactly
/// equal (bit-for-bit, same float accumulation order) to the
/// row-at-a-time ForestModel::PredictPmf / PredictLabel / PredictValue.
class CompiledForest {
 public:
  CompiledForest() = default;

  static CompiledForest Compile(const ForestModel& forest);
  /// A single tree served with forest-of-one semantics.
  static CompiledForest Compile(const TreeModel& tree);

  TaskKind kind() const { return kind_; }
  bool is_classification() const { return kind_ == TaskKind::kClassification; }
  int num_classes() const { return num_classes_; }
  size_t num_trees() const { return trees_.size(); }
  const CompiledTree& tree(size_t i) const { return trees_[i]; }

  /// Batched predictions over the rows `rows[0..n)` of `table`.
  /// `out_pmf` is row-major n x num_classes. All three match the
  /// ForestModel results exactly, including depth-cutoff routes.
  void PredictPmf(const DataTable& table, const uint32_t* rows, size_t n,
                  int max_depth, float* out_pmf) const;
  void PredictLabel(const DataTable& table, const uint32_t* rows, size_t n,
                    int max_depth, int32_t* out_labels) const;
  void PredictValue(const DataTable& table, const uint32_t* rows, size_t n,
                    int max_depth, double* out_values) const;

  /// Whole-table conveniences (rows [0, num_rows)), processed in
  /// cache-sized blocks.
  std::vector<int32_t> PredictLabels(const DataTable& table,
                                     int max_depth = -1) const;
  std::vector<double> PredictValues(const DataTable& table,
                                    int max_depth = -1) const;

  /// Single-row conveniences.
  std::vector<float> PredictPmfRow(const DataTable& table, uint32_t row,
                                   int max_depth = -1) const;
  int32_t PredictLabelRow(const DataTable& table, uint32_t row,
                          int max_depth = -1) const;
  double PredictValueRow(const DataTable& table, uint32_t row,
                         int max_depth = -1) const;

  const std::vector<int32_t>& used_columns() const { return used_columns_; }

 private:
  void BuildContext(const DataTable& table, RowBlockContext* ctx) const {
    CompiledTree::BuildContext(table, used_columns_, ctx);
  }

  TaskKind kind_ = TaskKind::kClassification;
  int num_classes_ = 0;
  std::vector<CompiledTree> trees_;
  std::vector<int32_t> used_columns_;  // union over trees
};

/// A DeepForestModel (MGS windows + cascade layers) compiled for
/// batched serving: every forest in the pipeline becomes a
/// CompiledForest and re-representation runs through the batched PMF
/// path. Predict() returns exactly the labels of
/// DeepForestModel::Predict on the same images.
class CompiledCascade {
 public:
  static CompiledCascade Compile(const DeepForestModel& model);

  int num_classes() const { return num_classes_; }
  int num_layers() const { return static_cast<int>(cascade_.size()); }

  std::vector<int32_t> Predict(const ImageDataset& images,
                               int num_threads = 1) const;

 private:
  std::vector<int> window_sizes_;
  int stride_ = 2;
  int forests_per_layer_ = 2;
  int num_classes_ = 10;
  std::vector<std::vector<CompiledForest>> mgs_;      // [window][forest]
  std::vector<std::vector<CompiledForest>> cascade_;  // [layer][forest]
};

}  // namespace treeserver

#endif  // TREESERVER_SERVE_COMPILED_MODEL_H_
