#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>

namespace treeserver {

namespace {

int InitialLogLevel() {
  // TS_LOG_LEVEL=debug|info|warn|error overrides the default (warn).
  const char* env = std::getenv("TS_LOG_LEVEL");
  if (env == nullptr) return static_cast<int>(LogLevel::kWarn);
  std::string v(env);
  if (v == "debug") return static_cast<int>(LogLevel::kDebug);
  if (v == "info") return static_cast<int>(LogLevel::kInfo);
  if (v == "error") return static_cast<int>(LogLevel::kError);
  return static_cast<int>(LogLevel::kWarn);
}

std::atomic<int> g_log_level{InitialLogLevel()};

// Serializes writes so multi-threaded log lines do not interleave.
std::mutex& LogMutex() {
  static std::mutex* mu = new std::mutex;
  return *mu;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  {
    std::lock_guard<std::mutex> lock(LogMutex());
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
    std::fflush(stderr);
  }
  if (level_ == LogLevel::kFatal) std::abort();
}

}  // namespace internal_logging

}  // namespace treeserver
