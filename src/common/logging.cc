#include "common/logging.h"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <mutex>
#include <string>

#include "common/trace.h"

namespace treeserver {

namespace {

int InitialLogLevel() {
  // TS_LOG_LEVEL=debug|info|warn|error|fatal (case-insensitive)
  // overrides the default (warn).
  const char* env = std::getenv("TS_LOG_LEVEL");
  if (env == nullptr) return static_cast<int>(LogLevel::kWarn);
  std::string v(env);
  for (char& c : v) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  if (v == "debug") return static_cast<int>(LogLevel::kDebug);
  if (v == "info") return static_cast<int>(LogLevel::kInfo);
  if (v == "warn" || v == "warning") return static_cast<int>(LogLevel::kWarn);
  if (v == "error") return static_cast<int>(LogLevel::kError);
  if (v == "fatal") return static_cast<int>(LogLevel::kFatal);
  std::fprintf(stderr,
               "[WARN logging.cc] unknown TS_LOG_LEVEL \"%s\"; using warn\n",
               env);
  return static_cast<int>(LogLevel::kWarn);
}

std::atomic<int> g_log_level{InitialLogLevel()};

// Serializes writes so multi-threaded log lines do not interleave.
std::mutex& LogMutex() {
  static std::mutex* mu = new std::mutex;
  return *mu;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  // Wall-clock timestamp plus the tracer's compact thread id, so log
  // lines correlate with trace spans from the same thread.
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const auto micros = std::chrono::duration_cast<std::chrono::microseconds>(
                          now.time_since_epoch())
                          .count() %
                      1000000;
  std::tm tm_buf;
  localtime_r(&secs, &tm_buf);
  char ts[32];
  std::snprintf(ts, sizeof(ts), "%02d:%02d:%02d.%06d", tm_buf.tm_hour,
                tm_buf.tm_min, tm_buf.tm_sec, static_cast<int>(micros));
  stream_ << "[" << ts << " " << LevelName(level) << " t" << CurrentThreadId()
          << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  {
    std::lock_guard<std::mutex> lock(LogMutex());
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
    std::fflush(stderr);
  }
  if (level_ == LogLevel::kFatal) std::abort();
}

}  // namespace internal_logging

}  // namespace treeserver
