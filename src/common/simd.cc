#include "common/simd.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "common/logging.h"

namespace treeserver {

namespace {

/// Best level the build + CPU can execute, before the env override.
SimdLevel Probe() {
#if TS_SIMD_ENABLED && (defined(__x86_64__) || defined(_M_X64))
  if (__builtin_cpu_supports("avx2")) return SimdLevel::kAvx2;
#elif TS_SIMD_ENABLED && defined(__aarch64__)
  // AArch64 mandates NEON (Advanced SIMD); no runtime probe needed.
  return SimdLevel::kNeon;
#endif
  return SimdLevel::kScalar;
}

bool Executable(SimdLevel level) {
  return level == SimdLevel::kScalar || level == Probe();
}

/// Resolves the startup level: the probed best, unless TS_SIMD in the
/// environment narrows it. Unknown values and levels this build/CPU
/// cannot run are logged and ignored.
SimdLevel Resolve() {
  SimdLevel level = Probe();
  const char* env = std::getenv("TS_SIMD");
  if (env == nullptr || *env == '\0' || std::strcmp(env, "auto") == 0) {
    return level;
  }
  if (std::strcmp(env, "off") == 0 || std::strcmp(env, "scalar") == 0 ||
      std::strcmp(env, "0") == 0) {
    return SimdLevel::kScalar;
  }
  SimdLevel want = level;
  if (std::strcmp(env, "avx2") == 0) {
    want = SimdLevel::kAvx2;
  } else if (std::strcmp(env, "neon") == 0) {
    want = SimdLevel::kNeon;
  } else {
    TS_LOG(kWarn) << "TS_SIMD=" << env
                 << " not recognized (want off|scalar|avx2|neon|auto); "
                 << "using " << SimdLevelName(level);
    return level;
  }
  if (!Executable(want)) {
    TS_LOG(kWarn) << "TS_SIMD=" << env << " requested but this "
                 << (Probe() == SimdLevel::kScalar ? "build/CPU" : "CPU")
                 << " cannot run it; using " << SimdLevelName(level);
    return level;
  }
  return want;
}

std::atomic<int>& ActiveSlot() {
  static std::atomic<int> active{static_cast<int>(Resolve())};
  return active;
}

}  // namespace

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kAvx2:
      return "avx2";
    case SimdLevel::kNeon:
      return "neon";
  }
  return "unknown";
}

SimdLevel ActiveSimdLevel() {
  return static_cast<SimdLevel>(ActiveSlot().load(std::memory_order_relaxed));
}

SimdLevel DetectedSimdLevel() { return Probe(); }

bool SetSimdLevel(SimdLevel level) {
  if (!Executable(level)) return false;
  ActiveSlot().store(static_cast<int>(level), std::memory_order_relaxed);
  return true;
}

std::string SimdStatusJson() {
  return std::string("\"simd\":\"") + SimdLevelName(ActiveSimdLevel()) +
         "\",\"simd_detected\":\"" + SimdLevelName(DetectedSimdLevel()) + "\"";
}

}  // namespace treeserver
