#include "common/prometheus.h"

#include <cinttypes>
#include <cstdio>

namespace treeserver {

namespace {

bool ValidNameChar(char c, bool first) {
  if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' || c == ':')
    return true;
  return !first && c >= '0' && c <= '9';
}

/// Appends `name{labels,extra} value\n`.
void AppendSample(std::string* out, const std::string& name,
                  const PrometheusLabels& labels,
                  const PrometheusLabels& extra, const std::string& value) {
  *out += name;
  if (!labels.empty() || !extra.empty()) {
    *out += '{';
    bool first = true;
    for (const auto* set : {&labels, &extra}) {
      for (const auto& [k, v] : *set) {
        if (!first) *out += ',';
        first = false;
        *out += k;
        *out += "=\"";
        *out += PrometheusEscapeLabel(v);
        *out += '"';
      }
    }
    *out += '}';
  }
  *out += ' ';
  *out += value;
  *out += '\n';
}

std::string U64(uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  return buf;
}

std::string I64(int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  return buf;
}

std::string F64(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

void AppendType(std::string* out, const std::string& name, const char* type) {
  *out += "# TYPE ";
  *out += name;
  *out += ' ';
  *out += type;
  *out += '\n';
}

}  // namespace

std::string PrometheusMetricName(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (size_t i = 0; i < name.size(); ++i) {
    out.push_back(ValidNameChar(name[i], i == 0) ? name[i] : '_');
  }
  if (out.empty()) out = "_";
  return out;
}

std::string PrometheusEscapeLabel(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

void AppendPrometheusMetric(const MetricSnapshot& metric,
                            const PrometheusLabels& labels, std::string* out) {
  const std::string name = PrometheusMetricName(metric.name);
  switch (metric.kind) {
    case MetricSnapshot::Kind::kCounter:
      AppendType(out, name, "counter");
      AppendSample(out, name, labels, {}, U64(metric.count));
      break;
    case MetricSnapshot::Kind::kGauge:
      AppendType(out, name, "gauge");
      AppendSample(out, name, labels, {}, I64(metric.value));
      AppendType(out, name + "_peak", "gauge");
      AppendSample(out, name + "_peak", labels, {}, I64(metric.peak));
      break;
    case MetricSnapshot::Kind::kClock:
      AppendType(out, name + "_seconds", "counter");
      AppendSample(out, name + "_seconds", labels, {}, F64(metric.seconds));
      break;
    case MetricSnapshot::Kind::kHistogram: {
      AppendType(out, name, "histogram");
      const Histogram::Snapshot& h = metric.histogram;
      uint64_t cumulative = 0;
      for (int i = 0; i < Histogram::kNumBuckets; ++i) {
        if (h.buckets[i] == 0) continue;  // sparse: log buckets span 2^64
        cumulative += h.buckets[i];
        AppendSample(out, name + "_bucket", labels,
                     {{"le", U64(Histogram::BucketUpperBound(i))}},
                     U64(cumulative));
      }
      AppendSample(out, name + "_bucket", labels, {{"le", "+Inf"}},
                   U64(h.count));
      AppendSample(out, name + "_sum", labels, {}, U64(h.sum));
      AppendSample(out, name + "_count", labels, {}, U64(h.count));
      break;
    }
  }
}

std::string PrometheusExport(const std::vector<MetricSnapshot>& snapshot,
                             const PrometheusLabels& labels) {
  std::string out;
  out.reserve(snapshot.size() * 96 + 64);
  for (const MetricSnapshot& metric : snapshot) {
    AppendPrometheusMetric(metric, labels, &out);
  }
  return out;
}

}  // namespace treeserver
