#ifndef TREESERVER_COMMON_CLOCK_SYNC_H_
#define TREESERVER_COMMON_CLOCK_SYNC_H_

#include <cstdint>

namespace treeserver {

/// One NTP-style clock measurement derived from a heartbeat exchange.
///
/// Every heartbeat carries (t_send, echo, echo_elapsed): the sender's
/// trace-clock reading at transmit time, the t_send of the last
/// heartbeat it received from us, and how long ago (on the sender's
/// clock) that heartbeat arrived. From one inbound heartbeat the
/// receiver recovers a round-trip time and an offset estimate without
/// either side keeping per-request state:
///
///   rtt    = (now - echo) - echo_elapsed
///   offset = t_send + rtt/2 - now        // remote clock - local clock
///
/// The offset sign convention: `offset_ns` is (remote trace clock) -
/// (local trace clock), so a remote timestamp rebases into local time
/// as `local_ts = remote_ts - offset_ns`.
struct ClockSample {
  int64_t rtt_ns = 0;
  int64_t offset_ns = 0;
};

/// Computes one sample from an inbound heartbeat. Returns false when
/// the exchange cannot yield a sample yet (no echo — e.g. the very
/// first heartbeat, or a peer running an older wire format) or when
/// the arithmetic is non-causal (clock glitch: negative RTT).
bool ComputeClockSample(uint64_t remote_send_ns, uint64_t echo_ns,
                        uint64_t echo_elapsed_ns, uint64_t local_now_ns,
                        ClockSample* out);

/// Keeps the best (minimum-RTT) sample seen so far: the sample with
/// the smallest RTT has the tightest bound on the true offset, the
/// classic NTP clock filter. Not thread-safe; callers serialize.
class ClockOffsetEstimator {
 public:
  void AddSample(const ClockSample& sample) {
    if (!has_offset_ || sample.rtt_ns < min_rtt_ns_) {
      min_rtt_ns_ = sample.rtt_ns;
      offset_ns_ = sample.offset_ns;
      has_offset_ = true;
    }
    ++samples_;
  }

  bool has_offset() const { return has_offset_; }
  /// (remote clock - local clock); valid only when has_offset().
  int64_t offset_ns() const { return offset_ns_; }
  int64_t min_rtt_ns() const { return min_rtt_ns_; }
  uint64_t samples() const { return samples_; }

 private:
  bool has_offset_ = false;
  int64_t offset_ns_ = 0;
  int64_t min_rtt_ns_ = 0;
  uint64_t samples_ = 0;
};

}  // namespace treeserver

#endif  // TREESERVER_COMMON_CLOCK_SYNC_H_
