#include "common/trace.h"

#include <chrono>
#include <cstdio>

#include "common/metrics_registry.h"

namespace treeserver {

namespace {

std::atomic<int> g_next_thread_id{0};

uint64_t SteadyNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void AppendEscaped(std::string* out, const char* s) {
  for (const char* p = s; *p != '\0'; ++p) {
    if (*p == '"' || *p == '\\') out->push_back('\\');
    out->push_back(*p);
  }
}

}  // namespace

int CurrentThreadId() {
  thread_local int id = g_next_thread_id.fetch_add(1);
  return id;
}

const char* TraceCategoryName(TraceCat cat) {
  switch (cat) {
    case TraceCat::kPlanInsert:
      return "plan-insert";
    case TraceCat::kWorkerAssign:
      return "worker-assign";
    case TraceCat::kColumnTask:
      return "column-task";
    case TraceCat::kSubtreeTask:
      return "subtree-task";
    case TraceCat::kIndexServe:
      return "index-serve";
    case TraceCat::kNetSend:
      return "net-send";
    case TraceCat::kTreeComplete:
      return "tree-complete";
    case TraceCat::kSplitEval:
      return "split-eval";
    case TraceCat::kServe:
      return "serve";
    case TraceCat::kWatchdog:
      return "watchdog";
  }
  return "?";
}

Tracer::Tracer()
    : epoch_ns_(SteadyNowNs()),
      dropped_counter_(
          MetricsRegistry::Global().GetCounter("trace.dropped_spans")) {}

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer;  // leaked: alive for worker threads
  return *tracer;
}

uint64_t Tracer::NowNs() const { return SteadyNowNs() - epoch_ns_; }

Tracer::ThreadBuffer* Tracer::LocalBuffer() {
  thread_local std::shared_ptr<ThreadBuffer> buffer = [this] {
    auto b = std::make_shared<ThreadBuffer>();
    b->tid = CurrentThreadId();
    std::lock_guard<std::mutex> lock(mu_);
    buffers_.push_back(b);
    return b;
  }();
  return buffer.get();
}

void Tracer::Append(TraceEvent event) {
  ThreadBuffer* buffer = LocalBuffer();
  event.tid = buffer->tid;
  const size_t cap = max_events_per_thread_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(buffer->mu);
  if (buffer->events.size() >= cap) {
    // Buffer full: drop loudly (counted) rather than silently
    // overwriting history or growing without bound.
    dropped_.fetch_add(1, std::memory_order_relaxed);
    dropped_counter_->Inc();
    return;
  }
  buffer->events.push_back(event);
}

void Tracer::RecordComplete(TraceCat cat, const char* name, uint64_t start_ns,
                            uint64_t id, const char* arg_name, int64_t arg) {
  TraceEvent e;
  e.name = name;
  e.cat = cat;
  e.phase = 'X';
  e.ts_ns = start_ns;
  e.dur_ns = NowNs() - start_ns;
  e.id = id;
  e.arg_name = arg_name;
  e.arg = arg;
  Append(e);
}

void Tracer::RecordAsyncBegin(TraceCat cat, const char* name, uint64_t id,
                              const char* arg_name, int64_t arg) {
  TraceEvent e;
  e.name = name;
  e.cat = cat;
  e.phase = 'b';
  e.ts_ns = NowNs();
  e.id = id;
  e.arg_name = arg_name;
  e.arg = arg;
  Append(e);
}

void Tracer::RecordAsyncEnd(TraceCat cat, const char* name, uint64_t id) {
  TraceEvent e;
  e.name = name;
  e.cat = cat;
  e.phase = 'e';
  e.ts_ns = NowNs();
  e.id = id;
  Append(e);
}

void Tracer::RecordInstant(TraceCat cat, const char* name, uint64_t id,
                           const char* arg_name, int64_t arg) {
  TraceEvent e;
  e.name = name;
  e.cat = cat;
  e.phase = 'i';
  e.ts_ns = NowNs();
  e.id = id;
  e.arg_name = arg_name;
  e.arg = arg;
  Append(e);
}

size_t Tracer::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const auto& b : buffers_) {
    std::lock_guard<std::mutex> blk(b->mu);
    n += b->events.size();
  }
  return n;
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& b : buffers_) {
    std::lock_guard<std::mutex> blk(b->mu);
    b->events.clear();
  }
  dropped_.store(0, std::memory_order_relaxed);
}

void AppendChromeEventJson(const TraceEventCopy& e, int pid, int64_t shift_ns,
                           std::string* out) {
  char buf[160];
  *out += "{\"name\":\"";
  AppendEscaped(out, e.name.c_str());
  *out += "\",\"cat\":\"";
  AppendEscaped(out, TraceCategoryName(e.cat));
  // Chrome trace timestamps are microseconds (fractional allowed).
  const double ts_us =
      static_cast<double>(static_cast<int64_t>(e.ts_ns) + shift_ns) / 1e3;
  std::snprintf(buf, sizeof(buf),
                "\",\"ph\":\"%c\",\"pid\":%d,\"tid\":%d,\"ts\":%.3f", e.phase,
                pid, e.tid, ts_us);
  *out += buf;
  if (e.phase == 'X') {
    std::snprintf(buf, sizeof(buf), ",\"dur\":%.3f",
                  static_cast<double>(e.dur_ns) / 1e3);
    *out += buf;
  }
  if (e.phase == 'b' || e.phase == 'e') {
    std::snprintf(buf, sizeof(buf), ",\"id\":\"0x%llx\"",
                  static_cast<unsigned long long>(e.id));
    *out += buf;
  }
  if (e.phase == 'i') *out += ",\"s\":\"t\"";
  if (e.id != 0 || !e.arg_name.empty()) {
    *out += ",\"args\":{";
    bool first_arg = true;
    if (e.id != 0) {
      std::snprintf(buf, sizeof(buf), "\"id\":%llu",
                    static_cast<unsigned long long>(e.id));
      *out += buf;
      first_arg = false;
    }
    if (!e.arg_name.empty()) {
      if (!first_arg) *out += ",";
      *out += "\"";
      AppendEscaped(out, e.arg_name.c_str());
      std::snprintf(buf, sizeof(buf), "\":%lld", static_cast<long long>(e.arg));
      *out += buf;
    }
    *out += "}";
  }
  *out += "}";
}

std::vector<TraceEventCopy> Tracer::SnapshotEvents() const {
  std::vector<TraceEventCopy> out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& b : buffers_) {
    std::lock_guard<std::mutex> blk(b->mu);
    for (const TraceEvent& e : b->events) {
      TraceEventCopy c;
      c.name = e.name;
      c.cat = e.cat;
      c.phase = e.phase;
      c.tid = e.tid;
      c.ts_ns = e.ts_ns;
      c.dur_ns = e.dur_ns;
      c.id = e.id;
      if (e.arg_name != nullptr) c.arg_name = e.arg_name;
      c.arg = e.arg;
      out.push_back(std::move(c));
    }
  }
  return out;
}

std::string Tracer::ToChromeJson() const {
  std::vector<TraceEventCopy> events = SnapshotEvents();
  std::string out;
  out.reserve(events.size() * 128 + 64);
  out += "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEventCopy& e : events) {
    if (!first) out += ",";
    first = false;
    AppendChromeEventJson(e, /*pid=*/1, /*shift_ns=*/0, &out);
  }
  out += "]}";
  return out;
}

Status Tracer::WriteChromeTrace(const std::string& path) const {
  const uint64_t dropped = dropped_spans();
  if (dropped > 0) {
    std::fprintf(stderr,
                 "[trace] warning: %llu spans dropped (per-thread buffer cap "
                 "%zu reached); the exported trace is incomplete\n",
                 static_cast<unsigned long long>(dropped),
                 max_events_per_thread());
  }
  std::string json = ToChromeJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError("cannot open trace file: " + path);
  }
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (written != json.size()) {
    return Status::IOError("short write to trace file: " + path);
  }
  return Status::OK();
}

}  // namespace treeserver
