#ifndef TREESERVER_COMMON_METRICS_H_
#define TREESERVER_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>

namespace treeserver {

/// Monotonic counter safe for concurrent increment (bytes sent, tasks
/// computed, files opened, ...).
class Counter {
 public:
  void Add(uint64_t delta) { v_.fetch_add(delta, std::memory_order_relaxed); }
  void Inc() { Add(1); }
  uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

/// Up/down gauge that remembers its high-water mark. Used to report the
/// peak task-memory figures of Table III.
class PeakGauge {
 public:
  void Add(int64_t delta) {
    int64_t now = v_.fetch_add(delta, std::memory_order_relaxed) + delta;
    int64_t peak = peak_.load(std::memory_order_relaxed);
    while (now > peak &&
           !peak_.compare_exchange_weak(peak, now, std::memory_order_relaxed)) {
    }
  }
  void Sub(int64_t delta) { Add(-delta); }
  int64_t value() const { return v_.load(std::memory_order_relaxed); }
  int64_t peak() const { return peak_.load(std::memory_order_relaxed); }
  void Reset() {
    v_.store(0, std::memory_order_relaxed);
    peak_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<int64_t> v_{0};
  std::atomic<int64_t> peak_{0};
};

/// Accumulates busy-time (in nanoseconds) across comper threads so the
/// harness can report aggregate CPU utilization like Table VI.
class BusyClock {
 public:
  void AddNanos(uint64_t ns) { ns_.fetch_add(ns, std::memory_order_relaxed); }
  double Seconds() const {
    return static_cast<double>(ns_.load(std::memory_order_relaxed)) * 1e-9;
  }
  void Reset() { ns_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> ns_{0};
};

}  // namespace treeserver

#endif  // TREESERVER_COMMON_METRICS_H_
