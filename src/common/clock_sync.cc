#include "common/clock_sync.h"

namespace treeserver {

bool ComputeClockSample(uint64_t remote_send_ns, uint64_t echo_ns,
                        uint64_t echo_elapsed_ns, uint64_t local_now_ns,
                        ClockSample* out) {
  if (echo_ns == 0) return false;  // nothing of ours echoed back yet
  if (local_now_ns < echo_ns) return false;
  const uint64_t turnaround = local_now_ns - echo_ns;
  if (echo_elapsed_ns > turnaround) return false;  // non-causal
  const int64_t rtt = static_cast<int64_t>(turnaround - echo_elapsed_ns);
  // offset = remote clock - local clock, assuming a symmetric path:
  // the remote stamped t_send roughly rtt/2 before local_now.
  const int64_t offset = static_cast<int64_t>(remote_send_ns) + rtt / 2 -
                         static_cast<int64_t>(local_now_ns);
  out->rtt_ns = rtt;
  out->offset_ns = offset;
  return true;
}

}  // namespace treeserver
