#ifndef TREESERVER_COMMON_TRACE_MERGE_H_
#define TREESERVER_COMMON_TRACE_MERGE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/serial.h"
#include "common/status.h"
#include "common/trace.h"

namespace treeserver {

/// One rank's contribution to a merged cluster trace: its snapshotted
/// events, its drop count, and the estimated offset of its trace clock
/// relative to the merging rank's (remote - local; 0 for the merging
/// rank itself). Events are rebased with local_ts = ts - clock_offset.
struct RankTrace {
  int32_t rank = 0;  // kMasterRank or worker id
  std::string label;  // process lane name ("master", "worker 3")
  int64_t clock_offset_ns = 0;
  uint64_t dropped_spans = 0;
  std::vector<TraceEventCopy> events;
};

/// Chrome/Perfetto process-lane id for a rank: lanes must be small
/// positive integers, so master (-1) maps to 1 and worker w to w + 2.
inline int TracePidForRank(int32_t rank) { return rank + 2; }

/// Serializes a snapshot of trace events (worker -> master payload).
void SerializeTraceEvents(const std::vector<TraceEventCopy>& events,
                          BinaryWriter* w);
Status DeserializeTraceEvents(BinaryReader* r,
                              std::vector<TraceEventCopy>* out);

/// Merges per-rank traces into one Chrome trace-event JSON document:
/// one process lane per rank (named via process_name metadata), all
/// timestamps rebased into the merging rank's clock.
std::string MergedChromeTraceJson(const std::vector<RankTrace>& ranks);

/// Writes MergedChromeTraceJson to `path`; logs a one-line warning to
/// stderr when any rank dropped spans.
Status WriteMergedChromeTrace(const std::vector<RankTrace>& ranks,
                              const std::string& path);

}  // namespace treeserver

#endif  // TREESERVER_COMMON_TRACE_MERGE_H_
