#ifndef TREESERVER_COMMON_METRICS_REGISTRY_H_
#define TREESERVER_COMMON_METRICS_REGISTRY_H_

#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/metrics.h"

namespace treeserver {

/// Lock-free log-bucketed histogram for long-tailed engine quantities:
/// task latencies, message payload sizes, B_plan depth samples.
///
/// Bucket 0 holds the value 0; bucket i (1..64) holds values in
/// [2^(i-1), 2^i - 1]. Add() is three relaxed atomic increments plus a
/// CAS max-update, safe for concurrent use from any thread.
class Histogram {
 public:
  static constexpr int kNumBuckets = 65;

  /// Bucket index for a value (0 for 0, else bit width).
  static int BucketIndex(uint64_t v) {
    return v == 0 ? 0 : std::bit_width(v);
  }
  /// Smallest value the bucket holds.
  static uint64_t BucketLowerBound(int i) {
    return i == 0 ? 0 : uint64_t{1} << (i - 1);
  }
  /// Largest value the bucket holds.
  static uint64_t BucketUpperBound(int i) {
    if (i == 0) return 0;
    if (i >= 64) return ~uint64_t{0};
    return (uint64_t{1} << i) - 1;
  }

  void Add(uint64_t v) {
    buckets_[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    uint64_t max = max_.load(std::memory_order_relaxed);
    while (v > max &&
           !max_.compare_exchange_weak(max, v, std::memory_order_relaxed)) {
    }
  }

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t Sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t Max() const { return max_.load(std::memory_order_relaxed); }
  double Mean() const {
    uint64_t n = Count();
    return n == 0 ? 0.0 : static_cast<double>(Sum()) / static_cast<double>(n);
  }
  uint64_t bucket_count(int i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  void Reset() {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }

  /// Consistent-enough copy for reporting (individual loads are atomic;
  /// the set is not a linearizable snapshot, fine for stats).
  struct Snapshot {
    uint64_t count = 0;
    uint64_t sum = 0;
    uint64_t max = 0;
    uint64_t buckets[kNumBuckets] = {};

    double Mean() const {
      return count == 0 ? 0.0
                        : static_cast<double>(sum) / static_cast<double>(count);
    }
    /// Percentile estimate (upper bound of the bucket holding rank p).
    uint64_t Percentile(double p) const;
    /// Accumulates another snapshot (e.g. merging per-worker histograms).
    void Merge(const Snapshot& other);
  };
  Snapshot snapshot() const;

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
};

/// One named metric's current value, for structured reporting.
struct MetricSnapshot {
  enum class Kind : uint8_t { kCounter, kGauge, kClock, kHistogram };

  std::string name;
  Kind kind = Kind::kCounter;
  uint64_t count = 0;           // counter value / histogram count
  int64_t value = 0;            // gauge current
  int64_t peak = 0;             // gauge peak
  double seconds = 0.0;         // busy clock
  Histogram::Snapshot histogram;  // kHistogram only
};

/// Named registry of engine metrics. Get*() returns a stable pointer
/// valid for the registry's lifetime — instrument once, hold the
/// pointer, never pay the map lookup on the hot path. A process-wide
/// instance lives at MetricsRegistry::Global(); subsystems may also own
/// private registries (one per simulated cluster, say).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry (never destroyed).
  static MetricsRegistry& Global();

  Counter* GetCounter(const std::string& name);
  PeakGauge* GetGauge(const std::string& name);
  BusyClock* GetClock(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// Structured values of every registered metric, sorted by name.
  std::vector<MetricSnapshot> Snapshot() const;

  /// Human-readable one-metric-per-line dump.
  std::string DumpText() const;
  /// JSON object {"name": {...}, ...}.
  std::string DumpJson() const;

  void ResetAll();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<PeakGauge>> gauges_;
  std::map<std::string, std::unique_ptr<BusyClock>> clocks_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace treeserver

#endif  // TREESERVER_COMMON_METRICS_REGISTRY_H_
