#include "common/status.h"

namespace treeserver {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += msg_;
  return out;
}

}  // namespace treeserver
