#ifndef TREESERVER_COMMON_TRACE_H_
#define TREESERVER_COMMON_TRACE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace treeserver {

class Counter;

/// Small dense id for the calling thread, assigned on first use.
/// Shared between the tracer ("tid" of every event) and the logger
/// (log-line prefix) so multi-threaded logs correlate with trace spans.
int CurrentThreadId();

/// Trace-event categories, one per engine phase the paper's evaluation
/// attributes time to. String names appear as the "cat" field in the
/// exported Chrome trace.
enum class TraceCat : uint8_t {
  kPlanInsert = 0,    // B_plan head/tail inserts (master)
  kWorkerAssign = 1,  // SchedulePlan: cost-model worker assignment
  kColumnTask = 2,    // column-task lifecycle + comper execution
  kSubtreeTask = 3,   // subtree-task lifecycle + comper execution
  kIndexServe = 4,    // delegate serving I_x to child tasks
  kNetSend = 5,       // simulated interconnect sends
  kTreeComplete = 6,  // tree flushed to its job
  kSplitEval = 7,     // serial trainer split evaluation
  kServe = 8,         // inference server batches / admission
  kWatchdog = 9,      // slow-task watchdog flags (master)
};

const char* TraceCategoryName(TraceCat cat);

/// One recorded event. `name` / `arg_name` must point at string
/// literals (the tracer stores the pointers, not copies).
struct TraceEvent {
  const char* name = nullptr;
  TraceCat cat = TraceCat::kPlanInsert;
  char phase = 'X';     // 'X' complete, 'b'/'e' async pair, 'i' instant
  int tid = 0;
  uint64_t ts_ns = 0;   // nanoseconds since the tracer epoch
  uint64_t dur_ns = 0;  // 'X' only
  uint64_t id = 0;      // correlation id (task_id / tree_id); 0 = none
  const char* arg_name = nullptr;
  int64_t arg = 0;
};

/// A trace event with owned strings: the form that crosses process
/// boundaries (worker -> master trace snapshots) where the literal
/// pointers of TraceEvent mean nothing.
struct TraceEventCopy {
  std::string name;
  TraceCat cat = TraceCat::kPlanInsert;
  char phase = 'X';
  int32_t tid = 0;
  uint64_t ts_ns = 0;
  uint64_t dur_ns = 0;
  uint64_t id = 0;
  std::string arg_name;  // empty = no argument
  int64_t arg = 0;
};

/// Appends one Chrome trace-event JSON object (no surrounding comma)
/// for `e`, placed in process lane `pid` with `shift_ns` added to its
/// timestamp (clock rebasing for remote events).
void AppendChromeEventJson(const TraceEventCopy& e, int pid, int64_t shift_ns,
                           std::string* out);

/// Process-wide low-overhead span tracer.
///
/// Threads append to their own buffers (one uncontended mutex each, held
/// only against the exporter), so recording is a clock read plus a
/// vector push. When disabled — the default — every recording call is a
/// single relaxed atomic load. Export produces Chrome trace-event JSON
/// loadable in Perfetto / chrome://tracing: task lifecycles are async
/// ('b'/'e') events keyed by task id, thread-local work is complete
/// ('X') spans.
class Tracer {
 public:
  /// The process-wide tracer (never destroyed).
  static Tracer& Global();

  void Enable() { enabled_.store(true, std::memory_order_relaxed); }
  void Disable() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Nanoseconds since the tracer's epoch (steady clock).
  uint64_t NowNs() const;

  /// Thread-local span covering [start_ns, now].
  void RecordComplete(TraceCat cat, const char* name, uint64_t start_ns,
                      uint64_t id = 0, const char* arg_name = nullptr,
                      int64_t arg = 0);
  /// Async pair: cross-thread lifecycle keyed by (cat, name, id).
  void RecordAsyncBegin(TraceCat cat, const char* name, uint64_t id,
                        const char* arg_name = nullptr, int64_t arg = 0);
  void RecordAsyncEnd(TraceCat cat, const char* name, uint64_t id);
  /// Zero-duration marker.
  void RecordInstant(TraceCat cat, const char* name, uint64_t id = 0,
                     const char* arg_name = nullptr, int64_t arg = 0);

  /// Merges every thread's buffer into Chrome trace-event JSON.
  std::string ToChromeJson() const;
  /// Writes ToChromeJson() to `path`. Warns (once per call, one line
  /// on stderr) when spans were dropped to the buffer cap.
  Status WriteChromeTrace(const std::string& path) const;

  /// Copies every buffered event into the owned-string form, for
  /// shipping to another rank or merging across ranks.
  std::vector<TraceEventCopy> SnapshotEvents() const;

  /// Total events currently buffered (all threads).
  size_t event_count() const;
  /// Drops all buffered events (keeps the enabled flag) and zeroes the
  /// local dropped-span count.
  void Clear();

  /// Events silently discarded because a thread's buffer hit the cap,
  /// since the last Clear(). The monotonic total is also exposed as
  /// the `trace.dropped_spans` counter in the global MetricsRegistry.
  uint64_t dropped_spans() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  /// Per-thread buffered-event cap (default 256K events per thread);
  /// recording beyond it counts drops instead of growing without
  /// bound.
  void set_max_events_per_thread(size_t cap) {
    max_events_per_thread_.store(cap, std::memory_order_relaxed);
  }
  size_t max_events_per_thread() const {
    return max_events_per_thread_.load(std::memory_order_relaxed);
  }

 private:
  struct ThreadBuffer {
    mutable std::mutex mu;
    std::vector<TraceEvent> events;
    int tid = 0;
  };

  Tracer();

  ThreadBuffer* LocalBuffer();
  void Append(TraceEvent event);

  std::atomic<bool> enabled_{false};
  uint64_t epoch_ns_ = 0;
  std::atomic<size_t> max_events_per_thread_{size_t{1} << 18};
  std::atomic<uint64_t> dropped_{0};
  Counter* dropped_counter_ = nullptr;  // trace.dropped_spans (global)
  mutable std::mutex mu_;  // guards buffers_ (registration + export)
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
};

/// RAII complete-event span. Cheap no-op when tracing is disabled at
/// construction time.
class TraceSpan {
 public:
  TraceSpan(TraceCat cat, const char* name, uint64_t id = 0)
      : active_(Tracer::Global().enabled()), cat_(cat), name_(name), id_(id) {
    if (active_) start_ns_ = Tracer::Global().NowNs();
  }
  ~TraceSpan() {
    if (active_) {
      Tracer::Global().RecordComplete(cat_, name_, start_ns_, id_, arg_name_,
                                      arg_);
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attaches one numeric argument (bytes, rows, ...) to the span.
  void SetArg(const char* name, int64_t value) {
    arg_name_ = name;
    arg_ = value;
  }

 private:
  const bool active_;
  const TraceCat cat_;
  const char* const name_;
  const uint64_t id_;
  uint64_t start_ns_ = 0;
  const char* arg_name_ = nullptr;
  int64_t arg_ = 0;
};

/// Convenience wrappers that no-op when tracing is disabled.
inline void TraceAsyncBegin(TraceCat cat, const char* name, uint64_t id,
                            const char* arg_name = nullptr, int64_t arg = 0) {
  Tracer& t = Tracer::Global();
  if (t.enabled()) t.RecordAsyncBegin(cat, name, id, arg_name, arg);
}

inline void TraceAsyncEnd(TraceCat cat, const char* name, uint64_t id) {
  Tracer& t = Tracer::Global();
  if (t.enabled()) t.RecordAsyncEnd(cat, name, id);
}

inline void TraceInstant(TraceCat cat, const char* name, uint64_t id = 0,
                         const char* arg_name = nullptr, int64_t arg = 0) {
  Tracer& t = Tracer::Global();
  if (t.enabled()) t.RecordInstant(cat, name, id, arg_name, arg);
}

inline bool TraceEnabled() { return Tracer::Global().enabled(); }

}  // namespace treeserver

#endif  // TREESERVER_COMMON_TRACE_H_
