#ifndef TREESERVER_COMMON_STATUS_H_
#define TREESERVER_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace treeserver {

/// Error categories used across the library. Modeled after the
/// RocksDB/Arrow convention: library code never throws across API
/// boundaries; fallible operations return Status or Result<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kIOError,
  kCorruption,
  kAlreadyExists,
  kFailedPrecondition,
  kUnavailable,  // e.g. a crashed worker
  kInternal,
};

/// Lightweight success/error carrier.
///
/// An OK status stores no message and is cheap to copy. Error statuses
/// carry a code and a human-readable message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// "OK" or "<code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string msg_;
};

/// Returns the canonical name of a status code, e.g. "InvalidArgument".
const char* StatusCodeName(StatusCode code);

/// Value-or-error carrier, analogous to arrow::Result.
///
/// Either holds a T (when ok()) or an error Status. Accessing the value
/// of an errored Result aborts, so callers must check ok() first (or use
/// the TS_ASSIGN_OR_RETURN macro).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value or an error status keeps call
  /// sites terse: `return value;` / `return Status::IOError(...)`.
  Result(T value) : rep_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : rep_(std::move(status)) {}  // NOLINT

  bool ok() const { return std::holds_alternative<T>(rep_); }

  const Status& status() const {
    static const Status kOkStatus;
    if (ok()) return kOkStatus;
    return std::get<Status>(rep_);
  }

  const T& value() const& { return std::get<T>(rep_); }
  T& value() & { return std::get<T>(rep_); }
  T&& value() && { return std::get<T>(std::move(rep_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> rep_;
};

/// Propagates a non-OK status out of the enclosing function.
#define TS_RETURN_IF_ERROR(expr)              \
  do {                                        \
    ::treeserver::Status _st = (expr);        \
    if (!_st.ok()) return _st;                \
  } while (false)

#define TS_CONCAT_IMPL(a, b) a##b
#define TS_CONCAT(a, b) TS_CONCAT_IMPL(a, b)

/// Evaluates a Result expression; on error returns the Status, on
/// success moves the value into `lhs`.
#define TS_ASSIGN_OR_RETURN(lhs, rexpr)                        \
  auto TS_CONCAT(_result_, __LINE__) = (rexpr);                \
  if (!TS_CONCAT(_result_, __LINE__).ok())                     \
    return TS_CONCAT(_result_, __LINE__).status();             \
  lhs = std::move(TS_CONCAT(_result_, __LINE__)).value()

}  // namespace treeserver

#endif  // TREESERVER_COMMON_STATUS_H_
