#include "common/trace_merge.h"

#include <cstdio>

namespace treeserver {

namespace {

/// Cap mirroring kMaxFramePayload: a corrupt count must fail cleanly,
/// not attempt a giant allocation.
constexpr uint64_t kMaxSnapshotEvents = 64u << 20;

void AppendEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') out->push_back('\\');
    out->push_back(c);
  }
}

/// Emits the 'M' metadata event naming a process lane.
void AppendProcessNameEvent(int pid, const std::string& label,
                            std::string* out) {
  *out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":";
  *out += std::to_string(pid);
  *out += ",\"tid\":0,\"args\":{\"name\":\"";
  AppendEscaped(out, label);
  *out += "\"}}";
}

}  // namespace

void SerializeTraceEvents(const std::vector<TraceEventCopy>& events,
                          BinaryWriter* w) {
  w->Write<uint64_t>(events.size());
  for (const TraceEventCopy& e : events) {
    w->WriteString(e.name);
    w->Write<uint8_t>(static_cast<uint8_t>(e.cat));
    w->Write<char>(e.phase);
    w->Write<int32_t>(e.tid);
    w->Write<uint64_t>(e.ts_ns);
    w->Write<uint64_t>(e.dur_ns);
    w->Write<uint64_t>(e.id);
    w->WriteString(e.arg_name);
    w->Write<int64_t>(e.arg);
  }
}

Status DeserializeTraceEvents(BinaryReader* r,
                              std::vector<TraceEventCopy>* out) {
  uint64_t n = 0;
  TS_RETURN_IF_ERROR(r->Read(&n));
  if (n > kMaxSnapshotEvents) {
    return Status::Corruption("trace snapshot: absurd event count");
  }
  out->clear();
  out->reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    TraceEventCopy e;
    uint8_t cat = 0;
    TS_RETURN_IF_ERROR(r->ReadString(&e.name));
    TS_RETURN_IF_ERROR(r->Read(&cat));
    TS_RETURN_IF_ERROR(r->Read(&e.phase));
    TS_RETURN_IF_ERROR(r->Read(&e.tid));
    TS_RETURN_IF_ERROR(r->Read(&e.ts_ns));
    TS_RETURN_IF_ERROR(r->Read(&e.dur_ns));
    TS_RETURN_IF_ERROR(r->Read(&e.id));
    TS_RETURN_IF_ERROR(r->ReadString(&e.arg_name));
    TS_RETURN_IF_ERROR(r->Read(&e.arg));
    e.cat = static_cast<TraceCat>(cat);
    out->push_back(std::move(e));
  }
  return Status::OK();
}

std::string MergedChromeTraceJson(const std::vector<RankTrace>& ranks) {
  size_t total = 0;
  for (const RankTrace& rt : ranks) total += rt.events.size();
  std::string out;
  out.reserve(total * 128 + ranks.size() * 96 + 64);
  out += "{\"traceEvents\":[";
  bool first = true;
  for (const RankTrace& rt : ranks) {
    const int pid = TracePidForRank(rt.rank);
    if (!first) out += ",";
    first = false;
    AppendProcessNameEvent(pid, rt.label, &out);
    for (const TraceEventCopy& e : rt.events) {
      out += ",";
      // Rebase the remote clock into the merging rank's:
      // local_ts = remote_ts - (remote - local).
      AppendChromeEventJson(e, pid, -rt.clock_offset_ns, &out);
    }
  }
  out += "]}";
  return out;
}

Status WriteMergedChromeTrace(const std::vector<RankTrace>& ranks,
                              const std::string& path) {
  uint64_t dropped = 0;
  for (const RankTrace& rt : ranks) dropped += rt.dropped_spans;
  if (dropped > 0) {
    std::fprintf(stderr,
                 "[trace] warning: %llu spans dropped across ranks; the "
                 "merged trace is incomplete\n",
                 static_cast<unsigned long long>(dropped));
  }
  std::string json = MergedChromeTraceJson(ranks);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError("cannot open trace file: " + path);
  }
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (written != json.size()) {
    return Status::IOError("short write to trace file: " + path);
  }
  return Status::OK();
}

}  // namespace treeserver
