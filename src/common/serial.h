#ifndef TREESERVER_COMMON_SERIAL_H_
#define TREESERVER_COMMON_SERIAL_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/status.h"

namespace treeserver {

/// Appends POD values, strings and vectors to a byte buffer.
///
/// The wire format is little-endian fixed-width (we only target
/// little-endian hosts, as the simulated cluster is a single process);
/// lengths are uint64. Used for task/data messages and model files.
class BinaryWriter {
 public:
  BinaryWriter() = default;

  template <typename T>
  void Write(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "Write<T> requires a trivially copyable type");
    const char* p = reinterpret_cast<const char*>(&value);
    buf_.append(p, sizeof(T));
  }

  void WriteString(const std::string& s) {
    Write<uint64_t>(s.size());
    buf_.append(s);
  }

  template <typename T>
  void WriteVector(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "WriteVector<T> requires a trivially copyable type");
    Write<uint64_t>(v.size());
    if (!v.empty()) {
      buf_.append(reinterpret_cast<const char*>(v.data()),
                  v.size() * sizeof(T));
    }
  }

  const std::string& buffer() const { return buf_; }
  std::string&& Release() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  std::string buf_;
};

/// Reads values written by BinaryWriter, with bounds checking.
class BinaryReader {
 public:
  /// The reader borrows `data`; the caller keeps it alive.
  explicit BinaryReader(const std::string& data)
      : data_(data.data()), size_(data.size()) {}
  BinaryReader(const char* data, size_t size) : data_(data), size_(size) {}

  template <typename T>
  Status Read(T* out) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "Read<T> requires a trivially copyable type");
    if (pos_ + sizeof(T) > size_) {
      return Status::Corruption("BinaryReader: read past end");
    }
    std::memcpy(out, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return Status::OK();
  }

  Status ReadString(std::string* out) {
    uint64_t len = 0;
    TS_RETURN_IF_ERROR(Read(&len));
    // `len > size_ - pos_` (not `pos_ + len > size_`): a hostile
    // length near 2^64 must not wrap the addition past the bound.
    if (len > size_ - pos_) {
      return Status::Corruption("BinaryReader: string past end");
    }
    out->assign(data_ + pos_, len);
    pos_ += len;
    return Status::OK();
  }

  template <typename T>
  Status ReadVector(std::vector<T>* out) {
    uint64_t len = 0;
    TS_RETURN_IF_ERROR(Read(&len));
    // Division keeps hostile lengths from overflowing len * sizeof(T)
    // (and from reaching resize() with an absurd allocation size).
    if (len > (size_ - pos_) / sizeof(T)) {
      return Status::Corruption("BinaryReader: vector past end");
    }
    out->resize(len);
    if (len > 0) {
      std::memcpy(out->data(), data_ + pos_, len * sizeof(T));
      pos_ += len * sizeof(T);
    }
    return Status::OK();
  }

  /// Convenience for trusted in-process payloads: aborts on corruption
  /// instead of propagating (the simulated network cannot corrupt).
  template <typename T>
  T ReadOrDie() {
    T v{};
    TS_CHECK(Read(&v).ok());
    return v;
  }

  size_t remaining() const { return size_ - pos_; }
  bool AtEnd() const { return pos_ == size_; }

 private:
  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

/// LEB128 varint append (compression of delta-encoded row ids).
inline void WriteVarint64(BinaryWriter* w, uint64_t v) {
  while (v >= 0x80) {
    w->Write<uint8_t>(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  w->Write<uint8_t>(static_cast<uint8_t>(v));
}

inline Status ReadVarint64(BinaryReader* r, uint64_t* out) {
  uint64_t v = 0;
  int shift = 0;
  while (true) {
    uint8_t byte;
    TS_RETURN_IF_ERROR(r->Read(&byte));
    v |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
    if (shift > 63) return Status::Corruption("varint too long");
  }
  *out = v;
  return Status::OK();
}

}  // namespace treeserver

#endif  // TREESERVER_COMMON_SERIAL_H_
