#ifndef TREESERVER_COMMON_TIMER_H_
#define TREESERVER_COMMON_TIMER_H_

#include <chrono>

namespace treeserver {

/// Monotonic wall-clock stopwatch used by the experiment harnesses.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double Millis() const { return Seconds() * 1e3; }
  double Micros() const { return Seconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace treeserver

#endif  // TREESERVER_COMMON_TIMER_H_
