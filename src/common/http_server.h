#ifndef TREESERVER_COMMON_HTTP_SERVER_H_
#define TREESERVER_COMMON_HTTP_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>

#include "common/status.h"

namespace treeserver {

/// Response returned by an HttpServer handler.
struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// Minimal dependency-free HTTP/1.1 server for introspection endpoints
/// (/metrics, /healthz, /statusz). GET-only, Connection: close, one
/// accept thread serving requests inline — introspection traffic is a
/// handful of small requests per second, so there is no connection
/// pool to manage and no way for a scrape to perturb the engine's
/// thread pools. A slow or stuck client is bounded by a socket receive
/// timeout rather than blocking the server forever.
class HttpServer {
 public:
  /// Handler for one path. Receives the query string (text after '?',
  /// possibly empty) and returns the response.
  using Handler = std::function<HttpResponse(const std::string& query)>;

  HttpServer() = default;
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Registers `handler` for exact path `path` (e.g. "/metrics").
  /// Call before Start().
  void Handle(const std::string& path, Handler handler);

  /// Binds and starts the accept thread. `port` 0 picks an ephemeral
  /// port, readable afterwards via port().
  Status Start(const std::string& host, uint16_t port);

  /// Stops the accept thread and closes the listen socket. Idempotent.
  void Stop();

  uint16_t port() const { return port_; }

 private:
  void AcceptLoop();
  void ServeConnection(int fd);

  std::map<std::string, Handler> handlers_;
  std::atomic<bool> stop_{false};
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread thread_;
};

/// Blocking HTTP/1.1 GET against `host:port`. Fills `body` with the
/// response body and returns the status code, or a non-OK Status on
/// connect/parse failure. Used by treeserver_top and the CI smoke
/// stages so the scripts need no curl.
Status HttpGet(const std::string& host, uint16_t port, const std::string& path,
               std::string* body, int* status_code = nullptr,
               int timeout_ms = 5000);

/// Resident-set size of the calling process in bytes (0 where
/// /proc is unavailable). Reported in /statusz.
int64_t CurrentRssBytes();

}  // namespace treeserver

#endif  // TREESERVER_COMMON_HTTP_SERVER_H_
