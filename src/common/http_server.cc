#include "common/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/logging.h"

namespace treeserver {

namespace {

void SetSocketTimeout(int fd, int timeout_ms) {
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

bool SendAll(int fd, const std::string& buf) {
  size_t off = 0;
  while (off < buf.size()) {
    ssize_t n = ::send(fd, buf.data() + off, buf.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

/// Reads from `fd` until the header terminator (CRLFCRLF) or `limit`
/// bytes; returns false on error/timeout before the terminator.
bool ReadUntilHeaderEnd(int fd, std::string* buf, size_t limit) {
  char chunk[1024];
  while (buf->find("\r\n\r\n") == std::string::npos) {
    if (buf->size() > limit) return false;
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;
    buf->append(chunk, static_cast<size_t>(n));
  }
  return true;
}

const char* StatusText(int code) {
  switch (code) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    default:
      return "Error";
  }
}

std::string FormatResponse(const HttpResponse& resp) {
  char head[256];
  std::snprintf(head, sizeof(head),
                "HTTP/1.1 %d %s\r\nContent-Type: %s\r\n"
                "Content-Length: %zu\r\nConnection: close\r\n\r\n",
                resp.status, StatusText(resp.status),
                resp.content_type.c_str(), resp.body.size());
  return std::string(head) + resp.body;
}

}  // namespace

HttpServer::~HttpServer() { Stop(); }

void HttpServer::Handle(const std::string& path, Handler handler) {
  TS_CHECK(!thread_.joinable()) << "http: Handle() after Start()";
  handlers_[path] = std::move(handler);
}

Status HttpServer::Start(const std::string& host, uint16_t port) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IOError(std::string("http: socket(): ") +
                           std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("http: bad host " + host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    Status st = Status::IOError(std::string("http: bind(") + host + "): " +
                                std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  if (::listen(listen_fd_, 16) != 0) {
    Status st =
        Status::IOError(std::string("http: listen(): ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  port_ = ntohs(bound.sin_port);
  stop_.store(false);
  thread_ = std::thread(&HttpServer::AcceptLoop, this);
  return Status::OK();
}

void HttpServer::Stop() {
  if (stop_.exchange(true)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);  // wakes the blocked accept()
  }
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void HttpServer::AcceptLoop() {
  while (!stop_.load()) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listen socket shut down
    }
    if (stop_.load()) {
      ::close(fd);
      break;
    }
    SetSocketTimeout(fd, 2000);
    ServeConnection(fd);
    ::close(fd);
  }
}

void HttpServer::ServeConnection(int fd) {
  std::string req;
  if (!ReadUntilHeaderEnd(fd, &req, 64 * 1024)) return;
  // Request line: METHOD SP target SP version.
  size_t line_end = req.find("\r\n");
  std::string line = req.substr(0, line_end);
  size_t sp1 = line.find(' ');
  size_t sp2 = line.find(' ', sp1 == std::string::npos ? 0 : sp1 + 1);
  HttpResponse resp;
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    resp.status = 400;
    resp.body = "bad request\n";
    SendAll(fd, FormatResponse(resp));
    return;
  }
  const std::string method = line.substr(0, sp1);
  std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (method != "GET") {
    resp.status = 405;
    resp.body = "method not allowed\n";
    SendAll(fd, FormatResponse(resp));
    return;
  }
  std::string query;
  size_t qmark = target.find('?');
  if (qmark != std::string::npos) {
    query = target.substr(qmark + 1);
    target = target.substr(0, qmark);
  }
  auto it = handlers_.find(target);
  if (it == handlers_.end()) {
    resp.status = 404;
    resp.body = "not found\n";
  } else {
    resp = it->second(query);
  }
  SendAll(fd, FormatResponse(resp));
}

Status HttpGet(const std::string& host, uint16_t port, const std::string& path,
               std::string* body, int* status_code, int timeout_ms) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("http: socket(): ") +
                           std::strerror(errno));
  }
  SetSocketTimeout(fd, timeout_ms);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("http: bad host " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status st = Status::IOError("http: connect " + host + ": " +
                                std::strerror(errno));
    ::close(fd);
    return st;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  std::string req = "GET " + path + " HTTP/1.1\r\nHost: " + host +
                    "\r\nConnection: close\r\n\r\n";
  if (!SendAll(fd, req)) {
    ::close(fd);
    return Status::IOError("http: send failed");
  }
  // The server closes after one response, so read to EOF.
  std::string raw;
  char chunk[4096];
  while (true) {
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Status::IOError("http: recv failed");
    }
    if (n == 0) break;
    raw.append(chunk, static_cast<size_t>(n));
  }
  ::close(fd);
  size_t header_end = raw.find("\r\n\r\n");
  if (header_end == std::string::npos || raw.rfind("HTTP/", 0) != 0) {
    return Status::Corruption("http: malformed response");
  }
  size_t sp = raw.find(' ');
  int code = sp == std::string::npos ? 0 : std::atoi(raw.c_str() + sp + 1);
  if (status_code != nullptr) *status_code = code;
  *body = raw.substr(header_end + 4);
  return Status::OK();
}

int64_t CurrentRssBytes() {
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  long long pages_total = 0, pages_rss = 0;
  int parsed = std::fscanf(f, "%lld %lld", &pages_total, &pages_rss);
  std::fclose(f);
  if (parsed != 2) return 0;
  return static_cast<int64_t>(pages_rss) *
         static_cast<int64_t>(::sysconf(_SC_PAGESIZE));
#else
  return 0;
#endif
}

}  // namespace treeserver
