#ifndef TREESERVER_COMMON_PROMETHEUS_H_
#define TREESERVER_COMMON_PROMETHEUS_H_

#include <string>
#include <utility>
#include <vector>

#include "common/metrics_registry.h"

namespace treeserver {

/// Label set attached to every exported sample (e.g. {{"rank","0"}}).
using PrometheusLabels = std::vector<std::pair<std::string, std::string>>;

/// Sanitizes a registry metric name into the Prometheus grammar
/// [a-zA-Z_:][a-zA-Z0-9_:]* — dots and other foreign characters become
/// underscores ("engine.slow_tasks" -> "engine_slow_tasks").
std::string PrometheusMetricName(const std::string& name);

/// Escapes a label value per the text exposition format: backslash,
/// double quote and newline get backslash-escaped.
std::string PrometheusEscapeLabel(const std::string& value);

/// Renders one metric snapshot in the Prometheus text exposition
/// format v0.0.4. Counters become `counter` samples; gauges emit the
/// current value plus a `<name>_peak` gauge; busy clocks emit
/// `<name>_seconds`; histograms emit cumulative `_bucket{le="..."}`
/// series (log-bucketed upper bounds plus `+Inf`), `_sum` and
/// `_count`.
void AppendPrometheusMetric(const MetricSnapshot& metric,
                            const PrometheusLabels& labels, std::string* out);

/// Full registry export: every metric in `snapshot` with the common
/// `labels` attached to each sample.
std::string PrometheusExport(const std::vector<MetricSnapshot>& snapshot,
                             const PrometheusLabels& labels = {});

}  // namespace treeserver

#endif  // TREESERVER_COMMON_PROMETHEUS_H_
