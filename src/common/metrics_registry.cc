#include "common/metrics_registry.h"

#include <algorithm>
#include <cstdio>

namespace treeserver {

uint64_t Histogram::Snapshot::Percentile(double p) const {
  if (count == 0) return 0;
  p = std::min(std::max(p, 0.0), 1.0);
  const double rank = p * static_cast<double>(count - 1);
  uint64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    const uint64_t in_bucket = buckets[i];
    if (in_bucket == 0) continue;
    if (static_cast<double>(seen + in_bucket) > rank) {
      // The true value lies in this bucket. The power-of-two buckets
      // double in width, so reporting the raw upper bound makes every
      // tail percentile collapse onto the max; interpolate linearly
      // within the bucket instead, assuming its samples are evenly
      // spread over [lower, min(upper, max)].
      const uint64_t lo = BucketLowerBound(i);
      const uint64_t hi = std::min(BucketUpperBound(i), max);
      const double frac =
          (rank - static_cast<double>(seen) + 1.0) /
          static_cast<double>(in_bucket);
      const uint64_t v =
          lo + static_cast<uint64_t>(frac * static_cast<double>(hi - lo));
      return std::min(v, max);
    }
    seen += in_bucket;
  }
  return max;
}

void Histogram::Snapshot::Merge(const Snapshot& other) {
  count += other.count;
  sum += other.sum;
  max = std::max(max, other.max);
  for (int i = 0; i < kNumBuckets; ++i) buckets[i] += other.buckets[i];
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot s;
  s.count = Count();
  s.sum = Sum();
  s.max = Max();
  for (int i = 0; i < kNumBuckets; ++i) s.buckets[i] = bucket_count(i);
  return s;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry;  // leaked
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

PeakGauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<PeakGauge>();
  return slot.get();
}

BusyClock* MetricsRegistry::GetClock(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = clocks_[name];
  if (slot == nullptr) slot = std::make_unique<BusyClock>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

std::vector<MetricSnapshot> MetricsRegistry::Snapshot() const {
  std::vector<MetricSnapshot> out;
  std::lock_guard<std::mutex> lock(mu_);
  out.reserve(counters_.size() + gauges_.size() + clocks_.size() +
              histograms_.size());
  for (const auto& [name, c] : counters_) {
    MetricSnapshot m;
    m.name = name;
    m.kind = MetricSnapshot::Kind::kCounter;
    m.count = c->value();
    out.push_back(std::move(m));
  }
  for (const auto& [name, g] : gauges_) {
    MetricSnapshot m;
    m.name = name;
    m.kind = MetricSnapshot::Kind::kGauge;
    m.value = g->value();
    m.peak = g->peak();
    out.push_back(std::move(m));
  }
  for (const auto& [name, c] : clocks_) {
    MetricSnapshot m;
    m.name = name;
    m.kind = MetricSnapshot::Kind::kClock;
    m.seconds = c->Seconds();
    out.push_back(std::move(m));
  }
  for (const auto& [name, h] : histograms_) {
    MetricSnapshot m;
    m.name = name;
    m.kind = MetricSnapshot::Kind::kHistogram;
    m.histogram = h->snapshot();
    m.count = m.histogram.count;
    out.push_back(std::move(m));
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSnapshot& a, const MetricSnapshot& b) {
              return a.name < b.name;
            });
  return out;
}

std::string MetricsRegistry::DumpText() const {
  std::string out;
  char buf[256];
  for (const MetricSnapshot& m : Snapshot()) {
    switch (m.kind) {
      case MetricSnapshot::Kind::kCounter:
        std::snprintf(buf, sizeof(buf), "%-40s counter %llu\n",
                      m.name.c_str(),
                      static_cast<unsigned long long>(m.count));
        break;
      case MetricSnapshot::Kind::kGauge:
        std::snprintf(buf, sizeof(buf), "%-40s gauge   %lld (peak %lld)\n",
                      m.name.c_str(), static_cast<long long>(m.value),
                      static_cast<long long>(m.peak));
        break;
      case MetricSnapshot::Kind::kClock:
        std::snprintf(buf, sizeof(buf), "%-40s clock   %.6fs\n",
                      m.name.c_str(), m.seconds);
        break;
      case MetricSnapshot::Kind::kHistogram:
        std::snprintf(
            buf, sizeof(buf),
            "%-40s histo   n=%llu mean=%.1f p50=%llu p99=%llu max=%llu\n",
            m.name.c_str(), static_cast<unsigned long long>(m.histogram.count),
            m.histogram.Mean(),
            static_cast<unsigned long long>(m.histogram.Percentile(0.50)),
            static_cast<unsigned long long>(m.histogram.Percentile(0.99)),
            static_cast<unsigned long long>(m.histogram.max));
        break;
    }
    out += buf;
  }
  return out;
}

std::string MetricsRegistry::DumpJson() const {
  std::string out = "{";
  char buf[256];
  bool first = true;
  for (const MetricSnapshot& m : Snapshot()) {
    if (!first) out += ",";
    first = false;
    out += "\"" + m.name + "\":";
    switch (m.kind) {
      case MetricSnapshot::Kind::kCounter:
        std::snprintf(buf, sizeof(buf), "{\"type\":\"counter\",\"value\":%llu}",
                      static_cast<unsigned long long>(m.count));
        break;
      case MetricSnapshot::Kind::kGauge:
        std::snprintf(buf, sizeof(buf),
                      "{\"type\":\"gauge\",\"value\":%lld,\"peak\":%lld}",
                      static_cast<long long>(m.value),
                      static_cast<long long>(m.peak));
        break;
      case MetricSnapshot::Kind::kClock:
        std::snprintf(buf, sizeof(buf),
                      "{\"type\":\"clock\",\"seconds\":%.6f}", m.seconds);
        break;
      case MetricSnapshot::Kind::kHistogram:
        std::snprintf(
            buf, sizeof(buf),
            "{\"type\":\"histogram\",\"count\":%llu,\"sum\":%llu,"
            "\"mean\":%.3f,\"p50\":%llu,\"p99\":%llu,\"max\":%llu}",
            static_cast<unsigned long long>(m.histogram.count),
            static_cast<unsigned long long>(m.histogram.sum),
            m.histogram.Mean(),
            static_cast<unsigned long long>(m.histogram.Percentile(0.50)),
            static_cast<unsigned long long>(m.histogram.Percentile(0.99)),
            static_cast<unsigned long long>(m.histogram.max));
        break;
    }
    out += buf;
  }
  out += "}";
  return out;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, c] : clocks_) c->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

}  // namespace treeserver
