#ifndef TREESERVER_COMMON_JSON_H_
#define TREESERVER_COMMON_JSON_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace treeserver {

/// Minimal recursive-descent JSON value/parser, enough to consume the
/// system's own output (trace files, /statusz, DumpJson) without an
/// external dependency. Numbers are held as double; no unicode escape
/// decoding beyond pass-through of \uXXXX sequences.
class JsonValue {
 public:
  enum class Type : uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool as_bool() const { return bool_; }
  double as_number() const { return number_; }
  const std::string& as_string() const { return string_; }
  const std::vector<JsonValue>& as_array() const { return array_; }
  const std::map<std::string, JsonValue>& as_object() const { return object_; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const {
    if (type_ != Type::kObject) return nullptr;
    auto it = object_.find(key);
    return it == object_.end() ? nullptr : &it->second;
  }
  /// Convenience: numeric member or `fallback`.
  double NumberOr(const std::string& key, double fallback) const {
    const JsonValue* v = Find(key);
    return v != nullptr && v->is_number() ? v->as_number() : fallback;
  }
  /// Convenience: string member or `fallback`.
  std::string StringOr(const std::string& key,
                       const std::string& fallback) const {
    const JsonValue* v = Find(key);
    return v != nullptr && v->is_string() ? v->as_string() : fallback;
  }

  /// Parses `text` (entire buffer must be one JSON document, modulo
  /// surrounding whitespace).
  static Status Parse(const std::string& text, JsonValue* out);

 private:
  friend class JsonParser;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

}  // namespace treeserver

#endif  // TREESERVER_COMMON_JSON_H_
