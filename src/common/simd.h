#ifndef TREESERVER_COMMON_SIMD_H_
#define TREESERVER_COMMON_SIMD_H_

#include <cstdint>
#include <string>

namespace treeserver {

/// Vector instruction set the hot-path kernels (histogram builds,
/// batched traversal helpers) run with. Selected once at startup:
/// the best level that was (a) compiled in (CMake option TS_SIMD,
/// default ON) and (b) supported by the CPU we are running on, with an
/// optional TS_SIMD environment override (`TS_SIMD=off|scalar|avx2|
/// neon|auto`). Every SIMD kernel has a scalar twin producing
/// bit-identical results, so the level only changes speed, never
/// output — see tree/hist_kernels.h and serve/packed_tree.h for the
/// exactness arguments, and tests/simd_test.cc for the fuzzed parity
/// coverage.
enum class SimdLevel : uint8_t {
  kScalar = 0,
  kAvx2 = 1,
  kNeon = 2,
};

const char* SimdLevelName(SimdLevel level);

/// The level dispatch uses. Resolved on first call (CPU probe + env
/// override) and cached; cheap enough for per-call reads but kernels
/// should still resolve it once per batch, not per row.
SimdLevel ActiveSimdLevel();

/// The best level compiled into this binary and supported by this CPU,
/// ignoring any TS_SIMD override. What /statusz reports alongside the
/// active level.
SimdLevel DetectedSimdLevel();

/// Forces the active level (tests and the scalar-baseline bench
/// passes). Forcing a level the build/CPU cannot execute is refused
/// (returns false, level unchanged) — except kScalar, always legal.
bool SetSimdLevel(SimdLevel level);

/// `"simd":"avx2","simd_detected":"avx2"` — the /statusz fragment every
/// rank reports (no surrounding braces).
std::string SimdStatusJson();

}  // namespace treeserver

#endif  // TREESERVER_COMMON_SIMD_H_
