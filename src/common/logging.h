#ifndef TREESERVER_COMMON_LOGGING_H_
#define TREESERVER_COMMON_LOGGING_H_

#include <cstdlib>
#include <sstream>
#include <string>

namespace treeserver {

/// Severity levels for the process-wide logger.
enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kFatal = 4,
};

/// Sets the minimum severity that is emitted (default: kWarn, so tests
/// and benchmarks stay quiet unless something is wrong).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_logging {

/// Stream-style log sink that emits on destruction. kFatal aborts.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Discards the streamed expression when the level is filtered out.
struct LogMessageVoidify {
  void operator&(std::ostream&) {}
};

}  // namespace internal_logging

#define TS_LOG_IS_ON(level) \
  (::treeserver::LogLevel::level >= ::treeserver::GetLogLevel())

#define TS_LOG(level)                                                        \
  !TS_LOG_IS_ON(level)                                                       \
      ? (void)0                                                              \
      : ::treeserver::internal_logging::LogMessageVoidify() &                \
            ::treeserver::internal_logging::LogMessage(                      \
                ::treeserver::LogLevel::level, __FILE__, __LINE__)           \
                .stream()

/// Always-on invariant check; aborts with a message when violated.
#define TS_CHECK(cond)                                                      \
  (cond) ? (void)0                                                          \
         : ::treeserver::internal_logging::LogMessageVoidify() &            \
               ::treeserver::internal_logging::LogMessage(                  \
                   ::treeserver::LogLevel::kFatal, __FILE__, __LINE__)      \
                   .stream()                                                \
               << "Check failed: " #cond " "

#ifndef NDEBUG
#define TS_DCHECK(cond) TS_CHECK(cond)
#else
#define TS_DCHECK(cond) \
  while (false) TS_CHECK(cond)
#endif

}  // namespace treeserver

#endif  // TREESERVER_COMMON_LOGGING_H_
