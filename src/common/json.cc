#include "common/json.h"

#include <cstdlib>

namespace treeserver {

class JsonParser {
 public:
  JsonParser(const char* data, size_t size) : p_(data), end_(data + size) {}

  Status ParseDocument(JsonValue* out) {
    SkipWs();
    TS_RETURN_IF_ERROR(ParseValue(out, 0));
    SkipWs();
    if (p_ != end_) return Err("trailing bytes after document");
    return Status::OK();
  }

 private:
  static constexpr int kMaxDepth = 128;

  Status Err(const char* msg) const {
    return Status::Corruption(std::string("json: ") + msg);
  }

  void SkipWs() {
    while (p_ != end_ &&
           (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' || *p_ == '\r')) {
      ++p_;
    }
  }

  bool Consume(char c) {
    if (p_ != end_ && *p_ == c) {
      ++p_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(const char* word) {
    const char* q = p_;
    for (const char* w = word; *w != '\0'; ++w, ++q) {
      if (q == end_ || *q != *w) return false;
    }
    p_ = q;
    return true;
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Err("nesting too deep");
    if (p_ == end_) return Err("unexpected end of input");
    switch (*p_) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"':
        out->type_ = JsonValue::Type::kString;
        return ParseString(&out->string_);
      case 't':
        if (!ConsumeWord("true")) return Err("bad literal");
        out->type_ = JsonValue::Type::kBool;
        out->bool_ = true;
        return Status::OK();
      case 'f':
        if (!ConsumeWord("false")) return Err("bad literal");
        out->type_ = JsonValue::Type::kBool;
        out->bool_ = false;
        return Status::OK();
      case 'n':
        if (!ConsumeWord("null")) return Err("bad literal");
        out->type_ = JsonValue::Type::kNull;
        return Status::OK();
      default:
        return ParseNumber(out);
    }
  }

  Status ParseObject(JsonValue* out, int depth) {
    ++p_;  // '{'
    out->type_ = JsonValue::Type::kObject;
    SkipWs();
    if (Consume('}')) return Status::OK();
    while (true) {
      SkipWs();
      if (p_ == end_ || *p_ != '"') return Err("expected object key");
      std::string key;
      TS_RETURN_IF_ERROR(ParseString(&key));
      SkipWs();
      if (!Consume(':')) return Err("expected ':'");
      SkipWs();
      JsonValue value;
      TS_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->object_.emplace(std::move(key), std::move(value));
      SkipWs();
      if (Consume('}')) return Status::OK();
      if (!Consume(',')) return Err("expected ',' or '}'");
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    ++p_;  // '['
    out->type_ = JsonValue::Type::kArray;
    SkipWs();
    if (Consume(']')) return Status::OK();
    while (true) {
      SkipWs();
      JsonValue value;
      TS_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->array_.push_back(std::move(value));
      SkipWs();
      if (Consume(']')) return Status::OK();
      if (!Consume(',')) return Err("expected ',' or ']'");
    }
  }

  Status ParseString(std::string* out) {
    ++p_;  // opening quote
    out->clear();
    while (true) {
      if (p_ == end_) return Err("unterminated string");
      char c = *p_++;
      if (c == '"') return Status::OK();
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (p_ == end_) return Err("unterminated escape");
      char esc = *p_++;
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          out->push_back(esc);
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          // Pass the raw sequence through; none of our producers emit
          // \u escapes, this just keeps foreign input from erroring.
          if (end_ - p_ < 4) return Err("short unicode escape");
          out->append("\\u");
          out->append(p_, 4);
          p_ += 4;
          break;
        }
        default:
          return Err("bad escape");
      }
    }
  }

  Status ParseNumber(JsonValue* out) {
    const char* start = p_;
    if (p_ != end_ && (*p_ == '-' || *p_ == '+')) ++p_;
    bool digits = false;
    while (p_ != end_ && ((*p_ >= '0' && *p_ <= '9') || *p_ == '.' ||
                          *p_ == 'e' || *p_ == 'E' || *p_ == '-' ||
                          *p_ == '+')) {
      if (*p_ >= '0' && *p_ <= '9') digits = true;
      ++p_;
    }
    if (!digits) return Err("bad number");
    std::string text(start, p_);
    char* parse_end = nullptr;
    double value = std::strtod(text.c_str(), &parse_end);
    if (parse_end == nullptr || *parse_end != '\0') return Err("bad number");
    out->type_ = JsonValue::Type::kNumber;
    out->number_ = value;
    return Status::OK();
  }

  const char* p_;
  const char* end_;
};

Status JsonValue::Parse(const std::string& text, JsonValue* out) {
  *out = JsonValue();
  JsonParser parser(text.data(), text.size());
  return parser.ParseDocument(out);
}

}  // namespace treeserver
