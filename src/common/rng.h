#ifndef TREESERVER_COMMON_RNG_H_
#define TREESERVER_COMMON_RNG_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <limits>
#include <vector>

namespace treeserver {

/// Deterministic, fast pseudo-random generator (splitmix64 core).
///
/// Every stochastic component in the library (bagging, column sampling,
/// extra-tree thresholds, dataset generators) takes an explicit Rng so
/// experiments are reproducible from a single seed.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) : state_(seed) {}

  /// Next raw 64-bit value.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t Uniform(uint64_t bound) { return Next() % bound; }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi) {
    return lo + (hi - lo) * UniformDouble();
  }

  /// Approximate standard normal via sum of uniforms (Irwin–Hall, 12
  /// terms): cheap and good enough for synthetic data generation.
  double Normal() {
    double s = 0.0;
    for (int i = 0; i < 12; ++i) s += UniformDouble();
    return s - 6.0;
  }

  /// True with probability p.
  bool Bernoulli(double p) { return UniformDouble() < p; }

  /// Samples k distinct values from [0, n) (Floyd's algorithm would be
  /// fancier; partial Fisher–Yates is simple and O(n) space, which is
  /// fine at our column counts). Result order is random.
  std::vector<int> SampleWithoutReplacement(int n, int k);

  /// In-place Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = Uniform(i);
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Forks an independent stream (for per-tree / per-worker RNGs).
  Rng Fork() { return Rng(Next()); }

 private:
  uint64_t state_;
};

inline std::vector<int> Rng::SampleWithoutReplacement(int n, int k) {
  if (k > n) k = n;
  std::vector<int> all(n);
  for (int i = 0; i < n; ++i) all[i] = i;
  for (int i = 0; i < k; ++i) {
    int j = i + static_cast<int>(Uniform(static_cast<uint64_t>(n - i)));
    std::swap(all[i], all[j]);
  }
  all.resize(k);
  return all;
}

}  // namespace treeserver

#endif  // TREESERVER_COMMON_RNG_H_
