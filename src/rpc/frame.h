#ifndef TREESERVER_RPC_FRAME_H_
#define TREESERVER_RPC_FRAME_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "rpc/transport.h"

namespace treeserver {

/// TCP wire frame (little-endian, 40-byte header + payload):
///
///   offset  size  field
///        0     4  magic          0x54535246 ("TSRF")
///        4     1  format version (kFrameVersion)
///        5     1  channel        0 task, 1 data, 2 control, 3 trace
///        6     2  src_generation sender's fencing epoch (0 = initial)
///        8     4  msg_type       engine MsgType, or kCtrl* on control
///       12     4  src rank       int32 (-1 = master)
///       16     4  dst rank       int32 (-1 = master)
///       20     8  trace_id       correlation id (not byte-accounted)
///       28     4  payload_len    bytes following the header
///       32     4  payload_crc32c CRC-32C of the payload bytes
///       36     4  header_crc32c  CRC-32C of header bytes [0, 36)
///
/// The trailing header CRC covers every preceding header byte, so any
/// single-bit corruption of the header is detected; the payload CRC
/// covers the body. Decoders return Status and never crash on hostile
/// bytes.
inline constexpr uint32_t kFrameMagic = 0x54535246u;  // "TSRF"
inline constexpr uint8_t kFrameVersion = 1;
inline constexpr size_t kFrameHeaderBytes = 40;
/// Upper bound on a frame payload; a length field above this is
/// treated as corruption rather than attempted as an allocation.
inline constexpr uint32_t kMaxFramePayload = 1u << 30;

/// Wire values of the `channel` byte. kTask/kData/kTrace mirror
/// ChannelKind (trace frames carry Tracer snapshots at low priority);
/// control frames (handshake, heartbeat) never reach the engine.
inline constexpr uint8_t kWireChannelTask = 0;
inline constexpr uint8_t kWireChannelData = 1;
inline constexpr uint8_t kWireChannelControl = 2;
inline constexpr uint8_t kWireChannelTrace = 3;
inline constexpr uint8_t kMaxWireChannel = kWireChannelTrace;

/// msg_type values used on the control channel.
inline constexpr uint32_t kCtrlHello = 1;  // payload: i32 sender rank
/// Heartbeat payload (PR 6 onward): three u64 trace-clock readings
/// (t_send, echo of the peer's last t_send, ns elapsed since that
/// heartbeat arrived) from which the receiver derives an NTP-style
/// RTT + clock-offset sample (common/clock_sync.h). Decoders accept an
/// empty payload (pre-PR 6 heartbeats) and simply learn no offset.
inline constexpr uint32_t kCtrlHeartbeat = 2;

/// Parsed frame header, in host form.
struct FrameHeader {
  uint8_t version = kFrameVersion;
  uint8_t channel = kWireChannelTask;
  uint16_t src_generation = 0;
  uint32_t msg_type = 0;
  int32_t src = 0;
  int32_t dst = 0;
  uint64_t trace_id = 0;
  uint32_t payload_len = 0;
  uint32_t payload_crc = 0;
};

/// Appends one fully framed message (header + payload) to `out`.
/// `generation` is the sender's fencing epoch: a restarted process
/// announces a higher value so frames from its previous incarnation
/// (a healed partition's "zombie") can be recognised and dropped.
void AppendFrame(uint8_t wire_channel, const Message& msg, std::string* out,
                 uint16_t generation = 0);

/// Convenience for control frames (hello / heartbeat).
void AppendControlFrame(uint32_t ctrl_type, int src, int dst,
                        const std::string& payload, std::string* out,
                        uint16_t generation = 0);

/// Parses and validates the 40-byte header at `data` (`len` >=
/// kFrameHeaderBytes). Checks magic, header CRC, version, channel and
/// payload bound; never reads past `len`.
Status ParseFrameHeader(const char* data, size_t len, FrameHeader* out);

/// Verifies the payload bytes against the header's CRC.
Status VerifyFramePayload(const FrameHeader& header, const char* payload,
                          size_t len);

/// Whole-buffer decode (tests, fuzzing): parses exactly one frame that
/// must span the entire buffer.
Status DecodeFrame(const std::string& buf, FrameHeader* header,
                   std::string* payload);

}  // namespace treeserver

#endif  // TREESERVER_RPC_FRAME_H_
