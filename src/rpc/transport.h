#ifndef TREESERVER_RPC_TRANSPORT_H_
#define TREESERVER_RPC_TRANSPORT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/metrics_registry.h"
#include "concurrent/blocking_queue.h"

namespace treeserver {

/// Endpoint id of the master (workers are 0..num_workers-1).
inline constexpr int kMasterRank = -1;

/// One engine message. `type` is interpreted by the engine (see
/// engine/messages.h); the transport treats the payload as opaque
/// bytes and only accounts/throttles them.
struct Message {
  int src = kMasterRank;
  int dst = kMasterRank;
  uint32_t type = 0;
  std::string payload;
  /// Correlation id for tracing (the task id the message belongs to,
  /// when the sender knows it); 0 = uncorrelated. Serialized in the
  /// TCP wire frame so master and worker process spans correlate by
  /// task id, but exempt from the byte counters on every transport.
  uint64_t trace_id = 0;
};

/// The two channel classes of Fig. 6 — Task Comm (master <-> workers)
/// and Data Comm (worker <-> worker) — plus the low-priority trace
/// channel that ships Tracer snapshots to the master for merged
/// cluster traces. Trace traffic never competes with engine traffic:
/// the TCP transport drains it only when the task/data queue is empty.
enum class ChannelKind : uint8_t {
  kTask = 0,
  kData = 1,
  kTrace = 2,
};

inline constexpr int kNumChannelKinds = 3;

/// Point-in-time transport statistics (part of the EngineStats
/// snapshot). Kept under its historical name: the engine grew up on
/// the in-process simulated network.
struct NetworkStats {
  struct Endpoint {
    uint64_t bytes_sent = 0;
    uint64_t bytes_recv = 0;
    uint64_t msgs_sent = 0;
    /// Messages dropped because this endpoint was crashed (as source
    /// or destination) or its queue was closed.
    uint64_t msgs_dropped = 0;
    /// TCP transport only (zero in-process): times the outbound
    /// connection to this peer was re-established after a break.
    uint64_t reconnects = 0;
    /// TCP transport only: heartbeat periods that elapsed without any
    /// frame arriving from this peer.
    uint64_t heartbeat_misses = 0;
    /// TCP transport only: high-water mark of the bounded per-peer
    /// send buffer, in bytes.
    uint64_t send_buffer_hwm = 0;
  };
  /// Indexed by worker id; the last entry is the master.
  std::vector<Endpoint> endpoints;
  /// Per-channel payload-size (bytes) and send-latency (µs, including
  /// simulated link throttling or TCP backpressure waits)
  /// distributions.
  Histogram::Snapshot task_payload_bytes;
  Histogram::Snapshot data_payload_bytes;
  Histogram::Snapshot task_send_micros;
  Histogram::Snapshot data_send_micros;
};

/// Abstract cluster interconnect.
///
/// The engine (master, workers) is written against this interface and
/// never assumes shared memory: everything that crosses a Transport is
/// serialized bytes. Two implementations exist:
///  - InProcessTransport (net/network.h): the simulated network the
///    engine grew up on — all ranks live in one process, delivery is a
///    queue push, optional bandwidth throttling models a saturated NIC;
///  - TcpTransport (rpc/tcp_transport.h): real sockets between
///    separate OS processes, with framing, heartbeats, dead-peer
///    detection and reconnect.
///
/// Receive side: each rank drains its own mailboxes. Workers own a
/// task queue and a data queue; the master owns one queue.
/// Implementations that host only one rank (TCP) expose only that
/// rank's queues.
///
/// Byte accounting is shared across implementations: every non-local
/// send charges payload + kHeaderBytes to the source (sent) and the
/// destination (recv) counters the implementation can see, so
/// in-process and TCP runs of the same job report comparable Fig. 6 /
/// Table VI numbers. Message::trace_id is never charged.
class Transport {
 public:
  /// Fixed per-message overhead charged on top of the payload. This is
  /// the *modeled* header of the paper's experiments, not the physical
  /// TCP frame size (see rpc/frame.h), so both transports account
  /// identically.
  static constexpr uint64_t kHeaderBytes = 24;

  explicit Transport(int num_workers);
  virtual ~Transport() = default;

  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  int num_workers() const { return num_workers_; }

  /// Routes a message. Returns false if it was dropped (endpoint
  /// crashed, destination unreachable, or queue closed).
  virtual bool Send(ChannelKind channel, Message msg) = 0;

  /// Local mailboxes. Implementations hosting a single rank abort when
  /// asked for another rank's queue.
  virtual BlockingQueue<Message>& task_queue(int worker) = 0;
  virtual BlockingQueue<Message>& data_queue(int worker) = 0;
  virtual BlockingQueue<Message>& master_queue() = 0;

  /// Marks a worker as crashed: all of its traffic is dropped from now
  /// on. In-process also closes its queues so its threads terminate;
  /// TCP additionally tears down the connection state.
  virtual void SetCrashed(int worker) = 0;
  bool IsCrashed(int worker) const {
    return crashed_[Index(worker)].load(std::memory_order_relaxed);
  }

  /// Closes every local queue (engine shutdown).
  virtual void CloseAll() = 0;

  /// Per-endpoint traffic counters (payload + fixed header bytes).
  uint64_t bytes_sent(int endpoint) const {
    return sent_[Index(endpoint)].value();
  }
  uint64_t bytes_received(int endpoint) const {
    return recv_[Index(endpoint)].value();
  }
  uint64_t total_bytes() const;
  /// Messages dropped with `endpoint` as the crashed/closed party.
  uint64_t msgs_dropped(int endpoint) const {
    return dropped_[Index(endpoint)].value();
  }
  uint64_t total_msgs_dropped() const;
  virtual void ResetCounters();

  /// Snapshot of per-endpoint traffic and per-channel distributions.
  /// Implementations extend the base snapshot with their own fields
  /// (TCP adds reconnects / heartbeat misses / send-buffer HWM).
  virtual NetworkStats GetStats() const;

 protected:
  /// Endpoint slot: workers 0..n-1, master last.
  size_t Index(int endpoint) const {
    return endpoint == kMasterRank ? static_cast<size_t>(num_workers_)
                                   : static_cast<size_t>(endpoint);
  }

  void MarkCrashed(int endpoint) {
    crashed_[Index(endpoint)].store(true, std::memory_order_relaxed);
  }
  void CountDrop(int charged_endpoint) {
    dropped_[Index(charged_endpoint)].Inc();
  }
  /// Charges a non-local send to the per-endpoint counters and the
  /// per-channel payload histogram.
  void AccountSend(ChannelKind channel, int src, int dst,
                   uint64_t payload_bytes);
  /// Sender-side half of AccountSend (sent/msgs/histogram, no recv):
  /// the TCP transport charges this locally and lets the remote
  /// process charge its own receive counter.
  void AccountSendLocal(ChannelKind channel, int src, uint64_t payload_bytes);
  /// Receiver-side half: charges recv only (TCP inbound deliveries).
  void AccountRecvLocal(int dst, uint64_t payload_bytes);
  /// Records time spent inside Send() (throttle or backpressure).
  void AccountSendMicros(ChannelKind channel, uint64_t micros);

  const int num_workers_;

 private:
  // One counter slot per worker plus one for the master.
  std::vector<Counter> sent_;
  std::vector<Counter> recv_;
  std::vector<Counter> msgs_;
  /// Drops charged to the endpoint that caused them (the crashed
  /// source/destination, or the closed queue's owner).
  std::vector<Counter> dropped_;
  std::vector<std::atomic<bool>> crashed_;

  // Per-channel distributions (index = ChannelKind).
  Histogram payload_bytes_[kNumChannelKinds];
  Histogram send_micros_[kNumChannelKinds];
};

}  // namespace treeserver

#endif  // TREESERVER_RPC_TRANSPORT_H_
