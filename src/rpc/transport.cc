#include "rpc/transport.h"

#include "common/logging.h"

namespace treeserver {

Transport::Transport(int num_workers)
    : num_workers_(num_workers),
      sent_(num_workers + 1),
      recv_(num_workers + 1),
      msgs_(num_workers + 1),
      dropped_(num_workers + 1),
      crashed_(num_workers + 1) {
  TS_CHECK(num_workers > 0);
  for (int i = 0; i <= num_workers; ++i) {
    crashed_[i].store(false, std::memory_order_relaxed);
  }
}

void Transport::AccountSend(ChannelKind channel, int src, int dst,
                            uint64_t payload_bytes) {
  AccountSendLocal(channel, src, payload_bytes);
  AccountRecvLocal(dst, payload_bytes);
}

void Transport::AccountSendLocal(ChannelKind channel, int src,
                                 uint64_t payload_bytes) {
  const uint64_t bytes = payload_bytes + kHeaderBytes;
  sent_[Index(src)].Add(bytes);
  msgs_[Index(src)].Inc();
  payload_bytes_[static_cast<int>(channel)].Add(bytes);
}

void Transport::AccountRecvLocal(int dst, uint64_t payload_bytes) {
  recv_[Index(dst)].Add(payload_bytes + kHeaderBytes);
}

void Transport::AccountSendMicros(ChannelKind channel, uint64_t micros) {
  send_micros_[static_cast<int>(channel)].Add(micros);
}

uint64_t Transport::total_bytes() const {
  uint64_t total = 0;
  for (const Counter& c : sent_) total += c.value();
  return total;
}

uint64_t Transport::total_msgs_dropped() const {
  uint64_t total = 0;
  for (const Counter& c : dropped_) total += c.value();
  return total;
}

void Transport::ResetCounters() {
  for (Counter& c : sent_) c.Reset();
  for (Counter& c : recv_) c.Reset();
  for (Counter& c : msgs_) c.Reset();
  for (Counter& c : dropped_) c.Reset();
  for (Histogram& h : payload_bytes_) h.Reset();
  for (Histogram& h : send_micros_) h.Reset();
}

NetworkStats Transport::GetStats() const {
  NetworkStats stats;
  stats.endpoints.resize(num_workers_ + 1);
  for (int i = 0; i <= num_workers_; ++i) {
    stats.endpoints[i].bytes_sent = sent_[i].value();
    stats.endpoints[i].bytes_recv = recv_[i].value();
    stats.endpoints[i].msgs_sent = msgs_[i].value();
    stats.endpoints[i].msgs_dropped = dropped_[i].value();
  }
  stats.task_payload_bytes =
      payload_bytes_[static_cast<int>(ChannelKind::kTask)].snapshot();
  stats.data_payload_bytes =
      payload_bytes_[static_cast<int>(ChannelKind::kData)].snapshot();
  stats.task_send_micros =
      send_micros_[static_cast<int>(ChannelKind::kTask)].snapshot();
  stats.data_send_micros =
      send_micros_[static_cast<int>(ChannelKind::kData)].snapshot();
  return stats;
}

}  // namespace treeserver
