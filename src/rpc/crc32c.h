#ifndef TREESERVER_RPC_CRC32C_H_
#define TREESERVER_RPC_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace treeserver {

/// CRC-32C (Castagnoli) over `data[0..len)`. Software table-driven
/// implementation; fast enough for framing (the payloads it guards are
/// dominated by serialization cost anyway).
uint32_t Crc32c(const void* data, size_t len);

/// Incremental form: feed `crc` back in to extend a running checksum.
/// `Crc32cExtend(0, p, n) == Crc32c(p, n)`.
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t len);

}  // namespace treeserver

#endif  // TREESERVER_RPC_CRC32C_H_
