#include "rpc/tcp_transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <random>

#include "common/logging.h"
#include "common/serial.h"
#include "common/trace.h"
#include "rpc/frame.h"

namespace treeserver {

namespace {

uint8_t WireChannelFor(ChannelKind channel) {
  switch (channel) {
    case ChannelKind::kTask:
      return kWireChannelTask;
    case ChannelKind::kData:
      return kWireChannelData;
    case ChannelKind::kTrace:
      return kWireChannelTrace;
  }
  return kWireChannelTask;
}

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

uint64_t NowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Writes the whole buffer; returns false on any socket error.
bool SendAll(int fd, const std::string& buf) {
  size_t off = 0;
  while (off < buf.size()) {
    ssize_t n = ::send(fd, buf.data() + off, buf.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

/// Reads exactly `len` bytes; returns false on EOF or error.
bool RecvAll(int fd, char* out, size_t len) {
  size_t off = 0;
  while (off < len) {
    ssize_t n = ::recv(fd, out + off, len - off, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;  // peer closed
    off += static_cast<size_t>(n);
  }
  return true;
}

/// Blocking connect; returns the fd or -1.
int Dial(const std::string& host, uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return -1;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

bool ParseHostPort(const std::string& addr, std::string* host,
                   uint16_t* port) {
  size_t colon = addr.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= addr.size()) {
    return false;
  }
  *host = addr.substr(0, colon);
  long p = 0;
  for (size_t i = colon + 1; i < addr.size(); ++i) {
    if (addr[i] < '0' || addr[i] > '9') return false;
    p = p * 10 + (addr[i] - '0');
    if (p > 65535) return false;
  }
  if (p == 0) return false;
  *port = static_cast<uint16_t>(p);
  return true;
}

}  // namespace

TcpTransport::TcpTransport(const TcpTransportOptions& options)
    : Transport(options.num_workers),
      opts_(options),
      local_rank_(options.local_rank),
      fenced_msgs_(MetricsRegistry::Global().GetCounter("engine.fenced_msgs")) {
  TS_CHECK(local_rank_ == kMasterRank ||
           (local_rank_ >= 0 && local_rank_ < num_workers_))
      << "bad local rank " << local_rank_;

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  TS_CHECK(listen_fd_ >= 0) << "socket(): " << std::strerror(errno);
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(opts_.listen_port);
  TS_CHECK(::inet_pton(AF_INET, opts_.listen_host.c_str(), &addr.sin_addr) ==
           1)
      << "bad listen host " << opts_.listen_host;
  TS_CHECK(::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                  sizeof(addr)) == 0)
      << "bind(" << opts_.listen_host << ":" << opts_.listen_port
      << "): " << std::strerror(errno);
  TS_CHECK(::listen(listen_fd_, 128) == 0)
      << "listen(): " << std::strerror(errno);
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  TS_CHECK(::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                         &len) == 0);
  listen_port_ = ntohs(bound.sin_port);
}

TcpTransport::~TcpTransport() { Shutdown(); }

bool TcpTransport::ValidRemoteRank(int rank) const {
  return (rank == kMasterRank || (rank >= 0 && rank < num_workers_)) &&
         rank != local_rank_;
}

Status TcpTransport::ConnectPeers(const std::vector<std::string>& peers) {
  TS_CHECK(!started_.load()) << "ConnectPeers called twice";
  if (peers.size() != static_cast<size_t>(num_workers_) + 1) {
    return Status::InvalidArgument("peer list must have one address per "
                                   "worker plus the master");
  }
  peers_.resize(num_workers_ + 1);
  for (int i = 0; i <= num_workers_; ++i) {
    int rank = i == num_workers_ ? kMasterRank : i;
    if (rank == local_rank_) continue;
    auto peer = std::make_unique<Peer>();
    peer->rank = rank;
    if (!ParseHostPort(peers[i], &peer->host, &peer->port)) {
      return Status::InvalidArgument("bad peer address: " + peers[i]);
    }
    peers_[i] = std::move(peer);
  }
  started_.store(true);
  for (auto& peer : peers_) {
    if (peer != nullptr) {
      peer->sender = std::thread(&TcpTransport::SenderLoop, this, peer.get());
    }
  }
  listener_ = std::thread(&TcpTransport::ListenLoop, this);
  heartbeat_ = std::thread(&TcpTransport::HeartbeatLoop, this);
  return Status::OK();
}

bool TcpTransport::WaitForPeers(int64_t timeout_ms) {
  const int64_t deadline = NowMs() + timeout_ms;
  while (true) {
    bool ready = true;
    for (auto& peer : peers_) {
      if (peer == nullptr || peer->dead.load()) continue;
      bool out_ok;
      {
        std::lock_guard<std::mutex> lock(peer->mu);
        out_ok = peer->out_fd >= 0;
      }
      if (!out_ok || !peer->ever_connected_in.load()) {
        ready = false;
        break;
      }
    }
    if (ready) return true;
    if (NowMs() >= deadline || shutdown_.load()) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

// ---------------------------------------------------------------------
// Send path.
// ---------------------------------------------------------------------

bool TcpTransport::EnqueueFrame(Peer* peer, std::string bytes, bool control,
                                bool bounded, bool low_priority,
                                uint64_t* wait_micros) {
  std::unique_lock<std::mutex> lock(peer->mu);
  if (bounded) {
    const uint64_t start = NowMicros();
    peer->cv.wait(lock, [&] {
      return peer->sendq_bytes + bytes.size() <=
                 opts_.send_buffer_limit_bytes ||
             peer->dead.load() || shutdown_.load();
    });
    if (wait_micros != nullptr) *wait_micros = NowMicros() - start;
  }
  if (peer->dead.load() || shutdown_.load()) return false;
  peer->sendq_bytes += bytes.size();
  if (peer->sendq_bytes > peer->sendq_hwm) {
    peer->sendq_hwm = peer->sendq_bytes;
  }
  (low_priority ? peer->sendq_low : peer->sendq)
      .push_back(OutFrame{std::move(bytes), control});
  lock.unlock();
  peer->cv.notify_all();
  return true;
}

bool TcpTransport::Send(ChannelKind channel, Message msg) {
  TS_CHECK(msg.dst == kMasterRank ||
           (msg.dst >= 0 && msg.dst < num_workers_))
      << "bad destination " << msg.dst;
  if (IsCrashed(msg.src)) {
    CountDrop(msg.src);
    return false;
  }
  if (IsCrashed(msg.dst)) {
    CountDrop(msg.dst);
    return false;
  }
  if (msg.dst == local_rank_) {
    // Self-delivery (e.g. the master's own crash notices) is free,
    // mirroring the in-process transport's local fast path.
    RouteInbound(std::move(msg), WireChannelFor(channel));
    return true;
  }
  TS_CHECK(started_.load()) << "Send before ConnectPeers";
  Peer* peer = PeerFor(msg.dst);
  std::string buf;
  buf.reserve(kFrameHeaderBytes + msg.payload.size());
  AppendFrame(WireChannelFor(channel), msg, &buf, opts_.generation);
  uint64_t waited = 0;
  const bool ok =
      EnqueueFrame(peer, std::move(buf), /*control=*/false,
                   /*bounded=*/true,
                   /*low_priority=*/channel == ChannelKind::kTrace, &waited);
  AccountSendMicros(channel, waited);
  if (!ok) {
    CountDrop(msg.dst);
    return false;
  }
  AccountSendLocal(channel, msg.src, msg.payload.size());
  return true;
}

void TcpTransport::SenderLoop(Peer* peer) {
  int64_t backoff = opts_.connect_backoff_initial_ms;
  std::minstd_rand rng(static_cast<unsigned>(peer->port) * 2654435761u +
                       static_cast<unsigned>(peer->rank + 2));
  while (!peer->dead.load()) {
    int fd;
    {
      std::lock_guard<std::mutex> lock(peer->mu);
      if (shutdown_.load() && peer->sendq.empty() && peer->sendq_low.empty()) {
        break;
      }
      fd = peer->out_fd;
    }
    if (fd < 0) {
      if (shutdown_.load()) break;  // no dialing during shutdown
      fd = Dial(peer->host, peer->port);
      if (fd < 0) {
        // Exponential backoff with jitter so a restarted cluster does
        // not reconnect in lockstep.
        int64_t jitter = backoff > 1
                             ? static_cast<int64_t>(rng() % (backoff / 2 + 1))
                             : 0;
        std::this_thread::sleep_for(
            std::chrono::milliseconds(backoff + jitter));
        backoff = std::min(backoff * 2, opts_.connect_backoff_max_ms);
        continue;
      }
      BinaryWriter hello;
      hello.Write<int32_t>(local_rank_);
      hello.Write<uint32_t>(opts_.generation);
      std::string frame;
      AppendControlFrame(kCtrlHello, local_rank_, peer->rank, hello.buffer(),
                         &frame, opts_.generation);
      if (!SendAll(fd, frame)) {
        ::close(fd);
        continue;
      }
      backoff = opts_.connect_backoff_initial_ms;
      {
        std::lock_guard<std::mutex> lock(peer->mu);
        if (peer->ever_connected_out) peer->reconnects.fetch_add(1);
        peer->ever_connected_out = true;
        peer->out_fd = fd;
      }
    }
    OutFrame frame;
    bool from_low = false;
    {
      std::unique_lock<std::mutex> lock(peer->mu);
      peer->cv.wait(lock, [&] {
        return shutdown_.load() || peer->dead.load() ||
               !peer->sendq.empty() || !peer->sendq_low.empty();
      });
      // Strict priority: the low lane (trace snapshots) only drains
      // when no engine frame is waiting.
      std::deque<OutFrame>* q =
          !peer->sendq.empty() ? &peer->sendq
                               : (!peer->sendq_low.empty() ? &peer->sendq_low
                                                           : nullptr);
      if (q == nullptr) continue;  // shutdown/dead: re-check loop
      from_low = q == &peer->sendq_low;
      frame = std::move(q->front());
      q->pop_front();
      peer->sendq_bytes -= frame.bytes.size();
    }
    peer->cv.notify_all();  // wake producers blocked on the bound
    if (!SendAll(fd, frame.bytes)) {
      // Connection broke: requeue the frame (frames are atomic — the
      // receiver discards the partial tail with the dead socket) and
      // redial.
      std::lock_guard<std::mutex> lock(peer->mu);
      peer->out_fd = -1;
      ::close(fd);
      peer->sendq_bytes += frame.bytes.size();
      (from_low ? peer->sendq_low : peer->sendq).push_front(std::move(frame));
    }
  }
  std::lock_guard<std::mutex> lock(peer->mu);
  if (peer->out_fd >= 0) {
    ::close(peer->out_fd);
    peer->out_fd = -1;
  }
}

// ---------------------------------------------------------------------
// Receive path.
// ---------------------------------------------------------------------

void TcpTransport::ListenLoop() {
  // Local copy: Shutdown() ::shutdown()s the socket to wake accept()
  // but only closes and clears the member after joining this thread.
  const int listen_fd = listen_fd_;
  while (!shutdown_.load()) {
    int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listen socket closed (shutdown)
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    std::lock_guard<std::mutex> lock(conns_mu_);
    if (shutdown_.load()) {
      ::close(fd);
      break;
    }
    auto conn = std::make_unique<Conn>();
    conn->fd = fd;
    Conn* raw = conn.get();
    conn->reader = std::thread(&TcpTransport::ReadLoop, this, raw);
    conns_.push_back(std::move(conn));
  }
}

void TcpTransport::RouteInbound(Message msg, uint8_t wire_channel) {
  // Mirrors the in-process transport: the master has one mailbox for
  // every channel; workers split task and data traffic, with trace
  // requests riding the task queue (θ_main dispatches by MsgType).
  BlockingQueue<Message>* queue;
  if (msg.dst == kMasterRank) {
    queue = &local_master_;
  } else if (wire_channel == kWireChannelData) {
    queue = &local_data_;
  } else {
    queue = &local_task_;
  }
  if (!queue->Push(std::move(msg))) {
    CountDrop(local_rank_);
  }
}

void TcpTransport::ReadLoop(Conn* conn) {
  int src_rank = kNoRank;
  char header[kFrameHeaderBytes];
  std::string payload;
  while (!shutdown_.load()) {
    if (!RecvAll(conn->fd, header, kFrameHeaderBytes)) break;
    FrameHeader h;
    if (Status st = ParseFrameHeader(header, sizeof(header), &h); !st.ok()) {
      // A corrupt header desynchronizes the stream: drop the whole
      // connection (the peer redials) rather than guess at a resync.
      TS_LOG(kError) << "rpc: closing connection: " << st.ToString();
      break;
    }
    payload.resize(h.payload_len);
    if (h.payload_len > 0 && !RecvAll(conn->fd, payload.data(), h.payload_len)) {
      break;
    }
    if (Status st = VerifyFramePayload(h, payload.data(), payload.size());
        !st.ok()) {
      TS_LOG(kError) << "rpc: closing connection: " << st.ToString();
      break;
    }
    if (src_rank == kNoRank) {
      // Handshake: the first frame must be a hello naming the dialer.
      BinaryReader r(payload);
      int32_t rank = 0;
      if (h.channel != kWireChannelControl || h.msg_type != kCtrlHello ||
          !r.Read(&rank).ok() || !ValidRemoteRank(rank)) {
        TS_LOG(kError) << "rpc: connection did not open with a valid hello";
        break;
      }
      src_rank = rank;
      conn->rank.store(rank);
      Peer* peer = PeerFor(rank);
      if (h.src_generation > peer->generation.load(std::memory_order_relaxed)) {
        peer->generation.store(h.src_generation, std::memory_order_relaxed);
      }
      peer->last_heard_ms.store(NowMs());
      peer->ever_connected_in.store(true);
      continue;
    }
    if (h.src != src_rank) {
      TS_LOG(kError) << "rpc: frame src " << h.src
                     << " does not match connection rank " << src_rank;
      break;
    }
    Peer* src_peer = PeerFor(src_rank);
    {
      // Fencing: a frame announcing an older epoch than the highest we
      // have seen is a straggler from the peer's previous incarnation
      // (e.g. surfacing after a partition heals) — drop it without even
      // refreshing liveness, so a zombie cannot keep its rank "alive".
      const uint16_t known = src_peer->generation.load(std::memory_order_relaxed);
      if (h.src_generation > known) {
        src_peer->generation.store(h.src_generation, std::memory_order_relaxed);
      } else if (h.src_generation < known) {
        fenced_msgs_->Inc();
        CountDrop(src_rank);
        continue;
      }
    }
    if (src_peer->dead.load(std::memory_order_relaxed) &&
        h.channel != kWireChannelControl) {
      // The peer was already declared dead (the engine has been told);
      // late engine frames from it must not reach the mailboxes.
      fenced_msgs_->Inc();
      CountDrop(src_rank);
      continue;
    }
    src_peer->last_heard_ms.store(NowMs());
    if (h.channel == kWireChannelControl) {
      if (h.msg_type == kCtrlHeartbeat && payload.size() >= 3 * sizeof(uint64_t)) {
        // Heartbeat with clock-sync payload: remember the peer's send
        // stamp for echoing, and fold the exchange into the NTP-style
        // offset estimate. Empty payloads (old format) just keep-alive.
        Peer* peer = PeerFor(src_rank);
        BinaryReader r(payload);
        uint64_t t_send = 0, echo = 0, echo_elapsed = 0;
        if (r.Read(&t_send).ok() && r.Read(&echo).ok() &&
            r.Read(&echo_elapsed).ok()) {
          const uint64_t now_ns = Tracer::Global().NowNs();
          peer->last_hb_peer_ts.store(t_send, std::memory_order_relaxed);
          peer->last_hb_rx_ns.store(now_ns, std::memory_order_relaxed);
          ClockSample sample;
          if (ComputeClockSample(t_send, echo, echo_elapsed, now_ns,
                                 &sample)) {
            // One inbound connection (and thus one reader) per peer, so
            // the estimator needs no lock; results publish via atomics.
            peer->clock_estimator.AddSample(sample);
            peer->clock_offset_ns.store(peer->clock_estimator.offset_ns(),
                                        std::memory_order_relaxed);
            peer->clock_min_rtt_ns.store(peer->clock_estimator.min_rtt_ns(),
                                         std::memory_order_relaxed);
            peer->has_clock_offset.store(true, std::memory_order_release);
          }
        }
      }
      continue;
    }
    if (h.dst != local_rank_) {
      TS_LOG(kError) << "rpc: dropping misrouted frame for rank " << h.dst;
      continue;
    }
    Message msg;
    msg.src = h.src;
    msg.dst = h.dst;
    msg.type = h.msg_type;
    msg.trace_id = h.trace_id;
    msg.payload = std::move(payload);
    payload.clear();
    AccountRecvLocal(local_rank_, msg.payload.size());
    RouteInbound(std::move(msg), h.channel);
  }
  // The fd is shut down here but closed in Shutdown(), after the
  // thread is joined: nobody can ::shutdown a recycled descriptor.
  ::shutdown(conn->fd, SHUT_RDWR);
}

// ---------------------------------------------------------------------
// Liveness.
// ---------------------------------------------------------------------

void TcpTransport::HeartbeatLoop() {
  while (true) {
    {
      std::unique_lock<std::mutex> lock(hb_mu_);
      hb_cv_.wait_for(lock,
                      std::chrono::milliseconds(opts_.heartbeat_period_ms),
                      [&] { return shutdown_.load(); });
    }
    if (shutdown_.load()) return;
    const int64_t now = NowMs();
    for (auto& peer : peers_) {
      if (peer == nullptr || peer->dead.load()) continue;
      // Clock-sync payload: our trace-clock now, the peer's last
      // heartbeat stamp, and how long ago it arrived (both zero until
      // the first one does).
      const uint64_t echo =
          peer->last_hb_peer_ts.load(std::memory_order_relaxed);
      const uint64_t rx_ns =
          peer->last_hb_rx_ns.load(std::memory_order_relaxed);
      const uint64_t now_ns = Tracer::Global().NowNs();
      BinaryWriter hb;
      hb.Write<uint64_t>(now_ns);
      hb.Write<uint64_t>(echo);
      hb.Write<uint64_t>(echo == 0 || now_ns < rx_ns ? 0 : now_ns - rx_ns);
      std::string frame;
      AppendControlFrame(kCtrlHeartbeat, local_rank_, peer->rank, hb.buffer(),
                         &frame, opts_.generation);
      // Heartbeats bypass the send bound: 64 bytes each, and blocking
      // the monitor on a backpressured peer would blind it.
      EnqueueFrame(peer.get(), std::move(frame), /*control=*/true,
                   /*bounded=*/false, /*low_priority=*/false, nullptr);
      if (!peer->ever_connected_in.load()) continue;  // startup grace
      if (now - peer->last_heard_ms.load() > opts_.heartbeat_period_ms) {
        peer->heartbeat_misses.fetch_add(1);
        if (++peer->consecutive_misses >= opts_.heartbeat_miss_limit) {
          TS_LOG(kWarn) << "rpc: peer " << peer->rank << " missed "
                        << peer->consecutive_misses
                        << " heartbeats, declaring dead";
          DeclareDead(peer.get(), /*notify=*/true);
        }
      } else {
        peer->consecutive_misses = 0;
      }
    }
  }
}

void TcpTransport::DeclareDead(Peer* peer, bool notify) {
  if (peer->dead.exchange(true)) return;
  size_t dropped = 0;
  {
    std::lock_guard<std::mutex> lock(peer->mu);
    for (const OutFrame& f : peer->sendq) {
      if (!f.control) ++dropped;
    }
    dropped += peer->sendq_low.size();
    peer->sendq.clear();
    peer->sendq_low.clear();
    peer->sendq_bytes = 0;
    if (peer->out_fd >= 0) {
      ::shutdown(peer->out_fd, SHUT_RDWR);  // sender owns the close
    }
  }
  for (size_t i = 0; i < dropped; ++i) CountDrop(peer->rank);
  peer->cv.notify_all();
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto& conn : conns_) {
      if (conn->rank.load() == peer->rank) {
        ::shutdown(conn->fd, SHUT_RDWR);
      }
    }
  }
  MarkCrashed(peer->rank);
  if (notify && on_peer_dead_) on_peer_dead_(peer->rank);
}

// ---------------------------------------------------------------------
// Queues, crash injection, shutdown.
// ---------------------------------------------------------------------

BlockingQueue<Message>& TcpTransport::task_queue(int worker) {
  TS_CHECK(worker == local_rank_)
      << "rank " << local_rank_ << " asked for worker " << worker
      << "'s task queue";
  return local_task_;
}

BlockingQueue<Message>& TcpTransport::data_queue(int worker) {
  TS_CHECK(worker == local_rank_)
      << "rank " << local_rank_ << " asked for worker " << worker
      << "'s data queue";
  return local_data_;
}

BlockingQueue<Message>& TcpTransport::master_queue() {
  TS_CHECK(local_rank_ == kMasterRank)
      << "rank " << local_rank_ << " asked for the master queue";
  return local_master_;
}

void TcpTransport::SetCrashed(int worker) {
  if (worker == local_rank_) {
    MarkCrashed(worker);
    CloseAll();
    return;
  }
  if (started_.load()) {
    DeclareDead(PeerFor(worker), /*notify=*/false);
  } else {
    MarkCrashed(worker);
  }
}

void TcpTransport::CloseAll() {
  local_task_.Close();
  local_data_.Close();
  local_master_.Close();
}

void TcpTransport::Shutdown() {
  if (shutdown_.exchange(true)) {
    // Second caller (e.g. the destructor) must still not return while
    // threads are alive; joins below are idempotent via joinable().
  }
  hb_cv_.notify_all();
  if (heartbeat_.joinable()) heartbeat_.join();
  // Senders flush whatever is queued on a live connection, then exit.
  for (auto& peer : peers_) {
    if (peer != nullptr) peer->cv.notify_all();
  }
  for (auto& peer : peers_) {
    if (peer != nullptr && peer->sender.joinable()) peer->sender.join();
  }
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);  // wakes the blocked accept()
  }
  if (listener_.joinable()) listener_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto& conn : conns_) {
      ::shutdown(conn->fd, SHUT_RDWR);
    }
  }
  for (auto& conn : conns_) {
    if (conn->reader.joinable()) conn->reader.join();
    if (conn->fd >= 0) {
      ::close(conn->fd);
      conn->fd = -1;
    }
  }
  CloseAll();
}

bool TcpTransport::PeerClockOffset(int rank, int64_t* offset_ns,
                                   int64_t* rtt_ns) const {
  if (!started_.load() || rank == local_rank_) return false;
  const Peer* peer = peers_[Index(rank)].get();
  if (peer == nullptr ||
      !peer->has_clock_offset.load(std::memory_order_acquire)) {
    return false;
  }
  *offset_ns = peer->clock_offset_ns.load(std::memory_order_relaxed);
  if (rtt_ns != nullptr) {
    *rtt_ns = peer->clock_min_rtt_ns.load(std::memory_order_relaxed);
  }
  return true;
}

NetworkStats TcpTransport::GetStats() const {
  NetworkStats stats = Transport::GetStats();
  for (const auto& peer : peers_) {
    if (peer == nullptr) continue;
    NetworkStats::Endpoint& ep = stats.endpoints[Index(peer->rank)];
    ep.reconnects = peer->reconnects.load();
    ep.heartbeat_misses = peer->heartbeat_misses.load();
    std::lock_guard<std::mutex> lock(peer->mu);
    ep.send_buffer_hwm = peer->sendq_hwm;
  }
  return stats;
}

}  // namespace treeserver
