#include "rpc/crc32c.h"

#include <array>

namespace treeserver {

namespace {

// Reflected CRC-32C polynomial (iSCSI / SSE4.2 `crc32` instruction).
constexpr uint32_t kPoly = 0x82F63B78u;

constexpr std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1u) != 0 ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

constexpr std::array<uint32_t, 256> kTable = MakeTable();

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t len) {
  const auto* p = static_cast<const uint8_t*>(data);
  crc = ~crc;
  for (size_t i = 0; i < len; ++i) {
    crc = kTable[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

uint32_t Crc32c(const void* data, size_t len) {
  return Crc32cExtend(0, data, len);
}

}  // namespace treeserver
