#include "rpc/frame.h"

#include <cstring>

#include "common/serial.h"
#include "rpc/crc32c.h"

namespace treeserver {

namespace {

void AppendHeaderAndPayload(uint8_t wire_channel, uint32_t msg_type,
                            int32_t src, int32_t dst, uint64_t trace_id,
                            const std::string& payload, std::string* out,
                            uint16_t generation) {
  BinaryWriter w;
  w.Write<uint32_t>(kFrameMagic);
  w.Write<uint8_t>(kFrameVersion);
  w.Write<uint8_t>(wire_channel);
  w.Write<uint16_t>(generation);
  w.Write<uint32_t>(msg_type);
  w.Write<int32_t>(src);
  w.Write<int32_t>(dst);
  w.Write<uint64_t>(trace_id);
  w.Write<uint32_t>(static_cast<uint32_t>(payload.size()));
  w.Write<uint32_t>(Crc32c(payload.data(), payload.size()));
  const std::string& head = w.buffer();
  w.Write<uint32_t>(Crc32c(head.data(), kFrameHeaderBytes - 4));
  out->append(w.buffer());
  out->append(payload);
}

}  // namespace

void AppendFrame(uint8_t wire_channel, const Message& msg, std::string* out,
                 uint16_t generation) {
  AppendHeaderAndPayload(wire_channel, msg.type, msg.src, msg.dst,
                         msg.trace_id, msg.payload, out, generation);
}

void AppendControlFrame(uint32_t ctrl_type, int src, int dst,
                        const std::string& payload, std::string* out,
                        uint16_t generation) {
  AppendHeaderAndPayload(kWireChannelControl, ctrl_type, src, dst,
                         /*trace_id=*/0, payload, out, generation);
}

Status ParseFrameHeader(const char* data, size_t len, FrameHeader* out) {
  if (len < kFrameHeaderBytes) {
    return Status::Corruption("frame: short header");
  }
  BinaryReader r(data, kFrameHeaderBytes);
  uint32_t magic = 0;
  FrameHeader h;
  TS_RETURN_IF_ERROR(r.Read(&magic));
  TS_RETURN_IF_ERROR(r.Read(&h.version));
  TS_RETURN_IF_ERROR(r.Read(&h.channel));
  TS_RETURN_IF_ERROR(r.Read(&h.src_generation));
  TS_RETURN_IF_ERROR(r.Read(&h.msg_type));
  TS_RETURN_IF_ERROR(r.Read(&h.src));
  TS_RETURN_IF_ERROR(r.Read(&h.dst));
  TS_RETURN_IF_ERROR(r.Read(&h.trace_id));
  TS_RETURN_IF_ERROR(r.Read(&h.payload_len));
  TS_RETURN_IF_ERROR(r.Read(&h.payload_crc));
  uint32_t header_crc = 0;
  TS_RETURN_IF_ERROR(r.Read(&header_crc));
  if (magic != kFrameMagic) {
    return Status::Corruption("frame: bad magic");
  }
  // The header CRC covers every byte before it, so it is checked
  // before any field is trusted (a flipped version or length bit must
  // not survive to the dispatch below).
  if (Crc32c(data, kFrameHeaderBytes - 4) != header_crc) {
    return Status::Corruption("frame: header checksum mismatch");
  }
  if (h.version != kFrameVersion) {
    return Status::Corruption("frame: unsupported version");
  }
  if (h.channel > kMaxWireChannel) {
    return Status::Corruption("frame: bad channel");
  }
  if (h.payload_len > kMaxFramePayload) {
    return Status::Corruption("frame: payload too large");
  }
  *out = h;
  return Status::OK();
}

Status VerifyFramePayload(const FrameHeader& header, const char* payload,
                          size_t len) {
  if (len != header.payload_len) {
    return Status::Corruption("frame: payload length mismatch");
  }
  if (Crc32c(payload, len) != header.payload_crc) {
    return Status::Corruption("frame: payload checksum mismatch");
  }
  return Status::OK();
}

Status DecodeFrame(const std::string& buf, FrameHeader* header,
                   std::string* payload) {
  TS_RETURN_IF_ERROR(ParseFrameHeader(buf.data(), buf.size(), header));
  if (buf.size() - kFrameHeaderBytes != header->payload_len) {
    return Status::Corruption("frame: trailing or missing payload bytes");
  }
  TS_RETURN_IF_ERROR(VerifyFramePayload(
      *header, buf.data() + kFrameHeaderBytes, header->payload_len));
  payload->assign(buf.data() + kFrameHeaderBytes, header->payload_len);
  return Status::OK();
}

}  // namespace treeserver
