#ifndef TREESERVER_RPC_FAULT_INJECTION_H_
#define TREESERVER_RPC_FAULT_INJECTION_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics_registry.h"
#include "common/rng.h"
#include "rpc/transport.h"

namespace treeserver {

/// Declarative fault plan for one FaultInjectingTransport, driven by a
/// seeded RNG so a chaos run is reproducible from (profile, seed).
///
/// Two kinds of faults:
///  - probabilistic, per channel: every Send() rolls drop / duplicate /
///    delay / reorder / corrupt dice (evaluated in that order; at most
///    one fires per message);
///  - timed windows, relative to the injector's construction: link
///    partitions (all traffic between two ranks dropped while the
///    window is open), rank stalls (outbound traffic held until the
///    window closes) and rank crashes (SetCrashed fired once at the
///    given instant).
///
/// Self-sends (src == dst, e.g. the master's own crash notices) are
/// never touched: they do not cross the reliable-delivery layer, so an
/// injected fault there would be unrecoverable by design.
struct FaultSchedule {
  /// Per-channel probabilities, all in [0, 1].
  struct ChannelFaults {
    double drop = 0.0;
    double duplicate = 0.0;
    double delay = 0.0;
    double reorder = 0.0;  // like delay, but with a longer hold so a
                           // later message overtakes this one
    double corrupt = 0.0;  // flip one payload byte
    int delay_min_ms = 1;
    int delay_max_ms = 10;
  };
  /// Traffic between ranks `a` and `b` (either direction) is dropped
  /// while start_ms <= t < end_ms. Ranks may be kMasterRank.
  struct Partition {
    int a = 0;
    int b = 0;
    int64_t start_ms = 0;
    int64_t end_ms = 0;
  };
  /// Outbound messages from `rank` are held (not dropped) until
  /// end_ms — a frozen process that later thaws.
  struct Stall {
    int rank = 0;
    int64_t start_ms = 0;
    int64_t end_ms = 0;
  };
  /// SetCrashed(rank) is invoked once at `at_ms`. Not used by the
  /// parity profiles (a crash changes the recovery path, and with it
  /// potentially the replication-dependent forest).
  struct Crash {
    int rank = 0;
    int64_t at_ms = 0;
  };

  uint64_t seed = 1;
  ChannelFaults channels[kNumChannelKinds];
  std::vector<Partition> partitions;
  std::vector<Stall> stalls;
  std::vector<Crash> crashes;

  /// True when nothing can ever fire — the injector then takes a
  /// zero-overhead pass-through path.
  bool Empty() const;

  /// Named profiles for the chaos soak matrix: "drop-heavy",
  /// "duplicate-storm", "partition-heal", "mixed" (and "none" for the
  /// empty schedule). Returns false on an unknown name.
  static bool Profile(const std::string& name, uint64_t seed,
                      FaultSchedule* out);
  static const char* ProfileNames();
};

/// Transport decorator that injects the faults of a FaultSchedule
/// between the engine and any inner Transport (in-process or TCP).
///
/// Each injected fault increments a process-global registry counter
/// (chaos.drops, chaos.dups, chaos.delays, chaos.reorders,
/// chaos.corruptions, chaos.partitions, chaos.stalls, chaos.crashes),
/// so /metrics and the stats reporter show exactly what the run was
/// subjected to.
///
/// With an Empty() schedule Send() forwards directly to the inner
/// transport — the only cost is one predictable branch (guarded by the
/// bench_rpc --chaos-overhead gate).
///
/// The decorator does not own the inner transport. Stop() (or the
/// destructor) joins the delayed-delivery thread and must run before
/// the inner transport is destroyed.
class FaultInjectingTransport : public Transport {
 public:
  FaultInjectingTransport(Transport* inner, FaultSchedule schedule);
  ~FaultInjectingTransport() override;

  bool Send(ChannelKind channel, Message msg) override;

  BlockingQueue<Message>& task_queue(int worker) override {
    return inner_->task_queue(worker);
  }
  BlockingQueue<Message>& data_queue(int worker) override {
    return inner_->data_queue(worker);
  }
  BlockingQueue<Message>& master_queue() override {
    return inner_->master_queue();
  }

  /// Mirrors the crash locally (so IsCrashed() on the decorator stays
  /// truthful) and forwards to the inner transport.
  void SetCrashed(int worker) override;
  void CloseAll() override { inner_->CloseAll(); }

  /// Counters live on the inner transport (it does the real
  /// accounting); forward both snapshot and reset.
  NetworkStats GetStats() const override { return inner_->GetStats(); }
  void ResetCounters() override { inner_->ResetCounters(); }

  /// Flushes held messages (stalled/delayed ones are delivered
  /// immediately) and joins the delivery thread. Idempotent. After
  /// Stop() the injector is a pure pass-through.
  void Stop();

  Transport* inner() const { return inner_; }
  const FaultSchedule& schedule() const { return schedule_; }

 private:
  struct Held {
    int64_t due_ms = 0;
    uint64_t order = 0;  // FIFO tie-break among equal deadlines
    ChannelKind channel = ChannelKind::kTask;
    Message msg;
  };

  int64_t ElapsedMs() const;
  bool InPartition(int a, int b, int64_t now_ms) const;
  /// Queues a message for delivery at now + hold_ms on the delivery
  /// thread.
  void HoldMessage(ChannelKind channel, Message msg, int64_t hold_ms);
  void DeliveryLoop();
  void FireDueCrashes(int64_t now_ms);

  Transport* const inner_;
  const FaultSchedule schedule_;
  const bool active_;
  const std::chrono::steady_clock::time_point epoch_;

  Counter* const drops_;
  Counter* const dups_;
  Counter* const delays_;
  Counter* const reorders_;
  Counter* const corruptions_;
  Counter* const partition_drops_;
  Counter* const stall_holds_;
  Counter* const crashes_fired_;

  std::mutex mu_;
  std::condition_variable cv_;
  Rng rng_;                   // guarded by mu_
  std::vector<Held> held_;    // unordered; the loop scans for due ones
  uint64_t next_order_ = 0;   // guarded by mu_
  std::vector<bool> crash_fired_;  // parallel to schedule_.crashes
  bool stopped_ = false;
  std::thread delivery_;
};

}  // namespace treeserver

#endif  // TREESERVER_RPC_FAULT_INJECTION_H_
