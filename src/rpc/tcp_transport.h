#ifndef TREESERVER_RPC_TCP_TRANSPORT_H_
#define TREESERVER_RPC_TCP_TRANSPORT_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/clock_sync.h"
#include "common/metrics_registry.h"
#include "common/status.h"
#include "rpc/transport.h"

namespace treeserver {

struct TcpTransportOptions {
  int num_workers = 1;
  /// The single rank this process hosts (kMasterRank or a worker id).
  int local_rank = kMasterRank;
  std::string listen_host = "127.0.0.1";
  /// 0 = pick an ephemeral port (read it back via local_port()).
  uint16_t listen_port = 0;
  /// Heartbeat cadence; a peer is declared dead after
  /// heartbeat_miss_limit consecutive silent periods.
  int64_t heartbeat_period_ms = 50;
  int heartbeat_miss_limit = 20;
  /// Reconnect backoff (exponential, with jitter).
  int64_t connect_backoff_initial_ms = 20;
  int64_t connect_backoff_max_ms = 1000;
  /// Bound on each peer's outbound buffer; Send() blocks when it is
  /// full (backpressure) instead of growing the heap without limit.
  size_t send_buffer_limit_bytes = 64u << 20;
  /// Fencing epoch stamped into every outgoing frame (rpc/frame.h). A
  /// restarted process announces a bumped value; receivers drop frames
  /// carrying an older generation ("zombies" from the previous
  /// incarnation surfacing after a partition heals).
  uint16_t generation = 0;
};

/// Real-socket Transport: one process per rank, length-prefixed CRC'd
/// frames (rpc/frame.h) over TCP.
///
/// Threads: one listener (accepts), one reader per inbound connection,
/// one sender per remote peer (owns dialing, handshake and backoff),
/// and one heartbeat monitor. Each ordered pair of ranks uses one
/// socket, established by the sending side; the first frame on every
/// connection is a kCtrlHello naming the dialer's rank, and every
/// later frame must carry that rank as src.
///
/// Liveness: any frame (data or heartbeat) refreshes the peer's
/// last-heard clock; after `heartbeat_miss_limit` consecutive silent
/// periods the peer is declared dead — its send buffer is dropped,
/// blocked Send() calls return false, and the dead-peer callback fires
/// exactly once (the master wires it to Master::OnWorkerCrash).
///
/// Lifecycle: construct (binds the listen socket), SetPeerDeadCallback,
/// ConnectPeers (starts all threads), WaitForPeers, ... run ...,
/// Shutdown (flushes send buffers, closes sockets, joins threads).
class TcpTransport : public Transport {
 public:
  explicit TcpTransport(const TcpTransportOptions& options);
  ~TcpTransport() override;

  /// The port the listen socket is bound to (useful with port 0).
  uint16_t local_port() const { return listen_port_; }
  int local_rank() const { return local_rank_; }

  /// Invoked (from the heartbeat thread, once per peer) when a peer is
  /// declared dead. Must be set before ConnectPeers.
  void SetPeerDeadCallback(std::function<void(int rank)> callback) {
    on_peer_dead_ = std::move(callback);
  }

  /// Starts the cluster threads. `peers` holds "host:port" addresses,
  /// indexed workers 0..n-1 followed by the master; the local rank's
  /// own entry is ignored.
  Status ConnectPeers(const std::vector<std::string>& peers);

  /// Blocks until every live remote peer is connected both ways (our
  /// dial succeeded and its hello arrived). Returns false on timeout.
  bool WaitForPeers(int64_t timeout_ms);

  /// Flushes pending sends, closes every socket and joins all threads.
  /// Idempotent; also invoked by the destructor.
  void Shutdown();

  bool Send(ChannelKind channel, Message msg) override;

  BlockingQueue<Message>& task_queue(int worker) override;
  BlockingQueue<Message>& data_queue(int worker) override;
  BlockingQueue<Message>& master_queue() override;

  void SetCrashed(int worker) override;
  void CloseAll() override;

  NetworkStats GetStats() const override;

  /// NTP-style clock-offset estimate for a remote peer, derived from
  /// heartbeat RTTs: `offset_ns` receives (peer trace clock - local
  /// trace clock) of the minimum-RTT sample, `rtt_ns` that RTT.
  /// Returns false while no sample exists (peer never heartbeated, or
  /// it speaks the pre-offset heartbeat format).
  bool PeerClockOffset(int rank, int64_t* offset_ns,
                       int64_t* rtt_ns = nullptr) const;

 private:
  struct OutFrame {
    std::string bytes;
    bool control = false;
  };

  /// Per-remote-peer connection state. The sender thread owns dialing
  /// and writing; out_fd transitions are made under `mu` so the
  /// monitor can safely ::shutdown() a socket the sender is blocked
  /// on.
  struct Peer {
    int rank = 0;
    std::string host;
    uint16_t port = 0;

    std::mutex mu;
    std::condition_variable cv;
    std::deque<OutFrame> sendq;
    /// Low-priority lane (trace snapshots): drained only when sendq is
    /// empty, so observability traffic never delays engine messages.
    std::deque<OutFrame> sendq_low;
    size_t sendq_bytes = 0;  // covers both lanes (one shared bound)
    uint64_t sendq_hwm = 0;
    int out_fd = -1;               // guarded by mu
    bool ever_connected_out = false;  // guarded by mu

    std::atomic<uint64_t> reconnects{0};
    std::atomic<bool> ever_connected_in{false};
    std::atomic<int64_t> last_heard_ms{0};
    std::atomic<uint64_t> heartbeat_misses{0};
    int consecutive_misses = 0;  // heartbeat thread only
    std::atomic<bool> dead{false};
    /// Highest fencing epoch seen from this peer; frames announcing an
    /// older one are counted and dropped (see ReadLoop).
    std::atomic<uint16_t> generation{0};

    /// Clock-sync state. The reader thread stamps the peer's last
    /// heartbeat (its t_send, and our trace clock at arrival) for the
    /// echo in our next outbound heartbeat, and publishes the
    /// min-RTT offset estimate; estimator itself is reader-thread-only.
    std::atomic<uint64_t> last_hb_peer_ts{0};
    std::atomic<uint64_t> last_hb_rx_ns{0};
    std::atomic<bool> has_clock_offset{false};
    std::atomic<int64_t> clock_offset_ns{0};
    std::atomic<int64_t> clock_min_rtt_ns{0};
    ClockOffsetEstimator clock_estimator;  // reader thread only

    std::thread sender;
  };

  /// One accepted inbound connection; fds stay open (shut down but not
  /// closed) until Shutdown so a racing ::shutdown can never hit a
  /// recycled descriptor.
  struct Conn {
    int fd = -1;
    std::atomic<int> rank{kNoRank};  // set once the hello arrives
    std::thread reader;
  };

  static constexpr int kNoRank = -2;

  Peer* PeerFor(int rank) { return peers_[Index(rank)].get(); }
  bool ValidRemoteRank(int rank) const;

  void SenderLoop(Peer* peer);
  void ListenLoop();
  void ReadLoop(Conn* conn);
  void HeartbeatLoop();

  /// Appends a frame to the peer's send buffer. Bounded pushes block
  /// until space frees up; returns false if the peer died or the
  /// transport shut down first. `wait_micros` (optional) receives the
  /// backpressure stall.
  bool EnqueueFrame(Peer* peer, std::string bytes, bool control, bool bounded,
                    bool low_priority, uint64_t* wait_micros);
  /// Marks a peer dead: drops its send buffer (counted), wakes blocked
  /// senders, tears the sockets down, and optionally fires the
  /// dead-peer callback.
  void DeclareDead(Peer* peer, bool notify);
  void RouteInbound(Message msg, uint8_t wire_channel);

  const TcpTransportOptions opts_;
  const int local_rank_;
  /// "engine.fenced_msgs": frames dropped because their sender was
  /// already declared dead or announced a stale fencing epoch.
  Counter* const fenced_msgs_;
  uint16_t listen_port_ = 0;
  int listen_fd_ = -1;

  std::function<void(int)> on_peer_dead_;
  std::atomic<bool> shutdown_{false};
  std::atomic<bool> started_{false};

  /// Indexed like the endpoint counters (workers 0..n-1, master last);
  /// the local rank's slot is null.
  std::vector<std::unique_ptr<Peer>> peers_;

  std::mutex conns_mu_;
  std::vector<std::unique_ptr<Conn>> conns_;
  std::thread listener_;

  std::mutex hb_mu_;
  std::condition_variable hb_cv_;
  std::thread heartbeat_;

  // Local mailboxes (only the local rank's are ever handed out).
  BlockingQueue<Message> local_task_;
  BlockingQueue<Message> local_data_;
  BlockingQueue<Message> local_master_;
};

}  // namespace treeserver

#endif  // TREESERVER_RPC_TCP_TRANSPORT_H_
