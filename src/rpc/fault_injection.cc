#include "rpc/fault_injection.h"

#include <algorithm>
#include <chrono>

#include "common/logging.h"

namespace treeserver {

namespace {

bool ChannelEmpty(const FaultSchedule::ChannelFaults& c) {
  return c.drop == 0.0 && c.duplicate == 0.0 && c.delay == 0.0 &&
         c.reorder == 0.0 && c.corrupt == 0.0;
}

}  // namespace

bool FaultSchedule::Empty() const {
  for (const ChannelFaults& c : channels) {
    if (!ChannelEmpty(c)) return false;
  }
  return partitions.empty() && stalls.empty() && crashes.empty();
}

const char* FaultSchedule::ProfileNames() {
  return "none, drop-heavy, duplicate-storm, partition-heal, mixed";
}

bool FaultSchedule::Profile(const std::string& name, uint64_t seed,
                            FaultSchedule* out) {
  FaultSchedule s;
  s.seed = seed == 0 ? 1 : seed;
  // The task and data channels carry the engine protocol the reliable
  // layer protects; the trace channel is best-effort by design, so the
  // profiles leave it alone (a dropped snapshot is an observability
  // gap, not a correctness bug to recover from).
  FaultSchedule::ChannelFaults& task = s.channels[0];
  FaultSchedule::ChannelFaults& data = s.channels[1];
  if (name == "none") {
    // Empty schedule: the injector is a pass-through (overhead gate).
  } else if (name == "drop-heavy") {
    task.drop = 0.10;
    data.drop = 0.10;
    task.delay = 0.05;
    data.delay = 0.05;
  } else if (name == "duplicate-storm") {
    task.duplicate = 0.25;
    data.duplicate = 0.25;
    task.reorder = 0.05;
    data.reorder = 0.05;
  } else if (name == "partition-heal") {
    // Two transient partitions: worker 1 <-> master (task plane) and
    // worker 0 <-> worker 2 (data plane), both healed while the
    // retransmit deadline is still live.
    s.partitions.push_back({1, kMasterRank, 200, 700});
    s.partitions.push_back({0, 2, 400, 900});
    task.drop = 0.02;
    data.drop = 0.02;
  } else if (name == "mixed") {
    task.drop = 0.05;
    data.drop = 0.05;
    task.duplicate = 0.10;
    data.duplicate = 0.10;
    task.delay = 0.05;
    data.delay = 0.05;
    task.reorder = 0.03;
    data.reorder = 0.03;
    task.corrupt = 0.02;
    data.corrupt = 0.02;
    s.partitions.push_back({2, kMasterRank, 300, 800});
    s.stalls.push_back({3, 500, 900});
  } else {
    return false;
  }
  *out = s;
  return true;
}

FaultInjectingTransport::FaultInjectingTransport(Transport* inner,
                                                FaultSchedule schedule)
    : Transport(inner->num_workers()),
      inner_(inner),
      schedule_(std::move(schedule)),
      active_(!schedule_.Empty()),
      epoch_(std::chrono::steady_clock::now()),
      drops_(MetricsRegistry::Global().GetCounter("chaos.drops")),
      dups_(MetricsRegistry::Global().GetCounter("chaos.dups")),
      delays_(MetricsRegistry::Global().GetCounter("chaos.delays")),
      reorders_(MetricsRegistry::Global().GetCounter("chaos.reorders")),
      corruptions_(MetricsRegistry::Global().GetCounter("chaos.corruptions")),
      partition_drops_(MetricsRegistry::Global().GetCounter("chaos.partitions")),
      stall_holds_(MetricsRegistry::Global().GetCounter("chaos.stalls")),
      crashes_fired_(MetricsRegistry::Global().GetCounter("chaos.crashes")),
      rng_(schedule_.seed),
      crash_fired_(schedule_.crashes.size(), false) {
  if (active_) {
    delivery_ = std::thread(&FaultInjectingTransport::DeliveryLoop, this);
  }
}

FaultInjectingTransport::~FaultInjectingTransport() { Stop(); }

void FaultInjectingTransport::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) return;
    stopped_ = true;
  }
  cv_.notify_all();
  if (delivery_.joinable()) delivery_.join();
}

void FaultInjectingTransport::SetCrashed(int worker) {
  MarkCrashed(worker);
  inner_->SetCrashed(worker);
}

int64_t FaultInjectingTransport::ElapsedMs() const {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

bool FaultInjectingTransport::InPartition(int a, int b,
                                          int64_t now_ms) const {
  for (const FaultSchedule::Partition& p : schedule_.partitions) {
    const bool pair = (p.a == a && p.b == b) || (p.a == b && p.b == a);
    if (pair && now_ms >= p.start_ms && now_ms < p.end_ms) return true;
  }
  return false;
}

void FaultInjectingTransport::FireDueCrashes(int64_t now_ms) {
  // Caller holds mu_. SetCrashed forwards outside the lock via the
  // held queue? No: a crash is rare and the inner call is non-blocking
  // bookkeeping (DeclareDead / queue close), so firing inline is fine.
  for (size_t i = 0; i < schedule_.crashes.size(); ++i) {
    if (!crash_fired_[i] && now_ms >= schedule_.crashes[i].at_ms) {
      crash_fired_[i] = true;
      crashes_fired_->Inc();
      const int rank = schedule_.crashes[i].rank;
      TS_LOG(kWarn) << "chaos: crashing rank " << rank << " at t=" << now_ms
                    << "ms";
      MarkCrashed(rank);
      inner_->SetCrashed(rank);
    }
  }
}

bool FaultInjectingTransport::Send(ChannelKind channel, Message msg) {
  if (!active_) return inner_->Send(channel, std::move(msg));
  // Self-sends bypass injection: they never cross the reliable layer.
  if (msg.src == msg.dst) return inner_->Send(channel, std::move(msg));

  const int64_t now = ElapsedMs();
  const FaultSchedule::ChannelFaults& f =
      schedule_.channels[static_cast<int>(channel)];

  bool drop = false;
  bool drop_is_partition = false;
  bool duplicate = false;
  bool corrupt = false;
  int64_t hold_ms = -1;  // >= 0: deliver via the delivery thread
  bool hold_is_stall = false;
  bool hold_is_reorder = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) return inner_->Send(channel, std::move(msg));
    FireDueCrashes(now);
    if (InPartition(msg.src, msg.dst, now)) {
      drop = true;
      drop_is_partition = true;
    } else {
      for (const FaultSchedule::Stall& st : schedule_.stalls) {
        if (st.rank == msg.src && now >= st.start_ms && now < st.end_ms) {
          hold_ms = st.end_ms - now;
          hold_is_stall = true;
          break;
        }
      }
      if (hold_ms < 0) {
        // One roll per fault kind, in a fixed order, at most one fires
        // — keeps the decision sequence reproducible from the seed.
        if (rng_.Bernoulli(f.drop)) {
          drop = true;
        } else if (rng_.Bernoulli(f.corrupt)) {
          corrupt = true;
        } else if (rng_.Bernoulli(f.duplicate)) {
          duplicate = true;
        } else if (rng_.Bernoulli(f.reorder)) {
          hold_ms = f.delay_max_ms +
                    static_cast<int64_t>(rng_.Uniform(
                        static_cast<uint64_t>(f.delay_max_ms) + 1));
          hold_is_reorder = true;
        } else if (rng_.Bernoulli(f.delay)) {
          hold_ms = rng_.UniformInt(f.delay_min_ms, f.delay_max_ms);
        }
      }
    }
    if (corrupt && !msg.payload.empty()) {
      const size_t pos = rng_.Uniform(msg.payload.size());
      const uint8_t bit = 1u << rng_.Uniform(8);
      msg.payload[pos] = static_cast<char>(
          static_cast<uint8_t>(msg.payload[pos]) ^ bit);
    }
  }

  if (drop) {
    (drop_is_partition ? partition_drops_ : drops_)->Inc();
    // Report success: a dropped frame looks exactly like a sent one to
    // the caller; recovery is the reliable layer's job.
    return true;
  }
  if (corrupt) corruptions_->Inc();
  if (hold_ms >= 0) {
    (hold_is_stall ? stall_holds_ : (hold_is_reorder ? reorders_ : delays_))
        ->Inc();
    HoldMessage(channel, std::move(msg), hold_ms);
    return true;
  }
  if (duplicate) {
    dups_->Inc();
    Message copy = msg;
    const bool ok = inner_->Send(channel, std::move(msg));
    // The twin arrives a moment later (possibly after other traffic).
    HoldMessage(channel, std::move(copy),
                std::max<int64_t>(1, schedule_.channels[0].delay_min_ms));
    return ok;
  }
  return inner_->Send(channel, std::move(msg));
}

void FaultInjectingTransport::HoldMessage(ChannelKind channel, Message msg,
                                          int64_t hold_ms) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) {
      // Delivery thread is gone: deliver inline instead of losing it.
      inner_->Send(channel, std::move(msg));
      return;
    }
    Held h;
    h.due_ms = ElapsedMs() + std::max<int64_t>(0, hold_ms);
    h.order = next_order_++;
    h.channel = channel;
    h.msg = std::move(msg);
    held_.push_back(std::move(h));
  }
  cv_.notify_all();
}

void FaultInjectingTransport::DeliveryLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    if (stopped_) break;
    FireDueCrashes(ElapsedMs());
    int64_t next_due = -1;
    for (const Held& h : held_) {
      if (next_due < 0 || h.due_ms < next_due) next_due = h.due_ms;
    }
    for (size_t i = 0; i < schedule_.crashes.size(); ++i) {
      if (!crash_fired_[i] && (next_due < 0 ||
                               schedule_.crashes[i].at_ms < next_due)) {
        next_due = schedule_.crashes[i].at_ms;
      }
    }
    const int64_t now = ElapsedMs();
    if (next_due < 0) {
      cv_.wait(lock, [&] { return stopped_ || !held_.empty(); });
      continue;
    }
    if (next_due > now) {
      cv_.wait_for(lock, std::chrono::milliseconds(next_due - now),
                   [&] { return stopped_; });
      continue;
    }
    // Release everything due, oldest decision first so two messages
    // with the same deadline keep their relative order.
    std::vector<Held> due;
    for (size_t i = 0; i < held_.size();) {
      if (held_[i].due_ms <= now) {
        due.push_back(std::move(held_[i]));
        held_[i] = std::move(held_.back());
        held_.pop_back();
      } else {
        ++i;
      }
    }
    std::sort(due.begin(), due.end(), [](const Held& a, const Held& b) {
      return a.order < b.order;
    });
    lock.unlock();
    for (Held& h : due) {
      inner_->Send(h.channel, std::move(h.msg));
    }
    lock.lock();
  }
  // Stop(): flush the remainder so no message is silently lost — the
  // run is winding down and late delivery is indistinguishable from a
  // long delay.
  std::vector<Held> rest = std::move(held_);
  held_.clear();
  lock.unlock();
  std::sort(rest.begin(), rest.end(), [](const Held& a, const Held& b) {
    return a.order < b.order;
  });
  for (Held& h : rest) {
    inner_->Send(h.channel, std::move(h.msg));
  }
}

}  // namespace treeserver
