#include "tree/trainer.h"

#include <algorithm>
#include <chrono>

#include "common/logging.h"
#include "common/metrics_registry.h"
#include "common/trace.h"
#include "table/binned.h"
#include "tree/hist.h"

namespace treeserver {

void FillNodePrediction(const TargetStats& stats, TreeModel::Node* node) {
  node->n_rows = static_cast<uint32_t>(stats.Count());
  if (stats.kind == TaskKind::kClassification) {
    node->pmf = stats.cls.Pmf();
    node->label = stats.cls.Majority();
  } else {
    node->value = stats.reg.Mean();
  }
}

bool SplitBeats(const SplitOutcome& candidate, const SplitOutcome& incumbent) {
  if (!candidate.valid) return false;
  if (!incumbent.valid) return true;
  if (candidate.gain != incumbent.gain) {
    return candidate.gain > incumbent.gain;
  }
  return candidate.condition.column < incumbent.condition.column;
}

namespace {

struct Frame {
  int32_t node_id;
  size_t begin;
  size_t end;
  int depth;  // local depth within this (sub)tree
  // Histogram mode: this node's per-candidate-column histograms,
  // derived from the parent by sibling subtraction. Null means "build
  // from rows when (and if) the node is split".
  std::shared_ptr<NodeHists> hists;
};

// Builds the per-column histograms of one node in a single O(n) pass
// per binned column; unbinned (categorical) entries stay empty.
std::shared_ptr<NodeHists> BuildNodeHists(const BinnedTable& binned,
                                          const Column& target,
                                          const std::vector<int>& candidates,
                                          const SplitContext& ctx,
                                          const uint32_t* rows, size_t n) {
  auto hists = std::make_shared<NodeHists>(candidates.size());
  std::vector<const BinnedColumn*> cols(candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    cols[i] = binned.column(candidates[i]);  // nullptr → entry stays empty
  }
  NodeHistogram::BuildMany(cols.data(), cols.size(), target, ctx, rows, n,
                           hists->data());
  return hists;
}

SplitOutcome FindNodeSplit(const DataTable& table, const uint32_t* rows,
                           size_t n, const std::vector<int>& candidates,
                           const SplitContext& ctx, const TreeConfig& config,
                           Rng* rng, const BinnedTable* binned,
                           const NodeHists* hists) {
  const ColumnPtr& target = table.target();
  SplitOutcome best;
  if (config.extra_trees) {
    // Completely-random tree: resample one column (|C| = 1) per node;
    // if its random split is degenerate (constant column), try other
    // columns in random order before giving up.
    TS_CHECK(rng != nullptr) << "extra_trees requires an rng";
    std::vector<int> order = candidates;
    rng->Shuffle(&order);
    for (int col : order) {
      SplitOutcome outcome = FindRandomSplit(*table.column(col), col, *target,
                                             ctx, rows, n, rng);
      if (outcome.valid) return outcome;
    }
    return best;
  }
  for (size_t i = 0; i < candidates.size(); ++i) {
    const int col = candidates[i];
    const BinnedColumn* bc = binned ? binned->column(col) : nullptr;
    SplitOutcome outcome;
    if (bc != nullptr && hists != nullptr && !(*hists)[i].empty()) {
      outcome = (*hists)[i].BestSplit(*bc, col, ctx);
    } else {
      outcome = FindBestSplit(*table.column(col), col, *target, ctx, rows, n);
    }
    if (SplitBeats(outcome, best)) best = std::move(outcome);
  }
  return best;
}

}  // namespace

TreeModel TrainTree(const DataTable& table, std::vector<uint32_t> rows,
                    const std::vector<int>& candidate_columns,
                    const TreeConfig& config, Rng* rng,
                    const BinnedTable* binned) {
  const Schema& schema = table.schema();
  SplitContext ctx{schema.task_kind(), config.impurity, schema.num_classes()};
  TreeModel model(ctx.kind, ctx.num_classes);
  // Histogram mode: bin the table once if the caller didn't supply a
  // pre-built view. Extra-trees has no sorted scan to replace, so it
  // always uses the random kernel.
  const bool hist_mode =
      config.split_method == SplitMethod::kHistogram && !config.extra_trees;
  std::shared_ptr<const BinnedTable> owned_binned;
  if (hist_mode && binned == nullptr) {
    owned_binned = BinnedTable::Build(table, config.max_bins);
    binned = owned_binned.get();
  }
  if (!hist_mode) binned = nullptr;
  if (rows.empty()) {
    // Degenerate but well-defined: a single empty leaf.
    TreeModel::Node leaf;
    if (ctx.kind == TaskKind::kClassification) {
      leaf.pmf.assign(ctx.num_classes, 0.0f);
    }
    model.AddNode(std::move(leaf));
    return model;
  }

  const ColumnPtr& target = table.target();
  std::vector<Frame> stack;
  {
    TreeModel::Node root;
    int32_t id = model.AddNode(std::move(root));
    stack.push_back(Frame{id, 0, rows.size(), 0});
  }

  std::vector<uint32_t> scratch;
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    const size_t n = f.end - f.begin;
    const uint32_t* row_ptr = rows.data() + f.begin;

    TargetStats stats = ComputeTargetStats(*target, ctx, row_ptr, n);
    TreeModel::Node& node = model.mutable_node(f.node_id);
    node.depth = static_cast<uint16_t>(f.depth);
    FillNodePrediction(stats, &node);

    const int global_depth = config.base_depth + f.depth;
    bool leaf = stats.IsPure() || n <= config.min_leaf ||
                global_depth >= config.max_depth;
    if (!leaf) {
      if (binned != nullptr && f.hists == nullptr) {
        // Root (or a node whose histograms were skipped as a predicted
        // leaf): build from its rows.
        f.hists = BuildNodeHists(*binned, *target, candidate_columns, ctx,
                                 row_ptr, n);
      }
      SplitOutcome best;
      if (TraceEnabled()) {
        // Split-eval timing is trace-gated: when tracing is off the
        // hot path pays one relaxed atomic load per node.
        static Histogram* const split_eval_us =
            MetricsRegistry::Global().GetHistogram("trainer.split_eval_us");
        TraceSpan span(TraceCat::kSplitEval, "split-eval");
        span.SetArg("rows", static_cast<int64_t>(n));
        auto start = std::chrono::steady_clock::now();
        best = FindNodeSplit(table, row_ptr, n, candidate_columns, ctx,
                             config, rng, binned, f.hists.get());
        split_eval_us->Add(static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - start)
                .count()));
      } else {
        best = FindNodeSplit(table, row_ptr, n, candidate_columns, ctx,
                             config, rng, binned, f.hists.get());
      }
      if (!best.valid || best.gain <= kMinSplitGain) {
        leaf = true;
      } else {
        // Stable partition of rows[f.begin, f.end) by the condition,
        // preserving relative order so the distributed engine (which
        // splits I_x the same way at the delegate worker) produces an
        // identical tree.
        const SplitCondition& cond = best.condition;
        const ColumnPtr& col = table.column(cond.column);
        scratch.clear();
        scratch.reserve(n);
        size_t write = f.begin;
        if (cond.type == DataType::kNumeric) {
          for (size_t i = f.begin; i < f.end; ++i) {
            if (cond.TrainRoutesLeftNumeric(col->numeric_at(rows[i]))) {
              rows[write++] = rows[i];
            } else {
              scratch.push_back(rows[i]);
            }
          }
        } else {
          for (size_t i = f.begin; i < f.end; ++i) {
            if (cond.TrainRoutesLeftCategory(col->category_at(rows[i]))) {
              rows[write++] = rows[i];
            } else {
              scratch.push_back(rows[i]);
            }
          }
        }
        const size_t mid = write;
        std::copy(scratch.begin(), scratch.end(), rows.begin() + mid);
        TS_DCHECK(mid > f.begin && mid < f.end)
            << "split produced an empty child";

        TreeModel::Node left_child;
        TreeModel::Node right_child;
        int32_t left_id = model.AddNode(std::move(left_child));
        int32_t right_id = model.AddNode(std::move(right_child));
        TreeModel::Node& parent = model.mutable_node(f.node_id);
        parent.condition = best.condition;
        parent.split_gain = best.gain;
        parent.left = left_id;
        parent.right = right_id;

        // Histogram mode: build only the smaller child's histograms
        // and derive the larger sibling as parent - smaller. Which
        // sibling is derived depends only on the partition sizes, so
        // the (floating-point) results stay deterministic for a given
        // row set. Children that the depth/min_leaf rules already make
        // leaves skip histogram work entirely.
        std::shared_ptr<NodeHists> left_hists;
        std::shared_ptr<NodeHists> right_hists;
        if (binned != nullptr) {
          const size_t nl = mid - f.begin;
          const size_t nr = f.end - mid;
          const bool child_depth_ok =
              config.base_depth + f.depth + 1 < config.max_depth;
          const bool need_left = child_depth_ok && nl > config.min_leaf;
          const bool need_right = child_depth_ok && nr > config.min_leaf;
          if (need_left || need_right) {
            const bool left_smaller = nl <= nr;
            std::shared_ptr<NodeHists>& smaller =
                left_smaller ? left_hists : right_hists;
            std::shared_ptr<NodeHists>& larger =
                left_smaller ? right_hists : left_hists;
            smaller = BuildNodeHists(
                *binned, *target, candidate_columns, ctx,
                left_smaller ? row_ptr : rows.data() + mid,
                left_smaller ? nl : nr);
            if (left_smaller ? need_right : need_left) {
              larger = std::make_shared<NodeHists>(candidate_columns.size());
              for (size_t i = 0; i < candidate_columns.size(); ++i) {
                if (!(*f.hists)[i].empty()) {
                  (*larger)[i] =
                      NodeHistogram::Subtract((*f.hists)[i], (*smaller)[i]);
                }
              }
            }
            if (left_smaller ? !need_left : !need_right) smaller.reset();
          }
        }
        // Right pushed first so the left child is processed next
        // (depth-first, left-to-right), matching B_plan's head-insert
        // order in the engine.
        stack.push_back(
            Frame{right_id, mid, f.end, f.depth + 1, std::move(right_hists)});
        stack.push_back(
            Frame{left_id, f.begin, mid, f.depth + 1, std::move(left_hists)});
      }
    }
  }
  return model;
}

TreeModel TrainTreeOnTable(const DataTable& table,
                           const std::vector<int>& candidate_columns,
                           const TreeConfig& config, Rng* rng,
                           const BinnedTable* binned) {
  std::vector<uint32_t> rows(table.num_rows());
  for (size_t i = 0; i < rows.size(); ++i) rows[i] = static_cast<uint32_t>(i);
  return TrainTree(table, std::move(rows), candidate_columns, config, rng,
                   binned);
}

}  // namespace treeserver
