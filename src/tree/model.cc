#include "tree/model.h"

#include <algorithm>

#include "common/logging.h"

namespace treeserver {

int32_t TreeModel::AddNode(Node node) {
  nodes_.push_back(std::move(node));
  return static_cast<int32_t>(nodes_.size()) - 1;
}

int TreeModel::MaxDepth() const {
  int depth = -1;
  for (const Node& n : nodes_) depth = std::max(depth, static_cast<int>(n.depth));
  return depth;
}

size_t TreeModel::NumLeaves() const {
  size_t leaves = 0;
  for (const Node& n : nodes_) {
    if (n.is_leaf()) ++leaves;
  }
  return leaves;
}

const TreeModel::Node& TreeModel::Traverse(const DataTable& table, size_t row,
                                           int max_depth) const {
  TS_DCHECK(!nodes_.empty());
  int32_t id = 0;
  while (true) {
    const Node& node = nodes_[id];
    if (node.is_leaf()) return node;
    if (max_depth >= 0 && node.depth >= max_depth) return node;
    const SplitCondition& cond = node.condition;
    const ColumnPtr& col = table.column(cond.column);
    SplitCondition::Route route =
        cond.type == DataType::kNumeric
            ? cond.RouteNumeric(col->numeric_at(row))
            : cond.RouteCategory(col->category_at(row));
    if (route == SplitCondition::Route::kStop) return node;
    id = route == SplitCondition::Route::kLeft ? node.left : node.right;
  }
}

void TreeModel::GraftSubtree(int32_t node_id, const TreeModel& subtree) {
  TS_CHECK(!subtree.empty());
  TS_CHECK(nodes_[node_id].is_leaf()) << "can only graft onto a leaf";
  const int32_t offset = static_cast<int32_t>(nodes_.size()) - 1;
  const uint16_t base_depth = nodes_[node_id].depth;

  // The subtree root replaces the placeholder node in place; the rest
  // append at the end with remapped child indices.
  auto remap = [&](int32_t child) {
    if (child < 0) return child;
    return child == 0 ? node_id : child + offset;
  };

  Node root = subtree.node(0);
  root.left = remap(root.left);
  root.right = remap(root.right);
  root.depth = base_depth;
  nodes_[node_id] = std::move(root);

  for (size_t i = 1; i < subtree.num_nodes(); ++i) {
    Node n = subtree.node(static_cast<int32_t>(i));
    n.left = remap(n.left);
    n.right = remap(n.right);
    n.depth = static_cast<uint16_t>(n.depth + base_depth);
    nodes_.push_back(std::move(n));
  }
}

void TreeModel::Serialize(BinaryWriter* w) const {
  w->Write(static_cast<uint8_t>(kind_));
  w->Write(static_cast<int32_t>(num_classes_));
  w->Write(static_cast<uint64_t>(nodes_.size()));
  for (const Node& n : nodes_) {
    n.condition.Serialize(w);
    w->Write(n.left);
    w->Write(n.right);
    w->Write(n.n_rows);
    w->Write(n.depth);
    w->Write(n.split_gain);
    w->WriteVector(n.pmf);
    w->Write(n.label);
    w->Write(n.value);
  }
}

Status TreeModel::Deserialize(BinaryReader* r, TreeModel* out) {
  uint8_t kind;
  TS_RETURN_IF_ERROR(r->Read(&kind));
  out->kind_ = static_cast<TaskKind>(kind);
  int32_t num_classes;
  TS_RETURN_IF_ERROR(r->Read(&num_classes));
  out->num_classes_ = num_classes;
  uint64_t count;
  TS_RETURN_IF_ERROR(r->Read(&count));
  // A node costs > 50 serialized bytes; anything bigger than the
  // remaining payload is corrupt and must not drive a huge resize.
  if (count > r->remaining()) {
    return Status::Corruption("implausible node count");
  }
  out->nodes_.clear();
  out->nodes_.resize(count);
  for (uint64_t i = 0; i < count; ++i) {
    Node& n = out->nodes_[i];
    TS_RETURN_IF_ERROR(SplitCondition::Deserialize(r, &n.condition));
    TS_RETURN_IF_ERROR(r->Read(&n.left));
    TS_RETURN_IF_ERROR(r->Read(&n.right));
    TS_RETURN_IF_ERROR(r->Read(&n.n_rows));
    TS_RETURN_IF_ERROR(r->Read(&n.depth));
    TS_RETURN_IF_ERROR(r->Read(&n.split_gain));
    TS_RETURN_IF_ERROR(r->ReadVector(&n.pmf));
    TS_RETURN_IF_ERROR(r->Read(&n.label));
    TS_RETURN_IF_ERROR(r->Read(&n.value));
  }
  return Status::OK();
}

std::string TreeModel::DebugString(const Schema& schema) const {
  std::string out;
  // Depth-first, left child first, matching how the tree reads.
  std::vector<int32_t> stack = {0};
  if (nodes_.empty()) return "(empty tree)\n";
  while (!stack.empty()) {
    int32_t id = stack.back();
    stack.pop_back();
    const Node& n = nodes_[id];
    out.append(2 * n.depth, ' ');
    char buf[160];
    if (n.is_leaf()) {
      if (kind_ == TaskKind::kClassification) {
        std::snprintf(buf, sizeof(buf), "leaf: class %d (n=%u)\n", n.label,
                      n.n_rows);
      } else {
        std::snprintf(buf, sizeof(buf), "leaf: value %.4g (n=%u)\n", n.value,
                      n.n_rows);
      }
      out += buf;
      continue;
    }
    const ColumnMeta& meta = schema.column(n.condition.column);
    if (n.condition.type == DataType::kNumeric) {
      std::snprintf(buf, sizeof(buf), "%s <= %.6g? (n=%u, gain=%.4g)\n",
                    meta.name.c_str(), n.condition.threshold, n.n_rows,
                    n.split_gain);
      out += buf;
    } else {
      out += meta.name + " in {";
      for (size_t i = 0; i < n.condition.left_categories.size(); ++i) {
        if (i > 0) out += ",";
        out += std::to_string(n.condition.left_categories[i]);
      }
      std::snprintf(buf, sizeof(buf), "}? (n=%u, gain=%.4g)\n", n.n_rows,
                    n.split_gain);
      out += buf;
    }
    stack.push_back(n.right);
    stack.push_back(n.left);
  }
  return out;
}

std::string TreeModel::ToDot(const Schema& schema,
                             const std::string& name) const {
  std::string out = "digraph " + name + " {\n  node [shape=box];\n";
  char buf[200];
  for (size_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    if (n.is_leaf()) {
      if (kind_ == TaskKind::kClassification) {
        std::snprintf(buf, sizeof(buf),
                      "  n%zu [label=\"class %d\\nn=%u\"];\n", i, n.label,
                      n.n_rows);
      } else {
        std::snprintf(buf, sizeof(buf),
                      "  n%zu [label=\"%.4g\\nn=%u\"];\n", i, n.value,
                      n.n_rows);
      }
      out += buf;
      continue;
    }
    const ColumnMeta& meta = schema.column(n.condition.column);
    if (n.condition.type == DataType::kNumeric) {
      std::snprintf(buf, sizeof(buf),
                    "  n%zu [label=\"%s <= %.4g\\nn=%u\"];\n", i,
                    meta.name.c_str(), n.condition.threshold, n.n_rows);
    } else {
      std::snprintf(buf, sizeof(buf),
                    "  n%zu [label=\"%s in S\\nn=%u\"];\n", i,
                    meta.name.c_str(), n.n_rows);
    }
    out += buf;
    std::snprintf(buf, sizeof(buf),
                  "  n%zu -> n%d [label=\"yes\"];\n  n%zu -> n%d "
                  "[label=\"no\"];\n",
                  i, n.left, i, n.right);
    out += buf;
  }
  out += "}\n";
  return out;
}

void TreeModel::AccumulateImportance(std::vector<double>* importance) const {
  for (const Node& n : nodes_) {
    if (n.is_leaf()) continue;
    (*importance)[n.condition.column] +=
        n.split_gain * static_cast<double>(n.n_rows);
  }
}

namespace {

bool NodesEqual(const TreeModel& a, int32_t ia, const TreeModel& b,
                int32_t ib) {
  const TreeModel::Node& na = a.node(ia);
  const TreeModel::Node& nb = b.node(ib);
  if (na.is_leaf() != nb.is_leaf()) return false;
  if (na.n_rows != nb.n_rows) return false;
  if (na.depth != nb.depth) return false;
  if (na.is_leaf()) {
    return na.label == nb.label && na.pmf == nb.pmf &&
           std::abs(na.value - nb.value) < 1e-9;
  }
  if (!(na.condition == nb.condition)) return false;
  return NodesEqual(a, na.left, b, nb.left) &&
         NodesEqual(a, na.right, b, nb.right);
}

}  // namespace

void TreeModel::Canonicalize() {
  if (nodes_.size() <= 1) return;
  std::vector<Node> out;
  out.reserve(nodes_.size());
  out.push_back(std::move(nodes_[0]));
  // New ids of nodes whose children still need placing; a just-moved
  // node's left/right still hold old ids until rewritten here. Left is
  // pushed last (popped first), matching the serial trainer's DFS
  // stack.
  std::vector<int32_t> stack{0};
  while (!stack.empty()) {
    const int32_t new_id = stack.back();
    stack.pop_back();
    const int32_t old_left = out[new_id].left;
    const int32_t old_right = out[new_id].right;
    if (old_left < 0) continue;
    const int32_t new_left = static_cast<int32_t>(out.size());
    out.push_back(std::move(nodes_[old_left]));
    const int32_t new_right = static_cast<int32_t>(out.size());
    out.push_back(std::move(nodes_[old_right]));
    out[new_id].left = new_left;
    out[new_id].right = new_right;
    stack.push_back(new_right);
    stack.push_back(new_left);
  }
  TS_CHECK(out.size() == nodes_.size()) << "tree has unreachable nodes";
  nodes_ = std::move(out);
}

bool TreeModel::StructurallyEqual(const TreeModel& other) const {
  if (kind_ != other.kind_ || num_classes_ != other.num_classes_) return false;
  if (nodes_.empty() || other.nodes_.empty()) {
    return nodes_.empty() && other.nodes_.empty();
  }
  if (nodes_.size() != other.nodes_.size()) return false;
  // Compare by traversal: node order may differ between the serial
  // trainer and the task engine, but the trees must coincide.
  return NodesEqual(*this, 0, other, 0);
}

}  // namespace treeserver
