#ifndef TREESERVER_TREE_SPLIT_H_
#define TREESERVER_TREE_SPLIT_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/serial.h"
#include "table/data_table.h"
#include "tree/impurity.h"

namespace treeserver {

/// A node's split-condition (Section II): "A_i <= v" for ordinal
/// attributes, "A_i in S_l" for categorical attributes.
///
/// Besides the condition itself we record `seen_categories` (the
/// categories present in D_x during training) so prediction can detect
/// values unseen during training and stop early at this node, and
/// `missing_to_left` so training-time missing routing is replayed.
struct SplitCondition {
  int32_t column = -1;
  DataType type = DataType::kNumeric;
  double threshold = 0.0;
  std::vector<int32_t> left_categories;  // sorted
  std::vector<int32_t> seen_categories;  // sorted
  bool missing_to_left = false;

  bool valid() const { return column >= 0; }

  /// Where a value sends a row. kStop means the traversal should stop
  /// at this node and report its prediction (missing or unseen value,
  /// Appendix D).
  enum class Route : uint8_t { kLeft, kRight, kStop };

  Route RouteNumeric(double v) const;
  Route RouteCategory(int32_t code) const;

  /// Training-time routing used when partitioning D_x into children:
  /// missing values follow `missing_to_left` instead of stopping.
  bool TrainRoutesLeftNumeric(double v) const {
    return IsMissingNumeric(v) ? missing_to_left : v <= threshold;
  }
  bool TrainRoutesLeftCategory(int32_t code) const;

  void Serialize(BinaryWriter* w) const;
  static Status Deserialize(BinaryReader* r, SplitCondition* out);

  bool operator==(const SplitCondition& other) const;
};

/// Sufficient statistics of the target over a row set; covers both
/// learning tasks. These travel in column-task responses so the master
/// can decide child leaf-ness and predictions without seeing rows.
struct TargetStats {
  TaskKind kind = TaskKind::kClassification;
  ClassStats cls;
  RegStats reg;

  static TargetStats Classification(int num_classes) {
    TargetStats s;
    s.kind = TaskKind::kClassification;
    s.cls = ClassStats(num_classes);
    return s;
  }
  static TargetStats Regression() {
    TargetStats s;
    s.kind = TaskKind::kRegression;
    return s;
  }

  int64_t Count() const {
    return kind == TaskKind::kClassification ? cls.n : reg.n;
  }
  bool IsPure() const {
    return kind == TaskKind::kClassification ? cls.IsPure() : reg.IsPure();
  }
  double ImpurityValue(Impurity impurity) const {
    return kind == TaskKind::kClassification ? cls.ImpurityValue(impurity)
                                             : reg.Variance();
  }
  void Merge(const TargetStats& other) {
    if (kind == TaskKind::kClassification) {
      cls.Merge(other.cls);
    } else {
      reg.Merge(other.reg);
    }
  }

  void Serialize(BinaryWriter* w) const;
  static Status Deserialize(BinaryReader* r, TargetStats* out);
};

/// Everything a split finder reports for one attribute: the best
/// condition, its gain, and the resulting child statistics (with
/// missing rows already routed). n_left/n_right are what the engine
/// compares against τ_D / τ_dfs for the child tasks.
struct SplitOutcome {
  bool valid = false;
  SplitCondition condition;
  /// Impurity decrease: imp(parent) - weighted child impurity, over all
  /// rows of the node. Non-positive outcomes are rejected by trainers.
  double gain = 0.0;
  TargetStats left_stats;
  TargetStats right_stats;

  int64_t n_left() const { return left_stats.Count(); }
  int64_t n_right() const { return right_stats.Count(); }

  void Serialize(BinaryWriter* w) const;
  static Status Deserialize(BinaryReader* r, SplitOutcome* out);
};

/// Task-level configuration shared by every split computation.
struct SplitContext {
  TaskKind kind = TaskKind::kClassification;
  Impurity impurity = Impurity::kGini;
  int num_classes = 0;
};

/// How numeric splits are found. kExact sorts the (value, y) pairs per
/// node per column — the paper's exact-training guarantee and the
/// default everywhere. kHistogram scans pre-binned columns
/// (table/binned.h, tree/hist.h) in O(n + bins); with max_bins >= the
/// number of distinct values it degenerates to the exact algorithm.
enum class SplitMethod : uint8_t {
  kExact = 0,
  kHistogram = 1,
};

const char* SplitMethodName(SplitMethod method);

/// Fills the split condition's missing-routing bookkeeping and computes
/// the final gain once the children (over non-missing rows) are known:
/// missing rows are routed to the larger child, then gain is measured
/// over all rows. Shared by the exact, random, and histogram kernels so
/// every split method agrees on missing handling and gain.
void FinishSplitOutcome(const SplitContext& ctx, const TargetStats& missing,
                        SplitOutcome* out);

/// Target statistics over `rows` of the target column (`rows` may be
/// nullptr to mean all rows [0, n)).
TargetStats ComputeTargetStats(const Column& target, const SplitContext& ctx,
                               const uint32_t* rows, size_t n);

/// Finds the exact best split of one attribute over the given rows
/// (Appendix B): one sorted pass for ordinal attributes, Breiman's
/// sorted-group pass for categorical regression, and one-vs-rest
/// enumeration for categorical classification. Rows with a missing
/// attribute value are excluded from scoring and routed to the larger
/// child afterwards.
SplitOutcome FindBestSplit(const Column& feature, int column_index,
                           const Column& target, const SplitContext& ctx,
                           const uint32_t* rows, size_t n);

/// Extra-trees variant: a uniformly random threshold in [min, max] for
/// ordinal attributes, or a random nonempty proper subset of the seen
/// categories (Appendix F).
SplitOutcome FindRandomSplit(const Column& feature, int column_index,
                             const Column& target, const SplitContext& ctx,
                             const uint32_t* rows, size_t n, Rng* rng);

}  // namespace treeserver

#endif  // TREESERVER_TREE_SPLIT_H_
