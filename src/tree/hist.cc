#include "tree/hist.h"

#include <limits>

#include "common/logging.h"
#include "common/metrics_registry.h"

namespace treeserver {

namespace {

Counter* BuildsCounter() {
  static Counter* const c =
      MetricsRegistry::Global().GetCounter("split.histogram_builds");
  return c;
}

Counter* SubtractionsCounter() {
  static Counter* const c =
      MetricsRegistry::Global().GetCounter("split.sibling_subtractions");
  return c;
}

}  // namespace

NodeHistogram NodeHistogram::Build(const BinnedColumn& binned,
                                   const Column& target,
                                   const SplitContext& ctx,
                                   const uint32_t* rows, size_t n) {
  BuildsCounter()->Inc();
  NodeHistogram h;
  h.slots_ = binned.missing_code() + 1;
  if (ctx.kind == TaskKind::kClassification) {
    const int c = ctx.num_classes;
    h.num_classes_ = c;
    h.cls_.assign(static_cast<size_t>(h.slots_) * c, 0);
    for (size_t i = 0; i < n; ++i) {
      uint32_t row = rows ? rows[i] : static_cast<uint32_t>(i);
      h.cls_[static_cast<size_t>(binned.code_at(row)) * c +
             target.category_at(row)]++;
    }
  } else {
    h.reg_.assign(h.slots_, RegBin{});
    for (size_t i = 0; i < n; ++i) {
      uint32_t row = rows ? rows[i] : static_cast<uint32_t>(i);
      RegBin& rb = h.reg_[binned.code_at(row)];
      double y = target.numeric_at(row);
      ++rb.n;
      rb.sum += y;
      rb.sum_sq += y * y;
    }
  }
  return h;
}

NodeHistogram NodeHistogram::Subtract(const NodeHistogram& parent,
                                      const NodeHistogram& child) {
  TS_CHECK(parent.CompatibleWith(child)) << "histogram shape mismatch";
  SubtractionsCounter()->Inc();
  NodeHistogram h;
  h.slots_ = parent.slots_;
  h.num_classes_ = parent.num_classes_;
  if (!parent.cls_.empty()) {
    h.cls_.resize(parent.cls_.size());
    for (size_t i = 0; i < parent.cls_.size(); ++i) {
      h.cls_[i] = parent.cls_[i] - child.cls_[i];
    }
  }
  if (!parent.reg_.empty()) {
    h.reg_.resize(parent.reg_.size());
    for (size_t i = 0; i < parent.reg_.size(); ++i) {
      h.reg_[i].n = parent.reg_[i].n - child.reg_[i].n;
      h.reg_[i].sum = parent.reg_[i].sum - child.reg_[i].sum;
      h.reg_[i].sum_sq = parent.reg_[i].sum_sq - child.reg_[i].sum_sq;
    }
  }
  return h;
}

size_t NodeHistogram::ByteSize() const {
  return cls_.size() * sizeof(int64_t) + reg_.size() * sizeof(RegBin);
}

SplitOutcome NodeHistogram::BestSplit(const BinnedColumn& binned,
                                      int column_index,
                                      const SplitContext& ctx) const {
  TS_DCHECK(slots_ == binned.missing_code() + 1);
  SplitOutcome out;
  const int num_value_bins = slots_ - 1;

  if (ctx.kind == TaskKind::kClassification) {
    const int c = num_classes_;
    TargetStats missing = TargetStats::Classification(c);
    for (int j = 0; j < c; ++j) {
      int64_t cnt = cls_[static_cast<size_t>(num_value_bins) * c + j];
      missing.cls.counts[j] = cnt;
      missing.cls.n += cnt;
    }
    ClassStats total(c);
    for (int b = 0; b < num_value_bins; ++b) {
      for (int j = 0; j < c; ++j) {
        int64_t cnt = cls_[static_cast<size_t>(b) * c + j];
        total.counts[j] += cnt;
        total.n += cnt;
      }
    }
    if (total.n < 2) return out;

    ClassStats left(c);
    ClassStats right = total;
    ClassStats best_left(c);
    double best_score = std::numeric_limits<double>::infinity();
    int best_bin = -1;
    const double kd = static_cast<double>(total.n);
    for (int b = 0; b < num_value_bins; ++b) {
      int64_t bn = 0;
      for (int j = 0; j < c; ++j) {
        int64_t cnt = cls_[static_cast<size_t>(b) * c + j];
        left.counts[j] += cnt;
        right.counts[j] -= cnt;
        bn += cnt;
      }
      if (bn == 0) continue;  // empty bin: not a distinct-value boundary
      left.n += bn;
      right.n -= bn;
      if (right.n == 0) break;  // no data to the right: not a cut
      double score = (static_cast<double>(left.n) *
                          left.ImpurityValue(ctx.impurity) +
                      static_cast<double>(right.n) *
                          right.ImpurityValue(ctx.impurity)) /
                     kd;
      if (score < best_score) {
        best_score = score;
        best_bin = b;
        best_left = left;
      }
    }
    if (best_bin < 0) return out;  // all rows in one bin

    out.left_stats = TargetStats::Classification(c);
    out.left_stats.cls = best_left;
    out.right_stats = TargetStats::Classification(c);
    out.right_stats.cls = total;
    for (int j = 0; j < c; ++j) {
      out.right_stats.cls.counts[j] -= best_left.counts[j];
    }
    out.right_stats.cls.n -= best_left.n;
    out.condition.column = column_index;
    out.condition.type = DataType::kNumeric;
    out.condition.threshold = binned.upper(best_bin);
    FinishSplitOutcome(ctx, missing, &out);
    return out;
  }

  TargetStats missing = TargetStats::Regression();
  missing.reg.n = reg_[num_value_bins].n;
  missing.reg.sum = reg_[num_value_bins].sum;
  missing.reg.sum_sq = reg_[num_value_bins].sum_sq;
  RegStats total;
  for (int b = 0; b < num_value_bins; ++b) {
    total.n += reg_[b].n;
    total.sum += reg_[b].sum;
    total.sum_sq += reg_[b].sum_sq;
  }
  if (total.n < 2) return out;

  RegStats left;
  RegStats right = total;
  RegStats best_left;
  double best_score = std::numeric_limits<double>::infinity();
  int best_bin = -1;
  const double kd = static_cast<double>(total.n);
  for (int b = 0; b < num_value_bins; ++b) {
    const RegBin& rb = reg_[b];
    if (rb.n == 0) continue;
    left.n += rb.n;
    left.sum += rb.sum;
    left.sum_sq += rb.sum_sq;
    right.n -= rb.n;
    right.sum -= rb.sum;
    right.sum_sq -= rb.sum_sq;
    if (right.n == 0) break;
    double score = (static_cast<double>(left.n) * left.Variance() +
                    static_cast<double>(right.n) * right.Variance()) /
                   kd;
    if (score < best_score) {
      best_score = score;
      best_bin = b;
      best_left = left;
    }
  }
  if (best_bin < 0) return out;

  out.left_stats = TargetStats::Regression();
  out.left_stats.reg = best_left;
  out.right_stats = TargetStats::Regression();
  out.right_stats.reg.n = total.n - best_left.n;
  out.right_stats.reg.sum = total.sum - best_left.sum;
  out.right_stats.reg.sum_sq = total.sum_sq - best_left.sum_sq;
  out.condition.column = column_index;
  out.condition.type = DataType::kNumeric;
  out.condition.threshold = binned.upper(best_bin);
  FinishSplitOutcome(ctx, missing, &out);
  return out;
}

}  // namespace treeserver
