#include "tree/hist.h"

#include <algorithm>
#include <limits>
#include <type_traits>

#include "common/logging.h"
#include "common/metrics_registry.h"
#include "common/simd.h"
#include "tree/hist_kernels.h"

namespace treeserver {

namespace {

Counter* BuildsCounter() {
  static Counter* const c =
      MetricsRegistry::Global().GetCounter("split.histogram_builds");
  return c;
}

Counter* SubtractionsCounter() {
  static Counter* const c =
      MetricsRegistry::Global().GetCounter("split.sibling_subtractions");
  return c;
}

/// Runs one fused chunk of <= kFuseWidth same-width classification
/// columns with the active vector kernel, or the scalar twins when no
/// vector kernel applies. Either path yields bit-identical counts.
template <typename Code>
void RunClsChunk(SimdLevel level, const Code* const* codes, size_t m,
                 const int32_t* labels, const uint32_t* rows, size_t n, int c,
                 int64_t* const* counts, bool fuse_ok) {
  if (fuse_ok) {
#if TS_SIMD_ENABLED && (defined(__x86_64__) || defined(_M_X64))
    if (level == SimdLevel::kAvx2) {
      histk::ClsFusedAvx2(codes, m, labels, rows, n, c, counts);
      return;
    }
#endif
#if TS_SIMD_ENABLED && defined(__aarch64__)
    if (level == SimdLevel::kNeon) {
      histk::ClsFusedNeon(codes, m, labels, rows, n, c, counts);
      return;
    }
#endif
  }
  (void)level;
  for (size_t k = 0; k < m; ++k) {
    histk::ClsScalar(codes[k], labels, rows, n, c, counts[k]);
  }
}

template <typename Code>
void RunRegChunk(SimdLevel level, const Code* const* codes, size_t m,
                 const double* y, const uint32_t* rows, size_t n,
                 const int* slots, HistRegBin* const* bins, bool fuse_ok) {
  if (fuse_ok) {
#if TS_SIMD_ENABLED && (defined(__x86_64__) || defined(_M_X64))
    if (level == SimdLevel::kAvx2) {
      histk::RegFusedAvx2(codes, m, y, rows, n, slots, bins);
      return;
    }
#endif
#if TS_SIMD_ENABLED && defined(__aarch64__)
    if (level == SimdLevel::kNeon) {
      histk::RegFusedNeon(codes, m, y, rows, n, slots, bins);
      return;
    }
#endif
  }
  (void)level;
  for (size_t k = 0; k < m; ++k) {
    histk::RegScalar(codes[k], y, rows, n, bins[k]);
  }
}

}  // namespace

NodeHistogram NodeHistogram::Build(const BinnedColumn& binned,
                                   const Column& target,
                                   const SplitContext& ctx,
                                   const uint32_t* rows, size_t n) {
  NodeHistogram h;
  const BinnedColumn* col = &binned;
  BuildMany(&col, 1, target, ctx, rows, n, &h);
  return h;
}

void NodeHistogram::BuildMany(const BinnedColumn* const* cols, size_t num_cols,
                              const Column& target, const SplitContext& ctx,
                              const uint32_t* rows, size_t n,
                              NodeHistogram* out) {
  const SimdLevel level = ActiveSimdLevel();
  const bool cls = ctx.kind == TaskKind::kClassification;
  const int c = cls ? ctx.num_classes : 0;
  const int32_t* labels = cls ? target.categorical_codes().data() : nullptr;
  const double* y = cls ? nullptr : target.numeric_values().data();

  // Shape the outputs and group binned columns by code width; the
  // fused kernels want homogeneous pointer types per pass.
  std::vector<size_t> narrow;
  std::vector<size_t> wide;
  narrow.reserve(num_cols);
  for (size_t i = 0; i < num_cols; ++i) {
    out[i] = NodeHistogram();
    const BinnedColumn* bc = cols[i];
    if (bc == nullptr) continue;
    BuildsCounter()->Inc();
    NodeHistogram& h = out[i];
    h.slots_ = bc->missing_code() + 1;
    if (cls) {
      h.num_classes_ = c;
      h.cls_.assign(static_cast<size_t>(h.slots_) * c, 0);
    } else {
      h.reg_.assign(h.slots_, HistRegBin{});
    }
    (bc->wide() ? wide : narrow).push_back(i);
  }

  // Tiny nodes can't amortize vector setup/scratch; take the scalar
  // twins (same bits either way).
  const bool vec = level != SimdLevel::kScalar && n >= histk::kFusedMinRows;

  auto run_group = [&](auto code_tag, const std::vector<size_t>& group) {
    using Code = decltype(code_tag);
    const size_t width = histk::kFuseWidth;
    for (size_t g = 0; g < group.size(); g += width) {
      const size_t m = std::min(width, group.size() - g);
      const Code* codes[histk::kFuseWidth];
      bool fuse_ok = vec;
      if (cls) {
        int64_t* counts[histk::kFuseWidth];
        for (size_t k = 0; k < m; ++k) {
          const BinnedColumn& bc = *cols[group[g + k]];
          if constexpr (std::is_same_v<Code, uint8_t>) {
            codes[k] = bc.codes8_data();
          } else {
            codes[k] = bc.codes16_data();
          }
          NodeHistogram& h = out[group[g + k]];
          counts[k] = h.cls_.data();
          // The vector kernel precomputes epi32 scatter indices.
          if (h.cls_.size() >
              static_cast<size_t>(std::numeric_limits<int32_t>::max())) {
            fuse_ok = false;
          }
        }
        RunClsChunk<Code>(level, codes, m, labels, rows, n, c, counts,
                          fuse_ok);
      } else {
        HistRegBin* bins[histk::kFuseWidth];
        int slots[histk::kFuseWidth];
        for (size_t k = 0; k < m; ++k) {
          const BinnedColumn& bc = *cols[group[g + k]];
          if constexpr (std::is_same_v<Code, uint8_t>) {
            codes[k] = bc.codes8_data();
          } else {
            codes[k] = bc.codes16_data();
          }
          NodeHistogram& h = out[group[g + k]];
          bins[k] = h.reg_.data();
          slots[k] = h.slots_;
          if (h.slots_ > histk::kFusedRegMaxSlots) fuse_ok = false;
        }
        RunRegChunk<Code>(level, codes, m, y, rows, n, slots, bins, fuse_ok);
      }
    }
  };
  run_group(uint8_t{0}, narrow);
  run_group(uint16_t{0}, wide);
}

NodeHistogram NodeHistogram::Subtract(const NodeHistogram& parent,
                                      const NodeHistogram& child) {
  TS_CHECK(parent.CompatibleWith(child)) << "histogram shape mismatch";
  SubtractionsCounter()->Inc();
  NodeHistogram h;
  h.slots_ = parent.slots_;
  h.num_classes_ = parent.num_classes_;
  if (!parent.cls_.empty()) {
    h.cls_.resize(parent.cls_.size());
    for (size_t i = 0; i < parent.cls_.size(); ++i) {
      h.cls_[i] = parent.cls_[i] - child.cls_[i];
    }
  }
  if (!parent.reg_.empty()) {
    h.reg_.resize(parent.reg_.size());
    for (size_t i = 0; i < parent.reg_.size(); ++i) {
      h.reg_[i].n = parent.reg_[i].n - child.reg_[i].n;
      h.reg_[i].sum = parent.reg_[i].sum - child.reg_[i].sum;
      h.reg_[i].sum_sq = parent.reg_[i].sum_sq - child.reg_[i].sum_sq;
    }
  }
  return h;
}

size_t NodeHistogram::ByteSize() const {
  return cls_.size() * sizeof(int64_t) + reg_.size() * sizeof(HistRegBin);
}

SplitOutcome NodeHistogram::BestSplit(const BinnedColumn& binned,
                                      int column_index,
                                      const SplitContext& ctx) const {
  TS_DCHECK(slots_ == binned.missing_code() + 1);
  SplitOutcome out;
  const int num_value_bins = slots_ - 1;

  if (ctx.kind == TaskKind::kClassification) {
    const int c = num_classes_;
    TargetStats missing = TargetStats::Classification(c);
    for (int j = 0; j < c; ++j) {
      int64_t cnt = cls_[static_cast<size_t>(num_value_bins) * c + j];
      missing.cls.counts[j] = cnt;
      missing.cls.n += cnt;
    }
    ClassStats total(c);
    for (int b = 0; b < num_value_bins; ++b) {
      for (int j = 0; j < c; ++j) {
        int64_t cnt = cls_[static_cast<size_t>(b) * c + j];
        total.counts[j] += cnt;
        total.n += cnt;
      }
    }
    if (total.n < 2) return out;

    ClassStats left(c);
    ClassStats right = total;
    ClassStats best_left(c);
    double best_score = std::numeric_limits<double>::infinity();
    int best_bin = -1;
    const double kd = static_cast<double>(total.n);
    for (int b = 0; b < num_value_bins; ++b) {
      int64_t bn = 0;
      for (int j = 0; j < c; ++j) {
        int64_t cnt = cls_[static_cast<size_t>(b) * c + j];
        left.counts[j] += cnt;
        right.counts[j] -= cnt;
        bn += cnt;
      }
      if (bn == 0) continue;  // empty bin: not a distinct-value boundary
      left.n += bn;
      right.n -= bn;
      if (right.n == 0) break;  // no data to the right: not a cut
      double score = (static_cast<double>(left.n) *
                          left.ImpurityValue(ctx.impurity) +
                      static_cast<double>(right.n) *
                          right.ImpurityValue(ctx.impurity)) /
                     kd;
      if (score < best_score) {
        best_score = score;
        best_bin = b;
        best_left = left;
      }
    }
    if (best_bin < 0) return out;  // all rows in one bin

    out.left_stats = TargetStats::Classification(c);
    out.left_stats.cls = best_left;
    out.right_stats = TargetStats::Classification(c);
    out.right_stats.cls = total;
    for (int j = 0; j < c; ++j) {
      out.right_stats.cls.counts[j] -= best_left.counts[j];
    }
    out.right_stats.cls.n -= best_left.n;
    out.condition.column = column_index;
    out.condition.type = DataType::kNumeric;
    out.condition.threshold = binned.upper(best_bin);
    FinishSplitOutcome(ctx, missing, &out);
    return out;
  }

  TargetStats missing = TargetStats::Regression();
  missing.reg.n = reg_[num_value_bins].n;
  missing.reg.sum = reg_[num_value_bins].sum;
  missing.reg.sum_sq = reg_[num_value_bins].sum_sq;
  RegStats total;
  for (int b = 0; b < num_value_bins; ++b) {
    total.n += reg_[b].n;
    total.sum += reg_[b].sum;
    total.sum_sq += reg_[b].sum_sq;
  }
  if (total.n < 2) return out;

  RegStats left;
  RegStats right = total;
  RegStats best_left;
  double best_score = std::numeric_limits<double>::infinity();
  int best_bin = -1;
  const double kd = static_cast<double>(total.n);
  for (int b = 0; b < num_value_bins; ++b) {
    const HistRegBin& rb = reg_[b];
    if (rb.n == 0) continue;
    left.n += rb.n;
    left.sum += rb.sum;
    left.sum_sq += rb.sum_sq;
    right.n -= rb.n;
    right.sum -= rb.sum;
    right.sum_sq -= rb.sum_sq;
    if (right.n == 0) break;
    double score = (static_cast<double>(left.n) * left.Variance() +
                    static_cast<double>(right.n) * right.Variance()) /
                   kd;
    if (score < best_score) {
      best_score = score;
      best_bin = b;
      best_left = left;
    }
  }
  if (best_bin < 0) return out;

  out.left_stats = TargetStats::Regression();
  out.left_stats.reg = best_left;
  out.right_stats = TargetStats::Regression();
  out.right_stats.reg.n = total.n - best_left.n;
  out.right_stats.reg.sum = total.sum - best_left.sum;
  out.right_stats.reg.sum_sq = total.sum_sq - best_left.sum_sq;
  out.condition.column = column_index;
  out.condition.type = DataType::kNumeric;
  out.condition.threshold = binned.upper(best_bin);
  FinishSplitOutcome(ctx, missing, &out);
  return out;
}

}  // namespace treeserver
