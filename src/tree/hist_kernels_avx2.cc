// AVX2 histogram kernels. This translation unit is the only part of
// src/tree compiled with -mavx2 (see src/CMakeLists.txt); everything
// else stays at the baseline ISA so the scalar twins cannot silently
// pick up AVX encodings. Compiled empty unless TS_SIMD is ON and the
// target is x86-64.
#include "tree/hist_kernels.h"

#if TS_SIMD_ENABLED && (defined(__x86_64__) || defined(_M_X64))

#include <immintrin.h>

#include <vector>

#include "tree/hist.h"

namespace treeserver {
namespace histk {
namespace {

// Widens 8 consecutive bin codes to epi32 lanes.
inline __m256i LoadWiden8(const uint8_t* p) {
  return _mm256_cvtepu8_epi32(
      _mm_loadl_epi64(reinterpret_cast<const __m128i*>(p)));
}
inline __m256i LoadWiden8(const uint16_t* p) {
  return _mm256_cvtepu16_epi32(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(p)));
}

// Classification: the SIMD win is precomputing the scatter indices
// (code * num_classes + label) eight rows at a time for up to four
// columns, leaving only the dependent int64 increments scalar. The
// increments are integer adds, so any schedule is bit-exact.
template <typename Code, int NC>
void ClsFusedImpl(const Code* const* codes_in, const int32_t* labels,
                  const uint32_t* rows, size_t n, int c,
                  int64_t* const* counts_in) {
  const Code* codes[NC];
  int64_t* counts[NC];
  for (int k = 0; k < NC; ++k) {
    codes[k] = codes_in[k];
    counts[k] = counts_in[k];
  }
  const __m256i vc = _mm256_set1_epi32(c);
  alignas(32) int32_t idx[NC][8];
  alignas(32) Code gathered[NC][8];
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    if (rows == nullptr) {
      const __m256i vl =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(labels + i));
      for (int k = 0; k < NC; ++k) {
        const __m256i vi = _mm256_add_epi32(
            _mm256_mullo_epi32(LoadWiden8(codes[k] + i), vc), vl);
        _mm256_store_si256(reinterpret_cast<__m256i*>(idx[k]), vi);
      }
    } else {
      const __m256i vr =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(rows + i));
      const __m256i vl = _mm256_i32gather_epi32(
          reinterpret_cast<const int*>(labels), vr, 4);
      for (int r = 0; r < 8; ++r) {
        const uint32_t row = rows[i + r];
        for (int k = 0; k < NC; ++k) gathered[k][r] = codes[k][row];
      }
      for (int k = 0; k < NC; ++k) {
        const __m256i vi = _mm256_add_epi32(
            _mm256_mullo_epi32(LoadWiden8(gathered[k]), vc), vl);
        _mm256_store_si256(reinterpret_cast<__m256i*>(idx[k]), vi);
      }
    }
    for (int r = 0; r < 8; ++r) {
      for (int k = 0; k < NC; ++k) counts[k][idx[k][r]]++;
    }
  }
  for (; i < n; ++i) {
    const uint32_t row = rows ? rows[i] : static_cast<uint32_t>(i);
    const int32_t lab = labels[row];
    for (int k = 0; k < NC; ++k) {
      counts[k][static_cast<size_t>(codes[k][row]) * c + lab]++;
    }
  }
}

// Regression: each bin owns a 4-double stripe {n, sum, sum_sq, pad} in
// a scratch arena, updated with ONE vector add per (row, column) —
// acc = {1.0, y, y*y, 0.0}. Per bin this performs exactly the scalar
// twin's add sequence lane by lane (same IEEE ops, ascending row
// order, y*y a plain multiply under -ffp-contract=off), and the count
// lane stays integral in double (exact below 2^53), so the fold back
// into HistRegBin is bit-exact against RegScalar.
template <typename Code, int NC>
void RegFusedImpl(const Code* const* codes_in, const double* y,
                  const uint32_t* rows, size_t n, const int* slots,
                  HistRegBin* const* bins_in) {
  const Code* codes[NC];
  for (int k = 0; k < NC; ++k) codes[k] = codes_in[k];
  int offs[NC];
  int total = 0;
  for (int k = 0; k < NC; ++k) {
    offs[k] = total;
    total += slots[k];
  }
  thread_local std::vector<double> arena;
  arena.assign(static_cast<size_t>(total) * 4, 0.0);
  double* stripes[NC];
  for (int k = 0; k < NC; ++k) {
    stripes[k] = arena.data() + static_cast<size_t>(offs[k]) * 4;
  }

  // The accumulator vectors {1.0, y_r, y_r*y_r, 0.0} for four rows are
  // transposed in registers (no scalar buffer round-trip), then each
  // row applies one aligned load + add + store per fused column. The
  // add operands are the very values the scalar twin uses and rows
  // apply in ascending order, so every bin sees the same IEEE add
  // sequence — bit-exact against RegScalar.
  const __m256d ones = _mm256_set1_pd(1.0);
  const __m256d zero = _mm256_setzero_pd();
  auto update_row = [&](uint32_t row, __m256d acc) {
    for (int k = 0; k < NC; ++k) {
      double* p = stripes[k] + static_cast<size_t>(codes[k][row]) * 4;
      _mm256_storeu_pd(p, _mm256_add_pd(_mm256_loadu_pd(p), acc));
    }
  };
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256d vy;
    uint32_t r0, r1, r2, r3;
    if (rows == nullptr) {
      r0 = static_cast<uint32_t>(i);
      r1 = r0 + 1;
      r2 = r0 + 2;
      r3 = r0 + 3;
      vy = _mm256_loadu_pd(y + i);
    } else {
      r0 = rows[i];
      r1 = rows[i + 1];
      r2 = rows[i + 2];
      r3 = rows[i + 3];
      vy = _mm256_set_pd(y[r3], y[r2], y[r1], y[r0]);
    }
    const __m256d vsq = _mm256_mul_pd(vy, vy);
    const __m256d lo = _mm256_unpacklo_pd(ones, vy);    // {1,y0, 1,y2}
    const __m256d hi = _mm256_unpackhi_pd(ones, vy);    // {1,y1, 1,y3}
    const __m256d slo = _mm256_unpacklo_pd(vsq, zero);  // {y0^2,0, y2^2,0}
    const __m256d shi = _mm256_unpackhi_pd(vsq, zero);  // {y1^2,0, y3^2,0}
    update_row(r0, _mm256_permute2f128_pd(lo, slo, 0x20));
    update_row(r1, _mm256_permute2f128_pd(hi, shi, 0x20));
    update_row(r2, _mm256_permute2f128_pd(lo, slo, 0x31));
    update_row(r3, _mm256_permute2f128_pd(hi, shi, 0x31));
  }
  for (; i < n; ++i) {
    const uint32_t row = rows ? rows[i] : static_cast<uint32_t>(i);
    const double v = y[row];
    const double sq = v * v;
    for (int k = 0; k < NC; ++k) {
      double* p = stripes[k] + static_cast<size_t>(codes[k][row]) * 4;
      p[0] += 1.0;
      p[1] += v;
      p[2] += sq;
    }
  }
  for (int k = 0; k < NC; ++k) {
    HistRegBin* bins = bins_in[k];
    for (int b = 0; b < slots[k]; ++b) {
      const double* p = stripes[k] + static_cast<size_t>(b) * 4;
      bins[b].n = static_cast<int64_t>(p[0]);
      bins[b].sum = p[1];
      bins[b].sum_sq = p[2];
    }
  }
}

template <typename Code>
void ClsFusedSwitch(const Code* const* codes, size_t ncols,
                    const int32_t* labels, const uint32_t* rows, size_t n,
                    int c, int64_t* const* counts) {
  switch (ncols) {
    case 1:
      ClsFusedImpl<Code, 1>(codes, labels, rows, n, c, counts);
      break;
    case 2:
      ClsFusedImpl<Code, 2>(codes, labels, rows, n, c, counts);
      break;
    case 3:
      ClsFusedImpl<Code, 3>(codes, labels, rows, n, c, counts);
      break;
    default:
      ClsFusedImpl<Code, 4>(codes, labels, rows, n, c, counts);
      break;
  }
}

template <typename Code>
void RegFusedSwitch(const Code* const* codes, size_t ncols, const double* y,
                    const uint32_t* rows, size_t n, const int* slots,
                    HistRegBin* const* bins) {
  switch (ncols) {
    case 1:
      RegFusedImpl<Code, 1>(codes, y, rows, n, slots, bins);
      break;
    case 2:
      RegFusedImpl<Code, 2>(codes, y, rows, n, slots, bins);
      break;
    case 3:
      RegFusedImpl<Code, 3>(codes, y, rows, n, slots, bins);
      break;
    default:
      RegFusedImpl<Code, 4>(codes, y, rows, n, slots, bins);
      break;
  }
}

}  // namespace

void ClsFusedAvx2(const uint8_t* const* codes, size_t ncols,
                  const int32_t* labels, const uint32_t* rows, size_t n,
                  int c, int64_t* const* counts) {
  ClsFusedSwitch(codes, ncols, labels, rows, n, c, counts);
}

void ClsFusedAvx2(const uint16_t* const* codes, size_t ncols,
                  const int32_t* labels, const uint32_t* rows, size_t n,
                  int c, int64_t* const* counts) {
  ClsFusedSwitch(codes, ncols, labels, rows, n, c, counts);
}

void RegFusedAvx2(const uint8_t* const* codes, size_t ncols, const double* y,
                  const uint32_t* rows, size_t n, const int* slots,
                  HistRegBin* const* bins) {
  RegFusedSwitch(codes, ncols, y, rows, n, slots, bins);
}

void RegFusedAvx2(const uint16_t* const* codes, size_t ncols, const double* y,
                  const uint32_t* rows, size_t n, const int* slots,
                  HistRegBin* const* bins) {
  RegFusedSwitch(codes, ncols, y, rows, n, slots, bins);
}

}  // namespace histk
}  // namespace treeserver

#endif  // TS_SIMD_ENABLED && x86-64
