// NEON histogram kernels (AArch64). Advanced SIMD is mandatory on
// AArch64, so no extra compile flags are needed; the file compiles
// empty elsewhere. Same exactness contract as the AVX2 twin: integer
// class counts commute, regression bins keep one accumulator stripe
// fed in ascending row order with plain IEEE ops.
#include "tree/hist_kernels.h"

#if TS_SIMD_ENABLED && defined(__aarch64__)

#include <arm_neon.h>

#include <vector>

#include "tree/hist.h"

namespace treeserver {
namespace histk {
namespace {

// Widens 8 consecutive bin codes into two u32x4 halves.
inline void LoadWiden8(const uint8_t* p, uint32x4_t* lo, uint32x4_t* hi) {
  const uint16x8_t w = vmovl_u8(vld1_u8(p));
  *lo = vmovl_u16(vget_low_u16(w));
  *hi = vmovl_u16(vget_high_u16(w));
}
inline void LoadWiden8(const uint16_t* p, uint32x4_t* lo, uint32x4_t* hi) {
  const uint16x8_t w = vld1q_u16(p);
  *lo = vmovl_u16(vget_low_u16(w));
  *hi = vmovl_u16(vget_high_u16(w));
}

template <typename Code, int NC>
void ClsFusedImpl(const Code* const* codes_in, const int32_t* labels,
                  const uint32_t* rows, size_t n, int c,
                  int64_t* const* counts_in) {
  const Code* codes[NC];
  int64_t* counts[NC];
  for (int k = 0; k < NC; ++k) {
    codes[k] = codes_in[k];
    counts[k] = counts_in[k];
  }
  const uint32_t uc = static_cast<uint32_t>(c);
  alignas(16) uint32_t idx[NC][8];
  alignas(16) Code gathered[NC][8];
  alignas(16) uint32_t lbuf[8];
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    uint32x4_t vl_lo;
    uint32x4_t vl_hi;
    const Code* src[NC];
    if (rows == nullptr) {
      vl_lo = vreinterpretq_u32_s32(
          vld1q_s32(labels + i));
      vl_hi = vreinterpretq_u32_s32(vld1q_s32(labels + i + 4));
      for (int k = 0; k < NC; ++k) src[k] = codes[k] + i;
    } else {
      for (int r = 0; r < 8; ++r) {
        const uint32_t row = rows[i + r];
        lbuf[r] = static_cast<uint32_t>(labels[row]);
        for (int k = 0; k < NC; ++k) gathered[k][r] = codes[k][row];
      }
      vl_lo = vld1q_u32(lbuf);
      vl_hi = vld1q_u32(lbuf + 4);
      for (int k = 0; k < NC; ++k) src[k] = gathered[k];
    }
    for (int k = 0; k < NC; ++k) {
      uint32x4_t lo;
      uint32x4_t hi;
      LoadWiden8(src[k], &lo, &hi);
      vst1q_u32(idx[k], vaddq_u32(vmulq_n_u32(lo, uc), vl_lo));
      vst1q_u32(idx[k] + 4, vaddq_u32(vmulq_n_u32(hi, uc), vl_hi));
    }
    for (int r = 0; r < 8; ++r) {
      for (int k = 0; k < NC; ++k) counts[k][idx[k][r]]++;
    }
  }
  for (; i < n; ++i) {
    const uint32_t row = rows ? rows[i] : static_cast<uint32_t>(i);
    const int32_t lab = labels[row];
    for (int k = 0; k < NC; ++k) {
      counts[k][static_cast<size_t>(codes[k][row]) * c + lab]++;
    }
  }
}

// Per-bin stripe {n, sum, sum_sq, pad}; two f64x2 adds per
// (row, column). Same per-bin add order as the scalar twin.
template <typename Code, int NC>
void RegFusedImpl(const Code* const* codes_in, const double* y,
                  const uint32_t* rows, size_t n, const int* slots,
                  HistRegBin* const* bins_in) {
  const Code* codes[NC];
  for (int k = 0; k < NC; ++k) codes[k] = codes_in[k];
  int offs[NC];
  int total = 0;
  for (int k = 0; k < NC; ++k) {
    offs[k] = total;
    total += slots[k];
  }
  thread_local std::vector<double> arena;
  arena.assign(static_cast<size_t>(total) * 4, 0.0);
  double* stripes[NC];
  for (int k = 0; k < NC; ++k) {
    stripes[k] = arena.data() + static_cast<size_t>(offs[k]) * 4;
  }

  for (size_t i = 0; i < n; ++i) {
    const uint32_t row = rows ? rows[i] : static_cast<uint32_t>(i);
    const double v = y[row];
    const float64x2_t acc_lo = {1.0, v};
    const float64x2_t acc_hi = {v * v, 0.0};
    for (int k = 0; k < NC; ++k) {
      double* p = stripes[k] + static_cast<size_t>(codes[k][row]) * 4;
      vst1q_f64(p, vaddq_f64(vld1q_f64(p), acc_lo));
      vst1q_f64(p + 2, vaddq_f64(vld1q_f64(p + 2), acc_hi));
    }
  }
  for (int k = 0; k < NC; ++k) {
    HistRegBin* bins = bins_in[k];
    for (int b = 0; b < slots[k]; ++b) {
      const double* p = stripes[k] + static_cast<size_t>(b) * 4;
      bins[b].n = static_cast<int64_t>(p[0]);
      bins[b].sum = p[1];
      bins[b].sum_sq = p[2];
    }
  }
}

template <typename Code>
void ClsFusedSwitch(const Code* const* codes, size_t ncols,
                    const int32_t* labels, const uint32_t* rows, size_t n,
                    int c, int64_t* const* counts) {
  switch (ncols) {
    case 1:
      ClsFusedImpl<Code, 1>(codes, labels, rows, n, c, counts);
      break;
    case 2:
      ClsFusedImpl<Code, 2>(codes, labels, rows, n, c, counts);
      break;
    case 3:
      ClsFusedImpl<Code, 3>(codes, labels, rows, n, c, counts);
      break;
    default:
      ClsFusedImpl<Code, 4>(codes, labels, rows, n, c, counts);
      break;
  }
}

template <typename Code>
void RegFusedSwitch(const Code* const* codes, size_t ncols, const double* y,
                    const uint32_t* rows, size_t n, const int* slots,
                    HistRegBin* const* bins) {
  switch (ncols) {
    case 1:
      RegFusedImpl<Code, 1>(codes, y, rows, n, slots, bins);
      break;
    case 2:
      RegFusedImpl<Code, 2>(codes, y, rows, n, slots, bins);
      break;
    case 3:
      RegFusedImpl<Code, 3>(codes, y, rows, n, slots, bins);
      break;
    default:
      RegFusedImpl<Code, 4>(codes, y, rows, n, slots, bins);
      break;
  }
}

}  // namespace

void ClsFusedNeon(const uint8_t* const* codes, size_t ncols,
                  const int32_t* labels, const uint32_t* rows, size_t n,
                  int c, int64_t* const* counts) {
  ClsFusedSwitch(codes, ncols, labels, rows, n, c, counts);
}

void ClsFusedNeon(const uint16_t* const* codes, size_t ncols,
                  const int32_t* labels, const uint32_t* rows, size_t n,
                  int c, int64_t* const* counts) {
  ClsFusedSwitch(codes, ncols, labels, rows, n, c, counts);
}

void RegFusedNeon(const uint8_t* const* codes, size_t ncols, const double* y,
                  const uint32_t* rows, size_t n, const int* slots,
                  HistRegBin* const* bins) {
  RegFusedSwitch(codes, ncols, y, rows, n, slots, bins);
}

void RegFusedNeon(const uint16_t* const* codes, size_t ncols, const double* y,
                  const uint32_t* rows, size_t n, const int* slots,
                  HistRegBin* const* bins) {
  RegFusedSwitch(codes, ncols, y, rows, n, slots, bins);
}

}  // namespace histk
}  // namespace treeserver

#endif  // TS_SIMD_ENABLED && __aarch64__
