#ifndef TREESERVER_TREE_IMPURITY_H_
#define TREESERVER_TREE_IMPURITY_H_

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

namespace treeserver {

/// Impurity functions the user can pick per job (Fig. 2 shows jobs
/// selecting Gini vs entropy; regression uses variance).
enum class Impurity : uint8_t {
  kGini = 0,
  kEntropy = 1,
  kVariance = 2,
};

const char* ImpurityName(Impurity impurity);

/// Per-class counts of a row set; the sufficient statistic for
/// classification impurity.
struct ClassStats {
  std::vector<int64_t> counts;
  int64_t n = 0;

  explicit ClassStats(int num_classes = 0) : counts(num_classes, 0) {}

  void Add(int32_t label, int64_t weight = 1) {
    counts[label] += weight;
    n += weight;
  }
  void Remove(int32_t label, int64_t weight = 1) {
    counts[label] -= weight;
    n -= weight;
  }
  void Merge(const ClassStats& other) {
    for (size_t i = 0; i < counts.size(); ++i) counts[i] += other.counts[i];
    n += other.n;
  }

  bool IsPure() const {
    for (int64_t c : counts) {
      if (c == n) return true;
    }
    return n <= 1;
  }

  /// Index of the most frequent class (ties -> lowest index).
  int32_t Majority() const {
    int32_t best = 0;
    for (size_t i = 1; i < counts.size(); ++i) {
      if (counts[i] > counts[best]) best = static_cast<int32_t>(i);
    }
    return best;
  }

  /// Probability mass function over classes.
  std::vector<float> Pmf() const {
    std::vector<float> p(counts.size(), 0.0f);
    if (n == 0) return p;
    for (size_t i = 0; i < counts.size(); ++i) {
      p[i] = static_cast<float>(static_cast<double>(counts[i]) /
                                static_cast<double>(n));
    }
    return p;
  }

  double Gini() const {
    if (n == 0) return 0.0;
    double s = 0.0;
    for (int64_t c : counts) {
      double p = static_cast<double>(c) / static_cast<double>(n);
      s += p * p;
    }
    return 1.0 - s;
  }

  double Entropy() const {
    if (n == 0) return 0.0;
    double h = 0.0;
    for (int64_t c : counts) {
      if (c == 0) continue;
      double p = static_cast<double>(c) / static_cast<double>(n);
      h -= p * std::log2(p);
    }
    return h;
  }

  double ImpurityValue(Impurity impurity) const {
    return impurity == Impurity::kEntropy ? Entropy() : Gini();
  }
};

/// Sum/sum-of-squares of a row set; the sufficient statistic for
/// regression (variance) impurity.
struct RegStats {
  int64_t n = 0;
  double sum = 0.0;
  double sum_sq = 0.0;

  void Add(double y) {
    ++n;
    sum += y;
    sum_sq += y * y;
  }
  void Remove(double y) {
    --n;
    sum -= y;
    sum_sq -= y * y;
  }
  void Merge(const RegStats& other) {
    n += other.n;
    sum += other.sum;
    sum_sq += other.sum_sq;
  }

  double Mean() const {
    return n == 0 ? 0.0 : sum / static_cast<double>(n);
  }

  /// Population variance; clamped at 0 against rounding.
  double Variance() const {
    if (n == 0) return 0.0;
    double mean = Mean();
    double v = sum_sq / static_cast<double>(n) - mean * mean;
    return v > 0.0 ? v : 0.0;
  }

  bool IsPure() const { return n <= 1 || Variance() <= 1e-12; }
};

}  // namespace treeserver

#endif  // TREESERVER_TREE_IMPURITY_H_
