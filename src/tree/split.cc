#include "tree/split.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"
#include "common/metrics_registry.h"

namespace treeserver {

namespace {

bool ContainsSorted(const std::vector<int32_t>& v, int32_t x) {
  return std::binary_search(v.begin(), v.end(), x);
}

}  // namespace

SplitCondition::Route SplitCondition::RouteNumeric(double v) const {
  if (IsMissingNumeric(v)) return Route::kStop;
  return v <= threshold ? Route::kLeft : Route::kRight;
}

SplitCondition::Route SplitCondition::RouteCategory(int32_t code) const {
  if (code == kMissingCategory) return Route::kStop;
  if (ContainsSorted(left_categories, code)) return Route::kLeft;
  if (ContainsSorted(seen_categories, code)) return Route::kRight;
  return Route::kStop;  // value unseen during training (Appendix D)
}

bool SplitCondition::TrainRoutesLeftCategory(int32_t code) const {
  if (code == kMissingCategory) return missing_to_left;
  return ContainsSorted(left_categories, code);
}

void SplitCondition::Serialize(BinaryWriter* w) const {
  w->Write(column);
  w->Write(static_cast<uint8_t>(type));
  w->Write(threshold);
  w->WriteVector(left_categories);
  w->WriteVector(seen_categories);
  w->Write(static_cast<uint8_t>(missing_to_left ? 1 : 0));
}

Status SplitCondition::Deserialize(BinaryReader* r, SplitCondition* out) {
  TS_RETURN_IF_ERROR(r->Read(&out->column));
  uint8_t type;
  TS_RETURN_IF_ERROR(r->Read(&type));
  out->type = static_cast<DataType>(type);
  TS_RETURN_IF_ERROR(r->Read(&out->threshold));
  TS_RETURN_IF_ERROR(r->ReadVector(&out->left_categories));
  TS_RETURN_IF_ERROR(r->ReadVector(&out->seen_categories));
  uint8_t missing;
  TS_RETURN_IF_ERROR(r->Read(&missing));
  out->missing_to_left = missing != 0;
  return Status::OK();
}

bool SplitCondition::operator==(const SplitCondition& other) const {
  return column == other.column && type == other.type &&
         threshold == other.threshold &&
         left_categories == other.left_categories &&
         seen_categories == other.seen_categories &&
         missing_to_left == other.missing_to_left;
}

void TargetStats::Serialize(BinaryWriter* w) const {
  w->Write(static_cast<uint8_t>(kind));
  if (kind == TaskKind::kClassification) {
    w->WriteVector(cls.counts);
    w->Write(cls.n);
  } else {
    w->Write(reg.n);
    w->Write(reg.sum);
    w->Write(reg.sum_sq);
  }
}

Status TargetStats::Deserialize(BinaryReader* r, TargetStats* out) {
  uint8_t kind;
  TS_RETURN_IF_ERROR(r->Read(&kind));
  out->kind = static_cast<TaskKind>(kind);
  if (out->kind == TaskKind::kClassification) {
    TS_RETURN_IF_ERROR(r->ReadVector(&out->cls.counts));
    TS_RETURN_IF_ERROR(r->Read(&out->cls.n));
  } else {
    TS_RETURN_IF_ERROR(r->Read(&out->reg.n));
    TS_RETURN_IF_ERROR(r->Read(&out->reg.sum));
    TS_RETURN_IF_ERROR(r->Read(&out->reg.sum_sq));
  }
  return Status::OK();
}

void SplitOutcome::Serialize(BinaryWriter* w) const {
  w->Write(static_cast<uint8_t>(valid ? 1 : 0));
  if (!valid) return;
  condition.Serialize(w);
  w->Write(gain);
  left_stats.Serialize(w);
  right_stats.Serialize(w);
}

Status SplitOutcome::Deserialize(BinaryReader* r, SplitOutcome* out) {
  uint8_t valid;
  TS_RETURN_IF_ERROR(r->Read(&valid));
  out->valid = valid != 0;
  if (!out->valid) return Status::OK();
  TS_RETURN_IF_ERROR(SplitCondition::Deserialize(r, &out->condition));
  TS_RETURN_IF_ERROR(r->Read(&out->gain));
  TS_RETURN_IF_ERROR(TargetStats::Deserialize(r, &out->left_stats));
  TS_RETURN_IF_ERROR(TargetStats::Deserialize(r, &out->right_stats));
  return Status::OK();
}

const char* SplitMethodName(SplitMethod method) {
  return method == SplitMethod::kHistogram ? "histogram" : "exact";
}

namespace {

TargetStats MakeStats(const SplitContext& ctx) {
  return ctx.kind == TaskKind::kClassification
             ? TargetStats::Classification(ctx.num_classes)
             : TargetStats::Regression();
}

void AddRow(TargetStats* stats, const Column& target, uint32_t row) {
  if (stats->kind == TaskKind::kClassification) {
    stats->cls.Add(target.category_at(row));
  } else {
    stats->reg.Add(target.numeric_at(row));
  }
}

}  // namespace

void FinishSplitOutcome(const SplitContext& ctx, const TargetStats& missing,
                        SplitOutcome* out) {
  out->condition.missing_to_left =
      out->left_stats.Count() >= out->right_stats.Count();
  if (missing.Count() > 0) {
    if (out->condition.missing_to_left) {
      out->left_stats.Merge(missing);
    } else {
      out->right_stats.Merge(missing);
    }
  }
  TargetStats parent = out->left_stats;
  parent.Merge(out->right_stats);
  const double n = static_cast<double>(parent.Count());
  const double nl = static_cast<double>(out->left_stats.Count());
  const double nr = static_cast<double>(out->right_stats.Count());
  double child =
      (nl * out->left_stats.ImpurityValue(ctx.impurity) +
       nr * out->right_stats.ImpurityValue(ctx.impurity)) /
      n;
  out->gain = parent.ImpurityValue(ctx.impurity) - child;
  out->valid = true;
}

namespace {

// ---------------------------------------------------------------------
// Case 1 (Appendix B): ordinal attribute, any target. Sort the
// non-missing (value, y) pairs and scan once, updating left/right
// sufficient statistics in O(1) per step.
// ---------------------------------------------------------------------

struct NumericPairCls {
  double v;
  int32_t y;
};
struct NumericPairReg {
  double v;
  double y;
};

// Thread-local scratch arena for the exact kernels: the pair buffers
// and per-category stat tables are reused across calls, so steady-state
// split evaluation performs no heap allocation proportional to the node
// size. Each comper thread owns one arena; kernels never nest.
struct ExactScratch {
  std::vector<NumericPairCls> cls_pairs;
  std::vector<NumericPairReg> reg_pairs;
  std::vector<ClassStats> per_cat_cls;
  std::vector<RegStats> per_cat_reg;
  std::vector<int32_t> seen;
  std::vector<int32_t> order;
  ClassStats left;
  ClassStats right;
  ClassStats total;
  ClassStats best_left;
};

ExactScratch& Scratch() {
  static thread_local ExactScratch s;
  return s;
}

void ResetClassStats(ClassStats* s, int num_classes) {
  s->counts.assign(num_classes, 0);
  s->n = 0;
}

Counter* ExactSortsCounter() {
  static Counter* const c =
      MetricsRegistry::Global().GetCounter("split.exact_sorts");
  return c;
}

SplitOutcome NumericBestClassification(const Column& feature, int column_index,
                                       const Column& target,
                                       const SplitContext& ctx,
                                       const uint32_t* rows, size_t n) {
  SplitOutcome out;
  ExactScratch& s = Scratch();
  std::vector<NumericPairCls>& pairs = s.cls_pairs;
  pairs.clear();
  pairs.reserve(n);
  TargetStats missing = MakeStats(ctx);
  for (size_t i = 0; i < n; ++i) {
    uint32_t row = rows ? rows[i] : static_cast<uint32_t>(i);
    double v = feature.numeric_at(row);
    if (IsMissingNumeric(v)) {
      AddRow(&missing, target, row);
    } else {
      pairs.push_back({v, target.category_at(row)});
    }
  }
  const size_t k = pairs.size();
  if (k < 2) return out;
  std::sort(pairs.begin(), pairs.end(),
            [](const NumericPairCls& a, const NumericPairCls& b) {
              return a.v < b.v;
            });
  ExactSortsCounter()->Inc();

  ResetClassStats(&s.left, ctx.num_classes);
  ResetClassStats(&s.total, ctx.num_classes);
  for (const NumericPairCls& p : pairs) s.total.Add(p.y);
  s.right = s.total;
  ResetClassStats(&s.best_left, ctx.num_classes);

  double best_score = std::numeric_limits<double>::infinity();
  size_t best_idx = k;  // sentinel: no candidate
  const double kd = static_cast<double>(k);
  for (size_t i = 0; i + 1 < k; ++i) {
    s.left.Add(pairs[i].y);
    s.right.Remove(pairs[i].y);
    if (pairs[i].v == pairs[i + 1].v) continue;
    double score = (static_cast<double>(s.left.n) *
                        s.left.ImpurityValue(ctx.impurity) +
                    static_cast<double>(s.right.n) *
                        s.right.ImpurityValue(ctx.impurity)) /
                   kd;
    if (score < best_score) {
      best_score = score;
      best_idx = i;
      s.best_left = s.left;
    }
  }
  if (best_idx == k) return out;  // all values identical

  out.left_stats = MakeStats(ctx);
  out.left_stats.cls = s.best_left;
  out.right_stats = MakeStats(ctx);
  out.right_stats.cls = s.total;
  for (size_t j = 0; j < s.best_left.counts.size(); ++j) {
    out.right_stats.cls.counts[j] -= s.best_left.counts[j];
  }
  out.right_stats.cls.n -= s.best_left.n;
  out.condition.column = column_index;
  out.condition.type = DataType::kNumeric;
  out.condition.threshold = pairs[best_idx].v;
  FinishSplitOutcome(ctx, missing, &out);
  return out;
}

SplitOutcome NumericBestRegression(const Column& feature, int column_index,
                                   const Column& target,
                                   const SplitContext& ctx,
                                   const uint32_t* rows, size_t n) {
  SplitOutcome out;
  ExactScratch& s = Scratch();
  std::vector<NumericPairReg>& pairs = s.reg_pairs;
  pairs.clear();
  pairs.reserve(n);
  TargetStats missing = MakeStats(ctx);
  for (size_t i = 0; i < n; ++i) {
    uint32_t row = rows ? rows[i] : static_cast<uint32_t>(i);
    double v = feature.numeric_at(row);
    if (IsMissingNumeric(v)) {
      AddRow(&missing, target, row);
    } else {
      pairs.push_back({v, target.numeric_at(row)});
    }
  }
  const size_t k = pairs.size();
  if (k < 2) return out;
  std::sort(pairs.begin(), pairs.end(),
            [](const NumericPairReg& a, const NumericPairReg& b) {
              return a.v < b.v;
            });
  ExactSortsCounter()->Inc();

  RegStats total;
  for (const NumericPairReg& p : pairs) total.Add(p.y);
  RegStats left;
  RegStats right = total;
  RegStats best_left;

  double best_score = std::numeric_limits<double>::infinity();
  size_t best_idx = k;
  const double kd = static_cast<double>(k);
  for (size_t i = 0; i + 1 < k; ++i) {
    left.Add(pairs[i].y);
    right.Remove(pairs[i].y);
    if (pairs[i].v == pairs[i + 1].v) continue;
    double score = (static_cast<double>(left.n) * left.Variance() +
                    static_cast<double>(right.n) * right.Variance()) /
                   kd;
    if (score < best_score) {
      best_score = score;
      best_idx = i;
      best_left = left;
    }
  }
  if (best_idx == k) return out;

  out.left_stats = MakeStats(ctx);
  out.left_stats.reg = best_left;
  out.right_stats = MakeStats(ctx);
  out.right_stats.reg.n = total.n - best_left.n;
  out.right_stats.reg.sum = total.sum - best_left.sum;
  out.right_stats.reg.sum_sq = total.sum_sq - best_left.sum_sq;
  out.condition.column = column_index;
  out.condition.type = DataType::kNumeric;
  out.condition.threshold = pairs[best_idx].v;
  FinishSplitOutcome(ctx, missing, &out);
  return out;
}

// ---------------------------------------------------------------------
// Case 3 (Appendix B): categorical attribute, categorical target.
// Restrict |S_l| = 1 and enumerate the O(|S_i|) one-vs-rest splits.
// ---------------------------------------------------------------------

SplitOutcome CategoricalClassification(const Column& feature, int column_index,
                                       const Column& target,
                                       const SplitContext& ctx,
                                       const uint32_t* rows, size_t n) {
  SplitOutcome out;
  ExactScratch& s = Scratch();
  const int32_t card = feature.cardinality();
  std::vector<ClassStats>& per_cat = s.per_cat_cls;
  if (per_cat.size() < static_cast<size_t>(card)) per_cat.resize(card);
  for (int32_t c = 0; c < card; ++c) {
    ResetClassStats(&per_cat[c], ctx.num_classes);
  }
  ResetClassStats(&s.total, ctx.num_classes);
  ClassStats& total = s.total;
  TargetStats missing = MakeStats(ctx);
  for (size_t i = 0; i < n; ++i) {
    uint32_t row = rows ? rows[i] : static_cast<uint32_t>(i);
    int32_t c = feature.category_at(row);
    if (c == kMissingCategory) {
      AddRow(&missing, target, row);
    } else {
      per_cat[c].Add(target.category_at(row));
      total.Add(target.category_at(row));
    }
  }
  if (total.n < 2) return out;

  std::vector<int32_t>& seen = s.seen;
  seen.clear();
  for (int32_t c = 0; c < card; ++c) {
    if (per_cat[c].n > 0) seen.push_back(c);
  }
  if (seen.size() < 2) return out;  // only one category present

  double best_score = std::numeric_limits<double>::infinity();
  int32_t best_cat = -1;
  const double total_n = static_cast<double>(total.n);
  ClassStats& rest = s.left;
  for (int32_t c : seen) {
    rest = total;
    for (size_t j = 0; j < rest.counts.size(); ++j) {
      rest.counts[j] -= per_cat[c].counts[j];
    }
    rest.n -= per_cat[c].n;
    double score = (static_cast<double>(per_cat[c].n) *
                        per_cat[c].ImpurityValue(ctx.impurity) +
                    static_cast<double>(rest.n) *
                        rest.ImpurityValue(ctx.impurity)) /
                   total_n;
    if (score < best_score) {
      best_score = score;
      best_cat = c;
    }
  }
  TS_DCHECK(best_cat >= 0);

  out.left_stats = MakeStats(ctx);
  out.right_stats = MakeStats(ctx);
  out.left_stats.cls = per_cat[best_cat];
  out.right_stats.cls = total;
  for (size_t j = 0; j < total.counts.size(); ++j) {
    out.right_stats.cls.counts[j] -= per_cat[best_cat].counts[j];
  }
  out.right_stats.cls.n -= per_cat[best_cat].n;
  out.condition.column = column_index;
  out.condition.type = DataType::kCategorical;
  out.condition.left_categories = {best_cat};
  out.condition.seen_categories.assign(seen.begin(), seen.end());
  FinishSplitOutcome(ctx, missing, &out);
  return out;
}

// ---------------------------------------------------------------------
// Case 2 (Appendix B, Breiman et al.): categorical attribute, numeric
// target. Sort categories by mean target value; the optimal subset
// split is a prefix of that order, so one pass over groups suffices.
// ---------------------------------------------------------------------

SplitOutcome CategoricalRegression(const Column& feature, int column_index,
                                   const Column& target,
                                   const SplitContext& ctx,
                                   const uint32_t* rows, size_t n) {
  SplitOutcome out;
  ExactScratch& s = Scratch();
  const int32_t card = feature.cardinality();
  std::vector<RegStats>& per_cat = s.per_cat_reg;
  per_cat.assign(card, RegStats());
  TargetStats missing = MakeStats(ctx);
  for (size_t i = 0; i < n; ++i) {
    uint32_t row = rows ? rows[i] : static_cast<uint32_t>(i);
    int32_t c = feature.category_at(row);
    if (c == kMissingCategory) {
      AddRow(&missing, target, row);
    } else {
      per_cat[c].Add(target.numeric_at(row));
    }
  }

  std::vector<int32_t>& seen = s.seen;
  seen.clear();
  for (int32_t c = 0; c < card; ++c) {
    if (per_cat[c].n > 0) seen.push_back(c);
  }
  if (seen.size() < 2) return out;

  std::vector<int32_t>& order = s.order;
  order.assign(seen.begin(), seen.end());
  std::sort(order.begin(), order.end(), [&](int32_t a, int32_t b) {
    return per_cat[a].Mean() < per_cat[b].Mean();
  });

  RegStats total;
  for (int32_t c : seen) total.Merge(per_cat[c]);

  RegStats left;
  RegStats right = total;
  double best_score = std::numeric_limits<double>::infinity();
  size_t best_prefix = 0;  // 0 = no candidate
  const double total_n = static_cast<double>(total.n);
  for (size_t i = 0; i + 1 < order.size(); ++i) {
    left.Merge(per_cat[order[i]]);
    right.n -= per_cat[order[i]].n;
    right.sum -= per_cat[order[i]].sum;
    right.sum_sq -= per_cat[order[i]].sum_sq;
    double score = (static_cast<double>(left.n) * left.Variance() +
                    static_cast<double>(right.n) * right.Variance()) /
                   total_n;
    if (score < best_score) {
      best_score = score;
      best_prefix = i + 1;
    }
  }
  if (best_prefix == 0) return out;

  std::vector<int32_t> left_cats(order.begin(), order.begin() + best_prefix);
  std::sort(left_cats.begin(), left_cats.end());

  out.left_stats = MakeStats(ctx);
  out.right_stats = MakeStats(ctx);
  for (size_t i = 0; i < order.size(); ++i) {
    if (i < best_prefix) {
      out.left_stats.reg.Merge(per_cat[order[i]]);
    } else {
      out.right_stats.reg.Merge(per_cat[order[i]]);
    }
  }
  out.condition.column = column_index;
  out.condition.type = DataType::kCategorical;
  out.condition.left_categories = std::move(left_cats);
  out.condition.seen_categories.assign(seen.begin(), seen.end());
  FinishSplitOutcome(ctx, missing, &out);
  return out;
}

}  // namespace

TargetStats ComputeTargetStats(const Column& target, const SplitContext& ctx,
                               const uint32_t* rows, size_t n) {
  TargetStats stats = MakeStats(ctx);
  for (size_t i = 0; i < n; ++i) {
    uint32_t row = rows ? rows[i] : static_cast<uint32_t>(i);
    AddRow(&stats, target, row);
  }
  return stats;
}

SplitOutcome FindBestSplit(const Column& feature, int column_index,
                           const Column& target, const SplitContext& ctx,
                           const uint32_t* rows, size_t n) {
  if (feature.type() == DataType::kNumeric) {
    return ctx.kind == TaskKind::kClassification
               ? NumericBestClassification(feature, column_index, target, ctx,
                                           rows, n)
               : NumericBestRegression(feature, column_index, target, ctx,
                                       rows, n);
  }
  return ctx.kind == TaskKind::kClassification
             ? CategoricalClassification(feature, column_index, target, ctx,
                                         rows, n)
             : CategoricalRegression(feature, column_index, target, ctx, rows,
                                     n);
}

SplitOutcome FindRandomSplit(const Column& feature, int column_index,
                             const Column& target, const SplitContext& ctx,
                             const uint32_t* rows, size_t n, Rng* rng) {
  SplitOutcome out;
  TargetStats missing = MakeStats(ctx);
  if (feature.type() == DataType::kNumeric) {
    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < n; ++i) {
      uint32_t row = rows ? rows[i] : static_cast<uint32_t>(i);
      double v = feature.numeric_at(row);
      if (IsMissingNumeric(v)) continue;
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    if (!(lo < hi)) return out;  // constant or all-missing column
    double threshold = rng->UniformDouble(lo, hi);
    out.left_stats = MakeStats(ctx);
    out.right_stats = MakeStats(ctx);
    for (size_t i = 0; i < n; ++i) {
      uint32_t row = rows ? rows[i] : static_cast<uint32_t>(i);
      double v = feature.numeric_at(row);
      if (IsMissingNumeric(v)) {
        AddRow(&missing, target, row);
      } else if (v <= threshold) {
        AddRow(&out.left_stats, target, row);
      } else {
        AddRow(&out.right_stats, target, row);
      }
    }
    out.condition.column = column_index;
    out.condition.type = DataType::kNumeric;
    out.condition.threshold = threshold;
    FinishSplitOutcome(ctx, missing, &out);
    return out;
  }

  // Categorical: pick a random nonempty proper subset of the seen
  // categories as S_l.
  const int32_t card = feature.cardinality();
  std::vector<int64_t> cat_count(card, 0);
  for (size_t i = 0; i < n; ++i) {
    uint32_t row = rows ? rows[i] : static_cast<uint32_t>(i);
    int32_t c = feature.category_at(row);
    if (c != kMissingCategory) ++cat_count[c];
  }
  std::vector<int32_t> seen;
  for (int32_t c = 0; c < card; ++c) {
    if (cat_count[c] > 0) seen.push_back(c);
  }
  if (seen.size() < 2) return out;

  std::vector<int32_t> left_cats;
  for (int attempt = 0; attempt < 8 && (left_cats.empty() ||
                                        left_cats.size() == seen.size());
       ++attempt) {
    left_cats.clear();
    for (int32_t c : seen) {
      if (rng->Bernoulli(0.5)) left_cats.push_back(c);
    }
  }
  if (left_cats.empty() || left_cats.size() == seen.size()) {
    left_cats = {seen[rng->Uniform(seen.size())]};
    if (left_cats.size() == seen.size()) return out;
  }
  std::sort(left_cats.begin(), left_cats.end());

  out.left_stats = MakeStats(ctx);
  out.right_stats = MakeStats(ctx);
  for (size_t i = 0; i < n; ++i) {
    uint32_t row = rows ? rows[i] : static_cast<uint32_t>(i);
    int32_t c = feature.category_at(row);
    if (c == kMissingCategory) {
      AddRow(&missing, target, row);
    } else if (ContainsSorted(left_cats, c)) {
      AddRow(&out.left_stats, target, row);
    } else {
      AddRow(&out.right_stats, target, row);
    }
  }
  out.condition.column = column_index;
  out.condition.type = DataType::kCategorical;
  out.condition.left_categories = std::move(left_cats);
  out.condition.seen_categories = std::move(seen);
  FinishSplitOutcome(ctx, missing, &out);
  return out;
}

}  // namespace treeserver
