#ifndef TREESERVER_TREE_MODEL_H_
#define TREESERVER_TREE_MODEL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/serial.h"
#include "common/status.h"
#include "table/data_table.h"
#include "tree/split.h"

namespace treeserver {

/// A trained decision tree.
///
/// Nodes live in a flat vector; node 0 is the root. Every node —
/// internal or leaf — stores its prediction (PMF / majority label for
/// classification, mean for regression), which is the paper's
/// "predict at any depth" feature (Appendix D): traversal may stop
/// early on a depth cutoff, a missing value, or a category unseen
/// during training, and report the current node's prediction.
class TreeModel {
 public:
  struct Node {
    /// Invalid condition (column < 0) marks a leaf.
    SplitCondition condition;
    int32_t left = -1;
    int32_t right = -1;
    uint32_t n_rows = 0;
    uint16_t depth = 0;
    /// Impurity decrease achieved by this node's split (0 for leaves);
    /// feeds feature-importance accounting.
    double split_gain = 0.0;
    /// Classification outputs.
    std::vector<float> pmf;
    int32_t label = 0;
    /// Regression output.
    double value = 0.0;

    bool is_leaf() const { return !condition.valid(); }
  };

  TreeModel() = default;
  TreeModel(TaskKind kind, int num_classes)
      : kind_(kind), num_classes_(num_classes) {}

  TaskKind kind() const { return kind_; }
  int num_classes() const { return num_classes_; }

  /// Appends a node and returns its index.
  int32_t AddNode(Node node);

  const Node& node(int32_t id) const { return nodes_[id]; }
  Node& mutable_node(int32_t id) { return nodes_[id]; }
  size_t num_nodes() const { return nodes_.size(); }
  bool empty() const { return nodes_.empty(); }

  /// Deepest node depth (root = 0); -1 for an empty tree.
  int MaxDepth() const;
  /// Number of leaf nodes.
  size_t NumLeaves() const;

  /// Walks from the root following split conditions on the given table
  /// row and returns the node where traversal stops: a leaf, the depth
  /// cutoff (`max_depth` < 0 disables it), or a kStop route.
  const Node& Traverse(const DataTable& table, size_t row,
                       int max_depth = -1) const;

  int32_t PredictLabel(const DataTable& table, size_t row,
                       int max_depth = -1) const {
    return Traverse(table, row, max_depth).label;
  }
  double PredictValue(const DataTable& table, size_t row,
                      int max_depth = -1) const {
    return Traverse(table, row, max_depth).value;
  }
  const std::vector<float>& PredictPmf(const DataTable& table, size_t row,
                                       int max_depth = -1) const {
    return Traverse(table, row, max_depth).pmf;
  }

  /// Replaces the leaf `node_id` with the root of `subtree`, appending
  /// the remaining subtree nodes and fixing indices/depths. This is
  /// how the master hooks a subtree-task's result onto the tree under
  /// construction (Fig. 3(b)).
  void GraftSubtree(int32_t node_id, const TreeModel& subtree);

  void Serialize(BinaryWriter* w) const;
  static Status Deserialize(BinaryReader* r, TreeModel* out);

  /// Human-readable multi-line rendering of the tree, using the
  /// schema's column names.
  std::string DebugString(const Schema& schema) const;

  /// Graphviz dot rendering (one digraph per tree).
  std::string ToDot(const Schema& schema, const std::string& name) const;

  /// Accumulates impurity-decrease feature importance into
  /// `importance` (indexed by column id): each split adds
  /// gain * n_rows.
  void AccumulateImportance(std::vector<double>* importance) const;

  /// Structural equality (used by tests comparing the distributed
  /// engine's output against the serial reference trainer).
  bool StructurallyEqual(const TreeModel& other) const;

  /// Re-lays nodes_ into the serial trainer's creation order (children
  /// appended when their parent splits, parents visited depth-first,
  /// left first). The distributed master assembles nodes in task
  /// completion order, which varies run to run and across transports;
  /// canonicalizing on completion makes the serialized model a pure
  /// function of the training inputs, so an in-process run, a TCP
  /// cluster run, and the serial reference all emit identical bytes.
  void Canonicalize();

 private:
  TaskKind kind_ = TaskKind::kClassification;
  int num_classes_ = 0;
  std::vector<Node> nodes_;
};

}  // namespace treeserver

#endif  // TREESERVER_TREE_MODEL_H_
