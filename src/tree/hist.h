#ifndef TREESERVER_TREE_HIST_H_
#define TREESERVER_TREE_HIST_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "table/binned.h"
#include "tree/split.h"

namespace treeserver {

/// One regression histogram bin: row count plus target sum and sum of
/// squares. Namespace-scope (not nested) so the SIMD kernels in
/// tree/hist_kernels.h can fill arrays of them directly.
struct HistRegBin {
  int64_t n = 0;
  double sum = 0.0;
  double sum_sq = 0.0;
};

/// Per-node histogram of one binned numeric column: class counts per
/// bin (classification) or (count, sum, sum of squares) per bin
/// (regression), with the missing bin last. Built in one O(n) pass
/// over the bin codes and scanned in O(bins) by BestSplit.
///
/// The scan mirrors the exact kernel's semantics exactly — candidate
/// cuts after each non-empty bin with data to its right, strict-<
/// improvement keeps the earliest cut, score over non-missing rows,
/// threshold = the largest actual column value in the cut bin — so
/// when every distinct value has its own bin (distinct <= max_bins)
/// the outcome reproduces the exact split bit for bit (classification
/// always; regression when target sums carry no rounding, e.g.
/// integer-valued targets).
///
/// Sibling subtraction (the LightGBM trick): `parent - child` equals
/// the direct build of the other child. For classification the counts
/// are integers, so the identity is bit-exact and a derived histogram
/// is interchangeable with a built one. For regression the sums
/// re-associate, so derivation is only used where the choice of which
/// sibling to derive is itself deterministic (inside TrainTree).
///
/// Accumulation runs through the runtime-dispatched kernels of
/// tree/hist_kernels.h (scalar / AVX2 / NEON, common/simd.h). Every
/// kernel preserves the per-bin accumulation order of the scalar
/// reference, so the built histograms are bit-identical across levels
/// — integer class counts commute outright, and the vectorized
/// regression kernel keeps one accumulator per bin fed in row order.
class NodeHistogram {
 public:
  NodeHistogram() = default;

  /// One O(n) pass over `rows` (nullptr = all rows [0, n)).
  static NodeHistogram Build(const BinnedColumn& binned, const Column& target,
                             const SplitContext& ctx, const uint32_t* rows,
                             size_t n);

  /// Builds the histograms of several columns of the same node in one
  /// fused pass: the target is read once per row and up to four
  /// same-width columns accumulate together, which is where the SIMD
  /// kernels earn their keep. `cols[i]` may be nullptr (categorical /
  /// unbinned column): `out[i]` stays empty. `out` must hold
  /// `num_cols` default-constructed entries. Results are bit-identical
  /// to per-column Build() calls at every SIMD level.
  static void BuildMany(const BinnedColumn* const* cols, size_t num_cols,
                        const Column& target, const SplitContext& ctx,
                        const uint32_t* rows, size_t n, NodeHistogram* out);

  /// Derives the sibling: element-wise parent - child.
  static NodeHistogram Subtract(const NodeHistogram& parent,
                                const NodeHistogram& child);

  /// Best split of this column in O(bins); outcome fields and
  /// tie-breaks match FindBestSplit on the binned values.
  SplitOutcome BestSplit(const BinnedColumn& binned, int column_index,
                         const SplitContext& ctx) const;

  /// True when default-constructed (column not binned at this node).
  bool empty() const { return slots_ == 0; }
  /// num_bins + 1: the missing bin is the last slot.
  int slots() const { return slots_; }
  /// Same shape (slot count and task kind), so Subtract is defined.
  bool CompatibleWith(const NodeHistogram& other) const {
    return slots_ == other.slots_ && num_classes_ == other.num_classes_;
  }
  /// Payload bytes, for task memory accounting.
  size_t ByteSize() const;

  /// Raw payloads, for the scalar-vs-SIMD parity tests (bit-exact
  /// comparisons) and kernel plumbing. Classification: slots() *
  /// num_classes entries, bin-major. Regression: slots() entries.
  const int64_t* cls_data() const { return cls_.data(); }
  size_t cls_size() const { return cls_.size(); }
  const HistRegBin* reg_data() const { return reg_.data(); }
  size_t reg_size() const { return reg_.size(); }

 private:
  int slots_ = 0;        // num_bins + 1 (missing bin last)
  int num_classes_ = 0;  // 0 for regression
  std::vector<int64_t> cls_;    // slots_ * num_classes_, bin-major
  std::vector<HistRegBin> reg_;  // slots_
};

/// A node's histograms, parallel to its candidate-column list; entries
/// for unbinned columns (categorical) stay empty and fall back to the
/// exact kernel.
using NodeHists = std::vector<NodeHistogram>;

}  // namespace treeserver

#endif  // TREESERVER_TREE_HIST_H_
