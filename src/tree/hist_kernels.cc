#include "tree/hist_kernels.h"

#include "tree/hist.h"

namespace treeserver {
namespace histk {
namespace {

template <typename Code>
void ClsScalarImpl(const Code* codes, const int32_t* labels,
                   const uint32_t* rows, size_t n, int c, int64_t* counts) {
  if (rows == nullptr) {
    for (size_t i = 0; i < n; ++i) {
      counts[static_cast<size_t>(codes[i]) * c + labels[i]]++;
    }
  } else {
    for (size_t i = 0; i < n; ++i) {
      const uint32_t row = rows[i];
      counts[static_cast<size_t>(codes[row]) * c + labels[row]]++;
    }
  }
}

template <typename Code>
void RegScalarImpl(const Code* codes, const double* y, const uint32_t* rows,
                   size_t n, HistRegBin* bins) {
  for (size_t i = 0; i < n; ++i) {
    const uint32_t row = rows ? rows[i] : static_cast<uint32_t>(i);
    HistRegBin& rb = bins[codes[row]];
    const double v = y[row];
    ++rb.n;
    rb.sum += v;
    rb.sum_sq += v * v;
  }
}

}  // namespace

void ClsScalar(const uint8_t* codes, const int32_t* labels,
               const uint32_t* rows, size_t n, int c, int64_t* counts) {
  ClsScalarImpl(codes, labels, rows, n, c, counts);
}

void ClsScalar(const uint16_t* codes, const int32_t* labels,
               const uint32_t* rows, size_t n, int c, int64_t* counts) {
  ClsScalarImpl(codes, labels, rows, n, c, counts);
}

void RegScalar(const uint8_t* codes, const double* y, const uint32_t* rows,
               size_t n, HistRegBin* bins) {
  RegScalarImpl(codes, y, rows, n, bins);
}

void RegScalar(const uint16_t* codes, const double* y, const uint32_t* rows,
               size_t n, HistRegBin* bins) {
  RegScalarImpl(codes, y, rows, n, bins);
}

}  // namespace histk
}  // namespace treeserver
