#include "tree/impurity.h"

namespace treeserver {

const char* ImpurityName(Impurity impurity) {
  switch (impurity) {
    case Impurity::kGini:
      return "gini";
    case Impurity::kEntropy:
      return "entropy";
    case Impurity::kVariance:
      return "variance";
  }
  return "?";
}

}  // namespace treeserver
