#ifndef TREESERVER_TREE_TRAINER_H_
#define TREESERVER_TREE_TRAINER_H_

#include <vector>

#include "common/rng.h"
#include "table/data_table.h"
#include "tree/model.h"

namespace treeserver {

class BinnedTable;

/// Hyperparameters of a single decision tree.
struct TreeConfig {
  /// d_max: maximum node depth measured from the (global) root.
  int max_depth = 10;
  /// τ_leaf: a node with |D_x| <= min_leaf stops splitting.
  uint32_t min_leaf = 1;
  Impurity impurity = Impurity::kGini;
  /// Completely-random tree mode (Appendix F): one column resampled
  /// per node and a random split point.
  bool extra_trees = false;
  /// Depth of the subtree root inside the enclosing tree; subtree-tasks
  /// pass the node depth here so d_max keeps its global meaning.
  int base_depth = 0;
  /// Numeric split kernel. kExact (default) preserves the paper's
  /// exact-training guarantee; kHistogram scans pre-binned columns
  /// with sibling subtraction (ignored in extra_trees mode, which has
  /// no sorted scan to replace).
  SplitMethod split_method = SplitMethod::kExact;
  /// Bin budget per numeric column for kHistogram (clamped to
  /// [2, 65535]; <= 255 bins keeps uint8 codes).
  int max_bins = 255;
};

/// Exact, single-threaded decision tree training over the rows `rows`
/// of `table`, considering only `candidate_columns` (the sampled set C;
/// extra-trees resample from it per node).
///
/// This is both the reference implementation that the distributed
/// engine is validated against, and the code a subtree-task runs on
/// its gathered D_x. Deterministic: identical inputs (and rng state,
/// for extra-trees) give an identical tree.
///
/// In histogram mode `binned` supplies the pre-binned view of the
/// table's numeric columns (a subtree task passes its gathered subset
/// re-coded against the global boundaries); when nullptr it is built
/// internally from `table` with `config.max_bins`.
TreeModel TrainTree(const DataTable& table, std::vector<uint32_t> rows,
                    const std::vector<int>& candidate_columns,
                    const TreeConfig& config, Rng* rng = nullptr,
                    const BinnedTable* binned = nullptr);

/// Trains over every row of the table.
TreeModel TrainTreeOnTable(const DataTable& table,
                           const std::vector<int>& candidate_columns,
                           const TreeConfig& config, Rng* rng = nullptr,
                           const BinnedTable* binned = nullptr);

/// Builds the node prediction fields (PMF/label or mean) from target
/// statistics. Shared by the serial trainer and the engine's master.
void FillNodePrediction(const TargetStats& stats, TreeModel::Node* node);

/// Picks the better of two split outcomes under the deterministic
/// tie-break rule (higher gain wins; equal gain -> lower column index).
/// Returns true if `candidate` beats `incumbent`.
bool SplitBeats(const SplitOutcome& candidate, const SplitOutcome& incumbent);

/// Minimum gain for a split to be accepted (guards against splits that
/// only shuffle rounding error).
inline constexpr double kMinSplitGain = 1e-12;

}  // namespace treeserver

#endif  // TREESERVER_TREE_TRAINER_H_
