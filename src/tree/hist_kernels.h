#ifndef TREESERVER_TREE_HIST_KERNELS_H_
#define TREESERVER_TREE_HIST_KERNELS_H_

#include <cstddef>
#include <cstdint>

namespace treeserver {

struct HistRegBin;

/// Histogram accumulation kernels behind NodeHistogram::Build /
/// BuildMany. One scalar reference implementation plus fused
/// vectorized twins per SIMD level (common/simd.h); the dispatch in
/// tree/hist.cc picks one per column group at build time.
///
/// Exactness contract (fuzz-verified in tests/simd_test.cc): every
/// kernel produces histograms bit-identical to the scalar reference.
///   - Classification counts are int64 increments; integer addition
///     commutes, so any accumulation schedule is exact.
///   - Regression sums are doubles, where reassociation changes
///     rounding — so every kernel keeps ONE accumulator per bin and
///     feeds it in ascending row order (the vector kernels accumulate
///     a per-bin (count, sum, sum_sq) lane stripe with a single vector
///     add per row, which is the same per-bin add sequence the scalar
///     loop performs; y*y is a plain IEEE multiply in both, and the
///     whole library builds with -ffp-contract=off so no path fuses
///     it into an FMA).
///
/// All kernels ADD into caller-zeroed outputs. `rows` may be nullptr,
/// meaning the identity mapping [0, n). `labels`/`y` are indexed by
/// row id (not by position in `rows`), exactly like the code arrays.
namespace histk {

// -- Scalar reference twins (one column at a time) --------------------

void ClsScalar(const uint8_t* codes, const int32_t* labels,
               const uint32_t* rows, size_t n, int c, int64_t* counts);
void ClsScalar(const uint16_t* codes, const int32_t* labels,
               const uint32_t* rows, size_t n, int c, int64_t* counts);
void RegScalar(const uint8_t* codes, const double* y, const uint32_t* rows,
               size_t n, HistRegBin* bins);
void RegScalar(const uint16_t* codes, const double* y, const uint32_t* rows,
               size_t n, HistRegBin* bins);

// -- Fused vector kernels (1..4 same-width columns per pass) ----------
//
// `codes[k]` / outputs `counts[k]` (classification, slots*c entries,
// bin-major) or `bins[k]` (regression, slots[k] entries). Only invoked
// when the matching SimdLevel is active; the translation units are
// compile-gated per architecture (CMake TS_SIMD).

#if TS_SIMD_ENABLED && (defined(__x86_64__) || defined(_M_X64))
void ClsFusedAvx2(const uint8_t* const* codes, size_t ncols,
                  const int32_t* labels, const uint32_t* rows, size_t n,
                  int c, int64_t* const* counts);
void ClsFusedAvx2(const uint16_t* const* codes, size_t ncols,
                  const int32_t* labels, const uint32_t* rows, size_t n,
                  int c, int64_t* const* counts);
void RegFusedAvx2(const uint8_t* const* codes, size_t ncols, const double* y,
                  const uint32_t* rows, size_t n, const int* slots,
                  HistRegBin* const* bins);
void RegFusedAvx2(const uint16_t* const* codes, size_t ncols, const double* y,
                  const uint32_t* rows, size_t n, const int* slots,
                  HistRegBin* const* bins);
#endif

#if TS_SIMD_ENABLED && defined(__aarch64__)
void ClsFusedNeon(const uint8_t* const* codes, size_t ncols,
                  const int32_t* labels, const uint32_t* rows, size_t n,
                  int c, int64_t* const* counts);
void ClsFusedNeon(const uint16_t* const* codes, size_t ncols,
                  const int32_t* labels, const uint32_t* rows, size_t n,
                  int c, int64_t* const* counts);
void RegFusedNeon(const uint8_t* const* codes, size_t ncols, const double* y,
                  const uint32_t* rows, size_t n, const int* slots,
                  HistRegBin* const* bins);
void RegFusedNeon(const uint16_t* const* codes, size_t ncols, const double* y,
                  const uint32_t* rows, size_t n, const int* slots,
                  HistRegBin* const* bins);
#endif

/// Largest per-column slot count the fused regression kernels accept
/// (their per-bin lane stripes must stay cache-resident); columns with
/// more bins take the scalar twin.
constexpr int kFusedRegMaxSlots = 4096;
/// Below this many rows a fused pass cannot amortize its scratch
/// zeroing; the dispatch falls back to the scalar twins.
constexpr size_t kFusedMinRows = 128;
/// Columns fused per pass (bounded by scratch footprint).
constexpr size_t kFuseWidth = 4;

}  // namespace histk
}  // namespace treeserver

#endif  // TREESERVER_TREE_HIST_KERNELS_H_
