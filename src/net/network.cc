#include "net/network.h"

#include <chrono>
#include <thread>

#include "common/logging.h"
#include "common/trace.h"

namespace treeserver {

namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

InProcessTransport::InProcessTransport(int num_workers, double bandwidth_mbps)
    : Transport(num_workers),
      bytes_per_second_(bandwidth_mbps * 1e6 / 8.0) {
  for (int i = 0; i < num_workers; ++i) {
    task_queues_.push_back(std::make_unique<BlockingQueue<Message>>());
    data_queues_.push_back(std::make_unique<BlockingQueue<Message>>());
  }
  master_queue_ = std::make_unique<BlockingQueue<Message>>();
  for (int i = 0; i <= num_workers; ++i) {
    links_.push_back(std::make_unique<LinkState>());
  }
}

bool InProcessTransport::Send(ChannelKind channel, Message msg) {
  const int src = msg.src;
  const int dst = msg.dst;
  if (src != kMasterRank && IsCrashed(src)) {
    CountDrop(src);
    return false;
  }
  if (dst != kMasterRank && IsCrashed(dst)) {
    CountDrop(dst);
    return false;
  }

  const bool local = src == dst;
  if (!local) {
    uint64_t bytes = msg.payload.size() + kHeaderBytes;
    TraceSpan span(TraceCat::kNetSend, "send", msg.trace_id);
    span.SetArg("bytes", static_cast<int64_t>(bytes));
    AccountSend(channel, src, dst, msg.payload.size());
    uint64_t start_ns = NowNanos();
    if (bytes_per_second_ > 0) Throttle(src, bytes);
    AccountSendMicros(channel, (NowNanos() - start_ns) / 1000);
  }

  // Trace-channel messages ride the task queue: they are rare control
  // traffic the worker's θ_main dispatches by MsgType.
  BlockingQueue<Message>& q =
      dst == kMasterRank ? *master_queue_
                         : (channel == ChannelKind::kData ? *data_queues_[dst]
                                                          : *task_queues_[dst]);
  if (!q.Push(std::move(msg))) {
    CountDrop(dst);  // closed mailbox: receiver is gone
    return false;
  }
  return true;
}

void InProcessTransport::Throttle(int src, uint64_t bytes) {
  const double duration = static_cast<double>(bytes) / bytes_per_second_;
  double wait = 0.0;
  {
    LinkState& link = *links_[Index(src)];
    std::lock_guard<std::mutex> lock(link.mu);
    double now = NowSeconds();
    double start = link.next_free > now ? link.next_free : now;
    link.next_free = start + duration;
    wait = link.next_free - now;
  }
  if (wait > 1e-6) {
    std::this_thread::sleep_for(std::chrono::duration<double>(wait));
  }
}

void InProcessTransport::SetCrashed(int worker) {
  TS_CHECK(worker >= 0 && worker < num_workers_);
  MarkCrashed(worker);
  task_queues_[worker]->Close();
  data_queues_[worker]->Close();
}

void InProcessTransport::CloseAll() {
  for (auto& q : task_queues_) q->Close();
  for (auto& q : data_queues_) q->Close();
  master_queue_->Close();
}

}  // namespace treeserver
