#include "net/network.h"

#include <chrono>
#include <thread>

#include "common/logging.h"
#include "common/trace.h"

namespace treeserver {

namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

Network::Network(int num_workers, double bandwidth_mbps)
    : num_workers_(num_workers),
      bytes_per_second_(bandwidth_mbps * 1e6 / 8.0),
      sent_(num_workers + 1),
      recv_(num_workers + 1),
      msgs_(num_workers + 1),
      dropped_(num_workers + 1),
      crashed_(num_workers + 1) {
  TS_CHECK(num_workers > 0);
  for (int i = 0; i < num_workers; ++i) {
    task_queues_.push_back(std::make_unique<BlockingQueue<Message>>());
    data_queues_.push_back(std::make_unique<BlockingQueue<Message>>());
  }
  master_queue_ = std::make_unique<BlockingQueue<Message>>();
  for (int i = 0; i <= num_workers; ++i) {
    links_.push_back(std::make_unique<LinkState>());
    crashed_[i].store(false, std::memory_order_relaxed);
  }
}

bool Network::Send(ChannelKind channel, Message msg) {
  const int src = msg.src;
  const int dst = msg.dst;
  if (src != kMasterRank && crashed_[Index(src)].load()) {
    dropped_[Index(src)].Inc();
    return false;
  }
  if (dst != kMasterRank && crashed_[Index(dst)].load()) {
    dropped_[Index(dst)].Inc();
    return false;
  }

  const bool local = src == dst;
  if (!local) {
    uint64_t bytes = msg.payload.size() + kHeaderBytes;
    TraceSpan span(TraceCat::kNetSend, "send", msg.trace_id);
    span.SetArg("bytes", static_cast<int64_t>(bytes));
    sent_[Index(src)].Add(bytes);
    recv_[Index(dst)].Add(bytes);
    msgs_[Index(src)].Inc();
    const int ch = static_cast<int>(channel);
    payload_bytes_[ch].Add(bytes);
    uint64_t start_ns = NowNanos();
    if (bytes_per_second_ > 0) Throttle(src, bytes);
    send_micros_[ch].Add((NowNanos() - start_ns) / 1000);
  }

  BlockingQueue<Message>& q =
      dst == kMasterRank ? *master_queue_
                         : (channel == ChannelKind::kTask ? *task_queues_[dst]
                                                          : *data_queues_[dst]);
  if (!q.Push(std::move(msg))) {
    dropped_[Index(dst)].Inc();  // closed mailbox: receiver is gone
    return false;
  }
  return true;
}

void Network::Throttle(int src, uint64_t bytes) {
  const double duration = static_cast<double>(bytes) / bytes_per_second_;
  double wait = 0.0;
  {
    LinkState& link = *links_[Index(src)];
    std::lock_guard<std::mutex> lock(link.mu);
    double now = NowSeconds();
    double start = link.next_free > now ? link.next_free : now;
    link.next_free = start + duration;
    wait = link.next_free - now;
  }
  if (wait > 1e-6) {
    std::this_thread::sleep_for(std::chrono::duration<double>(wait));
  }
}

void Network::SetCrashed(int worker) {
  TS_CHECK(worker >= 0 && worker < num_workers_);
  crashed_[Index(worker)].store(true, std::memory_order_relaxed);
  task_queues_[worker]->Close();
  data_queues_[worker]->Close();
}

bool Network::IsCrashed(int worker) const {
  return crashed_[Index(worker)].load(std::memory_order_relaxed);
}

void Network::CloseAll() {
  for (auto& q : task_queues_) q->Close();
  for (auto& q : data_queues_) q->Close();
  master_queue_->Close();
}

uint64_t Network::total_bytes() const {
  uint64_t total = 0;
  for (const Counter& c : sent_) total += c.value();
  return total;
}

uint64_t Network::total_msgs_dropped() const {
  uint64_t total = 0;
  for (const Counter& c : dropped_) total += c.value();
  return total;
}

void Network::ResetCounters() {
  for (Counter& c : sent_) c.Reset();
  for (Counter& c : recv_) c.Reset();
  for (Counter& c : msgs_) c.Reset();
  for (Counter& c : dropped_) c.Reset();
  for (Histogram& h : payload_bytes_) h.Reset();
  for (Histogram& h : send_micros_) h.Reset();
}

NetworkStats Network::GetStats() const {
  NetworkStats stats;
  stats.endpoints.resize(num_workers_ + 1);
  for (int i = 0; i <= num_workers_; ++i) {
    stats.endpoints[i].bytes_sent = sent_[i].value();
    stats.endpoints[i].bytes_recv = recv_[i].value();
    stats.endpoints[i].msgs_sent = msgs_[i].value();
    stats.endpoints[i].msgs_dropped = dropped_[i].value();
  }
  stats.task_payload_bytes =
      payload_bytes_[static_cast<int>(ChannelKind::kTask)].snapshot();
  stats.data_payload_bytes =
      payload_bytes_[static_cast<int>(ChannelKind::kData)].snapshot();
  stats.task_send_micros =
      send_micros_[static_cast<int>(ChannelKind::kTask)].snapshot();
  stats.data_send_micros =
      send_micros_[static_cast<int>(ChannelKind::kData)].snapshot();
  return stats;
}

}  // namespace treeserver
