#ifndef TREESERVER_NET_NETWORK_H_
#define TREESERVER_NET_NETWORK_H_

#include <memory>
#include <mutex>
#include <vector>

#include "rpc/transport.h"

namespace treeserver {

/// In-process stand-in for the cluster interconnect (the reference
/// Transport implementation; see rpc/transport.h for the interface and
/// rpc/tcp_transport.h for the real-socket sibling).
///
/// Every worker owns two mailboxes (task / data); the master owns one.
/// Send() counts the serialized bytes per endpoint and, when a
/// bandwidth is configured, *blocks the sending thread* for
/// bytes/bandwidth to model a saturated NIC — this is what reproduces
/// the network-bound flattening of Table VI. Local (src == dst)
/// deliveries are free, mirroring TreeServer's "skip communication
/// when the requested data is local".
class InProcessTransport : public Transport {
 public:
  /// bandwidth_mbps: per-endpoint outbound link speed in megabits/s;
  /// 0 disables throttling.
  InProcessTransport(int num_workers, double bandwidth_mbps);

  /// Routes a message. Returns false if it was dropped (destination
  /// crashed or queue closed). Messages from a crashed source are also
  /// dropped, modeling a dead host.
  bool Send(ChannelKind channel, Message msg) override;

  BlockingQueue<Message>& task_queue(int worker) override {
    return *task_queues_[worker];
  }
  BlockingQueue<Message>& data_queue(int worker) override {
    return *data_queues_[worker];
  }
  BlockingQueue<Message>& master_queue() override { return *master_queue_; }

  /// Marks a worker as crashed: all of its traffic is dropped from now
  /// on, and its queues are closed so its threads terminate.
  void SetCrashed(int worker) override;

  /// Closes every queue (engine shutdown).
  void CloseAll() override;

 private:
  void Throttle(int src, uint64_t bytes);

  const double bytes_per_second_;  // 0 = unthrottled

  std::vector<std::unique_ptr<BlockingQueue<Message>>> task_queues_;
  std::vector<std::unique_ptr<BlockingQueue<Message>>> data_queues_;
  std::unique_ptr<BlockingQueue<Message>> master_queue_;

  // Per-endpoint token bucket: next instant the link is free.
  struct LinkState {
    std::mutex mu;
    double next_free = 0.0;  // seconds on the steady clock
  };
  std::vector<std::unique_ptr<LinkState>> links_;
};

/// Historical name: the engine's tests, benches and examples grew up
/// on the simulated network before the Transport split.
using Network = InProcessTransport;

}  // namespace treeserver

#endif  // TREESERVER_NET_NETWORK_H_
