#ifndef TREESERVER_NET_NETWORK_H_
#define TREESERVER_NET_NETWORK_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/metrics_registry.h"
#include "concurrent/blocking_queue.h"

namespace treeserver {

/// Endpoint id of the master (workers are 0..num_workers-1).
inline constexpr int kMasterRank = -1;

/// One simulated network message. `type` is interpreted by the engine
/// (see engine/messages.h); the network treats the payload as opaque
/// bytes and only accounts/throttles them.
struct Message {
  int src = kMasterRank;
  int dst = kMasterRank;
  uint32_t type = 0;
  std::string payload;
  /// Correlation id for tracing (the task id the message belongs to,
  /// when the sender knows it); 0 = uncorrelated. Not serialized, not
  /// charged to the byte counters.
  uint64_t trace_id = 0;
};

/// The two channel classes of Fig. 6: Task Comm (master <-> workers)
/// and Data Comm (worker <-> worker).
enum class ChannelKind : uint8_t {
  kTask = 0,
  kData = 1,
};

/// Point-in-time network statistics (part of the EngineStats snapshot).
struct NetworkStats {
  struct Endpoint {
    uint64_t bytes_sent = 0;
    uint64_t bytes_recv = 0;
    uint64_t msgs_sent = 0;
    /// Messages dropped because this endpoint was crashed (as source
    /// or destination) or its queue was closed.
    uint64_t msgs_dropped = 0;
  };
  /// Indexed by worker id; the last entry is the master.
  std::vector<Endpoint> endpoints;
  /// Per-channel payload-size (bytes) and send-latency (µs, including
  /// simulated link throttling) distributions.
  Histogram::Snapshot task_payload_bytes;
  Histogram::Snapshot data_payload_bytes;
  Histogram::Snapshot task_send_micros;
  Histogram::Snapshot data_send_micros;
};

/// In-process stand-in for the cluster interconnect.
///
/// Every worker owns two mailboxes (task / data); the master owns one.
/// Send() counts the serialized bytes per endpoint and, when a
/// bandwidth is configured, *blocks the sending thread* for
/// bytes/bandwidth to model a saturated NIC — this is what reproduces
/// the network-bound flattening of Table VI. Local (src == dst)
/// deliveries are free, mirroring TreeServer's "skip communication
/// when the requested data is local".
class Network {
 public:
  /// bandwidth_mbps: per-endpoint outbound link speed in megabits/s;
  /// 0 disables throttling.
  Network(int num_workers, double bandwidth_mbps);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  int num_workers() const { return num_workers_; }

  /// Routes a message. Returns false if it was dropped (destination
  /// crashed or queue closed). Messages from a crashed source are also
  /// dropped, modeling a dead host.
  bool Send(ChannelKind channel, Message msg);

  BlockingQueue<Message>& task_queue(int worker) {
    return *task_queues_[worker];
  }
  BlockingQueue<Message>& data_queue(int worker) {
    return *data_queues_[worker];
  }
  BlockingQueue<Message>& master_queue() { return *master_queue_; }

  /// Marks a worker as crashed: all of its traffic is dropped from now
  /// on, and its queues are closed so its threads terminate.
  void SetCrashed(int worker);
  bool IsCrashed(int worker) const;

  /// Closes every queue (engine shutdown).
  void CloseAll();

  /// Per-endpoint traffic counters (payload + fixed header bytes).
  uint64_t bytes_sent(int endpoint) const {
    return sent_[Index(endpoint)].value();
  }
  uint64_t bytes_received(int endpoint) const {
    return recv_[Index(endpoint)].value();
  }
  uint64_t total_bytes() const;
  /// Messages dropped with `endpoint` as the crashed/closed party.
  uint64_t msgs_dropped(int endpoint) const {
    return dropped_[Index(endpoint)].value();
  }
  uint64_t total_msgs_dropped() const;
  void ResetCounters();

  /// Snapshot of per-endpoint traffic and per-channel distributions.
  NetworkStats GetStats() const;

 private:
  /// Fixed per-message overhead charged on top of the payload.
  static constexpr uint64_t kHeaderBytes = 24;

  size_t Index(int endpoint) const {
    return endpoint == kMasterRank ? static_cast<size_t>(num_workers_)
                                   : static_cast<size_t>(endpoint);
  }

  void Throttle(int src, uint64_t bytes);

  const int num_workers_;
  const double bytes_per_second_;  // 0 = unthrottled

  std::vector<std::unique_ptr<BlockingQueue<Message>>> task_queues_;
  std::vector<std::unique_ptr<BlockingQueue<Message>>> data_queues_;
  std::unique_ptr<BlockingQueue<Message>> master_queue_;

  // One counter slot per worker plus one for the master.
  std::vector<Counter> sent_;
  std::vector<Counter> recv_;
  std::vector<Counter> msgs_;
  /// Drops charged to the endpoint that caused them (the crashed
  /// source/destination, or the closed queue's owner).
  std::vector<Counter> dropped_;
  std::vector<std::atomic<bool>> crashed_;

  // Per-channel distributions (index = ChannelKind).
  Histogram payload_bytes_[2];
  Histogram send_micros_[2];

  // Per-endpoint token bucket: next instant the link is free.
  struct LinkState {
    std::mutex mu;
    double next_free = 0.0;  // seconds on the steady clock
  };
  std::vector<std::unique_ptr<LinkState>> links_;
};

}  // namespace treeserver

#endif  // TREESERVER_NET_NETWORK_H_
