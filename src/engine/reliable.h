#ifndef TREESERVER_ENGINE_RELIABLE_H_
#define TREESERVER_ENGINE_RELIABLE_H_

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/metrics_registry.h"
#include "rpc/transport.h"

namespace treeserver {

/// Retry/backoff knobs for the reliable-delivery layer (mirrored in
/// EngineConfig so jobs can tune them; tests use short timeouts).
struct ReliableOptions {
  int ack_timeout_ms = 200;      // first retransmit deadline
  int ack_backoff_max_ms = 2000; // exponential backoff cap
  int max_retransmits = 20;      // then give up (peer is gone)
  uint32_t generation = 0;       // fencing epoch stamped on every send
};

/// At-least-once delivery with duplicate suppression and generation
/// fencing for the engine's fire-and-forget protocol messages.
///
/// The engine's control plane (task plans, responses, deletes,
/// releases) and data plane (I_x / column transfers) assume every
/// message arrives exactly once; a single dropped frame hangs the job
/// and a replayed one used to abort the worker. ReliableLink sits
/// between the engine loops and the Transport:
///
///  - Send() wraps each reliable-type payload with a 16-byte prefix
///    [u32 generation][u64 seq][u32 crc32c(gen‖seq‖payload)], records
///    it as pending, and retransmits on an exponential-backoff
///    deadline until the matching kAck arrives (or the peer is
///    declared crashed / max_retransmits is exhausted).
///  - OnReceive() is called by the engine receive loops on every
///    popped message BEFORE decoding. It consumes kAck frames, drops
///    corrupt (CRC-mismatch, no ack — the retransmit recovers it),
///    fenced (stale generation) and duplicate (re-acked) messages,
///    and unwraps + acks deliverable ones. Returns true iff the
///    engine should process the message.
///
/// Generations: each sender stamps its current generation; receivers
/// track the highest generation seen per peer, reset their dedup
/// state when it advances (a restarted master is a new sequence
/// space), and fence anything older (a zombie from before a
/// failover). Acks echo the generation, and a sender only clears a
/// pending entry when the echoed generation matches its own — a stale
/// in-flight ack from the previous epoch can never release a new
/// message's retransmit.
///
/// Self-sends (src == dst) and non-reliable types (shutdown, revoke-
/// all, heartbeats, traces, crash notices) pass through untouched.
///
/// Counters (process registry): engine.retransmits,
/// engine.duplicate_msgs, engine.fenced_msgs, engine.corrupt_msgs,
/// engine.retransmit_giveups.
class ReliableLink {
 public:
  ReliableLink(Transport* transport, int local_rank,
               ReliableOptions opts = ReliableOptions());
  ~ReliableLink();

  /// Sets the fencing epoch stamped on outgoing messages. Call before
  /// Start() (the restored master bumps this past the checkpointed
  /// epoch).
  void SetGeneration(uint32_t generation);
  uint32_t generation() const { return opts_.generation; }

  /// Spawns the retransmit thread. Stop() joins it (idempotent).
  void Start();
  void Stop();

  /// Sends `msg`, wrapping reliable types and arming a retransmit
  /// deadline for them. Returns the transport's verdict.
  bool Send(ChannelKind channel, Message msg);

  /// Filters + unwraps a received message in place. `channel` is the
  /// queue it was popped from (acks go back on the same channel).
  /// Returns false when the engine must skip this message.
  bool OnReceive(Message* msg, ChannelKind channel);

  /// Abandons every pending message to `rank` (it was declared
  /// crashed; the engine replans its tasks).
  void DropPeer(int rank);

  /// Messages awaiting an ack (tests / diagnostics).
  size_t PendingCount() const;

  static bool IsReliableType(uint32_t type);

  /// Bytes of the reliability prefix prepended to wrapped payloads.
  static constexpr size_t kPrefixBytes = 16;

 private:
  struct Pending {
    ChannelKind channel = ChannelKind::kTask;
    Message msg;  // wrapped copy, resent verbatim
    int retries = 0;
    int backoff_ms = 0;
    std::chrono::steady_clock::time_point due;
  };
  /// Receiver-side dedup state for one peer: highest generation seen,
  /// contiguous floor (all seqs <= floor delivered) and the sparse set
  /// of delivered seqs above it. Floor + set (rather than a pruned
  /// window) so an old-but-undelivered seq is never falsely re-acked.
  struct SrcState {
    uint32_t gen = 0;
    uint64_t floor = 0;
    std::set<uint64_t> above;
  };

  void RetransmitLoop();

  Transport* const transport_;
  const int local_rank_;
  ReliableOptions opts_;

  Counter* const retransmits_;
  Counter* const dups_;
  Counter* const fenced_;
  Counter* const corrupt_;
  Counter* const giveups_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::unordered_map<int, uint64_t> next_seq_;           // per dst
  std::map<std::pair<int, uint64_t>, Pending> pending_;  // (dst, seq)
  std::unordered_map<int, SrcState> src_state_;          // per src
  bool stopped_ = false;
  std::thread retransmit_;
};

}  // namespace treeserver

#endif  // TREESERVER_ENGINE_RELIABLE_H_
