#ifndef TREESERVER_ENGINE_COST_MODEL_H_
#define TREESERVER_ENGINE_COST_MODEL_H_

#include <array>
#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

#include "table/data_table.h"

namespace treeserver {

/// Which worker holds which feature column (k replicas each). The
/// target column Y is implicitly on every worker and not tracked.
///
/// Thread-safe: θ_main reads placements while the fault-tolerance path
/// (θ_recv) rewrites them after a crash.
class ColumnPlacement {
 public:
  ColumnPlacement(const Schema& schema, int num_workers, int replication);

  /// Worker ids holding a feature column, in placement order.
  std::vector<int> holders(int column) const {
    std::lock_guard<std::mutex> lock(mu_);
    return holders_[column];
  }

  int num_workers() const { return num_workers_; }

  /// Fault tolerance: drops a crashed worker from every column's
  /// holder list. Returns the columns that lost a replica.
  std::vector<int> RemoveWorker(int worker);

  /// Re-replicates a column onto an additional worker.
  void AddHolder(int column, int worker);

 private:
  int num_workers_;
  mutable std::mutex mu_;
  std::vector<std::vector<int>> holders_;  // indexed by column id
};

/// The per-task workload units the master added to M_work, remembered
/// so they can be deducted when the task's result arrives (Section VI).
struct LoadDelta {
  /// worker -> {comp, send, recv}
  std::map<int, std::array<double, 3>> add;

  void Add(int worker, double comp, double send, double recv) {
    auto& a = add[worker];
    a[0] += comp;
    a[1] += send;
    a[2] += recv;
  }
};

/// The master's load matrix M_work (Fig. 10): per-worker estimated
/// computation / sending / receiving workloads, protected by a mutex
/// so θ_main (assign) and θ_recv (deduct) never interleave updates.
class LoadMatrix {
 public:
  explicit LoadMatrix(int num_workers)
      : comp_(num_workers, 0.0),
        send_(num_workers, 0.0),
        recv_(num_workers, 0.0) {}

  int num_workers() const { return static_cast<int>(comp_.size()); }

  /// Applies a task's accumulated delta (scale = +1 on assignment,
  /// -1 on completion/revocation).
  void Apply(const LoadDelta& delta, double scale);

  /// Snapshot for tests/diagnostics.
  std::array<double, 3> Get(int worker) const;

  // The assignment routines below implement the greedy strategy of
  // Section VI and mutate the matrix under its lock.

  /// Column-task assignment: for each column pick a live holder
  /// minimizing the max of the updated communication loads
  /// (recv of the chosen worker / send of the parent worker), then
  /// charge the one-pass examination cost. Returns worker -> columns.
  struct ColumnAssignment {
    std::map<int, std::vector<int32_t>> worker_columns;
    LoadDelta delta;
  };
  ColumnAssignment AssignColumnTask(const ColumnPlacement& placement,
                                    const std::vector<int>& columns,
                                    uint64_t n_rows, int parent_worker,
                                    const std::vector<bool>& alive);

  /// Subtree-task assignment: the key worker is the live worker with
  /// minimum computation load; each column is served by a live holder
  /// minimizing the max of the four updated transfer loads. Charges
  /// |I_x|*|C|*log|I_x| compute to the key worker.
  struct SubtreeAssignment {
    int key_worker = -1;
    std::vector<int32_t> columns;
    std::vector<int32_t> servers;  // parallel to columns
    LoadDelta delta;
  };
  SubtreeAssignment AssignSubtreeTask(const ColumnPlacement& placement,
                                      const std::vector<int>& columns,
                                      uint64_t n_rows, int parent_worker,
                                      const std::vector<bool>& alive);

  /// Zeroes a crashed worker's row.
  void ClearWorker(int worker);

 private:
  mutable std::mutex mu_;
  std::vector<double> comp_;
  std::vector<double> send_;
  std::vector<double> recv_;
};

}  // namespace treeserver

#endif  // TREESERVER_ENGINE_COST_MODEL_H_
